// Command pintfig regenerates any of the paper's tables and figures.
//
// Usage:
//
//	pintfig -fig 1 [-scale bench|paper]     Figs 1+2 (overhead vs FCT/goodput)
//	pintfig -fig 5                          Fig 5 (coding scheme progress)
//	pintfig -fig medians                    §4.2 packets-to-decode table
//	pintfig -fig 7a | 7b | 7c | 8           HPCC experiments
//	pintfig -fig 9                          latency-quantile error panels
//	pintfig -fig 10a | 10b | 10c            path tracing per topology
//	pintfig -fig 11                         combined three-query experiment
//	pintfig -fig all                        everything
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (1,5,medians,7a,7b,7c,8,9,10a,10b,10c,11,all)")
	scaleName := flag.String("scale", "bench", "experiment scale: quick, bench or paper")
	shards := flag.Int("shards", 1, "recording shards for the Fig 9 sink (>1 uses the parallel batch pipeline; output is bit-identical)")
	flag.Parse()

	var s experiments.Scale
	switch *scaleName {
	case "quick":
		s = experiments.Quick()
	case "bench":
		s = experiments.Bench()
	case "paper":
		s = experiments.Paper()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}
	s.Shards = *shards

	run := func(name string, fn func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		fmt.Fprintf(os.Stderr, "running %s at scale %s...\n", name, *scaleName)
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}

	run("1", func() error {
		pts, err := experiments.Fig01_02(s)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig01_02Table(pts))
		return nil
	})
	run("5", func() error {
		curves, err := experiments.Fig05(s)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig05Table(curves))
		return nil
	})
	run("medians", func() error {
		tab, err := experiments.CodingMedians(s)
		if err != nil {
			return err
		}
		fmt.Println(tab)
		return nil
	})
	run("7a", func() error {
		pts, err := experiments.Fig07a(s)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig07aTable(pts))
		return nil
	})
	run("7b", func() error {
		sr, err := experiments.Fig07bc(s, workload.WebSearch())
		if err != nil {
			return err
		}
		fmt.Println(experiments.SlowdownTable("Fig 7b: p95 slowdown, web search, 50% load", sr))
		return nil
	})
	run("7c", func() error {
		sr, err := experiments.Fig07bc(s, workload.Hadoop())
		if err != nil {
			return err
		}
		fmt.Println(experiments.SlowdownTable("Fig 7c: p95 slowdown, Hadoop, 50% load", sr))
		return nil
	})
	run("8", func() error {
		for _, wl := range []struct {
			name string
			dist *workload.Dist
		}{{"web search", workload.WebSearch()}, {"hadoop", workload.Hadoop()}} {
			sr, err := experiments.Fig08(s, wl.dist)
			if err != nil {
				return err
			}
			fmt.Println(experiments.SlowdownTable(
				fmt.Sprintf("Fig 8: p95 slowdown vs feedback fraction, %s", wl.name), sr))
		}
		return nil
	})
	run("9", func() error {
		panels := []experiments.Fig09Panel{
			{Workload: "websearch", Quantile: 0.99},
			{Workload: "hadoop", Quantile: 0.99},
			{Workload: "hadoop", Quantile: 0.5},
			{Workload: "websearch", Quantile: 0.99, BySketch: true},
			{Workload: "hadoop", Quantile: 0.99, BySketch: true},
			{Workload: "hadoop", Quantile: 0.5, BySketch: true},
		}
		for _, p := range panels {
			series, err := experiments.Fig09(s, p)
			if err != nil {
				return err
			}
			axis := "sample size [pkts]"
			if p.BySketch {
				axis = "sketch size [bytes]"
			}
			fmt.Printf("== Fig 9 panel: %s q=%.2f vs %s ==\n", p.Workload, p.Quantile, axis)
			for _, sr := range series {
				fmt.Printf("  %-14s", sr.Name)
				for _, pt := range sr.Points {
					fmt.Printf("  %d:%.1f%%", pt.X, pt.RelErr)
				}
				fmt.Println()
			}
			fmt.Println()
		}
		return nil
	})
	for _, topo := range []struct {
		id   string
		name experiments.Fig10Topology
	}{{"10a", experiments.TopoKentucky}, {"10b", experiments.TopoUSCarrier}, {"10c", experiments.TopoFatTree}} {
		topo := topo
		run(topo.id, func() error {
			pts, err := experiments.Fig10(s, topo.name)
			if err != nil {
				return err
			}
			fmt.Println(experiments.Fig10Table(topo.name, pts))
			return nil
		})
	}
	run("11", func() error {
		rows, err := experiments.Fig11(s)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig11Table(rows))
		return nil
	})
	run("collection", func() error {
		stats, err := experiments.CollectionOverhead(s)
		if err != nil {
			return err
		}
		fmt.Println(experiments.CollectionTable(stats))
		return nil
	})
}
