// Command pintfig drives the scenario registry: every paper figure and
// every non-paper scenario runs through the same declarative engine
// (internal/scenario), with trials spread over a worker pool and results
// bit-identical at any parallelism.
//
// Usage:
//
//	pintfig -list                          catalog of registered scenarios
//	pintfig -run fig10c                    one scenario
//	pintfig -run fig9,fig11                several scenarios, one shared pool
//	pintfig -run all                       everything
//	pintfig -run all -json                 machine-readable results
//	pintfig -run all -parallel 8           8 trial workers
//	pintfig -run all -scale quick          quick | bench | paper
//	pintfig -run fig9 -shards 4            recording-sink workers (answers identical)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

func main() {
	list := flag.Bool("list", false, "list registered scenarios and exit")
	run := flag.String("run", "", "scenario name(s) to run, comma-separated, or 'all'")
	scaleName := flag.String("scale", "bench", "experiment scale: quick, bench or paper")
	parallel := flag.Int("parallel", 1, "trial worker-pool size (results are bit-identical for any value)")
	shards := flag.Int("shards", 0, "recording-sink shard workers for every scenario with a recording path (0 = 1; answers are bit-identical)")
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of tables")
	seed := flag.Uint64("seed", 0, "override the scale's random seed (0 keeps the default)")
	flag.Parse()

	if *list {
		printCatalog()
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "pintfig: nothing to do; use -list or -run <name|all>")
		flag.Usage()
		os.Exit(2)
	}

	var s experiments.Scale
	switch *scaleName {
	case "quick":
		s = experiments.Quick()
	case "bench":
		s = experiments.Bench()
	case "paper":
		s = experiments.Paper()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}
	s.Shards = *shards
	if *seed != 0 {
		s.Seed = *seed
	}
	if err := s.Validate(); err != nil {
		log.Fatal(err)
	}

	names := strings.Split(*run, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	start := time.Now()
	results, err := scenario.RunNames(names, scenario.Options{Scale: s, Parallel: *parallel})
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			log.Fatal(err)
		}
	} else {
		for _, res := range results {
			fmt.Printf("# %s (%s, %d trials)\n", res.Scenario, res.Figure, res.Trials)
			for _, tb := range res.Tables {
				fmt.Println(tb)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "ran %d scenario(s) at scale %s in %v (parallel=%d, shards=%d)\n",
		len(results), *scaleName, time.Since(start).Round(time.Millisecond), *parallel, *shards)
}

func printCatalog() {
	tb := experiments.Table{
		Title:   "Scenario catalog",
		Columns: []string{"name", "figure", "topology", "recording stack", "measures"},
	}
	for _, sc := range scenario.All() {
		tb.Rows = append(tb.Rows, []string{sc.Name, sc.Figure, sc.Topology, sc.Stack, sc.Desc})
	}
	fmt.Println(tb)
}
