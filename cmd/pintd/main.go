// Command pintd is the PINT collector daemon: it listens for exporter
// sessions (simulated switches, cmd/pintload) streaming framed
// internal/wire digest batches over TCP, ingests them into a sharded
// recording sink, and serves snapshot queries and counters over
// HTTP/JSON.
//
// Usage:
//
//	pintd                                    listen on 127.0.0.1:9777 (HTTP :9778)
//	pintd -listen :9777 -http :9778          explicit addresses
//	pintd -shards 8 -seed 3                  8 sink workers, seed-3 testbench plan
//	pintd -grace 10s                         SIGTERM drain grace period
//	pintd -pprof                             mount /debug/pprof/ on the HTTP address
//	pintd -data-dir /var/lib/pint            durable segment log with crash recovery
//	pintd -quotas 'hog=50000,*=1e6'          per-tenant admission quotas (packets/s)
//	pintd -capacity 5e5                      adaptive (AIMD) admission from sink stall feedback
//
// The daemon compiles the canonical testbench plan (collector.NewTestbench)
// from -seed and -k; exporters must be compiled identically — the session
// handshake's plan hash enforces it. On SIGTERM/SIGINT the daemon stops
// accepting, gives open sessions -grace to finish, flushes and barriers
// the sink so every ingested packet is counted, prints final stats, and
// exits 0.
//
// With -data-dir the daemon runs the durable tier (internal/segstore):
// every ingested batch is appended to a crash-safe segment log before the
// next checkpoint fsync, and on startup the daemon replays the log —
// recovering from torn tails a SIGKILL left behind — before accepting
// connections, so a restarted collector answers exactly like one that
// never died.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/admit"
	"repro/internal/collector"
	"repro/internal/pipeline"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9777", "TCP address for exporter sessions")
	httpAddr := flag.String("http", "127.0.0.1:9778", "HTTP address for /healthz, /stats, /snapshot ('' disables)")
	shards := flag.Int("shards", 1, "sink worker count (answers are bit-identical for any value)")
	seed := flag.Uint64("seed", 1, "testbench plan seed (exporters must match)")
	k := flag.Int("k", 5, "testbench flow hop count (exporters must match)")
	batchSize := flag.Int("batch-size", 256, "sink per-shard dispatch batch (packets)")
	queueDepth := flag.Int("queue-depth", 4, "sink per-shard queue depth (batches); smaller = earlier backpressure")
	maxFrame := flag.Int("max-frame", 0, "frame payload cap in bytes (0 = 1 MiB default)")
	epoch := flag.Uint64("epoch", 0, "cluster partitioning epoch (fleet members and exporters must match; 0 = standalone)")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the HTTP address")
	dataDir := flag.String("data-dir", "", "segment-log directory for durable storage ('' disables)")
	ckptEvery := flag.Duration("checkpoint", time.Second, "durable checkpoint+fsync cadence (requires -data-dir)")
	segBytes := flag.Int64("seg-bytes", 0, "segment rotation size in bytes (0 = 4 MiB default)")
	retain := flag.Int("retain", 0, "sealed segments to keep; older ones are deleted (0 = keep all)")
	grace := flag.Duration("grace", 5*time.Second, "drain grace period on SIGTERM/SIGINT")
	quotas := flag.String("quotas", "", "per-tenant admission quotas: name=rate[/burst[/minsample]],... ('*' = default; '' disables QoS)")
	capacity := flag.Float64("capacity", 0, "initial AIMD capacity estimate in packets/s for adaptive admission (0 disables)")
	qosSeed := flag.Uint64("qos-seed", 1, "seed for the QoS shedding hash (runs sharing a seed shed identical packets)")
	verbose := flag.Bool("v", false, "log per-session events")
	flag.Parse()

	log.SetFlags(0)
	tb, err := collector.NewTestbench(*seed, *k)
	if err != nil {
		log.Fatalf("pintd: %v", err)
	}
	pcfg := pipeline.Config{
		Shards:     *shards,
		BatchSize:  *batchSize,
		QueueDepth: *queueDepth,
		Base:       tb.Base,
	}
	var sink *pipeline.Sink
	var durable *collector.DurableSink
	if *dataDir != "" {
		durable, err = collector.OpenDurableSink(tb.Engine, tb.Queries(), pcfg, collector.DurableOptions{
			DataDir:      *dataDir,
			SegmentBytes: *segBytes,
			MaxSegments:  *retain,
		})
		if err != nil {
			log.Fatalf("pintd: %v", err)
		}
		rep := durable.Recovery
		fmt.Printf("pintd: recovered: %d segments, %d blocks, %d packets replayed", rep.Segments, rep.Blocks, durable.Replayed)
		if rep.TornBytes > 0 {
			fmt.Printf(" (%d bytes torn tail cut from %s)", rep.TornBytes, rep.TornSegment)
		}
		fmt.Println()
		sink = durable.Sink
	} else {
		sink, err = pipeline.NewSink(tb.Engine, pcfg)
		if err != nil {
			log.Fatalf("pintd: %v", err)
		}
	}
	policy, err := admit.ParsePolicy(*quotas)
	if err != nil {
		log.Fatalf("pintd: %v", err)
	}
	policy.Capacity.Initial = *capacity
	policy.Seed = *qosSeed
	opts := []collector.Option{
		collector.WithSink(sink),
		collector.WithQueries(tb.Queries()...),
		collector.WithMaxFramePayload(*maxFrame),
		collector.WithEpoch(*epoch),
		collector.WithDurable(durable),
		collector.WithCheckpointEvery(*ckptEvery),
		collector.WithTenantPolicy(policy),
	}
	if *verbose {
		opts = append(opts, collector.WithLogf(log.Printf))
	}
	srv, err := collector.New(tb.Engine, opts...)
	if err != nil {
		log.Fatalf("pintd: %v", err)
	}

	// The handler must be in place before the daemon announces itself:
	// supervisors (and the kill-recover smoke) take the "listening on"
	// line as license to signal, and a SIGTERM landing in the gap would
	// kill the process instead of draining it.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("pintd: %v", err)
	}
	fmt.Printf("pintd: listening on %s (plan 0x%016x, shards %d, k %d, epoch %d)\n",
		ln.Addr(), srv.PlanHash(), *shards, *k, *epoch)

	var httpSrv *http.Server
	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("pintd: http: %v", err)
		}
		fmt.Printf("pintd: http on %s\n", hln.Addr())
		handler := http.Handler(nil)
		if *pprofOn {
			fmt.Printf("pintd: pprof on http://%s/debug/pprof/\n", hln.Addr())
			handler = collector.WithProfiling(srv.Handler())
		}
		httpSrv = srv.HTTPServer(handler)
		go func() {
			if err := httpSrv.Serve(hln); err != nil && err != http.ErrServerClosed {
				log.Fatalf("pintd: http: %v", err)
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case sig := <-sigs:
		fmt.Printf("pintd: %v: draining (grace %v)\n", sig, *grace)
	case err := <-serveErr:
		log.Fatalf("pintd: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Printf("pintd: grace expired, open sessions force-closed (%v)\n", err)
	}
	if err := <-serveErr; err != nil {
		log.Fatalf("pintd: serve: %v", err)
	}
	if httpSrv != nil {
		httpSrv.Close()
	}
	st := srv.Stats()
	snap := sink.Snapshot()
	flows := snap.TrackedFlows()
	if durable != nil {
		if err := durable.Close(); err != nil {
			log.Fatalf("pintd: durable: %v", err)
		}
	} else if err := sink.Close(); err != nil {
		log.Fatalf("pintd: sink: %v", err)
	}
	fmt.Printf("pintd: drained: %d packets in %d frames from %d sessions (%d conn errors), %d flows tracked\n",
		st.Packets, st.Frames, st.Sessions, st.ConnErrors, flows)
}
