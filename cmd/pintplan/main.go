// Command pintplan compiles a set of telemetry queries and a global bit
// budget into a PINT execution plan (§3.4) and prints it, together with
// the switch pipeline layout (§5, Fig 6).
//
// Usage:
//
//	pintplan -budget 16 -queries "path:8:1,latency:8:0.9375,hpcc:8:0.0625"
//
// Each query is name:bits:frequency; names containing "path" become
// static per-flow queries, "lat" dynamic per-flow, anything else
// per-packet.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/core"
)

func main() {
	budget := flag.Int("budget", 16, "global per-packet bit budget")
	spec := flag.String("queries", "path:8:1,latency:8:0.9375,hpcc:8:0.0625",
		"comma-separated name:bits:frequency query list")
	flag.Parse()

	universe := make([]uint64, 256)
	for i := range universe {
		universe[i] = uint64(0x5A000000 + i)
	}
	var queries []core.Query
	for _, q := range strings.Split(*spec, ",") {
		parts := strings.Split(strings.TrimSpace(q), ":")
		if len(parts) != 3 {
			log.Fatalf("bad query spec %q (want name:bits:frequency)", q)
		}
		bits, err := strconv.Atoi(parts[1])
		if err != nil {
			log.Fatalf("bad bits in %q: %v", q, err)
		}
		freq, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			log.Fatalf("bad frequency in %q: %v", q, err)
		}
		name := parts[0]
		switch {
		case strings.Contains(name, "path"):
			cfg, err := core.DefaultPathConfig(bits, 1, 10)
			if err != nil {
				log.Fatal(err)
			}
			pq, err := core.NewPathQuery(name, cfg, freq, 1, universe)
			if err != nil {
				log.Fatal(err)
			}
			queries = append(queries, pq)
		case strings.Contains(name, "lat"):
			lq, err := core.NewLatencyQuery(name, bits, 0.04, freq, 1)
			if err != nil {
				log.Fatal(err)
			}
			queries = append(queries, lq)
		default:
			uq, err := core.NewUtilQuery(name, bits, 0.025, freq, 1000, 1)
			if err != nil {
				log.Fatal(err)
			}
			queries = append(queries, uq)
		}
	}

	engine, err := core.Compile(queries, *budget, 2020)
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	fmt.Print(engine.Plan())

	layout, err := core.Layout(queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npipeline: %d of %d stages used\n", layout.Stages, core.StageBudget)
	for name, ops := range layout.Columns {
		fmt.Printf("  %-14s %s\n", name+":", strings.Join(ops, " -> "))
	}
}
