// Command pintload is the collector's load generator: it simulates N
// switches, each encoding its flows' digests through the engine's batch
// encoder (Engine.EncodeHopBatch over every hop of a deterministic
// fat-tree path) and streaming them as checksummed frames over its own
// real TCP connection(s) to a running pintd — or to a whole fleet.
//
// Usage:
//
//	pintload -addr 127.0.0.1:9777                      default deployment (4×8×1000)
//	pintload -addr :9777 -exporters 16 -flows 64       16 switches, 64 flows each
//	pintload -addr :9777 -pkts 5000 -batch 512         5000 pkts/flow, 512/frame
//	pintload -addr :9777 -seed 3 -k 7                  must match pintd's -seed/-k
//	pintload -addr 127.0.0.1:9777,127.0.0.1:9877 -epoch 7
//	                                                   federated: route each flow to its
//	                                                   consistent-hash home; all daemons
//	                                                   must run the same -epoch
//	pintload -gate http://127.0.0.1:9700               elastic: fetch the fleet map from
//	                                                   pintgate's /fleetmap, route by its
//	                                                   epoch, and re-home live on resize
//	pintload -addr :9777 -duration 10s                 steady state: replay at full rate
//	                                                   for 10s, report per-connection and
//	                                                   aggregate Mpkt/s
//	pintload -addr :9777 -duration 10s -coalesce 16384 coalesce frames into >=16kB writes
//	pintload -addr :9777 -tenant team-a                label every session with a QoS tenant
//
// With a comma-separated -addr list every simulated switch opens one
// session per fleet member and routes each flow to its home collector by
// consistent hash over the address list — so all of a flow's digests land
// on one node and per-flow decode state never splits. Every component of
// one deployment must pass the identical list (order included) and the
// same -epoch; a daemon on a different epoch refuses the session.
//
// It reports wall clock, pkts/s, and wire bytes/pkt when every exporter
// has finished. The plan seed and hop count must match the daemons' —
// the session handshake refuses mismatched exporters.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/federation"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9777", "pintd exporter-session address, or a comma-separated fleet list")
	gate := flag.String("gate", "", "pintgate base URL: fetch the fleet map from its /fleetmap and follow live resizes (overrides -addr and -epoch)")
	exporters := flag.Int("exporters", 4, "simulated switches (one TCP connection each, per fleet member)")
	flows := flag.Int("flows", 8, "flows per exporter")
	pkts := flag.Int("pkts", 1000, "packets per flow")
	batch := flag.Int("batch", 256, "packets per frame")
	seed := flag.Uint64("seed", 1, "testbench plan seed (must match pintd)")
	k := flag.Int("k", 5, "flow hop count (must match pintd)")
	epoch := flag.Uint64("epoch", 0, "cluster partitioning epoch (must match every pintd; 0 = standalone)")
	duration := flag.Duration("duration", 0, "steady-state mode: replay the pre-encoded deployment at full rate for this long (0 = one-shot)")
	coalesce := flag.Int("coalesce", 0, "write-coalescing threshold in bytes per session (0 = TCP_NODELAY immediate writes)")
	tenant := flag.String("tenant", "", "QoS tenant label carried in every session handshake ('' = default tenant, v2 handshake)")
	flag.Parse()

	log.SetFlags(0)
	tb, err := collector.NewTestbench(*seed, *k)
	if err != nil {
		log.Fatalf("pintload: %v", err)
	}
	tb.Tenant = *tenant
	var (
		addrs  []string
		route  func(core.FlowKey) int
		epochV = *epoch
	)
	if *gate != "" {
		// Gate mode: the fleet map is the source of truth — addresses,
		// routing, and epoch come from it, and the fetch stays installed
		// so every session follows a mid-run resize.
		fetch := fleetMapFetch(*gate)
		tb.Fetch = fetch
		roster, err := fetch()
		if err != nil {
			log.Fatalf("pintload: fetching fleet map: %v", err)
		}
		addrs, route, epochV = roster.IngestAddrs(), roster.FlowHome, roster.FleetEpoch()
	} else {
		for _, a := range strings.Split(*addr, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		part, err := federation.NewPartitioner(addrs)
		if err != nil {
			log.Fatalf("pintload: %v", err)
		}
		route = part.Home
	}
	fmt.Printf("pintload: %d exporters x %d flows x %d packets -> %s (plan 0x%016x, epoch %d)\n",
		*exporters, *flows, *pkts, strings.Join(addrs, " + "), tb.Engine.PlanHash(), epochV)
	if *duration > 0 {
		runSteadyState(tb, addrs, route, epochV, *exporters, *flows, *pkts, *batch, *coalesce, *duration)
		return
	}
	start := time.Now()
	packets, bytes, err := tb.StreamFleetDeployment(addrs, route, epochV, *exporters, *flows, *pkts, *batch)
	if err != nil {
		log.Fatalf("pintload: %v", err)
	}
	elapsed := time.Since(start)
	fmt.Printf("pintload: sent %d packets (%d wire bytes) in %v\n", packets, bytes, elapsed.Round(time.Millisecond))
	fmt.Printf("pintload: %.0f pkts/s, %.2f bytes/pkt on the wire\n",
		float64(packets)/elapsed.Seconds(), float64(bytes)/float64(packets))
}

// runSteadyState is -duration mode: every exporter replays its
// pre-encoded flows at full rate until the deadline, and the report
// breaks the aggregate down per connection — the numbers that show
// whether the collector's parallel ingest keeps every pipe busy or one
// hot shard is back-pressuring a subset of them.
func runSteadyState(tb *collector.Testbench, addrs []string, route func(core.FlowKey) int, epoch uint64,
	exporters, flows, pkts, batch, coalesce int, duration time.Duration) {
	fmt.Printf("pintload: steady state for %v (coalesce %d bytes)\n", duration, coalesce)
	loads, err := tb.StreamSteadyState(addrs, route, epoch, exporters, flows, pkts, batch, coalesce, duration)
	if err != nil {
		log.Fatalf("pintload: %v", err)
	}
	var packets, bytes uint64
	var longest time.Duration
	for _, l := range loads {
		fmt.Printf("pintload:   conn %-3d %12d pkts  %14d bytes  %8.3f Mpkt/s\n",
			l.Exporter, l.Packets, l.Bytes, l.Mpkts())
		packets += l.Packets
		bytes += l.Bytes
		if l.Elapsed > longest {
			longest = l.Elapsed
		}
	}
	fmt.Printf("pintload: aggregate %d packets (%d wire bytes) in %v\n",
		packets, bytes, longest.Round(time.Millisecond))
	fmt.Printf("pintload: %.3f Mpkt/s aggregate, %.2f bytes/pkt on the wire\n",
		float64(packets)/longest.Seconds()/1e6, float64(bytes)/float64(packets))
}

// fleetMapFetch returns a roster fetch that GETs the gate's /fleetmap —
// the closure the exporter sessions poll when a resize fences them out.
func fleetMapFetch(gate string) func() (collector.FleetRoster, error) {
	base := strings.TrimRight(gate, "/")
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	return func() (collector.FleetRoster, error) {
		resp, err := http.Get(base + "/fleetmap")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s /fleetmap: %s", base, resp.Status)
		}
		return federation.ParseFleetMap(body)
	}
}
