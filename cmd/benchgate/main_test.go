package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeBench(t *testing.T, name, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseKeepsCpuVariants(t *testing.T) {
	p := writeBench(t, "bench.txt", `
goos: linux
BenchmarkA          	 1000	 100.0 ns/op	 0 B/op
BenchmarkA          	 1000	 110.0 ns/op	 0 B/op
BenchmarkPar/s=1    	  500	 200.0 ns/op
BenchmarkPar/s=1-2  	  500	 150.0 ns/op
BenchmarkPar/s=1-4  	  500	 120.0 ns/op
not a benchmark line
`)
	got, err := parse(p)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(got["BenchmarkA"][""]); n != 2 {
		t.Fatalf("BenchmarkA samples = %d, want 2", n)
	}
	par := got["BenchmarkPar/s=1"]
	if len(par) != 3 || len(par[""]) != 1 || len(par["-2"]) != 1 || len(par["-4"]) != 1 {
		t.Fatalf("cpu variants not kept: %+v", par)
	}
}

func TestFlattenCollapsesSingleCpuStripsAcrossMachines(t *testing.T) {
	// Baseline from an 8-core runner, fresh run from a 4-core one: a
	// single-variant benchmark must key by bare name in both.
	old := map[string]map[string][]float64{
		"BenchmarkA": {"-8": {100}},
	}
	fresh := map[string]map[string][]float64{
		"BenchmarkA": {"-4": {105}},
	}
	fo, fn := flatten(old, fresh)
	if _, ok := fo["BenchmarkA"]; !ok {
		t.Fatalf("old not collapsed: %+v", fo)
	}
	if _, ok := fn["BenchmarkA"]; !ok {
		t.Fatalf("new not collapsed: %+v", fn)
	}
}

func TestFlattenKeepsPerCpuCellsForScalingCurves(t *testing.T) {
	// A -cpu 1,2,4 run: each cpu count is its own gate cell, and the
	// suffixless GOMAXPROCS=1 row renders as "-1".
	old := map[string]map[string][]float64{
		"BenchmarkPar": {"": {300}, "-2": {170}, "-4": {100}},
	}
	fresh := map[string]map[string][]float64{
		"BenchmarkPar": {"": {300}, "-2": {165}, "-4": {240}},
	}
	fo, fn := flatten(old, fresh)
	for _, key := range []string{"BenchmarkPar-1", "BenchmarkPar-2", "BenchmarkPar-4"} {
		if len(fo[key]) != 1 || len(fn[key]) != 1 {
			t.Fatalf("missing per-cpu cell %s: old %+v new %+v", key, fo, fn)
		}
	}
	// The contention regression is visible in its own cell, not diluted
	// into a healthy median across cpu counts.
	if ratio := fn["BenchmarkPar-4"][0] / fo["BenchmarkPar-4"][0]; ratio < 2 {
		t.Fatalf("per-cpu cell lost the regression: ratio %.2f", ratio)
	}
}

// TestFlattenMultiInOneFileOnly pins the asymmetric case: when only one
// file has several cpu variants, both sides go per-cpu so the shared
// cells still line up.
func TestFlattenMultiInOneFileOnly(t *testing.T) {
	old := map[string]map[string][]float64{
		"BenchmarkPar": {"-2": {170}},
	}
	fresh := map[string]map[string][]float64{
		"BenchmarkPar": {"-2": {180}, "-4": {120}},
	}
	fo, fn := flatten(old, fresh)
	if len(fo["BenchmarkPar-2"]) != 1 {
		t.Fatalf("old side not per-cpu: %+v", fo)
	}
	if len(fn["BenchmarkPar-2"]) != 1 || len(fn["BenchmarkPar-4"]) != 1 {
		t.Fatalf("new side cells: %+v", fn)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
}
