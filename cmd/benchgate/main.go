// Command benchgate is the CI bench-regression gate: it compares two
// `go test -bench` output files (a committed baseline and a fresh run),
// reduces each benchmark's samples to its median ns/op, and fails — exit
// code 1 — when the geometric-mean slowdown across the benchmarks both
// files share exceeds a threshold.
//
// Usage:
//
//	benchgate -old bench_baseline.txt -new bench_pr.txt            15% geomean gate
//	benchgate -old base.txt -new pr.txt -threshold-pct 10          tighter
//	benchgate ... -max-single-pct 25                               per-bench bound
//	benchgate ... -out bench_delta.txt                             also write the report to a file
//
// The full delta table and verdict are printed on success as well as on
// failure, and -out duplicates them into a file regardless of exit code —
// so a CI run's uploaded artifact is populated on every run, not only
// when the gate trips.
//
// Two bounds guard two failure shapes: the geomean threshold catches a
// broad hot-path slowdown even when each benchmark moves modestly, and
// the (looser) per-benchmark threshold catches one benchmark tanking —
// which a geomean over many healthy benchmarks would dilute.
//
// Medians (not means) absorb scheduler noise in -count=N runs, and the
// geomean across benchmarks keeps one noisy microbenchmark from failing
// the job on its own while still catching a broad hot-path regression.
//
// CPU-count suffixes ("-8") get two treatments. A benchmark that appears
// with only one cpu variant per file keys by its bare name, so a
// baseline recorded on one machine class still matches another (the
// absolute numbers only ever gate against their own machine's baseline;
// refresh it — see .github/workflows/ci.yml — when the runner class
// changes). A benchmark run at several -cpu values (the parallel-ingest
// scaling curves) keeps one gate cell per cpu count instead, so a
// regression that only shows up under contention cannot hide behind a
// healthy single-core median.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result line, e.g.
//
//	BenchmarkHotPath_BatchEncodeExtract-8   3936970   304.5 ns/op   0 B/op ...
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([0-9.e+]+) ns/op`)

// parse reads a bench output file into base name → cpu suffix → ns/op
// samples. The cpu suffix is "" when go test omitted it (GOMAXPROCS=1).
func parse(path string) (map[string]map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]map[string][]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil || v <= 0 {
			continue
		}
		if out[m[1]] == nil {
			out[m[1]] = map[string][]float64{}
		}
		out[m[1]][m[2]] = append(out[m[1]][m[2]], v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchgate: no benchmark lines in %s", path)
	}
	return out, nil
}

// flatten reduces the two parsed files to gate keys. A base name with at
// most one cpu variant in each file collapses to the bare name (robust
// against machine-class suffix drift, "-8" vs "-4"); a base name run at
// several -cpu values in either file keeps its suffix, one gate cell per
// cpu count, with the suffixless GOMAXPROCS=1 row rendered as "-1".
func flatten(a, b map[string]map[string][]float64) (map[string][]float64, map[string][]float64) {
	multi := map[string]bool{}
	for _, file := range []map[string]map[string][]float64{a, b} {
		for base, cpus := range file {
			if len(cpus) > 1 {
				multi[base] = true
			}
		}
	}
	flat := func(file map[string]map[string][]float64) map[string][]float64 {
		out := map[string][]float64{}
		for base, cpus := range file {
			for cpu, samples := range cpus {
				key := base
				if multi[base] {
					if cpu == "" {
						cpu = "-1"
					}
					key = base + cpu
				}
				out[key] = append(out[key], samples...)
			}
		}
		return out
	}
	return flat(a), flat(b)
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func main() {
	oldPath := flag.String("old", "bench_baseline.txt", "baseline bench output")
	newPath := flag.String("new", "", "fresh bench output to gate")
	thresholdPct := flag.Float64("threshold-pct", 15, "fail when the geomean slowdown exceeds this percentage")
	maxSinglePct := flag.Float64("max-single-pct", 30, "fail when any single benchmark slows down more than this percentage (0 disables)")
	outPath := flag.String("out", "", "also append the report (table + verdict) to this file, pass or fail")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -new is required")
		os.Exit(2)
	}
	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.OpenFile(*outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	oldP, err := parse(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	newP, err := parse(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	oldB, newB := flatten(oldP, newP)
	names := make([]string, 0, len(oldB))
	for name := range oldB {
		if _, ok := newB[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: baseline and fresh runs share no benchmarks")
		os.Exit(2)
	}

	var logSum float64
	worstRatio, worstName := 0.0, ""
	fmt.Fprintf(w, "%-58s %14s %14s %8s\n", "benchmark (median ns/op)", "old", "new", "delta")
	for _, name := range names {
		o, n := median(oldB[name]), median(newB[name])
		ratio := n / o
		logSum += math.Log(ratio)
		if ratio > worstRatio {
			worstRatio, worstName = ratio, name
		}
		fmt.Fprintf(w, "%-58s %14.1f %14.1f %+7.1f%%\n",
			strings.TrimPrefix(name, "Benchmark"), o, n, (ratio-1)*100)
	}
	geomean := math.Exp(logSum / float64(len(names)))
	fmt.Fprintf(w, "\ngeomean over %d shared benchmarks: %+.1f%% (worst: %s %+.1f%%)\n",
		len(names), (geomean-1)*100, strings.TrimPrefix(worstName, "Benchmark"), (worstRatio-1)*100)

	// A large across-the-board speedup means the baseline came from a
	// slower machine class: the gate still catches catastrophic
	// regressions, but its thresholds are effectively loosened by the
	// machine gap. Say so, loudly, so the baseline gets refreshed.
	if geomean < 1/1.3 {
		fmt.Fprintf(w, "WARNING: everything is %+.0f%% faster than baseline — the baseline looks like\n"+
			"another machine class; refresh bench_baseline.txt on this runner to restore\n"+
			"the gate's full sensitivity\n", (geomean-1)*100)
	}
	failed := false
	if limit := 1 + *thresholdPct/100; geomean > limit {
		fmt.Fprintf(w, "FAIL: geomean slowdown %+.1f%% exceeds the %.0f%% gate\n", (geomean-1)*100, *thresholdPct)
		failed = true
	}
	if limit := 1 + *maxSinglePct/100; *maxSinglePct > 0 && worstRatio > limit {
		fmt.Fprintf(w, "FAIL: %s slowed down %+.1f%%, above the %.0f%% single-benchmark gate\n",
			strings.TrimPrefix(worstName, "Benchmark"), (worstRatio-1)*100, *maxSinglePct)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Fprintf(w, "PASS: within the %.0f%% geomean / %.0f%% single-benchmark gates\n", *thresholdPct, *maxSinglePct)
}
