// Command pintgate is the federated collector fleet's query frontend: it
// fans /snapshot, /stats, and /healthz out to every fleet member
// (cmd/pintd daemons), folds the per-member answers into the same
// fixed-order JSON a single daemon emits, and degrades explicitly when a
// member is down — the response carries an X-Pint-Partial header plus a
// per-node error list naming exactly which members are missing.
//
// Usage:
//
//	pintgate -nodes 127.0.0.1:9778,127.0.0.1:9878        front two pintd HTTP endpoints
//	pintgate -http 127.0.0.1:9700                        explicit listen address
//	pintgate -timeout 5s                                 per-node fan-out bound
//
// The fleet members hold disjoint flow sets (exporters route each flow to
// its consistent-hash home; see cmd/pintload -addr a,b,c and the README's
// federated-deployment section), so the /snapshot merge is a k-way merge
// by flow key — byte-identical to one collector that ingested everything.
// On SIGTERM/SIGINT the gate stops serving and exits 0.
//
// With -fleetmap the gate also serves the fleet's epoch-versioned map on
// GET /fleetmap (exporters fetch it to follow a live resize), accepts
// the next epoch's map on POST /fleetmap from a resize coordinator, and
// excludes any member answering from a different epoch ("epoch_stale" in
// the error list) instead of merging across two partitionings.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/collector"
	"repro/internal/federation"
)

func main() {
	httpAddr := flag.String("http", "127.0.0.1:9700", "HTTP address for the merged /healthz, /stats, /snapshot")
	nodes := flag.String("nodes", "", "comma-separated fleet member HTTP endpoints (host:port or http://host:port)")
	mapFile := flag.String("fleetmap", "", "JSON fleet map file (epoch + members); enables /fleetmap and epoch staleness checks")
	timeout := flag.Duration("timeout", 10*time.Second, "per-node fan-out request bound")
	grace := flag.Duration("grace", 5*time.Second, "drain grace period on SIGTERM/SIGINT")
	flag.Parse()

	log.SetFlags(0)
	opts := []federation.FrontendOption{federation.WithTimeout(*timeout)}
	var urls []string
	for _, n := range strings.Split(*nodes, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if !strings.HasPrefix(n, "http://") && !strings.HasPrefix(n, "https://") {
			n = "http://" + n
		}
		urls = append(urls, n)
	}
	if len(urls) > 0 {
		opts = append(opts, federation.WithMembers(urls...))
	}
	if *mapFile != "" {
		raw, err := os.ReadFile(*mapFile)
		if err != nil {
			log.Fatalf("pintgate: %v", err)
		}
		fm, err := federation.ParseFleetMap(raw)
		if err != nil {
			log.Fatalf("pintgate: %s: %v", *mapFile, err)
		}
		opts = append(opts, federation.WithFleetMap(fm))
	}
	fe, err := federation.NewFrontend(opts...)
	if err != nil {
		log.Fatalf("pintgate: %v (pass the fleet's HTTP endpoints via -nodes, or a map via -fleetmap)", err)
	}
	urls = fe.Nodes

	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		log.Fatalf("pintgate: %v", err)
	}
	srv := collector.HardenedHTTPServer(fe.Handler())
	fmt.Printf("pintgate: serving on %s, fronting %d nodes\n", ln.Addr(), len(urls))
	for i, u := range urls {
		fmt.Printf("pintgate: node %d: %s\n", i, u)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigs:
		fmt.Printf("pintgate: %v: draining (grace %v)\n", sig, *grace)
	case err := <-serveErr:
		log.Fatalf("pintgate: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
	}
	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		log.Fatalf("pintgate: serve: %v", err)
	}
	fmt.Println("pintgate: drained")
}
