// Command pinttrace measures packets-to-decode for path tracing over one
// of the evaluation topologies, with a configurable budget — the
// interactive counterpart of Fig 10.
//
// Usage:
//
//	pinttrace -topo kentucky -len 24 -bits 8 -instances 2 -trials 1000
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

func main() {
	topoName := flag.String("topo", "uscarrier", "topology: kentucky, uscarrier, fattree")
	pathLen := flag.Int("len", 12, "path length in switch hops")
	bits := flag.Int("bits", 8, "digest bits per hash instance")
	instances := flag.Int("instances", 1, "independent hash instances")
	d := flag.Int("d", 10, "assumed typical path length (layering parameter)")
	trials := flag.Int("trials", 1000, "trials")
	seed := flag.Uint64("seed", 1, "random seed")
	baselines := flag.Bool("baselines", true, "also run PPM and AMS2")
	flag.Parse()

	var g *topology.Graph
	var err error
	switch *topoName {
	case "kentucky":
		g, err = topology.KentuckyDatalinkLike()
	case "uscarrier":
		g, err = topology.USCarrierLike()
	case "fattree":
		g, err = topology.FatTree(8)
	default:
		log.Fatalf("unknown topology %q", *topoName)
	}
	if err != nil {
		log.Fatal(err)
	}
	// A path visiting `len` switches connects a pair at BFS distance len-1.
	pairs := g.SwitchPairsAtDistance(*pathLen-1, 1, *seed)
	if len(pairs) == 0 {
		log.Fatalf("no %d-switch path in %s", *pathLen, g.Name)
	}
	nodePath := g.Path(pairs[0][0], pairs[0][1], *seed)
	var values []uint64
	for _, n := range nodePath {
		values = append(values, g.Nodes[n].SwitchID)
	}
	universe := g.SwitchIDUniverse()
	fmt.Printf("%s: %d switches, tracing a %d-hop path, %d trials\n\n",
		g.Name, len(universe), len(values), *trials)

	cfg, err := core.DefaultPathConfig(*bits, *instances, *d)
	if err != nil {
		log.Fatal(err)
	}
	// Drive the full compiled system — engine batch encode, a wire-format
	// marshal/unmarshal round trip per block (the switch→collector
	// transfer), and recording — not just the raw coding harness.
	st, err := experiments.EnginePathTrials(cfg, values, universe, *trials, *seed, 2_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PINT %dx(b=%d)   mean %.0f   median %.0f   p99 %.0f   (%d bits/pkt)\n",
		*instances, *bits, st.Mean, st.Median, st.P99, cfg.TotalBits())

	if *baselines {
		ppm, err := telemetry.RunPPMTrials(values, *trials, *seed+1, 2_000_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("PPM            mean %.0f   median %.0f   p99 %.0f   (16 bits/pkt)\n",
			ppm.Mean, ppm.Median, ppm.P99)
		for _, m := range []int{5, 6} {
			ams, err := telemetry.RunAMS2Trials(values, universe, m, *trials, *seed+uint64(m), 2_000_000)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("AMS2 (m=%d)     mean %.0f   median %.0f   p99 %.0f   (16 bits/pkt)\n",
				m, ams.Mean, ams.Median, ams.P99)
		}
	}
}
