// Command pinttrace measures packets-to-decode for path tracing over one
// of the evaluation topologies with a configurable budget — a
// parameterized instance of the scenario registry's path-trace scenario,
// executed by the shared trial runner. Every digest runs the production
// stack (engine batch encode → wire → sharded sink), and -parallel
// spreads the decode episodes over workers with bit-identical output.
//
// Usage:
//
//	pinttrace -topo kentucky -len 24 -bits 8 -instances 2 -trials 1000 -parallel 8
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

func main() {
	topoName := flag.String("topo", "uscarrier", "topology: kentucky, uscarrier, fattree")
	pathLen := flag.Int("len", 12, "path length in switch hops")
	bits := flag.Int("bits", 8, "digest bits per hash instance")
	instances := flag.Int("instances", 1, "independent hash instances")
	d := flag.Int("d", 10, "assumed typical path length (layering parameter)")
	trials := flag.Int("trials", 1000, "trials")
	seed := flag.Uint64("seed", 1, "random seed")
	parallel := flag.Int("parallel", 1, "trial worker-pool size (output is bit-identical for any value)")
	shards := flag.Int("shards", 0, "recording-sink shard workers (answers are bit-identical)")
	baselines := flag.Bool("baselines", true, "also run PPM and AMS2")
	flag.Parse()

	sc := scenario.PathTrace(scenario.PathTraceSpec{
		Topo:      *topoName,
		PathLen:   *pathLen,
		Bits:      *bits,
		Instances: *instances,
		D:         *d,
		MaxPkts:   2_000_000,
		Baselines: *baselines,
	})
	s := experiments.Bench()
	s.Trials = *trials
	s.Seed = *seed
	s.Shards = *shards
	if err := s.Validate(); err != nil {
		log.Fatal(err)
	}
	res, err := scenario.Run(&sc, scenario.Options{Scale: s, Parallel: *parallel})
	if err != nil {
		log.Fatal(err)
	}
	for _, tb := range res.Tables {
		fmt.Println(tb)
	}
}
