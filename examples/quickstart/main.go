// Command quickstart is a one-minute tour of the public PINT API: trace a
// 10-hop flow's path with an 8-bit per-packet budget, watch the decoder
// converge, then run a latency-quantile query on the same engine.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/pint"
)

func main() {
	const (
		seed   = pint.Seed(2020) // shared by switches and the collector
		k      = 10              // path length
		budget = 16              // global per-packet bit budget
	)

	// The network's switch IDs: the universe the inference module matches
	// hashed digests against.
	universe := make([]uint64, 200)
	for i := range universe {
		universe[i] = 0x5A000000 + uint64(i)
	}
	path := universe[:k] // ground truth: the flow traverses switches 0..9

	// Two concurrent queries sharing the 16-bit budget: path tracing on
	// every packet, per-hop latency on every packet.
	cfg, err := pint.DefaultPathConfig(8, 1, k)
	if err != nil {
		log.Fatal(err)
	}
	pathQ, err := pint.NewPathQuery("path", cfg, 1.0, seed, universe)
	if err != nil {
		log.Fatal(err)
	}
	latQ, err := pint.NewLatencyQuery("latency", 8, 0.04, 1.0, seed)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := pint.Compile([]pint.Query{pathQ, latQ}, budget, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(engine.Plan())

	rec, err := pint.NewRecording(engine, 0, pint.NewRNG(1))
	if err != nil {
		log.Fatal(err)
	}
	flow := pint.FlowKeyOf(seed, "10.0.0.1:1234->10.0.0.2:80")

	// Simulate the flow's packets: every switch on the path runs the
	// engine's Encoding Module; the sink records the extracted digest.
	rng := pint.NewRNG(42)
	hopLatency := []uint64{900, 1100, 20000, 1000, 950, 5000, 1000, 1050, 980, 1020}
	packets := 0
	for decodedAt := 0; decodedAt == 0; packets++ {
		pktID := rng.Uint64()
		var digest uint64
		for hop := 1; hop <= k; hop++ {
			h := hop
			digest = engine.EncodeHop(pktID, hop, digest, func(q pint.Query) uint64 {
				switch q.(type) {
				case *pint.PathQuery:
					return path[h-1] // the switch writes its own ID
				case *pint.LatencyQuery:
					// Jittered per-hop latency in ns.
					return hopLatency[h-1] + rng.Uint64()%300
				}
				return 0
			})
		}
		if err := rec.Record(flow, k, pktID, digest); err != nil {
			log.Fatal(err)
		}
		if ids, done := rec.Path(pathQ, flow); done {
			fmt.Printf("\npath decoded after %d packets:\n  ", packets+1)
			for _, id := range ids {
				fmt.Printf("%x ", id)
			}
			fmt.Println()
			decodedAt = packets + 1
		}
	}

	// The same packets fed the latency query: ask for per-hop medians.
	fmt.Println("\nper-hop median latency estimates (true medians jittered around hopLatency):")
	for hop := 1; hop <= k; hop++ {
		med, err := rec.LatencyQuantile(latQ, flow, hop, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  hop %2d: ~%6.0f ns (%d samples)\n",
			hop, med, rec.LatencySamples(latQ, flow, hop))
	}
	fmt.Printf("\ntotal per-packet overhead: %d bits (vs INT's %d bits for the same data)\n",
		budget, (8+k*4)*8)
}
