// Command loopdetect demonstrates the Appendix A.4 extension: detecting
// forwarding loops on the fly from the PINT digest, trading counter bits
// (T) against detection delay and false-positive rate.
//
// Run with:
//
//	go run ./examples/loopdetect
package main

import (
	"fmt"
	"log"

	"repro/pint"
)

func main() {
	seed := pint.Seed(404)
	prefix := []uint64{0x10, 0x11, 0x12, 0x13, 0x14}
	loop := []uint64{0x20, 0x21, 0x22}
	rng := pint.NewRNG(8)

	fmt.Println("packets enter a 3-switch forwarding loop after a 5-hop prefix")
	fmt.Println()
	fmt.Printf("%-14s %-9s %-16s %-18s\n",
		"config", "overhead", "mean cycles", "false-positive rate")
	for _, tc := range []struct {
		bits int
		T    uint64
	}{
		{16, 0},
		{15, 1},
		{14, 3},
	} {
		d, err := pint.NewLoopDetector(tc.bits, tc.T, seed)
		if err != nil {
			log.Fatal(err)
		}
		// Detection delay over looping packets.
		var cycles, detected int
		for i := 0; i < 5000; i++ {
			if c := d.RunWithLoop(rng.Uint64(), prefix, loop, 200); c > 0 {
				cycles += c
				detected++
			}
		}
		// False positives on loop-free 32-hop paths.
		fp := d.FalsePositiveRate(32, 500000, 1)
		fmt.Printf("b=%-2d T=%-6d %2d bits   %6.2f (of %d%%)   %.2e per packet\n",
			tc.bits, tc.T, d.OverheadBits(),
			float64(cycles)/float64(max(detected, 1)), detected/50, fp)
	}
	fmt.Println()
	fmt.Println("A.4's trade-off: higher T slows detection by a few loop cycles but")
	fmt.Println("drives the false-positive probability low enough for production use.")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
