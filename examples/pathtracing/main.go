// Command pathtracing reproduces the §6.3 scenario interactively: trace
// flows across an ISP-scale topology (a US-Carrier-like graph, 157
// switches, diameter 36) with different per-packet budgets and compare
// against what classic INT would have cost.
//
// Run with:
//
//	go run ./examples/pathtracing
package main

import (
	"fmt"
	"log"

	"repro/internal/topology"
	"repro/pint"
)

func main() {
	g, err := topology.USCarrierLike()
	if err != nil {
		log.Fatal(err)
	}
	universe := g.SwitchIDUniverse()
	fmt.Printf("topology: %s (%d switches, diameter %d)\n\n",
		g.Name, len(universe), 36)

	seed := pint.Seed(7)
	rng := pint.NewRNG(99)

	for _, tc := range []struct {
		label     string
		bits      int
		instances int
	}{
		{"1-bit budget", 1, 1},
		{"4-bit budget", 4, 1},
		{"2 x 8-bit hashes", 8, 2},
	} {
		fmt.Printf("--- PINT with %s ---\n", tc.label)
		for _, hops := range []int{8, 16, 24, 36} {
			pairs := g.SwitchPairsAtDistance(hops, 1, uint64(hops))
			if len(pairs) == 0 {
				continue
			}
			nodePath := g.Path(pairs[0][0], pairs[0][1], 1)
			var values []uint64
			for _, n := range nodePath {
				values = append(values, g.Nodes[n].SwitchID)
			}

			cfg, err := pint.DefaultPathConfig(tc.bits, tc.instances, 10)
			if err != nil {
				log.Fatal(err)
			}
			q, err := pint.NewPathQuery("path", cfg, 1, seed, universe)
			if err != nil {
				log.Fatal(err)
			}
			engine, err := pint.Compile([]pint.Query{q}, tc.bits*tc.instances, seed)
			if err != nil {
				log.Fatal(err)
			}
			rec, err := pint.NewRecording(engine, 0, pint.NewRNG(rng.Uint64()))
			if err != nil {
				log.Fatal(err)
			}
			flow := pint.FlowKey(uint64(hops))

			packets := 0
			for {
				packets++
				pktID := rng.Uint64()
				var digest uint64
				for hop := 1; hop <= len(values); hop++ {
					h := hop
					digest = engine.EncodeHop(pktID, hop, digest,
						func(pint.Query) uint64 { return values[h-1] })
				}
				if err := rec.Record(flow, len(values), pktID, digest); err != nil {
					log.Fatal(err)
				}
				if _, done := rec.Path(q, flow); done {
					break
				}
				if packets > 2_000_000 {
					log.Fatalf("did not decode %d hops", len(values))
				}
			}
			intBytes := 8 + len(values)*4 // INT header + one 4B value per hop
			pintBytes := (tc.bits*tc.instances + 7) / 8
			fmt.Printf("  %2d hops: decoded after %6d packets "+
				"(%dB/pkt vs INT's %dB/pkt on every packet)\n",
				len(values), packets, pintBytes, intBytes)
		}
		fmt.Println()
	}
}
