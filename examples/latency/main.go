// Command latency demonstrates the dynamic per-flow aggregation (§4.1,
// §6.2): estimating each hop's median and tail latency from b-bit digests,
// with and without KLL sketches bounding per-flow storage, against exact
// ground truth.
//
// Run with:
//
//	go run ./examples/latency
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/sketch"
	"repro/pint"
)

func main() {
	const (
		k       = 5     // hops
		packets = 20000 // flow length
	)
	seed := pint.Seed(33)
	rng := pint.NewRNG(5)

	// Synthetic per-hop latency regimes: hop 3 is congested with a heavy
	// tail, the others are quiet.
	sample := func(hop int) float64 {
		base := []float64{1000, 1200, 15000, 1100, 900}[hop-1]
		jitter := math.Exp(rng.NormFloat64() * 0.4)
		if hop == 3 && rng.Float64() < 0.05 {
			jitter *= 20 // tail spikes at the congested hop
		}
		return base * jitter
	}

	for _, tc := range []struct {
		label       string
		bits        int
		eps         float64
		sketchItems int
	}{
		{"b=8, raw samples", 8, 0.04, 0},
		{"b=8, 64-item KLL sketches (PINTS)", 8, 0.04, 64},
		{"b=4, raw samples (coarse compression)", 4, 0.9, 0},
	} {
		q, err := pint.NewLatencyQuery("lat", tc.bits, tc.eps, 1, seed)
		if err != nil {
			log.Fatal(err)
		}
		engine, err := pint.Compile([]pint.Query{q}, tc.bits, seed)
		if err != nil {
			log.Fatal(err)
		}
		rec, err := pint.NewRecording(engine, tc.sketchItems, pint.NewRNG(rng.Uint64()))
		if err != nil {
			log.Fatal(err)
		}
		flow := pint.FlowKey(1)

		truth := make([][]float64, k)
		for i := 0; i < packets; i++ {
			pktID := rng.Uint64()
			vals := make([]float64, k)
			var digest uint64
			for hop := 1; hop <= k; hop++ {
				v := sample(hop)
				vals[hop-1] = v
				truth[hop-1] = append(truth[hop-1], v)
				h := hop
				digest = engine.EncodeHop(pktID, hop, digest,
					func(pint.Query) uint64 { return uint64(vals[h-1]) })
			}
			if err := rec.Record(flow, k, pktID, digest); err != nil {
				log.Fatal(err)
			}
		}

		fmt.Printf("--- %s ---\n", tc.label)
		fmt.Printf("%4s  %12s  %12s  %12s  %12s\n",
			"hop", "true median", "est median", "true p99", "est p99")
		for hop := 1; hop <= k; hop++ {
			tm := sketch.ExactQuantile(truth[hop-1], 0.5)
			tt := sketch.ExactQuantile(truth[hop-1], 0.99)
			em, err := rec.LatencyQuantile(q, flow, hop, 0.5)
			if err != nil {
				log.Fatal(err)
			}
			et, err := rec.LatencyQuantile(q, flow, hop, 0.99)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%4d  %12.0f  %12.0f  %12.0f  %12.0f\n", hop, tm, em, tt, et)
		}
		fmt.Println()
	}
	fmt.Println("note the congested hop 3 stands out in every configuration;")
	fmt.Println("b=4's coarse codes shift absolute values but preserve the ranking.")
}
