// Command congestion runs the paper's congestion-control use case end to
// end on the packet simulator: HPCC senders over a loaded leaf-spine
// fabric, first fed by classic per-hop INT, then by PINT's 8-bit
// bottleneck-utilization digests, and prints the flow-completion
// comparison (the Fig 7 experiment at example scale).
//
// Run with:
//
//	go run ./examples/congestion
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	scale := experiments.Scale{
		HostBps:     1_000_000_000,
		TierBps:     4_000_000_000,
		SizeDivisor: 64,
		DurationNs:  40_000_000,
		Pods:        2,
		HostsPerTor: 4,
		Trials:      20,
		Seed:        11,
	}

	fmt.Println("HPCC over a 50%-loaded leaf-spine fabric, web-search workload")
	fmt.Println("(scaled to example size; see cmd/pintfig for larger runs)")
	fmt.Println()

	type result struct {
		name    string
		kind    experiments.TransportKind
		avgFCT  float64
		goodput float64
		flows   int
	}
	longThr := int64(workload.WebSearch().Scaled(scale.SizeDivisor).Quantile(0.8))
	var results []result
	for _, tc := range []struct {
		name string
		kind experiments.TransportKind
	}{
		{"HPCC(INT): 8B header + 12B per hop on every packet", experiments.KindHPCCINT},
		{"HPCC(PINT): 1B digest on every packet", experiments.KindHPCCPINT},
	} {
		res, err := experiments.RunLoad(experiments.LoadRunConfig{
			Scale: scale, Dist: workload.WebSearch(), Load: 0.5,
			Kind: tc.kind, MinFlows: 100,
		})
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, result{
			name:    tc.name,
			kind:    tc.kind,
			avgFCT:  res.AvgFCT(),
			goodput: res.AvgGoodputLong(longThr),
			flows:   len(res.Collector.Completed()),
		})
	}

	for _, r := range results {
		fmt.Printf("%-55s\n", r.name)
		fmt.Printf("  completed flows: %d\n", r.flows)
		fmt.Printf("  average FCT:     %.2f ms\n", r.avgFCT/1e6)
		fmt.Printf("  long-flow goodput (>= %d B): %.1f Mbps\n\n",
			longThr, r.goodput/1e6)
	}
	if len(results) == 2 && results[1].goodput > 0 {
		gain := (results[1].goodput - results[0].goodput) / results[0].goodput * 100
		fmt.Printf("PINT long-flow goodput gain over INT: %+.1f%%\n", gain)
		fmt.Println("(the paper reports gains growing with load, up to 71% at 70% load)")
	}
}
