// Per-figure benchmark harness: one Benchmark per table/figure of the
// paper (see README.md for the index). Each benchmark runs the full
// experiment at bench scale and reports the figure's headline quantities
// through b.ReportMetric, so `go test -bench=. -benchmem` regenerates the
// whole evaluation. Absolute numbers differ from the paper's testbed; the
// shapes (who wins, by what factor, where crossovers fall) are what is
// reproduced.
package repro

import (
	"context"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/coding"
	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hash"
	"repro/internal/pipeline"
	"repro/internal/scenario"
	"repro/internal/segstore"
	"repro/internal/wire"
	"repro/internal/workload"
)

func benchScale() experiments.Scale {
	s := experiments.Bench()
	s.Trials = 100
	return s
}

// BenchmarkFig01_02_FCTvsOverhead regenerates Figures 1 and 2: normalized
// FCT and long-flow goodput as the per-packet overhead sweeps 28..108B at
// 30% and 70% load.
func BenchmarkFig01_02_FCTvsOverhead(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig01_02(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Load == 0.7 && p.OverheadBytes == 108 {
				b.ReportMetric(p.NormFCT, "normFCT@108B,70%")
				b.ReportMetric(p.NormGoodput, "normGoodput@108B,70%")
			}
		}
	}
}

// BenchmarkFig05_CodingSchemes regenerates Figure 5: Baseline vs XOR vs
// Hybrid decode progress for k=d=25.
func BenchmarkFig05_CodingSchemes(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Fig05(s)
		if err != nil {
			b.Fatal(err)
		}
		// Decode probability at the 100-packet mark, per scheme.
		idx := len(curves[0].Packets) * 96 / 200
		for _, c := range curves {
			b.ReportMetric(c.DecodeProb[idx], metric("P(dec)@100pkts:", c.Scheme))
		}
	}
}

// BenchmarkTab42_CodingMedians regenerates the §4.2 packets-to-decode
// order statistics (Baseline median ~89, Hybrid ~41 for k=25) plus the
// LNC comparator.
func BenchmarkTab42_CodingMedians(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.CodingMedians(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) != 5 {
			b.Fatal("missing schemes")
		}
	}
}

// BenchmarkFig07a_GoodputGain regenerates Figure 7(a): HPCC(PINT) vs
// HPCC(INT) long-flow goodput across loads.
func BenchmarkFig07a_GoodputGain(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig07a(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Load == 0.7 {
				b.ReportMetric(p.GainPercent, "gain%@70%load")
			}
		}
	}
}

// BenchmarkFig07b_SlowdownWebSearch regenerates Figure 7(b).
func BenchmarkFig07b_SlowdownWebSearch(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		sr, err := experiments.Fig07bc(s, workload.WebSearch())
		if err != nil {
			b.Fatal(err)
		}
		reportLastBin(b, sr)
	}
}

// BenchmarkFig07c_SlowdownHadoop regenerates Figure 7(c).
func BenchmarkFig07c_SlowdownHadoop(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		sr, err := experiments.Fig07bc(s, workload.Hadoop())
		if err != nil {
			b.Fatal(err)
		}
		reportLastBin(b, sr)
	}
}

func reportLastBin(b *testing.B, sr []experiments.SlowdownSeries) {
	b.Helper()
	for _, s := range sr {
		last := s.P95[len(s.P95)-1]
		b.ReportMetric(last, metric("p95slowdown-long:", s.Name))
	}
}

// BenchmarkFig08_FeedbackFraction regenerates Figure 8: PINT-HPCC at
// p = 1, 1/16, 1/256.
func BenchmarkFig08_FeedbackFraction(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		sr, err := experiments.Fig08(s, workload.Hadoop())
		if err != nil {
			b.Fatal(err)
		}
		reportLastBin(b, sr)
	}
}

// BenchmarkFig09_LatencyQuantiles regenerates Figure 9 (the Hadoop median
// panel of each row; cmd/pintfig prints all six).
func BenchmarkFig09_LatencyQuantiles(b *testing.B) {
	s := benchScale()
	s.Trials = 20
	for i := 0; i < b.N; i++ {
		bySample, err := experiments.Fig09(s, experiments.Fig09Panel{
			Workload: "hadoop", Quantile: 0.5})
		if err != nil {
			b.Fatal(err)
		}
		for _, sr := range bySample {
			b.ReportMetric(sr.Points[len(sr.Points)-1].RelErr, metric("err%@1000pkts:", sr.Name))
		}
		bySketch, err := experiments.Fig09(s, experiments.Fig09Panel{
			Workload: "hadoop", Quantile: 0.5, BySketch: true})
		if err != nil {
			b.Fatal(err)
		}
		for _, sr := range bySketch {
			b.ReportMetric(sr.Points[1].RelErr, metric("err%@100B:", sr.Name))
		}
	}
}

// BenchmarkFig10a_PathTracingKentucky regenerates Figure 10(a)/(d).
func BenchmarkFig10a_PathTracingKentucky(b *testing.B) {
	benchFig10(b, experiments.TopoKentucky, 54)
}

// BenchmarkFig10b_PathTracingUSCarrier regenerates Figure 10(b)/(e).
func BenchmarkFig10b_PathTracingUSCarrier(b *testing.B) {
	benchFig10(b, experiments.TopoUSCarrier, 36)
}

// BenchmarkFig10c_PathTracingFatTree regenerates Figure 10(c)/(f).
func BenchmarkFig10c_PathTracingFatTree(b *testing.B) {
	benchFig10(b, experiments.TopoFatTree, 5)
}

func benchFig10(b *testing.B, topo experiments.Fig10Topology, maxLen int) {
	b.Helper()
	s := benchScale()
	s.Trials = 30
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig10(s, topo)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.PathLen == maxLen {
				b.ReportMetric(p.Mean, metric("meanPkts@", itoa(maxLen), ":", p.Scheme))
			}
		}
	}
}

// BenchmarkFig11_Combined regenerates Figure 11: the three-query
// 16-bit-budget execution plan vs solo baselines.
func BenchmarkFig11_Combined(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.MeanSlowdown, "meanSlowdown:"+r.Name)
			b.ReportMetric(r.PathMeanPackets, "pathPkts:"+r.Name)
			b.ReportMetric(r.MedianLatErrPct, "medLatErr%:"+r.Name)
		}
	}
}

// BenchmarkAppA4_LoopDetect regenerates Appendix A.4's false-positive
// trade-off.
func BenchmarkAppA4_LoopDetect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d0, err := core.NewLoopDetector(16, 0, 9)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(d0.FalsePositiveRate(32, 200000, 3)*1e6, "fp-per-1e6:T=0,b=16")
		d1, err := core.NewLoopDetector(15, 1, 9)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(d1.FalsePositiveRate(32, 200000, 4)*1e6, "fp-per-1e6:T=1,b=15")
	}
}

// --- Ablations on §4's mechanisms ---

// BenchmarkAblation_HashVsFragment compares §4.2's two bit-reduction
// techniques at an 8-bit budget for 32-bit switch IDs over 10 hops.
func BenchmarkAblation_HashVsFragment(b *testing.B) {
	values := make([]uint64, 10)
	universe := make([]uint64, 200)
	for i := range universe {
		universe[i] = uint64(0xAB000000 + i*7)
	}
	copy(values, universe[:10])
	lay := coding.MultiLayer(10, true)
	hashed := coding.Config{Bits: 8, Mode: coding.ModeHashed, Layering: lay}
	frag := coding.Config{Bits: 8, Mode: coding.ModeRaw, ValueBits: 32, Layering: lay}
	for i := 0; i < b.N; i++ {
		sh, err := coding.RunTrials(hashed, values, universe, 100, 1, 100000)
		if err != nil {
			b.Fatal(err)
		}
		sf, err := coding.RunTrials(frag, values, nil, 100, 2, 100000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sh.Mean, "meanPkts:hashed")
		b.ReportMetric(sf.Mean, "meanPkts:fragmented")
	}
}

// BenchmarkAblation_MultiInstance compares one 8-bit hash against two
// independent 4-bit hashes under the same 8-bit budget (§4.2, "Improving
// Performance via Multiple Instantiations").
func BenchmarkAblation_MultiInstance(b *testing.B) {
	universe := make([]uint64, 200)
	for i := range universe {
		universe[i] = uint64(0xAB000000 + i*7)
	}
	values := universe[:10]
	lay := coding.MultiLayer(10, true)
	one := coding.Config{Bits: 8, Mode: coding.ModeHashed, Layering: lay}
	two := coding.Config{Bits: 4, Instances: 2, Mode: coding.ModeHashed, Layering: lay}
	for i := 0; i < b.N; i++ {
		s1, err := coding.RunTrials(one, values, universe, 100, 3, 100000)
		if err != nil {
			b.Fatal(err)
		}
		s2, err := coding.RunTrials(two, values, universe, 100, 4, 100000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(s1.Mean, "meanPkts:1x8bit")
		b.ReportMetric(s2.Mean, "meanPkts:2x4bit")
	}
}

// BenchmarkAblation_LNC compares Linear Network Coding's packet count
// against the multi-layer XOR scheme (§4.2's trade-off: LNC needs fewer
// packets but cubic decoding and full-width blocks).
func BenchmarkAblation_LNC(b *testing.B) {
	values := make([]uint64, 25)
	for i := range values {
		values[i] = uint64(0x1000 + i)
	}
	ml := coding.Config{Bits: 16, Mode: coding.ModeRaw, ValueBits: 16,
		Layering: coding.MultiLayer(25, true)}
	for i := 0; i < b.N; i++ {
		sm, err := coding.RunTrials(ml, values, nil, 100, 5, 10000)
		if err != nil {
			b.Fatal(err)
		}
		rng := hash.NewRNG(6)
		total := 0
		for t := 0; t < 100; t++ {
			l, err := coding.NewLNC(hash.NewGlobal(hash.Seed(rng.Uint64())), 25)
			if err != nil {
				b.Fatal(err)
			}
			sub := rng.Split()
			n := 0
			for !l.Done() {
				pkt := sub.Uint64()
				l.Observe(pkt, l.Encode(pkt, values))
				n++
			}
			total += n
		}
		b.ReportMetric(sm.Mean, "meanPkts:multilayer")
		b.ReportMetric(float64(total)/100, "meanPkts:LNC")
	}
}

// BenchmarkAblation_Epsilon sweeps the per-packet compression error for
// the utilization query (§4.3's accuracy/width trade-off).
func BenchmarkAblation_Epsilon(b *testing.B) {
	g := hash.NewGlobal(12)
	for i := 0; i < b.N; i++ {
		for _, tc := range []struct {
			bits int
			eps  float64
		}{{4, 0.2}, {8, 0.025}, {16, 0.0025}} {
			q, err := core.NewUtilQuery("u", tc.bits, tc.eps, 1, 1000, 77)
			if err != nil {
				b.Fatal(err)
			}
			var errSum float64
			const n = 5000
			for j := 0; j < n; j++ {
				u := 0.05 + 1.5*hash.Unit(g.ValueDigest(uint64(j), 1, 64))
				code := q.EncodeHop(uint64(j), 1, 0, q.EncodeValue(u))
				dec := q.Decode(code)
				diff := dec - u
				if diff < 0 {
					diff = -diff
				}
				errSum += diff / u
			}
			b.ReportMetric(errSum/n*100, "meanErr%:b="+itoa(tc.bits))
		}
	}
}

// --- Compiled batch pipeline: hot-path benchmarks ---
//
// The three HotPath benchmarks compare the seed's per-packet interface +
// closure path against the compiled per-packet and batch paths on the
// Fig-11 combined plan (path 2x(b=4) + latency + HPCC in 16 bits), each
// doing a full 5-hop encode plus sink-side extract per packet. The
// acceptance bar: the batch path allocates 0 B/op and at least doubles
// the seed path's single-core throughput.

func benchCombinedPlan(b *testing.B) (*core.Engine, []core.Query) {
	b.Helper()
	universe := make([]uint64, 128)
	for i := range universe {
		universe[i] = uint64(0xAB000000 + i*7)
	}
	master := hash.Seed(0xF16)
	cfg, err := core.DefaultPathConfig(4, 2, 5)
	if err != nil {
		b.Fatal(err)
	}
	path, err := core.NewPathQuery("path", cfg, 1, master, universe)
	if err != nil {
		b.Fatal(err)
	}
	lat, err := core.NewLatencyQuery("lat", 8, 0.04, 15.0/16, master)
	if err != nil {
		b.Fatal(err)
	}
	util, err := core.NewUtilQuery("hpcc", 8, 0.025, 1.0/16, 1000, master)
	if err != nil {
		b.Fatal(err)
	}
	queries := []core.Query{path, lat, util}
	eng, err := core.Compile(queries, 16, master.Derive(0x51B))
	if err != nil {
		b.Fatal(err)
	}
	return eng, queries
}

const benchHops = 5

func BenchmarkHotPath_SeedEncodeExtract(b *testing.B) {
	eng, _ := benchCombinedPlan(b)
	valueOf := func(q core.Query) uint64 {
		switch q.(type) {
		case *core.PathQuery:
			return 0xAB000007
		case *core.LatencyQuery:
			return 12345
		case *core.UtilQuery:
			return 501
		}
		return 0
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pktID := hash.Mix64(uint64(i))
		var digest uint64
		for hop := 1; hop <= benchHops; hop++ {
			digest = eng.EncodeHop(pktID, hop, digest, valueOf)
		}
		for _, ex := range eng.Extract(pktID, digest) {
			_ = ex
		}
	}
}

func BenchmarkHotPath_CompiledEncodeExtract(b *testing.B) {
	eng, _ := benchCombinedPlan(b)
	hv := core.HopValues{SwitchID: 0xAB000007, LatencyNs: 12345, Util: 501}
	var buf []core.Extracted
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pktID := hash.Mix64(uint64(i))
		var digest uint64
		for hop := 1; hop <= benchHops; hop++ {
			digest = eng.EncodeHopValues(pktID, hop, digest, &hv)
		}
		buf = eng.ExtractInto(pktID, digest, buf[:0])
	}
}

func BenchmarkHotPath_BatchEncodeExtract(b *testing.B) {
	eng, _ := benchCombinedPlan(b)
	const batch = 512
	pkts := make([]core.PacketDigest, batch)
	vals := make([]core.HopValues, batch)
	for j := range vals {
		vals[j] = core.HopValues{SwitchID: 0xAB000007, LatencyNs: 12345, Util: 501}
	}
	var buf []core.Extracted
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		n := batch
		if rem := b.N - i; rem < n {
			n = rem
		}
		for j := 0; j < n; j++ {
			pkts[j] = core.PacketDigest{Flow: 1, PktID: hash.Mix64(uint64(i + j)), PathLen: benchHops}
		}
		for hop := 1; hop <= benchHops; hop++ {
			eng.EncodeHopBatch(hop, pkts[:n], vals[:n])
		}
		for j := 0; j < n; j++ {
			buf = eng.ExtractPacketInto(&pkts[j], buf[:0])
		}
	}
}

// benchDigestStream builds an encoded nPkts-packet stream over nFlows
// flows, shared by the sink/collector ingest benchmarks.
func benchDigestStream(eng *core.Engine, nFlows, nPkts int) []core.PacketDigest {
	pkts := make([]core.PacketDigest, nPkts)
	vals := make([]core.HopValues, nPkts)
	for i := range pkts {
		pkts[i] = core.PacketDigest{
			Flow:    core.FlowKey(uint64(i%nFlows)*2654435761 + 1),
			PktID:   hash.Mix64(uint64(i)),
			PathLen: benchHops,
		}
		vals[i] = core.HopValues{SwitchID: 0xAB000007, LatencyNs: 12345, Util: 501}
	}
	for hop := 1; hop <= benchHops; hop++ {
		eng.EncodeHopBatch(hop, pkts, vals)
	}
	return pkts
}

// BenchmarkSinkIngest compares serial Recording against the sharded sink
// at 1/2/4/8 workers over a pre-encoded multi-flow digest stream, at
// steady state: the Recording/Sink is built and warmed once, outside the
// timer, so ns/op is per packet and allocs/op measures recording — not
// the tens of thousands of construction and cold-start flow-admission
// allocations a fresh-instance-per-iteration loop would charge to it.
// The residual allocations are intrinsic sketch growth (KLL compactors,
// latency samples), not ingest machinery; the machinery itself is pinned
// allocation-free by TestStageZeroAllocSteadyState.
func BenchmarkSinkIngest(b *testing.B) {
	eng, _ := benchCombinedPlan(b)
	pkts := benchDigestStream(eng, 256, 1<<14)
	b.Run("serial", func(b *testing.B) {
		rec, err := core.NewRecordingSeeded(eng, 32, 7)
		if err != nil {
			b.Fatal(err)
		}
		if err := rec.RecordBatch(pkts); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for done := 0; done < b.N; {
			n := len(pkts)
			if rem := b.N - done; rem < n {
				n = rem
			}
			if err := rec.RecordBatch(pkts[:n]); err != nil {
				b.Fatal(err)
			}
			done += n
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpkt/s")
	})
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run("shards="+itoa(shards), func(b *testing.B) {
			sink, err := pipeline.NewSink(eng, pipeline.Config{
				Shards: shards, SketchItems: 32, Base: 7})
			if err != nil {
				b.Fatal(err)
			}
			sink.Ingest(pkts)
			sink.Flush()
			sink.Barrier()
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; {
				n := len(pkts)
				if rem := b.N - done; rem < n {
					n = rem
				}
				sink.Ingest(pkts[:n])
				done += n
			}
			sink.Flush()
			sink.Barrier()
			b.StopTimer()
			if err := sink.Close(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpkt/s")
		})
	}
}

// BenchmarkCollectorIngestParallel is the collector's multi-core ingest
// surface in miniature: every parallel worker plays one exporter
// connection, owning a pipeline.Stage and a pre-marshaled wire payload,
// and each operation is one frame's collector-side work — fused
// decode-and-shard straight into the stage, then the striped-lock
// hand-off to the sink. Run with -cpu 1,2,4 for the scaling curve; the
// -cpu 1 row doubles as the single-core no-regression guard.
func BenchmarkCollectorIngestParallel(b *testing.B) {
	eng, _ := benchCombinedPlan(b)
	const nPkts = 4096
	pkts := benchDigestStream(eng, 256, nPkts)
	payload, err := wire.Marshal(pkts)
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 4} {
		b.Run("shards="+itoa(shards), func(b *testing.B) {
			sink, err := pipeline.NewSink(eng, pipeline.Config{
				Shards: shards, SketchItems: 32, Base: 7})
			if err != nil {
				b.Fatal(err)
			}
			// Warm: admit the flow set and grow the sketches outside the
			// timer, mirroring the steady-state framing above.
			warm := sink.NewStage()
			if _, err := wire.AppendUnmarshalSharded(warm.Buffers(), payload); err != nil {
				b.Fatal(err)
			}
			sink.IngestStage(warm)
			sink.Flush()
			sink.Barrier()
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				st := sink.NewStage()
				bufs := st.Buffers()
				for pb.Next() {
					if _, err := wire.AppendUnmarshalSharded(bufs, payload); err != nil {
						b.Error(err)
						return
					}
					sink.IngestStage(st)
				}
			})
			sink.Flush()
			sink.Barrier()
			b.StopTimer()
			if err := sink.Close(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(nPkts)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpkt/s")
		})
	}
}

// BenchmarkSinkIngestDurable is BenchmarkSinkIngest with the persistence
// writer attached: every batch is also framed, CRC'd, and appended to a
// segment log (NoSync — the fsync cadence is the checkpoint's job, not
// the hot path's). The delta against the plain shards=N rows is the total
// durability tax on ingest throughput.
func BenchmarkSinkIngestDurable(b *testing.B) {
	eng, _ := benchCombinedPlan(b)
	const nPkts = 1 << 14
	pkts := benchDigestStream(eng, 256, nPkts)
	for _, shards := range []int{1, 4} {
		b.Run("shards="+itoa(shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				store, _, err := segstore.Open(b.TempDir(), segstore.Options{NoSync: true})
				if err != nil {
					b.Fatal(err)
				}
				sink, err := pipeline.NewSink(eng, pipeline.Config{
					Shards: shards, SketchItems: 32, Base: 7})
				if err != nil {
					b.Fatal(err)
				}
				w := segstore.NewWriter(store, segstore.WriterOptions{})
				sink.SetPersister(w)
				b.StartTimer()
				sink.Ingest(pkts)
				if err := sink.Close(); err != nil {
					b.Fatal(err)
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := store.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(nPkts)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpkt/s")
		})
	}
}

// BenchmarkWireCodec measures the bulk wire codec over a sink-shaped
// 4096-packet encoded batch: two-pass marshal, fast-path unmarshal, and
// the one-pass frame marshal (header + payload + CRC in one buffer). All
// three are 0 B/op at steady state.
func BenchmarkWireCodec(b *testing.B) {
	eng, _ := benchCombinedPlan(b)
	const n = 4096
	pkts := benchDigestStream(eng, 256, n)
	flat, err := wire.Marshal(pkts)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("marshal", func(b *testing.B) {
		buf := append([]byte(nil), flat...)
		b.SetBytes(int64(len(flat)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = wire.AppendMarshal(buf[:0], pkts)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpkt/s")
	})
	b.Run("unmarshal", func(b *testing.B) {
		out := make([]core.PacketDigest, 0, n)
		b.SetBytes(int64(len(flat)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			out, err = wire.AppendUnmarshal(out[:0], flat)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpkt/s")
	})
	b.Run("frame", func(b *testing.B) {
		buf := make([]byte, 0, len(flat)+wire.FrameHeaderLen)
		b.SetBytes(int64(len(flat) + wire.FrameHeaderLen))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = wire.AppendMarshalFrame(buf[:0], pkts)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpkt/s")
	})
}

// BenchmarkSinkIngestBounded pins the streaming-collector acceptance
// criterion: ingest with an eviction policy enabled allocates nothing in
// steady state. The plan is latency (KLL-sketched) + frequent-values —
// the per-flow stores that reuse their space; path queries are excluded
// because their decoders buffer per-packet constraint records by design.
// "steady" keeps a stable flow set under an ample LRU cap (the policy
// meters every packet but never fires); "churn" runs 4x as many flows as
// the cap admits and reports the eviction rate instead.
func BenchmarkSinkIngestBounded(b *testing.B) {
	master := hash.Seed(0xB0B)
	lat, err := core.NewLatencyQuery("lat", 8, 0.04, 0.75, master)
	if err != nil {
		b.Fatal(err)
	}
	freq, err := core.NewFreqQuery("freq", 8, 0.25, master)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.Compile([]core.Query{lat, freq}, 8, master.Derive(2))
	if err != nil {
		b.Fatal(err)
	}
	const (
		k         = 5
		streamLen = 1 << 13
		cap       = 128
	)
	encode := func(nFlows int) []core.PacketDigest {
		pkts := make([]core.PacketDigest, streamLen)
		vals := make([]core.HopValues, streamLen)
		for i := range pkts {
			pkts[i] = core.PacketDigest{
				Flow:    core.FlowKey(uint64(i%nFlows)*2654435761 + 1),
				PktID:   hash.Mix64(uint64(i)),
				PathLen: k,
			}
			vals[i] = core.HopValues{LatencyNs: 1000 + hash.Mix64(uint64(i))%100000,
				FreqValue: hash.Mix64(uint64(i)) % 16}
		}
		for hop := 1; hop <= k; hop++ {
			eng.EncodeHopBatch(hop, pkts, vals)
		}
		return pkts
	}
	for _, mode := range []struct {
		name   string
		nFlows int
	}{{"steady", 64}, {"churn", 4 * cap}} {
		b.Run(mode.name, func(b *testing.B) {
			pkts := encode(mode.nFlows)
			evictions := 0
			sink, err := pipeline.NewSink(eng, pipeline.Config{
				Shards: 1, SketchItems: 32, Base: 7,
				Policy:  func() pipeline.EvictionPolicy { return pipeline.NewLRU(cap) },
				OnEvict: func(ev pipeline.Eviction, rec *core.Recording) { evictions++ },
			})
			if err != nil {
				b.Fatal(err)
			}
			// Warm: admit the flow set, grow the sketches, fill the
			// buffer free lists. The Snapshot drains the workers, so
			// resetting the eviction counter afterwards is race-free and
			// the metric covers only the timed packets.
			sink.Ingest(pkts)
			sink.Flush()
			sink.Snapshot()
			evictions = 0
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; {
				n := len(pkts)
				if rem := b.N - done; rem < n {
					n = rem
				}
				sink.Ingest(pkts[:n])
				done += n
			}
			sink.Flush()
			b.StopTimer()
			if err := sink.Close(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpkt/s")
			b.ReportMetric(float64(evictions)/float64(b.N), "evictions/pkt")
		})
	}
}

// metric sanitizes a label for use as a benchmark metric unit (testing
// rejects whitespace).
func metric(parts ...string) string {
	out := ""
	for _, p := range parts {
		for _, r := range p {
			switch r {
			case ' ':
				out += "_"
			default:
				out += string(r)
			}
		}
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkScenarioRunner runs the full registry (every paper figure plus
// the non-paper scenarios) at quick scale through the shared trial
// runner, at 1 and GOMAXPROCS workers — the registry's wall-clock scaling
// axis. Output is bit-identical across the two (pinned by the golden
// tests); only the wall clock moves.
func BenchmarkScenarioRunner(b *testing.B) {
	s := experiments.Quick()
	for _, par := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run("parallel="+itoa(par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := scenario.RunNames([]string{"all"}, scenario.Options{Scale: s, Parallel: par})
				if err != nil {
					b.Fatal(err)
				}
				if len(results) < 16 {
					b.Fatalf("only %d scenarios ran", len(results))
				}
			}
			b.ReportMetric(b.Elapsed().Seconds()/float64(b.N), "s/catalog")
		})
	}
}

// BenchmarkAdmitDecision is the QoS tier's per-frame tax: one admission
// decision — token-bucket refill, quota shaping, AIMD capacity grant —
// under an injected clock, in the regime where the tenant is over quota
// (the expensive branch: sampling probability + threshold computed).
// The decision runs once per frame, not per packet, but it sits on the
// session goroutine's frame loop, so it must stay allocation-free and
// in the tens of nanoseconds.
func BenchmarkAdmitDecision(b *testing.B) {
	var now uint64
	policy, err := admit.ParsePolicy("bench=1e6/1e5")
	if err != nil {
		b.Fatal(err)
	}
	policy.Capacity.Initial = 5e6
	policy.Clock = func() uint64 { now += 1000; return now }
	a, err := admit.NewAdmitter(policy)
	if err != nil {
		b.Fatal(err)
	}
	tn := a.Tenant("bench")
	b.ReportAllocs()
	b.ResetTimer()
	var admitted int
	for i := 0; i < b.N; i++ {
		if tn.Decide(256).Admit() {
			admitted++
		}
	}
	b.StopTimer()
	if admitted == b.N && b.N > 1000 {
		b.Fatal("bench tenant never went over quota")
	}
}

// BenchmarkFleetHandoff is the elastic-resize hand-off cycle end to end
// over loopback TCP: one op is ExportFlows draining 64 live flow states
// from the source collector, SendHandoff framing and shipping them in
// one CRC-framed hand-off session, and the destination's read loop
// folding every state into its sink via Recording.Merge. The flow set
// ping-pongs between two collectors, so every iteration drains
// realistically warm state — each flow carries 256 packets of decoder
// and sketch history — without untimed re-seeding.
func BenchmarkFleetHandoff(b *testing.B) {
	eng, queries := benchCombinedPlan(b)
	const (
		nFlows  = 64
		pktsPer = 256
	)
	pkts := benchDigestStream(eng, nFlows, nFlows*pktsPer)
	seen := make(map[core.FlowKey]bool, nFlows)
	flows := make([]core.FlowKey, 0, nFlows)
	for _, p := range pkts {
		if !seen[p.Flow] {
			seen[p.Flow] = true
			flows = append(flows, p.Flow)
		}
	}

	newNode := func() *collector.Server {
		sink, err := pipeline.NewSink(eng, pipeline.Config{Shards: 2, SketchItems: 32, Base: 7})
		if err != nil {
			b.Fatal(err)
		}
		srv, err := collector.New(eng, collector.WithSink(sink), collector.WithQueries(queries...))
		if err != nil {
			b.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve(ln)
		for srv.Addr() == nil {
			time.Sleep(100 * time.Microsecond)
		}
		b.Cleanup(func() {
			srv.Shutdown(context.Background())
			sink.Close()
		})
		return srv
	}
	src, dst := newNode(), newNode()

	// Seed the source through a normal exporter session, then wait for
	// the read loop to drain it.
	ex, err := collector.Dial(src.Addr().String(), collector.HelloFor(eng, 1, "seed"))
	if err != nil {
		b.Fatal(err)
	}
	if err := ex.Send(pkts); err != nil {
		b.Fatal(err)
	}
	if err := ex.Close(); err != nil {
		b.Fatal(err)
	}
	for st := src.Stats(); st.Packets < uint64(len(pkts)) || st.Active != 0; st = src.Stats() {
		time.Sleep(time.Millisecond)
	}

	// One untimed warm round sizes SetBytes and leaves the flows on dst,
	// so the timed loop starts mid-ping-pong like any later iteration.
	handoff := func(from, to *collector.Server) int64 {
		states, err := from.ExportFlows(flows)
		if err != nil {
			b.Fatal(err)
		}
		if len(states) != nFlows {
			b.Fatalf("exported %d of %d flows", len(states), nFlows)
		}
		var bytes int64
		for _, st := range states {
			bytes += int64(len(st.State))
		}
		before := to.HandoffFlows()
		if n, err := collector.SendHandoff(to.Addr().String(), collector.HelloFor(eng, 1<<40, "bench-handoff"), states); err != nil || n != nFlows {
			b.Fatalf("shipped %d flows: %v", n, err)
		}
		deadline := time.Now().Add(30 * time.Second)
		for to.HandoffFlows() < before+nFlows {
			if !time.Now().Before(deadline) {
				b.Fatalf("destination imported %d of %d flows at deadline", to.HandoffFlows()-before, nFlows)
			}
			time.Sleep(50 * time.Microsecond)
		}
		return bytes
	}
	b.SetBytes(handoff(src, dst))
	src, dst = dst, src

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		handoff(src, dst)
		src, dst = dst, src
	}
	b.StopTimer()
	b.ReportMetric(float64(nFlows)*float64(b.N)/b.Elapsed().Seconds(), "flows/s")
}
