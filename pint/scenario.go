package pint

import (
	"repro/internal/experiments"
	"repro/internal/scenario"
)

// The scenario API: the declarative experiment registry and its parallel,
// deterministic trial runner (internal/scenario). Downstream users can
// list and run every built-in scenario — the paper's figures and the
// non-paper workloads — or register their own Plan/Reduce pairs; results
// are bit-identical for any worker or shard count.

// Scenario declares one experiment: descriptive metadata plus a Plan
// (expand into hermetic trials at a Scale) and a Reduce (fold trial
// outputs into tables).
type Scenario = scenario.Scenario

// ScenarioTrial is one independent unit of a scenario's work.
type ScenarioTrial = scenario.Trial

// ScenarioResult is a scenario's reduced, JSON-stable output.
type ScenarioResult = scenario.Result

// Table is a printable, JSON-stable experiment result (the unit scenario
// Reduce functions emit).
type Table = experiments.Table

// ScenarioOptions configures a runner invocation (scale + worker count).
type ScenarioOptions = scenario.Options

// Scale bundles the knobs that size an experiment (durations, topology
// shape, trials, seed, recording-sink shards). See Quick/Bench/Paper.
type Scale = experiments.Scale

// QuickScale/BenchScale/PaperScale are the stock experiment sizes.
func QuickScale() Scale { return experiments.Quick() }

// BenchScale is the `go test -bench` size (see QuickScale).
func BenchScale() Scale { return experiments.Bench() }

// PaperScale approaches the paper's setup (see QuickScale).
func PaperScale() Scale { return experiments.Paper() }

// RegisterScenario adds a scenario to the registry (panics on duplicates
// or incomplete definitions — registration is an init-time act).
func RegisterScenario(sc Scenario) { scenario.Register(sc) }

// Scenarios returns every registered scenario name, sorted.
func Scenarios() []string { return scenario.Names() }

// LookupScenario returns a registered scenario by name.
func LookupScenario(name string) (*Scenario, bool) { return scenario.Lookup(name) }

// RunScenario plans, executes (across opts.Parallel workers), and reduces
// one scenario; results are bit-identical for any parallelism.
func RunScenario(sc *Scenario, opts ScenarioOptions) (*ScenarioResult, error) {
	return scenario.Run(sc, opts)
}

// RunScenarios resolves names ("all" included) and runs them over one
// shared worker pool.
func RunScenarios(names []string, opts ScenarioOptions) ([]*ScenarioResult, error) {
	return scenario.RunNames(names, opts)
}
