package pint_test

import (
	"context"
	"fmt"
	"log"
	"net"

	"repro/pint"
)

// ExampleNewCollector runs the full public-API loop: compile a plan,
// encode a flow's digests switch-side, stream them over a real TCP
// session to a collector built with functional options — including a
// multi-tenant QoS policy — and read the versioned stats back.
func ExampleNewCollector() {
	universe := []uint64{11, 22, 33, 44, 55, 66, 77, 88}
	cfg, err := pint.DefaultPathConfig(4, 2, 5)
	if err != nil {
		log.Fatal(err)
	}
	q, err := pint.NewPathQuery("path", cfg, 1.0, 7, universe)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := pint.Compile([]pint.Query{q}, 8, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Switch side: 400 packets of one flow walk a 5-hop path.
	path := []uint64{11, 33, 55, 77, 88}
	flow := pint.FlowKeyOf(7, "example-flow")
	rng := pint.NewRNG(9)
	pkts := make([]pint.PacketDigest, 400)
	vals := make([]pint.HopValues, len(pkts))
	for i := range pkts {
		pkts[i] = pint.PacketDigest{Flow: flow, PktID: rng.Uint64(), PathLen: len(path)}
	}
	for hop := 1; hop <= len(path); hop++ {
		for i := range vals {
			vals[i].SwitchID = path[hop-1]
		}
		engine.EncodeHopBatch(hop, pkts, vals)
	}

	// Collector side: a sharded sink wrapped in the daemon, with a QoS
	// policy giving every tenant a roomy quota.
	sink, err := pint.NewShardedSink(engine, pint.ShardConfig{Shards: 2, Base: 9})
	if err != nil {
		log.Fatal(err)
	}
	defer sink.Close()
	policy, err := pint.ParseTenantPolicy("*=1e9")
	if err != nil {
		log.Fatal(err)
	}
	srv, err := pint.NewCollector(engine,
		pint.WithSink(sink),
		pint.WithQueries(q),
		pint.WithTenantPolicy(policy),
	)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// Exporter side: the session handshake names the tenant.
	hello := pint.HelloFor(engine, 1, "example-switch")
	hello.Tenant = "team-a"
	ex, err := pint.DialCollector(ln.Addr().String(), hello)
	if err != nil {
		log.Fatal(err)
	}
	if err := ex.Send(pkts); err != nil {
		log.Fatal(err)
	}
	if err := ex.Close(); err != nil {
		log.Fatal(err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		log.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		log.Fatal(err)
	}

	st := srv.StatsV1()
	fmt.Println("schema:", st.Schema)
	for _, ts := range st.Tenants {
		fmt.Printf("tenant %s: offered %d admitted %d shed %d\n",
			ts.Tenant, ts.Offered, ts.Admitted, ts.Shed)
	}
	ids, done := sink.Snapshot().Path(q, flow)
	fmt.Println("path decoded:", done, ids)
	// Output:
	// schema: pint.stats.v1
	// tenant team-a: offered 400 admitted 400 shed 0
	// path decoded: true [11 33 55 77 88]
}

// ExampleNewFrontend stands up a two-member collector fleet, describes
// it with an epoch-versioned FleetMap, connects an exporter through the
// options API (each flow routed to its rendezvous home), and builds the
// merging query frontend from the same map — the document every
// component of a federated deployment agrees on.
func ExampleNewFrontend() {
	universe := []uint64{11, 22, 33, 44, 55, 66, 77, 88}
	cfg, err := pint.DefaultPathConfig(4, 2, 5)
	if err != nil {
		log.Fatal(err)
	}
	q, err := pint.NewPathQuery("path", cfg, 1.0, 7, universe)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := pint.Compile([]pint.Query{q}, 8, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Two fleet members: sink + collector + TCP ingest listener each.
	type member struct {
		sink *pint.ShardedSink
		srv  *pint.Collector
		ln   net.Listener
		err  chan error
	}
	names := []string{"node-a", "node-b"}
	members := make([]member, len(names))
	fleetMembers := make([]pint.FleetMember, len(names))
	for i := range members {
		sink, err := pint.NewShardedSink(engine, pint.ShardConfig{Shards: 2, Base: 9})
		if err != nil {
			log.Fatal(err)
		}
		defer sink.Close()
		srv, err := pint.NewCollector(engine, pint.WithSink(sink), pint.WithQueries(q), pint.WithEpoch(5))
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		serveErr := make(chan error, 1)
		go func() { serveErr <- srv.Serve(ln) }()
		members[i] = member{sink, srv, ln, serveErr}
		fleetMembers[i] = pint.FleetMember{
			Name:   names[i],
			Ingest: ln.Addr().String(),
			Query:  "http://" + ln.Addr().String(), // query side unused here
		}
	}
	fm, err := pint.NewFleetMap(5, fleetMembers)
	if err != nil {
		log.Fatal(err)
	}

	// Exporter side: Connect derives addresses, routing, and the session
	// epoch from the map; each flow's digests land on one home member.
	flows := []pint.FlowKey{pint.FlowKeyOf(7, "flow-a"), pint.FlowKeyOf(7, "flow-b")}
	fx, err := pint.Connect(engine, 1, "example-switch", pint.WithFleetMap(fm))
	if err != nil {
		log.Fatal(err)
	}
	path := []uint64{22, 44, 66, 88, 11}
	rng := pint.NewRNG(9)
	const perFlow = 200
	for _, flow := range flows {
		pkts := make([]pint.PacketDigest, perFlow)
		vals := make([]pint.HopValues, len(pkts))
		for i := range pkts {
			pkts[i] = pint.PacketDigest{Flow: flow, PktID: rng.Uint64(), PathLen: len(path)}
		}
		for hop := 1; hop <= len(path); hop++ {
			for i := range vals {
				vals[i].SwitchID = path[hop-1]
			}
			engine.EncodeHopBatch(hop, pkts, vals)
		}
		if err := fx.Send(pkts); err != nil {
			log.Fatal(err)
		}
	}
	if err := fx.Close(); err != nil {
		log.Fatal(err)
	}
	for i := range members {
		if err := members[i].srv.Shutdown(context.Background()); err != nil {
			log.Fatal(err)
		}
		if err := <-members[i].err; err != nil {
			log.Fatal(err)
		}
	}

	// The frontend is built from the same map; it serves it back on
	// GET /fleetmap for exporters (and pintload -gate) to fetch.
	fe, err := pint.NewFrontend(pint.WithFrontendFleetMap(fm))
	if err != nil {
		log.Fatal(err)
	}
	served := fe.CurrentFleetMap()
	fmt.Printf("fleet map: epoch %d, %d members\n", served.Epoch, len(served.Members))
	fmt.Println("exporter sessions:", fx.Members(), "at epoch", fx.Epoch())
	for i, flow := range flows {
		fmt.Printf("flow-%c homed on %s\n", 'a'+i, fm.HomeName(flow))
	}
	var total uint64
	for i := range members {
		total += members[i].srv.Stats().Packets
	}
	fmt.Println("fleet ingested:", total)
	// Output:
	// fleet map: epoch 5, 2 members
	// exporter sessions: 2 at epoch 5
	// flow-a homed on node-b
	// flow-b homed on node-a
	// fleet ingested: 400
}
