package pint

import (
	"repro/internal/admit"
	"repro/internal/collector"
	"repro/internal/pipeline"
	"repro/internal/wire"
)

// The networked collector API (internal/collector): the sharded sink
// behind real sockets. A Collector accepts many concurrent exporter
// connections, each streaming length-prefixed CRC-32C-framed digest
// batches (internal/wire's stream layer) that open with a versioned
// handshake carrying the exporter ID, its engine's PlanHash, and
// optionally a tenant label — a mismatched execution plan is refused at
// session setup. Decoded batches ingest into a ShardedSink with
// per-connection backpressure (bounded worker queues block the reader;
// TCP flow control does the rest), and Shutdown drains gracefully.
// Collector.Handler serves /healthz, /stats, and /snapshot over
// HTTP/JSON.
//
// Collectors are built from functional options over an engine:
//
//	sink, _ := pint.NewShardedSink(engine, pint.ShardConfig{Shards: 8, Base: seed})
//	srv, _ := pint.NewCollector(engine,
//	    pint.WithSink(sink),
//	    pint.WithQueries(queries...))
//	go srv.ListenAndServe("0.0.0.0:9777")
//
//	// switch side
//	ex, _ := pint.DialCollector("collector:9777", pint.HelloFor(engine, switchID, "tor-3-2"))
//	ex.Send(pkts)
//
// cmd/pintd wraps Collector as a daemon; cmd/pintload is the matching
// load generator.

// Collector is the TCP collector daemon.
type Collector = collector.Server

// CollectorConfig is the resolved configuration the collector options
// populate — the documented shape behind NewCollector, not its calling
// convention.
type CollectorConfig = collector.Config

// CollectorOption configures a Collector during NewCollector.
type CollectorOption = collector.Option

// CollectorStats is a point-in-time view of a Collector's counters.
type CollectorStats = collector.Stats

// NewCollector builds a collector over an engine from functional
// options; at minimum WithSink (or WithDurable) is required.
func NewCollector(engine *Engine, opts ...CollectorOption) (*Collector, error) {
	return collector.New(engine, opts...)
}

// The collector's functional options (see each collector.With* for the
// full contract).
var (
	// WithSink directs decoded digest batches into a ShardedSink.
	WithSink = collector.WithSink
	// WithQueries lists the engine's queries for the HTTP snapshot
	// endpoints.
	WithQueries = collector.WithQueries
	// WithEpoch fences sessions to a cluster partitioning epoch.
	WithEpoch = collector.WithEpoch
	// WithMaxFramePayload caps a frame's payload bytes.
	WithMaxFramePayload = collector.WithMaxFramePayload
	// WithDurable attaches a DurableSink (crash-safe segment log).
	WithDurable = collector.WithDurable
	// WithCheckpointEvery sets the durable checkpoint+fsync cadence.
	WithCheckpointEvery = collector.WithCheckpointEvery
	// WithHandshakeTimeout bounds the pre-Hello window.
	WithHandshakeTimeout = collector.WithHandshakeTimeout
	// WithLogf directs per-session event lines to a printf-style logger.
	WithLogf = collector.WithLogf
	// WithTenantPolicy enables the multi-tenant QoS layer (see
	// TenantPolicy).
	WithTenantPolicy = collector.WithTenantPolicy
)

// StatsV1 is the collector's versioned /stats document (schema tag
// StatsSchemaV1): server counters, sink totals, per-connection ingest
// counters, and the QoS/durable sections when configured. The federation
// frontend sums members with its Accumulate.
type StatsV1 = collector.StatsV1

// StatsSchemaV1 is the schema tag every v1 stats document carries.
const StatsSchemaV1 = collector.StatsSchemaV1

// Multi-tenant QoS (internal/admit): when a tenant exceeds its quota —
// or the collector as a whole exceeds what the sink absorbs — digests
// are admitted at a known sampling probability instead of stalling
// exporters, and the realized rate is published per tenant so every
// answer carries its exact error inflation. See TenantStats for the
// error envelope; the shedding is seeded and reproducible.

// TenantPolicy is the declarative QoS configuration passed to
// WithTenantPolicy; the zero value disables the layer.
type TenantPolicy = admit.Policy

// TenantQuota is one tenant's admission contract (sustained
// packets/second, burst depth, sampling floor).
type TenantQuota = admit.Quota

// CapacityConfig shapes the AIMD capacity controller that adapts total
// admission to sink stall feedback.
type CapacityConfig = admit.CapacityConfig

// TenantStats is one tenant's accounting and error envelope, served
// under "tenants" in /stats: count-style answers scale by CountScale =
// 1/p̂, KLL-backed quantile ranks widen by QuantileRankError.
type TenantStats = admit.TenantStats

// CapacityStats is the AIMD controller's telemetry, served under
// "capacity" in /stats.
type CapacityStats = admit.CapacityStats

// ParseTenantPolicy builds the quota side of a TenantPolicy from a
// flag-friendly spec: comma-separated name=rate[/burst[/minsample]]
// entries ('*' names the default quota).
func ParseTenantPolicy(spec string) (TenantPolicy, error) { return admit.ParsePolicy(spec) }

// DefaultTenant is the tenant a session without a Hello tenant label is
// accounted under.
const DefaultTenant = admit.DefaultTenant

// Exporter is the switch side of a collector session.
type Exporter = collector.Exporter

// DialCollector connects to a collector and performs the session
// handshake.
func DialCollector(addr string, hello Hello) (*Exporter, error) { return collector.Dial(addr, hello) }

// Hello is the session handshake an exporter opens with; set
// Hello.Tenant to attribute the session to a QoS tenant (empty means
// DefaultTenant, and keeps the wire handshake byte-identical to v2).
type Hello = wire.Hello

// HelloFor builds the handshake for an exporter compiled under eng's
// execution plan.
func HelloFor(eng *Engine, exporterID uint64, name string) Hello {
	return collector.HelloFor(eng, exporterID, name)
}

// FlowAnswers is the JSON-stable per-flow query answer set the
// collector's snapshot endpoint serves (and Answers computes).
type FlowAnswers = collector.FlowAnswers

// Answers evaluates every query for every listed flow against a
// quiescent Recording (e.g. a merged snapshot), in a fixed order so
// equal states produce byte-identical JSON.
func Answers(rec *Recording, queries []Query, flows []FlowKey) []FlowAnswers {
	return collector.Answers(rec, queries, flows)
}

// ShardStats is one sink shard's ingest counters (see ShardedSink.Stats,
// whose stall counts surface the backpressure OnStall observes).
type ShardStats = pipeline.ShardStats

// DurableSink is a sharded sink joined to its crash-safe segment log
// (internal/segstore; pintd -data-dir): every ingested batch is appended
// to the log off the hot path, and opening replays the log — recovering
// from torn tails a SIGKILL left behind — before the first Ingest, so a
// restarted collector answers bit-for-bit identically to one that never
// crashed, modulo the explicitly reported unflushed tail in Recovery.
type DurableSink = collector.DurableSink

// DurableOptions shapes a DurableSink's segment log: directory, rotation
// size, retention, and fsync policy.
type DurableOptions = collector.DurableOptions

// OpenDurableSink opens (recovering if needed) the segment log under
// opts.DataDir, builds the sharded sink, replays the log into it, and
// attaches the persistence writer. Pass the result through WithDurable
// to serve it (checkpoint cadence, historical /snapshot?since=&until=
// windows).
func OpenDurableSink(eng *Engine, queries []Query, cfg ShardConfig, opts DurableOptions) (*DurableSink, error) {
	return collector.OpenDurableSink(eng, queries, cfg, opts)
}
