package pint

import (
	"repro/internal/collector"
	"repro/internal/pipeline"
	"repro/internal/wire"
)

// The networked collector API (internal/collector): the sharded sink
// behind real sockets. A Collector accepts many concurrent exporter
// connections, each streaming length-prefixed CRC-32C-framed digest
// batches (internal/wire's stream layer) that open with a versioned
// handshake carrying the exporter ID and its engine's PlanHash — a
// mismatched execution plan is refused at session setup. Decoded batches
// ingest into a ShardedSink with per-connection backpressure (bounded
// worker queues block the reader; TCP flow control does the rest), and
// Shutdown drains gracefully. Collector.Handler serves /healthz, /stats,
// and /snapshot over HTTP/JSON.
//
//	sink, _ := pint.NewShardedSink(engine, pint.ShardConfig{Shards: 8, Base: seed})
//	srv, _ := pint.NewCollector(pint.CollectorConfig{Engine: engine, Sink: sink, Queries: queries})
//	go srv.ListenAndServe("0.0.0.0:9777")
//
//	// switch side
//	ex, _ := pint.DialCollector("collector:9777", pint.HelloFor(engine, switchID, "tor-3-2"))
//	ex.Send(pkts)
//
// cmd/pintd wraps Collector as a daemon; cmd/pintload is the matching
// load generator.

// Collector is the TCP collector daemon.
type Collector = collector.Server

// CollectorConfig shapes a Collector.
type CollectorConfig = collector.Config

// CollectorStats is a point-in-time view of a Collector's counters.
type CollectorStats = collector.Stats

// NewCollector builds a collector over an engine and its sharded sink.
func NewCollector(cfg CollectorConfig) (*Collector, error) { return collector.New(cfg) }

// Exporter is the switch side of a collector session.
type Exporter = collector.Exporter

// DialCollector connects to a collector and performs the session
// handshake.
func DialCollector(addr string, hello Hello) (*Exporter, error) { return collector.Dial(addr, hello) }

// Hello is the session handshake an exporter opens with.
type Hello = wire.Hello

// HelloFor builds the handshake for an exporter compiled under eng's
// execution plan.
func HelloFor(eng *Engine, exporterID uint64, name string) Hello {
	return collector.HelloFor(eng, exporterID, name)
}

// FlowAnswers is the JSON-stable per-flow query answer set the
// collector's snapshot endpoint serves (and Answers computes).
type FlowAnswers = collector.FlowAnswers

// Answers evaluates every query for every listed flow against a
// quiescent Recording (e.g. a merged snapshot), in a fixed order so
// equal states produce byte-identical JSON.
func Answers(rec *Recording, queries []Query, flows []FlowKey) []FlowAnswers {
	return collector.Answers(rec, queries, flows)
}

// ShardStats is one sink shard's ingest counters (see ShardedSink.Stats,
// whose stall counts surface the backpressure OnStall observes).
type ShardStats = pipeline.ShardStats

// DurableSink is a sharded sink joined to its crash-safe segment log
// (internal/segstore; pintd -data-dir): every ingested batch is appended
// to the log off the hot path, and opening replays the log — recovering
// from torn tails a SIGKILL left behind — before the first Ingest, so a
// restarted collector answers bit-for-bit identically to one that never
// crashed, modulo the explicitly reported unflushed tail in Recovery.
type DurableSink = collector.DurableSink

// DurableOptions shapes a DurableSink's segment log: directory, rotation
// size, retention, and fsync policy.
type DurableOptions = collector.DurableOptions

// OpenDurableSink opens (recovering if needed) the segment log under
// opts.DataDir, builds the sharded sink, replays the log into it, and
// attaches the persistence writer. Pass the result as
// CollectorConfig.Durable to serve it (checkpoint cadence, historical
// /snapshot?since=&until= windows).
func OpenDurableSink(eng *Engine, queries []Query, cfg ShardConfig, opts DurableOptions) (*DurableSink, error) {
	return collector.OpenDurableSink(eng, queries, cfg, opts)
}
