package pint

import (
	"net/http"
	"time"

	"repro/internal/collector"
	"repro/internal/federation"
)

// The federated collector API (internal/federation): a fleet of
// Collectors behind an exporter-side flow partitioner and a merging
// query frontend, so the recording tier scales by adding machines.
//
// Three invariants make a fleet answer exactly like one big collector:
// every flow routes to exactly one home member (Partitioner), sessions
// are fenced by a cluster epoch (CollectorConfig.Epoch / Hello.Epoch) so
// a repartitioned exporter cannot mix fleet maps, and queries merge the
// members' disjoint flow sets in flow-key order (Frontend — the HTTP
// image of Recording merging in the sharded sink).
//
// The fleet's configuration travels as an epoch-versioned FleetMap
// (membership + addresses; the routing is derived by rendezvous hashing,
// never serialized). Exporters connect through the options API and — with
// a roster fetch — follow a live fleet resize end to end: the collectors
// fence the old epoch, moving flows' recording state ships to its new
// homes, and the exporters re-partition and re-handshake when the new map
// publishes:
//
//	fm, _ := pint.ParseFleetMap(mapJSON) // e.g. GET /fleetmap from pintgate
//	fx, _ := pint.Connect(engine, 7, "tor-7",
//	        pint.WithFleetMap(fm),
//	        pint.WithRosterFetch(fetch))
//	fx.Send(pkts) // each digest routed to its flow's home collector
//
//	fe, _ := pint.NewFrontend(pint.WithFrontendFleetMap(fm))
//	http.ListenAndServe(":9700", fe.Handler())
//
// cmd/pintd -epoch, cmd/pintload -addr a,b,c, and cmd/pintgate are the
// same pieces as daemons; the federated-scale scenario pins the fleet's
// byte-identity to a single collector, and the fleet-resize scenario pins
// a mid-stream resize's byte-identity to a fleet that started at the
// final membership.

// Partitioner maps flow keys to fleet members by rendezvous hashing —
// deterministic, balanced, and consistent under membership changes.
type Partitioner = federation.Partitioner

// NewPartitioner builds the flow→member map over the fleet's stable
// member names. Every component of one deployment must use the identical
// list.
func NewPartitioner(members []string) (*Partitioner, error) {
	return federation.NewPartitioner(members)
}

// FleetMap is the epoch-versioned fleet configuration: membership,
// addresses, and the partitioning epoch, as served on /fleetmap. It
// implements the roster interface Connect's WithFleetMap takes.
type FleetMap = federation.FleetMap

// FleetMember is one fleet node's entry in a FleetMap.
type FleetMember = federation.FleetMember

// NewFleetMap builds and validates a fleet map.
func NewFleetMap(epoch uint64, members []FleetMember) (*FleetMap, error) {
	return federation.NewFleetMap(epoch, members)
}

// ParseFleetMap decodes and validates a JSON fleet map (the body of
// GET /fleetmap).
func ParseFleetMap(data []byte) (*FleetMap, error) {
	return federation.ParseFleetMap(data)
}

// Move is one flow's relocation in a fleet resize plan.
type Move = federation.Move

// Rebalance plans a resize: exactly the flows whose rendezvous home
// changed between the two maps, nothing else.
func Rebalance(oldMap, newMap *FleetMap, flows []FlowKey) ([]Move, error) {
	return federation.Rebalance(oldMap, newMap, flows)
}

// FleetExporter streams digest batches to a collector fleet, routing
// every packet to its flow's home member. Built with a roster fetch
// (WithRosterFetch) it survives fleet resizes: it re-partitions its
// unsent buffers under the new map and re-handshakes at the new epoch,
// losing nothing.
type FleetExporter = collector.FleetExporter

// FleetRoster is the exporter-side view of a fleet configuration
// (FleetMap implements it).
type FleetRoster = collector.FleetRoster

// DialOption configures Connect.
type DialOption = collector.DialOption

// Connect is the options entry point for exporter-session construction —
// single-node and fleet sessions share it:
//
//	fx, err := pint.Connect(engine, 7, "tor-7",
//	        pint.WithFleetMap(fm),
//	        pint.WithRosterFetch(fetch),
//	        pint.WithTenant("team-a"))
func Connect(engine *Engine, exporterID uint64, name string, opts ...DialOption) (*FleetExporter, error) {
	return collector.Connect(engine, exporterID, name, opts...)
}

// WithAddrs sets the collector addresses explicitly.
func WithAddrs(addrs ...string) DialOption { return collector.WithAddrs(addrs...) }

// WithRoute sets the flow→member routing function explicitly.
func WithRoute(route func(FlowKey) int) DialOption { return collector.WithRoute(route) }

// WithSessionEpoch sets the cluster epoch the session handshake carries.
func WithSessionEpoch(epoch uint64) DialOption { return collector.WithSessionEpoch(epoch) }

// WithTenant labels the session with a QoS tenant.
func WithTenant(tenant string) DialOption { return collector.WithTenant(tenant) }

// WithCoalesce sets the per-session write-coalescing threshold in bytes.
func WithCoalesce(bytes int) DialOption { return collector.WithCoalesce(bytes) }

// WithFleetMap derives addresses, routing, and epoch from a fleet map.
func WithFleetMap(roster FleetRoster) DialOption { return collector.WithFleetMap(roster) }

// WithRosterFetch enables live re-routing across fleet resizes: fetch is
// polled for the current map whenever the session's epoch goes stale.
func WithRosterFetch(fetch func() (FleetRoster, error)) DialOption {
	return collector.WithRosterFetch(fetch)
}

// DialCollectorFleet opens one exporter session per fleet member and
// routes each flow by route (e.g. Partitioner.Route()). It is the static
// compatibility path for Connect: the sessions are pinned to addrs and
// hello.Epoch for their whole life.
func DialCollectorFleet(addrs []string, hello Hello, route func(FlowKey) int, batch int) (*FleetExporter, error) {
	return collector.DialFleet(addrs, hello, route, batch)
}

// Frontend is the fleet's merging query endpoint: it fans /snapshot,
// /stats, and /healthz out to every member and folds the answers into
// single-collector-shaped JSON, with explicit partial results (the
// PartialHeader plus a per-node error list) when members are down. Built
// with a fleet map it also serves GET/POST /fleetmap and excludes
// epoch-stale members from the merge.
type Frontend = federation.Frontend

// FrontendOption configures NewFrontend.
type FrontendOption = federation.FrontendOption

// NodeError names one fleet member's failure in a partial result.
type NodeError = federation.NodeError

// NodeErrorEpochStale is the NodeError.Kind for a member answering from
// a different fleet epoch than the frontend's map (a resize in flight).
const NodeErrorEpochStale = federation.NodeErrorEpochStale

// PartialHeader marks a response merged from a degraded fleet.
const PartialHeader = federation.PartialHeader

// NewFrontend builds a query frontend through functional options:
//
//	fe, err := pint.NewFrontend(pint.WithFrontendFleetMap(fm))
//	fe, err := pint.NewFrontend(pint.WithFrontendMembers("http://tor-a:9778"))
func NewFrontend(opts ...FrontendOption) (*Frontend, error) {
	return federation.NewFrontend(opts...)
}

// NewStaticFrontend builds a frontend over a bare list of member query
// URLs — the compatibility path for the pre-options constructor.
func NewStaticFrontend(nodes []string) (*Frontend, error) {
	return federation.NewStaticFrontend(nodes)
}

// WithFrontendMembers sets the frontend's member query URLs explicitly.
// (The federation package names this WithMembers; the facade qualifies
// frontend options to keep them distinct from the exporter-side dial
// options above.)
func WithFrontendMembers(urls ...string) FrontendOption { return federation.WithMembers(urls...) }

// WithFrontendFleetMap seeds the frontend with the fleet's map: members
// follow the map, /fleetmap serves it, epoch-stale members are excluded.
func WithFrontendFleetMap(m *FleetMap) FrontendOption { return federation.WithFleetMap(m) }

// WithFrontendTimeout bounds each fan-out request (default 10s).
func WithFrontendTimeout(d time.Duration) FrontendOption { return federation.WithTimeout(d) }

// WithFrontendClient supplies the HTTP client for fan-out requests.
func WithFrontendClient(client *http.Client) FrontendOption { return federation.WithClient(client) }
