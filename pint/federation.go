package pint

import (
	"repro/internal/collector"
	"repro/internal/federation"
)

// The federated collector API (internal/federation): a fleet of
// Collectors behind an exporter-side flow partitioner and a merging
// query frontend, so the recording tier scales by adding machines.
//
// Three invariants make a fleet answer exactly like one big collector:
// every flow routes to exactly one home member (Partitioner), sessions
// are fenced by a cluster epoch (CollectorConfig.Epoch / Hello.Epoch) so
// a repartitioned exporter cannot mix fleet maps, and queries merge the
// members' disjoint flow sets in flow-key order (Frontend — the HTTP
// image of Recording merging in the sharded sink).
//
//	part, _ := pint.NewPartitioner([]string{"tor-a:9777", "tor-b:9777"})
//	fx, _ := pint.DialCollectorFleet(addrs, hello, part.Route(), 256)
//	fx.Send(pkts) // each digest routed to its flow's home collector
//
//	fe, _ := pint.NewFrontend([]string{"http://tor-a:9778", "http://tor-b:9778"})
//	http.ListenAndServe(":9700", fe.Handler())
//
// cmd/pintd -epoch, cmd/pintload -addr a,b,c, and cmd/pintgate are the
// same pieces as daemons; the federated-scale scenario pins the fleet's
// byte-identity to a single collector.

// Partitioner maps flow keys to fleet members by rendezvous hashing —
// deterministic, balanced, and consistent under membership changes.
type Partitioner = federation.Partitioner

// NewPartitioner builds the flow→member map over the fleet's stable
// member names. Every component of one deployment must use the identical
// list.
func NewPartitioner(members []string) (*Partitioner, error) {
	return federation.NewPartitioner(members)
}

// FleetExporter streams digest batches to a collector fleet, routing
// every packet to its flow's home member.
type FleetExporter = collector.FleetExporter

// DialCollectorFleet opens one exporter session per fleet member and
// routes each flow by route (e.g. Partitioner.Route()).
func DialCollectorFleet(addrs []string, hello Hello, route func(FlowKey) int, batch int) (*FleetExporter, error) {
	return collector.DialFleet(addrs, hello, route, batch)
}

// Frontend is the fleet's merging query endpoint: it fans /snapshot,
// /stats, and /healthz out to every member and folds the answers into
// single-collector-shaped JSON, with explicit partial results (the
// PartialHeader plus a per-node error list) when members are down.
type Frontend = federation.Frontend

// NodeError names one fleet member's failure in a partial result.
type NodeError = federation.NodeError

// PartialHeader marks a response merged from a degraded fleet.
const PartialHeader = federation.PartialHeader

// NewFrontend builds a query frontend over the fleet members' HTTP base
// URLs.
func NewFrontend(nodes []string) (*Frontend, error) {
	return federation.NewFrontend(nodes)
}
