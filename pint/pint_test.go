// Package pint_test exercises the public API exactly as a downstream user
// would: no internal imports, everything through the pint facade.
package pint_test

import (
	"context"
	"fmt"
	"math"
	"net"
	"testing"
	"time"

	"repro/pint"
)

func universe(n int) []uint64 {
	u := make([]uint64, n)
	for i := range u {
		u[i] = 0x5A000000 + uint64(i)
	}
	return u
}

func TestPublicPathTracing(t *testing.T) {
	uni := universe(100)
	truth := uni[:8]
	cfg, err := pint.DefaultPathConfig(8, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	q, err := pint.NewPathQuery("path", cfg, 1, 1, uni)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := pint.Compile([]pint.Query{q}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := pint.NewRecording(engine, 0, pint.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	flow := pint.FlowKeyOf(1, "flow-a")
	rng := pint.NewRNG(2)
	for i := 0; i < 20000; i++ {
		pkt := rng.Uint64()
		var digest uint64
		for hop := 1; hop <= len(truth); hop++ {
			h := hop
			digest = engine.EncodeHop(pkt, hop, digest,
				func(pint.Query) uint64 { return truth[h-1] })
		}
		if err := rec.Record(flow, len(truth), pkt, digest); err != nil {
			t.Fatal(err)
		}
		if ids, done := rec.Path(q, flow); done {
			for j := range truth {
				if ids[j] != truth[j] {
					t.Fatalf("hop %d: got %#x want %#x", j+1, ids[j], truth[j])
				}
			}
			return
		}
	}
	t.Fatal("path not decoded through the public API")
}

func TestPublicMultiQueryBudget(t *testing.T) {
	uni := universe(64)
	cfg, _ := pint.DefaultPathConfig(8, 1, 5)
	path, err := pint.NewPathQuery("path", cfg, 1, 3, uni)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := pint.NewLatencyQuery("lat", 8, 0.04, 15.0/16, 3)
	if err != nil {
		t.Fatal(err)
	}
	util, err := pint.NewUtilQuery("hpcc", 8, 0.025, 1.0/16, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := pint.Compile([]pint.Query{path, lat, util}, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan := engine.Plan()
	if len(plan.Sets) != 2 {
		t.Fatalf("expected the paper's 2-set plan, got %d sets", len(plan.Sets))
	}
	// Over-budget plans must be rejected through the facade too.
	if _, err := pint.Compile([]pint.Query{path, lat, util}, 8, 3); err == nil {
		t.Fatal("8-bit budget cannot fit 16.5 bits of demand")
	}
}

func TestPublicFreqAndCountQueries(t *testing.T) {
	fq, err := pint.NewFreqQuery("ports", 8, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := pint.NewCountQuery("spikes", 6, 0.3, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := pint.Compile([]pint.Query{fq, cq}, 14, 5)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := pint.NewRecording(engine, 0, pint.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	flow := pint.FlowKey(9)
	rng := pint.NewRNG(7)
	const k = 4
	for i := 0; i < 20000; i++ {
		pkt := rng.Uint64()
		var digest uint64
		for hop := 1; hop <= k; hop++ {
			h := hop
			digest = engine.EncodeHop(pkt, hop, digest, func(q pint.Query) uint64 {
				switch q.(type) {
				case *pint.FreqQuery:
					return uint64(h) // hop h always uses port h
				case *pint.CountQuery:
					if h == 2 {
						return 1 // exactly one indicator hop
					}
					return 0
				}
				return 0
			})
		}
		if err := rec.Record(flow, k, pkt, digest); err != nil {
			t.Fatal(err)
		}
	}
	hh := rec.FrequentValues(fq, flow, 3, 0.5)
	if len(hh) != 1 || hh[0].Value != 3 {
		t.Fatalf("hop 3 frequent values: %v, want port 3", hh)
	}
	series := rec.CountSeries(cq, flow)
	var mean float64
	for _, v := range series {
		mean += v
	}
	mean /= float64(len(series))
	if math.Abs(mean-1) > 0.15 {
		t.Fatalf("mean indicator count %v, want ~1", mean)
	}
}

func TestPublicLoopDetector(t *testing.T) {
	d, err := pint.NewLoopDetector(16, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	loop := []uint64{1, 2, 3}
	rng := pint.NewRNG(8)
	detected := 0
	for i := 0; i < 500; i++ {
		if c := d.RunWithLoop(rng.Uint64(), []uint64{10, 11}, loop, 100); c > 0 {
			detected++
		}
	}
	if detected < 250 {
		t.Fatalf("only %d/500 loops detected", detected)
	}
}

func TestPublicCatalog(t *testing.T) {
	if len(pint.Catalog()) != 11 {
		t.Fatal("catalog must expose Table 2's 11 use cases")
	}
	if pint.StaticPerFlow == pint.DynamicPerFlow {
		t.Fatal("aggregation constants must be distinct")
	}
}

func TestPublicMultiLayer(t *testing.T) {
	l := pint.MultiLayer(25, true)
	if l.Layers() != 2 {
		t.Fatalf("d=25 must use 2 XOR layers, got %d", l.Layers())
	}
}

// TestPublicBatchPipeline drives the compiled batch path end to end
// through the facade: EncodeHopBatch on the switch side, a sharded sink
// on the recording side, and serial-equivalence of the answers.
func TestPublicBatchPipeline(t *testing.T) {
	uni := universe(64)
	truth := uni[:6]
	cfg, err := pint.DefaultPathConfig(8, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	q, err := pint.NewPathQuery("path", cfg, 1, 3, uni)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := pint.Compile([]pint.Query{q}, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	flow := pint.FlowKeyOf(3, "flow-batch")
	rng := pint.NewRNG(4)
	pkts := make([]pint.PacketDigest, 600)
	vals := make([]pint.HopValues, len(pkts))
	for i := range pkts {
		pkts[i] = pint.PacketDigest{Flow: flow, PktID: rng.Uint64(), PathLen: len(truth)}
	}
	for hop := 1; hop <= len(truth); hop++ {
		for i := range vals {
			vals[i].SwitchID = truth[hop-1]
		}
		engine.EncodeHopBatch(hop, pkts, vals)
	}

	serial, err := pint.NewRecordingSeeded(engine, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.RecordBatch(pkts); err != nil {
		t.Fatal(err)
	}
	sink, err := pint.NewShardedSink(engine, pint.ShardConfig{Shards: 3, Base: 9})
	if err != nil {
		t.Fatal(err)
	}
	sink.Ingest(pkts)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	want, okW := serial.Path(q, flow)
	got, okG := sink.Path(q, flow)
	if !okW || !okG {
		t.Fatalf("path did not decode (serial %v, sharded %v)", okW, okG)
	}
	for i := range truth {
		if want[i] != truth[i] || got[i] != truth[i] {
			t.Fatalf("hop %d: serial %d sharded %d want %d", i+1, want[i], got[i], truth[i])
		}
	}
}

func TestPublicScenarioAPI(t *testing.T) {
	names := pint.Scenarios()
	if len(names) < 16 {
		t.Fatalf("scenario registry exposes only %d entries", len(names))
	}
	if _, ok := pint.LookupScenario("fig5"); !ok {
		t.Fatal("fig5 not exposed")
	}
	s := pint.QuickScale()
	s.Trials = 2
	res, err := pint.RunScenarios([]string{"pathtrace"}, pint.ScenarioOptions{Scale: s, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Tables) == 0 {
		t.Fatalf("unexpected result shape: %+v", res)
	}
	// A user-defined scenario runs through the same engine.
	custom := pint.Scenario{
		Name:   "user-defined",
		Figure: "new",
		Desc:   "public API smoke",
		Plan: func(sc pint.Scale) ([]pint.ScenarioTrial, error) {
			return []pint.ScenarioTrial{{Name: "one", Run: func() (any, error) { return 41 + 1, nil }}}, nil
		},
		Reduce: func(sc pint.Scale, outs []any) ([]pint.Table, error) {
			return []pint.Table{{Title: "custom", Columns: []string{"v"},
				Rows: [][]string{{fmt.Sprintf("%d", outs[0].(int))}}}}, nil
		},
	}
	got, err := pint.RunScenario(&custom, pint.ScenarioOptions{Scale: pint.QuickScale()})
	if err != nil {
		t.Fatal(err)
	}
	if got.Tables[0].Rows[0][0] != "42" {
		t.Fatalf("custom scenario produced %q", got.Tables[0].Rows[0][0])
	}
}

// TestPublicCollectorAPI runs a miniature networked deployment entirely
// through the facade: compile, encode a flow, stream it to a Collector
// over loopback TCP, drain, and read the answers back.
func TestPublicCollectorAPI(t *testing.T) {
	uni := universe(64)
	truth := uni[:6]
	cfg, err := pint.DefaultPathConfig(8, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	q, err := pint.NewPathQuery("path", cfg, 1, 3, uni)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := pint.Compile([]pint.Query{q}, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	flow := pint.FlowKeyOf(3, "flow-collector")
	rng := pint.NewRNG(4)
	pkts := make([]pint.PacketDigest, 600)
	vals := make([]pint.HopValues, len(pkts))
	for i := range pkts {
		pkts[i] = pint.PacketDigest{Flow: flow, PktID: rng.Uint64(), PathLen: len(truth)}
	}
	for hop := 1; hop <= len(truth); hop++ {
		for i := range vals {
			vals[i].SwitchID = truth[hop-1]
		}
		engine.EncodeHopBatch(hop, pkts, vals)
	}

	sink, err := pint.NewShardedSink(engine, pint.ShardConfig{Shards: 2, Base: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	srv, err := pint.NewCollector(engine, pint.WithSink(sink), pint.WithQueries(q))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ex, err := pint.DialCollector(ln.Addr().String(), pint.HelloFor(engine, 1, "public-api"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Send(pkts); err != nil {
		t.Fatal(err)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Packets; got != uint64(len(pkts)) {
		t.Fatalf("collector ingested %d packets, want %d", got, len(pkts))
	}

	merged, err := sink.Snapshot().Merged()
	if err != nil {
		t.Fatal(err)
	}
	answers := pint.Answers(merged, []pint.Query{q}, []pint.FlowKey{flow})
	if len(answers) != 1 || !answers[0].Answers[0].Done {
		t.Fatalf("flow did not decode over the wire: %+v", answers)
	}
	for i, id := range answers[0].Answers[0].Path {
		if id != truth[i] {
			t.Fatalf("hop %d decoded %#x, want %#x", i+1, id, truth[i])
		}
	}
}

// TestPublicFederationAPI drives the federated tier through the facade: a
// two-member collector fleet, the consistent-hash partitioner routing a
// fleet exporter's flows to their homes under an epoch-fenced handshake,
// per-member Recordings folded with Merge, and the merging query frontend
// answering over both members' HTTP endpoints.
func TestPublicFederationAPI(t *testing.T) {
	uni := universe(64)
	truth := uni[:6]
	cfg, err := pint.DefaultPathConfig(8, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	q, err := pint.NewPathQuery("path", cfg, 1, 3, uni)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := pint.Compile([]pint.Query{q}, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	const (
		nFlows  = 6
		perFlow = 600
		epoch   = 12
	)
	flows := make([]pint.FlowKey, nFlows)
	for i := range flows {
		flows[i] = pint.FlowKeyOf(3, fmt.Sprintf("fed-flow-%d", i))
	}
	rng := pint.NewRNG(4)
	pkts := make([]pint.PacketDigest, 0, nFlows*perFlow)
	for _, flow := range flows {
		for j := 0; j < perFlow; j++ {
			pkts = append(pkts, pint.PacketDigest{Flow: flow, PktID: rng.Uint64(), PathLen: len(truth)})
		}
	}
	vals := make([]pint.HopValues, len(pkts))
	for hop := 1; hop <= len(truth); hop++ {
		for i := range vals {
			vals[i].SwitchID = truth[hop-1]
		}
		engine.EncodeHopBatch(hop, pkts, vals)
	}

	part, err := pint.NewPartitioner([]string{"member-0", "member-1"})
	if err != nil {
		t.Fatal(err)
	}
	homes := map[int]bool{}
	for _, flow := range flows {
		homes[part.Home(flow)] = true
	}
	if len(homes) != 2 {
		t.Fatalf("partitioner routed all %d flows to one member", nFlows)
	}

	type member struct {
		sink *pint.ShardedSink
		srv  *pint.Collector
		ln   net.Listener
		errc chan error
	}
	var members [2]*member
	var addrs []string
	for i := range members {
		sink, err := pint.NewShardedSink(engine, pint.ShardConfig{Shards: 2, Base: 9})
		if err != nil {
			t.Fatal(err)
		}
		defer sink.Close()
		srv, err := pint.NewCollector(engine,
			pint.WithSink(sink), pint.WithQueries(q), pint.WithEpoch(epoch))
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		m := &member{sink: sink, srv: srv, ln: ln, errc: make(chan error, 1)}
		go func() { m.errc <- srv.Serve(ln) }()
		members[i] = m
		addrs = append(addrs, ln.Addr().String())
	}

	hello := pint.HelloFor(engine, 1, "public-fleet")
	if _, err := pint.DialCollectorFleet(addrs, hello, part.Route(), 128); err == nil {
		t.Fatal("epoch-less exporter accepted by an epoch-fenced fleet")
	}
	hello.Epoch = epoch
	fx, err := pint.DialCollectorFleet(addrs, hello, part.Route(), 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := fx.Send(pkts); err != nil {
		t.Fatal(err)
	}
	if err := fx.Close(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var ingested uint64
	for _, m := range members {
		if err := m.srv.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		if err := <-m.errc; err != nil {
			t.Fatal(err)
		}
		ingested += m.srv.Stats().Packets
	}
	if ingested != uint64(len(pkts)) {
		t.Fatalf("fleet ingested %d packets, want %d", ingested, len(pkts))
	}

	merged, err := members[0].sink.Snapshot().Merged()
	if err != nil {
		t.Fatal(err)
	}
	other, err := members[1].sink.Snapshot().Merged()
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(other); err != nil {
		t.Fatal(err)
	}
	for _, fa := range pint.Answers(merged, []pint.Query{q}, flows) {
		if !fa.Answers[0].Done {
			t.Fatalf("flow %d did not decode across the fleet: %+v", fa.Flow, fa)
		}
		for i, id := range fa.Answers[0].Path {
			if id != truth[i] {
				t.Fatalf("flow %d hop %d decoded %#x, want %#x", fa.Flow, i+1, id, truth[i])
			}
		}
	}

	if _, err := pint.NewFrontend(nil); err == nil {
		t.Fatal("frontend over zero nodes accepted")
	}
}
