// Package pint is the public API of this PINT reproduction (Ben Basat et
// al., "PINT: Probabilistic In-band Network Telemetry", SIGCOMM 2020).
//
// PINT answers telemetry queries — "what path do this flow's packets
// take?", "what is the median latency at each hop?", "how utilized is the
// bottleneck link?" — while adding only a fixed, user-chosen number of
// bits to each packet (as low as one). Instead of stacking per-hop
// records like classic INT, switches probabilistically fold their
// information into a constant-width digest coordinated by global hash
// functions, and an offline Inference Module reconstructs the answers
// from many packets.
//
// # Quick start
//
//	universe := []uint64{...}                 // all switch IDs
//	cfg, _ := pint.DefaultPathConfig(8, 1, 10) // 8-bit budget, d=10
//	q, _ := pint.NewPathQuery("path", cfg, 1.0, seed, universe)
//	engine, _ := pint.Compile([]pint.Query{q}, 8, seed)
//
//	// On each switch (hop h) for each packet:
//	digest = engine.EncodeHop(pktID, h, digest, func(pint.Query) uint64 {
//	    return mySwitchID
//	})
//
//	// At the sink:
//	rec, _ := pint.NewRecording(engine, 0, rng)
//	rec.Record(flowKey, pathLen, pktID, digest)
//	ids, done := rec.Path(q, flowKey)
//
// # Batch and sharded hot path
//
// The closure API above is the didactic path. The compiled batch pipeline
// runs the same plan with no interface dispatch, no closures and zero
// per-packet allocations, and shards sink-side recording across cores
// with answers bit-identical to the serial path:
//
//	pkts := []pint.PacketDigest{{Flow: flow, PktID: id, PathLen: k}, ...}
//	vals := []pint.HopValues{{SwitchID: sw, LatencyNs: lat}, ...}
//	engine.EncodeHopBatch(hop, pkts, vals)  // per hop, in place
//
//	sink, _ := pint.NewShardedSink(engine, pint.ShardConfig{Shards: 8, Base: seed})
//	sink.Ingest(pkts)
//	_ = sink.Close()
//	ids, done := sink.Path(q, flow)
//
// The sink runs as a long-lived collector: digest batches travel
// switch→collector in a compact wire format (MarshalDigests /
// UnmarshalDigests), per-shard flow state is bounded by a pluggable
// eviction policy whose evictions surface finalized answers through a
// callback, and Snapshot() answers queries concurrently with ingestion:
//
//	sink, _ := pint.NewShardedSink(engine, pint.ShardConfig{
//	    Shards: 8, Base: seed,
//	    Policy:  func() pint.EvictionPolicy { return pint.NewLRU(1 << 20) },
//	    OnEvict: func(ev pint.Eviction, rec *pint.Recording) { /* export answers */ },
//	})
//	sink.Ingest(pkts)           // from the tap, forever
//	snap := sink.Snapshot()     // from any goroutine, no flush needed
//	ids, done := snap.Path(q, flow)
//
// # Collector daemon and multi-tenant QoS
//
// NewCollector wraps a sink in the streaming collector daemon — TCP
// exporter sessions, versioned /stats, durable segment logs — configured
// through functional options:
//
//	policy, _ := pint.ParseTenantPolicy("hog=50000,*=1e6")
//	srv, _ := pint.NewCollector(engine,
//	    pint.WithSink(sink),
//	    pint.WithQueries(q),
//	    pint.WithTenantPolicy(policy),
//	)
//
// A tenant policy turns overload into accuracy instead of backpressure:
// each session's handshake names a tenant, an over-quota tenant's frames
// are thinned to a known per-tenant sampling rate p, and /stats publishes
// the resulting error envelope (count answers scale by 1/p; quantile
// answers gain a bounded rank error). In-quota tenants are untouched —
// their answers stay byte-identical to an unpoliced collector. See
// TenantPolicy, TenantStats and CapacityConfig.
//
// # Elastic fleet
//
// Collectors federate into fleets that resize live: an epoch-versioned
// FleetMap names the members, Connect routes each flow to its
// rendezvous-hash home (and re-homes mid-stream when the map's epoch
// moves), and a resize hands the moving flows' complete recording state
// to their new homes with zero loss — answers stay byte-identical to a
// fleet started at the new membership. See FleetMap, Connect,
// NewFrontend, and the runnable ExampleNewFrontend; federation.go in
// this package documents the invariants.
//
// The subpackages referenced here live under internal/; this package
// re-exports everything a downstream user needs.
package pint

import (
	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/pipeline"
	"repro/internal/wire"
)

// Seed identifies a deployment-wide global hash family. All switches and
// the inference plane must share it.
type Seed = hash.Seed

// RNG is the deterministic random generator used by recording-side
// sketches.
type RNG = hash.RNG

// NewRNG seeds an RNG.
func NewRNG(seed uint64) *RNG { return hash.NewRNG(seed) }

// Query is one telemetry query; see NewPathQuery, NewLatencyQuery and
// NewUtilQuery for the three aggregation modes of §3.1.
type Query = core.Query

// AggregationType enumerates the aggregation modes.
type AggregationType = core.AggregationType

// Aggregation modes.
const (
	PerPacket      = core.PerPacket
	StaticPerFlow  = core.StaticPerFlow
	DynamicPerFlow = core.DynamicPerFlow
)

// PathQuery recovers a flow's path (static per-flow aggregation).
type PathQuery = core.PathQuery

// LatencyQuery estimates per-hop latency quantiles (dynamic per-flow).
type LatencyQuery = core.LatencyQuery

// UtilQuery tracks the path's bottleneck utilization (per-packet).
type UtilQuery = core.UtilQuery

// CodingConfig configures a static query's distributed coding scheme.
type CodingConfig = coding.Config

// Layering distributes packets across Baseline and XOR coding layers.
type Layering = coding.Layering

// MultiLayer builds Algorithm 1's layering for assumed path length d.
func MultiLayer(d int, revised bool) Layering { return coding.MultiLayer(d, revised) }

// DefaultPathConfig returns the standard hashed-mode path-tracing setup:
// bits per hash instance, instance count, assumed path length d.
func DefaultPathConfig(bits, instances, d int) (CodingConfig, error) {
	return core.DefaultPathConfig(bits, instances, d)
}

// NewPathQuery creates a path-tracing query over a switch-ID universe.
func NewPathQuery(name string, cfg CodingConfig, freq float64, seed Seed, universe []uint64) (*PathQuery, error) {
	return core.NewPathQuery(name, cfg, freq, seed, universe)
}

// NewLatencyQuery creates a latency-quantile query with the given digest
// budget and multiplicative compression error eps.
func NewLatencyQuery(name string, bits int, eps, freq float64, seed Seed) (*LatencyQuery, error) {
	return core.NewLatencyQuery(name, bits, eps, freq, seed)
}

// NewUtilQuery creates a bottleneck-utilization query.
func NewUtilQuery(name string, bits int, eps, freq, scale float64, seed Seed) (*UtilQuery, error) {
	return core.NewUtilQuery(name, bits, eps, freq, scale, seed)
}

// FreqQuery reports values appearing in at least a θ-fraction of a
// (flow, hop) stream (Theorem 2) — e.g. which egress port a switch used.
type FreqQuery = core.FreqQuery

// NewFreqQuery creates a frequent-values query; observed values must fit
// the bit budget.
func NewFreqQuery(name string, bits int, freq float64, seed Seed) (*FreqQuery, error) {
	return core.NewFreqQuery(name, bits, freq, seed)
}

// CountQuery counts indicator-firing hops along the path with a Morris
// counter (§4.3, randomized counting).
type CountQuery = core.CountQuery

// NewCountQuery creates a randomized-counting query with accuracy eps.
func NewCountQuery(name string, bits int, eps, freq float64, seed Seed) (*CountQuery, error) {
	return core.NewCountQuery(name, bits, eps, freq, seed)
}

// Engine coordinates compiled queries between switches and the sink.
type Engine = core.Engine

// ExecutionPlan is the compiled distribution over query sets (§3.4).
type ExecutionPlan = core.ExecutionPlan

// Compile builds an execution plan for concurrent queries under a global
// per-packet bit budget.
func Compile(queries []Query, globalBits int, seed Seed) (*Engine, error) {
	return core.Compile(queries, globalBits, seed)
}

// Recording is the sink-side Recording + Inference module.
type Recording = core.Recording

// NewRecording creates a Recording module; sketchItems > 0 stores latency
// samples in KLL sketches of that accuracy parameter instead of raw lists.
func NewRecording(engine *Engine, sketchItems int, rng *RNG) (*Recording, error) {
	return core.NewRecording(engine, sketchItems, rng)
}

// NewRecordingSeeded creates a Recording module whose sketch randomness
// derives entirely from base, making per-flow answers independent of
// cross-flow arrival order (the contract the sharded sink relies on).
func NewRecordingSeeded(engine *Engine, sketchItems int, base Seed) (*Recording, error) {
	return core.NewRecordingSeeded(engine, sketchItems, base)
}

// HopValues carries everything a switch observes at one hop, one field per
// query kind — the closure-free input of the compiled batch encode path
// (Engine.EncodeHopValues / Engine.EncodeHopBatch).
type HopValues = core.HopValues

// PacketDigest is one packet's telemetry state in the batch pipeline: its
// flow, path length, packet ID and digest. Engine.EncodeHopBatch rewrites
// Digest in place; Recording.RecordBatch and ShardedSink.Ingest consume it.
type PacketDigest = core.PacketDigest

// Extracted is one query's digest slice recovered at the sink; see
// Engine.Extract and the zero-allocation Engine.ExtractInto.
type Extracted = core.Extracted

// ShardedSink is the multi-core sink: packets shard by flow key across a
// worker pool of per-shard Recordings, with answers bit-identical to the
// serial path for the same ShardConfig.Base (see internal/pipeline).
type ShardedSink = pipeline.Sink

// ShardConfig shapes a ShardedSink: shard count, batch size, recording
// knobs, and the shared sketch seed base.
type ShardConfig = pipeline.Config

// NewShardedSink builds a sharded sink over an engine and starts its
// workers. Feed it with Ingest/Record, then Close before reading answers.
func NewShardedSink(engine *Engine, cfg ShardConfig) (*ShardedSink, error) {
	return pipeline.NewSink(engine, cfg)
}

// Snapshot is a copy-on-read view of a ShardedSink's state: its query
// methods answer concurrently with ingestion, without a global flush.
type Snapshot = pipeline.Snapshot

// EvictionPolicy bounds a ShardedSink shard's flow table; see NewLRU,
// NewMaxFlows and NewIdleTimeout for the built-in policies.
type EvictionPolicy = pipeline.EvictionPolicy

// Eviction describes one finalized (evicted) flow.
type Eviction = pipeline.Eviction

// Eviction reasons.
const (
	EvictCapacity = pipeline.EvictCapacity
	EvictIdle     = pipeline.EvictIdle
)

// NewLRU returns an eviction policy that caps live flows, evicting the
// least-recently-used.
func NewLRU(maxFlows int) EvictionPolicy { return pipeline.NewLRU(maxFlows) }

// NewMaxFlows returns an eviction policy that caps live flows, evicting
// in admission order.
func NewMaxFlows(cap int) EvictionPolicy { return pipeline.NewMaxFlows(cap) }

// NewIdleTimeout returns an eviction policy that finalizes flows idle for
// more than timeout packets of shard traffic.
func NewIdleTimeout(timeout uint64) EvictionPolicy { return pipeline.NewIdleTimeout(timeout) }

// MarshalDigests encodes a PacketDigest batch in the versioned
// switch→collector wire format (see internal/wire's package doc).
func MarshalDigests(batch []PacketDigest) ([]byte, error) { return wire.Marshal(batch) }

// AppendMarshalDigests is MarshalDigests appending into a reused buffer.
func AppendMarshalDigests(dst []byte, batch []PacketDigest) ([]byte, error) {
	return wire.AppendMarshal(dst, batch)
}

// UnmarshalDigests decodes a wire-format batch; malformed input errors,
// never panics.
func UnmarshalDigests(data []byte) ([]PacketDigest, error) { return wire.Unmarshal(data) }

// AppendUnmarshalDigests is UnmarshalDigests appending into a reused
// buffer.
func AppendUnmarshalDigests(dst []PacketDigest, data []byte) ([]PacketDigest, error) {
	return wire.AppendUnmarshal(dst, data)
}

// FlowKey identifies a flow at the Recording module.
type FlowKey = core.FlowKey

// FlowKeyOf derives a FlowKey from a flow definition string.
func FlowKeyOf(seed Seed, def string) FlowKey { return core.FlowKeyOf(seed, def) }

// LoopDetector is the routing-loop detection extension (Appendix A.4).
type LoopDetector = core.LoopDetector

// NewLoopDetector builds a loop detector with digest width bits and
// confirmation threshold T.
func NewLoopDetector(bits int, T uint64, seed Seed) (*LoopDetector, error) {
	return core.NewLoopDetector(bits, T, seed)
}

// UseCase is one Table 2 row; Catalog lists all of them.
type UseCase = core.UseCase

// Catalog returns the use cases PINT enables (Table 2).
func Catalog() []UseCase { return core.Catalog() }
