// Package repro is a from-scratch Go reproduction of "PINT: Probabilistic
// In-band Network Telemetry" (Ben Basat et al., SIGCOMM 2020).
//
// The public API lives in the pint subpackage. Every experiment — each
// paper figure and the non-paper workloads — is registered in the
// scenario engine (internal/scenario, re-exported by pint and driven by
// cmd/pintfig -list/-run): a declarative registry whose trial runner
// executes across a worker pool with bit-identical results at any
// parallelism. See README.md for the tour: the quick start, the package
// map, the compiled batch/sharded pipeline that runs the per-packet hot
// path, the streaming collector (bounded flow state, digest wire format,
// snapshot queries), the networked collector daemon
// (internal/collector, run by cmd/pintd with cmd/pintload as its load
// generator — framed TCP ingest from many exporters, each connection a
// parallel ingest pipeline that fused-decodes frames straight into
// per-shard staging buffers with per-flow ordering and bit-identical
// answers at any concurrency — see README.md's "Ingest concurrency"
// section — handshake-guarded plans, HTTP/JSON snapshots with
// per-connection counters, graceful drain), the federated collector
// tier (internal/federation, fronted by cmd/pintgate — a fleet of
// daemons behind a consistent-hash flow partitioner with epoch-fenced
// sessions and a merging query frontend whose answers stay byte-identical
// to a single collector, degrading to explicit partial results when
// members die — and, since the elastic-fleet layer, resizable live: an
// epoch-versioned fleet map on /fleetmap, a minimal-move rebalance
// planner, and zero-loss per-flow state hand-off between collectors, so
// a mid-stream grow or shrink answers byte-identically to a fleet that
// started at the new membership; see README.md's "Elastic fleet"
// section), the durable storage tier (internal/segstore, enabled by
// pintd -data-dir — a crash-safe segment log replayed before serving, so
// a SIGKILLed-and-restarted collector answers bit-for-bit identically to
// one that never crashed, modulo an explicitly-reported unflushed tail;
// see README.md's "Durable storage" section for the segment format,
// recovery guarantees, and retention knobs), and the scenario catalog.
package repro
