// Package repro is a from-scratch Go reproduction of "PINT: Probabilistic
// In-band Network Telemetry" (Ben Basat et al., SIGCOMM 2020).
//
// The public API lives in the pint subpackage; the per-figure benchmark
// harness lives in bench_test.go next to this file. See README.md for the
// tour: the quick start, the package map, the compiled batch/sharded
// pipeline that runs the per-packet hot path, and the streaming collector
// (bounded flow state, digest wire format, snapshot queries).
package repro
