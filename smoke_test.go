package repro

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestSmokeBinariesAndExamples build-and-runs every command and example
// main so CI catches bit-rot in the untested binaries: each subtest `go
// run`s the package with fast arguments and checks for a marker string
// the program prints on a healthy run.
func TestSmokeBinariesAndExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests exec the go tool; skipped in -short")
	}
	cases := []struct {
		name   string
		args   []string
		marker string
	}{
		{"pintplan", []string{"./cmd/pintplan", "-budget", "16"}, "pipeline:"},
		{"pintfig-list", []string{"./cmd/pintfig", "-list"}, "Scenario catalog"},
		{"pintfig-quick", []string{"./cmd/pintfig", "-scale", "quick", "-run", "fig5"}, "Fig 5"},
		{"pintfig-parallel-json", []string{"./cmd/pintfig", "-scale", "quick",
			"-run", "route-change,pathtrace", "-parallel", "4", "-json"}, "\"scenario\": \"route-change\""},
		{"pintfig-federated", []string{"./cmd/pintfig", "-scale", "quick",
			"-run", "federated-scale"}, "Federated conformance"},
		{"pinttrace", []string{"./cmd/pinttrace", "-topo", "fattree", "-len", "5",
			"-trials", "20", "-parallel", "2", "-baselines=false"}, "PINT"},
		{"example-quickstart", []string{"./examples/quickstart"}, "path"},
		{"example-pathtracing", []string{"./examples/pathtracing"}, ""},
		{"example-latency", []string{"./examples/latency"}, ""},
		{"example-loopdetect", []string{"./examples/loopdetect"}, ""},
		{"example-congestion", []string{"./examples/congestion"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()
			out, err := exec.CommandContext(ctx, "go", append([]string{"run"}, tc.args...)...).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", strings.Join(tc.args, " "), err, out)
			}
			if len(out) == 0 {
				t.Fatalf("go run %s printed nothing", strings.Join(tc.args, " "))
			}
			if tc.marker != "" && !strings.Contains(string(out), tc.marker) {
				t.Fatalf("go run %s output lacks %q:\n%s", strings.Join(tc.args, " "), tc.marker, out)
			}
		})
	}
}

// TestSmokePintfigUnknownScenario pins the CLI contract for a mistyped
// scenario name: non-zero exit and a near-miss suggestion.
func TestSmokePintfigUnknownScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests exec the go tool; skipped in -short")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	out, err := exec.CommandContext(ctx, "go", "run", "./cmd/pintfig", "-run", "colector-scale").CombinedOutput()
	if err == nil {
		t.Fatalf("unknown scenario exited 0:\n%s", out)
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() == 0 {
		t.Fatalf("want a non-zero exit code, got %v:\n%s", err, out)
	}
	if !strings.Contains(string(out), "did you mean") || !strings.Contains(string(out), "collector-scale") {
		t.Fatalf("miss output lacks a suggestion:\n%s", out)
	}
}

// daemonProc wraps a started daemon whose stdout is scraped line by line
// for announced addresses.
type daemonProc struct {
	cmd     *exec.Cmd
	scanner *bufio.Scanner
	lines   []string
}

func startDaemon(t *testing.T, ctx context.Context, bin string, args ...string) *daemonProc {
	t.Helper()
	cmd := exec.CommandContext(ctx, bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })
	return &daemonProc{cmd: cmd, scanner: bufio.NewScanner(stdout)}
}

// scrape reads stdout until a line contains marker and returns the first
// space-delimited token after it.
func (d *daemonProc) scrape(t *testing.T, marker string) string {
	t.Helper()
	for d.scanner.Scan() {
		line := d.scanner.Text()
		d.lines = append(d.lines, line)
		if _, rest, ok := strings.Cut(line, marker); ok {
			token, _, _ := strings.Cut(rest, " ")
			return strings.TrimSuffix(token, ",")
		}
	}
	t.Fatalf("daemon never printed %q:\n%s", marker, strings.Join(d.lines, "\n"))
	return ""
}

// scrapeLine reads stdout until a line contains marker and returns the
// whole line (scrape returns only the token after the marker).
func (d *daemonProc) scrapeLine(t *testing.T, marker string) string {
	t.Helper()
	for d.scanner.Scan() {
		line := d.scanner.Text()
		d.lines = append(d.lines, line)
		if strings.Contains(line, marker) {
			return line
		}
	}
	t.Fatalf("daemon never printed %q:\n%s", marker, strings.Join(d.lines, "\n"))
	return ""
}

// drainOutput reads the rest of stdout (call after signalling).
func (d *daemonProc) drainOutput() string {
	for d.scanner.Scan() {
		d.lines = append(d.lines, d.scanner.Text())
	}
	return strings.Join(d.lines, "\n")
}

// TestSmokeFederatedDrain runs the full federated tier as real binaries:
// two pintd fleet members under one epoch, pintgate fronting their HTTP
// endpoints, and pintload routing flows to consistent-hash homes across
// both daemons. It demands: a complete merged snapshot from the gate, an
// explicit partial result (header + named node) after one member is
// SIGTERMed, packet conservation across both drains, and clean exits all
// around.
func TestSmokeFederatedDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests exec the go tool; skipped in -short")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	bin := t.TempDir()
	for _, cmd := range []string{"pintd", "pintload", "pintgate"} {
		out, err := exec.CommandContext(ctx, "go", "build", "-o", filepath.Join(bin, cmd), "./cmd/"+cmd).CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", cmd, err, out)
		}
	}

	const (
		exporters = 2
		flows     = 4
		pkts      = 300
		epoch     = "9"
	)
	total := exporters * flows * pkts

	var daemons [2]*daemonProc
	var tcpAddrs, httpAddrs [2]string
	for i := range daemons {
		daemons[i] = startDaemon(t, ctx, filepath.Join(bin, "pintd"),
			"-listen", "127.0.0.1:0", "-http", "127.0.0.1:0", "-shards", "2", "-epoch", epoch)
		tcpAddrs[i] = daemons[i].scrape(t, "listening on ")
		httpAddrs[i] = daemons[i].scrape(t, "http on ")
	}
	gate := startDaemon(t, ctx, filepath.Join(bin, "pintgate"),
		"-http", "127.0.0.1:0", "-nodes", httpAddrs[0]+","+httpAddrs[1])
	gateURL := "http://" + gate.scrape(t, "serving on ")

	load, err := exec.CommandContext(ctx, filepath.Join(bin, "pintload"),
		"-addr", tcpAddrs[0]+","+tcpAddrs[1], "-epoch", epoch,
		"-exporters", fmt.Sprint(exporters), "-flows", fmt.Sprint(flows), "-pkts", fmt.Sprint(pkts),
	).CombinedOutput()
	if err != nil {
		t.Fatalf("pintload: %v\n%s", err, load)
	}
	if want := fmt.Sprintf("sent %d packets", total); !strings.Contains(string(load), want) {
		t.Fatalf("pintload report lacks %q:\n%s", want, load)
	}

	// The merged snapshot through the gate: poll until the fleet has
	// ingested everything (collectors flush at session end), then demand
	// a complete, non-partial answer covering every flow.
	client := &http.Client{Timeout: 10 * time.Second}
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := client.Get(gateURL + "/stats")
		if err != nil {
			t.Fatalf("gate stats: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(body), fmt.Sprintf(`"packets": %d`, total)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never ingested %d packets:\n%s", total, body)
		}
		time.Sleep(50 * time.Millisecond)
	}
	resp, err := client.Get(gateURL + "/snapshot")
	if err != nil {
		t.Fatalf("gate snapshot: %v", err)
	}
	snapBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Pint-Partial") != "" {
		t.Fatalf("healthy fleet answered partial:\n%s", snapBody)
	}
	if got := strings.Count(string(snapBody), `"flow":`); got != exporters*flows {
		t.Fatalf("merged snapshot has %d flows, want %d:\n%.600s", got, exporters*flows, snapBody)
	}

	// Kill member 1: the gate must degrade explicitly, naming the node.
	if err := daemons[1].cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	out1 := daemons[1].drainOutput()
	if err := daemons[1].cmd.Wait(); err != nil {
		t.Fatalf("pintd[1] exited non-zero after SIGTERM: %v\n%s", err, out1)
	}
	resp, err = client.Get(gateURL + "/snapshot")
	if err != nil {
		t.Fatalf("gate snapshot after kill: %v", err)
	}
	partialBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Pint-Partial") != "1" {
		t.Fatalf("dead member not marked partial (header %q):\n%s",
			resp.Header.Get("X-Pint-Partial"), partialBody)
	}
	if !strings.Contains(string(partialBody), httpAddrs[1]) || !strings.Contains(string(partialBody), `"errors"`) {
		t.Fatalf("partial result does not name the dead node %s:\n%.600s", httpAddrs[1], partialBody)
	}

	// Drain the rest; packet conservation across the fleet.
	if err := daemons[0].cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	out0 := daemons[0].drainOutput()
	if err := daemons[0].cmd.Wait(); err != nil {
		t.Fatalf("pintd[0] exited non-zero after SIGTERM: %v\n%s", err, out0)
	}
	drained := 0
	for _, out := range []string{out0, out1} {
		var n int
		if _, rest, ok := strings.Cut(out, "drained: "); ok {
			fmt.Sscanf(rest, "%d packets", &n)
		}
		drained += n
	}
	if drained != total {
		t.Fatalf("fleet drained %d packets, want %d\n--- pintd[0]\n%s\n--- pintd[1]\n%s", drained, total, out0, out1)
	}

	if err := gate.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	gateOut := gate.drainOutput()
	if err := gate.cmd.Wait(); err != nil {
		t.Fatalf("pintgate exited non-zero after SIGTERM: %v\n%s", err, gateOut)
	}
	if !strings.Contains(gateOut, "pintgate: drained") {
		t.Fatalf("pintgate drain report missing:\n%s", gateOut)
	}
}

// TestSmokeKillRecover is the binary-level half of the kill-recover
// torture suite (the scenario registry holds the in-process half): a real
// pintd with -data-dir takes a full pintload deployment, is SIGKILLed —
// no drain, no final checkpoint — and a restarted daemon on the same
// directory must replay every flushed packet, serve the same flows, take
// a second deployment, shut down cleanly, and replay the union on a third
// start. Packet conservation is checked at every hop.
func TestSmokeKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests exec the go tool; skipped in -short")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	bin := t.TempDir()
	for _, cmd := range []string{"pintd", "pintload"} {
		out, err := exec.CommandContext(ctx, "go", "build", "-o", filepath.Join(bin, cmd), "./cmd/"+cmd).CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", cmd, err, out)
		}
	}
	dataDir := t.TempDir()

	const (
		exporters = 2
		flows     = 3
		pkts      = 400
	)
	total := exporters * flows * pkts
	client := &http.Client{Timeout: 10 * time.Second}

	start := func() *daemonProc {
		return startDaemon(t, ctx, filepath.Join(bin, "pintd"),
			"-listen", "127.0.0.1:0", "-http", "127.0.0.1:0",
			"-shards", "2", "-data-dir", dataDir, "-checkpoint", "50ms")
	}
	// recovered reports the replayed packet count a daemon announced at
	// startup (the line prints before "listening on").
	recovered := func(d *daemonProc) int {
		line := d.scrapeLine(t, "recovered:")
		var segs, blocks, replayed int
		if _, err := fmt.Sscanf(line, "pintd: recovered: %d segments, %d blocks, %d packets replayed",
			&segs, &blocks, &replayed); err != nil {
			t.Fatalf("unparseable recovery line %q: %v", line, err)
		}
		return replayed
	}
	// durablePackets polls /stats until the segment log holds want packets
	// — the flush point after which a SIGKILL loses nothing.
	durablePackets := func(httpAddr string, want int) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for {
			var doc struct {
				Durable struct {
					Store struct {
						Packets int `json:"packets"`
					} `json:"store"`
				} `json:"durable"`
			}
			resp, err := client.Get("http://" + httpAddr + "/stats")
			if err != nil {
				t.Fatalf("stats: %v", err)
			}
			err = json.NewDecoder(resp.Body).Decode(&doc)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("stats decode: %v", err)
			}
			if doc.Durable.Store.Packets == want {
				return
			}
			if doc.Durable.Store.Packets > want {
				t.Fatalf("segment log holds %d packets, only %d were ever sent — double count",
					doc.Durable.Store.Packets, want)
			}
			if time.Now().After(deadline) {
				t.Fatalf("segment log stuck at %d packets, want %d", doc.Durable.Store.Packets, want)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	load := func(addr string) {
		t.Helper()
		out, err := exec.CommandContext(ctx, filepath.Join(bin, "pintload"),
			"-addr", addr,
			"-exporters", fmt.Sprint(exporters), "-flows", fmt.Sprint(flows), "-pkts", fmt.Sprint(pkts),
		).CombinedOutput()
		if err != nil {
			t.Fatalf("pintload: %v\n%s", err, out)
		}
		if want := fmt.Sprintf("sent %d packets", total); !strings.Contains(string(out), want) {
			t.Fatalf("pintload report lacks %q:\n%s", want, out)
		}
	}

	// Incarnation 1: empty directory, one deployment, flushed, SIGKILLed.
	d1 := start()
	if n := recovered(d1); n != 0 {
		t.Fatalf("fresh data dir replayed %d packets", n)
	}
	addr := d1.scrape(t, "listening on ")
	httpAddr := d1.scrape(t, "http on ")
	load(addr)
	durablePackets(httpAddr, total)
	if err := d1.cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no goodbye
		t.Fatal(err)
	}
	d1.drainOutput()
	d1.cmd.Wait() // non-zero by design; reap it

	// Incarnation 2: must replay the full deployment before serving, then
	// answer with the same flows and survive a second deployment.
	d2 := start()
	if n := recovered(d2); n != total {
		t.Fatalf("after SIGKILL: replayed %d packets, want %d", n, total)
	}
	addr = d2.scrape(t, "listening on ")
	httpAddr = d2.scrape(t, "http on ")
	resp, err := client.Get("http://" + httpAddr + "/snapshot")
	if err != nil {
		t.Fatalf("snapshot after recovery: %v", err)
	}
	snap, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := strings.Count(string(snap), `"flow":`); got != exporters*flows {
		t.Fatalf("recovered snapshot has %d flows, want %d:\n%.600s", got, exporters*flows, snap)
	}
	load(addr)
	durablePackets(httpAddr, 2*total)
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	out2 := d2.drainOutput()
	if err := d2.cmd.Wait(); err != nil {
		t.Fatalf("pintd exited non-zero after SIGTERM: %v\n%s", err, out2)
	}
	if want := fmt.Sprintf("drained: %d packets", total); !strings.Contains(out2, want) {
		t.Fatalf("second incarnation drain report lacks %q:\n%s", want, out2)
	}

	// Incarnation 3: the union of both deployments replays after a clean
	// shutdown — nothing was lost, nothing double-counted.
	d3 := start()
	if n := recovered(d3); n != 2*total {
		t.Fatalf("final restart replayed %d packets, want %d", n, 2*total)
	}
	d3.scrape(t, "listening on ")
	if err := d3.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	out3 := d3.drainOutput()
	if err := d3.cmd.Wait(); err != nil {
		t.Fatalf("pintd exited non-zero after final SIGTERM: %v\n%s", err, out3)
	}
}

// TestSmokePintdSigtermDrain runs the real daemon binaries end to end:
// build pintd and pintload, stream a deployment over loopback TCP, send
// the daemon SIGTERM, and demand a clean drain — exit code 0 and a final
// packet count matching exactly what pintload sent.
func TestSmokePintdSigtermDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests exec the go tool; skipped in -short")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	bin := t.TempDir()
	for _, cmd := range []string{"pintd", "pintload"} {
		out, err := exec.CommandContext(ctx, "go", "build", "-o", filepath.Join(bin, cmd), "./cmd/"+cmd).CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", cmd, err, out)
		}
	}

	const (
		exporters = 3
		flows     = 4
		pkts      = 500
	)
	daemon := startDaemon(t, ctx, filepath.Join(bin, "pintd"),
		"-listen", "127.0.0.1:0", "-http", "", "-shards", "4")
	addr := daemon.scrape(t, "listening on ")

	load, err := exec.CommandContext(ctx, filepath.Join(bin, "pintload"),
		"-addr", addr,
		"-exporters", fmt.Sprint(exporters), "-flows", fmt.Sprint(flows), "-pkts", fmt.Sprint(pkts),
	).CombinedOutput()
	if err != nil {
		t.Fatalf("pintload: %v\n%s", err, load)
	}
	want := fmt.Sprintf("sent %d packets", exporters*flows*pkts)
	if !strings.Contains(string(load), want) || !strings.Contains(string(load), "pkts/s") {
		t.Fatalf("pintload report lacks %q:\n%s", want, load)
	}

	if err := daemon.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	out := daemon.drainOutput()
	if err := daemon.cmd.Wait(); err != nil {
		t.Fatalf("pintd exited non-zero after SIGTERM: %v\n%s", err, out)
	}
	drained := fmt.Sprintf("drained: %d packets", exporters*flows*pkts)
	tracked := fmt.Sprintf("%d flows tracked", exporters*flows)
	if !strings.Contains(out, drained) || !strings.Contains(out, tracked) || !strings.Contains(out, "0 conn errors") {
		t.Fatalf("pintd drain report lacks %q / %q:\n%s", drained, tracked, out)
	}
}
