package repro

import (
	"context"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestSmokeBinariesAndExamples build-and-runs every command and example
// main so CI catches bit-rot in the untested binaries: each subtest `go
// run`s the package with fast arguments and checks for a marker string
// the program prints on a healthy run.
func TestSmokeBinariesAndExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests exec the go tool; skipped in -short")
	}
	cases := []struct {
		name   string
		args   []string
		marker string
	}{
		{"pintplan", []string{"./cmd/pintplan", "-budget", "16"}, "pipeline:"},
		{"pintfig-list", []string{"./cmd/pintfig", "-list"}, "Scenario catalog"},
		{"pintfig-quick", []string{"./cmd/pintfig", "-scale", "quick", "-run", "fig5"}, "Fig 5"},
		{"pintfig-parallel-json", []string{"./cmd/pintfig", "-scale", "quick",
			"-run", "route-change,pathtrace", "-parallel", "4", "-json"}, "\"scenario\": \"route-change\""},
		{"pinttrace", []string{"./cmd/pinttrace", "-topo", "fattree", "-len", "5",
			"-trials", "20", "-parallel", "2", "-baselines=false"}, "PINT"},
		{"example-quickstart", []string{"./examples/quickstart"}, "path"},
		{"example-pathtracing", []string{"./examples/pathtracing"}, ""},
		{"example-latency", []string{"./examples/latency"}, ""},
		{"example-loopdetect", []string{"./examples/loopdetect"}, ""},
		{"example-congestion", []string{"./examples/congestion"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()
			out, err := exec.CommandContext(ctx, "go", append([]string{"run"}, tc.args...)...).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", strings.Join(tc.args, " "), err, out)
			}
			if len(out) == 0 {
				t.Fatalf("go run %s printed nothing", strings.Join(tc.args, " "))
			}
			if tc.marker != "" && !strings.Contains(string(out), tc.marker) {
				t.Fatalf("go run %s output lacks %q:\n%s", strings.Join(tc.args, " "), tc.marker, out)
			}
		})
	}
}
