package repro

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestSmokeBinariesAndExamples build-and-runs every command and example
// main so CI catches bit-rot in the untested binaries: each subtest `go
// run`s the package with fast arguments and checks for a marker string
// the program prints on a healthy run.
func TestSmokeBinariesAndExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests exec the go tool; skipped in -short")
	}
	cases := []struct {
		name   string
		args   []string
		marker string
	}{
		{"pintplan", []string{"./cmd/pintplan", "-budget", "16"}, "pipeline:"},
		{"pintfig-list", []string{"./cmd/pintfig", "-list"}, "Scenario catalog"},
		{"pintfig-quick", []string{"./cmd/pintfig", "-scale", "quick", "-run", "fig5"}, "Fig 5"},
		{"pintfig-parallel-json", []string{"./cmd/pintfig", "-scale", "quick",
			"-run", "route-change,pathtrace", "-parallel", "4", "-json"}, "\"scenario\": \"route-change\""},
		{"pinttrace", []string{"./cmd/pinttrace", "-topo", "fattree", "-len", "5",
			"-trials", "20", "-parallel", "2", "-baselines=false"}, "PINT"},
		{"example-quickstart", []string{"./examples/quickstart"}, "path"},
		{"example-pathtracing", []string{"./examples/pathtracing"}, ""},
		{"example-latency", []string{"./examples/latency"}, ""},
		{"example-loopdetect", []string{"./examples/loopdetect"}, ""},
		{"example-congestion", []string{"./examples/congestion"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()
			out, err := exec.CommandContext(ctx, "go", append([]string{"run"}, tc.args...)...).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", strings.Join(tc.args, " "), err, out)
			}
			if len(out) == 0 {
				t.Fatalf("go run %s printed nothing", strings.Join(tc.args, " "))
			}
			if tc.marker != "" && !strings.Contains(string(out), tc.marker) {
				t.Fatalf("go run %s output lacks %q:\n%s", strings.Join(tc.args, " "), tc.marker, out)
			}
		})
	}
}

// TestSmokePintfigUnknownScenario pins the CLI contract for a mistyped
// scenario name: non-zero exit and a near-miss suggestion.
func TestSmokePintfigUnknownScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests exec the go tool; skipped in -short")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	out, err := exec.CommandContext(ctx, "go", "run", "./cmd/pintfig", "-run", "colector-scale").CombinedOutput()
	if err == nil {
		t.Fatalf("unknown scenario exited 0:\n%s", out)
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() == 0 {
		t.Fatalf("want a non-zero exit code, got %v:\n%s", err, out)
	}
	if !strings.Contains(string(out), "did you mean") || !strings.Contains(string(out), "collector-scale") {
		t.Fatalf("miss output lacks a suggestion:\n%s", out)
	}
}

// TestSmokePintdSigtermDrain runs the real daemon binaries end to end:
// build pintd and pintload, stream a deployment over loopback TCP, send
// the daemon SIGTERM, and demand a clean drain — exit code 0 and a final
// packet count matching exactly what pintload sent.
func TestSmokePintdSigtermDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests exec the go tool; skipped in -short")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	bin := t.TempDir()
	for _, cmd := range []string{"pintd", "pintload"} {
		out, err := exec.CommandContext(ctx, "go", "build", "-o", filepath.Join(bin, cmd), "./cmd/"+cmd).CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", cmd, err, out)
		}
	}

	const (
		exporters = 3
		flows     = 4
		pkts      = 500
	)
	daemon := exec.CommandContext(ctx, filepath.Join(bin, "pintd"),
		"-listen", "127.0.0.1:0", "-http", "", "-shards", "4")
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	daemon.Stderr = daemon.Stdout
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer daemon.Process.Kill()

	// The daemon prints its ephemeral address on the first line.
	scanner := bufio.NewScanner(stdout)
	var addr string
	var lines []string
	for scanner.Scan() {
		line := scanner.Text()
		lines = append(lines, line)
		if _, rest, ok := strings.Cut(line, "listening on "); ok {
			addr, _, _ = strings.Cut(rest, " ")
			break
		}
	}
	if addr == "" {
		t.Fatalf("pintd never announced its address:\n%s", strings.Join(lines, "\n"))
	}

	load, err := exec.CommandContext(ctx, filepath.Join(bin, "pintload"),
		"-addr", addr,
		"-exporters", fmt.Sprint(exporters), "-flows", fmt.Sprint(flows), "-pkts", fmt.Sprint(pkts),
	).CombinedOutput()
	if err != nil {
		t.Fatalf("pintload: %v\n%s", err, load)
	}
	want := fmt.Sprintf("sent %d packets", exporters*flows*pkts)
	if !strings.Contains(string(load), want) || !strings.Contains(string(load), "pkts/s") {
		t.Fatalf("pintload report lacks %q:\n%s", want, load)
	}

	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for scanner.Scan() {
		lines = append(lines, scanner.Text())
	}
	if err := daemon.Wait(); err != nil {
		t.Fatalf("pintd exited non-zero after SIGTERM: %v\n%s", err, strings.Join(lines, "\n"))
	}
	out := strings.Join(lines, "\n")
	drained := fmt.Sprintf("drained: %d packets", exporters*flows*pkts)
	tracked := fmt.Sprintf("%d flows tracked", exporters*flows)
	if !strings.Contains(out, drained) || !strings.Contains(out, tracked) || !strings.Contains(out, "0 conn errors") {
		t.Fatalf("pintd drain report lacks %q / %q:\n%s", drained, tracked, out)
	}
}
