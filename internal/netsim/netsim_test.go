package netsim

import (
	"testing"

	"repro/internal/topology"
)

func TestSimEventOrdering(t *testing.T) {
	s := NewSim()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.At(10, func() { got = append(got, 11) }) // same time: scheduling order
	if n := s.Run(100); n != 4 {
		t.Fatalf("ran %d events, want 4", n)
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if s.Now() != 100 {
		t.Fatalf("clock %d, want advanced to until=100", s.Now())
	}
}

func TestSimRunHorizon(t *testing.T) {
	s := NewSim()
	fired := false
	s.At(200, func() { fired = true })
	s.Run(100)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if s.Pending() != 1 {
		t.Fatal("event lost")
	}
	s.Run(300)
	if !fired {
		t.Fatal("event not fired after extending horizon")
	}
}

func TestSimPastPanics(t *testing.T) {
	s := NewSim()
	s.At(50, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past must panic")
			}
		}()
		s.At(10, func() {})
	})
	s.Run(100)
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			s.After(5, tick)
		}
	}
	s.At(0, tick)
	s.Run(1000)
	if count != 10 {
		t.Fatalf("ticks = %d, want 10", count)
	}
}

// lineTopo builds host - sw1 - sw2 - host.
func lineTopo(t *testing.T) (*topology.Graph, int, int) {
	t.Helper()
	g := topology.NewGraph("line")
	h1 := g.AddNode(topology.Host, "h1")
	s1 := g.AddNode(topology.Switch, "s1")
	s2 := g.AddNode(topology.Switch, "s2")
	h2 := g.AddNode(topology.Host, "h2")
	for _, e := range [][2]int{{h1, s1}, {s1, s2}, {s2, h2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g, h1, h2
}

func buildLine(t *testing.T) (*Sim, *Network, int, int) {
	t.Helper()
	g, h1, h2 := lineTopo(t)
	sim := NewSim()
	spec := LinkSpec{Bps: 1_000_000_000, PropNs: 1000, BufBytes: 100_000}
	net, err := Build(sim, g, BuildOptions{HostLink: spec, TierLink: spec, ValuesPerHop: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sim, net, h1, h2
}

type captureEndpoint struct {
	pkts  []*Packet
	times []int64
	sim   *Sim
}

func (c *captureEndpoint) Deliver(p *Packet) {
	c.pkts = append(c.pkts, p)
	c.times = append(c.times, c.sim.Now())
}

func TestBuildValidation(t *testing.T) {
	g, _, _ := lineTopo(t)
	sim := NewSim()
	bad := LinkSpec{Bps: 0, PropNs: 1, BufBytes: 1}
	good := LinkSpec{Bps: 1e9, PropNs: 1, BufBytes: 1000}
	if _, err := Build(sim, g, BuildOptions{HostLink: bad, TierLink: good}); err == nil {
		t.Fatal("zero bandwidth must fail")
	}
	if _, err := Build(sim, g, BuildOptions{
		HostLink: LinkSpec{Bps: 1e9, PropNs: 1, BufBytes: 0},
		TierLink: good}); err == nil {
		t.Fatal("zero buffer must fail")
	}
}

func TestEndToEndLatency(t *testing.T) {
	sim, net, h1, h2 := buildLine(t)
	cap := &captureEndpoint{sim: sim}
	net.Host(h2).Attach(7, cap)
	pkt := &Packet{ID: 1, FlowID: 7, Src: h1, Dst: h2, PayloadLen: 960}
	net.Host(h1).Send(pkt)
	sim.Run(10_000_000)
	if len(cap.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(cap.pkts))
	}
	// Wire size 1000B. 3 serializations at 1Gbps (8000ns each) + 3 props
	// (1000ns each) = 27000ns.
	if got := cap.times[0]; got != 27000 {
		t.Fatalf("delivery at %dns, want 27000", got)
	}
	if cap.pkts[0].Hops != 2 {
		t.Fatalf("hop count %d, want 2 switches", cap.pkts[0].Hops)
	}
}

func TestOverheadSlowsDelivery(t *testing.T) {
	// The §2 mechanism: extra telemetry bytes add serialization time at
	// every hop.
	deliveryAt := func(extra int) int64 {
		sim, net, h1, h2 := buildLine(t)
		cap := &captureEndpoint{sim: sim}
		net.Host(h2).Attach(7, cap)
		net.Host(h1).Send(&Packet{ID: 1, FlowID: 7, Src: h1, Dst: h2,
			PayloadLen: 960, ExtraBytes: extra})
		sim.Run(10_000_000)
		if len(cap.pkts) != 1 {
			t.Fatal("packet lost")
		}
		return cap.times[0]
	}
	base := deliveryAt(0)
	loaded := deliveryAt(48)
	// 48B × 8 bits / 1Gbps = 384ns per hop × 3 hops = 1152ns.
	if loaded-base != 1152 {
		t.Fatalf("48B overhead added %dns, want 1152", loaded-base)
	}
}

func TestQueueingDelay(t *testing.T) {
	sim, net, h1, h2 := buildLine(t)
	cap := &captureEndpoint{sim: sim}
	net.Host(h2).Attach(7, cap)
	for i := 0; i < 3; i++ {
		net.Host(h1).Send(&Packet{ID: uint64(i), FlowID: 7, Src: h1, Dst: h2, PayloadLen: 960})
	}
	sim.Run(10_000_000)
	if len(cap.pkts) != 3 {
		t.Fatalf("delivered %d, want 3", len(cap.pkts))
	}
	// Pipeline: successive packets separated by exactly one serialization
	// time (8000ns) once the pipe fills.
	if d := cap.times[1] - cap.times[0]; d != 8000 {
		t.Fatalf("spacing %dns, want 8000", d)
	}
	if d := cap.times[2] - cap.times[1]; d != 8000 {
		t.Fatalf("spacing %dns, want 8000", d)
	}
}

func TestTailDrop(t *testing.T) {
	g, h1, h2 := lineTopo(t)
	sim := NewSim()
	// Tiny buffers: 2500B (~2 packets of 1000B).
	spec := LinkSpec{Bps: 1_000_000_000, PropNs: 100, BufBytes: 2500}
	net, err := Build(sim, g, BuildOptions{HostLink: spec, TierLink: spec})
	if err != nil {
		t.Fatal(err)
	}
	cap := &captureEndpoint{sim: sim}
	net.Host(h2).Attach(7, cap)
	for i := 0; i < 10; i++ {
		net.Host(h1).Send(&Packet{ID: uint64(i), FlowID: 7, Src: h1, Dst: h2, PayloadLen: 960})
	}
	sim.Run(100_000_000)
	if net.Drops == 0 {
		t.Fatal("no drops despite 10 packets into a 2-packet buffer")
	}
	if len(cap.pkts)+net.Drops != 10 {
		t.Fatalf("delivered %d + dropped %d != 10", len(cap.pkts), net.Drops)
	}
}

func TestDequeueHookPerHop(t *testing.T) {
	sim, net, h1, h2 := buildLine(t)
	var hookSwitches []int
	var taus []int64
	net.OnDequeue = func(_ *Network, sw *SwitchNode, _ *Port, pkt *Packet, qlen int, tau, _ int64) {
		hookSwitches = append(hookSwitches, sw.ID)
		taus = append(taus, tau)
		if qlen < 0 {
			t.Error("negative qlen")
		}
	}
	cap := &captureEndpoint{sim: sim}
	net.Host(h2).Attach(7, cap)
	net.Host(h1).Send(&Packet{ID: 1, FlowID: 7, Src: h1, Dst: h2, PayloadLen: 960})
	sim.Run(10_000_000)
	if len(hookSwitches) != 2 {
		t.Fatalf("hook fired %d times, want 2 (one per switch)", len(hookSwitches))
	}
	if hookSwitches[0] == hookSwitches[1] {
		t.Fatal("hook must fire at distinct switches")
	}
}

func TestHopLatencyHook(t *testing.T) {
	sim, net, h1, h2 := buildLine(t)
	var lats []int64
	net.OnHopLatency = func(_ *SwitchNode, _ *Packet, l int64) { lats = append(lats, l) }
	cap := &captureEndpoint{sim: sim}
	net.Host(h2).Attach(7, cap)
	net.Host(h1).Send(&Packet{ID: 1, FlowID: 7, Src: h1, Dst: h2, PayloadLen: 960})
	sim.Run(10_000_000)
	if len(lats) != 2 {
		t.Fatalf("got %d hop latencies, want 2", len(lats))
	}
	// Uncongested switch residency = serialization time = 8000ns.
	for _, l := range lats {
		if l != 8000 {
			t.Fatalf("hop latency %dns, want 8000", l)
		}
	}
}

func TestUnknownFlowDropped(t *testing.T) {
	sim, net, h1, h2 := buildLine(t)
	net.Host(h1).Send(&Packet{ID: 1, FlowID: 99, Src: h1, Dst: h2, PayloadLen: 100})
	sim.Run(10_000_000)
	if net.Delivered != 0 || net.Drops != 1 {
		t.Fatalf("delivered=%d drops=%d, want 0/1", net.Delivered, net.Drops)
	}
}

func TestDetach(t *testing.T) {
	sim, net, h1, h2 := buildLine(t)
	cap := &captureEndpoint{sim: sim}
	net.Host(h2).Attach(7, cap)
	net.Host(h2).Detach(7)
	net.Host(h1).Send(&Packet{ID: 1, FlowID: 7, Src: h1, Dst: h2, PayloadLen: 100})
	sim.Run(10_000_000)
	if len(cap.pkts) != 0 {
		t.Fatal("detached endpoint still received packets")
	}
}

func TestECMPFlowsSpread(t *testing.T) {
	// Two equal-cost middle switches: different flows should use both.
	g := topology.NewGraph("diamond")
	h1 := g.AddNode(topology.Host, "h1")
	in := g.AddNode(topology.Switch, "in")
	m1 := g.AddNode(topology.Switch, "m1")
	m2 := g.AddNode(topology.Switch, "m2")
	out := g.AddNode(topology.Switch, "out")
	h2 := g.AddNode(topology.Host, "h2")
	for _, e := range [][2]int{{h1, in}, {in, m1}, {in, m2}, {m1, out}, {m2, out}, {out, h2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	sim := NewSim()
	spec := LinkSpec{Bps: 1e9, PropNs: 100, BufBytes: 1e6}
	net, err := Build(sim, g, BuildOptions{HostLink: spec, TierLink: spec})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	net.OnDequeue = func(_ *Network, sw *SwitchNode, _ *Port, _ *Packet, _ int, _, _ int64) {
		if sw.ID == m1 || sw.ID == m2 {
			seen[sw.ID] = true
		}
	}
	cap := &captureEndpoint{sim: sim}
	for f := uint64(1); f <= 32; f++ {
		net.Host(h2).Attach(f, cap)
		net.Host(h1).Send(&Packet{ID: f, FlowID: f, Src: h1, Dst: h2, PayloadLen: 100})
	}
	sim.Run(100_000_000)
	if !seen[m1] || !seen[m2] {
		t.Fatalf("ECMP used only one path across 32 flows: %v", seen)
	}
}

func TestWireSizeAccounting(t *testing.T) {
	p := &Packet{PayloadLen: 1000}
	if got := p.WireSize(3); got != 1040 {
		t.Fatalf("plain packet wire size %d, want 1040", got)
	}
	p.INT = []HopINT{{}, {}} // 2 hops × 3 values × 4B + 8B header = 32
	if got := p.WireSize(3); got != 1072 {
		t.Fatalf("INT packet wire size %d, want 1072", got)
	}
	p.INT = nil
	p.DigestBits = 16
	if got := p.WireSize(3); got != 1042 {
		t.Fatalf("PINT packet wire size %d, want 1042", got)
	}
	p.DigestBits = 1 // sub-byte budgets round up to one byte on the wire
	if got := p.WireSize(3); got != 1041 {
		t.Fatalf("1-bit PINT wire size %d, want 1041", got)
	}
	p.ExtraBytes = 48
	if got := p.WireSize(3); got != 1089 {
		t.Fatalf("overhead sweep wire size %d, want 1089", got)
	}
}

func TestINTBytes(t *testing.T) {
	if INTBytes(0, 3) != 0 {
		t.Fatal("no hops, no bytes")
	}
	// §2: 5 hops, 1 value per hop = 8 + 20 = 28B, the paper's minimum.
	if got := INTBytes(5, 1); got != 28 {
		t.Fatalf("5 hops × 1 value = %d, want 28", got)
	}
	// §2: HPCC's 3 values over 5 hops: 8 + 60 = 68B.
	if got := INTBytes(5, 3); got != 68 {
		t.Fatalf("5 hops × 3 values = %d, want 68", got)
	}
}
