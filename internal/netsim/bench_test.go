package netsim

import (
	"testing"

	"repro/internal/topology"
)

// BenchmarkEventThroughput measures the raw event-loop rate — the budget
// everything else in a simulation spends from.
func BenchmarkEventThroughput(b *testing.B) {
	s := NewSim()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			s.After(1, tick)
		}
	}
	s.At(0, tick)
	b.ResetTimer()
	s.Run(int64(b.N) * 2)
}

// BenchmarkPacketForwarding measures full store-and-forward cost per
// packet across a 5-switch fat-tree path, including queueing machinery
// and hooks.
func BenchmarkPacketForwarding(b *testing.B) {
	g, err := topology.FatTree(4)
	if err != nil {
		b.Fatal(err)
	}
	sim := NewSim()
	spec := LinkSpec{Bps: 100_000_000_000, PropNs: 100, BufBytes: 1 << 24}
	net, err := Build(sim, g, BuildOptions{HostLink: spec, TierLink: spec})
	if err != nil {
		b.Fatal(err)
	}
	hosts := g.Hosts()
	src, dst := hosts[0], hosts[len(hosts)-1]
	cap := &captureEndpoint{sim: sim}
	net.Host(dst).Attach(1, cap)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Host(src).Send(&Packet{ID: uint64(i), FlowID: 1, Src: src, Dst: dst, PayloadLen: 1000})
		if i%1024 == 1023 {
			sim.Run(sim.Now() + 1_000_000_000)
		}
	}
	sim.Run(sim.Now() + 10_000_000_000)
	b.StopTimer()
	if len(cap.pkts) != b.N {
		b.Fatalf("delivered %d of %d", len(cap.pkts), b.N)
	}
}
