package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/hash"
	"repro/internal/topology"
)

// TestPacketConservationProperty checks the simulator's fundamental
// invariant under random traffic: every injected packet is either
// delivered to an endpoint or counted as a drop — nothing vanishes, and
// nothing duplicates.
func TestPacketConservationProperty(t *testing.T) {
	f := func(seed uint64, nPktRaw uint8, bufRaw uint16) bool {
		nPkt := 1 + int(nPktRaw)%200
		buf := 2000 + int(bufRaw)%100000
		g := topology.NewGraph("cons")
		h1 := g.AddNode(topology.Host, "h1")
		s1 := g.AddNode(topology.Switch, "s1")
		s2 := g.AddNode(topology.Switch, "s2")
		h2 := g.AddNode(topology.Host, "h2")
		for _, e := range [][2]int{{h1, s1}, {s1, s2}, {s2, h2}} {
			if err := g.AddEdge(e[0], e[1]); err != nil {
				return false
			}
		}
		sim := NewSim()
		spec := LinkSpec{Bps: 1e9, PropNs: 500, BufBytes: buf}
		net, err := Build(sim, g, BuildOptions{HostLink: spec, TierLink: spec})
		if err != nil {
			return false
		}
		cap := &captureEndpoint{sim: sim}
		net.Host(h2).Attach(1, cap)
		rng := hash.NewRNG(seed)
		for i := 0; i < nPkt; i++ {
			pkt := &Packet{ID: uint64(i), FlowID: 1, Src: h1, Dst: h2,
				PayloadLen: 100 + rng.Intn(1300)}
			sim.After(int64(rng.Intn(1000)), func() { net.Host(h1).Send(pkt) })
		}
		sim.Run(10_000_000_000)
		if sim.Pending() != 0 {
			return false // everything must quiesce
		}
		return len(cap.pkts)+net.Drops == nPkt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestNoDuplicateDelivery ensures a packet object traverses the network
// exactly once even under queueing.
func TestNoDuplicateDelivery(t *testing.T) {
	sim, net, h1, h2 := buildLine(t)
	cap := &captureEndpoint{sim: sim}
	net.Host(h2).Attach(7, cap)
	const n = 50
	for i := 0; i < n; i++ {
		net.Host(h1).Send(&Packet{ID: uint64(i), FlowID: 7, Src: h1, Dst: h2, PayloadLen: 500})
	}
	sim.Run(1_000_000_000)
	seen := map[uint64]bool{}
	for _, p := range cap.pkts {
		if seen[p.ID] {
			t.Fatalf("packet %d delivered twice", p.ID)
		}
		seen[p.ID] = true
	}
	if len(seen) != n {
		t.Fatalf("delivered %d distinct packets, want %d", len(seen), n)
	}
}

// TestHopCountMatchesTopologyDistance checks that Hops equals the number
// of switches on the route for every delivered packet.
func TestHopCountMatchesTopologyDistance(t *testing.T) {
	g, err := topology.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim()
	spec := LinkSpec{Bps: 1e9, PropNs: 100, BufBytes: 1 << 20}
	net, err := Build(sim, g, BuildOptions{HostLink: spec, TierLink: spec})
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	cap := &captureEndpoint{sim: sim}
	src, dst := hosts[0], hosts[len(hosts)-1]
	net.Host(dst).Attach(1, cap)
	net.Host(src).Send(&Packet{ID: 1, FlowID: 1, Src: src, Dst: dst, PayloadLen: 100})
	sim.Run(1_000_000_000)
	if len(cap.pkts) != 1 {
		t.Fatal("packet lost")
	}
	// Cross-pod in a fat tree: exactly 5 switches.
	if cap.pkts[0].Hops != 5 {
		t.Fatalf("hops = %d, want 5", cap.pkts[0].Hops)
	}
}

// TestPortCountersMonotone checks TxBytes accounting.
func TestPortCountersMonotone(t *testing.T) {
	sim, net, h1, h2 := buildLine(t)
	last := map[*Port]uint64{}
	var any uint64
	net.OnDequeue = func(_ *Network, _ *SwitchNode, port *Port, _ *Packet, _ int, _, _ int64) {
		if port.TxBytes < last[port] {
			t.Error("TxBytes decreased")
		}
		last[port] = port.TxBytes
		any = port.TxBytes
	}
	cap := &captureEndpoint{sim: sim}
	net.Host(h2).Attach(7, cap)
	for i := 0; i < 20; i++ {
		net.Host(h1).Send(&Packet{ID: uint64(i), FlowID: 7, Src: h1, Dst: h2, PayloadLen: 900})
	}
	sim.Run(1_000_000_000)
	if any == 0 {
		t.Fatal("no bytes accounted")
	}
}
