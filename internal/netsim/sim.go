// Package netsim is a packet-level discrete-event network simulator — the
// stand-in for the NS3 setup the paper's Figs 1, 2, 7, 8 and 11 were
// produced with. It models:
//
//   - store-and-forward switches with per-egress-port FIFO queues, finite
//     shared-nothing buffers, and tail drop,
//   - links with configurable bandwidth and propagation delay, including
//     serialization time that grows with telemetry overhead bytes (the
//     exact mechanism §2 identifies: every INT byte consumes bottleneck
//     capacity and inflates queueing),
//   - hosts that attach transport endpoints (TCP-Reno-like and HPCC live
//     in internal/transport),
//   - telemetry hook points at dequeue time, where INT/PINT encoders run
//     in a deployment's egress pipeline.
//
// The simulator is single-threaded and fully deterministic: events at the
// same timestamp fire in scheduling order.
package netsim

import (
	"container/heap"
	"fmt"
)

// Sim is the event loop. Times are int64 nanoseconds.
type Sim struct {
	now    int64
	events eventHeap
	seq    uint64
}

// NewSim creates an empty simulation at t=0.
func NewSim() *Sim { return &Sim{} }

// Now returns the current simulation time in ns.
func (s *Sim) Now() int64 { return s.now }

// At schedules fn at absolute time t (>= now).
func (s *Sim) At(t int64, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("netsim: scheduling into the past (%d < %d)", t, s.now))
	}
	s.seq++
	heap.Push(&s.events, event{t: t, seq: s.seq, fn: fn})
}

// After schedules fn d nanoseconds from now.
func (s *Sim) After(d int64, fn func()) { s.At(s.now+d, fn) }

// Run executes events until the queue empties or the clock passes until.
// It returns the number of events processed.
func (s *Sim) Run(until int64) int {
	n := 0
	for len(s.events) > 0 {
		ev := s.events[0]
		if ev.t > until {
			break
		}
		heap.Pop(&s.events)
		s.now = ev.t
		ev.fn()
		n++
	}
	if s.now < until {
		s.now = until
	}
	return n
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.events) }

type event struct {
	t   int64
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
