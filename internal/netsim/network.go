package netsim

import (
	"fmt"

	"repro/internal/hash"
	"repro/internal/topology"
)

// LinkSpec describes one directed link's service characteristics.
type LinkSpec struct {
	Bps      int64 // bandwidth, bits per second
	PropNs   int64 // propagation delay
	BufBytes int   // egress queue capacity at the upstream side
}

// DequeueHook runs when a packet finishes serialization at a switch egress
// port — the place a P4 pipeline's egress stage executes INT/PINT encoders.
// The hook may mutate the packet's telemetry fields. qlen is the queue
// backlog (bytes) left behind, tauNs the time since this port's previous
// dequeue completion (HPCC's τ), and hopLatNs the packet's residence time
// at this switch (queueing + serialization — the value a latency query
// samples).
type DequeueHook func(net *Network, sw *SwitchNode, port *Port, pkt *Packet, qlen int, tauNs, hopLatNs int64)

// HopLatencyHook observes each packet's per-switch residence time
// (queueing + serialization) — ground truth for the latency-quantile
// experiments (Fig 9).
type HopLatencyHook func(sw *SwitchNode, pkt *Packet, latencyNs int64)

// Endpoint receives packets addressed to a (host, flow) pair; transports
// implement it for both sender and receiver sides.
type Endpoint interface {
	Deliver(pkt *Packet)
}

// Network instantiates a topology.Graph as simulated nodes and ports.
type Network struct {
	Sim   *Sim
	Graph *topology.Graph
	// ValuesPerHop is the INT values-per-hop count used for overhead
	// accounting on every packet (HPCC needs 3; path tracing 1).
	ValuesPerHop int

	nodes        []nodeRef
	OnDequeue    DequeueHook
	OnHopLatency HopLatencyHook
	// OnDeliver observes every packet arriving at a host, before endpoint
	// dispatch — where a PINT Sink's Recording Module taps the digests.
	OnDeliver func(h *HostNode, pkt *Packet)

	// Drops counts tail drops network-wide.
	Drops int
	// Delivered counts packets handed to endpoints.
	Delivered int
	pktSeq    uint64
}

type nodeRef struct {
	sw   *SwitchNode
	host *HostNode
}

// Port is a directed egress attachment from a node to a neighbor.
type Port struct {
	Spec      LinkSpec
	DstNode   int
	queue     []*Packet
	qBytes    int
	busy      bool
	TxBytes   uint64
	Drops     int
	LastDeqNs int64
	// U is scratch state for a PINT-style switch-resident EWMA (per-link
	// utilization, §4.3); owned by whatever hook the experiment installs.
	U float64
}

// QueueBytes returns the current backlog.
func (p *Port) QueueBytes() int { return p.qBytes }

// SwitchNode is a store-and-forward switch with per-destination ECMP
// routing and per-port FIFO queues.
type SwitchNode struct {
	ID    int
	Net   *Network
	Ports []*Port
	// portByNeighbor maps neighbor node ID -> index into Ports.
	portByNeighbor map[int]int
	// nextHops[dst] lists the equal-cost neighbor choices toward dst.
	nextHops map[int][]int
}

// HostNode sources and sinks packets through a single access port.
type HostNode struct {
	ID        int
	Net       *Network
	Port      *Port
	endpoints map[uint64]Endpoint
}

// BuildOptions configures network instantiation.
type BuildOptions struct {
	// HostLink applies to host<->switch links, TierLink to switch<->switch.
	HostLink LinkSpec
	TierLink LinkSpec
	// ValuesPerHop for INT overhead accounting (see Network).
	ValuesPerHop int
}

// Build wires a Network over a topology graph.
func Build(sim *Sim, g *topology.Graph, opt BuildOptions) (*Network, error) {
	if opt.HostLink.Bps <= 0 || opt.TierLink.Bps <= 0 {
		return nil, fmt.Errorf("netsim: link bandwidth must be positive")
	}
	if opt.HostLink.BufBytes <= 0 || opt.TierLink.BufBytes <= 0 {
		return nil, fmt.Errorf("netsim: buffer size must be positive")
	}
	n := &Network{Sim: sim, Graph: g, ValuesPerHop: opt.ValuesPerHop}
	n.nodes = make([]nodeRef, g.NumNodes())
	for _, node := range g.Nodes {
		switch node.Kind {
		case topology.Switch:
			sw := &SwitchNode{ID: node.ID, Net: n,
				portByNeighbor: map[int]int{}, nextHops: map[int][]int{}}
			n.nodes[node.ID] = nodeRef{sw: sw}
		case topology.Host:
			n.nodes[node.ID] = nodeRef{host: &HostNode{ID: node.ID, Net: n,
				endpoints: map[uint64]Endpoint{}}}
		}
	}
	// Create directed ports for each undirected edge.
	for _, node := range g.Nodes {
		for _, nb := range g.Neighbors(node.ID) {
			spec := opt.TierLink
			if g.Nodes[node.ID].Kind == topology.Host || g.Nodes[nb].Kind == topology.Host {
				spec = opt.HostLink
			}
			port := &Port{Spec: spec, DstNode: nb}
			if sw := n.nodes[node.ID].sw; sw != nil {
				sw.portByNeighbor[nb] = len(sw.Ports)
				sw.Ports = append(sw.Ports, port)
			} else {
				h := n.nodes[node.ID].host
				if h.Port != nil {
					return nil, fmt.Errorf("netsim: host %d has multiple links", node.ID)
				}
				h.Port = port
			}
		}
	}
	// Routing: for each host destination, BFS from the destination gives
	// each switch its set of equal-cost next hops (neighbors one hop
	// closer to the destination).
	for _, dst := range g.Hosts() {
		dist, _ := g.BFSFrom(dst)
		for _, swID := range g.Switches() {
			if dist[swID] < 0 {
				continue
			}
			sw := n.nodes[swID].sw
			var next []int
			for _, nb := range g.Neighbors(swID) {
				if dist[nb] == dist[swID]-1 {
					next = append(next, nb)
				}
			}
			sw.nextHops[dst] = next
		}
	}
	return n, nil
}

// Host returns the host node for a graph node ID.
func (n *Network) Host(id int) *HostNode {
	h := n.nodes[id].host
	if h == nil {
		panic(fmt.Sprintf("netsim: node %d is not a host", id))
	}
	return h
}

// Switch returns the switch node for a graph node ID.
func (n *Network) Switch(id int) *SwitchNode {
	s := n.nodes[id].sw
	if s == nil {
		panic(fmt.Sprintf("netsim: node %d is not a switch", id))
	}
	return s
}

// NextPacketID allocates a unique packet identifier (standing in for the
// IPID/TCP-sequence-derived identifiers §4.1 assumes).
func (n *Network) NextPacketID() uint64 {
	n.pktSeq++
	return n.pktSeq
}

// enqueue places a packet on a port, applying tail drop, and kicks the
// serializer. sw is non-nil for switch-owned ports so the telemetry hooks
// run at dequeue.
func (n *Network) enqueue(port *Port, pkt *Packet, sw *SwitchNode) {
	size := pkt.WireSize(n.ValuesPerHop)
	if port.qBytes+size > port.Spec.BufBytes {
		port.Drops++
		n.Drops++
		return
	}
	port.queue = append(port.queue, pkt)
	port.qBytes += size
	n.startTx(port, sw)
}

// startTx begins serializing the head-of-line packet if the port is idle.
// sw is non-nil when the port belongs to a switch (telemetry runs there).
func (n *Network) startTx(port *Port, sw *SwitchNode) {
	if port.busy || len(port.queue) == 0 {
		return
	}
	port.busy = true
	pkt := port.queue[0]
	port.queue = port.queue[1:]
	size := pkt.WireSize(n.ValuesPerHop)
	port.qBytes -= size
	serNs := int64(size) * 8 * 1_000_000_000 / port.Spec.Bps
	if serNs < 1 {
		serNs = 1
	}
	n.Sim.After(serNs, func() {
		now := n.Sim.Now()
		port.TxBytes += uint64(size)
		if sw != nil {
			tau := now - port.LastDeqNs
			hopLat := now - pkt.arrivedNs
			if n.OnHopLatency != nil {
				n.OnHopLatency(sw, pkt, hopLat)
			}
			if n.OnDequeue != nil {
				n.OnDequeue(n, sw, port, pkt, port.qBytes, tau, hopLat)
			}
			port.LastDeqNs = now
			pkt.Hops++
		}
		port.busy = false
		n.startTx(port, sw)
		n.Sim.After(port.Spec.PropNs, func() { n.receive(port.DstNode, pkt) })
	})
}

// receive dispatches an arriving packet to the destination node.
func (n *Network) receive(nodeID int, pkt *Packet) {
	pkt.arrivedNs = n.Sim.Now()
	if sw := n.nodes[nodeID].sw; sw != nil {
		sw.receive(pkt)
		return
	}
	n.nodes[nodeID].host.receive(pkt)
}

func (s *SwitchNode) receive(pkt *Packet) {
	next := s.nextHops[pkt.Dst]
	if len(next) == 0 {
		s.Net.Drops++ // no route
		return
	}
	// ECMP: stable per flow, spread across flows.
	nb := next[int(hash.Mix64(pkt.FlowID^uint64(s.ID)<<32)%uint64(len(next)))]
	port := s.Ports[s.portByNeighbor[nb]]
	s.Net.enqueue(port, pkt, s)
}

func (h *HostNode) receive(pkt *Packet) {
	if h.Net.OnDeliver != nil {
		h.Net.OnDeliver(h, pkt)
	}
	ep, ok := h.endpoints[pkt.FlowID]
	if !ok {
		h.Net.Drops++
		return
	}
	h.Net.Delivered++
	ep.Deliver(pkt)
}

// Attach registers a flow endpoint on the host.
func (h *HostNode) Attach(flowID uint64, ep Endpoint) {
	h.endpoints[flowID] = ep
}

// Detach removes a flow endpoint (on flow completion).
func (h *HostNode) Detach(flowID uint64) {
	delete(h.endpoints, flowID)
}

// Send injects a packet from this host into the network.
func (h *HostNode) Send(pkt *Packet) {
	pkt.SentNs = h.Net.Sim.Now()
	h.Net.enqueue(h.Port, pkt, nil)
}
