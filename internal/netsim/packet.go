package netsim

// HopINT is one hop's classic INT metadata record, the per-hop values the
// INT specification's metadata header requests (Table 1). HPCC consumes
// TxBytes, Qlen and TsNs per hop (§2); the overhead accounting charges
// INTHopBytes wire bytes for each record on the packet.
type HopINT struct {
	SwitchID uint64
	Qlen     int    // queue occupancy at dequeue, bytes
	TxBytes  uint64 // cumulative bytes transmitted by the egress port
	TsNs     int64  // egress timestamp
	RateBps  int64  // port bandwidth (HPCC's B; static per link)
}

// Packet is one simulated packet. PayloadLen is application payload;
// WireSize() adds protocol header and telemetry overhead, and it is the
// wire size that consumes link capacity — the crux of the paper's
// overhead argument.
type Packet struct {
	ID     uint64
	FlowID uint64
	Src    int // source host node ID
	Dst    int // destination host node ID

	Seq        int64 // first payload byte offset
	PayloadLen int
	Ack        bool
	AckSeq     int64 // cumulative ACK (bytes expected next)

	// Telemetry state carried on the wire.
	INT        []HopINT // classic INT stack (grows per hop)
	Digest     uint64   // PINT digest bits (global budget <= 64)
	DigestBits int      // how many bits of Digest are on the wire
	// DigestQuery identifies which query set this packet's digest serves
	// (0 = none). It is NOT wire data: in a deployment every switch
	// recomputes it from the global query-selection hash on the packet ID
	// (§3.4); carrying it here just saves recomputation.
	DigestQuery int
	EchoINT     []HopINT // receiver's echo of the data packet's INT, on ACKs
	EchoDigest  uint64   // receiver's echo of the PINT digest, on ACKs
	EchoBits    int
	EchoQuery   int    // echo of DigestQuery
	EchoPktID   uint64 // ID of the data packet the echo came from (metadata)
	EchoSentNs  int64  // echo of the data packet's SentNs (timestamp option)
	ExtraBytes  int    // fixed synthetic overhead (Fig 1/2's 28..108B sweeps)

	Hops      int   // switch hops traversed so far
	SentNs    int64 // transmission time at the source (for RTT samples)
	arrivedNs int64 // arrival at current node (hop latency measurement)
}

// Protocol constants. The 40-byte header models Ethernet+IP+TCP framing at
// the granularity the experiments need; INT values are 4 bytes each plus
// an 8-byte metadata header per the INT spec (§2).
const (
	HeaderBytes    = 40
	INTHeaderBytes = 8
	INTValueBytes  = 4
)

// INTBytes returns the wire cost of the packet's INT stack: 8B header when
// any record is present plus 4B per value per hop. valuesPerHop is fixed
// per experiment (HPCC uses 3).
func INTBytes(hops, valuesPerHop int) int {
	if hops == 0 || valuesPerHop == 0 {
		return 0
	}
	return INTHeaderBytes + hops*valuesPerHop*INTValueBytes
}

// WireSize is the packet's total size on the wire, the quantity that
// consumes link capacity and queue buffers.
func (p *Packet) WireSize(valuesPerHop int) int {
	size := HeaderBytes + p.PayloadLen + p.ExtraBytes
	if len(p.INT) > 0 {
		size += INTBytes(len(p.INT), valuesPerHop)
	}
	if p.DigestBits > 0 {
		size += (p.DigestBits + 7) / 8
	}
	if len(p.EchoINT) > 0 {
		size += INTBytes(len(p.EchoINT), valuesPerHop)
	}
	if p.EchoBits > 0 {
		size += (p.EchoBits + 7) / 8
	}
	return size
}
