package core

import (
	"math"
	"testing"

	"repro/internal/hash"
)

// combinedTestPlan compiles a Fig-11-shaped plan exercising every query
// kind: path 2x(b=4) on every packet, latency b=8 on 7/8, util b=8 on
// 1/8, freq b=4 on 1/4, count b=4 on 1/8 — 32-bit global budget.
func combinedTestPlan(t testing.TB, master hash.Seed) (*Engine, *PathQuery, *LatencyQuery, *UtilQuery, *FreqQuery, *CountQuery) {
	t.Helper()
	universe := make([]uint64, 64)
	for i := range universe {
		universe[i] = uint64(0xAB00 + i*3)
	}
	cfg, err := DefaultPathConfig(4, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	path, err := NewPathQuery("path", cfg, 1, master, universe)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := NewLatencyQuery("lat", 8, 0.04, 7.0/8, master)
	if err != nil {
		t.Fatal(err)
	}
	util, err := NewUtilQuery("util", 8, 0.025, 1.0/8, 1000, master)
	if err != nil {
		t.Fatal(err)
	}
	freq, err := NewFreqQuery("freq", 4, 1.0/4, master)
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := NewCountQuery("cnt", 4, 0.5, 1.0/8, master)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Compile([]Query{path, lat, util, freq, cnt}, 32, master.Derive(9))
	if err != nil {
		t.Fatal(err)
	}
	return eng, path, lat, util, freq, cnt
}

// hopValuesFor derives deterministic pseudo-values for one (packet, hop).
func hopValuesFor(pktID uint64, hop int, universe0 uint64) HopValues {
	h := hash.Seed(42).Hash2(pktID, uint64(hop))
	return HopValues{
		SwitchID:   universe0 + (h%16)*3,
		LatencyNs:  1000 + h%100000,
		Util:       1 + h%1500,
		FreqValue:  h % 16,
		CountFired: h % 3,
	}
}

// valueOfClosure adapts HopValues back to the legacy closure API.
func valueOfClosure(v *HopValues) func(Query) uint64 {
	return func(q Query) uint64 {
		switch q.(type) {
		case *PathQuery:
			return v.SwitchID
		case *LatencyQuery:
			return v.LatencyNs
		case *UtilQuery:
			return v.Util
		case *FreqQuery:
			return v.FreqValue
		case *CountQuery:
			return v.CountFired
		}
		return 0
	}
}

// TestCompiledEncodeMatchesLegacy checks the compiled per-packet and batch
// encoders produce digests bit-identical to the closure-based EncodeHop,
// across every query kind and set of the plan.
func TestCompiledEncodeMatchesLegacy(t *testing.T) {
	eng, _, _, _, _, _ := combinedTestPlan(t, 7)
	const k = 6
	rng := hash.NewRNG(11)
	pkts := make([]PacketDigest, 512)
	for i := range pkts {
		pkts[i] = PacketDigest{Flow: FlowKey(i % 5), PktID: rng.Uint64(), PathLen: k}
	}
	legacy := make([]uint64, len(pkts))
	compiled := make([]uint64, len(pkts))
	vals := make([]HopValues, len(pkts))
	for hop := 1; hop <= k; hop++ {
		for i := range pkts {
			vals[i] = hopValuesFor(pkts[i].PktID, hop, 0xAB00)
			legacy[i] = eng.EncodeHop(pkts[i].PktID, hop, legacy[i], valueOfClosure(&vals[i]))
			compiled[i] = eng.EncodeHopValues(pkts[i].PktID, hop, compiled[i], &vals[i])
		}
		eng.EncodeHopBatch(hop, pkts, vals)
		for i := range pkts {
			if legacy[i] != compiled[i] {
				t.Fatalf("hop %d pkt %d: EncodeHopValues %#x != EncodeHop %#x",
					hop, i, compiled[i], legacy[i])
			}
			if pkts[i].Digest != legacy[i] {
				t.Fatalf("hop %d pkt %d: EncodeHopBatch %#x != EncodeHop %#x",
					hop, i, pkts[i].Digest, legacy[i])
			}
		}
	}
}

// TestExtractIntoMatchesExtract checks the zero-alloc extraction agrees
// with the allocating one, including buffer reuse.
func TestExtractIntoMatchesExtract(t *testing.T) {
	eng, _, _, _, _, _ := combinedTestPlan(t, 13)
	rng := hash.NewRNG(17)
	var buf []Extracted
	for i := 0; i < 2000; i++ {
		pktID, digest := rng.Uint64(), rng.Uint64()
		want := eng.Extract(pktID, digest)
		buf = eng.ExtractInto(pktID, digest, buf[:0])
		if len(want) != len(buf) {
			t.Fatalf("pkt %d: ExtractInto %d slices, Extract %d", i, len(buf), len(want))
		}
		for j := range want {
			if want[j] != buf[j] {
				t.Fatalf("pkt %d slice %d: got %+v want %+v", i, j, buf[j], want[j])
			}
		}
	}
}

// TestRecordBatchMatchesRecord checks batched ingest leaves a Recording in
// exactly the state per-packet ingest does, for raw and sketched storage.
func TestRecordBatchMatchesRecord(t *testing.T) {
	for _, sketchItems := range []int{0, 32} {
		eng, path, lat, util, freq, cnt := combinedTestPlan(t, 19)
		const k = 6
		const nFlows = 8
		rng := hash.NewRNG(23)
		pkts := make([]PacketDigest, 4096)
		vals := make([]HopValues, len(pkts))
		for i := range pkts {
			pkts[i] = PacketDigest{Flow: FlowKey(i % nFlows), PktID: rng.Uint64(), PathLen: k}
		}
		for hop := 1; hop <= k; hop++ {
			for i := range pkts {
				vals[i] = hopValuesFor(pkts[i].PktID, hop, 0xAB00)
			}
			eng.EncodeHopBatch(hop, pkts, vals)
		}
		base := hash.Seed(rng.Uint64())
		serial, err := NewRecordingSeeded(eng, sketchItems, base)
		if err != nil {
			t.Fatal(err)
		}
		batched, err := NewRecordingSeeded(eng, sketchItems, base)
		if err != nil {
			t.Fatal(err)
		}
		for i := range pkts {
			if err := serial.Record(pkts[i].Flow, pkts[i].PathLen, pkts[i].PktID, pkts[i].Digest); err != nil {
				t.Fatal(err)
			}
		}
		for off := 0; off < len(pkts); off += 100 {
			end := off + 100
			if end > len(pkts) {
				end = len(pkts)
			}
			if err := batched.RecordBatch(pkts[off:end]); err != nil {
				t.Fatal(err)
			}
		}
		for f := 0; f < nFlows; f++ {
			flow := FlowKey(f)
			assertSameAnswers(t, serial, batched, flow, k, path, lat, util, freq, cnt)
		}
	}
}

// assertSameAnswers compares every query's answer between two recordings
// for one flow, requiring bit-identity.
func assertSameAnswers(t *testing.T, a, b *Recording, flow FlowKey, k int,
	path *PathQuery, lat *LatencyQuery, util *UtilQuery, freq *FreqQuery, cnt *CountQuery) {
	t.Helper()
	pa, oka := a.Path(path, flow)
	pb, okb := b.Path(path, flow)
	if oka != okb || len(pa) != len(pb) {
		t.Fatalf("flow %d: path answers diverge (%v/%d vs %v/%d)", flow, oka, len(pa), okb, len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("flow %d hop %d: path %d vs %d", flow, i+1, pa[i], pb[i])
		}
	}
	for hop := 1; hop <= k; hop++ {
		na, nb := a.LatencySamples(lat, flow, hop), b.LatencySamples(lat, flow, hop)
		if na != nb {
			t.Fatalf("flow %d hop %d: %d vs %d latency samples", flow, hop, na, nb)
		}
		if na == 0 {
			continue
		}
		for _, phi := range []float64{0.5, 0.9, 0.99} {
			qa, erra := a.LatencyQuantile(lat, flow, hop, phi)
			qb, errb := b.LatencyQuantile(lat, flow, hop, phi)
			if (erra == nil) != (errb == nil) || (erra == nil && qa != qb) {
				t.Fatalf("flow %d hop %d phi %v: quantile %v(%v) vs %v(%v)",
					flow, hop, phi, qa, erra, qb, errb)
			}
		}
		ha := a.FrequentValues(freq, flow, hop, 0.2)
		hb := b.FrequentValues(freq, flow, hop, 0.2)
		if len(ha) != len(hb) {
			t.Fatalf("flow %d hop %d: %d vs %d heavy hitters", flow, hop, len(ha), len(hb))
		}
		for i := range ha {
			if ha[i] != hb[i] {
				t.Fatalf("flow %d hop %d: heavy hitter %+v vs %+v", flow, hop, ha[i], hb[i])
			}
		}
	}
	ua, ub := a.UtilSeries(util, flow), b.UtilSeries(util, flow)
	if len(ua) != len(ub) {
		t.Fatalf("flow %d: util series %d vs %d", flow, len(ua), len(ub))
	}
	for i := range ua {
		if ua[i] != ub[i] {
			t.Fatalf("flow %d util[%d]: %v vs %v", flow, i, ua[i], ub[i])
		}
	}
	ca, cb := a.CountSeries(cnt, flow), b.CountSeries(cnt, flow)
	if len(ca) != len(cb) {
		t.Fatalf("flow %d: count series %d vs %d", flow, len(ca), len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] && !(math.IsNaN(ca[i]) && math.IsNaN(cb[i])) {
			t.Fatalf("flow %d count[%d]: %v vs %v", flow, i, ca[i], cb[i])
		}
	}
}

// TestEncodeBatchZeroAlloc pins the acceptance criterion: the batch encode
// per-packet loop performs zero heap allocations.
func TestEncodeBatchZeroAlloc(t *testing.T) {
	eng, _, _, _, _, _ := combinedTestPlan(t, 29)
	const k = 6
	rng := hash.NewRNG(31)
	pkts := make([]PacketDigest, 256)
	vals := make([]HopValues, len(pkts))
	for i := range pkts {
		pkts[i] = PacketDigest{Flow: FlowKey(i), PktID: rng.Uint64(), PathLen: k}
		vals[i] = hopValuesFor(pkts[i].PktID, 1, 0xAB00)
	}
	// The SoA scratch rides a sync.Pool, and under -race the pool
	// deliberately drops a fraction of Puts to surface reuse bugs — the
	// re-allocations that causes are race-runtime behavior, not a hot-path
	// leak, so the assertion only holds in a normal build.
	if !raceEnabled {
		allocs := testing.AllocsPerRun(20, func() {
			for hop := 1; hop <= k; hop++ {
				eng.EncodeHopBatch(hop, pkts, vals)
			}
		})
		if allocs != 0 {
			t.Fatalf("EncodeHopBatch allocates %.1f times per run, want 0", allocs)
		}
	}
	var buf []Extracted
	allocs := testing.AllocsPerRun(20, func() {
		for i := range pkts {
			buf = eng.ExtractInto(pkts[i].PktID, pkts[i].Digest, buf[:0])
		}
	})
	if allocs != 0 {
		t.Fatalf("ExtractInto allocates %.1f times per run, want 0", allocs)
	}
}
