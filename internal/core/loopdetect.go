package core

import (
	"fmt"
	"math"

	"repro/internal/hash"
)

// LoopDetector implements Appendix A.4's routing-loop extension
// (Algorithm 2): before sampling, each switch checks whether the digest
// already equals its own hash h(s, pkt) — evidence the packet visited this
// switch before. A counter of ⌈log₂(T+1)⌉ extra bits requires T+1 matches
// before reporting, shrinking the false-positive probability from ~k·2^-b
// per packet to ~k·2^-b(T+1).
type LoopDetector struct {
	g    hash.Global
	bits int
	T    uint64
}

// NewLoopDetector builds the detector with digest width b and confirmation
// threshold T (Algorithm 2; T=0 reports on the first match).
func NewLoopDetector(bits int, T uint64, master hash.Seed) (*LoopDetector, error) {
	if bits < 1 || bits > 32 {
		return nil, fmt.Errorf("core: loop digest bits %d out of [1,32]", bits)
	}
	return &LoopDetector{g: hash.NewGlobal(master.Derive(0x100B)), bits: bits, T: T}, nil
}

// OverheadBits is the on-wire cost: b digest bits plus ⌈log₂(T+1)⌉ counter
// bits.
func (l *LoopDetector) OverheadBits() int {
	return l.bits + int(math.Ceil(math.Log2(float64(l.T+1))))
}

// LoopState is the per-packet wire state.
type LoopState struct {
	Digest uint64
	C      uint64
	Loop   bool // LOOP reported
}

// Step processes one switch visit (Algorithm 2). hop is the packet's
// running 1-based hop number (from TTL); switchID identifies the switch.
func (l *LoopDetector) Step(st LoopState, pktID, switchID uint64, hop int) LoopState {
	h := l.g.ValueDigest(switchID, pktID, l.bits)
	if st.Digest == h && (hop > 1 || st.C > 0) {
		// Matching digest: either a true revisit or a hash collision.
		if st.C == l.T {
			st.Loop = true
			return st
		}
		st.C++
		return st
	}
	if st.C == 0 && l.g.ReservoirWrites(pktID, hop) {
		st.Digest = h
	}
	return st
}

// RunLoopFree sends one packet along a loop-free path and reports whether
// a (false) LOOP was raised.
func (l *LoopDetector) RunLoopFree(pktID uint64, path []uint64) bool {
	var st LoopState
	for i, sw := range path {
		st = l.Step(st, pktID, sw, i+1)
		if st.Loop {
			return true
		}
	}
	return false
}

// RunWithLoop simulates a packet entering a forwarding loop: it traverses
// prefix once, then cycles `loop` up to maxCycles times. It returns the
// number of loop cycles until detection, or -1 if undetected.
func (l *LoopDetector) RunWithLoop(pktID uint64, prefix, loop []uint64, maxCycles int) int {
	var st LoopState
	hop := 0
	for _, sw := range prefix {
		hop++
		st = l.Step(st, pktID, sw, hop)
	}
	for c := 0; c < maxCycles; c++ {
		for _, sw := range loop {
			hop++
			st = l.Step(st, pktID, sw, hop)
			if st.Loop {
				return c + 1
			}
		}
	}
	return -1
}

// FalsePositiveRate estimates the per-packet probability of a spurious
// LOOP report on loop-free paths of length k (the analysis in A.4: e.g.
// b=16, k=32, T=0 gives ≈0.05%; T=1, b=15 gives < 5·10⁻⁷).
func (l *LoopDetector) FalsePositiveRate(k int, packets int, seed uint64) float64 {
	rng := hash.NewRNG(seed)
	path := make([]uint64, k)
	for i := range path {
		path[i] = uint64(0x60000000 + i)
	}
	fp := 0
	for i := 0; i < packets; i++ {
		if l.RunLoopFree(rng.Uint64(), path) {
			fp++
		}
	}
	return float64(fp) / float64(packets)
}
