package core

import (
	"fmt"

	"repro/internal/approx"
	"repro/internal/hash"
)

// LatencyQuery is the dynamic per-flow aggregation (§4.1, Example #1):
// every packet carries the compressed value of one uniformly chosen hop
// (distributed Reservoir Sampling), and the Recording Module accumulates
// each (flow, hop)'s sampled sub-stream for quantile inference —
// Theorem 1's median/tail-latency estimator.
type LatencyQuery struct {
	name string
	bits int
	freq float64
	g    hash.Global
	comp *approx.MultCompressor
}

// NewLatencyQuery builds a latency-quantile query with the given digest
// budget. eps is the multiplicative compression error (§6.2 pairs b=8 with
// fine eps and b=4 with coarse; the value floor in Fig 9 comes from here).
func NewLatencyQuery(name string, bits int, eps, freq float64, master hash.Seed) (*LatencyQuery, error) {
	comp, err := approx.NewMultCompressor(eps, bits)
	if err != nil {
		return nil, err
	}
	g := hash.NewGlobal(master.Derive(hash.Seed(0).HashString(name)))
	return &LatencyQuery{name: name, bits: bits, freq: freq, g: g, comp: comp}, nil
}

// Name implements Query.
func (q *LatencyQuery) Name() string { return q.name }

// Agg implements Query.
func (q *LatencyQuery) Agg() AggregationType { return DynamicPerFlow }

// Bits implements Query.
func (q *LatencyQuery) Bits() int { return q.bits }

// Frequency implements Query.
func (q *LatencyQuery) Frequency() float64 { return q.freq }

// EncodeHop implements Query: hop i overwrites the slice with its
// compressed value when it wins the running reservoir (g(pkt,i) < 1/i).
func (q *LatencyQuery) EncodeHop(pktID uint64, hop int, bits uint64, value uint64) uint64 {
	if q.g.ReservoirWrites(pktID, hop) {
		return q.comp.Encode(float64(value))
	}
	return bits
}

// Winner recomputes which hop's value a sink-captured packet carries.
func (q *LatencyQuery) Winner(pktID uint64, k int) int {
	return q.g.ReservoirWinner(pktID, k)
}

// Decode maps a digest code back to an approximate value.
func (q *LatencyQuery) Decode(code uint64) float64 { return q.comp.Decode(code) }

// Eps returns the compression error parameter.
func (q *LatencyQuery) Eps() float64 { return q.comp.Eps() }

// UtilQuery is the per-packet aggregation (§4.3, Example #3): each switch
// compresses its observed value (canonically the link utilization scaled
// to an integer) and the digest keeps the maximum — the path's bottleneck
// — using randomized rounding so the aggregate is unbiased.
type UtilQuery struct {
	name  string
	bits  int
	freq  float64
	g     hash.Global
	comp  *approx.MultCompressor
	scale float64
}

// NewUtilQuery builds a bottleneck-utilization query. scale maps the
// dimensionless utilization into the compressor's v >= 1 domain (1000 by
// convention: U=1.0 → 1001).
func NewUtilQuery(name string, bits int, eps, freq, scale float64, master hash.Seed) (*UtilQuery, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("core: scale must be positive")
	}
	comp, err := approx.NewMultCompressor(eps, bits)
	if err != nil {
		return nil, err
	}
	g := hash.NewGlobal(master.Derive(hash.Seed(0).HashString(name)))
	return &UtilQuery{name: name, bits: bits, freq: freq, g: g, comp: comp, scale: scale}, nil
}

// Name implements Query.
func (q *UtilQuery) Name() string { return q.name }

// Agg implements Query.
func (q *UtilQuery) Agg() AggregationType { return PerPacket }

// Bits implements Query.
func (q *UtilQuery) Bits() int { return q.bits }

// Frequency implements Query.
func (q *UtilQuery) Frequency() float64 { return q.freq }

// EncodeHop implements Query: max-aggregation of randomized-rounded codes.
// value is the utilization pre-scaled by Scale() (integer register units).
func (q *UtilQuery) EncodeHop(pktID uint64, hop int, bits uint64, value uint64) uint64 {
	code := q.comp.EncodeRandomized(float64(value), q.g, pktID+uint64(hop)<<48)
	if code > bits {
		return code
	}
	return bits
}

// Scale returns the utilization pre-scaling factor.
func (q *UtilQuery) Scale() float64 { return q.scale }

// EncodeValue scales a dimensionless utilization into the integer register
// units EncodeHop expects (helper for simulation hooks).
func (q *UtilQuery) EncodeValue(u float64) uint64 {
	if u < 0 {
		u = 0
	}
	return uint64(u*q.scale) + 1
}

// Decode maps a digest code back to a dimensionless utilization.
func (q *UtilQuery) Decode(code uint64) float64 {
	v := q.comp.Decode(code)
	u := (v - 1) / q.scale
	if u < 0 {
		u = 0
	}
	return u
}
