package core

import (
	"testing"

	"repro/internal/hash"
)

// TestRouteChangeDetection exercises §7's multipath/flowlet scenario at
// the Recording level: decode a path, move the flow to a different
// equal-length path, and observe RouteChanged fire without false alarms
// beforehand.
func TestRouteChangeDetection(t *testing.T) {
	const k = 6
	uni := testUniverse(k, 100)
	pathA := uni[:k]
	pathB := append(append([]uint64(nil), uni[:k-2]...), uni[50], uni[51])

	cfg, err := DefaultPathConfig(8, 1, k)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewPathQuery("path", cfg, 1, 77, uni)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Compile([]Query{q}, 8, 78)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecording(e, 0, hash.NewRNG(79))
	if err != nil {
		t.Fatal(err)
	}
	flow := FlowKey(5)
	rng := hash.NewRNG(80)

	send := func(path []uint64) {
		pkt := rng.Uint64()
		var digest uint64
		for hop := 1; hop <= k; hop++ {
			h := hop
			digest = e.EncodeHop(pkt, hop, digest, func(Query) uint64 { return path[h-1] })
		}
		if err := rec.Record(flow, k, pkt, digest); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 1: decode path A; no route change may be reported.
	for i := 0; i < 10000; i++ {
		send(pathA)
		if _, done := rec.Path(q, flow); done {
			break
		}
	}
	if _, done := rec.Path(q, flow); !done {
		t.Fatal("setup: path A not decoded")
	}
	if rec.RouteChanged(q, flow, 3) {
		t.Fatal("false route change on a stable path")
	}
	preInconsistent := rec.PathInconsistencies(q, flow)

	// Phase 2: the flow re-routes; inconsistencies must accumulate fast.
	packetsToDetect := 0
	for i := 0; i < 500; i++ {
		send(pathB)
		packetsToDetect++
		if rec.RouteChanged(q, flow, preInconsistent+3) {
			break
		}
	}
	if !rec.RouteChanged(q, flow, preInconsistent+3) {
		t.Fatal("route change never detected")
	}
	// With q=8 bits, each post-change packet touching a changed hop is
	// inconsistent w.p. ~1-2^-8; detection should take a handful of
	// packets, not hundreds.
	if packetsToDetect > 50 {
		t.Fatalf("detection took %d packets; expected a handful", packetsToDetect)
	}
}

func TestRouteChangedRequiresDecodedPath(t *testing.T) {
	uni := testUniverse(5, 50)
	cfg, _ := DefaultPathConfig(8, 1, 5)
	q, _ := NewPathQuery("p", cfg, 1, 81, uni)
	e, _ := Compile([]Query{q}, 8, 82)
	rec, _ := NewRecording(e, 0, hash.NewRNG(83))
	if rec.RouteChanged(q, FlowKey(1), 1) {
		t.Fatal("unknown flow cannot report a route change")
	}
	if rec.PathInconsistencies(q, FlowKey(1)) != 0 {
		t.Fatal("unknown flow must report zero inconsistencies")
	}
}
