package core

import (
	"math"
	"testing"

	"repro/internal/hash"
)

func TestFreqQueryValidation(t *testing.T) {
	if _, err := NewFreqQuery("f", 0, 1, 1); err == nil {
		t.Fatal("bits=0 must fail")
	}
	if _, err := NewFreqQuery("f", 33, 1, 1); err == nil {
		t.Fatal("bits=33 must fail")
	}
}

func TestFreqQueryEndToEnd(t *testing.T) {
	// Theorem 2 scenario: hop 2 uses egress port 7 for 70% of packets and
	// port 3 for 30%; the query must report 7 (and 3 at theta=0.25) and
	// nothing at theta=0.9.
	q, err := NewFreqQuery("ports", 8, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Compile([]Query{q}, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecording(e, 0, hash.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	flow := FlowKey(1)
	rng := hash.NewRNG(8)
	const k = 3
	for i := 0; i < 30000; i++ {
		pkt := rng.Uint64()
		port7 := rng.Bool(0.7)
		var digest uint64
		for hop := 1; hop <= k; hop++ {
			h := hop
			digest = e.EncodeHop(pkt, hop, digest, func(Query) uint64 {
				if h == 2 {
					if port7 {
						return 7
					}
					return 3
				}
				return uint64(10 + h) // other hops: constant ports
			})
		}
		if err := rec.Record(flow, k, pkt, digest); err != nil {
			t.Fatal(err)
		}
	}
	hh := rec.FrequentValues(q, flow, 2, 0.5)
	if len(hh) != 1 || hh[0].Value != 7 {
		t.Fatalf("theta=0.5: got %v, want just port 7", hh)
	}
	hh = rec.FrequentValues(q, flow, 2, 0.25)
	if len(hh) != 2 {
		t.Fatalf("theta=0.25: got %v, want ports 7 and 3", hh)
	}
	if got := rec.FrequentValues(q, flow, 2, 0.9); len(got) != 0 {
		t.Fatalf("theta=0.9: got %v, want none", got)
	}
	// Frequency estimates must be near the true fractions.
	n := float64(rec.FreqSamples(q, flow, 2))
	if n < 30000/k/2 {
		t.Fatalf("hop 2 undersampled: %v", n)
	}
	frac := float64(hh[0].Estimate) / n
	if math.Abs(frac-0.7) > 0.06 {
		t.Fatalf("port 7 fraction %v, want ~0.7", frac)
	}
	// Constant-value hops report exactly one value.
	if hh := rec.FrequentValues(q, flow, 1, 0.5); len(hh) != 1 || hh[0].Value != 11 {
		t.Fatalf("hop 1: %v, want port 11", hh)
	}
	if rec.FrequentValues(q, flow, 99, 0.5) != nil {
		t.Fatal("out-of-range hop must return nil")
	}
}

func TestCountQueryValidation(t *testing.T) {
	if _, err := NewCountQuery("c", 0, 0.3, 1, 1); err == nil {
		t.Fatal("bits=0 must fail")
	}
	if _, err := NewCountQuery("c", 4, 0, 1, 1); err == nil {
		t.Fatal("eps=0 must fail")
	}
	if _, err := NewCountQuery("c", 4, 1, 1, 1); err == nil {
		t.Fatal("eps=1 must fail")
	}
}

func TestCountQueryUnbiasedMean(t *testing.T) {
	// 6 of 20 hops fire the indicator; the mean decoded estimate over many
	// packets must approach 6 despite the counter having only 6 bits
	// (exact counting would need 5 bits for the count alone plus framing;
	// the win grows with k and value width, see approx.MorrisBits).
	q, err := NewCountQuery("high-lat-hops", 6, 0.3, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Compile([]Query{q}, 6, 10)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecording(e, 0, hash.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	flow := FlowKey(2)
	rng := hash.NewRNG(12)
	const k = 20
	fire := map[int]bool{2: true, 5: true, 9: true, 13: true, 17: true, 19: true}
	for i := 0; i < 30000; i++ {
		pkt := rng.Uint64()
		var digest uint64
		for hop := 1; hop <= k; hop++ {
			h := hop
			digest = e.EncodeHop(pkt, hop, digest, func(Query) uint64 {
				if fire[h] {
					return 1
				}
				return 0
			})
		}
		if err := rec.Record(flow, k, pkt, digest); err != nil {
			t.Fatal(err)
		}
	}
	series := rec.CountSeries(q, flow)
	if len(series) != 30000 {
		t.Fatalf("recorded %d estimates", len(series))
	}
	var mean float64
	for _, v := range series {
		mean += v
	}
	mean /= float64(len(series))
	if math.Abs(mean-6) > 0.5 {
		t.Fatalf("mean count estimate %v, want ~6", mean)
	}
}

func TestCountQueryZeroStaysZero(t *testing.T) {
	q, _ := NewCountQuery("c", 6, 0.3, 1, 13)
	for pkt := uint64(0); pkt < 100; pkt++ {
		if q.EncodeHop(pkt, 3, 0, 0) != 0 {
			t.Fatal("indicator=0 must not change the counter")
		}
	}
	if q.Decode(0) != 0 {
		t.Fatal("code 0 must decode to count 0")
	}
}

func TestLatencyWindowedRecording(t *testing.T) {
	// With sliding-window storage, old regimes must age out of quantiles.
	lat, err := NewLatencyQuery("lat", 8, 0.04, 1, 15)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Compile([]Query{lat}, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecording(e, 64, hash.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	rec.WindowBuckets = 4
	rec.WindowSpan = 500
	flow := FlowKey(3)
	rng := hash.NewRNG(18)
	const k = 2
	feed := func(base float64, n int) {
		for i := 0; i < n; i++ {
			pkt := rng.Uint64()
			var digest uint64
			for hop := 1; hop <= k; hop++ {
				digest = e.EncodeHop(pkt, hop, digest,
					func(Query) uint64 { return uint64(base) })
			}
			if err := rec.Record(flow, k, pkt, digest); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed(1000, 8000)   // old regime
	feed(100000, 8000) // new regime: must dominate the window
	med, err := rec.LatencyQuantile(lat, flow, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if med < 50000 {
		t.Fatalf("windowed median %v still reflects the old regime", med)
	}
	if n := rec.LatencySamples(lat, flow, 1); n > 4*500 {
		t.Fatalf("window holds %d samples, want <= %d", n, 4*500)
	}
}
