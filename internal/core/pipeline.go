package core

import "fmt"

// This file models the switch pipeline layout of §5 / Fig 6: hardware
// pipelines have a small fixed number of match-action stages, queries
// consume stages, and independent queries execute in parallel so a
// combination costs only as many stages as its deepest member (plus the
// query-subset selection, which overlaps HPCC's deep pipeline).

// StageBudget is the stage count of the modeled switch (Fig 6 shows 8).
const StageBudget = 8

// StageCost returns the pipeline depth of one query, per §5:
// path tracing 4 (choose layer, compute g, hash ID, write digest),
// latency 4 (compute latency, compress, compute g, write),
// HPCC congestion control 8 (6 arithmetic stages + compress + write).
func StageCost(q Query) int {
	switch q.Agg() {
	case StaticPerFlow:
		return 4
	case DynamicPerFlow:
		return 4
	case PerPacket:
		return 8
	default:
		return StageBudget
	}
}

// PipelineLayout describes how a query combination maps onto stages.
type PipelineLayout struct {
	Stages  int
	Columns map[string][]string // query name -> per-stage operation labels
}

// Layout computes the parallel layout for a set of queries (Fig 6): each
// query occupies its own column of stages, the deepest column sets the
// total, and the plan's query-subset choice is computed concurrently with
// the deep column — so combining the three use cases still fits in
// StageBudget. It errors if any single query exceeds the budget.
func Layout(queries []Query) (PipelineLayout, error) {
	l := PipelineLayout{Columns: map[string][]string{}}
	for _, q := range queries {
		cost := StageCost(q)
		if cost > StageBudget {
			return PipelineLayout{}, fmt.Errorf("core: query %q needs %d stages (> %d)",
				q.Name(), cost, StageBudget)
		}
		if cost > l.Stages {
			l.Stages = cost
		}
		l.Columns[q.Name()] = stageOps(q)
	}
	if len(queries) > 1 {
		// The query-subset selection runs in a spare column alongside the
		// deepest query; it costs one stage but never extends the total
		// because every combination already includes a >= 2-stage query.
		l.Columns["query-select"] = []string{"choose a query subset"}
	}
	return l, nil
}

func stageOps(q Query) []string {
	switch q.Agg() {
	case StaticPerFlow:
		return []string{"choose layer", "compute g", "hash switch ID", "write digest"}
	case DynamicPerFlow:
		return []string{"compute latency", "value compression", "compute g", "write digest"}
	case PerPacket:
		return []string{
			"HPCC arithmetics", "HPCC arithmetics", "HPCC arithmetics",
			"HPCC arithmetics", "HPCC arithmetics", "HPCC arithmetics",
			"value compression", "write digest",
		}
	default:
		return nil
	}
}
