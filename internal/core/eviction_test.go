package core

import (
	"testing"

	"repro/internal/hash"
)

func TestFlowEvictionLRU(t *testing.T) {
	uni := testUniverse(5, 50)
	cfg, _ := DefaultPathConfig(8, 1, 5)
	q, err := NewPathQuery("p", cfg, 1, 91, uni)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Compile([]Query{q}, 8, 92)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecording(e, 0, hash.NewRNG(93))
	if err != nil {
		t.Fatal(err)
	}
	rec.MaxFlows = 2
	rng := hash.NewRNG(94)
	record := func(flow FlowKey) {
		pkt := rng.Uint64()
		var digest uint64
		for hop := 1; hop <= 5; hop++ {
			h := hop
			digest = e.EncodeHop(pkt, hop, digest, func(Query) uint64 { return uni[h-1] })
		}
		if err := rec.Record(flow, 5, pkt, digest); err != nil {
			t.Fatal(err)
		}
	}
	record(FlowKey(1))
	record(FlowKey(2))
	record(FlowKey(1)) // refresh flow 1 so flow 2 is now the oldest
	record(FlowKey(3)) // must evict flow 2
	if rec.TrackedFlows() != 2 {
		t.Fatalf("tracking %d flows, want 2", rec.TrackedFlows())
	}
	if rec.PathDecoder(q, FlowKey(2)) != nil {
		t.Fatal("flow 2 should have been evicted")
	}
	if rec.PathDecoder(q, FlowKey(1)) == nil || rec.PathDecoder(q, FlowKey(3)) == nil {
		t.Fatal("flows 1 and 3 must survive")
	}
}

func TestEvictUnknownFlowHarmless(t *testing.T) {
	uni := testUniverse(5, 50)
	cfg, _ := DefaultPathConfig(8, 1, 5)
	q, _ := NewPathQuery("p", cfg, 1, 95, uni)
	e, _ := Compile([]Query{q}, 8, 96)
	rec, _ := NewRecording(e, 0, hash.NewRNG(97))
	rec.Evict(FlowKey(42)) // no state; must not panic
	if rec.TrackedFlows() != 0 {
		t.Fatal("phantom flow appeared")
	}
}

func TestUnlimitedFlowsByDefault(t *testing.T) {
	uni := testUniverse(3, 30)
	cfg, _ := DefaultPathConfig(8, 1, 3)
	q, _ := NewPathQuery("p", cfg, 1, 98, uni)
	e, _ := Compile([]Query{q}, 8, 99)
	rec, _ := NewRecording(e, 0, hash.NewRNG(100))
	rng := hash.NewRNG(101)
	for f := 1; f <= 100; f++ {
		pkt := rng.Uint64()
		var digest uint64
		for hop := 1; hop <= 3; hop++ {
			h := hop
			digest = e.EncodeHop(pkt, hop, digest, func(Query) uint64 { return uni[h-1] })
		}
		if err := rec.Record(FlowKey(f), 3, pkt, digest); err != nil {
			t.Fatal(err)
		}
	}
	if rec.TrackedFlows() != 100 {
		t.Fatalf("MaxFlows=0 must keep everything; tracking %d", rec.TrackedFlows())
	}
}
