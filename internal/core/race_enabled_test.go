//go:build race

package core

// raceEnabled mirrors the -race flag for tests whose assertions the race
// runtime itself invalidates (sync.Pool drops a fraction of Puts under
// race to surface reuse bugs, so pool-backed paths re-allocate).
const raceEnabled = true
