package core

import (
	"testing"
)

func TestStageCostPerAggregation(t *testing.T) {
	uni := testUniverse(5, 50)
	path := mustPath(t, "p", 8, 1, 1, uni)
	lat := mustLat(t, "l", 8, 1)
	util := mustUtil(t, "u", 8, 1)
	if StageCost(path) != 4 {
		t.Fatalf("path stages = %d, want 4 (§5)", StageCost(path))
	}
	if StageCost(lat) != 4 {
		t.Fatalf("latency stages = %d, want 4 (§5)", StageCost(lat))
	}
	if StageCost(util) != 8 {
		t.Fatalf("HPCC stages = %d, want 8 (§5: 6 arithmetic + compress + write)",
			StageCost(util))
	}
}

func TestLayoutColumnsMatchStageCost(t *testing.T) {
	uni := testUniverse(5, 50)
	path := mustPath(t, "p", 8, 1, 1, uni)
	util := mustUtil(t, "u", 8, 1)
	l, err := Layout([]Query{path, util})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(l.Columns["p"]); got != StageCost(path) {
		t.Fatalf("path column has %d ops, want %d", got, StageCost(path))
	}
	if got := len(l.Columns["u"]); got != StageCost(util) {
		t.Fatalf("util column has %d ops, want %d", got, StageCost(util))
	}
}

func TestLayoutSingleQueryNoSelector(t *testing.T) {
	uni := testUniverse(5, 50)
	path := mustPath(t, "p", 8, 1, 1, uni)
	l, err := Layout([]Query{path})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Columns["query-select"]; ok {
		t.Fatal("a single query needs no subset selection stage")
	}
}

func TestFreqAndCountStageCosts(t *testing.T) {
	// The extension queries map onto the same stage model: dynamic 4,
	// per-packet 8.
	fq, err := NewFreqQuery("f", 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := NewCountQuery("c", 6, 0.3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if StageCost(fq) != 4 || StageCost(cq) != 8 {
		t.Fatalf("extension stage costs %d/%d, want 4/8", StageCost(fq), StageCost(cq))
	}
	if _, err := Layout([]Query{fq, cq}); err != nil {
		t.Fatal(err)
	}
}
