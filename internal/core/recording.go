package core

import (
	"fmt"
	"sort"

	"repro/internal/coding"
	"repro/internal/hash"
	"repro/internal/sketch"
)

// Recording is the sink-side Recording Module (§3.4): it intercepts the
// digests the PINT Sink extracts, attributes each slice to its query, and
// maintains the per-flow state queries need — coding decoders for path
// queries, per-(flow,hop) samples or sketches for latency queries, value
// streams for per-packet queries. All of this state lives off-switch.
type Recording struct {
	engine *Engine
	// SketchItems > 0 stores latency samples in KLL sketches with that
	// accuracy parameter (PINTS in Fig 9); 0 keeps raw sample lists.
	SketchItems int
	// WindowBuckets/WindowSpan > 0 switch latency storage to
	// sliding-window sketches so quantiles reflect only the most recent
	// measurements (§4.1's sliding-window option). Requires SketchItems>0.
	WindowBuckets int
	WindowSpan    uint64
	// FreqCounters bounds the Space Saving summary per (flow, hop) for
	// frequent-value queries (Theorem 2's 1/ε counters). Default 16.
	FreqCounters int
	// MaxFlows > 0 bounds the number of flows with live state (§3.3's
	// per-flow space budget at the fleet level): recording a new flow
	// beyond the limit evicts the least-recently-updated one entirely.
	MaxFlows int

	flowSeq map[FlowKey]uint64
	seq     uint64
	// base seeds the recording-side sketches: each (query, flow, hop)
	// store derives its RNG from base deterministically, so a flow's
	// state is independent of cross-flow arrival order — the property
	// that makes the sharded pipeline bit-identical to the serial path.
	base  hash.Seed
	paths map[*PathQuery]map[FlowKey]*coding.Decoder
	lats  map[*LatencyQuery]map[FlowKey][]*latStore
	utils map[*UtilQuery]map[FlowKey][]float64
	freqs map[*FreqQuery]map[FlowKey][]*sketch.SpaceSaving
	cnts  map[*CountQuery]map[FlowKey][]float64
}

type latStore struct {
	raw []uint64
	kll *sketch.KLL
	win *sketch.SlidingKLL
}

// NewRecording creates a Recording Module for an engine. sketchItems > 0
// selects sketched storage (see Recording.SketchItems). The RNG provides
// only the sketch seed base; see NewRecordingSeeded for the explicit form.
func NewRecording(engine *Engine, sketchItems int, rng *hash.RNG) (*Recording, error) {
	if rng == nil {
		return nil, fmt.Errorf("core: recording requires an RNG")
	}
	return NewRecordingSeeded(engine, sketchItems, hash.Seed(rng.Uint64()))
}

// NewRecordingSeeded creates a Recording Module whose sketch randomness
// derives entirely from base. Two recordings with the same engine and base
// produce bit-identical per-flow answers for the same per-flow digest
// streams regardless of how flows interleave — the contract the sharded
// pipeline's workers rely on.
func NewRecordingSeeded(engine *Engine, sketchItems int, base hash.Seed) (*Recording, error) {
	if engine == nil {
		return nil, fmt.Errorf("core: nil engine")
	}
	return &Recording{
		engine:       engine,
		SketchItems:  sketchItems,
		FreqCounters: 16,
		flowSeq:      map[FlowKey]uint64{},
		base:         base,
		paths:        map[*PathQuery]map[FlowKey]*coding.Decoder{},
		lats:         map[*LatencyQuery]map[FlowKey][]*latStore{},
		utils:        map[*UtilQuery]map[FlowKey][]float64{},
		freqs:        map[*FreqQuery]map[FlowKey][]*sketch.SpaceSaving{},
		cnts:         map[*CountQuery]map[FlowKey][]float64{},
	}, nil
}

// sketchRNG derives the RNG for one (query, flow, hop) store.
func (r *Recording) sketchRNG(qname string, flow FlowKey, hop int) *hash.RNG {
	return hash.NewRNG(r.base.Hash3(hash.Seed(0).HashString(qname), uint64(flow), uint64(hop)))
}

// Record processes one sink-extracted digest for a flow whose path length
// is k (derived from the received TTL).
func (r *Recording) Record(flow FlowKey, k int, pktID uint64, digest uint64) error {
	pkt := PacketDigest{Flow: flow, PktID: pktID, PathLen: k, Digest: digest}
	return r.record(&pkt)
}

// RecordBatch ingests a batch of sink-extracted digests — the shape shard
// workers and the batch experiment harness drive. Packets that came
// through EncodeHopBatch carry their query-set selection already cached.
func (r *Recording) RecordBatch(batch []PacketDigest) error {
	for i := range batch {
		if err := r.record(&batch[i]); err != nil {
			return err
		}
	}
	return nil
}

// record runs one packet through the compiled program of its query set:
// direct kind dispatch on precomputed ops, no Extracted materialization,
// no type switches on interfaces.
func (r *Recording) record(pkt *PacketDigest) error {
	r.touch(pkt.Flow)
	si := r.engine.setIndexOf(pkt)
	if si < 0 {
		return nil
	}
	ops := r.engine.progs[si].ops
	for i := range ops {
		op := &ops[i]
		bits := pkt.Digest >> op.shift & op.mask
		var err error
		switch op.kind {
		case opPath:
			err = r.recordPath(op.path, pkt, bits)
		case opLatency:
			err = r.recordLatency(op.lat, pkt, bits)
		case opUtil:
			byFlow := r.utils[op.util]
			if byFlow == nil {
				byFlow = map[FlowKey][]float64{}
				r.utils[op.util] = byFlow
			}
			byFlow[pkt.Flow] = append(byFlow[pkt.Flow], op.util.Decode(bits))
		case opFreq:
			err = r.recordFreq(op.freq, pkt, bits)
		case opCount:
			byFlow := r.cnts[op.cnt]
			if byFlow == nil {
				byFlow = map[FlowKey][]float64{}
				r.cnts[op.cnt] = byFlow
			}
			byFlow[pkt.Flow] = append(byFlow[pkt.Flow], op.cnt.Decode(bits))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (r *Recording) recordPath(q *PathQuery, pkt *PacketDigest, bits uint64) error {
	byFlow := r.paths[q]
	if byFlow == nil {
		byFlow = map[FlowKey]*coding.Decoder{}
		r.paths[q] = byFlow
	}
	dec := byFlow[pkt.Flow]
	if dec == nil {
		var err error
		dec, err = q.NewDecoder(pkt.PathLen)
		if err != nil {
			return err
		}
		byFlow[pkt.Flow] = dec
	}
	q.ObserveInto(dec, pkt.PktID, bits)
	return nil
}

func (r *Recording) recordLatency(q *LatencyQuery, pkt *PacketDigest, bits uint64) error {
	byFlow := r.lats[q]
	if byFlow == nil {
		byFlow = map[FlowKey][]*latStore{}
		r.lats[q] = byFlow
	}
	hops := byFlow[pkt.Flow]
	if hops == nil {
		hops = make([]*latStore, pkt.PathLen)
		for i := range hops {
			st := &latStore{}
			switch {
			case r.WindowBuckets > 1 && r.SketchItems > 0:
				win, err := sketch.NewSlidingKLL(r.WindowBuckets,
					r.WindowSpan, r.SketchItems, r.sketchRNG(q.Name(), pkt.Flow, i+1))
				if err != nil {
					return err
				}
				st.win = win
			case r.SketchItems > 0:
				kll, err := sketch.NewKLL(r.SketchItems, r.sketchRNG(q.Name(), pkt.Flow, i+1))
				if err != nil {
					return err
				}
				st.kll = kll
			}
			hops[i] = st
		}
		byFlow[pkt.Flow] = hops
	}
	w := q.Winner(pkt.PktID, pkt.PathLen)
	st := hops[w-1]
	switch {
	case st.win != nil:
		return st.win.Add(float64(bits))
	case st.kll != nil:
		st.kll.Add(float64(bits))
	default:
		st.raw = append(st.raw, bits)
	}
	return nil
}

func (r *Recording) recordFreq(q *FreqQuery, pkt *PacketDigest, bits uint64) error {
	byFlow := r.freqs[q]
	if byFlow == nil {
		byFlow = map[FlowKey][]*sketch.SpaceSaving{}
		r.freqs[q] = byFlow
	}
	hops := byFlow[pkt.Flow]
	if hops == nil {
		hops = make([]*sketch.SpaceSaving, pkt.PathLen)
		for i := range hops {
			ss, err := sketch.NewSpaceSaving(r.FreqCounters)
			if err != nil {
				return err
			}
			hops[i] = ss
		}
		byFlow[pkt.Flow] = hops
	}
	hops[q.Winner(pkt.PktID, pkt.PathLen)-1].Add(bits)
	return nil
}

// touch refreshes a flow's recency and enforces MaxFlows by evicting the
// least-recently-updated flow's state across every query.
func (r *Recording) touch(flow FlowKey) {
	r.seq++
	r.flowSeq[flow] = r.seq
	if r.MaxFlows <= 0 || len(r.flowSeq) <= r.MaxFlows {
		return
	}
	var victim FlowKey
	oldest := ^uint64(0)
	for f, s := range r.flowSeq {
		if s < oldest {
			oldest, victim = s, f
		}
	}
	r.Evict(victim)
}

// Evict drops all recorded state for one flow.
func (r *Recording) Evict(flow FlowKey) {
	delete(r.flowSeq, flow)
	for _, byFlow := range r.paths {
		delete(byFlow, flow)
	}
	for _, byFlow := range r.lats {
		delete(byFlow, flow)
	}
	for _, byFlow := range r.utils {
		delete(byFlow, flow)
	}
	for _, byFlow := range r.freqs {
		delete(byFlow, flow)
	}
	for _, byFlow := range r.cnts {
		delete(byFlow, flow)
	}
}

// TrackedFlows returns the number of flows with live state.
func (r *Recording) TrackedFlows() int { return len(r.flowSeq) }

// Flows returns every flow with live state in sorted key order, so
// iterating a Recording's flows (reports, snapshot endpoints) is
// deterministic.
func (r *Recording) Flows() []FlowKey {
	out := make([]FlowKey, 0, len(r.flowSeq))
	for f := range r.flowSeq {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasFlow reports whether a flow currently has live state — e.g. inside
// an eviction callback, where the flow is still queryable.
func (r *Recording) HasFlow(flow FlowKey) bool {
	_, ok := r.flowSeq[flow]
	return ok
}

// Clone deep-copies the Recording — decoders, sketches, sample lists, and
// recency state — sharing only the immutable engine and configuration.
// The clone answers every query bit-identically to the original at the
// moment of the copy, and both sides can keep recording (or be queried)
// independently afterwards. This is what makes the pipeline's snapshot
// queries race-free: a shard worker clones its Recording between batches
// and hands the copy to concurrent readers.
func (r *Recording) Clone() *Recording {
	c := &Recording{
		engine:        r.engine,
		SketchItems:   r.SketchItems,
		WindowBuckets: r.WindowBuckets,
		WindowSpan:    r.WindowSpan,
		FreqCounters:  r.FreqCounters,
		MaxFlows:      r.MaxFlows,
		seq:           r.seq,
		base:          r.base,
		flowSeq:       make(map[FlowKey]uint64, len(r.flowSeq)),
		paths:         make(map[*PathQuery]map[FlowKey]*coding.Decoder, len(r.paths)),
		lats:          make(map[*LatencyQuery]map[FlowKey][]*latStore, len(r.lats)),
		utils:         make(map[*UtilQuery]map[FlowKey][]float64, len(r.utils)),
		freqs:         make(map[*FreqQuery]map[FlowKey][]*sketch.SpaceSaving, len(r.freqs)),
		cnts:          make(map[*CountQuery]map[FlowKey][]float64, len(r.cnts)),
	}
	for f, s := range r.flowSeq {
		c.flowSeq[f] = s
	}
	for q, byFlow := range r.paths {
		m := make(map[FlowKey]*coding.Decoder, len(byFlow))
		for f, dec := range byFlow {
			m[f] = dec.Clone()
		}
		c.paths[q] = m
	}
	for q, byFlow := range r.lats {
		m := make(map[FlowKey][]*latStore, len(byFlow))
		for f, hops := range byFlow {
			cp := make([]*latStore, len(hops))
			for i, st := range hops {
				if st == nil {
					continue
				}
				cst := &latStore{raw: append([]uint64(nil), st.raw...)}
				if st.kll != nil {
					cst.kll = st.kll.Clone()
				}
				if st.win != nil {
					cst.win = st.win.Clone()
				}
				cp[i] = cst
			}
			m[f] = cp
		}
		c.lats[q] = m
	}
	for q, byFlow := range r.utils {
		m := make(map[FlowKey][]float64, len(byFlow))
		for f, vs := range byFlow {
			m[f] = append([]float64(nil), vs...)
		}
		c.utils[q] = m
	}
	for q, byFlow := range r.freqs {
		m := make(map[FlowKey][]*sketch.SpaceSaving, len(byFlow))
		for f, hops := range byFlow {
			cp := make([]*sketch.SpaceSaving, len(hops))
			for i, ss := range hops {
				if ss != nil {
					cp[i] = ss.Clone()
				}
			}
			m[f] = cp
		}
		c.freqs[q] = m
	}
	for q, byFlow := range r.cnts {
		m := make(map[FlowKey][]float64, len(byFlow))
		for f, vs := range byFlow {
			m[f] = append([]float64(nil), vs...)
		}
		c.cnts[q] = m
	}
	return c
}

// Merge adopts every flow of o into r. The two recordings must serve the
// same engine and must track disjoint flow sets — the shape produced by
// the sharded sink, where a flow's state lives wholly inside one shard —
// so merging is adoption, not sketch arithmetic. o's per-flow state moves
// into r by reference; o must not be used afterwards. Flow recency is
// preserved within o and appended after r's, deterministically.
func (r *Recording) Merge(o *Recording) error {
	if o == nil {
		return nil
	}
	if o.engine != r.engine {
		return fmt.Errorf("core: merging recordings of different engines")
	}
	for f := range o.flowSeq {
		if _, dup := r.flowSeq[f]; dup {
			return fmt.Errorf("core: merge would duplicate flow %v", f)
		}
	}
	// Re-sequence o's flows after r's, in o's own recency order, so the
	// merged recency ranking is independent of map iteration order.
	flows := make([]FlowKey, 0, len(o.flowSeq))
	for f := range o.flowSeq {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return o.flowSeq[flows[i]] < o.flowSeq[flows[j]] })
	for _, f := range flows {
		r.seq++
		r.flowSeq[f] = r.seq
	}
	for q, byFlow := range o.paths {
		dst := r.paths[q]
		if dst == nil {
			dst = map[FlowKey]*coding.Decoder{}
			r.paths[q] = dst
		}
		for f, dec := range byFlow {
			dst[f] = dec
		}
	}
	for q, byFlow := range o.lats {
		dst := r.lats[q]
		if dst == nil {
			dst = map[FlowKey][]*latStore{}
			r.lats[q] = dst
		}
		for f, hops := range byFlow {
			dst[f] = hops
		}
	}
	for q, byFlow := range o.utils {
		dst := r.utils[q]
		if dst == nil {
			dst = map[FlowKey][]float64{}
			r.utils[q] = dst
		}
		for f, vs := range byFlow {
			dst[f] = vs
		}
	}
	for q, byFlow := range o.freqs {
		dst := r.freqs[q]
		if dst == nil {
			dst = map[FlowKey][]*sketch.SpaceSaving{}
			r.freqs[q] = dst
		}
		for f, hops := range byFlow {
			dst[f] = hops
		}
	}
	for q, byFlow := range o.cnts {
		dst := r.cnts[q]
		if dst == nil {
			dst = map[FlowKey][]float64{}
			r.cnts[q] = dst
		}
		for f, vs := range byFlow {
			dst[f] = vs
		}
	}
	return nil
}

// Path answers a path query: the decoded switch IDs and whether decoding
// is complete (Inference Module, static aggregation).
func (r *Recording) Path(q *PathQuery, flow FlowKey) ([]uint64, bool) {
	dec := r.paths[q][flow]
	if dec == nil {
		return nil, false
	}
	vals, ok := dec.Path()
	for _, o := range ok {
		if !o {
			return vals, false
		}
	}
	return vals, true
}

// PathDecoder exposes a flow's decoder for progress inspection.
func (r *Recording) PathDecoder(q *PathQuery, flow FlowKey) *coding.Decoder {
	return r.paths[q][flow]
}

// PathInconsistencies returns the number of packets whose digests
// contradicted the flow's decoded blocks — §7's route-change signal: a
// fully-decoded flow produces inconsistencies with probability 1−2^-q per
// post-change packet, so a short burst is near-certain evidence the path
// moved (e.g. flowlet re-routing or a failover).
func (r *Recording) PathInconsistencies(q *PathQuery, flow FlowKey) int {
	dec := r.paths[q][flow]
	if dec == nil {
		return 0
	}
	return dec.Inconsistent()
}

// RouteChanged applies §7's detection rule: after a flow's path has fully
// decoded, report a change once at least `threshold` inconsistent packets
// arrive (threshold > 1 suppresses the 2^-q-probability hash-collision
// false positives).
func (r *Recording) RouteChanged(q *PathQuery, flow FlowKey, threshold int) bool {
	dec := r.paths[q][flow]
	if dec == nil || !dec.Done() {
		return false
	}
	return dec.Inconsistent() >= threshold
}

// LatencyQuantile answers a dynamic query: the phi-quantile of hop
// `hop` (1-based) for the flow, decoded back to value units. The result
// carries both sampling error (Theorem 1) and compression error (§4.3).
func (r *Recording) LatencyQuantile(q *LatencyQuery, flow FlowKey, hop int, phi float64) (float64, error) {
	hops := r.lats[q][flow]
	if hops == nil || hop < 1 || hop > len(hops) {
		return 0, fmt.Errorf("core: no samples for flow %v hop %d", flow, hop)
	}
	st := hops[hop-1]
	var code float64
	if st.win != nil {
		if st.win.WindowCount() == 0 {
			return 0, fmt.Errorf("core: empty window for hop %d", hop)
		}
		q2, err := st.win.Quantile(phi)
		if err != nil {
			return 0, err
		}
		code = q2
	} else if st.kll != nil {
		if st.kll.Count() == 0 {
			return 0, fmt.Errorf("core: empty sketch for hop %d", hop)
		}
		code = st.kll.Quantile(phi)
	} else {
		if len(st.raw) == 0 {
			return 0, fmt.Errorf("core: no samples for hop %d", hop)
		}
		fs := make([]float64, len(st.raw))
		for i, c := range st.raw {
			fs[i] = float64(c)
		}
		code = sketch.ExactQuantile(fs, phi)
	}
	return q.Decode(uint64(code + 0.5)), nil
}

// LatencySamples returns how many samples hop `hop` has accumulated.
func (r *Recording) LatencySamples(q *LatencyQuery, flow FlowKey, hop int) int {
	hops := r.lats[q][flow]
	if hops == nil || hop < 1 || hop > len(hops) {
		return 0
	}
	st := hops[hop-1]
	switch {
	case st.win != nil:
		return int(st.win.WindowCount())
	case st.kll != nil:
		return int(st.kll.Count())
	default:
		return len(st.raw)
	}
}

// LatencyStorageBytes reports the per-flow storage a latency query uses,
// assuming each stored item is the query's digest width (Fig 9's
// sketch-size axis).
func (r *Recording) LatencyStorageBytes(q *LatencyQuery, flow FlowKey) int {
	hops := r.lats[q][flow]
	total := 0
	for _, st := range hops {
		if st == nil {
			continue
		}
		if st.kll != nil {
			total += st.kll.SizeBytes(q.Bits())
		} else {
			total += (len(st.raw)*q.Bits() + 7) / 8
		}
	}
	return total
}

// UtilSeries answers a per-packet query: the decoded bottleneck values in
// arrival order.
func (r *Recording) UtilSeries(q *UtilQuery, flow FlowKey) []float64 {
	return r.utils[q][flow]
}

// FrequentValues answers a frequent-values query (Theorem 2): the values
// appearing in at least a theta-fraction of hop `hop`'s sampled stream.
func (r *Recording) FrequentValues(q *FreqQuery, flow FlowKey, hop int, theta float64) []sketch.HeavyHitter {
	hops := r.freqs[q][flow]
	if hops == nil || hop < 1 || hop > len(hops) {
		return nil
	}
	return hops[hop-1].HeavyHitters(theta)
}

// FreqSamples returns the number of samples a frequent-values query has
// for a hop.
func (r *Recording) FreqSamples(q *FreqQuery, flow FlowKey, hop int) int {
	hops := r.freqs[q][flow]
	if hops == nil || hop < 1 || hop > len(hops) {
		return 0
	}
	return int(hops[hop-1].Count())
}

// CountSeries answers a randomized-counting query: the decoded per-packet
// count estimates in arrival order. The mean of the series is an unbiased
// estimate of the expected per-packet count.
func (r *Recording) CountSeries(q *CountQuery, flow FlowKey) []float64 {
	return r.cnts[q][flow]
}
