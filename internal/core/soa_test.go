package core

import (
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/coding"
	"repro/internal/hash"
)

// parityPlans builds one engine per plan shape the op-major path has a
// distinct branch for: the combined benchmark plan, reservoir+Morris,
// raw/fragmented paths, three path queries (layer cache overflow),
// FastVectors, and a multi-set plan with unassigned probability mass.
func parityPlans(t testing.TB) map[string]*Engine {
	t.Helper()
	master := hash.Seed(0x50A)
	build := func(qs ...Query) *Engine {
		eng, err := Compile(qs, 16, master)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		return eng
	}
	pathCfg, err := DefaultPathConfig(4, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	path, err := NewPathQuery("path", pathCfg, 1, master, []uint64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	lat, err := NewLatencyQuery("lat", 8, 0.04, 15.0/16, master)
	if err != nil {
		t.Fatal(err)
	}
	util, err := NewUtilQuery("hpcc", 8, 0.025, 1.0/16, 1000, master)
	if err != nil {
		t.Fatal(err)
	}
	freq, err := NewFreqQuery("port", 6, 0.5, master)
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := NewCountQuery("hot", 5, 0.25, 0.25, master)
	if err != nil {
		t.Fatal(err)
	}
	rawPath, err := NewPathQuery("raw",
		coding.Config{Bits: 4, Mode: coding.ModeRaw, ValueBits: 16, Layering: coding.MultiLayer(5, true)},
		1, master, nil)
	if err != nil {
		t.Fatal(err)
	}
	fastPath, err := NewPathQuery("fast",
		coding.Config{Bits: 4, Mode: coding.ModeHashed, Layering: coding.MultiLayer(20, true), FastVectors: true},
		1, master, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	var triple []Query
	for i := 0; i < 3; i++ {
		p, err := NewPathQuery(fmt.Sprintf("p%d", i),
			coding.Config{Bits: 3, Mode: coding.ModeHashed, Layering: coding.Hybrid(6, 0.75)},
			1, master, []uint64{1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		triple = append(triple, p)
	}
	return map[string]*Engine{
		"combined":    build(path, lat, util),
		"freq+count":  build(freq, cnt),
		"raw-path":    build(rawPath),
		"fast-path":   build(fastPath),
		"triple-path": build(triple[0], triple[1], triple[2]),
		"multi-set":   build(lat, freq, cnt), // total mass < 1: unassigned packets
	}
}

func parityBatch(seed uint64, n int) ([]PacketDigest, []HopValues) {
	pkts := make([]PacketDigest, n)
	vals := make([]HopValues, n)
	s := hash.Seed(seed)
	for i := range pkts {
		u := uint64(i)
		pkts[i] = PacketDigest{
			Flow:    FlowKey(s.Hash2(u, 1) % 64),
			PktID:   s.Hash2(u, 2),
			PathLen: 1 + int(s.Hash2(u, 3)%8),
		}
		vals[i] = HopValues{
			SwitchID:   1 + s.Hash2(u, 4)%5,
			LatencyNs:  1 + s.Hash2(u, 5)%2000,
			Util:       s.Hash2(u, 6) % 1500,
			FreqValue:  s.Hash2(u, 7) % 64,
			CountFired: s.Hash2(u, 8) & 1,
		}
	}
	return pkts, vals
}

// TestEncodeHopBatchSoAParity drives the packet-major and op-major paths
// over identical batches hop by hop and requires bit-identical packets —
// digests *and* the set/layer caches — after every hop, for every plan
// shape and for hops beyond the reservoir threshold table.
func TestEncodeHopBatchSoAParity(t *testing.T) {
	for name, eng := range parityPlans(t) {
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{1, 15, 16, 17, 64, 301} {
				scalar, vals := parityBatch(uint64(n)*977+7, n)
				soa := append([]PacketDigest(nil), scalar...)
				for _, hop := range []int{1, 2, 3, 4, 5, 64, 65, 66} {
					eng.encodeHopBatchScalar(hop, scalar, vals)
					eng.EncodeHopBatchSoA(hop, soa, vals)
					for i := range scalar {
						if scalar[i] != soa[i] {
							t.Fatalf("n=%d hop=%d pkt %d diverged:\nscalar %+v\nsoa    %+v",
								n, hop, i, scalar[i], soa[i])
						}
					}
				}
			}
		})
	}
}

// TestEncodeHopBatchRouting pins that the public API gives the same
// result whichever path the batch size routes it to.
func TestEncodeHopBatchRouting(t *testing.T) {
	eng := parityPlans(t)["combined"]
	for _, n := range []int{soaMinBatch - 1, soaMinBatch, 200} {
		api, vals := parityBatch(uint64(n), n)
		ref := append([]PacketDigest(nil), api...)
		for hop := 1; hop <= 5; hop++ {
			eng.EncodeHopBatch(hop, api, vals)
			eng.encodeHopBatchScalar(hop, ref, vals)
		}
		for i := range api {
			if api[i] != ref[i] {
				t.Fatalf("n=%d pkt %d: EncodeHopBatch %+v, scalar %+v", n, i, api[i], ref[i])
			}
		}
	}
}

// TestEncodeHopBatchShortValsPanics pins the documented bounds contract:
// len(vals) < len(pkts) must panic up front on both routes, before any
// packet is mutated.
func TestEncodeHopBatchShortValsPanics(t *testing.T) {
	eng := parityPlans(t)["combined"]
	for _, n := range []int{2, soaMinBatch + 4} {
		pkts, vals := parityBatch(3, n)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("n=%d: short vals did not panic", n)
				}
			}()
			eng.EncodeHopBatch(1, pkts, vals[:n-1])
		}()
		for i := range pkts {
			if pkts[i].Digest != 0 || pkts[i].set != 0 {
				t.Fatalf("n=%d: packet %d mutated before bounds panic: %+v", n, i, pkts[i])
			}
		}
	}
}

// FuzzEncodeBatchParity is the differential-fuzz safety net of the
// op-major rewrite: arbitrary bytes pick a plan, a batch, and a hop
// sequence, and the scalar and SoA paths must agree bit for bit.
func FuzzEncodeBatchParity(f *testing.F) {
	f.Add(uint8(0), uint64(1), []byte("pint"))
	f.Add(uint8(1), uint64(0xF16), make([]byte, 25*24))
	f.Add(uint8(3), ^uint64(0), []byte("\x01\x02\x03\x04\x05\x06\x07\x08kernels-soa-parity-seed!"))
	f.Add(uint8(5), uint64(42), []byte("{\xff\x00AA\x10zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz}"))

	var plans []*Engine
	names := []string{"combined", "freq+count", "raw-path", "fast-path", "triple-path", "multi-set"}
	built := parityPlans(f)
	for _, name := range names {
		plans = append(plans, built[name])
	}

	f.Fuzz(func(t *testing.T, planSel uint8, seed uint64, data []byte) {
		eng := plans[int(planSel)%len(plans)]
		n := len(data)/8 + 1
		if n > 300 {
			n = 300
		}
		scalar, vals := parityBatch(seed, n)
		// Overlay fuzz bytes so the batch isn't purely hash-shaped:
		// adversarial pktIDs/values directly from the corpus.
		for i := 0; i+8 <= len(data) && i/8 < n; i += 8 {
			v := binary.LittleEndian.Uint64(data[i:])
			switch (i / 8) % 3 {
			case 0:
				scalar[i/8].PktID = v
			case 1:
				vals[i/8].Util = v
			case 2:
				vals[i/8].LatencyNs = v
			}
		}
		soa := append([]PacketDigest(nil), scalar...)
		hops := []int{1, 2, 3, 1 + int(seed%70)}
		for _, hop := range hops {
			eng.encodeHopBatchScalar(hop, scalar, vals)
			eng.EncodeHopBatchSoA(hop, soa, vals)
			for i := range scalar {
				if scalar[i] != soa[i] {
					t.Fatalf("hop=%d pkt %d diverged:\nscalar %+v\nsoa    %+v", hop, i, scalar[i], soa[i])
				}
			}
		}
	})
}
