package core

import (
	"fmt"

	"repro/internal/coding"
	"repro/internal/hash"
)

// PathQuery is the static per-flow aggregation (§4.2, Example #2): recover
// the per-(flow, switch) constant values — canonically the switch IDs,
// i.e. the flow's path — by spreading them across packets with the
// distributed coding schemes.
type PathQuery struct {
	name string
	cfg  coding.Config
	freq float64
	g    hash.Global
	enc  *coding.Encoder
	uni  []uint64
}

// NewPathQuery builds a path-tracing query. cfg.Bits is the budget of one
// hash instance; the query's total footprint is cfg.TotalBits(). universe
// is the switch-ID universe for hashed decoding (ignored in raw mode).
func NewPathQuery(name string, cfg coding.Config, freq float64, master hash.Seed, universe []uint64) (*PathQuery, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := hash.NewGlobal(master.Derive(hash.Seed(0).HashString(name)))
	enc, err := coding.NewEncoder(cfg, g)
	if err != nil {
		return nil, err
	}
	return &PathQuery{name: name, cfg: cfg, freq: freq, g: g, enc: enc, uni: universe}, nil
}

// Name implements Query.
func (q *PathQuery) Name() string { return q.name }

// Agg implements Query.
func (q *PathQuery) Agg() AggregationType { return StaticPerFlow }

// Bits implements Query: the full slice including all hash instances.
func (q *PathQuery) Bits() int { return q.cfg.TotalBits() }

// Frequency implements Query.
func (q *PathQuery) Frequency() float64 { return q.freq }

// EncodeHop implements Query by delegating to the coding encoder, packing
// the per-instance digest words into the engine's flat bit slice.
func (q *PathQuery) EncodeHop(pktID uint64, hop int, bits uint64, value uint64) uint64 {
	d := q.wordsOf(bits)
	d = q.enc.EncodeHop(pktID, hop, d, value)
	return q.bitsOf(d)
}

// encodeHopBits is the compiled-pipeline form of EncodeHop: identical
// output, but non-acting hops return before touching any words and the
// per-instance words live on the stack, so nothing escapes to the heap.
func (q *PathQuery) encodeHopBits(pktID uint64, hop int, bits, value uint64) uint64 {
	layer, act := q.enc.ActsOn(pktID, hop)
	if !act {
		return bits
	}
	return applyPathWords(q.enc, pktID, layer, bits, q.instances(),
		uint(q.cfg.Bits), digestMask(q.cfg.Bits), value)
}

// applyPathWords unpacks a path query's flat digest slice into its
// per-instance words, folds in the acting hop's payload, and repacks —
// the single implementation behind both the per-packet and the compiled
// batch encode paths (which passes precomputed n/width/mask).
func applyPathWords(enc *coding.Encoder, pktID uint64, layer int, bits uint64, n int, width uint, mask, value uint64) uint64 {
	var arr [8]uint64
	var words []uint64
	if n > len(arr) {
		words = make([]uint64, n)
	} else {
		words = arr[:n]
	}
	for i := 0; i < n; i++ {
		words[i] = bits >> (uint(i) * width) & mask
	}
	enc.ApplyWords(pktID, layer, words, value)
	var out uint64
	for i, w := range words {
		out |= (w & mask) << (uint(i) * width)
	}
	return out
}

func (q *PathQuery) instances() int {
	if q.cfg.Mode == coding.ModeHashed && q.cfg.Instances > 1 {
		return q.cfg.Instances
	}
	return 1
}

func (q *PathQuery) wordsOf(bits uint64) coding.Digest {
	n := q.instances()
	d := coding.Digest{Words: make([]uint64, n)}
	mask := digestMask(q.cfg.Bits)
	for i := 0; i < n; i++ {
		d.Words[i] = bits >> uint(i*q.cfg.Bits) & mask
	}
	return d
}

func (q *PathQuery) bitsOf(d coding.Digest) uint64 {
	var bits uint64
	for i, w := range d.Words {
		bits |= (w & digestMask(q.cfg.Bits)) << uint(i*q.cfg.Bits)
	}
	return bits
}

// NewDecoder creates the Inference-side decoder for one flow whose path
// length is k (known from the packet TTL at the sink, §4.1).
func (q *PathQuery) NewDecoder(k int) (*coding.Decoder, error) {
	return coding.NewDecoder(q.cfg, q.g, k, q.uni)
}

// ObserveInto feeds one extracted digest slice into a flow's decoder.
func (q *PathQuery) ObserveInto(dec *coding.Decoder, pktID uint64, bits uint64) bool {
	return dec.Observe(pktID, q.wordsOf(bits))
}

// DefaultPathConfig mirrors the evaluation's standard setup: hashed mode
// against the topology's switch IDs, multi-layer (revised) layering for an
// assumed path length d, and the given per-instance budget and instance
// count (Fig 10 uses b=1, b=4, and 2×(b=8)).
func DefaultPathConfig(bits, instances, d int) (coding.Config, error) {
	if bits < 1 {
		return coding.Config{}, fmt.Errorf("core: path budget %d invalid", bits)
	}
	return coding.Config{
		Bits:      bits,
		Mode:      coding.ModeHashed,
		Instances: instances,
		Layering:  coding.MultiLayer(d, true),
	}, nil
}
