package core

import (
	"testing"

	"repro/internal/hash"
)

func TestLoopDetectorValidation(t *testing.T) {
	if _, err := NewLoopDetector(0, 1, 1); err == nil {
		t.Fatal("bits=0 must fail")
	}
	if _, err := NewLoopDetector(33, 1, 1); err == nil {
		t.Fatal("bits=33 must fail")
	}
}

func TestLoopDetectorOverheadBits(t *testing.T) {
	// A.4's examples: T=1,b=15 -> 16 bits; T=3,b=14 -> 16 bits.
	d, _ := NewLoopDetector(15, 1, 1)
	if d.OverheadBits() != 16 {
		t.Fatalf("T=1,b=15 overhead %d, want 16", d.OverheadBits())
	}
	d, _ = NewLoopDetector(14, 3, 1)
	if d.OverheadBits() != 16 {
		t.Fatalf("T=3,b=14 overhead %d, want 16", d.OverheadBits())
	}
	d, _ = NewLoopDetector(16, 0, 1)
	if d.OverheadBits() != 16 {
		t.Fatalf("T=0,b=16 overhead %d, want 16", d.OverheadBits())
	}
}

func loopIDs(n int, base uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}

func TestLoopDetectorCatchesLoops(t *testing.T) {
	d, err := NewLoopDetector(16, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	prefix := loopIDs(5, 0x1000)
	loop := loopIDs(4, 0x2000)
	rng := hash.NewRNG(1)
	detected := 0
	const pkts = 2000
	for i := 0; i < pkts; i++ {
		if c := d.RunWithLoop(rng.Uint64(), prefix, loop, 50); c > 0 {
			detected++
		}
	}
	// A looping packet revisits the digest writer every cycle; with T=0
	// detection needs the digest to have been written inside the loop,
	// which happens for a constant fraction of packets.
	if float64(detected)/pkts < 0.5 {
		t.Fatalf("only %d/%d looping packets detected", detected, pkts)
	}
}

func TestLoopDetectorHigherTSlower(t *testing.T) {
	// T=3 requires more cycles before reporting than T=0.
	rng := hash.NewRNG(2)
	prefix := loopIDs(3, 0x1000)
	loop := loopIDs(5, 0x2000)
	mean := func(T uint64) float64 {
		d, _ := NewLoopDetector(14, T, 7)
		sum, n := 0.0, 0
		r := hash.NewRNG(rng.Uint64())
		for i := 0; i < 2000; i++ {
			if c := d.RunWithLoop(r.Uint64(), prefix, loop, 100); c > 0 {
				sum += float64(c)
				n++
			}
		}
		if n == 0 {
			t.Fatal("nothing detected")
		}
		return sum / float64(n)
	}
	if m0, m3 := mean(0), mean(3); m3 <= m0 {
		t.Fatalf("T=3 detected in %v cycles, T=0 in %v; want slower", m3, m0)
	}
}

func TestLoopDetectorFalsePositives(t *testing.T) {
	// A.4: with b=16, T=0, a 32-hop loop-free path false-fires with
	// probability ≈ (k-1)·2^-16 ≈ 0.05%. With T=1 it should essentially
	// vanish at test scale.
	d0, _ := NewLoopDetector(16, 0, 9)
	fp0 := d0.FalsePositiveRate(32, 200000, 3)
	if fp0 > 0.002 {
		t.Fatalf("T=0 false positive rate %v too high", fp0)
	}
	if fp0 == 0 {
		t.Log("T=0 FP rate measured 0; acceptable but unusual at 200k packets")
	}
	d1, _ := NewLoopDetector(15, 1, 9)
	fp1 := d1.FalsePositiveRate(32, 200000, 4)
	if fp1 > fp0 && fp1 > 1e-4 {
		t.Fatalf("T=1 rate %v not below T=0 rate %v", fp1, fp0)
	}
}

func TestLoopFreeNoStateCorruption(t *testing.T) {
	// On loop-free paths the detector must still allow normal reservoir
	// digest writes (c stays 0 for almost all packets).
	d, _ := NewLoopDetector(16, 1, 11)
	path := loopIDs(20, 0x3000)
	rng := hash.NewRNG(5)
	for i := 0; i < 10000; i++ {
		if d.RunLoopFree(rng.Uint64(), path) {
			t.Fatal("false LOOP with T=1 at 10k packets (p < 1e-7 expected)")
		}
	}
}
