package core

import (
	"sync"

	"repro/internal/approx"
	"repro/internal/coding"
	"repro/internal/hash"
)

// This file is the op-major (struct-of-arrays) form of the batch encode
// hot path. The packet-major encodeHop loop re-dispatches the op switch
// and re-derives every loop-invariant (thresholds, shifts, hash prefixes)
// once per packet; here the batch is partitioned by query set once, each
// compiled op runs as one pass over flat columns (pktIDs, digests,
// per-op values), and the per-packet work collapses to a hash-column
// evaluation (internal/kernels) plus a branch-free select. Decisions are
// bit-identical to the scalar path — pinned by TestEncodeHopBatchSoAParity
// and FuzzEncodeBatchParity.

// soaMinBatch is the routing cutoff: below it the partition/gather/
// scatter overhead outweighs the columnar win and EncodeHopBatch stays on
// the packet-major loop.
const soaMinBatch = 16

// morrisTableMaxBits bounds the per-op Morris coin-threshold table
// (2^bits-1 entries); wider counters fall back to the scalar coin.
const morrisTableMaxBits = 12

// soaScratch is one batch's worth of column storage, pooled so
// steady-state encoding allocates nothing. Engines are driven
// concurrently by exporter goroutines, so scratch lives in a pool rather
// than on the Engine.
type soaScratch struct {
	idx [][]int32 // per-set original packet indices
	pkt []uint64  // set's PktID column
	dig []uint64  // set's digest column
	h   []uint64  // hash column
	tmp []uint64  // offset / gathered-pktID column
	val []uint64  // gathered value column
	pay []uint64  // payload column
	lay []uint8   // per-packet coding-layer column
	act []int32   // compacted actor positions within the set's columns
}

var soaPool = sync.Pool{New: func() any { return new(soaScratch) }}

func growCol(c []uint64, n int) []uint64 {
	if cap(c) < n {
		return make([]uint64, n, n+n/2+8)
	}
	return c[:n]
}

// EncodeHopBatchSoA is the op-major implementation of EncodeHopBatch:
// identical observable behavior (digests, set/layer caches, the
// len(vals) >= len(pkts) bounds contract), different loop structure.
// EncodeHopBatch routes large batches here; it is exported so harnesses
// can pin the two paths against each other at any batch size.
func (e *Engine) EncodeHopBatchSoA(hop int, pkts []PacketDigest, vals []HopValues) {
	if len(pkts) == 0 {
		return
	}
	_ = vals[len(pkts)-1] // bounds hint
	s := soaPool.Get().(*soaScratch)
	// Pass 1: partition by query set, filling the per-packet set cache
	// exactly as the scalar loop would.
	for len(s.idx) < len(e.progs) {
		s.idx = append(s.idx, nil)
	}
	s.idx = s.idx[:len(e.progs)]
	for si := range s.idx {
		s.idx[si] = s.idx[si][:0]
	}
	for i := range pkts {
		if si := e.setIndexOf(&pkts[i]); si >= 0 {
			s.idx[si] = append(s.idx[si], int32(i))
		}
	}
	// Pass 2: per set, gather columns, run each op over the whole set,
	// scatter digests back.
	for si := range e.progs {
		if len(s.idx[si]) != 0 {
			e.progs[si].encodeHopSoA(hop, s, s.idx[si], pkts, vals)
		}
	}
	soaPool.Put(s)
}

func (p *encodeProgram) encodeHopSoA(hop int, s *soaScratch, idx []int32, pkts []PacketDigest, vals []HopValues) {
	n := len(idx)
	s.pkt = growCol(s.pkt, n)
	s.dig = growCol(s.dig, n)
	pktCol, digCol := s.pkt, s.dig
	for j, i := range idx {
		pktCol[j] = pkts[i].PktID
		digCol[j] = pkts[i].Digest
	}
	for oi := range p.ops {
		op := &p.ops[oi]
		switch op.kind {
		case opPath:
			op.soaPath(hop, s, idx, pkts, vals, pktCol, digCol)
		case opLatency:
			op.soaLatency(hop, s, idx, vals, pktCol, digCol)
		case opUtil:
			op.soaUtil(hop, s, idx, vals, pktCol, digCol)
		case opFreq:
			op.soaFreq(hop, s, idx, vals, pktCol, digCol)
		case opCount:
			op.soaCount(hop, s, idx, vals, pktCol, digCol)
		}
	}
	for j, i := range idx {
		pkts[i].Digest = digCol[j]
	}
}

// soaFreq: reservoir overwrite with the raw value. Hop 1 writes
// unconditionally (no hash at all); later hops compare one hash column
// against the hoisted reservoir threshold with a mask&-cond select.
func (op *encodeOp) soaFreq(hop int, s *soaScratch, idx []int32, vals []HopValues, pktCol, digCol []uint64) {
	shift, mask := op.shift, op.mask
	keep := ^(mask << shift)
	if hop <= 1 {
		for j, i := range idx {
			digCol[j] = digCol[j]&keep | (vals[i].FreqValue&mask)<<shift
		}
		return
	}
	s.h = growCol(s.h, len(idx))
	h := s.h
	op.resG.ActHashColumn(h, pktCol, uint64(hop))
	thr := hash.ReservoirThreshold(hop)
	for j, i := range idx {
		var c uint64
		if h[j] < thr {
			c = 1
		}
		m := -c // all-ones when this hop wins the reservoir
		old := digCol[j] >> shift & mask
		nw := vals[i].FreqValue&mask&m | old&^m
		digCol[j] = digCol[j]&keep | nw<<shift
	}
}

// soaLatency: reservoir overwrite with the compressed value. Winners are
// a 1/hop fraction, so the compressor runs only for them, behind a
// one-entry value→code memo (hop latencies repeat heavily in a batch).
func (op *encodeOp) soaLatency(hop int, s *soaScratch, idx []int32, vals []HopValues, pktCol, digCol []uint64) {
	shift, mask := op.shift, op.mask
	keep := ^(mask << shift)
	comp := op.lat.comp
	var lastV, lastCode uint64
	have := false
	if hop <= 1 {
		for j, i := range idx {
			if v := vals[i].LatencyNs; !have || v != lastV {
				lastV, lastCode, have = v, comp.Encode(float64(v)), true
			}
			digCol[j] = digCol[j]&keep | (lastCode&mask)<<shift
		}
		return
	}
	s.h = growCol(s.h, len(idx))
	h := s.h
	op.resG.ActHashColumn(h, pktCol, uint64(hop))
	thr := hash.ReservoirThreshold(hop)
	for j, i := range idx {
		if h[j] >= thr {
			continue
		}
		if v := vals[i].LatencyNs; !have || v != lastV {
			lastV, lastCode, have = v, comp.Encode(float64(v)), true
		}
		digCol[j] = digCol[j]&keep | (lastCode&mask)<<shift
	}
}

// soaUtil: max-aggregation of randomized-rounded codes. The log/floor
// decomposition is memoized per distinct value (RandomizedParts); the
// per-packet coin is one hash column keyed the way EncodeHop namespaces
// it (pktID + hop<<48 under the dedicated 1<<20 coin index).
func (op *encodeOp) soaUtil(hop int, s *soaScratch, idx []int32, vals []HopValues, pktCol, digCol []uint64) {
	n := len(idx)
	shift, mask := op.shift, op.mask
	keep := ^(mask << shift)
	comp := op.util.comp
	maxCode := comp.MaxCode()
	s.h = growCol(s.h, n)
	s.tmp = growCol(s.tmp, n)
	h, tmp := s.h, s.tmp
	off := uint64(hop) << 48
	for j, p := range pktCol {
		tmp[j] = p + off
	}
	op.util.g.ActHashColumn(h, tmp, 1<<20)
	var lastRaw, lo, coinThr uint64
	var always, have bool
	for j, i := range idx {
		if raw := vals[i].Util; !have || raw != lastRaw {
			lo, coinThr, always = comp.RandomizedParts(float64(raw))
			lastRaw, have = raw, true
		}
		code := lo
		if always || h[j] < coinThr {
			code++
		}
		if code > maxCode {
			code = maxCode
		}
		old := digCol[j] >> shift & mask
		if old > code {
			code = old
		}
		digCol[j] = digCol[j]&keep | code<<shift
	}
}

// soaCount: probabilistic Morris increments for the hops whose indicator
// fired. Fired packets are compacted first (the indicator is typically
// sparse); their coins come from one fixed-salt hash column compared
// against the compile-time per-code threshold table.
func (op *encodeOp) soaCount(hop int, s *soaScratch, idx []int32, vals []HopValues, pktCol, digCol []uint64) {
	shift, mask := op.shift, op.mask
	keep := ^(mask << shift)
	maxCode := uint64(1)<<uint(op.cnt.bits) - 1
	s.act = s.act[:0]
	for j, i := range idx {
		if vals[i].CountFired != 0 {
			s.act = append(s.act, int32(j))
		}
	}
	act := s.act
	if len(act) == 0 {
		return
	}
	if op.morrisThr == nil {
		// Counter too wide for the threshold table: scalar coin per
		// fired packet, identical to the packet-major path.
		for _, j := range act {
			old := digCol[j] >> shift & mask
			nw := approx.MorrisNextCode(op.morrisBase, op.cnt.bits, old, op.cnt.g, pktCol[j], uint64(hop))
			digCol[j] = digCol[j]&keep | (nw&mask)<<shift
		}
		return
	}
	na := len(act)
	s.tmp = growCol(s.tmp, na)
	s.h = growCol(s.h, na)
	tmp, h := s.tmp, s.h
	for t, j := range act {
		tmp[t] = pktCol[j]
	}
	op.cnt.g.ValueDigestFixedColumn(h, tmp, uint64(hop))
	for t, j := range act {
		old := digCol[j] >> shift & mask
		if old >= maxCode {
			continue // saturated: never increments
		}
		// thr == ^0 is the "always increments" sentinel (code 0).
		if thr := op.morrisThr[old]; thr == ^uint64(0) || h[t] < thr {
			digCol[j] = digCol[j]&keep | (old+1)<<shift
		}
	}
}

// soaPath: the distributed-coding op. Layer selections ride the
// PacketDigest cache; act decisions are one hash column against per-layer
// thresholds (except FastVectors, whose word-AND decisions fall back to
// the scalar predicate); acting packets are compacted and, in hashed
// mode, each hash instance's payload is one value-hash column folded into
// the digest column with overwrite (Baseline) or xor (XOR layers)
// selects. Raw/fragmented mode keeps the scalar word fold per actor.
func (op *encodeOp) soaPath(hop int, s *soaScratch, idx []int32, pkts []PacketDigest, vals []HopValues, pktCol, digCol []uint64) {
	enc := op.pathEnc
	cfg := enc.Config()
	n := len(idx)
	if cap(s.lay) < n {
		s.lay = make([]uint8, n, n+n/2+8)
	}
	s.lay = s.lay[:n]
	lay := s.lay
	if pi := op.pathIdx; pi >= 0 {
		for j, i := range idx {
			if c := pkts[i].layers[pi]; c != 0 {
				lay[j] = c - 1
			} else {
				l := uint8(enc.LayerOf(pktCol[j]))
				pkts[i].layers[pi] = l + 1
				lay[j] = l
			}
		}
	} else {
		for j := range pktCol {
			lay[j] = uint8(enc.LayerOf(pktCol[j]))
		}
	}

	s.act = s.act[:0]
	if cfg.FastVectors {
		for j := range pktCol {
			if enc.ActsInLayer(pktCol[j], hop, int(lay[j])) {
				s.act = append(s.act, int32(j))
			}
		}
	} else {
		var thrArr [8]uint64
		var alwArr [8]bool
		thr, alw := thrArr[:], alwArr[:]
		nl := cfg.Layering.Layers()
		if nl+1 > len(thrArr) {
			thr = make([]uint64, nl+1)
			alw = make([]bool, nl+1)
		}
		for l := 0; l <= nl; l++ {
			thr[l], alw[l] = enc.ActConst(hop, l)
		}
		s.h = growCol(s.h, n)
		h := s.h
		enc.ActGlobal().ActHashColumn(h, pktCol, uint64(hop))
		for j := range pktCol {
			l := lay[j]
			if alw[l] || h[j] < thr[l] {
				s.act = append(s.act, int32(j))
			}
		}
	}
	act := s.act
	if len(act) == 0 {
		return
	}

	shift, mask := op.shift, op.mask
	keep := ^(mask << shift)
	if cfg.Mode != coding.ModeHashed {
		for _, j := range act {
			slice := digCol[j] >> shift & mask
			slice = applyPathWords(enc, pktCol[j], int(lay[j]), slice,
				op.pathN, op.pathBits, op.pathWordMask, vals[idx[j]].SwitchID)
			digCol[j] = digCol[j]&keep | (slice&mask)<<shift
		}
		return
	}

	na := len(act)
	s.val = growCol(s.val, na)
	s.tmp = growCol(s.tmp, na)
	s.pay = growCol(s.pay, na)
	valCol, tmp, pay := s.val, s.tmp, s.pay
	for t, j := range act {
		valCol[t] = vals[idx[j]].SwitchID
		tmp[t] = pktCol[j]
	}
	width, wmask := op.pathBits, op.pathWordMask
	for inst := 0; inst < op.pathN; inst++ {
		enc.InstanceGlobal(inst).ValueDigestColumn(pay, valCol, tmp, cfg.Bits)
		ishift := shift + uint(inst)*width
		ikeep := ^(wmask << ishift)
		for t, j := range act {
			w := pay[t]
			var c uint64
			if lay[j] != 0 {
				c = 1
			}
			// XOR layers fold into the existing word; Baseline overwrites.
			w ^= digCol[j] >> ishift & wmask & -c
			digCol[j] = digCol[j]&ikeep | (w&wmask)<<ishift
		}
	}
}
