// Package core implements the PINT framework itself (§3): queries with
// per-packet bit budgets, the Query Engine that compiles a set of
// concurrent queries plus a global budget into an execution plan (a
// probability distribution over query sets), the switch-side Encoding
// Modules for all three aggregation types, and the sink-side Recording and
// Inference Modules.
//
// The three aggregation modes (§3.1) map to three Query implementations:
//
//   - PathQuery (static per-flow): distributed coding over switch IDs,
//   - LatencyQuery (dynamic per-flow): reservoir-sampled compressed
//     per-hop values, recorded into quantile sketches,
//   - UtilQuery (per-packet): max-aggregated compressed bottleneck values
//     (the congestion-control feed, §4.3 Example #3).
//
// The per-packet encode path is compiled (program.go) and, for batches,
// vectorized into op-major column passes (soa.go) over the SIMD-friendly
// hash kernels of internal/kernels. README.md's "Hot path anatomy"
// section is the map of that machinery.
package core

import (
	"fmt"

	"repro/internal/hash"
)

// AggregationType enumerates §3.1's modes.
type AggregationType int

const (
	// PerPacket summarizes values across the packet's path (max/min/sum).
	PerPacket AggregationType = iota
	// StaticPerFlow recovers per-(flow,switch) constants, e.g. the path.
	StaticPerFlow
	// DynamicPerFlow summarizes the stream of values per (flow, switch).
	DynamicPerFlow
)

func (a AggregationType) String() string {
	switch a {
	case PerPacket:
		return "per-packet"
	case StaticPerFlow:
		return "static per-flow"
	case DynamicPerFlow:
		return "dynamic per-flow"
	default:
		return fmt.Sprintf("AggregationType(%d)", int(a))
	}
}

// Query is one telemetry query compiled into the execution plan. A Query's
// EncodeHop is the switch-side Encoding Module: it transforms only the
// query's slice of the packet digest and must be stateless per the switch
// constraints of §3.5 (all state lives in the global hash family and the
// digest itself).
type Query interface {
	// Name identifies the query in plans and reports.
	Name() string
	// Agg returns the aggregation type.
	Agg() AggregationType
	// Bits is the query's per-packet bit budget.
	Bits() int
	// Frequency is the fraction of packets that must serve this query.
	Frequency() float64
	// EncodeHop processes hop `hop` (1-based): given the query's current
	// digest slice and the value this switch observes for this query,
	// return the new slice.
	EncodeHop(pktID uint64, hop int, bits uint64, value uint64) uint64
}

// UseCase is one row of Table 2: an application enabled by PINT, its
// aggregation mode and the measurement primitives it consumes.
type UseCase struct {
	Name       string
	Agg        AggregationType
	Primitives []string
}

// Catalog reproduces Table 2's use-case inventory.
func Catalog() []UseCase {
	return []UseCase{
		{"Congestion Control", PerPacket, []string{"timestamp", "port utilization", "queue occupancy"}},
		{"Congestion Analysis", PerPacket, []string{"queue occupancy"}},
		{"Network Tomography", PerPacket, []string{"switchID", "queue occupancy"}},
		{"Power Management", PerPacket, []string{"switchID", "port utilization"}},
		{"Real-Time Anomaly Detection", PerPacket, []string{"timestamp", "port utilization", "queue occupancy"}},
		{"Path Tracing", StaticPerFlow, []string{"switchID"}},
		{"Routing Misconfiguration", StaticPerFlow, []string{"switchID"}},
		{"Path Conformance", StaticPerFlow, []string{"switchID"}},
		{"Utilization-aware Routing", DynamicPerFlow, []string{"switchID", "port utilization"}},
		{"Load Imbalance", DynamicPerFlow, []string{"switchID", "port utilization"}},
		{"Network Troubleshooting", DynamicPerFlow, []string{"switchID", "timestamp"}},
	}
}

// Technique flags which of §4's mechanisms a use case exercises (Table 3).
type Technique struct {
	GlobalHashes       bool
	DistributedCoding  bool
	ValueApproximation bool
}

// TechniqueMatrix reproduces Table 3.
func TechniqueMatrix() map[string]Technique {
	return map[string]Technique{
		"Congestion Control": {GlobalHashes: false, DistributedCoding: false, ValueApproximation: true},
		"Path Tracing":       {GlobalHashes: true, DistributedCoding: true, ValueApproximation: false},
		"Latency Quantiles":  {GlobalHashes: true, DistributedCoding: false, ValueApproximation: true},
	}
}

// FlowKey identifies a flow at the Recording Module (the query's
// flow-definition — 5-tuple, source IP, etc. — hashed to 64 bits).
type FlowKey uint64

// FlowKeyOf derives a key from a flow definition string.
func FlowKeyOf(s hash.Seed, def string) FlowKey {
	return FlowKey(s.HashString(def))
}
