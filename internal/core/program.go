package core

import (
	"fmt"

	"repro/internal/approx"
	"repro/internal/coding"
	"repro/internal/hash"
)

// This file is the compiled form of the execution plan: each QuerySet is
// lowered at Compile time into a flat sequence of encodeOps carrying
// precomputed shifts, masks, and direct query-kind dispatch, so the
// per-packet hot path runs with no interface calls, no closures, and no
// allocations. The same ops drive switch-side encoding (EncodeHopValues /
// EncodeHopBatch), sink-side extraction (ExtractInto), and the Recording
// Module's batched ingest.

// HopValues carries everything a switch observes at one hop, one field per
// query kind; the compiled encoder reads only the fields its plan needs.
// It replaces the per-packet `func(Query) uint64` closure of EncodeHop.
type HopValues struct {
	// SwitchID feeds PathQuery (the hop's block value).
	SwitchID uint64
	// LatencyNs feeds LatencyQuery (the hop's observed latency).
	LatencyNs uint64
	// Util feeds UtilQuery, pre-scaled to integer register units via
	// UtilQuery.EncodeValue.
	Util uint64
	// FreqValue feeds FreqQuery (e.g. the egress port).
	FreqValue uint64
	// CountFired feeds CountQuery: nonzero means this hop's indicator
	// fired.
	CountFired uint64
}

// PacketDigest is one packet's telemetry state moving through the batch
// pipeline: the flow it belongs to, its path length as known at the sink
// (from the received TTL), its ID, and the digest it carries.
type PacketDigest struct {
	Flow    FlowKey
	PktID   uint64
	PathLen int
	Digest  uint64
	// set caches the packet's query-set selection (0: not yet computed,
	// -1: unassigned mass, i: set i-1). The selection is a pure function
	// of PktID, so EncodeHopBatch computes it at the first hop and every
	// later hop — and the Recording Module — reuses it. The cache is
	// engine-specific: reuse a PacketDigest only with the engine that
	// filled it (the zero value always recomputes).
	set int16
	// layers caches the coding-layer selection of up to two path queries
	// (value = layer+1; 0 = not yet computed) — the same pure-function
	// memoization as set, maintained by EncodeHopBatch.
	layers [2]uint8
}

// setIndexOf resolves (and caches) a packet's query-set index.
func (e *Engine) setIndexOf(p *PacketDigest) int {
	if p.set == 0 {
		if si := e.SetIndex(p.PktID); si >= 0 {
			p.set = int16(si + 1)
		} else {
			p.set = -1
		}
	}
	if p.set < 0 {
		return -1
	}
	return int(p.set) - 1
}

// opKind is the direct-dispatch tag of one compiled encode/record op.
type opKind uint8

const (
	opPath opKind = iota
	opLatency
	opUtil
	opFreq
	opCount
)

// encodeOp is one query's slot in a compiled set: where its slice lives in
// the digest and a devirtualized handle to the query itself. Exactly one
// of the typed pointers is non-nil, per kind.
type encodeOp struct {
	kind  opKind
	shift uint
	mask  uint64
	q     Query // the original query, for Extracted
	path  *PathQuery
	lat   *LatencyQuery
	util  *UtilQuery
	freq  *FreqQuery
	cnt   *CountQuery
	// morrisBase is CountQuery's growth base, hoisted out of the loop.
	morrisBase float64
	// morrisThr[c] is the coin threshold for one Morris increment from
	// code c (^0 = always fires), precomputed at compile time for the
	// op-major pass; nil when the counter is too wide to table.
	morrisThr []uint64
	// resG points at the latency/freq query's hash family so reservoir
	// decisions skip the per-hop 48-byte Global copy.
	resG *hash.Global
	// Path-query constants, hoisted so the per-hop loop unpacks and
	// repacks instance words without touching the query's config.
	pathEnc      *coding.Encoder
	pathN        int
	pathBits     uint
	pathWordMask uint64
	// pathIdx is this path op's slot in PacketDigest's layer cache
	// (-1: beyond the cache, recompute per hop).
	pathIdx int8
}

// encodeProgram is the compiled form of one QuerySet.
type encodeProgram struct {
	ops []encodeOp
}

// compileProgram lowers one QuerySet. The query universe is closed (the
// five core kinds), matching the Recording Module's dispatch; an unknown
// Query implementation is a compile-time error rather than a silent
// fallback to the slow path.
func compileProgram(set QuerySet) (encodeProgram, error) {
	prog := encodeProgram{ops: make([]encodeOp, len(set.Queries))}
	nPath := 0
	for i, q := range set.Queries {
		op := encodeOp{
			shift: uint(set.Offsets[i]),
			mask:  digestMask(q.Bits()),
			q:     q,
		}
		switch qq := q.(type) {
		case *PathQuery:
			op.kind, op.path = opPath, qq
			op.pathEnc = qq.enc
			op.pathN = qq.instances()
			op.pathBits = uint(qq.cfg.Bits)
			op.pathWordMask = digestMask(qq.cfg.Bits)
			if op.pathIdx = int8(nPath); nPath >= 2 {
				op.pathIdx = -1
			}
			nPath++
		case *LatencyQuery:
			op.kind, op.lat = opLatency, qq
			op.resG = &qq.g
		case *UtilQuery:
			op.kind, op.util = opUtil, qq
		case *FreqQuery:
			op.kind, op.freq = opFreq, qq
			op.resG = &qq.g
		case *CountQuery:
			op.kind, op.cnt = opCount, qq
			op.morrisBase = approx.MorrisBase(qq.eps)
			if qq.bits <= morrisTableMaxBits {
				max := uint64(1)<<uint(qq.bits) - 1
				op.morrisThr = make([]uint64, max)
				for c := uint64(0); c < max; c++ {
					thr, always := approx.MorrisIncrementThreshold(op.morrisBase, c)
					if always {
						thr = ^uint64(0)
					}
					op.morrisThr[c] = thr
				}
			}
		default:
			return encodeProgram{}, fmt.Errorf("core: query %q has unsupported type %T", q.Name(), q)
		}
		prog.ops[i] = op
	}
	return prog, nil
}

// SetIndex returns the index of the query set packet pktID serves, or -1
// when its selection point falls in unassigned probability mass.
func (e *Engine) SetIndex(pktID uint64) int {
	u := e.g.QueryPoint(pktID)
	for i, c := range e.cum {
		if u < c {
			return i
		}
	}
	return -1
}

// EncodeHopValues is the compiled switch-side entry point: it applies hop
// `hop`'s Encoding Modules to the digest using the precomputed program —
// the zero-allocation equivalent of EncodeHop with a closure.
func (e *Engine) EncodeHopValues(pktID uint64, hop int, digest uint64, v *HopValues) uint64 {
	si := e.SetIndex(pktID)
	if si < 0 {
		return digest
	}
	return e.progs[si].encodeHop(pktID, hop, digest, v, nil)
}

// EncodeHopBatch applies hop `hop`'s Encoding Modules to every packet of a
// batch in place: pkts[i].Digest is rewritten using vals[i]. len(vals)
// must be at least len(pkts). This is the shape a shard worker or a
// line-rate simulation drives: batches of soaMinBatch packets or more run
// the op-major column passes of EncodeHopBatchSoA (see soa.go), smaller
// ones the packet-major loop — both bit-identical and 0 B/op at steady
// state.
func (e *Engine) EncodeHopBatch(hop int, pkts []PacketDigest, vals []HopValues) {
	if len(pkts) == 0 {
		return
	}
	_ = vals[len(pkts)-1] // bounds hint
	if len(pkts) < soaMinBatch {
		e.encodeHopBatchScalar(hop, pkts, vals)
		return
	}
	e.EncodeHopBatchSoA(hop, pkts, vals)
}

// encodeHopBatchScalar is the packet-major reference loop: the routing
// target for small batches and the oracle the SoA parity tests and
// FuzzEncodeBatchParity compare against.
func (e *Engine) encodeHopBatchScalar(hop int, pkts []PacketDigest, vals []HopValues) {
	for i := range pkts {
		pkt := &pkts[i]
		si := e.setIndexOf(pkt)
		if si < 0 {
			continue
		}
		pkt.Digest = e.progs[si].encodeHop(pkt.PktID, hop, pkt.Digest, &vals[i], pkt)
	}
}

func (p *encodeProgram) encodeHop(pktID uint64, hop int, digest uint64, v *HopValues, pkt *PacketDigest) uint64 {
	for i := range p.ops {
		op := &p.ops[i]
		slice := digest >> op.shift & op.mask
		switch op.kind {
		case opPath:
			var layer int
			var act bool
			if pkt != nil && op.pathIdx >= 0 {
				if c := pkt.layers[op.pathIdx]; c != 0 {
					layer = int(c) - 1
				} else {
					layer = op.pathEnc.LayerOf(pktID)
					pkt.layers[op.pathIdx] = uint8(layer + 1)
				}
				act = op.pathEnc.ActsInLayer(pktID, hop, layer)
			} else {
				layer, act = op.pathEnc.ActsOn(pktID, hop)
			}
			if !act {
				break
			}
			slice = applyPathWords(op.pathEnc, pktID, layer, slice,
				op.pathN, op.pathBits, op.pathWordMask, v.SwitchID)
		case opLatency:
			if op.resG.ReservoirWritesP(pktID, hop) {
				slice = op.lat.comp.Encode(float64(v.LatencyNs))
			}
		case opUtil:
			if code := op.util.comp.EncodeRandomized(float64(v.Util), op.util.g,
				pktID+uint64(hop)<<48); code > slice {
				slice = code
			}
		case opFreq:
			if op.resG.ReservoirWritesP(pktID, hop) {
				slice = v.FreqValue
			}
		case opCount:
			if v.CountFired != 0 {
				slice = approx.MorrisNextCode(op.morrisBase, op.cnt.bits, slice,
					op.cnt.g, pktID, uint64(hop))
			}
		}
		slice &= op.mask
		digest = digest&^(op.mask<<op.shift) | slice<<op.shift
	}
	return digest
}

// ExtractInto is the zero-allocation form of Extract: it appends the
// packet's per-query slices to buf (typically buf[:0] of a reused buffer)
// and returns the extended slice.
func (e *Engine) ExtractInto(pktID uint64, digest uint64, buf []Extracted) []Extracted {
	si := e.SetIndex(pktID)
	if si < 0 {
		return buf
	}
	return e.extractOps(si, digest, buf)
}

// ExtractPacketInto is ExtractInto for a pipeline packet, reusing (and
// filling) its cached query-set selection.
func (e *Engine) ExtractPacketInto(pkt *PacketDigest, buf []Extracted) []Extracted {
	si := e.setIndexOf(pkt)
	if si < 0 {
		return buf
	}
	return e.extractOps(si, pkt.Digest, buf)
}

func (e *Engine) extractOps(si int, digest uint64, buf []Extracted) []Extracted {
	ops := e.progs[si].ops
	for i := range ops {
		buf = append(buf, Extracted{
			Query: ops[i].q,
			Bits:  digest >> ops[i].shift & ops[i].mask,
		})
	}
	return buf
}
