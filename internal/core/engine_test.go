package core

import (
	"math"
	"testing"

	"repro/internal/coding"
	"repro/internal/hash"
)

func mustPath(t *testing.T, name string, bits, inst int, freq float64, uni []uint64) *PathQuery {
	t.Helper()
	cfg, err := DefaultPathConfig(bits, inst, 10)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewPathQuery(name, cfg, freq, 1234, uni)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func mustLat(t *testing.T, name string, bits int, freq float64) *LatencyQuery {
	t.Helper()
	q, err := NewLatencyQuery(name, bits, 0.025, freq, 1234)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func mustUtil(t *testing.T, name string, bits int, freq float64) *UtilQuery {
	t.Helper()
	q, err := NewUtilQuery(name, bits, 0.025, freq, 1000, 1234)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func testUniverse(k, n int) []uint64 {
	u := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		u = append(u, uint64(0x5A000000+i))
	}
	return u
}

func TestCompileCombinedPlan(t *testing.T) {
	// §6.4: path on all packets, latency on 15/16, HPCC on 1/16, all 8-bit
	// queries under a 16-bit global budget -> {path,lat}@15/16,
	// {path,hpcc}@1/16.
	uni := testUniverse(10, 100)
	path := mustPath(t, "path", 8, 1, 1, uni)
	lat := mustLat(t, "lat", 8, 15.0/16)
	util := mustUtil(t, "hpcc", 8, 1.0/16)
	e, err := Compile([]Query{path, lat, util}, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	plan := e.Plan()
	if len(plan.Sets) != 2 {
		t.Fatalf("plan has %d sets, want 2:\n%s", len(plan.Sets), plan)
	}
	var total float64
	for _, s := range plan.Sets {
		total += s.Prob
		if s.TotalBits() > 16 {
			t.Fatalf("set exceeds budget: %d bits", s.TotalBits())
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", total)
	}
	// Every set must include the path query (frequency 1).
	for _, s := range plan.Sets {
		found := false
		for _, q := range s.Queries {
			if q == Query(path) {
				found = true
			}
		}
		if !found {
			t.Fatal("frequency-1 query missing from a set")
		}
	}
}

func TestCompileRejections(t *testing.T) {
	uni := testUniverse(10, 100)
	path := mustPath(t, "p", 8, 1, 1, uni)
	if _, err := Compile(nil, 16, 1); err == nil {
		t.Fatal("no queries must fail")
	}
	if _, err := Compile([]Query{path}, 0, 1); err == nil {
		t.Fatal("zero budget must fail")
	}
	if _, err := Compile([]Query{path}, 4, 1); err == nil {
		t.Fatal("query wider than budget must fail")
	}
	// Over-demand: two frequency-1 8-bit queries in 8 bits.
	q2 := mustLat(t, "l", 8, 1)
	if _, err := Compile([]Query{path, q2}, 8, 1); err == nil {
		t.Fatal("demand above budget must fail")
	}
	// Duplicate names.
	dup := mustLat(t, "p", 8, 0.5)
	if _, err := Compile([]Query{path, dup}, 16, 1); err == nil {
		t.Fatal("duplicate names must fail")
	}
}

func TestCompileUnderfullPlan(t *testing.T) {
	// A single 1/4-frequency query: 3/4 of packets carry nothing.
	lat := mustLat(t, "l", 8, 0.25)
	e, err := Compile([]Query{lat}, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	none := 0
	const n = 100000
	for pkt := uint64(0); pkt < n; pkt++ {
		if e.SetFor(pkt) == nil {
			none++
		}
	}
	if got := float64(none) / n; math.Abs(got-0.75) > 0.01 {
		t.Fatalf("unassigned fraction %v, want 0.75", got)
	}
}

func TestSetForFrequencies(t *testing.T) {
	uni := testUniverse(10, 100)
	path := mustPath(t, "path", 8, 1, 1, uni)
	lat := mustLat(t, "lat", 8, 15.0/16)
	util := mustUtil(t, "hpcc", 8, 1.0/16)
	e, err := Compile([]Query{path, lat, util}, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 200000
	for pkt := uint64(0); pkt < n; pkt++ {
		set := e.SetFor(pkt)
		if set == nil {
			t.Fatal("full plan must assign every packet")
		}
		for _, q := range set.Queries {
			counts[q.Name()]++
		}
	}
	want := map[string]float64{"path": 1, "lat": 15.0 / 16, "hpcc": 1.0 / 16}
	for name, f := range want {
		got := float64(counts[name]) / n
		if math.Abs(got-f) > 0.01 {
			t.Fatalf("query %s served on %v of packets, want %v", name, got, f)
		}
	}
}

func TestEncodeExtractSliceIsolation(t *testing.T) {
	// Two queries sharing a digest must not clobber each other's bits.
	uni := testUniverse(10, 100)
	path := mustPath(t, "path", 8, 1, 1, uni)
	lat := mustLat(t, "lat", 8, 1)
	e, err := Compile([]Query{path, lat}, 16, 9)
	if err != nil {
		t.Fatal(err)
	}
	for pkt := uint64(0); pkt < 3000; pkt++ {
		var digest uint64
		for hop := 1; hop <= 5; hop++ {
			digest = e.EncodeHop(pkt, hop, digest, func(q Query) uint64 {
				switch q.(type) {
				case *PathQuery:
					return uint64(0x5A000000 + hop - 1)
				case *LatencyQuery:
					return uint64(1000 * hop)
				}
				return 0
			})
		}
		if digest>>16 != 0 {
			t.Fatalf("digest %#x spills beyond the 16-bit budget", digest)
		}
		ex := e.Extract(pkt, digest)
		if len(ex) != 2 {
			t.Fatalf("extracted %d slices, want 2", len(ex))
		}
		for _, x := range ex {
			if x.Bits >= 1<<8 {
				t.Fatalf("slice %#x exceeds 8 bits", x.Bits)
			}
		}
	}
}

func TestEndToEndPathDecoding(t *testing.T) {
	// Full engine pipeline: encode over a 10-hop path, record at the sink,
	// infer the path.
	const k = 10
	uni := testUniverse(k, 200)
	truth := uni[:k]
	path := mustPath(t, "path", 8, 1, 1, uni)
	e, err := Compile([]Query{path}, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecording(e, 0, hash.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	flow := FlowKey(777)
	rng := hash.NewRNG(2)
	decoded := false
	for i := 0; i < 20000; i++ {
		pkt := rng.Uint64()
		var digest uint64
		for hop := 1; hop <= k; hop++ {
			digest = e.EncodeHop(pkt, hop, digest, func(Query) uint64 { return truth[hop-1] })
		}
		if err := rec.Record(flow, k, pkt, digest); err != nil {
			t.Fatal(err)
		}
		if got, ok := rec.Path(path, flow); ok {
			for h := range truth {
				if got[h] != truth[h] {
					t.Fatalf("hop %d decoded %#x, want %#x", h+1, got[h], truth[h])
				}
			}
			decoded = true
			break
		}
	}
	if !decoded {
		t.Fatal("path not decoded within 20000 packets")
	}
}

func TestEndToEndLatencyQuantiles(t *testing.T) {
	// Per-hop latencies with distinct medians; the inferred medians must
	// be within compression+sampling error.
	const k = 5
	lat := mustLat(t, "lat", 8, 1)
	e, err := Compile([]Query{lat}, 8, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, sketchItems := range []int{0, 64} {
		rec, err := NewRecording(e, sketchItems, hash.NewRNG(3))
		if err != nil {
			t.Fatal(err)
		}
		flow := FlowKey(88)
		rng := hash.NewRNG(4)
		medians := []float64{1000, 5000, 20000, 800, 60000}
		for i := 0; i < 40000; i++ {
			pkt := rng.Uint64()
			var digest uint64
			for hop := 1; hop <= k; hop++ {
				v := medians[hop-1] * math.Exp(rng.NormFloat64()*0.3)
				digest = e.EncodeHop(pkt, hop, digest, func(Query) uint64 { return uint64(v) })
			}
			if err := rec.Record(flow, k, pkt, digest); err != nil {
				t.Fatal(err)
			}
		}
		for hop := 1; hop <= k; hop++ {
			got, err := rec.LatencyQuantile(lat, flow, hop, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			relErr := math.Abs(got-medians[hop-1]) / medians[hop-1]
			if relErr > 0.15 {
				t.Fatalf("sketch=%d hop %d: median %v, want %v (err %.1f%%)",
					sketchItems, hop, got, medians[hop-1], relErr*100)
			}
			if rec.LatencySamples(lat, flow, hop) < 40000/k/2 {
				t.Fatalf("hop %d undersampled: %d", hop, rec.LatencySamples(lat, flow, hop))
			}
		}
		if sketchItems > 0 {
			// Sketched storage must be far below raw storage.
			if b := rec.LatencyStorageBytes(lat, flow); b > 5000 {
				t.Fatalf("sketched storage %dB not compact", b)
			}
		}
	}
}

func TestEndToEndUtilMaxAggregation(t *testing.T) {
	util := mustUtil(t, "u", 8, 1)
	e, err := Compile([]Query{util}, 8, 17)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecording(e, 0, hash.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	flow := FlowKey(3)
	hopU := []float64{0.2, 0.9, 0.4} // bottleneck is hop 2
	rng := hash.NewRNG(6)
	for i := 0; i < 2000; i++ {
		pkt := rng.Uint64()
		var digest uint64
		for hop := 1; hop <= 3; hop++ {
			digest = e.EncodeHop(pkt, hop, digest, func(q Query) uint64 {
				return q.(*UtilQuery).EncodeValue(hopU[hop-1])
			})
		}
		if err := rec.Record(flow, 3, pkt, digest); err != nil {
			t.Fatal(err)
		}
	}
	series := rec.UtilSeries(util, flow)
	if len(series) != 2000 {
		t.Fatalf("recorded %d values", len(series))
	}
	var mean float64
	for _, u := range series {
		mean += u
	}
	mean /= float64(len(series))
	if math.Abs(mean-0.9) > 0.05 {
		t.Fatalf("mean decoded bottleneck %v, want ~0.9", mean)
	}
}

func TestCatalogAndMatrix(t *testing.T) {
	cat := Catalog()
	if len(cat) != 11 {
		t.Fatalf("catalog has %d use cases, want 11 (Table 2)", len(cat))
	}
	byAgg := map[AggregationType]int{}
	for _, u := range cat {
		byAgg[u.Agg]++
		if len(u.Primitives) == 0 {
			t.Fatalf("use case %q has no primitives", u.Name)
		}
	}
	if byAgg[PerPacket] != 5 || byAgg[StaticPerFlow] != 3 || byAgg[DynamicPerFlow] != 3 {
		t.Fatalf("aggregation split %v, want 5/3/3", byAgg)
	}
	m := TechniqueMatrix()
	if !m["Path Tracing"].DistributedCoding || m["Congestion Control"].DistributedCoding {
		t.Fatal("technique matrix contradicts Table 3")
	}
	if !m["Latency Quantiles"].ValueApproximation || !m["Latency Quantiles"].GlobalHashes {
		t.Fatal("technique matrix contradicts Table 3")
	}
}

func TestPipelineLayout(t *testing.T) {
	uni := testUniverse(10, 100)
	path := mustPath(t, "path", 8, 1, 1, uni)
	lat := mustLat(t, "lat", 8, 1)
	util := mustUtil(t, "hpcc", 8, 1)
	solo, err := Layout([]Query{util})
	if err != nil {
		t.Fatal(err)
	}
	if solo.Stages != 8 {
		t.Fatalf("HPCC alone uses %d stages, want 8", solo.Stages)
	}
	combined, err := Layout([]Query{path, lat, util})
	if err != nil {
		t.Fatal(err)
	}
	// Fig 6's claim: the combination fits without increasing the stage
	// count over HPCC alone.
	if combined.Stages != solo.Stages {
		t.Fatalf("combined %d stages vs solo %d: parallelism claim violated",
			combined.Stages, solo.Stages)
	}
	if _, ok := combined.Columns["query-select"]; !ok {
		t.Fatal("combined layout must include the query-subset column")
	}
	pOnly, err := Layout([]Query{path})
	if err != nil {
		t.Fatal(err)
	}
	if pOnly.Stages != 4 {
		t.Fatalf("path tracing uses %d stages, want 4 (§5)", pOnly.Stages)
	}
}

func TestPathQueryTwoInstances(t *testing.T) {
	// 2×(b=8): the engine must treat it as one 16-bit query.
	uni := testUniverse(10, 100)
	cfg, _ := DefaultPathConfig(8, 2, 10)
	q, err := NewPathQuery("p2", cfg, 1, 99, uni)
	if err != nil {
		t.Fatal(err)
	}
	if q.Bits() != 16 {
		t.Fatalf("2x8 query bits = %d, want 16", q.Bits())
	}
	e, err := Compile([]Query{q}, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := NewRecording(e, 0, hash.NewRNG(7))
	truth := uni[:10]
	rng := hash.NewRNG(8)
	flow := FlowKey(1)
	for i := 0; i < 20000; i++ {
		pkt := rng.Uint64()
		var digest uint64
		for hop := 1; hop <= 10; hop++ {
			digest = e.EncodeHop(pkt, hop, digest, func(Query) uint64 { return truth[hop-1] })
		}
		if err := rec.Record(flow, 10, pkt, digest); err != nil {
			t.Fatal(err)
		}
		if _, ok := rec.Path(q, flow); ok {
			return
		}
	}
	t.Fatal("2x8 path not decoded")
}

// TestPlanHash pins the collector handshake guard: the hash is stable
// across identical compilations and moves when the master seed, budget,
// or query set changes.
func TestPlanHash(t *testing.T) {
	uni := testUniverse(10, 100)
	build := func(bits int, freq float64, seed hash.Seed) *Engine {
		t.Helper()
		path := mustPath(t, "path", 8, 1, 1, uni)
		lat := mustLat(t, "lat", 8, freq)
		e, err := Compile([]Query{path, lat}, bits, seed)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	base := build(16, 15.0/16, 42)
	if got := build(16, 15.0/16, 42).PlanHash(); got != base.PlanHash() {
		t.Fatalf("identical compilations hash %#x vs %#x", got, base.PlanHash())
	}
	for name, e := range map[string]*Engine{
		"seed":   build(16, 15.0/16, 43),
		"budget": build(17, 15.0/16, 42),
		"freq":   build(16, 7.0/8, 42),
	} {
		if e.PlanHash() == base.PlanHash() {
			t.Fatalf("%s change left the plan hash at %#x", name, base.PlanHash())
		}
	}
}

func TestFlowKeyOf(t *testing.T) {
	a := FlowKeyOf(1, "10.0.0.1:1234->10.0.0.2:80")
	b := FlowKeyOf(1, "10.0.0.1:1234->10.0.0.2:80")
	c := FlowKeyOf(1, "10.0.0.1:1234->10.0.0.2:81")
	if a != b || a == c {
		t.Fatal("flow key derivation broken")
	}
}

var _ = coding.ModeHashed // keep import when build tags change
