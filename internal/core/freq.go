package core

import (
	"fmt"

	"repro/internal/approx"
	"repro/internal/hash"
)

// FreqQuery is the second dynamic per-flow aggregation the paper analyzes
// (Theorem 2): report every value that appears in at least a θ-fraction
// of a (flow, switch) pair's stream — e.g. which egress port or next-hop
// a switch used for the flow's packets. Like LatencyQuery it rides the
// distributed reservoir sample, but values are carried verbatim, so the
// value domain must fit the bit budget (ports, ToS classes, small enums).
type FreqQuery struct {
	name string
	bits int
	freq float64
	g    hash.Global
}

// NewFreqQuery builds a frequent-values query with the given digest
// budget; observed values must be < 2^bits.
func NewFreqQuery(name string, bits int, freq float64, master hash.Seed) (*FreqQuery, error) {
	if bits < 1 || bits > 32 {
		return nil, fmt.Errorf("core: freq query bits %d out of [1,32]", bits)
	}
	g := hash.NewGlobal(master.Derive(hash.Seed(0).HashString(name)))
	return &FreqQuery{name: name, bits: bits, freq: freq, g: g}, nil
}

// Name implements Query.
func (q *FreqQuery) Name() string { return q.name }

// Agg implements Query.
func (q *FreqQuery) Agg() AggregationType { return DynamicPerFlow }

// Bits implements Query.
func (q *FreqQuery) Bits() int { return q.bits }

// Frequency implements Query.
func (q *FreqQuery) Frequency() float64 { return q.freq }

// EncodeHop implements Query: reservoir overwrite with the raw value.
func (q *FreqQuery) EncodeHop(pktID uint64, hop int, bits uint64, value uint64) uint64 {
	if q.g.ReservoirWrites(pktID, hop) {
		return value & digestMask(q.bits)
	}
	return bits
}

// Winner recomputes the sampled hop for a sink-captured packet.
func (q *FreqQuery) Winner(pktID uint64, k int) int {
	return q.g.ReservoirWinner(pktID, k)
}

// CountQuery is the randomized-counting per-packet aggregation of §4.3:
// count, across the path, the hops where an indicator fired (e.g.
// "latency above threshold"), in fewer bits than the exact count needs.
// Each firing hop probabilistically increments a Morris counter carried in
// the digest; the expectation of the decoded value equals the true count.
type CountQuery struct {
	name string
	bits int
	freq float64
	eps  float64
	g    hash.Global
}

// NewCountQuery builds a randomized counter query with accuracy parameter
// eps (the counter is within (1+eps) with constant probability) and the
// given digest width — typically far below log2(k)+q exact bits
// (approx.MorrisBits gives the requirement).
func NewCountQuery(name string, bits int, eps, freq float64, master hash.Seed) (*CountQuery, error) {
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("core: count query bits %d out of [1,16]", bits)
	}
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("core: count eps %v out of (0,1)", eps)
	}
	g := hash.NewGlobal(master.Derive(hash.Seed(0).HashString(name)))
	return &CountQuery{name: name, bits: bits, freq: freq, eps: eps, g: g}, nil
}

// Name implements Query.
func (q *CountQuery) Name() string { return q.name }

// Agg implements Query.
func (q *CountQuery) Agg() AggregationType { return PerPacket }

// Bits implements Query.
func (q *CountQuery) Bits() int { return q.bits }

// Frequency implements Query.
func (q *CountQuery) Frequency() float64 { return q.freq }

// EncodeHop implements Query: a nonzero value means this hop's indicator
// fired, triggering one probabilistic Morris increment. The coin is the
// global hash on (packet, hop) so switches stay stateless and the sink
// could replay the decision if needed.
func (q *CountQuery) EncodeHop(pktID uint64, hop int, bits uint64, value uint64) uint64 {
	if value == 0 {
		return bits
	}
	m := approx.NewMorris(q.eps, q.bits)
	m.SetCode(bits)
	m.Increment(q.g, pktID, uint64(hop))
	return m.Code()
}

// Decode returns the count estimate for a digest code.
func (q *CountQuery) Decode(code uint64) float64 {
	m := approx.NewMorris(q.eps, q.bits)
	m.SetCode(code)
	return m.Estimate()
}
