package core

import (
	"testing"

	"repro/internal/hash"
)

// cloneWorkload encodes an interleaved multi-flow stream through the
// batch pipeline for clone/merge testing.
func cloneWorkload(t *testing.T, eng *Engine, seed uint64, nFlows, n, k int) []PacketDigest {
	t.Helper()
	rng := hash.NewRNG(seed)
	pkts := make([]PacketDigest, n)
	vals := make([]HopValues, n)
	for i := range pkts {
		pkts[i] = PacketDigest{Flow: FlowKey(i%nFlows + 1), PktID: rng.Uint64(), PathLen: k}
	}
	for hop := 1; hop <= k; hop++ {
		for i := range pkts {
			vals[i] = hopValuesFor(pkts[i].PktID, hop, 0xAB00)
		}
		eng.EncodeHopBatch(hop, pkts, vals)
	}
	return pkts
}

// TestRecordingCloneIsIndependentAndIdentical is the contract snapshot
// queries rely on: a clone answers bit-identically at the copy point, and
// recording into the original afterwards leaves the clone untouched while
// the clone, fed the same continuation, stays bit-identical to the
// original — for raw, sketched, and sliding-window latency storage.
func TestRecordingCloneIsIndependentAndIdentical(t *testing.T) {
	type variant struct {
		name        string
		sketchItems int
		winBuckets  int
		winSpan     uint64
	}
	for _, v := range []variant{
		{name: "raw"},
		{name: "sketched", sketchItems: 24},
		{name: "windowed", sketchItems: 24, winBuckets: 4, winSpan: 64},
	} {
		t.Run(v.name, func(t *testing.T) {
			eng, path, lat, util, freq, cnt := combinedTestPlan(t, 37)
			const (
				nFlows = 6
				k      = 6
			)
			pkts := cloneWorkload(t, eng, 91, nFlows, 4096, k)
			half := len(pkts) / 2
			mk := func() *Recording {
				rec, err := NewRecordingSeeded(eng, v.sketchItems, 0xC10)
				if err != nil {
					t.Fatal(err)
				}
				rec.WindowBuckets = v.winBuckets
				rec.WindowSpan = v.winSpan
				return rec
			}
			orig := mk()
			if err := orig.RecordBatch(pkts[:half]); err != nil {
				t.Fatal(err)
			}
			// Sliding-window quantile queries advance sketch RNG state, so
			// every comparison below uses recordings queried exactly once:
			// one clone (or reference) per comparison, all taken at the
			// copy point before anything is queried.
			cloneA, cloneB, cloneC, halfRef := orig.Clone(), orig.Clone(), orig.Clone(), orig.Clone()
			if got, want := cloneA.TrackedFlows(), orig.TrackedFlows(); got != want {
				t.Fatalf("clone tracks %d flows, original %d", got, want)
			}

			// At the copy point a clone answers bit-identically.
			for f := 1; f <= nFlows; f++ {
				assertSameAnswers(t, halfRef, cloneA, FlowKey(f), k, path, lat, util, freq, cnt)
			}

			// Recording the continuation into the original must not leak
			// into the clones...
			if err := orig.RecordBatch(pkts[half:]); err != nil {
				t.Fatal(err)
			}
			fresh := mk()
			if err := fresh.RecordBatch(pkts[:half]); err != nil {
				t.Fatal(err)
			}
			for f := 1; f <= nFlows; f++ {
				assertSameAnswers(t, fresh, cloneB, FlowKey(f), k, path, lat, util, freq, cnt)
			}

			// ...and feeding a clone the same continuation converges it
			// with the original, bit for bit.
			if err := cloneC.RecordBatch(pkts[half:]); err != nil {
				t.Fatal(err)
			}
			for f := 1; f <= nFlows; f++ {
				assertSameAnswers(t, orig, cloneC, FlowKey(f), k, path, lat, util, freq, cnt)
			}
		})
	}
}

// TestRecordingMergeAdoptsDisjointFlows splits a stream by flow parity
// into two recordings and merges them; every answer must match a single
// recording that saw the whole stream.
func TestRecordingMergeAdoptsDisjointFlows(t *testing.T) {
	eng, path, lat, util, freq, cnt := combinedTestPlan(t, 41)
	const (
		nFlows = 8
		k      = 6
	)
	pkts := cloneWorkload(t, eng, 97, nFlows, 4096, k)
	mk := func() *Recording {
		rec, err := NewRecordingSeeded(eng, 24, 0xE5)
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	whole, left, right := mk(), mk(), mk()
	if err := whole.RecordBatch(pkts); err != nil {
		t.Fatal(err)
	}
	for i := range pkts {
		dst := left
		if pkts[i].Flow%2 == 0 {
			dst = right
		}
		// Copy the packet so the cached query-set selection filled by the
		// first RecordBatch is reused, matching the serial path exactly.
		if err := dst.RecordBatch(pkts[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := left.Merge(right); err != nil {
		t.Fatal(err)
	}
	if got, want := left.TrackedFlows(), whole.TrackedFlows(); got != want {
		t.Fatalf("merged tracks %d flows, want %d", got, want)
	}
	for f := 1; f <= nFlows; f++ {
		assertSameAnswers(t, whole, left, FlowKey(f), k, path, lat, util, freq, cnt)
	}
}

// TestRecordingMergeManyWay folds K recordings holding disjoint flow
// slices into one — the shape a federated query frontend produces when it
// folds per-collector snapshots — including empty members, and demands
// answers identical to a single recording that saw everything. A single
// overlapping flow anywhere in the chain must abort the fold.
func TestRecordingMergeManyWay(t *testing.T) {
	eng, path, lat, util, freq, cnt := combinedTestPlan(t, 53)
	const (
		nFlows  = 9
		k       = 6
		members = 4 // flows spread over 3; member 3 stays empty
	)
	pkts := cloneWorkload(t, eng, 103, nFlows, 4096, k)
	mk := func() *Recording {
		rec, err := NewRecordingSeeded(eng, 24, 0xF7)
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	whole := mk()
	if err := whole.RecordBatch(pkts); err != nil {
		t.Fatal(err)
	}
	parts := make([]*Recording, members)
	for i := range parts {
		parts[i] = mk()
	}
	for i := range pkts {
		dst := parts[uint64(pkts[i].Flow)%3]
		if err := dst.RecordBatch(pkts[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}
	merged := parts[0]
	for _, part := range parts[1:] {
		if err := merged.Merge(part); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := merged.TrackedFlows(), whole.TrackedFlows(); got != want {
		t.Fatalf("merged tracks %d flows, want %d", got, want)
	}
	for f := 1; f <= nFlows; f++ {
		assertSameAnswers(t, whole, merged, FlowKey(f), k, path, lat, util, freq, cnt)
	}

	// One overlapping flow anywhere aborts: a recording holding a flow the
	// fold already adopted is a partitioning violation, not mergeable data.
	dup := mk()
	if err := dup.RecordBatch(pkts[:1]); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(dup); err == nil {
		t.Fatal("merge accepted a single-flow overlap after a clean many-way fold")
	}
}

// TestRecordingMergeRejectsOverlapAndForeignEngine pins Merge's error
// cases: duplicated flows and mismatched engines.
func TestRecordingMergeRejectsOverlapAndForeignEngine(t *testing.T) {
	eng, _, _, _, _, _ := combinedTestPlan(t, 43)
	pkts := cloneWorkload(t, eng, 101, 4, 512, 6)
	a, err := NewRecordingSeeded(eng, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRecordingSeeded(eng, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.RecordBatch(pkts); err != nil {
		t.Fatal(err)
	}
	if err := b.RecordBatch(pkts); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err == nil {
		t.Fatal("merge accepted overlapping flow sets")
	}
	eng2, _, _, _, _, _ := combinedTestPlan(t, 47)
	c, err := NewRecordingSeeded(eng2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(c); err == nil {
		t.Fatal("merge accepted a recording from a different engine")
	}
}
