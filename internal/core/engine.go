package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/hash"
)

// QuerySet is one cell of the execution plan: the queries that share a
// packet's digest and the probability a packet is assigned to this set.
// Offsets[i] is query i's bit offset within the digest.
type QuerySet struct {
	Queries []Query
	Offsets []int
	Prob    float64
}

// TotalBits returns the digest bits the set consumes.
func (s QuerySet) TotalBits() int {
	total := 0
	for _, q := range s.Queries {
		total += q.Bits()
	}
	return total
}

// ExecutionPlan is the Query Engine's output (§3.4, Fig 3): a distribution
// over query sets, each fitting the global budget.
type ExecutionPlan struct {
	GlobalBits int
	Sets       []QuerySet
}

// String renders the plan like Fig 3's table.
func (p ExecutionPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "execution plan (budget %d bits):\n", p.GlobalBits)
	for _, s := range p.Sets {
		names := make([]string, len(s.Queries))
		for i, q := range s.Queries {
			names[i] = q.Name()
		}
		fmt.Fprintf(&b, "  {%s}  p=%.4f\n", strings.Join(names, ", "), s.Prob)
	}
	return b.String()
}

// Engine coordinates queries at runtime: every switch (and the sink) holds
// an identical Engine, so the query-selection hash yields the same query
// set for a packet everywhere — the implicit coordination of §4.1.
type Engine struct {
	g      hash.Global
	master hash.Seed
	plan   ExecutionPlan
	// cum[i] is the upper boundary of set i's probability interval.
	cum []float64
	// progs[i] is set i lowered to a flat encode/record program.
	progs []encodeProgram
}

// Compile builds an execution plan for concurrent queries under a global
// per-packet bit budget. The plan satisfies every query's frequency: the
// total probability of sets containing query q is at least q.Frequency().
// Compilation is greedy (largest remaining frequency first, first-fit by
// bits), which suffices for the paper's workloads; infeasible inputs
// (including ∑ freq·bits > budget) are rejected.
func Compile(queries []Query, globalBits int, master hash.Seed) (*Engine, error) {
	if globalBits < 1 || globalBits > 64 {
		return nil, fmt.Errorf("core: global budget %d out of [1,64]", globalBits)
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("core: no queries")
	}
	names := map[string]bool{}
	var mass float64
	for _, q := range queries {
		if q.Bits() < 1 || q.Bits() > globalBits {
			return nil, fmt.Errorf("core: query %q bits %d exceed budget %d",
				q.Name(), q.Bits(), globalBits)
		}
		f := q.Frequency()
		if f <= 0 || f > 1 {
			return nil, fmt.Errorf("core: query %q frequency %v out of (0,1]", q.Name(), f)
		}
		if names[q.Name()] {
			return nil, fmt.Errorf("core: duplicate query name %q", q.Name())
		}
		names[q.Name()] = true
		mass += f * float64(q.Bits())
	}
	if mass > float64(globalBits)+1e-9 {
		return nil, fmt.Errorf("core: demanded %.2f bit-fraction exceeds budget %d",
			mass, globalBits)
	}

	rem := make([]float64, len(queries))
	for i, q := range queries {
		rem[i] = q.Frequency()
	}
	plan := ExecutionPlan{GlobalBits: globalBits}
	assigned := 0.0
	const eps = 1e-12
	for iter := 0; iter < 4*len(queries)+8; iter++ {
		// Candidates with remaining demand, largest first.
		idx := make([]int, 0, len(queries))
		for i := range queries {
			if rem[i] > eps {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			break
		}
		sort.Slice(idx, func(a, b int) bool {
			if rem[idx[a]] != rem[idx[b]] {
				return rem[idx[a]] > rem[idx[b]]
			}
			return idx[a] < idx[b]
		})
		var set QuerySet
		budget := globalBits
		minRem := 1.0
		for _, i := range idx {
			q := queries[i]
			if q.Bits() > budget {
				continue
			}
			set.Offsets = append(set.Offsets, globalBits-budget)
			set.Queries = append(set.Queries, q)
			budget -= q.Bits()
			if rem[i] < minRem {
				minRem = rem[i]
			}
		}
		if len(set.Queries) == 0 {
			return nil, fmt.Errorf("core: no query fits the remaining budget")
		}
		p := minRem
		if room := 1 - assigned; p > room {
			p = room
		}
		if p <= eps {
			break
		}
		set.Prob = p
		plan.Sets = append(plan.Sets, set)
		assigned += p
		for _, q := range set.Queries {
			for i := range queries {
				if queries[i] == q {
					rem[i] -= p
				}
			}
		}
	}
	for i, r := range rem {
		if r > 1e-9 {
			return nil, fmt.Errorf("core: cannot satisfy query %q (frequency shortfall %v)",
				queries[i].Name(), r)
		}
	}
	e := &Engine{g: hash.NewGlobal(master.Derive(0xE14)), master: master, plan: plan}
	cum := 0.0
	for _, s := range plan.Sets {
		cum += s.Prob
		e.cum = append(e.cum, cum)
		prog, err := compileProgram(s)
		if err != nil {
			return nil, err
		}
		e.progs = append(e.progs, prog)
	}
	return e, nil
}

// Plan exposes the compiled plan.
func (e *Engine) Plan() ExecutionPlan { return e.plan }

// PlanHash fingerprints the compiled engine: the master seed plus the
// full plan structure (budget, set probabilities, and each set's query
// names, bits, aggregation types, and digest offsets). Two engines with
// equal hashes built from the same query constructors decode each other's
// digests bit-identically, so the collector handshake uses this hash to
// refuse exporters compiled under a different plan. It does not cover
// query-internal parameters the constructors derive from their own seeds;
// deployments vary those through the master seed, which is covered.
func (e *Engine) PlanHash() uint64 {
	const tag = hash.Seed(0x50494E54504C4EAD)
	h := tag.Hash2(uint64(e.master), uint64(e.plan.GlobalBits))
	for _, s := range e.plan.Sets {
		h = tag.Hash2(h, math.Float64bits(s.Prob))
		for i, q := range s.Queries {
			h = tag.Hash2(h, uint64(s.Offsets[i]))
			h = tag.Hash2(h, tag.HashString(q.Name()))
			h = tag.Hash3(h, uint64(q.Bits()), uint64(q.Agg()))
		}
	}
	return h
}

// SetFor returns the query set a packet serves, or nil when the packet's
// selection point falls in unassigned probability mass (possible when
// total demand < 1).
func (e *Engine) SetFor(pktID uint64) *QuerySet {
	if i := e.SetIndex(pktID); i >= 0 {
		return &e.plan.Sets[i]
	}
	return nil
}

// EncodeHop is the switch-side entry point: it applies every selected
// query's Encoding Module to the packet digest. valueOf supplies the value
// this switch observes for each query (switch ID, hop latency, link
// utilization, …).
func (e *Engine) EncodeHop(pktID uint64, hop int, digest uint64, valueOf func(Query) uint64) uint64 {
	set := e.SetFor(pktID)
	if set == nil {
		return digest
	}
	for i, q := range set.Queries {
		off := uint(set.Offsets[i])
		mask := digestMask(q.Bits())
		slice := digest >> off & mask
		slice = q.EncodeHop(pktID, hop, slice, valueOf(q)) & mask
		digest = digest&^(mask<<off) | slice<<off
	}
	return digest
}

// Extracted is one query's digest slice recovered at the sink.
type Extracted struct {
	Query Query
	Bits  uint64
}

// Extract splits a sink-captured digest into per-query slices.
func (e *Engine) Extract(pktID uint64, digest uint64) []Extracted {
	set := e.SetFor(pktID)
	if set == nil {
		return nil
	}
	out := make([]Extracted, len(set.Queries))
	for i, q := range set.Queries {
		out[i] = Extracted{
			Query: q,
			Bits:  digest >> uint(set.Offsets[i]) & digestMask(q.Bits()),
		}
	}
	return out
}

func digestMask(bits int) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(bits) - 1
}
