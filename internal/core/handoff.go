package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/coding"
	"repro/internal/sketch"
)

// Per-flow state hand-off for fleet resize. AppendFlowState drains one
// flow's complete recording state — path decoders, latency stores, util
// and count series, frequency summaries — into an opaque blob;
// RestoreFlowState rebuilds that state on another Recording and folds it
// in through the same Merge the federation frontend uses, so a resized
// fleet's answers are byte-identical to a fleet that ran at the new
// membership from the start. Sections are keyed by query *name* (query
// pointers are process-local), resolved against the destination's own
// compiled query list; an unknown name or mismatched plan geometry is an
// error, never a silent drop.
//
// Blob layout (uvarint-based, strict full-consumption decode):
//
//	version (1) | sections uvarint |
//	  sections × { nameLen uvarint | name | kind byte | payloadLen uvarint | payload }
//
// Section kinds, one per query family:
const (
	flowStateVersion      = 1
	sectionPath      byte = 1
	sectionLatency   byte = 2
	sectionUtil      byte = 3
	sectionFreq      byte = 4
	sectionCount     byte = 5
)

// Latency/frequency per-hop store kinds inside their sections.
const (
	storeNone byte = 0
	storeRaw  byte = 1
	storeKLL  byte = 2
	storeWin  byte = 3
)

type handoffReader struct {
	data []byte
	err  error
}

func (r *handoffReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.err = fmt.Errorf("core: truncated flow-state varint")
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *handoffReader) bytes(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)) {
		r.err = fmt.Errorf("core: flow state wants %d bytes, %d left", n, len(r.data))
		return nil
	}
	b := r.data[:n]
	r.data = r.data[n:]
	return b
}

func (r *handoffReader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.data) != 0 {
		return fmt.Errorf("core: %d trailing flow-state bytes", len(r.data))
	}
	return nil
}

func appendSection(dst []byte, name string, kind byte, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(name)))
	dst = append(dst, name...)
	dst = append(dst, kind)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

func appendFloatSeries(dst []byte, series []float64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(series)))
	for _, v := range series {
		dst = binary.AppendUvarint(dst, math.Float64bits(v))
	}
	return dst
}

// AppendFlowState appends flow's complete recording state to dst. The
// queries slice fixes the section order (sections appear in query order,
// families with no state for the flow are skipped). The flow must be
// tracked.
func (r *Recording) AppendFlowState(dst []byte, queries []Query, flow FlowKey) ([]byte, error) {
	if _, ok := r.flowSeq[flow]; !ok {
		return dst, fmt.Errorf("core: flow %d is not tracked", flow)
	}
	dst = append(dst, flowStateVersion)
	countAt := len(dst)
	dst = append(dst, 0) // section count backfilled below (fits a byte: one section per query)
	if len(queries) > 127 {
		return dst, fmt.Errorf("core: %d queries exceed the flow-state section budget", len(queries))
	}
	sections := 0
	for _, q := range queries {
		switch q := q.(type) {
		case *PathQuery:
			dec := r.paths[q][flow]
			if dec == nil {
				continue
			}
			dst = appendSection(dst, q.Name(), sectionPath, dec.AppendState(nil))
		case *LatencyQuery:
			stores := r.lats[q][flow]
			if stores == nil {
				continue
			}
			var pl []byte
			pl = binary.AppendUvarint(pl, uint64(len(stores)))
			for _, st := range stores {
				switch {
				case st == nil:
					pl = append(pl, storeNone)
				case st.win != nil:
					pl = append(pl, storeWin)
					sub := st.win.AppendState(nil)
					pl = binary.AppendUvarint(pl, uint64(len(sub)))
					pl = append(pl, sub...)
				case st.kll != nil:
					pl = append(pl, storeKLL)
					sub := st.kll.AppendState(nil)
					pl = binary.AppendUvarint(pl, uint64(len(sub)))
					pl = append(pl, sub...)
				default:
					pl = append(pl, storeRaw)
					pl = binary.AppendUvarint(pl, uint64(len(st.raw)))
					for _, v := range st.raw {
						pl = binary.AppendUvarint(pl, v)
					}
				}
			}
			dst = appendSection(dst, q.Name(), sectionLatency, pl)
		case *UtilQuery:
			series := r.utils[q][flow]
			if series == nil {
				continue
			}
			dst = appendSection(dst, q.Name(), sectionUtil, appendFloatSeries(nil, series))
		case *FreqQuery:
			stores := r.freqs[q][flow]
			if stores == nil {
				continue
			}
			var pl []byte
			pl = binary.AppendUvarint(pl, uint64(len(stores)))
			for _, st := range stores {
				if st == nil {
					pl = append(pl, storeNone)
					continue
				}
				pl = append(pl, storeKLL) // "present" marker; payload is a SpaceSaving
				sub := st.AppendState(nil)
				pl = binary.AppendUvarint(pl, uint64(len(sub)))
				pl = append(pl, sub...)
			}
			dst = appendSection(dst, q.Name(), sectionFreq, pl)
		case *CountQuery:
			series := r.cnts[q][flow]
			if series == nil {
				continue
			}
			dst = appendSection(dst, q.Name(), sectionCount, appendFloatSeries(nil, series))
		default:
			return dst, fmt.Errorf("core: flow state for unknown query type %T", q)
		}
		sections++
	}
	dst[countAt] = byte(sections)
	return dst, nil
}

// RestoreFlowState rebuilds a flow's state from an AppendFlowState blob
// and folds it into r via Merge, exactly as the federation frontend folds
// member snapshots. queries resolves section names to this Recording's
// compiled queries. Restoring a flow r already tracks is an error (a
// flow's state must never split across two recordings).
func (r *Recording) RestoreFlowState(queries []Query, flow FlowKey, data []byte) error {
	byName := make(map[string]Query, len(queries))
	for _, q := range queries {
		byName[q.Name()] = q
	}
	carrier, err := NewRecordingSeeded(r.engine, r.SketchItems, r.base)
	if err != nil {
		return err
	}
	carrier.WindowBuckets = r.WindowBuckets
	carrier.WindowSpan = r.WindowSpan
	carrier.FreqCounters = r.FreqCounters
	rd := &handoffReader{data: data}
	if v := rd.uvarint(); rd.err == nil && v != flowStateVersion {
		return fmt.Errorf("core: flow state version %d (have %d)", v, flowStateVersion)
	}
	sections := rd.uvarint()
	if rd.err != nil {
		return rd.err
	}
	if sections > uint64(len(queries)) {
		return fmt.Errorf("core: flow state has %d sections for %d queries", sections, len(queries))
	}
	for s := uint64(0); s < sections; s++ {
		name := string(rd.bytes(rd.uvarint()))
		kindB := rd.bytes(1)
		payload := rd.bytes(rd.uvarint())
		if rd.err != nil {
			return rd.err
		}
		kind := kindB[0]
		q, ok := byName[name]
		if !ok {
			return fmt.Errorf("core: flow state references unknown query %q", name)
		}
		switch q := q.(type) {
		case *PathQuery:
			if kind != sectionPath {
				return fmt.Errorf("core: query %q: section kind %d, want path", name, kind)
			}
			k, err := coding.StateK(payload)
			if err != nil {
				return fmt.Errorf("core: query %q: %w", name, err)
			}
			dec, err := q.NewDecoder(k)
			if err != nil {
				return fmt.Errorf("core: query %q: %w", name, err)
			}
			if err := dec.RestoreState(payload); err != nil {
				return fmt.Errorf("core: query %q: %w", name, err)
			}
			carrier.paths[q] = map[FlowKey]*coding.Decoder{flow: dec}
		case *LatencyQuery:
			if kind != sectionLatency {
				return fmt.Errorf("core: query %q: section kind %d, want latency", name, kind)
			}
			stores, err := restoreLatStores(payload)
			if err != nil {
				return fmt.Errorf("core: query %q: %w", name, err)
			}
			carrier.lats[q] = map[FlowKey][]*latStore{flow: stores}
		case *UtilQuery:
			if kind != sectionUtil {
				return fmt.Errorf("core: query %q: section kind %d, want util", name, kind)
			}
			series, err := restoreFloatSeries(payload)
			if err != nil {
				return fmt.Errorf("core: query %q: %w", name, err)
			}
			carrier.utils[q] = map[FlowKey][]float64{flow: series}
		case *FreqQuery:
			if kind != sectionFreq {
				return fmt.Errorf("core: query %q: section kind %d, want freq", name, kind)
			}
			stores, err := restoreFreqStores(payload)
			if err != nil {
				return fmt.Errorf("core: query %q: %w", name, err)
			}
			carrier.freqs[q] = map[FlowKey][]*sketch.SpaceSaving{flow: stores}
		case *CountQuery:
			if kind != sectionCount {
				return fmt.Errorf("core: query %q: section kind %d, want count", name, kind)
			}
			series, err := restoreFloatSeries(payload)
			if err != nil {
				return fmt.Errorf("core: query %q: %w", name, err)
			}
			carrier.cnts[q] = map[FlowKey][]float64{flow: series}
		default:
			return fmt.Errorf("core: flow state for unknown query type %T", q)
		}
	}
	if err := rd.done(); err != nil {
		return err
	}
	carrier.seq = 1
	carrier.flowSeq[flow] = 1
	return r.Merge(carrier)
}

func restoreLatStores(payload []byte) ([]*latStore, error) {
	rd := &handoffReader{data: payload}
	n := rd.uvarint()
	if rd.err != nil {
		return nil, rd.err
	}
	if n > uint64(len(rd.data))+1 {
		return nil, fmt.Errorf("core: latency section claims %d stores", n)
	}
	stores := make([]*latStore, n)
	for i := range stores {
		kind := rd.bytes(1)
		if rd.err != nil {
			return nil, rd.err
		}
		switch kind[0] {
		case storeNone:
		case storeRaw:
			cnt := rd.uvarint()
			if rd.err != nil {
				return nil, rd.err
			}
			if cnt > uint64(len(rd.data))+1 {
				return nil, fmt.Errorf("core: raw latency store claims %d samples", cnt)
			}
			raw := make([]uint64, cnt)
			for j := range raw {
				raw[j] = rd.uvarint()
			}
			stores[i] = &latStore{raw: raw}
		case storeKLL:
			sub := rd.bytes(rd.uvarint())
			if rd.err != nil {
				return nil, rd.err
			}
			kll, err := sketch.RestoreKLL(sub)
			if err != nil {
				return nil, err
			}
			stores[i] = &latStore{kll: kll}
		case storeWin:
			sub := rd.bytes(rd.uvarint())
			if rd.err != nil {
				return nil, rd.err
			}
			win, err := sketch.RestoreSlidingKLL(sub)
			if err != nil {
				return nil, err
			}
			stores[i] = &latStore{win: win}
		default:
			return nil, fmt.Errorf("core: latency store kind %d", kind[0])
		}
	}
	if err := rd.done(); err != nil {
		return nil, err
	}
	return stores, nil
}

func restoreFreqStores(payload []byte) ([]*sketch.SpaceSaving, error) {
	rd := &handoffReader{data: payload}
	n := rd.uvarint()
	if rd.err != nil {
		return nil, rd.err
	}
	if n > uint64(len(rd.data))+1 {
		return nil, fmt.Errorf("core: freq section claims %d stores", n)
	}
	stores := make([]*sketch.SpaceSaving, n)
	for i := range stores {
		kind := rd.bytes(1)
		if rd.err != nil {
			return nil, rd.err
		}
		switch kind[0] {
		case storeNone:
		default:
			sub := rd.bytes(rd.uvarint())
			if rd.err != nil {
				return nil, rd.err
			}
			ss, err := sketch.RestoreSpaceSaving(sub)
			if err != nil {
				return nil, err
			}
			stores[i] = ss
		}
	}
	if err := rd.done(); err != nil {
		return nil, err
	}
	return stores, nil
}

func restoreFloatSeries(payload []byte) ([]float64, error) {
	rd := &handoffReader{data: payload}
	n := rd.uvarint()
	if rd.err != nil {
		return nil, rd.err
	}
	if n > uint64(len(rd.data))+1 {
		return nil, fmt.Errorf("core: series claims %d values", n)
	}
	series := make([]float64, n)
	for i := range series {
		series[i] = math.Float64frombits(rd.uvarint())
	}
	if err := rd.done(); err != nil {
		return nil, err
	}
	return series, nil
}
