package transport

import (
	"math"
	"testing"

	"repro/internal/hash"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// testNet builds host-sw-sw-host at 1Gbps with the given buffer size.
func testNet(t *testing.T, bufBytes int) (*netsim.Sim, *netsim.Network, int, int) {
	t.Helper()
	g := topology.NewGraph("line")
	h1 := g.AddNode(topology.Host, "h1")
	s1 := g.AddNode(topology.Switch, "s1")
	s2 := g.AddNode(topology.Switch, "s2")
	h2 := g.AddNode(topology.Host, "h2")
	for _, e := range [][2]int{{h1, s1}, {s1, s2}, {s2, h2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	sim := netsim.NewSim()
	spec := netsim.LinkSpec{Bps: 1_000_000_000, PropNs: 1000, BufBytes: bufBytes}
	net, err := netsim.Build(sim, g, netsim.BuildOptions{
		HostLink: spec, TierLink: spec, ValuesPerHop: 3})
	if err != nil {
		t.Fatal(err)
	}
	return sim, net, h1, h2
}

// dumbbell builds h1,h2 - sw - sw - h3,h4 with a shared middle link.
func dumbbell(t *testing.T, bufBytes int) (*netsim.Sim, *netsim.Network, []int) {
	t.Helper()
	g := topology.NewGraph("dumbbell")
	s1 := g.AddNode(topology.Switch, "s1")
	s2 := g.AddNode(topology.Switch, "s2")
	hosts := make([]int, 4)
	hosts[0] = g.AddNode(topology.Host, "h1")
	hosts[1] = g.AddNode(topology.Host, "h2")
	hosts[2] = g.AddNode(topology.Host, "h3")
	hosts[3] = g.AddNode(topology.Host, "h4")
	edges := [][2]int{{hosts[0], s1}, {hosts[1], s1}, {hosts[2], s2}, {hosts[3], s2}, {s1, s2}}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	sim := netsim.NewSim()
	spec := netsim.LinkSpec{Bps: 1_000_000_000, PropNs: 1000, BufBytes: bufBytes}
	net, err := netsim.Build(sim, g, netsim.BuildOptions{
		HostLink: spec, TierLink: spec, ValuesPerHop: 3})
	if err != nil {
		t.Fatal(err)
	}
	return sim, net, hosts
}

func TestRenoSingleFlowCompletes(t *testing.T) {
	sim, net, h1, h2 := testNet(t, 1<<20)
	stats := &FlowStats{ID: 1, Bytes: 100_000, StartNs: 0}
	if _, err := StartReno(net, h1, h2, stats, DefaultRenoConfig()); err != nil {
		t.Fatal(err)
	}
	sim.Run(1_000_000_000)
	if !stats.Done {
		t.Fatalf("flow incomplete: acked %d of %d", stats.AckedBytes, stats.Bytes)
	}
	// Ideal: 100KB at 1Gbps ≈ 0.83ms (incl. headers); allow slow-start ramp.
	if fct := stats.FCT(); fct < 800_000 || fct > 5_000_000 {
		t.Fatalf("FCT %dns implausible for 100KB at 1Gbps", fct)
	}
}

func TestRenoFlowValidation(t *testing.T) {
	_, net, h1, h2 := testNet(t, 1<<20)
	if _, err := StartReno(net, h1, h2, &FlowStats{ID: 1, Bytes: 0}, DefaultRenoConfig()); err == nil {
		t.Fatal("zero-byte flow must fail")
	}
	cfg := DefaultRenoConfig()
	cfg.MTU = 0
	if _, err := StartReno(net, h1, h2, &FlowStats{ID: 1, Bytes: 10}, cfg); err == nil {
		t.Fatal("zero MTU must fail")
	}
}

func TestRenoTinyFlow(t *testing.T) {
	sim, net, h1, h2 := testNet(t, 1<<20)
	stats := &FlowStats{ID: 1, Bytes: 1}
	if _, err := StartReno(net, h1, h2, stats, DefaultRenoConfig()); err != nil {
		t.Fatal(err)
	}
	sim.Run(1_000_000_000)
	if !stats.Done {
		t.Fatal("1-byte flow incomplete")
	}
}

func TestRenoSurvivesDrops(t *testing.T) {
	// 5KB buffer forces losses; the flow must still complete via fast
	// retransmit / RTO.
	sim, net, h1, h2 := testNet(t, 5_000)
	stats := &FlowStats{ID: 1, Bytes: 300_000}
	if _, err := StartReno(net, h1, h2, stats, DefaultRenoConfig()); err != nil {
		t.Fatal(err)
	}
	sim.Run(5_000_000_000)
	if !stats.Done {
		t.Fatalf("flow incomplete after drops: acked %d of %d (drops=%d)",
			stats.AckedBytes, stats.Bytes, net.Drops)
	}
	if net.Drops == 0 {
		t.Fatal("test wanted loss but saw none; buffer too large")
	}
	if stats.Retransmits == 0 {
		t.Fatal("drops occurred but no retransmissions recorded")
	}
}

func TestRenoSharedBottleneckBothComplete(t *testing.T) {
	sim, net, hosts := dumbbell(t, 64_000)
	s1 := &FlowStats{ID: 1, Bytes: 200_000}
	s2 := &FlowStats{ID: 2, Bytes: 200_000}
	if _, err := StartReno(net, hosts[0], hosts[2], s1, DefaultRenoConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := StartReno(net, hosts[1], hosts[3], s2, DefaultRenoConfig()); err != nil {
		t.Fatal(err)
	}
	sim.Run(10_000_000_000)
	if !s1.Done || !s2.Done {
		t.Fatalf("flows incomplete: %v %v", s1.Done, s2.Done)
	}
	// Sharing a 1Gbps link, each must take at least ~2x its solo time.
	solo := int64(200_000 * 8) // ns at 1Gbps ≈ 1.6ms
	if s1.FCT() < solo || s2.FCT() < solo {
		t.Fatal("flows finished faster than the shared bottleneck allows")
	}
}

func TestRenoOverheadSlowsFCT(t *testing.T) {
	// The Fig 1 mechanism at unit scale: more per-packet overhead, longer
	// FCT for the same payload under load. A large buffer keeps the run
	// loss-free so the comparison isolates serialization cost.
	run := func(extra int) int64 {
		sim, net, hosts := dumbbell(t, 4<<20)
		cfg := DefaultRenoConfig()
		cfg.ExtraBytes = extra
		s1 := &FlowStats{ID: 1, Bytes: 500_000}
		s2 := &FlowStats{ID: 2, Bytes: 500_000}
		if _, err := StartReno(net, hosts[0], hosts[2], s1, cfg); err != nil {
			t.Fatal(err)
		}
		if _, err := StartReno(net, hosts[1], hosts[3], s2, cfg); err != nil {
			t.Fatal(err)
		}
		sim.Run(30_000_000_000)
		if !s1.Done || !s2.Done {
			t.Fatal("incomplete")
		}
		return (s1.FCT() + s2.FCT()) / 2
	}
	if base, heavy := run(0), run(108); heavy <= base {
		t.Fatalf("108B overhead did not slow FCT: base %d, heavy %d", base, heavy)
	}
}

func TestHPCCINTSingleFlow(t *testing.T) {
	sim, net, h1, h2 := testNet(t, 1<<22)
	AttachINTHook(net)
	cfg := DefaultHPCCConfig(1_000_000_000, 35_000)
	cfg.Mode = FeedbackINT
	stats := &FlowStats{ID: 1, Bytes: 1_000_000}
	h, err := StartHPCC(net, h1, h2, stats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(60_000_000_000)
	if !stats.Done {
		t.Fatalf("HPCC-INT flow incomplete: acked %d of %d (W=%v)",
			stats.AckedBytes, stats.Bytes, h.Window())
	}
	// 1MB at 1Gbps ideal ≈ 8ms; HPCC should finish within 3x ideal.
	if fct := stats.FCT(); fct > 24_000_000 {
		t.Fatalf("FCT %dns too slow for 1MB at 1Gbps", fct)
	}
	if net.Drops != 0 {
		t.Fatalf("HPCC should keep queues bounded; %d drops", net.Drops)
	}
	if h.LastU <= 0 {
		t.Fatal("sender never computed a utilization estimate")
	}
}

func TestHPCCPINTSingleFlow(t *testing.T) {
	sim, net, h1, h2 := testNet(t, 1<<22)
	pu, err := AttachPINTHook(net, 35_000, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultHPCCConfig(1_000_000_000, 35_000)
	cfg.Mode = FeedbackPINT
	cfg.PintBits = 8
	cfg.DecodeU = pu.Decode
	stats := &FlowStats{ID: 1, Bytes: 1_000_000}
	h, err := StartHPCC(net, h1, h2, stats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(60_000_000_000)
	if !stats.Done {
		t.Fatalf("HPCC-PINT flow incomplete: acked %d of %d (W=%v, U=%v)",
			stats.AckedBytes, stats.Bytes, h.Window(), h.LastU)
	}
	if fct := stats.FCT(); fct > 30_000_000 {
		t.Fatalf("FCT %dns too slow for 1MB at 1Gbps", fct)
	}
}

func TestHPCCPINTFractionalFeedback(t *testing.T) {
	// p=1/16 selection: only a 16th of packets carry the HPCC digest but
	// the flow must still complete promptly (Fig 8's p=1/16 result).
	sim, net, h1, h2 := testNet(t, 1<<22)
	pu, err := AttachPINTHook(net, 35_000, 8)
	if err != nil {
		t.Fatal(err)
	}
	sel := hash.NewGlobal(99)
	cfg := DefaultHPCCConfig(1_000_000_000, 35_000)
	cfg.Mode = FeedbackPINT
	cfg.PintBits = 8
	cfg.DecodeU = pu.Decode
	cfg.SelectPkt = func(pktID uint64) bool { return sel.Act(pktID, 1, 1.0/16) }
	stats := &FlowStats{ID: 1, Bytes: 1_000_000}
	if _, err := StartHPCC(net, h1, h2, stats, cfg); err != nil {
		t.Fatal(err)
	}
	sim.Run(120_000_000_000)
	if !stats.Done {
		t.Fatalf("p=1/16 flow incomplete: acked %d of %d", stats.AckedBytes, stats.Bytes)
	}
}

func TestHPCCPINTLessOverheadThanINT(t *testing.T) {
	// The core byte-saving claim: a PINT data packet carries 1-2B versus
	// INT's 8+12/hop. Count bytes through the dequeue hook.
	countBytes := func(mode FeedbackMode) int64 {
		sim, net, h1, h2 := testNet(t, 1<<22)
		var total int64
		base := net.OnDequeue
		_ = base
		var pu *PINTUtilization
		var err error
		if mode == FeedbackINT {
			AttachINTHook(net)
		} else {
			pu, err = AttachPINTHook(net, 35_000, 8)
			if err != nil {
				t.Fatal(err)
			}
		}
		prev := net.OnDequeue
		net.OnDequeue = func(n *netsim.Network, sw *netsim.SwitchNode, port *netsim.Port,
			pkt *netsim.Packet, qlen int, tau, hopLat int64) {
			prev(n, sw, port, pkt, qlen, tau, hopLat)
			if !pkt.Ack {
				total += int64(pkt.WireSize(3))
			}
		}
		cfg := DefaultHPCCConfig(1_000_000_000, 35_000)
		cfg.Mode = mode
		if mode == FeedbackPINT {
			cfg.PintBits = 8
			cfg.DecodeU = pu.Decode
		}
		stats := &FlowStats{ID: 1, Bytes: 500_000}
		if _, err := StartHPCC(net, h1, h2, stats, cfg); err != nil {
			t.Fatal(err)
		}
		sim.Run(60_000_000_000)
		if !stats.Done {
			t.Fatal("flow incomplete")
		}
		return total
	}
	intBytes := countBytes(FeedbackINT)
	pintBytes := countBytes(FeedbackPINT)
	if pintBytes >= intBytes {
		t.Fatalf("PINT bytes %d not below INT bytes %d", pintBytes, intBytes)
	}
}

func TestHPCCValidation(t *testing.T) {
	_, net, h1, h2 := testNet(t, 1<<20)
	cfg := DefaultHPCCConfig(1e9, 35_000)
	cfg.Eta = 0
	if _, err := StartHPCC(net, h1, h2, &FlowStats{ID: 1, Bytes: 10}, cfg); err == nil {
		t.Fatal("eta=0 must fail")
	}
	cfg = DefaultHPCCConfig(1e9, 35_000)
	cfg.Mode = FeedbackPINT
	if _, err := StartHPCC(net, h1, h2, &FlowStats{ID: 1, Bytes: 10}, cfg); err == nil {
		t.Fatal("PINT mode without DecodeU must fail")
	}
}

func TestPINTUtilizationRoundTrip(t *testing.T) {
	pu, err := NewPINTUtilization(13_000, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []float64{0.05, 0.3, 0.5, 0.95, 1.0, 1.5} {
		got := pu.Decode(pu.Encode(u))
		if math.Abs(got-u)/u > 0.08 {
			t.Fatalf("U=%v decoded %v (>8%% error)", u, got)
		}
	}
	if pu.Decode(0) != 0 {
		t.Fatal("zero code must decode to zero utilization")
	}
}

func TestCollector(t *testing.T) {
	c := &Collector{}
	a := &FlowStats{ID: 1, Done: true, StartNs: 5, DoneNs: 105}
	b := &FlowStats{ID: 2}
	c.Add(a)
	c.Add(b)
	if got := len(c.Completed()); got != 1 {
		t.Fatalf("completed = %d, want 1", got)
	}
	if a.FCT() != 100 {
		t.Fatalf("FCT = %d, want 100", a.FCT())
	}
	if b.FCT() != 0 {
		t.Fatal("unfinished flow must report FCT 0")
	}
}
