package transport

import (
	"repro/internal/netsim"
)

// RenoConfig parameterizes the Reno-like sender.
type RenoConfig struct {
	MTU        int   // payload bytes per segment (default 960 → 1000B wire)
	InitRTO    int64 // initial retransmission timeout, ns
	MinCwnd    int   // floor in segments (1)
	InitCwnd   int   // initial window in segments (10, RFC 6928 spirit)
	ExtraBytes int   // fixed synthetic per-packet overhead (Fig 1/2 sweep)
}

// DefaultRenoConfig returns sane defaults for the scaled-down simulations.
func DefaultRenoConfig() RenoConfig {
	return RenoConfig{MTU: 960, InitRTO: 2_000_000, MinCwnd: 1, InitCwnd: 10}
}

// Reno is a TCP-Reno-like sender: slow start to ssthresh, then additive
// increase; triple-dupACK fast retransmit with multiplicative decrease;
// timeout collapses to one segment. It is deliberately simplified (no
// SACK, no fast-recovery inflation) — the Fig 1/2 experiments measure how
// header overhead erodes goodput and inflates FCT, which depends on the
// AIMD envelope, not on recovery minutiae.
type Reno struct {
	core *senderCore
	cfg  RenoConfig

	cwnd     float64 // segments
	ssthresh float64
	dupacks  int

	srtt   float64
	rttvar float64
}

// StartReno creates sender and receiver endpoints for a flow and begins
// transmission now. stats must be a fresh FlowStats with ID/Bytes/StartNs
// filled by the caller.
func StartReno(net *netsim.Network, src, dst int, stats *FlowStats, cfg RenoConfig) (*Reno, error) {
	if err := validateFlow(stats.Bytes, cfg.MTU); err != nil {
		return nil, err
	}
	r := &Reno{
		cfg:      cfg,
		cwnd:     float64(cfg.InitCwnd),
		ssthresh: 1 << 30,
	}
	core := &senderCore{
		net:    net,
		host:   net.Host(src),
		flowID: stats.ID,
		dst:    dst,
		size:   stats.Bytes,
		mtu:    cfg.MTU,
		rto:    cfg.InitRTO,
		stats:  stats,
	}
	core.window = func() int64 { return int64(r.cwnd * float64(cfg.MTU)) }
	core.onTimeout = func() {
		r.ssthresh = max2(r.cwnd/2, float64(cfg.MinCwnd))
		r.cwnd = float64(cfg.MinCwnd)
		r.dupacks = 0
	}
	core.decorate = func(pkt *netsim.Packet) { pkt.ExtraBytes = cfg.ExtraBytes }
	core.onDone = func() {
		net.Host(src).Detach(stats.ID)
		net.Host(dst).Detach(stats.ID)
	}
	r.core = core

	recv := newReceiver(net, net.Host(dst), stats.ID, src)
	net.Host(dst).Attach(stats.ID, recv)
	net.Host(src).Attach(stats.ID, r)
	core.pump()
	return r, nil
}

// Deliver implements netsim.Endpoint for ACKs arriving at the sender.
func (r *Reno) Deliver(pkt *netsim.Packet) {
	if !pkt.Ack || r.core.done {
		return
	}
	now := r.core.net.Sim.Now()
	if pkt.EchoSentNs > 0 {
		r.updateRTT(float64(now - pkt.EchoSentNs))
	}
	newly := r.core.ackAdvance(pkt.AckSeq)
	if newly > 0 {
		r.dupacks = 0
		segs := float64(newly) / float64(r.cfg.MTU)
		if r.cwnd < r.ssthresh {
			r.cwnd += segs // slow start
		} else {
			r.cwnd += segs / r.cwnd // congestion avoidance
		}
		r.core.armTimer()
		r.core.pump()
		return
	}
	// Duplicate ACK.
	r.dupacks++
	if r.dupacks == 3 {
		r.core.stats.Retransmits++
		r.ssthresh = max2(r.cwnd/2, float64(r.cfg.MinCwnd))
		r.cwnd = r.ssthresh
		r.core.sendSegment(r.core.sndUna)
		r.core.armTimer()
	}
}

func (r *Reno) updateRTT(sample float64) {
	if r.srtt == 0 {
		r.srtt = sample
		r.rttvar = sample / 2
	} else {
		delta := sample - r.srtt
		if delta < 0 {
			delta = -delta
		}
		r.rttvar = 0.75*r.rttvar + 0.25*delta
		r.srtt = 0.875*r.srtt + 0.125*sample
	}
	rto := int64(r.srtt + 4*r.rttvar)
	if rto < r.cfg.InitRTO/4 {
		rto = r.cfg.InitRTO / 4
	}
	r.core.rto = rto
}

// Cwnd exposes the window in segments (tests).
func (r *Reno) Cwnd() float64 { return r.cwnd }

// Done reports completion.
func (r *Reno) Done() bool { return r.core.done }

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
