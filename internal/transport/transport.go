// Package transport implements the end-host protocols the PINT evaluation
// exercises over the simulator:
//
//   - Reno: a TCP-Reno-like reliable window transport (slow start, AIMD,
//     fast retransmit, RTO) used for the §2 overhead study (Figs 1 and 2),
//   - HPCC: the window-based High Precision Congestion Control of Li et
//     al. [46], consuming either classic per-hop INT feedback or PINT's
//     compressed bottleneck-utilization digests (§4.3, Example #3).
//
// Senders and receivers attach to simulator hosts as flow endpoints; the
// receiver cumulatively ACKs and echoes whatever telemetry the data packet
// carried, exactly as HPCC's receiver reflects INT back to the sender.
package transport

import (
	"fmt"

	"repro/internal/netsim"
)

// FlowStats records one flow's outcome.
type FlowStats struct {
	ID          uint64
	Bytes       int64
	StartNs     int64
	DoneNs      int64
	Done        bool
	Retransmits int
	AckedBytes  int64
}

// FCT returns the flow completion time in ns (0 if unfinished).
func (f *FlowStats) FCT() int64 {
	if !f.Done {
		return 0
	}
	return f.DoneNs - f.StartNs
}

// Collector accumulates completed-flow statistics for an experiment run.
type Collector struct {
	Flows []*FlowStats
}

// Add registers a flow's stats object (before or after completion).
func (c *Collector) Add(f *FlowStats) { c.Flows = append(c.Flows, f) }

// Completed returns only finished flows.
func (c *Collector) Completed() []*FlowStats {
	var out []*FlowStats
	for _, f := range c.Flows {
		if f.Done {
			out = append(out, f)
		}
	}
	return out
}

// receiver is the shared receive side: cumulative ACK with telemetry echo.
type receiver struct {
	net    *netsim.Network
	host   *netsim.HostNode
	flowID uint64
	peer   int // sender host node ID
	rcvNxt int64
	ooo    map[int64]int // out-of-order segments: seq -> len
}

func newReceiver(net *netsim.Network, host *netsim.HostNode, flowID uint64, peer int) *receiver {
	return &receiver{net: net, host: host, flowID: flowID, peer: peer, ooo: map[int64]int{}}
}

// Deliver implements netsim.Endpoint for data packets arriving at the
// destination.
func (r *receiver) Deliver(pkt *netsim.Packet) {
	if pkt.Ack {
		return // stray
	}
	if pkt.Seq == r.rcvNxt {
		r.rcvNxt += int64(pkt.PayloadLen)
		for {
			l, ok := r.ooo[r.rcvNxt]
			if !ok {
				break
			}
			delete(r.ooo, r.rcvNxt)
			r.rcvNxt += int64(l)
		}
	} else if pkt.Seq > r.rcvNxt {
		r.ooo[pkt.Seq] = pkt.PayloadLen
	}
	ack := &netsim.Packet{
		ID:         r.net.NextPacketID(),
		FlowID:     r.flowID,
		Src:        r.host.ID,
		Dst:        r.peer,
		Ack:        true,
		AckSeq:     r.rcvNxt,
		PayloadLen: 0,
		// Echo telemetry back to the sender (HPCC's feedback loop). The
		// echo consumes reverse-path bytes, as in the real protocol.
		EchoINT:    pkt.INT,
		EchoDigest: pkt.Digest,
		EchoBits:   pkt.DigestBits,
		EchoQuery:  pkt.DigestQuery,
		EchoPktID:  pkt.ID,
	}
	// Echo the data packet's send time (RFC-7323-style timestamp echo) so
	// the sender can take an RTT sample; Host.Send stamps ack.SentNs with
	// the ACK's own transmission time, hence the dedicated field.
	ack.EchoSentNs = pkt.SentNs
	r.host.Send(ack)
}

// senderCore factors the reliability machinery shared by Reno and HPCC:
// byte-sequence bookkeeping, retransmission timer, completion detection.
type senderCore struct {
	net    *netsim.Network
	host   *netsim.HostNode
	flowID uint64
	dst    int
	size   int64
	mtu    int // payload bytes per packet

	sndUna int64
	sndNxt int64

	rto        int64
	deadline   int64
	timerArmed bool

	stats *FlowStats
	done  bool

	// telemetry decoration applied to each outgoing data packet.
	decorate func(pkt *netsim.Packet)
	// onDone fires once at completion.
	onDone func()
	// window returns the current congestion window in bytes.
	window func() int64
	// onTimeout lets the concrete protocol react (cwnd reset etc.).
	onTimeout func()
}

func (s *senderCore) inflight() int64 { return s.sndNxt - s.sndUna }

// sendRange transmits one data packet starting at seq.
func (s *senderCore) sendSegment(seq int64) {
	payload := s.mtu
	if rem := s.size - seq; rem < int64(payload) {
		payload = int(rem)
	}
	pkt := &netsim.Packet{
		ID:         s.net.NextPacketID(),
		FlowID:     s.flowID,
		Src:        s.host.ID,
		Dst:        s.dst,
		Seq:        seq,
		PayloadLen: payload,
	}
	if s.decorate != nil {
		s.decorate(pkt)
	}
	s.host.Send(pkt)
}

// pump sends new segments while the window allows.
func (s *senderCore) pump() {
	if s.done {
		return
	}
	w := s.window()
	for s.sndNxt < s.size && s.inflight() < w {
		s.sendSegment(s.sndNxt)
		adv := int64(s.mtu)
		if rem := s.size - s.sndNxt; rem < adv {
			adv = rem
		}
		s.sndNxt += adv
	}
	s.armTimer()
}

func (s *senderCore) armTimer() {
	if s.done || s.inflight() == 0 {
		return
	}
	s.deadline = s.net.Sim.Now() + s.rto
	if s.timerArmed {
		return
	}
	s.timerArmed = true
	s.scheduleTimer()
}

func (s *senderCore) scheduleTimer() {
	at := s.deadline
	s.net.Sim.At(at, func() {
		if s.done || s.inflight() == 0 {
			s.timerArmed = false
			return
		}
		if s.net.Sim.Now() < s.deadline {
			s.scheduleTimer() // progress happened; chase the new deadline
			return
		}
		// Timeout: retransmit the oldest unacked segment.
		s.stats.Retransmits++
		if s.onTimeout != nil {
			s.onTimeout()
		}
		s.sendSegment(s.sndUna)
		s.rto *= 2
		s.deadline = s.net.Sim.Now() + s.rto
		s.scheduleTimer()
	})
}

// ackAdvance processes a cumulative ACK; returns newly acked byte count.
func (s *senderCore) ackAdvance(ackSeq int64) int64 {
	if ackSeq <= s.sndUna {
		return 0
	}
	n := ackSeq - s.sndUna
	s.sndUna = ackSeq
	s.stats.AckedBytes = s.sndUna
	if s.sndUna >= s.size && !s.done {
		s.done = true
		s.stats.Done = true
		s.stats.DoneNs = s.net.Sim.Now()
		if s.onDone != nil {
			s.onDone()
		}
	}
	return n
}

func validateFlow(size int64, mtu int) error {
	if size < 1 {
		return fmt.Errorf("transport: flow size %d must be positive", size)
	}
	if mtu < 1 {
		return fmt.Errorf("transport: mtu %d must be positive", mtu)
	}
	return nil
}
