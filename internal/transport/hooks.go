package transport

import (
	"fmt"

	"repro/internal/approx"
	"repro/internal/netsim"
)

// This file wires the telemetry encoders into the simulator's egress
// (dequeue) hook — the place a P4 pipeline would run them (§5).

// AttachINTHook installs classic INT: every switch appends a HopINT record
// to packets that opted in (pkt.INT non-nil), growing the wire size by 4B
// per value per hop plus the 8B metadata header (§2's overhead model).
func AttachINTHook(net *netsim.Network) {
	prev := net.OnDequeue
	net.OnDequeue = func(n *netsim.Network, sw *netsim.SwitchNode, port *netsim.Port,
		pkt *netsim.Packet, qlen int, tau, hopLat int64) {
		if prev != nil {
			prev(n, sw, port, pkt, qlen, tau, hopLat)
		}
		if pkt.Ack || pkt.INT == nil {
			return
		}
		pkt.INT = append(pkt.INT, netsim.HopINT{
			SwitchID: n.Graph.Nodes[sw.ID].SwitchID,
			Qlen:     qlen,
			TxBytes:  port.TxBytes,
			TsNs:     n.Sim.Now(),
			RateBps:  port.Spec.Bps,
		})
	}
}

// PINTUtilization bundles the switch-side state of PINT's congestion
// control use case: a per-port EWMA of link utilization maintained with
// Appendix B's log/exp data-plane arithmetic, plus the multiplicative
// compressor that squeezes U into the digest budget.
type PINTUtilization struct {
	BaseRTTNs int64
	Comp      *approx.MultCompressor
	Scale     float64 // U is scaled by this before compression (U >= 1 domain)
	tbl       *approx.LogExpTable
	updaters  map[int64]*approx.HPCCUtilization // keyed by port rate
}

// NewPINTUtilization builds the switch-side machinery. bits is the digest
// budget for the utilization value (the paper uses 8 bits with ε=0.025).
func NewPINTUtilization(baseRTTNs int64, bits int) (*PINTUtilization, error) {
	comp, err := approx.NewMultCompressor(0.025, bits)
	if err != nil {
		return nil, err
	}
	tbl, err := approx.NewLogExpTable(12)
	if err != nil {
		return nil, err
	}
	return &PINTUtilization{
		BaseRTTNs: baseRTTNs,
		Comp:      comp,
		Scale:     1000,
		tbl:       tbl,
		updaters:  map[int64]*approx.HPCCUtilization{},
	}, nil
}

func (p *PINTUtilization) updater(rateBps int64) *approx.HPCCUtilization {
	u, ok := p.updaters[rateBps]
	if !ok {
		u = approx.NewHPCCUtilization(uint64(p.BaseRTTNs), uint64(rateBps), p.tbl)
		p.updaters[rateBps] = u
	}
	return u
}

// UpdatePortU advances a port's utilization EWMA through the data-plane
// arithmetic and returns the new value. Exposed for experiments that
// install their own dequeue hooks (multi-query execution plans, §6.4).
func (p *PINTUtilization) UpdatePortU(port *netsim.Port, tauNs int64, qlen, pktBytes int) float64 {
	port.U = p.updater(port.Spec.Bps).Update(port.U, uint64(tauNs), uint64(qlen), uint64(pktBytes))
	return port.U
}

// Encode compresses a utilization into a digest code.
func (p *PINTUtilization) Encode(u float64) uint64 {
	return p.Comp.Encode(u*p.Scale + 1)
}

// Decode recovers a utilization from a digest code (the sender-side
// inverse handed to HPCCConfig.DecodeU).
func (p *PINTUtilization) Decode(code uint64) float64 {
	v := p.Comp.Decode(code)
	u := (v - 1) / p.Scale
	if u < 0 {
		u = 0
	}
	return u
}

// AttachPINTHook installs PINT's per-packet max-aggregation for HPCC: each
// switch updates its port's utilization EWMA on every dequeue and, on
// packets whose digest currently serves the HPCC query, raises the digest
// to the compressed utilization if this hop is the new bottleneck
// (max-aggregation, §3.1). It returns the PINTUtilization so callers can
// hand Decode to the sender.
func AttachPINTHook(net *netsim.Network, baseRTTNs int64, bits int) (*PINTUtilization, error) {
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("transport: PINT utilization bits %d out of [1,16]", bits)
	}
	pu, err := NewPINTUtilization(baseRTTNs, bits)
	if err != nil {
		return nil, err
	}
	prev := net.OnDequeue
	net.OnDequeue = func(n *netsim.Network, sw *netsim.SwitchNode, port *netsim.Port,
		pkt *netsim.Packet, qlen int, tau, hopLat int64) {
		if prev != nil {
			prev(n, sw, port, pkt, qlen, tau, hopLat)
		}
		if pkt.Ack {
			return
		}
		// Switch-resident EWMA update runs on *every* data packet on the
		// link (footnote 10: the update is per-link, not per-flow).
		size := pkt.WireSize(n.ValuesPerHop)
		port.U = pu.updater(port.Spec.Bps).Update(port.U, uint64(tau), uint64(qlen), uint64(size))
		if pkt.DigestQuery != QueryHPCC {
			return
		}
		code := pu.Encode(port.U)
		if code > pkt.Digest {
			pkt.Digest = code // max-aggregation keeps the bottleneck
		}
	}
	return pu, nil
}
