package transport

import (
	"testing"

	"repro/internal/netsim"
)

func TestHPCCFairnessTwoFlows(t *testing.T) {
	// Two long HPCC flows sharing the dumbbell bottleneck must each get a
	// comparable share (the AIMD fairness §6.1 argues is preserved under
	// PINT feedback).
	sim, net, hosts := dumbbell(t, 1<<22)
	pu, err := AttachPINTHook(net, 40_000, 8)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id uint64, src, dst int) *FlowStats {
		cfg := DefaultHPCCConfig(1_000_000_000, 40_000)
		cfg.Mode = FeedbackPINT
		cfg.PintBits = 8
		cfg.DecodeU = pu.Decode
		st := &FlowStats{ID: id, Bytes: 2_000_000}
		if _, err := StartHPCC(net, src, dst, st, cfg); err != nil {
			t.Fatal(err)
		}
		return st
	}
	s1 := mk(1, hosts[0], hosts[2])
	s2 := mk(2, hosts[1], hosts[3])
	sim.Run(400_000_000_000)
	if !s1.Done || !s2.Done {
		t.Fatalf("flows incomplete: %v/%v (acked %d, %d)",
			s1.Done, s2.Done, s1.AckedBytes, s2.AckedBytes)
	}
	r := float64(s1.FCT()) / float64(s2.FCT())
	if r < 0.5 || r > 2 {
		t.Fatalf("identical competing flows finished %.2fx apart", r)
	}
}

func TestHPCCKeepsQueueBelowINTDrivenBDP(t *testing.T) {
	// HPCC's whole point: near-empty queues at high utilization. Track the
	// peak bottleneck backlog with a single saturating flow.
	sim, net, h1, h2 := testNet(t, 1<<22)
	AttachINTHook(net)
	peak := 0
	prev := net.OnDequeue
	net.OnDequeue = func(n *netsim.Network, sw *netsim.SwitchNode, port *netsim.Port,
		pkt *netsim.Packet, qlen int, tau, hopLat int64) {
		prev(n, sw, port, pkt, qlen, tau, hopLat)
		if qlen > peak {
			peak = qlen
		}
	}
	cfg := DefaultHPCCConfig(1_000_000_000, 35_000)
	cfg.Mode = FeedbackINT
	stats := &FlowStats{ID: 1, Bytes: 3_000_000}
	if _, err := StartHPCC(net, h1, h2, stats, cfg); err != nil {
		t.Fatal(err)
	}
	sim.Run(120_000_000_000)
	if !stats.Done {
		t.Fatal("flow incomplete")
	}
	bdp := int(1_000_000_000 / 8 * 35_000 / 1_000_000_000) // ≈ 4.4KB
	if peak > 8*bdp+16_000 {
		t.Fatalf("peak queue %dB far above BDP %dB: control loop broken", peak, bdp)
	}
}

func TestRenoRTTEstimator(t *testing.T) {
	sim, net, h1, h2 := testNet(t, 1<<20)
	stats := &FlowStats{ID: 1, Bytes: 200_000}
	r, err := StartReno(net, h1, h2, stats, DefaultRenoConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(1_000_000_000)
	if !stats.Done {
		t.Fatal("flow incomplete")
	}
	// Base RTT on this line at 1Gbps is ~30-40us; slow start fills the
	// 1MB buffer, so the smoothed estimate legitimately includes several
	// hundred microseconds of self-inflicted queueing (bufferbloat), but
	// it must exceed the base RTT and stay below the buffer-drain bound
	// (~1MB at 1Gbps = 8ms).
	if r.srtt < 25_000 || r.srtt > 8_000_000 {
		t.Fatalf("srtt %.0fns implausible", r.srtt)
	}
	if float64(r.core.rto) < r.srtt {
		t.Fatalf("rto %d below srtt %.0f", r.core.rto, r.srtt)
	}
}

func TestSenderCoreWindowCap(t *testing.T) {
	// HPCC's window clamp: utilization far above eta collapses W toward
	// the minimum; far below grows it toward the cap.
	_, net, h1, h2 := testNet(t, 1<<20)
	cfg := DefaultHPCCConfig(1_000_000_000, 35_000)
	cfg.Mode = FeedbackPINT
	cfg.PintBits = 8
	cfg.DecodeU = func(uint64) float64 { return 0 }
	h, err := StartHPCC(net, h1, h2, &FlowStats{ID: 9, Bytes: 1000}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		h.updateWindow(3.0, int64(i+1)) // heavy overload
	}
	if h.Window() > h.bdp {
		t.Fatalf("window %v not collapsed under overload", h.Window())
	}
	for i := 0; i < 500; i++ {
		h.updateWindow(0.01, int64(100+i)) // idle network
	}
	if h.Window() > 8*h.bdp+1 {
		t.Fatalf("window %v exceeded the 8xBDP cap", h.Window())
	}
	if h.Window() < float64(cfg.MTU) {
		t.Fatal("window below one segment")
	}
}
