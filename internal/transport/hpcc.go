package transport

import (
	"fmt"

	"repro/internal/netsim"
)

// FeedbackMode selects how an HPCC sender obtains link state.
type FeedbackMode int

const (
	// FeedbackINT uses the classic per-hop INT stack: the sender computes
	// each link's normalized inflight from (txBytes, qlen, ts) deltas and
	// reacts to the maximum (the HPCC paper's algorithm).
	FeedbackINT FeedbackMode = iota
	// FeedbackPINT uses PINT's per-packet aggregation: the digest carries
	// only the compressed bottleneck utilization computed by switch-side
	// EWMAs (§4.3, Example #3).
	FeedbackPINT
)

// QueryHPCC is the DigestQuery tag marking packets that carry the HPCC
// congestion-control digest.
const QueryHPCC = 1

// HPCCConfig parameterizes an HPCC sender.
type HPCCConfig struct {
	MTU       int
	BaseRTTNs int64   // T: network base RTT
	Eta       float64 // target utilization (paper: 0.95)
	WAIBytes  float64 // additive increase per update (paper: 80B at 100G)
	MaxStage  int     // paper: 0
	HostBps   int64   // access rate, sets the initial window to one BDP
	InitRTO   int64

	Mode FeedbackMode
	// PINT-specific: width of the whole digest on the wire (global
	// budget), the p-fraction selector, and the utilization decoder.
	PintBits  int
	SelectPkt func(pktID uint64) bool   // nil = every packet
	DecodeU   func(code uint64) float64 // required for FeedbackPINT (unless ExtractU set)
	// ExtractU, when set, replaces the EchoQuery/DecodeU path: given the
	// echoed data-packet ID and full digest it returns the bottleneck
	// utilization and whether this packet carried the HPCC query — how a
	// multi-query execution plan (§6.4) feeds the sender.
	ExtractU   func(pktID, digest uint64) (float64, bool)
	ExtraBytes int // additional fixed overhead, if any
}

// DefaultHPCCConfig returns the paper's recommended settings scaled to a
// host rate.
func DefaultHPCCConfig(hostBps int64, baseRTTNs int64) HPCCConfig {
	return HPCCConfig{
		MTU:       960,
		BaseRTTNs: baseRTTNs,
		Eta:       0.95,
		// The paper uses WAI=80B at 100Gbps with 12.4us RTT; scale the
		// additive increase with BDP so fairness convergence speed is
		// comparable at bench-scale rates.
		WAIBytes: 80 * float64(hostBps) / 100e9 * float64(baseRTTNs) / 12400,
		MaxStage: 0,
		HostBps:  hostBps,
		InitRTO:  8 * baseRTTNs,
	}
}

// HPCC is the window-based HPCC sender.
type HPCC struct {
	core *senderCore
	cfg  HPCCConfig

	w             float64 // current window, bytes
	wc            float64 // reference window, bytes
	incStage      int
	lastUpdateSeq int64

	prevINT []netsim.HopINT
	bdp     float64
	// LastU exposes the most recent utilization estimate (tests, traces).
	LastU float64
}

// StartHPCC creates an HPCC sender/receiver pair for a flow and begins
// transmission now.
func StartHPCC(net *netsim.Network, src, dst int, stats *FlowStats, cfg HPCCConfig) (*HPCC, error) {
	if err := validateFlow(stats.Bytes, cfg.MTU); err != nil {
		return nil, err
	}
	if cfg.Eta <= 0 || cfg.Eta > 1 {
		return nil, fmt.Errorf("transport: eta %v out of (0,1]", cfg.Eta)
	}
	if cfg.Mode == FeedbackPINT && cfg.DecodeU == nil && cfg.ExtractU == nil {
		return nil, fmt.Errorf("transport: PINT feedback requires DecodeU or ExtractU")
	}
	h := &HPCC{cfg: cfg}
	h.bdp = float64(cfg.HostBps) / 8 * float64(cfg.BaseRTTNs) / 1e9
	h.w = h.bdp
	h.wc = h.bdp
	core := &senderCore{
		net:    net,
		host:   net.Host(src),
		flowID: stats.ID,
		dst:    dst,
		size:   stats.Bytes,
		mtu:    cfg.MTU,
		rto:    cfg.InitRTO,
		stats:  stats,
	}
	core.window = func() int64 { return int64(h.w) }
	core.onTimeout = func() {
		// HPCC has no loss-driven control; on the rare timeout fall back
		// to a conservative one-BDP window.
		h.w = max2(h.bdp/8, float64(cfg.MTU))
		h.wc = h.w
	}
	core.decorate = func(pkt *netsim.Packet) {
		pkt.ExtraBytes = cfg.ExtraBytes
		switch cfg.Mode {
		case FeedbackINT:
			// Mark the packet as INT-carrying; switches append HopINT
			// records via the dequeue hook. Seed with capacity so appends
			// don't reallocate per hop.
			pkt.INT = make([]netsim.HopINT, 0, 8)
		case FeedbackPINT:
			pkt.DigestBits = cfg.PintBits
			if cfg.SelectPkt == nil || cfg.SelectPkt(pkt.ID) {
				pkt.DigestQuery = QueryHPCC
			}
		}
	}
	core.onDone = func() {
		net.Host(src).Detach(stats.ID)
		net.Host(dst).Detach(stats.ID)
	}
	h.core = core

	recv := newReceiver(net, net.Host(dst), stats.ID, src)
	net.Host(dst).Attach(stats.ID, recv)
	net.Host(src).Attach(stats.ID, h)
	core.pump()
	return h, nil
}

// Deliver implements netsim.Endpoint for ACKs at the sender.
func (h *HPCC) Deliver(pkt *netsim.Packet) {
	if !pkt.Ack || h.core.done {
		return
	}
	ackSeq := pkt.AckSeq
	switch h.cfg.Mode {
	case FeedbackINT:
		if len(pkt.EchoINT) > 0 {
			if u, ok := h.utilizationFromINT(pkt.EchoINT); ok {
				h.LastU = u
				h.updateWindow(u, ackSeq)
			}
			h.prevINT = append(h.prevINT[:0], pkt.EchoINT...)
		}
	case FeedbackPINT:
		if h.cfg.ExtractU != nil {
			if u, ok := h.cfg.ExtractU(pkt.EchoPktID, pkt.EchoDigest); ok {
				h.LastU = u
				h.updateWindow(u, ackSeq)
			}
		} else if pkt.EchoQuery == QueryHPCC {
			u := h.cfg.DecodeU(pkt.EchoDigest)
			h.LastU = u
			h.updateWindow(u, ackSeq)
		}
	}
	h.core.ackAdvance(ackSeq)
	h.core.armTimer()
	h.core.pump()
}

// utilizationFromINT computes U = max_j u_j from consecutive INT samples,
// following HPCC [46]: u_j = qlen/(B·T) + txRate/B.
func (h *HPCC) utilizationFromINT(cur []netsim.HopINT) (float64, bool) {
	if len(h.prevINT) != len(cur) {
		return 0, false // path changed or first sample: no deltas yet
	}
	tSec := float64(h.cfg.BaseRTTNs) / 1e9
	maxU := 0.0
	for j := range cur {
		if cur[j].SwitchID != h.prevINT[j].SwitchID {
			return 0, false
		}
		b := float64(cur[j].RateBps)
		qTerm := float64(minInt(cur[j].Qlen, h.prevINT[j].Qlen)) * 8 / (b * tSec)
		u := qTerm
		dt := float64(cur[j].TsNs - h.prevINT[j].TsNs)
		if dt > 0 {
			txRate := float64(cur[j].TxBytes-h.prevINT[j].TxBytes) * 8 / dt * 1e9
			u += txRate / b
		}
		if u > maxU {
			maxU = u
		}
	}
	return maxU, true
}

// updateWindow is HPCC's reaction (Algorithm 1 of [46]) with the
// reference-window mechanism: multiplicative adjustment toward eta when
// over-utilized or out of additive stages, additive otherwise; the
// reference W_c advances at most once per RTT (once per window of data).
func (h *HPCC) updateWindow(u float64, ackSeq int64) {
	if u < 0.01 {
		u = 0.01
	}
	if u >= h.cfg.Eta || h.incStage >= h.cfg.MaxStage {
		h.w = h.wc/(u/h.cfg.Eta) + h.cfg.WAIBytes
		if ackSeq > h.lastUpdateSeq {
			h.incStage = 0
			h.wc = h.w
			h.lastUpdateSeq = h.core.sndNxt
		}
	} else {
		h.w = h.wc + h.cfg.WAIBytes
		if ackSeq > h.lastUpdateSeq {
			h.incStage++
			h.wc = h.w
			h.lastUpdateSeq = h.core.sndNxt
		}
	}
	// Clamp: at least one segment, at most 8 BDP.
	if h.w < float64(h.cfg.MTU) {
		h.w = float64(h.cfg.MTU)
	}
	if wMax := 8 * h.bdp; h.w > wMax {
		h.w = wMax
	}
}

// Window exposes the current window in bytes (tests).
func (h *HPCC) Window() float64 { return h.w }

// Done reports completion.
func (h *HPCC) Done() bool { return h.core.done }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
