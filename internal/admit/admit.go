// Package admit is the collector's multi-tenant QoS layer: per-tenant
// token-bucket quotas plus an adaptive (AIMD) estimate of what the sink
// can absorb, combined into one per-frame admission decision.
//
// The design premise is PINT's own: accuracy is the currency. When a
// tenant offers more than its quota — or the whole collector offers more
// than the sink keeps up with — the layer does not stall the exporter
// behind TCP backpressure or drop frames blindly. It admits digests at a
// known sampling probability p, chosen per frame, and the realized
// admitted/offered ratio is published per tenant so every query answer
// carries its exact error inflation: count-style answers scale by 1/p̂,
// KLL-backed quantile ranks widen by a computable ε (see TenantStats).
// Degradation is a measured accuracy trade, not data loss of unknown
// shape.
//
// Shedding is stateless and reproducible: a packet survives iff a
// per-tenant seeded hash of (flow, packet ID) falls under p. The
// admitted subset is a pure function of (policy seed, packet, p) — two
// runs offering the same packets under the same decisions shed the same
// packets, regardless of connection interleaving.
//
// Policy is declarative (Policy/Quota values, not wired-in behavior) and
// everything is driven by an injectable clock, so admission dynamics are
// deterministic under test.
package admit

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Clock is the layer's time source: monotonic-ish nanoseconds. The
// default reads the wall clock; tests and deterministic scenarios inject
// a scripted one.
type Clock func() uint64

func defaultClock() uint64 { return uint64(time.Now().UnixNano()) }

// DefaultTenant is the tenant a session without a Hello tenant label
// (a v2 exporter, or a v3 one that left it empty) is accounted under.
const DefaultTenant = "default"

// DefaultMinSample is the sampling-probability floor applied when a
// Quota does not set its own: even an unboundedly over-quota tenant
// keeps 1% of its digests, so its answers stay statistically usable
// (with a known, published error) rather than going dark.
const DefaultMinSample = 0.01

// Quota is one tenant's admission contract.
type Quota struct {
	// Rate is the sustained admitted-packet budget in packets/second.
	// 0 means unlimited (no quota shedding for this tenant).
	Rate float64
	// Burst is the token-bucket depth in packets — how far above Rate a
	// tenant may briefly spike before sampling kicks in. 0 with a
	// non-zero Rate defaults to one second's worth (Rate).
	Burst float64
	// MinSample floors the sampling probability for an over-quota
	// tenant. 0 means DefaultMinSample.
	MinSample float64
}

// valid normalizes and checks one quota.
func (q Quota) valid(who string) (Quota, error) {
	switch {
	case q.Rate < 0 || math.IsNaN(q.Rate) || math.IsInf(q.Rate, 0):
		return q, fmt.Errorf("admit: %s: quota rate %v out of range", who, q.Rate)
	case q.Burst < 0 || math.IsNaN(q.Burst) || math.IsInf(q.Burst, 0):
		return q, fmt.Errorf("admit: %s: quota burst %v out of range", who, q.Burst)
	case q.MinSample < 0 || q.MinSample > 1 || math.IsNaN(q.MinSample):
		return q, fmt.Errorf("admit: %s: min sample %v outside [0,1]", who, q.MinSample)
	}
	if q.Rate > 0 && q.Burst == 0 {
		q.Burst = q.Rate
	}
	if q.MinSample == 0 {
		q.MinSample = DefaultMinSample
	}
	return q, nil
}

// Policy is the collector's declarative QoS configuration: what each
// tenant may sustain, and (optionally) how the global capacity estimate
// adapts to sink stall feedback. The zero Policy disables the layer
// entirely — every decision admits everything, byte-identical to a
// collector built before tenancy existed.
type Policy struct {
	// Default is the quota for tenants not listed in Tenants (including
	// DefaultTenant unless listed explicitly).
	Default Quota
	// Tenants maps tenant names to their quotas.
	Tenants map[string]Quota
	// Capacity configures the AIMD controller gating total post-quota
	// admission on sink stall feedback. Zero disables it.
	Capacity CapacityConfig
	// Seed keys the per-tenant shedding hash; runs sharing a seed shed
	// identical packet subsets.
	Seed uint64
	// Clock overrides the time source (tests, deterministic scenarios).
	Clock Clock
}

// Enabled reports whether the policy does anything at all.
func (p Policy) Enabled() bool {
	return p.Default.Rate > 0 || len(p.Tenants) > 0 || p.Capacity.enabled()
}

// Validate normalizes the policy (filling defaulted burst depths,
// sampling floors, and AIMD parameters) and rejects malformed values.
func (p Policy) Validate() (Policy, error) {
	var err error
	if p.Default, err = p.Default.valid("default quota"); err != nil {
		return p, err
	}
	if len(p.Tenants) > 0 {
		norm := make(map[string]Quota, len(p.Tenants))
		for name, q := range p.Tenants {
			if name == "" {
				return p, fmt.Errorf("admit: empty tenant name in policy")
			}
			if norm[name], err = q.valid("tenant " + name); err != nil {
				return p, err
			}
		}
		p.Tenants = norm
	}
	if p.Capacity, err = p.Capacity.valid(); err != nil {
		return p, err
	}
	if p.Clock == nil {
		p.Clock = defaultClock
	}
	return p, nil
}

// quotaFor resolves one tenant's quota under the policy.
func (p Policy) quotaFor(name string) Quota {
	if q, ok := p.Tenants[name]; ok {
		return q
	}
	return p.Default
}

// ParsePolicy builds the quota side of a Policy from a flag-friendly
// spec: comma-separated `name=rate[/burst[/minsample]]` entries, where
// the name `*` sets the default quota and rate is in packets/second.
//
//	hog=5000
//	hog=5000/20000,*=1e6
//	batch=50000/50000/0.05
//
// An empty spec returns the zero (disabled) Policy.
func ParsePolicy(spec string) (Policy, error) {
	var p Policy
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, val, ok := strings.Cut(entry, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return Policy{}, fmt.Errorf("admit: bad quota entry %q (want name=rate[/burst[/minsample]])", entry)
		}
		var q Quota
		parts := strings.Split(val, "/")
		if len(parts) > 3 {
			return Policy{}, fmt.Errorf("admit: bad quota entry %q: too many / fields", entry)
		}
		for i, part := range parts {
			f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return Policy{}, fmt.Errorf("admit: bad quota entry %q: %v", entry, err)
			}
			switch i {
			case 0:
				q.Rate = f
			case 1:
				q.Burst = f
			case 2:
				q.MinSample = f
			}
		}
		if name == "*" {
			p.Default = q
			continue
		}
		if p.Tenants == nil {
			p.Tenants = map[string]Quota{}
		}
		if _, dup := p.Tenants[name]; dup {
			return Policy{}, fmt.Errorf("admit: tenant %q listed twice", name)
		}
		p.Tenants[name] = q
	}
	if _, err := p.Validate(); err != nil {
		return Policy{}, err
	}
	return p, nil
}

// Threshold32 maps a sampling probability to the 32-bit keep threshold
// the shedding hash is compared against: a packet whose (seeded) hash's
// top 32 bits fall strictly under the threshold is admitted. p ≥ 1
// admits everything, p ≤ 0 nothing; resolution is 2⁻³².
func Threshold32(p float64) uint64 {
	if p >= 1 {
		return 1 << 32
	}
	if p <= 0 {
		return 0
	}
	// floor(x+0.5) == math.Round(x) for positive x, without the
	// soft-float call in the per-frame path.
	return uint64(p*(1<<32) + 0.5)
}
