package admit

import (
	"math"
	"sort"
	"sync"

	"repro/internal/hash"
)

// Admitter is the per-collector admission front: one Tenant meter per
// tenant name, all sharing one AIMD capacity controller. Sessions
// resolve their Tenant at handshake and consult it per frame; meters
// outlive sessions, so a tenant's accounting (and its error envelope)
// survives reconnects.
type Admitter struct {
	policy Policy
	ctrl   *Controller

	mu      sync.Mutex
	tenants map[string]*Tenant
}

// NewAdmitter validates policy and builds the admission front. Returns
// nil (admit everything, account nothing) for a disabled policy —
// callers may use a nil *Admitter freely.
func NewAdmitter(policy Policy) (*Admitter, error) {
	if !policy.Enabled() {
		if _, err := policy.Validate(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	p, err := policy.Validate()
	if err != nil {
		return nil, err
	}
	ctrl, err := NewController(p.Capacity, p.Clock)
	if err != nil {
		return nil, err
	}
	return &Admitter{policy: p, ctrl: ctrl, tenants: map[string]*Tenant{}}, nil
}

// Tenant resolves (lazily creating) the meter for a tenant name; the
// empty name is DefaultTenant. Nil receiver returns nil — the admit-
// everything meter.
func (a *Admitter) Tenant(name string) *Tenant {
	if a == nil {
		return nil
	}
	if name == "" {
		name = DefaultTenant
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	t, ok := a.tenants[name]
	if !ok {
		q := a.policy.quotaFor(name)
		t = &Tenant{
			name:  name,
			quota: q,
			seed:  hash.Seed(a.policy.Seed).Derive(hash.Seed(0x7E4A47).HashString(name)),
			clock: a.policy.Clock,
			ctrl:  a.ctrl,
		}
		t.last = t.clock()
		t.tokens = q.Burst
		a.tenants[name] = t
	}
	return t
}

// ReportStall feeds one sink hand-off's stall verdict to the capacity
// controller (no-op without one, or on a nil Admitter).
func (a *Admitter) ReportStall(stalled bool) {
	if a == nil {
		return
	}
	a.ctrl.Observe(stalled)
}

// Capacity returns the shared controller's telemetry and whether a
// controller is configured at all.
func (a *Admitter) Capacity() (CapacityStats, bool) {
	if a == nil || a.ctrl == nil {
		return CapacityStats{}, false
	}
	return a.ctrl.Stats(), true
}

// Snapshot returns every known tenant's stats, sorted by name.
func (a *Admitter) Snapshot() []TenantStats {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	out := make([]TenantStats, 0, len(a.tenants))
	for _, t := range a.tenants {
		out = append(out, t.Stats())
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Tenant is one tenant's admission meter: a token bucket at the quota
// rate, the seeded shedding hash, and the cumulative offered/admitted
// accounting the error envelope derives from.
type Tenant struct {
	name  string
	quota Quota
	seed  hash.Seed
	clock Clock
	ctrl  *Controller

	mu       sync.Mutex
	tokens   float64
	last     uint64
	sessions int64
	offered  uint64
	admitted uint64
	shed     uint64
}

// Decision is one frame's admission verdict.
type Decision struct {
	// P is the sampling probability: 1 admits the frame whole, lower
	// values shed probabilistically via Keep.
	P float64
	// threshold is Threshold32(P), precomputed for the per-packet test.
	threshold uint64
}

// Admit reports whether the decision admits everything.
func (d Decision) Admit() bool { return d.P >= 1 }

// Decide opens one frame of n offered packets: it refills the quota
// bucket, draws from it, and — when the bucket cannot cover the frame —
// returns the sampling probability to apply, floored at the quota's
// MinSample and gated by the shared capacity controller. A nil meter
// admits everything. The hot path is a handful of float ops under one
// uncontended mutex (see BenchmarkAdmitDecision).
func (t *Tenant) Decide(n int) Decision {
	if t == nil || n <= 0 {
		return Decision{P: 1, threshold: 1 << 32}
	}
	fn := float64(n)
	now := t.clock()
	t.mu.Lock()
	t.offered += uint64(n)
	p := 1.0
	if t.quota.Rate > 0 {
		if now > t.last {
			if t.tokens += t.quota.Rate * float64(now-t.last) / 1e9; t.tokens > t.quota.Burst {
				t.tokens = t.quota.Burst
			}
			t.last = now
		}
		if t.tokens >= fn {
			t.tokens -= fn
		} else {
			if p = t.tokens / fn; p < t.quota.MinSample {
				p = t.quota.MinSample
			}
			t.tokens = 0
		}
	}
	t.mu.Unlock()
	if t.ctrl != nil {
		p *= t.ctrl.grantAt(now, fn*p)
	}
	if p >= 1 {
		return Decision{P: 1, threshold: 1 << 32}
	}
	return Decision{P: p, threshold: Threshold32(p)}
}

// Keep applies the decision to one packet: admitted iff the seeded hash
// of (flow, packet ID) falls under the decision's threshold. The verdict
// is a pure function of (policy seed, tenant name, flow, pktID, P) —
// identical runs shed identical packets however their connections
// interleave. Only meaningful on a meter the decision came from.
func (t *Tenant) Keep(d Decision, flow, pktID uint64) bool {
	if d.P >= 1 {
		return true
	}
	return t.seed.Hash2(flow, pktID)>>32 < d.threshold
}

// Account records a frame's realized outcome: kept of total packets
// survived the decision. Nil meters ignore it.
func (t *Tenant) Account(kept, total int) {
	if t == nil || total <= 0 {
		return
	}
	t.mu.Lock()
	t.admitted += uint64(kept)
	t.shed += uint64(total - kept)
	t.mu.Unlock()
}

// AddSession adjusts the live-session count (±1 at session open/close).
func (t *Tenant) AddSession(delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sessions += delta
	t.mu.Unlock()
}

// Name returns the tenant's resolved name ("" on nil).
func (t *Tenant) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Stats returns the tenant's point-in-time accounting and derived
// error envelope.
func (t *Tenant) Stats() TenantStats {
	t.mu.Lock()
	s := TenantStats{
		Tenant:    t.name,
		Sessions:  t.sessions,
		Offered:   t.offered,
		Admitted:  t.admitted,
		Shed:      t.shed,
		QuotaRate: t.quota.Rate,
	}
	t.mu.Unlock()
	s.derive()
	return s
}

// quantileDelta is the failure probability the quantile-rank widening is
// quoted at: the published ε holds with probability ≥ 1-δ.
const quantileDelta = 0.05

// TenantStats is one tenant's accounting and error envelope, served
// under the "tenants" section of /stats.
//
// The envelope quantifies what shedding cost each query kind:
//
//   - Count-style answers (per-packet counters, utilization series,
//     frequency sample counts) were computed from an Admitted-sized
//     sample of an Offered-sized population, so their expectations scale
//     by CountScale = Offered/Admitted = 1/p̂.
//   - KLL-backed quantile answers (latency percentiles) keep their
//     sketch accuracy but gain sampling error: by Hoeffding, the rank of
//     a reported quantile is within QuantileRankError =
//     sqrt((1-p̂)·ln(2/δ)/(2·Admitted)) of the true rank with
//     probability ≥ 1-δ (δ = 0.05). The (1-p̂) factor is the
//     finite-population correction — it vanishes when nothing was shed.
type TenantStats struct {
	Tenant   string `json:"tenant"`
	Sessions int64  `json:"sessions"`
	// Offered/Admitted/Shed count packets over the tenant's lifetime;
	// Offered = Admitted + Shed.
	Offered  uint64 `json:"offered"`
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
	// QuotaRate is the configured sustained budget in packets/second
	// (0 = unlimited).
	QuotaRate float64 `json:"quota_rate"`
	// SampleRate is p̂ = Admitted/Offered (1 when nothing was offered).
	SampleRate float64 `json:"sample_rate"`
	// CountScale is 1/p̂ — multiply count-style answers by it. 0 when
	// everything offered was shed (no data to scale).
	CountScale float64 `json:"count_scale"`
	// QuantileRankError is the rank-space half-width ε added to
	// KLL-backed quantile answers by sampling, at δ = 0.05.
	QuantileRankError float64 `json:"quantile_rank_error"`
}

// derive recomputes the envelope fields from the counters.
func (s *TenantStats) derive() {
	s.SampleRate, s.CountScale, s.QuantileRankError = 1, 1, 0
	if s.Offered == 0 {
		return
	}
	s.SampleRate = float64(s.Admitted) / float64(s.Offered)
	if s.Admitted == 0 {
		s.CountScale = 0
		s.QuantileRankError = 1
		return
	}
	s.CountScale = float64(s.Offered) / float64(s.Admitted)
	s.QuantileRankError = math.Sqrt((1 - s.SampleRate) * math.Log(2/quantileDelta) / (2 * float64(s.Admitted)))
}

// Accumulate folds another tenant's counters into s (the federation
// frontend summing one tenant's meters across fleet members) and
// recomputes the derived envelope. Quota rates add: each member
// enforces its own share.
func (s *TenantStats) Accumulate(o TenantStats) {
	s.Sessions += o.Sessions
	s.Offered += o.Offered
	s.Admitted += o.Admitted
	s.Shed += o.Shed
	s.QuotaRate += o.QuotaRate
	s.derive()
}

// MergeTenantStats folds src into dst by tenant name (both and the
// result sorted by name) — the frontend's rule for presenting fleet-wide
// per-tenant totals.
func MergeTenantStats(dst, src []TenantStats) []TenantStats {
	byName := make(map[string]int, len(dst))
	for i := range dst {
		byName[dst[i].Tenant] = i
	}
	for _, o := range src {
		if i, ok := byName[o.Tenant]; ok {
			dst[i].Accumulate(o)
			continue
		}
		o.derive()
		byName[o.Tenant] = len(dst)
		dst = append(dst, o)
	}
	sort.Slice(dst, func(i, j int) bool { return dst[i].Tenant < dst[j].Tenant })
	return dst
}
