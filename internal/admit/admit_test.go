package admit

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/hash"
)

// testCapacity is the AIMD config every deterministic test scripts
// against: round numbers so the expected sequences are hand-checkable.
func testCapacity() CapacityConfig {
	return CapacityConfig{
		Initial: 1000, Min: 100, Max: 2000, Probe: 100, Beta: 0.5,
		ProbeEvery: time.Second, Window: time.Second, Burst: 0.1,
	}
}

// TestAIMDSequence pins the controller's probe/backoff dynamics under a
// scripted clock: additive increase after every stall-free window,
// multiplicative decrease on stall feedback, at most one backoff per
// window, and clamping at both bounds.
func TestAIMDSequence(t *testing.T) {
	now := uint64(1e9)
	clock := func() uint64 { return now }
	c, err := NewController(testCapacity(), clock)
	if err != nil {
		t.Fatal(err)
	}
	step := func(at float64, stalled bool, wantCap float64) {
		t.Helper()
		now = uint64(at * 1e9)
		c.Observe(stalled)
		if got := c.Capacity(); got != wantCap {
			t.Fatalf("t=%vs stalled=%v: capacity %v, want %v", at, stalled, got, wantCap)
		}
	}
	step(2.0, false, 1100) // quiet window elapsed: probe +100
	step(2.5, true, 550)   // stall: ×0.5
	step(2.9, true, 550)   // second stall inside the window: absorbed
	step(3.6, true, 275)   // window elapsed: next backoff lands
	step(4.7, false, 375)  // stall-free window: probing resumes
	step(5.8, false, 475)
	st := c.Stats()
	if st.Stalls != 3 || st.Backoffs != 2 || st.Probes != 3 {
		t.Fatalf("stats %+v, want stalls=3 backoffs=2 probes=3", st)
	}
	// Collapse to the floor: stalls every 1.1s halve until Min clamps.
	for i := 0; i < 6; i++ {
		now += uint64(1.1e9)
		c.Observe(true)
	}
	if got := c.Capacity(); got != 100 {
		t.Fatalf("capacity after collapse %v, want the 100 floor", got)
	}
	// Quiet recovery: probes every window until Max clamps.
	for i := 0; i < 40; i++ {
		now += uint64(1.1e9)
		c.Observe(false)
	}
	if got := c.Capacity(); got != 2000 {
		t.Fatalf("capacity after recovery %v, want the 2000 ceiling", got)
	}
}

// TestGrantBucket pins the admission bucket: grants are whole while
// tokens cover the frame, fractional when they do not, and refill at
// the capacity rate up to the burst depth.
func TestGrantBucket(t *testing.T) {
	now := uint64(1e9)
	clock := func() uint64 { return now }
	c, err := NewController(testCapacity(), clock)
	if err != nil {
		t.Fatal(err)
	}
	if g := c.Grant(50); g != 1 { // bucket opens full: 1000 × 0.1s = 100
		t.Fatalf("grant within bucket: %v, want 1", g)
	}
	if g := c.Grant(100); math.Abs(g-0.5) > 1e-9 { // 50 tokens left of 100 asked
		t.Fatalf("fractional grant: %v, want 0.5", g)
	}
	if g := c.Grant(10); g != 0 {
		t.Fatalf("empty-bucket grant: %v, want 0", g)
	}
	now += uint64(0.05e9) // 50ms at 1000/s refills 50 tokens
	if g := c.Grant(50); g != 1 {
		t.Fatalf("post-refill grant: %v, want 1", g)
	}
	now += uint64(10e9) // a long idle caps at the burst depth, not 10k
	g := c.Grant(200)
	if want := c.Capacity() * 0.1 / 200; math.Abs(g-want) > 1e-9 || g >= 1 {
		t.Fatalf("burst-capped grant: %v, want %v", g, want)
	}
}

// TestCapacityProperty is the controller's safety invariant under
// randomized load and stall patterns: cumulative expected admission
// never exceeds peak-capacity × (elapsed + burst window). Whatever is
// offered and however the sink stalls, admission is bounded by the
// estimate.
func TestCapacityProperty(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		rng := hash.NewRNG(seed)
		now := uint64(1e9)
		clock := func() uint64 { return now }
		cfg := testCapacity()
		c, err := NewController(cfg, clock)
		if err != nil {
			t.Fatal(err)
		}
		start := now
		capMax := c.Capacity()
		for i := 0; i < 2000; i++ {
			now += uint64(rng.Intn(20e6)) // 0-20ms between frames
			c.Grant(float64(rng.Intn(500)))
			if rng.Bool(0.3) {
				c.Observe(rng.Bool(0.5))
			}
			if cap := c.Capacity(); cap > capMax {
				capMax = cap
			}
			elapsed := float64(now-start) / 1e9
			bound := capMax * (elapsed + cfg.Burst)
			if granted := c.Granted(); granted > bound+1e-6 {
				t.Fatalf("seed %d step %d: granted %v exceeds capacity bound %v (capMax %v, elapsed %vs)",
					seed, i, granted, bound, capMax, elapsed)
			}
		}
	}
}

// TestStarvation is the quota-isolation guarantee: a hog offering 10×
// its quota cannot push a victim below its own quota. Both tenants run
// over one Admitter (shared capacity controller included); the victim
// offers 20% above its quota and must land within 10% of it.
func TestStarvation(t *testing.T) {
	now := uint64(1e9)
	policy := Policy{
		Tenants: map[string]Quota{
			"hog":    {Rate: 50_000, Burst: 5_000},
			"victim": {Rate: 50_000, Burst: 5_000},
		},
		Capacity: CapacityConfig{Initial: 500_000},
		Seed:     7,
		Clock:    func() uint64 { return now },
	}
	a, err := NewAdmitter(policy)
	if err != nil {
		t.Fatal(err)
	}
	hog, victim := a.Tenant("hog"), a.Tenant("victim")
	rng := hash.NewRNG(42)
	offer := func(tn *Tenant, n int) {
		d := tn.Decide(n)
		kept := 0
		for i := 0; i < n; i++ {
			if tn.Keep(d, rng.Uint64(), rng.Uint64()) {
				kept++
			}
		}
		tn.Account(kept, n)
	}
	const seconds = 10
	for tick := 0; tick < seconds*1000; tick++ {
		now += 1e6        // 1ms
		offer(hog, 500)   // 500k pkt/s offered against a 50k quota
		offer(victim, 60) // 60k pkt/s offered against a 50k quota
	}
	snap := a.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("tenants %d, want 2", len(snap))
	}
	byName := map[string]TenantStats{}
	for _, s := range snap {
		byName[s.Tenant] = s
	}
	vRate := float64(byName["victim"].Admitted) / seconds
	if math.Abs(vRate-50_000) > 5_000 {
		t.Fatalf("victim throughput %v pkt/s, want within 10%% of its 50000 quota", vRate)
	}
	hRate := float64(byName["hog"].Admitted) / seconds
	if math.Abs(hRate-50_000) > 5_000 {
		t.Fatalf("hog shed to %v pkt/s, want within 10%% of its 50000 quota", hRate)
	}
	if byName["hog"].Shed == 0 || byName["victim"].Offered != seconds*60_000 {
		t.Fatalf("accounting off: %+v", byName)
	}
	if cs, ok := a.Capacity(); !ok || cs.Capacity < 500_000 {
		t.Fatalf("capacity stats %+v, %v", cs, ok)
	}
}

// TestDecideDeterministic pins the quota meter's frame-by-frame
// decisions under a scripted clock.
func TestDecideDeterministic(t *testing.T) {
	now := uint64(1e9)
	a, err := NewAdmitter(Policy{
		Default: Quota{Rate: 1000, Burst: 100, MinSample: 0.05},
		Clock:   func() uint64 { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	tn := a.Tenant("") // empty name resolves to the default tenant
	if tn.Name() != DefaultTenant {
		t.Fatalf("tenant name %q, want %q", tn.Name(), DefaultTenant)
	}
	if d := tn.Decide(100); d.P != 1 { // opening burst covers it
		t.Fatalf("burst frame: p=%v, want 1", d.P)
	}
	if d := tn.Decide(60); d.P != 0.05 { // empty bucket → the floor
		t.Fatalf("drained frame: p=%v, want the 0.05 floor", d.P)
	}
	now += uint64(0.03e9) // 30ms at 1000/s = 30 tokens
	if d := tn.Decide(60); math.Abs(d.P-0.5) > 1e-9 {
		t.Fatalf("partial frame: p=%v, want 0.5", d.P)
	}
	now += uint64(3600e9) // an hour idle refills to burst, not 3.6M
	if d := tn.Decide(101); math.Abs(d.P-100.0/101) > 1e-12 {
		t.Fatalf("capped refill: p=%v, want 100/101", d.P)
	}
}

// TestKeepReproducible: the shed subset is a pure function of (seed,
// tenant, flow, pktID, p) — and tracks p closely in proportion.
func TestKeepReproducible(t *testing.T) {
	mk := func() *Tenant {
		a, err := NewAdmitter(Policy{Default: Quota{Rate: 1}, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		return a.Tenant("team-a")
	}
	t1, t2 := mk(), mk()
	d := Decision{P: 0.3, threshold: Threshold32(0.3)}
	kept := 0
	for pkt := uint64(0); pkt < 20000; pkt++ {
		k1 := t1.Keep(d, 7, pkt)
		if k2 := t2.Keep(d, 7, pkt); k1 != k2 {
			t.Fatalf("pkt %d: verdicts differ across identically-seeded meters", pkt)
		}
		if k1 {
			kept++
		}
	}
	if rate := float64(kept) / 20000; math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("keep rate %v, want ≈0.3", rate)
	}
	// A different tenant (different derived seed) sheds a different subset.
	a, _ := NewAdmitter(Policy{Default: Quota{Rate: 1}, Seed: 99})
	other := a.Tenant("team-b")
	same := 0
	for pkt := uint64(0); pkt < 20000; pkt++ {
		if t1.Keep(d, 7, pkt) == other.Keep(d, 7, pkt) {
			same++
		}
	}
	if same == 20000 {
		t.Fatal("two tenants shed identical subsets — seeds not derived per tenant")
	}
}

func TestThreshold32(t *testing.T) {
	if Threshold32(1) != 1<<32 || Threshold32(1.5) != 1<<32 {
		t.Fatal("p≥1 must admit everything")
	}
	if Threshold32(0) != 0 || Threshold32(-1) != 0 {
		t.Fatal("p≤0 must admit nothing")
	}
	if got := Threshold32(0.5); got != 1<<31 {
		t.Fatalf("Threshold32(0.5) = %d, want %d", got, uint64(1)<<31)
	}
}

func TestParsePolicy(t *testing.T) {
	p, err := ParsePolicy("hog=5000/20000,*=1e6,batch=500/500/0.05")
	if err != nil {
		t.Fatal(err)
	}
	if p.Default.Rate != 1e6 {
		t.Fatalf("default rate %v", p.Default.Rate)
	}
	if q := p.Tenants["hog"]; q.Rate != 5000 || q.Burst != 20000 {
		t.Fatalf("hog quota %+v", q)
	}
	if q := p.Tenants["batch"]; q.MinSample != 0.05 {
		t.Fatalf("batch quota %+v", q)
	}
	if !p.Enabled() {
		t.Fatal("parsed policy reports disabled")
	}
	if p, err := ParsePolicy("  "); err != nil || p.Enabled() {
		t.Fatalf("empty spec: %v %+v", err, p)
	}
	for _, bad := range []string{"noequals", "=5", "a=xyz", "a=1/2/3/4", "a=1,a=2", "a=-5"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
}

func TestPolicyValidate(t *testing.T) {
	for _, bad := range []Policy{
		{Default: Quota{Rate: math.Inf(1)}},
		{Default: Quota{MinSample: 1.5}},
		{Tenants: map[string]Quota{"": {Rate: 1}}},
		{Capacity: CapacityConfig{Initial: 1000, Min: 2000}},
		{Capacity: CapacityConfig{Initial: 1000, Beta: 1.5}},
		{Capacity: CapacityConfig{Min: 5}}, // bounds without an Initial
	} {
		if _, err := bad.Validate(); err == nil {
			t.Fatalf("policy %+v validated", bad)
		}
		if _, err := NewAdmitter(bad); err == nil {
			t.Fatalf("NewAdmitter accepted %+v", bad)
		}
	}
	norm, err := Policy{Default: Quota{Rate: 500}}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Default.Burst != 500 || norm.Default.MinSample != DefaultMinSample {
		t.Fatalf("defaults not filled: %+v", norm.Default)
	}
	// The zero policy is valid, disabled, and yields a nil Admitter whose
	// whole surface is admit-everything no-ops.
	a, err := NewAdmitter(Policy{})
	if err != nil || a != nil {
		t.Fatalf("zero policy: admitter %v, err %v", a, err)
	}
	tn := a.Tenant("anyone")
	if tn != nil {
		t.Fatal("nil admitter returned a meter")
	}
	if d := tn.Decide(1000); !d.Admit() {
		t.Fatal("nil meter must admit everything")
	}
	tn.Account(1, 1)
	tn.AddSession(1)
	a.ReportStall(true)
	if s := a.Snapshot(); s != nil {
		t.Fatalf("nil admitter snapshot %v", s)
	}
}

func TestTenantStatsEnvelope(t *testing.T) {
	s := TenantStats{Tenant: "a", Offered: 1000, Admitted: 250, Shed: 750}
	s.derive()
	if s.SampleRate != 0.25 || s.CountScale != 4 {
		t.Fatalf("envelope %+v", s)
	}
	want := math.Sqrt(0.75 * math.Log(2/0.05) / 500)
	if math.Abs(s.QuantileRankError-want) > 1e-12 {
		t.Fatalf("rank error %v, want %v", s.QuantileRankError, want)
	}
	// Nothing shed → no inflation at all.
	clean := TenantStats{Tenant: "b", Offered: 500, Admitted: 500}
	clean.derive()
	if clean.SampleRate != 1 || clean.CountScale != 1 || clean.QuantileRankError != 0 {
		t.Fatalf("clean envelope %+v", clean)
	}
	// Everything shed → scale is meaningless (0), rank error saturates.
	dark := TenantStats{Offered: 10}
	dark.derive()
	if dark.CountScale != 0 || dark.QuantileRankError != 1 {
		t.Fatalf("dark envelope %+v", dark)
	}

	s.Accumulate(TenantStats{Offered: 1000, Admitted: 750, Shed: 250, Sessions: 2})
	if s.Offered != 2000 || s.Admitted != 1000 || s.SampleRate != 0.5 || s.CountScale != 2 {
		t.Fatalf("accumulated envelope %+v", s)
	}

	merged := MergeTenantStats(
		[]TenantStats{{Tenant: "b", Offered: 10, Admitted: 10}},
		[]TenantStats{{Tenant: "a", Offered: 4, Admitted: 2}, {Tenant: "b", Offered: 10, Admitted: 5}},
	)
	if len(merged) != 2 || merged[0].Tenant != "a" || merged[1].Tenant != "b" {
		t.Fatalf("merge %+v", merged)
	}
	if merged[1].Admitted != 15 || merged[1].CountScale != 20.0/15 {
		t.Fatalf("merge totals %+v", merged[1])
	}
}

// TestAdmitterSnapshotOrder: snapshots list tenants sorted by name, and
// meters persist across lookups (accounting survives reconnects).
func TestAdmitterSnapshotOrder(t *testing.T) {
	a, err := NewAdmitter(Policy{Default: Quota{Rate: 100}})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"zeta", "alpha", "mid"} {
		a.Tenant(name).AddSession(1)
	}
	if again := a.Tenant("zeta"); again != a.Tenant("zeta") {
		t.Fatal("meter identity not stable across lookups")
	}
	names := []string{}
	for _, s := range a.Snapshot() {
		names = append(names, s.Tenant)
	}
	if strings.Join(names, ",") != "alpha,mid,zeta" {
		t.Fatalf("snapshot order %v", names)
	}
}
