package admit

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// CapacityConfig shapes the AIMD capacity controller: a congestion
// window over the sink's ingest rate, probed upward additively while the
// sink keeps up and cut multiplicatively when stall feedback arrives —
// TCP's CWND discipline applied to admission instead of transmission.
type CapacityConfig struct {
	// Initial is the starting capacity estimate in packets/second.
	// 0 disables the controller entirely (quotas still apply).
	Initial float64
	// Min and Max clamp the estimate. Min defaults to Initial/64 (the
	// deepest a congestion collapse can cut), Max to 64×Initial.
	Min, Max float64
	// Probe is the additive increase in packets/second applied after
	// every stall-free ProbeEvery interval. Defaults to Initial/16.
	Probe float64
	// Beta is the multiplicative decrease applied on stall feedback,
	// in (0,1). Defaults to 0.5.
	Beta float64
	// ProbeEvery is the additive-increase cadence. Defaults to 1s.
	ProbeEvery time.Duration
	// Window is the stall-feedback sliding window: at most one backoff
	// per window, and probing resumes only after a stall-free window.
	// Defaults to ProbeEvery.
	Window time.Duration
	// Burst is the admission bucket depth in seconds of capacity — how
	// much of an idle period's unused budget may be spent at once.
	// Defaults to 0.1s.
	Burst float64
}

func (c CapacityConfig) enabled() bool { return c.Initial > 0 }

func (c CapacityConfig) valid() (CapacityConfig, error) {
	if !c.enabled() {
		if c != (CapacityConfig{}) && c.Initial <= 0 {
			return c, fmt.Errorf("admit: capacity config without a positive Initial")
		}
		return c, nil
	}
	if math.IsNaN(c.Initial) || math.IsInf(c.Initial, 0) {
		return c, fmt.Errorf("admit: capacity initial %v out of range", c.Initial)
	}
	if c.Min == 0 {
		c.Min = c.Initial / 64
	}
	if c.Max == 0 {
		c.Max = c.Initial * 64
	}
	if c.Probe == 0 {
		c.Probe = c.Initial / 16
	}
	if c.Beta == 0 {
		c.Beta = 0.5
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = time.Second
	}
	if c.Window == 0 {
		c.Window = c.ProbeEvery
	}
	if c.Burst == 0 {
		c.Burst = 0.1
	}
	switch {
	case c.Min <= 0 || c.Max < c.Min || c.Initial < c.Min || c.Initial > c.Max:
		return c, fmt.Errorf("admit: capacity bounds min=%v initial=%v max=%v inconsistent", c.Min, c.Initial, c.Max)
	case c.Probe <= 0:
		return c, fmt.Errorf("admit: capacity probe %v must be positive", c.Probe)
	case c.Beta <= 0 || c.Beta >= 1:
		return c, fmt.Errorf("admit: capacity beta %v outside (0,1)", c.Beta)
	case c.ProbeEvery <= 0 || c.Window <= 0:
		return c, fmt.Errorf("admit: capacity probe/window cadence must be positive")
	case c.Burst <= 0:
		return c, fmt.Errorf("admit: capacity burst %v must be positive", c.Burst)
	}
	return c, nil
}

// Controller is the AIMD capacity estimator plus its admission bucket.
// All methods are safe for concurrent use; every session feeding the
// collector shares one Controller.
//
// The invariant its property test pins: over any run, the total expected
// packets granted never exceeds the integral of the capacity estimate
// over time plus one bucket depth — whatever the offered load and
// whatever the stall pattern, admission is bounded by the estimate.
type Controller struct {
	cfg   CapacityConfig
	clock Clock

	mu          sync.Mutex
	capacity    float64 // current estimate, packets/second
	tokens      float64 // admission bucket, packets
	last        uint64  // last refill instant
	lastProbe   uint64  // last additive increase
	lastBackoff uint64  // last multiplicative decrease
	lastStall   uint64  // last stall observed (backoff or not)
	stalls      uint64
	probes      uint64
	backoffs    uint64
	granted     float64 // cumulative expected packets admitted
}

// NewController builds a controller from a validated config. Returns
// nil when the config disables the controller.
func NewController(cfg CapacityConfig, clock Clock) (*Controller, error) {
	cfg, err := cfg.valid()
	if err != nil {
		return nil, err
	}
	if !cfg.enabled() {
		return nil, nil
	}
	if clock == nil {
		clock = defaultClock
	}
	now := clock()
	return &Controller{
		cfg:      cfg,
		clock:    clock,
		capacity: cfg.Initial,
		tokens:   cfg.Initial * cfg.Burst,
		last:     now, lastProbe: now, lastBackoff: now, lastStall: now,
	}, nil
}

// refill advances the bucket and runs the additive-increase probe; the
// caller holds mu.
func (c *Controller) refill(now uint64) {
	if now <= c.last {
		return
	}
	dt := float64(now-c.last) / 1e9
	c.last = now
	// Probe upward only after a full stall-free window, at the probe
	// cadence — additive increase, gated on quiet. The gate watches the
	// last stall, not the last backoff: a stall absorbed inside the
	// backoff window still means the sink was behind, and probing into
	// it would oscillate.
	if now-c.lastStall >= uint64(c.cfg.Window) && now-c.lastProbe >= uint64(c.cfg.ProbeEvery) {
		if c.capacity += c.cfg.Probe; c.capacity > c.cfg.Max {
			c.capacity = c.cfg.Max
		}
		c.lastProbe = now
		c.probes++
	}
	if c.tokens += c.capacity * dt; c.tokens > c.capacity*c.cfg.Burst {
		c.tokens = c.capacity * c.cfg.Burst
	}
}

// Observe feeds one sink hand-off's stall verdict back into the
// estimate. A stalled hand-off inside the feedback window cuts capacity
// multiplicatively — but at most once per window, so a burst of stalls
// from many concurrent sessions registers as one congestion event, not a
// collapse to the floor.
func (c *Controller) Observe(stalled bool) {
	if c == nil {
		return
	}
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if stalled {
		// Record the stall before the refill runs so a probe cannot fire
		// at the very instant congestion is being reported.
		c.stalls++
		c.lastStall = now
	}
	c.refill(now)
	if !stalled {
		return
	}
	if now-c.lastBackoff < uint64(c.cfg.Window) {
		return
	}
	c.capacity = math.Max(c.cfg.Min, c.capacity*c.cfg.Beta)
	c.lastBackoff = now
	c.lastProbe = now
	c.backoffs++
	c.tokens = math.Min(c.tokens, c.capacity*c.cfg.Burst)
}

// Grant asks the controller for permission to admit n expected packets
// and returns the granted fraction in [0,1]: 1 when the bucket covers
// the frame, the covered fraction otherwise. The expectation n*g is
// drawn from the bucket, so total expected admission is bounded by the
// capacity integral regardless of offered load. A nil controller grants
// everything.
func (c *Controller) Grant(n float64) float64 {
	if c == nil || n <= 0 {
		return 1
	}
	return c.grantAt(c.clock(), n)
}

// grantAt is Grant with the clock already read — the per-frame path
// reads it once in Tenant.Decide and shares it (both sides run the same
// injected Clock, so the shared read changes nothing observable).
func (c *Controller) grantAt(now uint64, n float64) float64 {
	c.mu.Lock()
	c.refill(now)
	g := 1.0
	if c.tokens >= n {
		c.tokens -= n
	} else {
		g = c.tokens / n
		c.tokens = 0
	}
	c.granted += n * g
	c.mu.Unlock()
	return g
}

// CapacityStats is the controller's point-in-time telemetry, served
// under /stats.
type CapacityStats struct {
	// Capacity is the current AIMD estimate in packets/second.
	Capacity float64 `json:"capacity"`
	// Stalls counts stalled hand-offs observed; Backoffs counts the
	// multiplicative decreases they triggered (≤ one per window);
	// Probes counts additive increases.
	Stalls   uint64 `json:"stalls"`
	Backoffs uint64 `json:"backoffs"`
	Probes   uint64 `json:"probes"`
}

// Stats returns the controller's telemetry; zero for a nil controller.
func (c *Controller) Stats() CapacityStats {
	if c == nil {
		return CapacityStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CapacityStats{Capacity: c.capacity, Stalls: c.stalls, Backoffs: c.backoffs, Probes: c.probes}
}

// Capacity returns the current estimate in packets/second (0 for nil).
func (c *Controller) Capacity() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capacity
}

// Granted returns the cumulative expected packets admitted — the left
// side of the capacity-bound invariant, exposed for the property test.
func (c *Controller) Granted() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.granted
}
