package federation

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/hash"
)

// driveResize runs fleet.Resize(toN) while keeping every exporter's poke
// loop alive in its own goroutine — the coordinator's quiesce waits for
// the fenced sessions to close, which only happens when each exporter
// services its nudge. Returns the executed move plan.
func driveResize(t *testing.T, fleet *Fleet, exps []*collector.FleetExporter, toN int) []Move {
	t.Helper()
	type result struct {
		moves []Move
		err   error
	}
	resized := make(chan result, 1)
	go func() {
		moves, err := fleet.Resize(context.Background(), toN)
		resized <- result{moves, err}
	}()
	done := make(chan struct{})
	pokeErrs := make([]error, len(exps))
	var pokers sync.WaitGroup
	for e := range exps {
		pokers.Add(1)
		go func(e int) {
			defer pokers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if err := exps[e].Poke(); err != nil {
					pokeErrs[e] = err
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(e)
	}
	rr := <-resized
	close(done)
	if rr.err != nil {
		t.Fatalf("resize to %d: %v", toN, rr.err)
	}
	pokers.Wait()
	for e, err := range pokeErrs {
		if err != nil {
			t.Fatalf("exporter %d reroute: %v", e+1, err)
		}
	}
	return rr.moves
}

// testResizeLive is the live-resize conformance driver shared by the
// grow and shrink tests: stream half of every flow into a fleet of fromN
// over real TCP, resize to toN with the exporters live, stream the rest,
// and require exact packet conservation plus answers byte-identical to a
// fleet that ran at toN members from the start.
func testResizeLive(t *testing.T, fromN, toN int) {
	const (
		nExp     = 3
		flowsPer = 4
		pktsPer  = 60
		pktsA    = pktsPer / 2
		shards   = 2
	)
	tb, err := collector.NewTestbench(23, 5)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := NewFleet(tb, WithSize(fromN), WithShards(shards), WithFleetEpoch(700))
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Shutdown(context.Background())
	oldMap := fleet.CurrentMap()

	exps := make([]*collector.FleetExporter, nExp)
	batches := make([][][]core.PacketDigest, nExp)
	for e := 0; e < nExp; e++ {
		exp := uint64(e) + 1
		batches[e] = make([][]core.PacketDigest, flowsPer)
		for f := 0; f < flowsPer; f++ {
			batches[e][f] = tb.FlowBatch(exp, f, pktsPer, nil, nil)
		}
		fe, err := collector.Connect(tb.Engine, exp, fmt.Sprintf("live-%d", exp),
			collector.WithFleetMap(fleet.CurrentMap()),
			collector.WithRosterFetch(fleet.RosterFetch()),
			collector.WithFrameBatch(16))
		if err != nil {
			t.Fatal(err)
		}
		exps[e] = fe
		defer fe.Close()
	}
	for e := range exps {
		for f := 0; f < flowsPer; f++ {
			if err := exps[e].Send(batches[e][f][:pktsA]); err != nil {
				t.Fatalf("phase A exporter %d: %v", e+1, err)
			}
		}
		if err := exps[e].Flush(); err != nil {
			t.Fatal(err)
		}
	}

	moves := driveResize(t, fleet, exps, toN)
	newMap := fleet.CurrentMap()
	if newMap.Epoch != oldMap.Epoch+1 {
		t.Fatalf("published epoch %d, want %d", newMap.Epoch, oldMap.Epoch+1)
	}

	// The executed plan is exactly the homes-changed set.
	movedSet := map[core.FlowKey]bool{}
	for _, mv := range moves {
		movedSet[mv.Flow] = true
	}
	for _, flow := range tb.Flows(nExp, flowsPer) {
		changed := oldMap.HomeName(flow) != newMap.HomeName(flow)
		if changed != movedSet[flow] {
			t.Errorf("flow %d: moved=%v home changed=%v", flow, movedSet[flow], changed)
		}
	}

	// Every exporter followed the map.
	for e := range exps {
		if got := exps[e].Epoch(); got != newMap.Epoch {
			t.Fatalf("exporter %d still at epoch %d, want %d", e+1, got, newMap.Epoch)
		}
		if got := exps[e].Members(); got != toN {
			t.Fatalf("exporter %d has %d sessions, want %d", e+1, got, toN)
		}
	}

	for e := range exps {
		for f := 0; f < flowsPer; f++ {
			if err := exps[e].Send(batches[e][f][pktsA:]); err != nil {
				t.Fatalf("phase B exporter %d: %v", e+1, err)
			}
		}
		if err := exps[e].Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Conservation: the live members hold every packet except the phase-A
	// share that departed with a shrink's stopped members.
	total := uint64(nExp * flowsPer * pktsPer)
	departedA := uint64(0)
	for _, flow := range tb.Flows(nExp, flowsPer) {
		if oldMap.FlowHome(flow) >= toN {
			departedA += uint64(pktsA)
		}
	}
	if err := fleet.WaitIngested(total-departedA, 30*time.Second); err != nil {
		t.Fatalf("conservation: %v", err)
	}

	resizedAnswers, err := fleet.MergedAnswers(nil)
	if err != nil {
		t.Fatal(err)
	}
	resizedJSON, err := json.Marshal(resizedAnswers)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: a fleet that ran at toN members from the start, same
	// member names, whole deployment.
	fresh, err := NewFleet(tb, WithSize(toN), WithShards(shards), WithFleetEpoch(900))
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Shutdown(context.Background())
	sent, _, err := fresh.Stream(nExp, flowsPer, pktsPer, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.WaitIngested(sent, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	freshAnswers, err := fresh.MergedAnswers(nil)
	if err != nil {
		t.Fatal(err)
	}
	freshJSON, err := json.Marshal(freshAnswers)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resizedJSON, freshJSON) {
		t.Fatalf("resized %d->%d fleet diverges from a fleet started at %d members", fromN, toN, toN)
	}
}

func TestResizeGrowLive(t *testing.T)   { testResizeLive(t, 2, 4) }
func TestResizeShrinkLive(t *testing.T) { testResizeLive(t, 4, 2) }

// TestResizeNoopAndErrors covers the degenerate Resize inputs.
func TestResizeNoopAndErrors(t *testing.T) {
	tb, err := collector.NewTestbench(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := NewFleet(tb, WithSize(2), WithFleetEpoch(3))
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Shutdown(context.Background())
	if moves, err := fleet.Resize(context.Background(), 2); err != nil || moves != nil {
		t.Fatalf("same-size resize: moves=%v err=%v", moves, err)
	}
	if fleet.CurrentMap().Epoch != 3 {
		t.Fatalf("no-op resize moved the epoch to %d", fleet.CurrentMap().Epoch)
	}
	if _, err := fleet.Resize(context.Background(), 0); err == nil {
		t.Fatal("resize to 0 members succeeded")
	}
}

// mapForNames builds a validated FleetMap over the given member names at
// the given epoch (addresses are irrelevant to routing).
func mapForNames(t *testing.T, epoch uint64, names ...string) *FleetMap {
	t.Helper()
	members := make([]FleetMember, len(names))
	for i, n := range names {
		members[i] = FleetMember{Name: n, Ingest: n + ":1", Query: "http://" + n + ":2"}
	}
	fm, err := NewFleetMap(epoch, members)
	if err != nil {
		t.Fatal(err)
	}
	return fm
}

// TestRebalanceMinimality is the planner's property test: over random
// flows and memberships, the planned move set is exactly the set of
// flows whose rendezvous home name changed — no flow left behind, no
// flow moved gratuitously — and every flow has exactly one home in the
// new map.
func TestRebalanceMinimality(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f", "g"}
	rng := hash.NewRNG(0x5EED)
	for round := 0; round < 40; round++ {
		oldN := 1 + rng.Intn(len(names))
		newN := 1 + rng.Intn(len(names))
		if oldN == newN {
			newN = 1 + newN%len(names)
		}
		oldMap := mapForNames(t, 1, names[:oldN]...)
		newMap := mapForNames(t, 2, names[:newN]...)
		flows := make([]core.FlowKey, 200)
		for i := range flows {
			flows[i] = core.FlowKey(rng.Uint64())
		}
		moves, err := Rebalance(oldMap, newMap, flows)
		if err != nil {
			t.Fatal(err)
		}
		moved := map[core.FlowKey]string{}
		for _, mv := range moves {
			if _, dup := moved[mv.Flow]; dup {
				t.Fatalf("round %d: flow %d planned twice", round, mv.Flow)
			}
			moved[mv.Flow] = mv.To
		}
		for _, flow := range flows {
			oldHome, newHome := oldMap.HomeName(flow), newMap.HomeName(flow)
			to, planned := moved[flow]
			if (oldHome != newHome) != planned {
				t.Fatalf("round %d: flow %d home %q->%q, planned=%v", round, flow, oldHome, newHome, planned)
			}
			if planned && to != newHome {
				t.Fatalf("round %d: flow %d planned to %q, home is %q", round, flow, to, newHome)
			}
			// Disjoint homes: exactly one member owns the flow.
			home := newMap.FlowHome(flow)
			if home < 0 || home >= newN {
				t.Fatalf("round %d: flow %d homed at %d of %d", round, flow, home, newN)
			}
		}
	}
}

// TestRebalanceShrinkOnlyMovesDeparting: removing members moves exactly
// the flows homed on the removed members — rendezvous consistency.
func TestRebalanceShrinkOnlyMovesDeparting(t *testing.T) {
	oldMap := mapForNames(t, 1, "a", "b", "c", "d")
	newMap := mapForNames(t, 2, "a", "b", "c")
	rng := hash.NewRNG(0xD00F)
	flows := make([]core.FlowKey, 500)
	for i := range flows {
		flows[i] = core.FlowKey(rng.Uint64())
	}
	moves, err := Rebalance(oldMap, newMap, flows)
	if err != nil {
		t.Fatal(err)
	}
	for _, mv := range moves {
		if mv.From != "d" {
			t.Fatalf("flow %d moved from surviving member %q", mv.Flow, mv.From)
		}
	}
	for _, flow := range flows {
		if oldMap.HomeName(flow) == "d" {
			found := false
			for _, mv := range moves {
				if mv.Flow == flow {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("flow %d homed on the departing member was not planned", flow)
			}
		}
	}
}

// TestRebalanceRejects covers the planner's error contract.
func TestRebalanceRejects(t *testing.T) {
	a := mapForNames(t, 2, "a", "b")
	b := mapForNames(t, 2, "a", "b", "c")
	if _, err := Rebalance(a, b, nil); err == nil {
		t.Fatal("non-advancing epoch accepted")
	}
	if _, err := Rebalance(nil, b, nil); err == nil {
		t.Fatal("nil old map accepted")
	}
	if _, err := Rebalance(a, nil, nil); err == nil {
		t.Fatal("nil new map accepted")
	}
}
