package federation

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
)

// FleetMap is the epoch-versioned fleet configuration — the one document
// every component of a deployment agrees on: which members exist, where
// each listens (exporter TCP ingest + query HTTP), and the partitioning
// epoch exporters must carry in their session handshakes. It travels as
// JSON (pintgate serves GET /fleetmap, members accept POST /fleetmap)
// and implements collector.FleetRoster, so collector.Connect can take a
// fetched map directly via WithFleetMap / WithRosterFetch.
//
// The flow→member routing is *derived*, never serialized: rendezvous
// hashing over the member names (see Partitioner) makes the map a pure
// function of (epoch, members), so two holders of the same map compute
// identical homes with no coordination.
type FleetMap struct {
	// Epoch versions the partitioning. A resize publishes a new map with
	// a strictly larger epoch; members fence exporter handshakes on it.
	Epoch uint64 `json:"epoch"`
	// Members lists the fleet in home-index order (FlowHome returns
	// indices into this slice).
	Members []FleetMember `json:"members"`

	part *Partitioner
}

// FleetMember is one fleet node's entry in the map.
type FleetMember struct {
	// Name is the member's stable identity — the rendezvous-hash input.
	// It must survive restarts and address changes, or a bounced member
	// would silently orphan its flows.
	Name string `json:"name"`
	// Ingest is the member's exporter-session TCP address.
	Ingest string `json:"ingest"`
	// Query is the member's query HTTP base URL.
	Query string `json:"query"`
}

// NewFleetMap builds and validates a fleet map.
func NewFleetMap(epoch uint64, members []FleetMember) (*FleetMap, error) {
	m := &FleetMap{Epoch: epoch, Members: append([]FleetMember(nil), members...)}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ParseFleetMap decodes and validates a JSON fleet map (the body of
// GET /fleetmap).
func ParseFleetMap(data []byte) (*FleetMap, error) {
	var m FleetMap
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("federation: bad fleet map: %w", err)
	}
	return &m, nil
}

// UnmarshalJSON decodes the wire form and rebuilds the derived
// partitioner, so a decoded map is immediately routable.
func (m *FleetMap) UnmarshalJSON(data []byte) error {
	type wireMap FleetMap // drop methods: plain field decode
	var w wireMap
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	m.Epoch, m.Members, m.part = w.Epoch, w.Members, nil
	return m.Validate()
}

// Validate checks the map (non-empty membership, unique non-empty
// names, no blank addresses) and caches the derived partitioner.
// NewFleetMap and UnmarshalJSON call it; a map built by hand must be
// validated before routing with it.
func (m *FleetMap) Validate() error {
	names := make([]string, len(m.Members))
	for i, mem := range m.Members {
		if mem.Ingest == "" {
			return fmt.Errorf("federation: fleet map member %q has no ingest address", mem.Name)
		}
		if mem.Query == "" {
			return fmt.Errorf("federation: fleet map member %q has no query URL", mem.Name)
		}
		names[i] = mem.Name
	}
	part, err := NewPartitioner(names)
	if err != nil {
		return err
	}
	m.part = part
	return nil
}

// FleetEpoch implements collector.FleetRoster.
func (m *FleetMap) FleetEpoch() uint64 { return m.Epoch }

// IngestAddrs implements collector.FleetRoster: the members' exporter
// TCP addresses in home-index order.
func (m *FleetMap) IngestAddrs() []string {
	out := make([]string, len(m.Members))
	for i, mem := range m.Members {
		out[i] = mem.Ingest
	}
	return out
}

// QueryURLs returns the members' query base URLs in home-index order —
// the list a frontend fans out over.
func (m *FleetMap) QueryURLs() []string {
	out := make([]string, len(m.Members))
	for i, mem := range m.Members {
		out[i] = mem.Query
	}
	return out
}

// FlowHome implements collector.FleetRoster: the index of the member
// that owns flow. It panics on an unvalidated map — routing with a map
// that skipped Validate is a programming error, not a runtime condition.
func (m *FleetMap) FlowHome(flow core.FlowKey) int {
	if m.part == nil {
		panic("federation: FlowHome on an unvalidated FleetMap (call Validate)")
	}
	return m.part.Home(flow)
}

// HomeName returns the owning member's stable name — what the rebalance
// planner compares across epochs (indices shift when membership changes;
// names do not).
func (m *FleetMap) HomeName(flow core.FlowKey) string {
	return m.Members[m.FlowHome(flow)].Name
}
