package federation

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/core"
)

func TestPartitionerRejectsBadMembers(t *testing.T) {
	for name, members := range map[string][]string{
		"empty list": {},
		"empty name": {"a", ""},
		"duplicate":  {"a", "b", "a"},
	} {
		if _, err := NewPartitioner(members); err == nil {
			t.Errorf("%s: accepted %q", name, members)
		}
	}
	if _, err := NewPartitioner([]string{"solo"}); err != nil {
		t.Fatalf("single member rejected: %v", err)
	}
}

// TestPartitionerDeterminismAndSpread pins the routing contract: the
// flow→member map is a pure function of (members, flow), every member
// receives a non-trivial share, and list order does not change the
// assignment of any flow (indices follow the list, homes do not).
func TestPartitionerDeterminismAndSpread(t *testing.T) {
	members := []string{"10.0.0.1:9777", "10.0.0.2:9777", "10.0.0.3:9777", "10.0.0.4:9777"}
	p1, err := NewPartitioner(members)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := NewPartitioner(members)
	counts := make([]int, len(members))
	const flows = 4096
	for f := 1; f <= flows; f++ {
		h := p1.Home(core.FlowKey(f))
		if h != p2.Home(core.FlowKey(f)) {
			t.Fatalf("flow %d: two identical partitioners disagree", f)
		}
		counts[h]++
	}
	for i, c := range counts {
		if c < flows/len(members)/2 || c > flows*2/len(members) {
			t.Errorf("member %d got %d of %d flows — far from balanced", i, c, flows)
		}
	}

	// Reordering the member list permutes indices but not homes.
	reordered := []string{members[2], members[0], members[3], members[1]}
	p3, _ := NewPartitioner(reordered)
	for f := 1; f <= flows; f++ {
		if members[p1.Home(core.FlowKey(f))] != reordered[p3.Home(core.FlowKey(f))] {
			t.Fatalf("flow %d: home depends on member-list order", f)
		}
	}
}

// TestPartitionerConsistency pins the resize property of rendezvous
// hashing: removing one member reassigns only the flows it owned.
func TestPartitionerConsistency(t *testing.T) {
	members := []string{"node-a", "node-b", "node-c", "node-d"}
	full, err := NewPartitioner(members)
	if err != nil {
		t.Fatal(err)
	}
	shrunk, err := NewPartitioner(members[:3]) // drop node-d
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	const flows = 4096
	for f := 1; f <= flows; f++ {
		before := full.Home(core.FlowKey(f))
		after := shrunk.Home(core.FlowKey(f))
		if before == 3 {
			moved++
			continue // node-d's flows must move somewhere
		}
		if before != after {
			t.Fatalf("flow %d moved from surviving member %d to %d when node-d left", f, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("node-d owned no flows at all")
	}
}

// streamFleet stands a fleet up, streams a deployment through loopback
// TCP, and waits until every packet is ingested and flushed.
func streamFleet(t *testing.T, seed uint64, fleetN, shards, nExporters, flowsPer, pktsPer int) (*Fleet, *collector.Testbench) {
	t.Helper()
	tb, err := collector.NewTestbench(seed, 5)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := StartFleet(tb, fleetN, shards, uint64(seed)+100)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fleet.Shutdown(context.Background()) })
	sent, _, err := fleet.Stream(nExporters, flowsPer, pktsPer, 64)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(nExporters) * uint64(flowsPer) * uint64(pktsPer); sent != want {
		t.Fatalf("streamed %d packets, want %d", sent, want)
	}
	if err := fleet.WaitIngested(sent, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	return fleet, tb
}

// TestFleetMergedAnswersBitIdentical is the tentpole contract at the
// Recording level: a fleet of 3 collectors behind the partitioner,
// queried by folding member snapshots with core.Recording.Merge, answers
// byte-identically to one in-process sink that ingested the identical
// deployment.
func TestFleetMergedAnswersBitIdentical(t *testing.T) {
	const (
		nExporters = 3
		flowsPer   = 4
		pktsPer    = 200
	)
	fleet, tb := streamFleet(t, 11, 3, 2, nExporters, flowsPer, pktsPer)

	fleetAnswers, err := fleet.MergedAnswers(nil)
	if err != nil {
		t.Fatal(err)
	}
	local, err := tb.RunInProcess(2, nExporters, flowsPer, pktsPer)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(fleetAnswers)
	want, _ := json.Marshal(local.Answers)
	if string(got) != string(want) {
		t.Fatalf("fleet-merged answers diverge from in-process:\nfleet: %.400s\nlocal: %.400s", got, want)
	}

	// The fleet genuinely spread the flows: with 12 flows on 3 members,
	// every member should own at least one.
	for i, m := range fleet.Members {
		if st := m.Srv.Stats(); st.Packets == 0 {
			t.Errorf("member %d ingested nothing — partitioner routed everything elsewhere", i)
		}
	}
}

// TestFleetEpochFencesStaleExporters pins the repartitioning guard end
// to end: an exporter streaming under a different epoch is refused by
// every fleet member at session setup.
func TestFleetEpochFencesStaleExporters(t *testing.T) {
	tb, err := collector.NewTestbench(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := StartFleet(tb, 2, 1, 77)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Shutdown(context.Background())

	if _, _, err := tb.StreamFleetDeployment(fleet.TCPAddrs(), fleet.Partitioner().Home, 76,
		1, 1, 10, 10); err == nil {
		t.Fatal("stale-epoch deployment was accepted")
	}
	if _, _, err := fleet.Stream(1, 1, 10, 10); err != nil {
		t.Fatalf("matching-epoch deployment refused: %v", err)
	}
}
