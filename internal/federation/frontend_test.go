package federation

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/pipeline"
)

// get runs one request through the frontend handler.
func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

// envelope renders answers exactly the way a single daemon's /snapshot
// does — the byte-identity reference.
func envelope(t *testing.T, answers []collector.FlowAnswers) []byte {
	t.Helper()
	rec := httptest.NewRecorder()
	collector.WriteJSON(rec, map[string]any{"flows": answers})
	return rec.Body.Bytes()
}

// inProcessAnswers replays the deployment into one in-process sink and
// answers the listed flows (nil: all, sorted) — the single-collector
// reference for any flow filter.
func inProcessAnswers(t *testing.T, tb *collector.Testbench, shards, nExporters, flowsPer, pktsPer int,
	flows []core.FlowKey) []collector.FlowAnswers {
	t.Helper()
	sink, err := pipeline.NewSink(tb.Engine, pipeline.Config{Shards: shards, Base: tb.Base})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	var pkts []core.PacketDigest
	vals := make([]core.HopValues, pktsPer)
	for e := 0; e < nExporters; e++ {
		for f := 0; f < flowsPer; f++ {
			pkts = tb.FlowBatch(uint64(e)+1, f, pktsPer, pkts, vals)
			sink.Ingest(pkts)
		}
	}
	sink.Barrier()
	answers, err := collector.SnapshotAnswers(sink.Snapshot(), tb.Queries(), flows)
	if err != nil {
		t.Fatal(err)
	}
	return answers
}

// TestFrontendSnapshotByteIdentical is the tentpole contract at the HTTP
// level: the frontend's merged /snapshot body — full and flow-filtered —
// is byte-identical to what a single collector serving the whole
// deployment would emit.
func TestFrontendSnapshotByteIdentical(t *testing.T) {
	const (
		nExporters = 2
		flowsPer   = 3
		pktsPer    = 150
		shards     = 2
	)
	fleet, tb := streamFleet(t, 23, 3, shards, nExporters, flowsPer, pktsPer)
	fe, err := NewFrontend(WithMembers(fleet.HTTPURLs()...))
	if err != nil {
		t.Fatal(err)
	}
	h := fe.Handler()

	rec := get(t, h, "/snapshot")
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot status %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get(PartialHeader) != "" {
		t.Fatalf("healthy fleet answered with %s=%s", PartialHeader, rec.Header().Get(PartialHeader))
	}
	want := envelope(t, inProcessAnswers(t, tb, shards, nExporters, flowsPer, pktsPer, nil))
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatalf("merged snapshot body diverges from single-collector body:\ngate: %.400s\nwant: %.400s",
			rec.Body.Bytes(), want)
	}

	// Flow-filtered: one tracked flow (whichever member owns it) plus one
	// unknown flow, in request order.
	tracked := tb.FlowKeyFor(1, 0)
	unknown := core.FlowKey(0xDEAD)
	path := fmt.Sprintf("/snapshot?flow=%d&flow=%d", uint64(tracked), uint64(unknown))
	rec = get(t, h, path)
	if rec.Code != http.StatusOK {
		t.Fatalf("filtered snapshot status %d: %s", rec.Code, rec.Body.String())
	}
	want = envelope(t, inProcessAnswers(t, tb, shards, nExporters, flowsPer, pktsPer,
		[]core.FlowKey{tracked, unknown}))
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatalf("filtered snapshot body diverges:\ngate: %.400s\nwant: %.400s", rec.Body.Bytes(), want)
	}

	// A malformed filter is the client's fault: every member answers 400
	// with the same status, so the gate propagates 400 — exactly what a
	// single collector would do — rather than faking a fleet outage.
	rec = get(t, h, "/snapshot?flow=banana")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad filter: status %d, want 400 (%s)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get(PartialHeader) != "" {
		t.Fatalf("client error misreported as a degraded fleet: %s", rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "bad flow") {
		t.Fatalf("propagated 400 lost the member's message: %s", rec.Body.String())
	}
}

// TestFrontendPartialResult is the degradation contract: killing one
// fleet member yields a partial /snapshot naming the dead node while the
// survivors' flows still merge; /healthz flips to not-ok naming the node.
func TestFrontendPartialResult(t *testing.T) {
	const (
		nExporters = 2
		flowsPer   = 4
		pktsPer    = 100
	)
	fleet, tb := streamFleet(t, 31, 3, 1, nExporters, flowsPer, pktsPer)
	fe, err := NewFrontend(WithMembers(fleet.HTTPURLs()...))
	if err != nil {
		t.Fatal(err)
	}
	h := fe.Handler()

	const dead = 1
	deadURL := fleet.HTTPURLs()[dead]
	if err := fleet.StopMember(context.Background(), dead); err != nil {
		t.Fatal(err)
	}

	rec := get(t, h, "/snapshot")
	if rec.Code != http.StatusOK {
		t.Fatalf("partial snapshot status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(PartialHeader); got != "1" {
		t.Fatalf("%s = %q, want 1", PartialHeader, got)
	}
	var partial struct {
		Errors []NodeError             `json:"errors"`
		Flows  []collector.FlowAnswers `json:"flows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &partial); err != nil {
		t.Fatal(err)
	}
	if len(partial.Errors) != 1 || partial.Errors[0].Node != deadURL || partial.Errors[0].Error == "" {
		t.Fatalf("error list does not name the dead node: %+v", partial.Errors)
	}

	// The surviving members' flows all merge: exactly the flows whose
	// home is not the dead member, in sorted order.
	var want []uint64
	for _, flow := range tb.Flows(nExporters, flowsPer) {
		if fleet.Partitioner().Home(flow) != dead {
			want = append(want, uint64(flow))
		}
	}
	var got []uint64
	for _, fa := range partial.Flows {
		got = append(got, fa.Flow)
	}
	if len(got) != len(want) || len(got) == 0 {
		t.Fatalf("survivor merge has %d flows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("survivor flow[%d] = %d, want %d", i, got[i], want[i])
		}
	}

	// Health names the dead node and flips the fleet verdict.
	rec = get(t, h, "/healthz")
	body := rec.Body.String()
	if !strings.Contains(body, `"ok": false`) || !strings.Contains(body, deadURL) {
		t.Fatalf("healthz does not surface the dead node:\n%s", body)
	}

	// Stats still sum the survivors and carry the per-node error.
	rec = get(t, h, "/stats")
	if rec.Header().Get(PartialHeader) != "1" {
		t.Fatalf("stats not marked partial")
	}
	var stats struct {
		Nodes []nodeStats `json:"nodes"`
		Total struct {
			Server collector.Stats `json:"server"`
		} `json:"total"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Total.Server.Packets == 0 {
		t.Fatal("survivor stats sum to zero packets")
	}
	if stats.Nodes[dead].Error == "" {
		t.Fatalf("dead node's stats entry carries no error: %+v", stats.Nodes[dead])
	}
}

// TestFrontendFleetWideDrainPropagates503 pins the unanimous-status
// rule: when every member is draining (each answering 503), the gate
// answers the members' 503 with the single collector's Retry-After hint
// — a fleet-wide drain is not a degraded merge.
func TestFrontendFleetWideDrainPropagates503(t *testing.T) {
	fleet, _ := streamFleet(t, 51, 2, 1, 1, 2, 50)
	for _, m := range fleet.Members {
		if err := m.Srv.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	fe, err := NewFrontend(WithMembers(fleet.HTTPURLs()...))
	if err != nil {
		t.Fatal(err)
	}
	rec := get(t, fe.Handler(), "/snapshot")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("fleet-wide drain: status %d, want 503 (%s)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("propagated 503 lost the Retry-After hint")
	}
	if rec.Header().Get(PartialHeader) != "" {
		t.Fatal("fleet-wide drain misreported as a degraded merge")
	}
}

// TestFrontendStatsAggregation pins the fleet totals: the frontend's
// /stats total equals the sum of what each member reports.
func TestFrontendStatsAggregation(t *testing.T) {
	const (
		nExporters = 2
		flowsPer   = 2
		pktsPer    = 80
	)
	fleet, _ := streamFleet(t, 41, 2, 1, nExporters, flowsPer, pktsPer)
	fe, err := NewFrontend(WithMembers(fleet.HTTPURLs()...))
	if err != nil {
		t.Fatal(err)
	}
	rec := get(t, fe.Handler(), "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	var stats struct {
		Total struct {
			Server collector.Stats     `json:"server"`
			Sink   pipeline.ShardStats `json:"sink"`
		} `json:"total"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	wantServer, wantSink := fleet.Stats()
	if stats.Total.Server != wantServer {
		t.Fatalf("server totals %+v, want %+v", stats.Total.Server, wantServer)
	}
	if stats.Total.Sink != wantSink {
		t.Fatalf("sink totals %+v, want %+v", stats.Total.Sink, wantSink)
	}

	rec = get(t, fe.Handler(), "/healthz")
	if !strings.Contains(rec.Body.String(), `"ok": true`) {
		t.Fatalf("healthy fleet reports unhealthy:\n%s", rec.Body.String())
	}
}
