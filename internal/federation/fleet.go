package federation

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/pipeline"
)

// Member is one fleet node: a collector daemon, its sharded sink, and
// its two loopback listeners (exporter TCP + query HTTP).
type Member struct {
	Name string
	Sink *pipeline.Sink
	Srv  *collector.Server

	tcpLn    net.Listener
	httpLn   net.Listener
	httpSrv  *http.Server
	serveErr chan error
	stopped  bool
}

// TCPAddr returns the member's exporter-session address.
func (m *Member) TCPAddr() string { return m.tcpLn.Addr().String() }

// HTTPURL returns the member's query endpoint base URL.
func (m *Member) HTTPURL() string { return "http://" + m.httpLn.Addr().String() }

// Fleet is an in-process federated deployment over one Testbench plan:
// n collector daemons on loopback listeners, every member compiled under
// the same engine and seeded with the same recording base, so the fleet
// as a whole answers byte-identically to one collector that ingested the
// same flows. It is the test and scenario harness; production runs the
// same shape as n cmd/pintd processes plus cmd/pintgate.
type Fleet struct {
	TB      *collector.Testbench
	Epoch   uint64
	Members []*Member

	part   *Partitioner
	shards int
	// mu guards curMap: exporter goroutines read it through RosterFetch
	// while Resize swaps in the next epoch's map.
	mu     sync.RWMutex
	curMap *FleetMap
}

// fleetConfig is the resolved form of NewFleet's options.
type fleetConfig struct {
	size   int
	shards int
	epoch  uint64
}

// FleetOption configures NewFleet.
type FleetOption func(*fleetConfig)

// WithSize sets the initial fleet size in members (default 1).
func WithSize(n int) FleetOption {
	return func(c *fleetConfig) { c.size = n }
}

// WithShards sets each member's sink shard count (default 1).
func WithShards(n int) FleetOption {
	return func(c *fleetConfig) { c.shards = n }
}

// WithFleetEpoch sets the starting cluster epoch (default 1). Resize
// advances it by one per resize.
func WithFleetEpoch(epoch uint64) FleetOption {
	return func(c *fleetConfig) { c.epoch = epoch }
}

// NewFleet stands up an in-process fleet over tb's plan — the options
// entry point mirroring collector.New and collector.Connect:
//
//	f, err := federation.NewFleet(tb,
//	        federation.WithSize(4),
//	        federation.WithShards(2),
//	        federation.WithFleetEpoch(7))
//
// Every member gets an ephemeral loopback TCP listener (exporter
// sessions) and an HTTP listener (queries) served through the hardened
// server, all fenced to the starting epoch.
func NewFleet(tb *collector.Testbench, opts ...FleetOption) (*Fleet, error) {
	cfg := fleetConfig{size: 1, shards: 1, epoch: 1}
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	if cfg.size < 1 {
		return nil, fmt.Errorf("federation: fleet size %d below 1", cfg.size)
	}
	f := &Fleet{TB: tb, Epoch: cfg.epoch, shards: cfg.shards}
	names := make([]string, 0, cfg.size)
	for i := 0; i < cfg.size; i++ {
		m, err := startMember(tb, fmt.Sprintf("node-%d", i), cfg.shards, cfg.epoch)
		if err != nil {
			f.Shutdown(context.Background())
			return nil, err
		}
		f.Members = append(f.Members, m)
		names = append(names, m.Name)
	}
	// Partition over the stable member names, not the ephemeral listener
	// addresses: the flow→home map must be a pure function of the fleet
	// configuration (so goldens, replays, and every exporter agree), and a
	// member keeps its flows across a restart that changes its port.
	part, err := NewPartitioner(names)
	if err != nil {
		f.Shutdown(context.Background())
		return nil, err
	}
	f.part = part
	if err := f.publishMap(); err != nil {
		f.Shutdown(context.Background())
		return nil, err
	}
	return f, nil
}

// StartFleet stands up n collector daemons over tb's plan, each with a
// sink of the given shard count, all fenced to epoch. It is the
// positional compatibility path for NewFleet.
func StartFleet(tb *collector.Testbench, n, shards int, epoch uint64) (*Fleet, error) {
	return NewFleet(tb, WithSize(n), WithShards(shards), WithFleetEpoch(epoch))
}

// publishMap rebuilds the fleet map from the live membership and current
// epoch and makes it the one RosterFetch serves.
func (f *Fleet) publishMap() error {
	members := make([]FleetMember, len(f.Members))
	for i, m := range f.Members {
		members[i] = FleetMember{Name: m.Name, Ingest: m.TCPAddr(), Query: m.HTTPURL()}
	}
	fm, err := NewFleetMap(f.Epoch, members)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.curMap = fm
	f.mu.Unlock()
	return nil
}

// CurrentMap returns the fleet's published map — epoch, membership, and
// addresses. During a Resize the previous map stays published until the
// state hand-off completes, so exporters re-routing on the epoch fence
// block until the new partitioning is actually safe to send under.
func (f *Fleet) CurrentMap() *FleetMap {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.curMap
}

// RosterFetch returns the fetch closure exporters pass to
// collector.WithRosterFetch — the in-process stand-in for GETting the
// frontend's /fleetmap endpoint.
func (f *Fleet) RosterFetch() func() (collector.FleetRoster, error) {
	return func() (collector.FleetRoster, error) { return f.CurrentMap(), nil }
}

func startMember(tb *collector.Testbench, name string, shards int, epoch uint64) (*Member, error) {
	sink, err := pipeline.NewSink(tb.Engine, pipeline.Config{Shards: shards, Base: tb.Base})
	if err != nil {
		return nil, err
	}
	srv, err := collector.New(tb.Engine,
		collector.WithSink(sink),
		collector.WithQueries(tb.Queries()...),
		collector.WithEpoch(epoch),
	)
	if err != nil {
		sink.Close()
		return nil, err
	}
	tcpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		sink.Close()
		return nil, err
	}
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tcpLn.Close()
		sink.Close()
		return nil, err
	}
	m := &Member{
		Name:     name,
		Sink:     sink,
		Srv:      srv,
		tcpLn:    tcpLn,
		httpLn:   httpLn,
		httpSrv:  srv.HTTPServer(nil),
		serveErr: make(chan error, 1),
	}
	go func() { m.serveErr <- srv.Serve(tcpLn) }()
	go m.httpSrv.Serve(httpLn)
	return m, nil
}

// TCPAddrs lists every member's exporter-session address in member order
// — the list exporters partition over.
func (f *Fleet) TCPAddrs() []string {
	out := make([]string, len(f.Members))
	for i, m := range f.Members {
		out[i] = m.TCPAddr()
	}
	return out
}

// HTTPURLs lists every member's query base URL in member order — the
// list the query frontend fans out over.
func (f *Fleet) HTTPURLs() []string {
	out := make([]string, len(f.Members))
	for i, m := range f.Members {
		out[i] = m.HTTPURL()
	}
	return out
}

// Partitioner returns the fleet's flow→member map — built over the
// stable member names (node-0, node-1, …), never the ephemeral listener
// addresses, so the map is a pure function of the fleet shape. Home
// indices align with Members, TCPAddrs, and HTTPURLs.
func (f *Fleet) Partitioner() *Partitioner { return f.part }

// Stream pushes the (nExporters × flowsPer × pktsPer) testbench
// deployment into the fleet over real TCP, each flow routed to its home
// member under the fleet's epoch.
func (f *Fleet) Stream(nExporters, flowsPer, pktsPer, batch int) (packets, bytes uint64, err error) {
	return f.TB.StreamFleetDeployment(f.TCPAddrs(), f.part.Home, f.Epoch, nExporters, flowsPer, pktsPer, batch)
}

// WaitIngested blocks until the fleet's members have collectively
// ingested want packets with no active sessions — at which point every
// ingested packet is dispatched (collectors flush at session end) and
// visible to snapshots — or until the deadline.
func (f *Fleet) WaitIngested(want uint64, deadline time.Duration) error {
	t0 := time.Now()
	for {
		var packets uint64
		var active int64
		for _, m := range f.Members {
			st := m.Srv.Stats()
			packets += st.Packets
			active += st.Active
		}
		if packets == want && active == 0 {
			return nil
		}
		if packets > want {
			return fmt.Errorf("federation: fleet ingested %d packets, want %d", packets, want)
		}
		if time.Since(t0) > deadline {
			return fmt.Errorf("federation: fleet ingested %d/%d packets (%d active) at deadline", packets, want, active)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// MergedAnswers folds the fleet's state into one answer set exactly like
// one collector would: each member's sink snapshot collapses via
// Snapshot.Merged, the per-member Recordings fold into one with
// core.Recording.Merge (members hold disjoint flows — the partitioner's
// invariant — so the merge is pure adoption), and the fixed-order answer
// encoder runs once over the union. flows nil means every tracked flow in
// sorted key order, mirroring the daemon's /snapshot.
func (f *Fleet) MergedAnswers(flows []core.FlowKey) ([]collector.FlowAnswers, error) {
	merged, err := f.MergedRecording()
	if err != nil {
		return nil, err
	}
	if flows == nil {
		flows = merged.Flows()
	}
	return collector.Answers(merged, f.TB.Queries(), flows), nil
}

// MergedRecording snapshots every member and folds the per-member
// Recordings into one via core.Recording.Merge.
func (f *Fleet) MergedRecording() (*core.Recording, error) {
	var merged *core.Recording
	for _, m := range f.Members {
		rec, err := m.Sink.Snapshot().Merged()
		if err != nil {
			return nil, err
		}
		if merged == nil {
			merged = rec
			continue
		}
		if err := merged.Merge(rec); err != nil {
			return nil, fmt.Errorf("federation: folding %s: %w", m.Name, err)
		}
	}
	return merged, nil
}

// Stats sums the fleet's server and sink counters.
func (f *Fleet) Stats() (server collector.Stats, sink pipeline.ShardStats) {
	for _, m := range f.Members {
		st := m.Srv.Stats()
		server.Accumulate(st)
		total, _ := m.Sink.Stats()
		sink.Accumulate(total)
	}
	return server, sink
}

// StopMember drains one member and closes its listeners — the "kill one
// node" half of the partial-result contract. The member's HTTP endpoint
// goes dark (connection refused), which is how the frontend learns.
func (f *Fleet) StopMember(ctx context.Context, i int) error {
	m := f.Members[i]
	if m.stopped {
		return nil
	}
	m.stopped = true
	err := m.Srv.Shutdown(ctx)
	m.httpSrv.Close()
	<-m.serveErr
	m.Sink.Close()
	return err
}

// Shutdown drains every member (exporter sessions get ctx's grace), then
// closes HTTP servers and sinks. Safe on a partially started fleet and
// after StopMember.
func (f *Fleet) Shutdown(ctx context.Context) error {
	var first error
	for _, m := range f.Members {
		if m.stopped {
			continue
		}
		if err := m.Srv.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
	}
	for _, m := range f.Members {
		if m.stopped {
			continue
		}
		m.stopped = true
		m.httpSrv.Close()
		<-m.serveErr
		if err := m.Sink.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
