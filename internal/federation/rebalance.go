package federation

import (
	"fmt"

	"repro/internal/core"
)

// Move is one flow's relocation in a fleet resize: its recording state
// leaves the From member and is folded into the To member.
type Move struct {
	Flow core.FlowKey
	From string
	To   string
}

// Rebalance plans a resize: given the outgoing and incoming fleet maps
// and the set of live flows, it returns exactly the flows whose home
// member changed — nothing else may move. Rendezvous hashing makes this
// the minimal set by construction (a member's score for a flow depends
// only on the pair, so adding members steals only the flows the new
// members now win, and removing members reassigns only the removed
// members' flows); the planner simply reads the two maps and compares
// home *names*, never indices, since membership changes shift indices.
//
// Moves are returned in the order of flows, deduplicated; the incoming
// epoch must be strictly newer than the outgoing one.
func Rebalance(oldMap, newMap *FleetMap, flows []core.FlowKey) ([]Move, error) {
	if oldMap == nil || newMap == nil {
		return nil, fmt.Errorf("federation: Rebalance needs both fleet maps")
	}
	if newMap.Epoch <= oldMap.Epoch {
		return nil, fmt.Errorf("federation: resize must advance the epoch (old %d, new %d)", oldMap.Epoch, newMap.Epoch)
	}
	var moves []Move
	seen := make(map[core.FlowKey]bool, len(flows))
	for _, flow := range flows {
		if seen[flow] {
			continue
		}
		seen[flow] = true
		from, to := oldMap.HomeName(flow), newMap.HomeName(flow)
		if from != to {
			moves = append(moves, Move{Flow: flow, From: from, To: to})
		}
	}
	return moves, nil
}
