package federation

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/collector"
)

// TestFrontendFleetMapEndpoints: a map-built frontend serves its map on
// GET /fleetmap, accepts a newer one on POST, and refuses regressions.
func TestFrontendFleetMapEndpoints(t *testing.T) {
	fleet, _ := streamFleet(t, 31, 2, 1, 1, 2, 40)
	fm := fleet.CurrentMap()
	fe, err := NewFrontend(WithFleetMap(fm))
	if err != nil {
		t.Fatal(err)
	}
	h := fe.Handler()

	rec := get(t, h, "/fleetmap")
	if rec.Code != 200 {
		t.Fatalf("GET /fleetmap: %d %s", rec.Code, rec.Body)
	}
	served, err := ParseFleetMap(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if served.Epoch != fm.Epoch || len(served.Members) != len(fm.Members) {
		t.Fatalf("served map %+v, want %+v", served, fm)
	}

	// POST a newer map: it replaces the roster.
	next := mapForNames(t, fm.Epoch+1, "other-0", "other-1", "other-2")
	body, _ := json.Marshal(next)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/fleetmap", strings.NewReader(string(body))))
	if rec.Code != 200 {
		t.Fatalf("POST /fleetmap: %d %s", rec.Code, rec.Body)
	}
	if got := fe.CurrentFleetMap().Epoch; got != fm.Epoch+1 {
		t.Fatalf("frontend map epoch %d after POST, want %d", got, fm.Epoch+1)
	}

	// An epoch regression is refused with 409 and leaves the map alone.
	stale, _ := json.Marshal(fm)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/fleetmap", strings.NewReader(string(stale))))
	if rec.Code != 409 {
		t.Fatalf("stale POST /fleetmap: %d, want 409", rec.Code)
	}
	if got := fe.CurrentFleetMap().Epoch; got != fm.Epoch+1 {
		t.Fatalf("stale POST moved the map to epoch %d", got)
	}

	// Garbage is a 400-family error, not a replacement.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/fleetmap", strings.NewReader("{")))
	if rec.Code < 400 || rec.Code >= 500 {
		t.Fatalf("garbage POST /fleetmap: %d", rec.Code)
	}
}

// TestFrontendFleetMapAbsent: a members-only frontend has no map to
// serve.
func TestFrontendFleetMapAbsent(t *testing.T) {
	fe, err := NewFrontend(WithMembers("http://127.0.0.1:1/"))
	if err != nil {
		t.Fatal(err)
	}
	if rec := get(t, fe.Handler(), "/fleetmap"); rec.Code != 404 {
		t.Fatalf("GET /fleetmap without a map: %d, want 404", rec.Code)
	}
}

// TestFrontendEpochStaleExcluded: a member whose epoch moved past the
// frontend's map answers with a different X-Pint-Epoch; the frontend
// must exclude its body from the merge and name it in the errors list
// with the epoch_stale kind instead of silently merging mixed epochs.
func TestFrontendEpochStaleExcluded(t *testing.T) {
	const (
		nExporters = 2
		flowsPer   = 3
		pktsPer    = 60
		shards     = 2
	)
	fleet, _ := streamFleet(t, 37, 2, shards, nExporters, flowsPer, pktsPer)
	fe, err := NewFrontend(WithFleetMap(fleet.CurrentMap()))
	if err != nil {
		t.Fatal(err)
	}
	h := fe.Handler()

	// Healthy fleet first: no errors, not partial.
	rec := get(t, h, "/snapshot")
	if rec.Code != 200 || rec.Header().Get(PartialHeader) != "" {
		t.Fatalf("healthy /snapshot: code %d, partial %q", rec.Code, rec.Header().Get(PartialHeader))
	}

	// Advance one member's epoch past the frontend's map.
	fleet.Members[0].Srv.SetEpoch(fleet.CurrentMap().Epoch + 1)
	rec = get(t, h, "/snapshot")
	if rec.Code != 200 {
		t.Fatalf("degraded /snapshot: %d %s", rec.Code, rec.Body)
	}
	if rec.Header().Get(PartialHeader) == "" {
		t.Fatal("stale member did not mark the response partial")
	}
	var resp struct {
		Errors []NodeError `json:"errors"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Errors) != 1 {
		t.Fatalf("errors = %+v, want exactly the stale member", resp.Errors)
	}
	if resp.Errors[0].Kind != NodeErrorEpochStale {
		t.Fatalf("error kind %q, want %q", resp.Errors[0].Kind, NodeErrorEpochStale)
	}

	// The surviving member's flows still answer: the body is the healthy
	// member's merge, not empty.
	var snap struct {
		Flows []collector.FlowAnswers `json:"flows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Flows) == 0 {
		t.Fatal("degraded snapshot lost the healthy member's flows")
	}
	if len(snap.Flows) >= nExporters*flowsPer {
		t.Fatalf("degraded snapshot has all %d flows — stale member was merged anyway", len(snap.Flows))
	}
}
