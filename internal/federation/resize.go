package federation

import (
	"context"
	"fmt"
	"time"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/wire"
)

// Resize grows or shrinks the fleet to n members mid-deployment with
// zero loss: every in-flight packet is either ingested at its old home
// before the hand-off or re-routed to its new home after, and every
// moving flow's recording state (decoder positions, sketch RNGs, series)
// ships to its new home before any fresh digest for it can arrive — so
// the resized fleet's answers are byte-identical to a fleet that ran at
// the new membership from the start.
//
// The sequence is coordinator-driven:
//
//  1. Grow only: start the new members, already fenced to epoch+1.
//  2. Fence: advance every pre-existing member to epoch+1 — new
//     handshakes at the old epoch are refused (wire.ErrEpochMismatch)
//     and each stale live session gets the one-byte reroute nudge.
//  3. Quiesce: wait until no exporter session remains on the old
//     members. A nudged exporter flushes and closes cleanly, so a clean
//     quiesce means everything sent is ingested and (sessions closed ⇒
//     deferred sink flush ran) visible to snapshots.
//  4. Plan: collect every live flow and run Rebalance — exactly the
//     flows whose rendezvous home changed, nothing else.
//  5. Migrate: each losing member drains the moving flows' states
//     (ExportFlows — drain + evict, atomic per flow) and ships them to
//     the new homes over hand-off sessions at the new epoch
//     (SendHandoff); flow counts are conservation-checked end to end.
//  6. Shrink only: stop the departing members (now empty).
//  7. Publish: the new FleetMap becomes CurrentMap. Only now do
//     re-routing exporters see the new epoch, re-handshake, and resume —
//     no destination can see a fresh digest for a moved flow before its
//     state import.
//
// Exporters must be connected with collector.WithRosterFetch (e.g.
// Fleet.RosterFetch) to follow the resize; a static DialFleet session
// ends at the fence instead. Resize returns the executed move plan.
func (f *Fleet) Resize(ctx context.Context, n int) ([]Move, error) {
	if n < 1 {
		return nil, fmt.Errorf("federation: fleet size %d below 1", n)
	}
	if n == len(f.Members) {
		return nil, nil
	}
	oldMap := f.CurrentMap()
	oldN := len(f.Members)
	newEpoch := f.Epoch + 1

	// 1. Grow: new members start life at the new epoch.
	for i := oldN; i < n; i++ {
		m, err := startMember(f.TB, fmt.Sprintf("node-%d", i), f.shards, newEpoch)
		if err != nil {
			return nil, fmt.Errorf("federation: resize: starting node-%d: %w", i, err)
		}
		f.Members = append(f.Members, m)
	}
	target := f.Members[:n]

	// Build (but do not publish) the new map over the target membership.
	members := make([]FleetMember, n)
	for i, m := range target {
		members[i] = FleetMember{Name: m.Name, Ingest: m.TCPAddr(), Query: m.HTTPURL()}
	}
	newMap, err := NewFleetMap(newEpoch, members)
	if err != nil {
		return nil, fmt.Errorf("federation: resize: %w", err)
	}

	// 2. Fence the old membership at the new epoch.
	for _, m := range f.Members[:oldN] {
		m.Srv.SetEpoch(newEpoch)
	}

	// 3. Quiesce: every stale session must close before state moves.
	if err := f.waitQuiesced(ctx, f.Members[:oldN]); err != nil {
		return nil, err
	}

	// 4. Plan. Flows are collected per member so the plan can be checked
	// against where state actually lives, not just where the old map says
	// it should.
	flowsAt := make(map[string]map[core.FlowKey]bool, oldN)
	var allFlows []core.FlowKey
	for _, m := range f.Members[:oldN] {
		rec, err := m.Sink.Snapshot().Merged()
		if err != nil {
			return nil, fmt.Errorf("federation: resize: snapshotting %s: %w", m.Name, err)
		}
		set := make(map[core.FlowKey]bool)
		for _, flow := range rec.Flows() {
			set[flow] = true
			allFlows = append(allFlows, flow)
		}
		flowsAt[m.Name] = set
	}
	moves, err := Rebalance(oldMap, newMap, allFlows)
	if err != nil {
		return nil, fmt.Errorf("federation: resize: %w", err)
	}
	byFrom := make(map[string][]core.FlowKey)
	for _, mv := range moves {
		if !flowsAt[mv.From][mv.Flow] {
			return nil, fmt.Errorf("federation: resize: planner says flow %d lives on %s, but %s does not track it",
				mv.Flow, mv.From, mv.From)
		}
		byFrom[mv.From] = append(byFrom[mv.From], mv.Flow)
	}

	// 5. Migrate, source by source, destination by destination.
	importedBefore := make(map[string]uint64, n)
	for _, m := range target {
		importedBefore[m.Name] = m.Srv.HandoffFlows()
	}
	shipped := 0
	for _, src := range f.Members[:oldN] {
		moving := byFrom[src.Name]
		if len(moving) == 0 {
			continue
		}
		states, err := src.Srv.ExportFlows(moving)
		if err != nil {
			return nil, fmt.Errorf("federation: resize: draining %s: %w", src.Name, err)
		}
		if len(states) != len(moving) {
			return nil, fmt.Errorf("federation: resize: %s drained %d of %d moving flows", src.Name, len(states), len(moving))
		}
		byDest := make(map[int][]wire.FlowState)
		for _, st := range states {
			byDest[newMap.FlowHome(st.Flow)] = append(byDest[newMap.FlowHome(st.Flow)], st)
		}
		for dest, batch := range byDest {
			hello := collector.HelloFor(f.TB.Engine, handoffExporterID, "handoff-"+src.Name)
			hello.Epoch = newEpoch
			hello.Tenant = f.TB.Tenant
			sent, err := collector.SendHandoff(newMap.Members[dest].Ingest, hello, batch)
			if err != nil {
				return nil, fmt.Errorf("federation: resize: shipping %s→%s: %w", src.Name, newMap.Members[dest].Name, err)
			}
			if sent != len(batch) {
				return nil, fmt.Errorf("federation: resize: %s→%s shipped %d of %d flows",
					src.Name, newMap.Members[dest].Name, sent, len(batch))
			}
			shipped += sent
		}
	}
	// Conservation, end to end: every planned flow was shipped and every
	// shipped flow was imported somewhere in the target membership.
	if shipped != len(moves) {
		return nil, fmt.Errorf("federation: resize: shipped %d of %d planned flows", shipped, len(moves))
	}
	// A hand-off session closes as soon as its frames are written; the
	// destination acknowledges nothing, so its import counter trails the
	// close by however long its read loop takes to drain — poll, don't
	// read once.
	importDeadline := time.Now().Add(30 * time.Second)
	if d, ok := ctx.Deadline(); ok {
		importDeadline = d
	}
	for {
		var imported uint64
		for _, m := range target {
			imported += m.Srv.HandoffFlows() - importedBefore[m.Name]
		}
		if imported == uint64(len(moves)) {
			break
		}
		if imported > uint64(len(moves)) || !time.Now().Before(importDeadline) {
			return nil, fmt.Errorf("federation: resize: destinations imported %d of %d moved flows", imported, len(moves))
		}
		time.Sleep(2 * time.Millisecond)
	}

	// 6. Shrink: departing members are empty now; stop them.
	for i := n; i < oldN; i++ {
		if err := f.StopMember(ctx, i); err != nil {
			return nil, fmt.Errorf("federation: resize: stopping %s: %w", f.Members[i].Name, err)
		}
	}
	f.Members = f.Members[:n]

	// 7. Publish: epoch, partitioner, and map move together.
	names := make([]string, n)
	for i, m := range target {
		names[i] = m.Name
	}
	part, err := NewPartitioner(names)
	if err != nil {
		return nil, err
	}
	f.Epoch = newEpoch
	f.part = part
	f.mu.Lock()
	f.curMap = newMap
	f.mu.Unlock()
	return moves, nil
}

// handoffExporterID identifies resize hand-off sessions in member
// ConnStats — far outside the testbench's exporter-ID range.
const handoffExporterID = uint64(1)<<63 | 0x4A0FF

// waitQuiesced blocks until no exporter session remains on the listed
// members, bounded by ctx (default 30s). Nudged exporters close on their
// next Send or Poke, so a caller that stops driving its exporters before
// the fence will sit here until the deadline.
func (f *Fleet) waitQuiesced(ctx context.Context, members []*Member) error {
	deadline := time.Now().Add(30 * time.Second)
	if d, ok := ctx.Deadline(); ok {
		deadline = d
	}
	for {
		var active int64
		for _, m := range members {
			active += m.Srv.Stats().Active
		}
		if active == 0 {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("federation: resize: %d sessions still active: %w", active, err)
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("federation: resize: %d exporter sessions still active at the quiesce deadline "+
				"(exporters must Send or Poke to notice the reroute nudge)", active)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
