package federation

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/hash"
)

func TestFleetMapJSONRoundTrip(t *testing.T) {
	orig := mapForNames(t, 42, "node-0", "node-1", "node-2")
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseFleetMap(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Epoch != orig.Epoch || len(parsed.Members) != len(orig.Members) {
		t.Fatalf("round-trip lost shape: %+v", parsed)
	}
	for i := range orig.Members {
		if parsed.Members[i] != orig.Members[i] {
			t.Fatalf("member %d: %+v vs %+v", i, parsed.Members[i], orig.Members[i])
		}
	}
	// The parsed map routes — Validate ran inside ParseFleetMap.
	rng := hash.NewRNG(8)
	for i := 0; i < 100; i++ {
		flow := core.FlowKey(rng.Uint64())
		if parsed.HomeName(flow) != orig.HomeName(flow) {
			t.Fatalf("flow %d homes differently after round-trip", flow)
		}
	}
}

func TestFleetMapRoutingMatchesPartitioner(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	fm := mapForNames(t, 1, names...)
	part, err := NewPartitioner(names)
	if err != nil {
		t.Fatal(err)
	}
	rng := hash.NewRNG(17)
	for i := 0; i < 500; i++ {
		flow := core.FlowKey(rng.Uint64())
		if fm.FlowHome(flow) != part.Home(flow) {
			t.Fatalf("flow %d: map homes %d, partitioner homes %d", flow, fm.FlowHome(flow), part.Home(flow))
		}
	}
}

func TestFleetMapRejects(t *testing.T) {
	member := FleetMember{Name: "a", Ingest: "a:1", Query: "http://a:2"}
	cases := map[string]struct {
		epoch   uint64
		members []FleetMember
	}{
		"no members": {1, nil},
		"dup name": {1, []FleetMember{member,
			{Name: "a", Ingest: "b:1", Query: "http://b:2"}}},
		"empty name":   {1, []FleetMember{{Name: "", Ingest: "a:1", Query: "http://a:2"}}},
		"empty ingest": {1, []FleetMember{{Name: "a", Ingest: "", Query: "http://a:2"}}},
		"empty query":  {1, []FleetMember{{Name: "a", Ingest: "a:1", Query: ""}}},
	}
	for name, c := range cases {
		if _, err := NewFleetMap(c.epoch, c.members); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := ParseFleetMap([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ParseFleetMap([]byte(`{"epoch":1,"members":[]}`)); err == nil {
		t.Error("empty membership accepted")
	}
}

func TestFleetMapRosterInterface(t *testing.T) {
	fm := mapForNames(t, 9, "x", "y")
	if fm.FleetEpoch() != 9 {
		t.Fatalf("FleetEpoch = %d", fm.FleetEpoch())
	}
	addrs := fm.IngestAddrs()
	if len(addrs) != 2 || addrs[0] != "x:1" || addrs[1] != "y:1" {
		t.Fatalf("IngestAddrs = %v", addrs)
	}
	urls := fm.QueryURLs()
	if len(urls) != 2 || urls[0] != "http://x:2" || urls[1] != "http://y:2" {
		t.Fatalf("QueryURLs = %v", urls)
	}
}
