package federation

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/collector"
)

// Frontend is the fleet's single query endpoint: it fans /snapshot,
// /stats, and /healthz out to every member, folds the per-member answers
// into the same fixed-order JSON a single collector emits, and degrades
// explicitly when a member is down — the response carries the
// PartialHeader plus a per-node error list naming exactly which members
// are missing from the merge, instead of failing the whole query or
// silently presenting a subset as the truth.
//
// The /snapshot merge is the HTTP twin of Fleet.MergedAnswers: members
// hold disjoint flows (the partitioner's invariant) and list them in
// sorted key order, so folding is a k-way merge by flow key — the wire
// image of core.Recording.Merge's pure adoption — and the merged body is
// byte-identical to the single-collector body whenever the fleet is
// healthy.
type Frontend struct {
	// Nodes are the members' query base URLs ("http://host:port"), in
	// fleet order. When the frontend holds a fleet map this list follows
	// it; read it through SetFleetMap/CurrentFleetMap rather than
	// mutating it once the frontend is serving.
	Nodes []string
	// Client issues the fan-out requests (default: a fresh client with
	// Timeout as its overall bound).
	Client *http.Client
	// Timeout bounds each fan-out request (default 10s).
	Timeout time.Duration

	// mu guards Nodes and fleetMap against a POST /fleetmap racing the
	// fan-out handlers.
	mu       sync.RWMutex
	fleetMap *FleetMap
}

// frontendConfig is the resolved form of NewFrontend's options.
type frontendConfig struct {
	nodes   []string
	fm      *FleetMap
	timeout time.Duration
	client  *http.Client
}

// FrontendOption configures NewFrontend.
type FrontendOption func(*frontendConfig)

// WithMembers sets the members' query base URLs explicitly (no fleet
// map: the frontend serves whatever these nodes answer, with no epoch
// staleness detection).
func WithMembers(urls ...string) FrontendOption {
	return func(c *frontendConfig) { c.nodes = append([]string(nil), urls...) }
}

// WithFleetMap seeds the frontend with the fleet's epoch-versioned map:
// the member list follows the map, GET /fleetmap serves it, and a member
// whose response carries a different epoch (mid-resize) lands in the
// response's error list as "epoch_stale" instead of being merged.
func WithFleetMap(m *FleetMap) FrontendOption {
	return func(c *frontendConfig) { c.fm = m }
}

// WithTimeout bounds each fan-out request (default 10s).
func WithTimeout(d time.Duration) FrontendOption {
	return func(c *frontendConfig) { c.timeout = d }
}

// WithClient supplies the HTTP client for fan-out requests, overriding
// the default (a fresh client bounded by the timeout).
func WithClient(client *http.Client) FrontendOption {
	return func(c *frontendConfig) { c.client = client }
}

// PartialHeader marks a response merged from a degraded fleet: its value
// is the number of members that failed, and the body's "errors" list
// names them. Absent on a healthy merge.
const PartialHeader = "X-Pint-Partial"

// maxNodeResponse caps one member's fan-out response body (64 MiB —
// far beyond any sane snapshot; a member exceeding it is reported with
// an explicit over-cap error rather than a truncated-JSON parse error).
const maxNodeResponse = collector.MaxRequestBody * 64

// NewFrontend builds a frontend — the options entry point mirroring
// collector.New and collector.Connect:
//
//	fe, err := federation.NewFrontend(
//	        federation.WithFleetMap(fm),
//	        federation.WithTimeout(5*time.Second))
//
// Members come from WithFleetMap (the map's query URLs, plus epoch
// staleness detection and the /fleetmap endpoints) or WithMembers (a
// bare URL list); at least one is required. NewStaticFrontend is the
// positional compatibility path.
func NewFrontend(opts ...FrontendOption) (*Frontend, error) {
	var cfg frontendConfig
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	g := &Frontend{Client: cfg.client, Timeout: cfg.timeout}
	if cfg.fm != nil {
		if err := cfg.fm.Validate(); err != nil {
			return nil, err
		}
		g.fleetMap = cfg.fm
		g.Nodes = cfg.fm.QueryURLs()
	}
	if len(cfg.nodes) > 0 {
		g.Nodes = cfg.nodes
	}
	if len(g.Nodes) == 0 {
		return nil, fmt.Errorf("federation: frontend needs members (WithMembers or WithFleetMap)")
	}
	return g, nil
}

// NewStaticFrontend builds a frontend over a bare list of member query
// URLs — the compatibility path for the pre-options constructor. New
// code should use NewFrontend(WithFleetMap(...)), which adds epoch
// staleness detection and the /fleetmap endpoints.
func NewStaticFrontend(nodes []string) (*Frontend, error) {
	return NewFrontend(WithMembers(nodes...))
}

// SetFleetMap installs a newer fleet map: the member list, the epoch
// used for staleness detection, and the document GET /fleetmap serves
// all move together. The epoch must not regress.
func (g *Frontend) SetFleetMap(m *FleetMap) error {
	if m == nil {
		return fmt.Errorf("federation: nil fleet map")
	}
	if err := m.Validate(); err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.fleetMap != nil && m.Epoch < g.fleetMap.Epoch {
		return fmt.Errorf("federation: fleet map epoch regressed (%d, currently %d)", m.Epoch, g.fleetMap.Epoch)
	}
	g.fleetMap = m
	g.Nodes = m.QueryURLs()
	return nil
}

// CurrentFleetMap returns the map the frontend is serving (nil for a
// static frontend).
func (g *Frontend) CurrentFleetMap() *FleetMap {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.fleetMap
}

// roster snapshots the node list and the expected epoch (checkEpoch
// false for a static frontend) for one fan-out.
func (g *Frontend) roster() (nodes []string, wantEpoch uint64, checkEpoch bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.fleetMap != nil {
		wantEpoch, checkEpoch = g.fleetMap.Epoch, true
	}
	return g.Nodes, wantEpoch, checkEpoch
}

// NodeError is one fleet member's failure in a fan-out, as reported in
// the response body's "errors" list. Status carries the member's HTTP
// status when the failure was an HTTP-level refusal (0 for transport
// errors and unparseable bodies). Kind classifies non-HTTP failures the
// caller may want to react to ("epoch_stale": the member answered from a
// different fleet epoch than the frontend's map — a resize is in flight
// — and its answer was excluded from the merge rather than silently
// mixed across partitionings).
type NodeError struct {
	Node   string `json:"node"`
	Error  string `json:"error"`
	Status int    `json:"status,omitempty"`
	Kind   string `json:"kind,omitempty"`
}

// NodeErrorEpochStale is the NodeError.Kind for a member that answered
// from a different fleet epoch than the frontend's map.
const NodeErrorEpochStale = "epoch_stale"

// fetch GETs path (plus rawQuery) from every node concurrently and
// returns the node list used plus the bodies, position-aligned with it;
// failures (transport errors, non-200 statuses, and epoch-stale answers)
// land in the error list instead.
func (g *Frontend) fetch(path, rawQuery string) (nodes []string, bodies [][]byte, errs []NodeError) {
	client := g.Client
	if client == nil {
		timeout := g.Timeout
		if timeout <= 0 {
			timeout = 10 * time.Second
		}
		client = &http.Client{Timeout: timeout}
	}
	nodes, wantEpoch, checkEpoch := g.roster()
	bodies = make([][]byte, len(nodes))
	nodeErrs := make([]*NodeError, len(nodes))
	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			url := node + path
			if rawQuery != "" {
				url += "?" + rawQuery
			}
			resp, err := client.Get(url)
			if err != nil {
				nodeErrs[i] = &NodeError{Node: node, Error: err.Error()}
				return
			}
			defer resp.Body.Close()
			// Read one byte past the cap so truncation is detected and
			// named, instead of handing a cut-off document to the JSON
			// decoder and misreporting the node as corrupt.
			body, err := io.ReadAll(io.LimitReader(resp.Body, maxNodeResponse+1))
			if err != nil {
				nodeErrs[i] = &NodeError{Node: node, Error: err.Error()}
				return
			}
			if len(body) > maxNodeResponse {
				nodeErrs[i] = &NodeError{
					Node:  node,
					Error: fmt.Sprintf("response exceeds the %d-byte fan-out cap", maxNodeResponse),
				}
				return
			}
			if resp.StatusCode != http.StatusOK {
				nodeErrs[i] = &NodeError{
					Node:   node,
					Error:  fmt.Sprintf("status %s: %s", resp.Status, firstLine(body)),
					Status: resp.StatusCode,
				}
				return
			}
			// A member mid-resize answers from a different partitioning;
			// merging it with the rest would mix two fleet maps in one
			// document. Exclude it and say so. (Members predating the
			// epoch header send none — nothing to check.)
			if raw := resp.Header.Get(collector.EpochHeader); checkEpoch && raw != "" && raw != strconv.FormatUint(wantEpoch, 10) {
				nodeErrs[i] = &NodeError{
					Node:  node,
					Error: fmt.Sprintf("member is at fleet epoch %s, frontend map is at %d (resize in flight)", raw, wantEpoch),
					Kind:  NodeErrorEpochStale,
				}
				return
			}
			bodies[i] = body
		}(i, node)
	}
	wg.Wait()
	for _, ne := range nodeErrs {
		if ne != nil {
			errs = append(errs, *ne)
		}
	}
	return nodes, bodies, errs
}

// unanimousStatus reports the HTTP status every member answered with,
// when every member failed at the HTTP level with the same status — the
// shape of a client error (bad ?flow=) or a fleet-wide drain, which must
// propagate as that status rather than masquerade as a fleet outage.
func unanimousStatus(nNodes int, errs []NodeError) (int, bool) {
	if len(errs) != nNodes || nNodes == 0 {
		return 0, false
	}
	status := errs[0].Status
	if status == 0 {
		return 0, false
	}
	for _, e := range errs[1:] {
		if e.Status != status {
			return 0, false
		}
	}
	return status, true
}

func firstLine(b []byte) string {
	for i, c := range b {
		if c == '\n' {
			return string(b[:i])
		}
	}
	return string(b)
}

// markPartial stamps the degraded-fleet signal on a response.
func markPartial(w http.ResponseWriter, errs []NodeError) {
	if len(errs) > 0 {
		w.Header().Set(PartialHeader, fmt.Sprintf("%d", len(errs)))
	}
}

// Handler serves the merged observability surface:
//
//	GET /healthz         fleet-wide health: ok iff every member is ok
//	GET /stats           per-node counters plus fleet totals
//	GET /snapshot        all members' flows, merged in flow-key order
//	GET /snapshot?flow=N the home member's answer for one flow
//
// Serve it through collector.HardenedHTTPServer (cmd/pintgate does).
func (g *Frontend) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", g.serveHealthz)
	mux.HandleFunc("GET /stats", g.serveStats)
	mux.HandleFunc("GET /snapshot", g.serveSnapshot)
	mux.HandleFunc("GET /fleetmap", g.serveFleetMapGet)
	mux.HandleFunc("POST /fleetmap", g.serveFleetMapPost)
	return mux
}

// serveFleetMapGet publishes the current fleet map — the document
// exporters (collector.WithRosterFetch) and operators fetch to learn the
// fleet's epoch, membership, and addresses.
func (g *Frontend) serveFleetMapGet(w http.ResponseWriter, r *http.Request) {
	fm := g.CurrentFleetMap()
	if fm == nil {
		http.Error(w, "federation: frontend has no fleet map (static member list)", http.StatusNotFound)
		return
	}
	collector.WriteJSON(w, fm)
}

// serveFleetMapPost accepts the next epoch's map from a resize
// coordinator; the frontend's member list and staleness epoch follow it
// atomically.
func (g *Frontend) serveFleetMapPost(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, collector.MaxRequestBody))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fm, err := ParseFleetMap(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := g.SetFleetMap(fm); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	collector.WriteJSON(w, map[string]any{"ok": true, "epoch": fm.Epoch})
}

// nodeHealth is one member's /healthz as the frontend re-presents it.
type nodeHealth struct {
	Node     string `json:"node"`
	OK       bool   `json:"ok"`
	PlanHash string `json:"plan_hash,omitempty"`
	Error    string `json:"error,omitempty"`
}

func (g *Frontend) serveHealthz(w http.ResponseWriter, r *http.Request) {
	roster, bodies, errs := g.fetch("/healthz", "")
	down := map[string]string{}
	for _, e := range errs {
		down[e.Node] = e.Error
	}
	nodes := make([]nodeHealth, len(roster))
	ok := true
	planHashes := map[string]bool{}
	for i, node := range roster {
		nodes[i] = nodeHealth{Node: node}
		if msg, dead := down[node]; dead {
			nodes[i].Error = msg
			ok = false
			continue
		}
		var h struct {
			OK       bool   `json:"ok"`
			PlanHash string `json:"plan_hash"`
		}
		if err := json.Unmarshal(bodies[i], &h); err != nil {
			nodes[i].Error = fmt.Sprintf("bad health body: %v", err)
			errs = append(errs, NodeError{Node: node, Error: nodes[i].Error})
			ok = false
			continue
		}
		nodes[i].OK = h.OK
		nodes[i].PlanHash = h.PlanHash
		if !h.OK {
			ok = false
		}
		planHashes[h.PlanHash] = true
	}
	// A fleet whose members disagree on the execution plan cannot answer
	// coherently even when every member is individually healthy.
	if len(planHashes) > 1 {
		ok = false
	}
	markPartial(w, errs)
	collector.WriteJSON(w, map[string]any{
		"ok":             ok,
		"plan_divergent": len(planHashes) > 1,
		"nodes":          nodes,
	})
}

// nodeStats is one member's /stats as the frontend re-presents it.
type nodeStats struct {
	Node  string             `json:"node"`
	Stats *collector.StatsV1 `json:"stats,omitempty"`
	Error string             `json:"error,omitempty"`
}

func (g *Frontend) serveStats(w http.ResponseWriter, r *http.Request) {
	roster, bodies, errs := g.fetch("/stats", "")
	down := map[string]string{}
	for _, e := range errs {
		down[e.Node] = e.Error
	}
	nodes := make([]nodeStats, len(roster))
	// The fleet total is the same versioned document one daemon serves:
	// counter sections sum, tenant sections merge by name (re-deriving
	// each error envelope), point-in-time sections stay per-member.
	total := collector.StatsV1{Schema: collector.StatsSchemaV1}
	for i, node := range roster {
		nodes[i] = nodeStats{Node: node}
		if msg, dead := down[node]; dead {
			nodes[i].Error = msg
			continue
		}
		var st collector.StatsV1
		if err := json.Unmarshal(bodies[i], &st); err != nil {
			nodes[i].Error = fmt.Sprintf("bad stats body: %v", err)
			errs = append(errs, NodeError{Node: node, Error: nodes[i].Error})
			continue
		}
		if st.Schema != collector.StatsSchemaV1 {
			nodes[i].Error = fmt.Sprintf("unknown stats schema %q", st.Schema)
			errs = append(errs, NodeError{Node: node, Error: nodes[i].Error})
			continue
		}
		nodes[i].Stats = &st
		total.Accumulate(st)
	}
	markPartial(w, errs)
	collector.WriteJSON(w, map[string]any{
		"nodes": nodes,
		"total": total,
	})
}

func (g *Frontend) serveSnapshot(w http.ResponseWriter, r *http.Request) {
	roster, bodies, errs := g.fetch("/snapshot", r.URL.RawQuery)
	// Every member refusing with one status is that status, not a
	// degraded fleet: a bad ?flow= is the client's 400 and a fleet-wide
	// drain is the members' 503 — exactly what a single collector would
	// answer. Mixed failures fall through to the partial-result merge.
	if status, ok := unanimousStatus(len(roster), errs); ok {
		// A fleet-wide drain keeps the single collector's retry hint.
		if status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		http.Error(w, errs[0].Error, status)
		return
	}
	explicit := len(r.URL.Query()["flow"]) > 0
	perNode := make([][]collector.FlowAnswers, 0, len(roster))
	for i, node := range roster {
		if bodies[i] == nil {
			continue
		}
		var snap struct {
			Flows []collector.FlowAnswers `json:"flows"`
		}
		if err := json.Unmarshal(bodies[i], &snap); err != nil {
			errs = append(errs, NodeError{Node: node, Error: fmt.Sprintf("bad snapshot body: %v", err)})
			continue
		}
		perNode = append(perNode, snap.Flows)
	}
	var merged []collector.FlowAnswers
	if explicit {
		merged = mergeExplicit(perNode)
	} else {
		merged = mergeDisjoint(perNode)
	}
	markPartial(w, errs)
	if len(errs) > 0 {
		collector.WriteJSON(w, map[string]any{"errors": errs, "flows": merged})
		return
	}
	// Healthy path: the body is byte-identical to a single collector's.
	collector.WriteJSON(w, map[string]any{"flows": merged})
}

// mergeDisjoint k-way-merges per-node flow lists by ascending flow key.
// Each node lists only the flows it tracks (disjoint under the
// partitioner) in sorted order, so this reproduces exactly the flow order
// a single collector's merged Recording would list. A flow appearing on
// two nodes (a partitioning violation — some exporter routed under a
// different map) keeps the first node's answer deterministically.
func mergeDisjoint(perNode [][]collector.FlowAnswers) []collector.FlowAnswers {
	total := 0
	for _, fl := range perNode {
		total += len(fl)
	}
	merged := make([]collector.FlowAnswers, 0, total)
	idx := make([]int, len(perNode))
	for {
		best := -1
		for n, fl := range perNode {
			if idx[n] >= len(fl) {
				continue
			}
			if best == -1 || fl[idx[n]].Flow < perNode[best][idx[best]].Flow {
				best = n
			}
		}
		if best == -1 {
			return merged
		}
		fa := perNode[best][idx[best]]
		idx[best]++
		if len(merged) > 0 && merged[len(merged)-1].Flow == fa.Flow {
			continue
		}
		merged = append(merged, fa)
	}
}

// mergeExplicit folds answers for an explicit ?flow= list: every node
// answers every requested flow (non-home nodes with empty state), so per
// flow the home node's answer — the one marked tracked — wins; if no node
// tracks the flow, all answers are identically empty and the first is
// kept. Request order is preserved, matching the single-collector body.
func mergeExplicit(perNode [][]collector.FlowAnswers) []collector.FlowAnswers {
	if len(perNode) == 0 {
		return nil
	}
	n := len(perNode[0])
	merged := make([]collector.FlowAnswers, 0, n)
	for i := 0; i < n; i++ {
		pick := perNode[0][i]
		for _, fl := range perNode[1:] {
			if i < len(fl) && fl[i].Tracked && !pick.Tracked {
				pick = fl[i]
			}
		}
		merged = append(merged, pick)
	}
	return merged
}

// SortNodeErrors orders an error list by node for stable presentation.
func SortNodeErrors(errs []NodeError) {
	sort.Slice(errs, func(i, j int) bool { return errs[i].Node < errs[j].Node })
}
