// Package federation is the horizontal-scale tier of the collector: a
// fleet of N collector daemons (internal/collector) standing behind an
// exporter-side flow partitioner and a merging query frontend, so the
// recording tier scales by adding machines instead of sharding one.
//
// Three invariants make a fleet answer exactly like one big collector:
//
//   - home routing: a consistent-hash partitioner maps every flow ID to
//     exactly one fleet member, and exporters route each digest there, so
//     per-flow decode state (the paper's Inference Module state) never
//     splits across nodes;
//   - epoch fencing: exporters carry the cluster epoch in their session
//     handshake (wire.Hello.Epoch) and every member refuses a mismatched
//     epoch, so an exporter holding a stale fleet map cannot mix two
//     partitionings in one deployment;
//   - merge at query time: the frontend fans a query out to the fleet and
//     folds the per-member answers exactly the way the sharded sink folds
//     its per-shard Recordings (core.Recording.Merge — pure adoption of
//     disjoint flows), so the merged answer is byte-identical to a single
//     collector that ingested everything.
//
// The federated-scale scenario (internal/scenario) pins that identity at
// fleet sizes {1,2,4} × sink shards {1,4}; cmd/pintgate is the frontend
// as a daemon, and cmd/pintd -epoch / cmd/pintload -addr a,b,c are the
// member and exporter sides.
package federation

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hash"
)

// partitionSeed salts the rendezvous scores so the flow→member map is
// independent of the sink's flow→shard map (both ultimately mix the same
// flow keys).
const partitionSeed hash.Seed = 0xFEDE7A7E

// Partitioner maps flow keys to fleet members by rendezvous (highest-
// random-weight) hashing over stable member identities: each flow scores
// every member and lives on the highest scorer. Two properties matter:
//
//   - determinism: the map is a pure function of (member names, flow), so
//     every exporter — and any offline tool — computes the same homes
//     from the same fleet configuration, with no coordination (the same
//     implicit-agreement trick the paper's global hashes play, §4.1);
//   - consistency: removing a member reassigns only that member's flows
//     (everyone else's top scorer is unchanged), so a fleet resize under
//     a new epoch moves the minimum possible state.
//
// A Partitioner is immutable and safe for concurrent use.
type Partitioner struct {
	members []string
	ids     []uint64
}

// NewPartitioner builds the flow→member map over the fleet's member
// names (addresses, hostnames — any stable strings). Order does not
// matter for scoring, but Home returns indices into this slice, so every
// component of one deployment must use the identical list.
func NewPartitioner(members []string) (*Partitioner, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("federation: empty member list")
	}
	seen := map[string]bool{}
	ids := make([]uint64, len(members))
	for i, m := range members {
		if m == "" {
			return nil, fmt.Errorf("federation: empty member name at index %d", i)
		}
		if seen[m] {
			return nil, fmt.Errorf("federation: duplicate member %q", m)
		}
		seen[m] = true
		ids[i] = partitionSeed.HashString(m)
	}
	return &Partitioner{members: append([]string(nil), members...), ids: ids}, nil
}

// N returns the fleet size.
func (p *Partitioner) N() int { return len(p.ids) }

// Members returns the member names, in Home-index order.
func (p *Partitioner) Members() []string { return append([]string(nil), p.members...) }

// Home returns the index of the fleet member that owns flow — the only
// member whose collector may ingest the flow's digests.
func (p *Partitioner) Home(flow core.FlowKey) int {
	f := hash.Mix64(uint64(flow))
	best, bestScore := 0, uint64(0)
	for i, id := range p.ids {
		// Mix the member identity with the mixed flow key; ties broken by
		// the larger member id so equal scores cannot depend on list order.
		score := hash.Mix64(id ^ f)
		if score > bestScore || (score == bestScore && id > p.ids[best]) {
			best, bestScore = i, score
		}
	}
	return best
}

// Route returns Home as a routing closure for collector.DialFleet.
func (p *Partitioner) Route() func(core.FlowKey) int { return p.Home }
