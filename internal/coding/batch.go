package coding

import "repro/internal/hash"

// Batch accessors: the loop-invariant constants the op-major encode path
// hoists out of its per-packet columns. Each is the exact integer form of
// a decision acts()/payload() makes per packet, pinned by TestActConst
// and the core parity suite.

// ActConst returns the integer act-decision constant for (hop, layer):
// the packet acts exactly when g(pkt, hop) < thr, or unconditionally when
// always. Layer 0 is the Baseline reservoir (hops <= 1 always write);
// XOR layers compare against the layer's precomputed threshold. Only
// valid when Config().FastVectors is false — the fast-vector scheme's
// decisions are word ANDs, not one threshold compare, so batch callers
// fall back to ActsInLayer there.
func (e *Encoder) ActConst(hop, layer int) (thr uint64, always bool) {
	if layer == 0 {
		if hop <= 1 {
			return 0, true
		}
		return hash.ReservoirThreshold(hop), false
	}
	t := e.layerThresh[layer-1]
	if t == ^uint64(0) {
		return 0, true
	}
	return t, false
}

// ActGlobal exposes the encoder's global hash family so batch callers
// can evaluate act-decision columns (hash.Global.ActHashColumn) against
// ActConst thresholds — the same family behind ActsOn/ActsInLayer.
func (e *Encoder) ActGlobal() *hash.Global { return &e.g }

// InstanceGlobal returns the value-hash family of hash instance i
// (0 <= i < Config().TotalBits()/Config().Bits) — the family payload()
// consults for that instance in hashed mode.
func (e *Encoder) InstanceGlobal(i int) *hash.Global { return &e.insts[i] }
