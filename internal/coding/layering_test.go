package coding

import (
	"math"
	"testing"
)

func TestLog2Star(t *testing.T) {
	cases := []struct {
		x    float64
		want int
	}{
		{0.5, 0}, {1, 0}, {2, 1}, {4, 2}, {5, 3}, {15, 3}, {16, 3},
		{256, 4}, {65536, 4}, {65537, 5},
	}
	for _, c := range cases {
		if got := Log2Star(c.x); got != c.want {
			t.Fatalf("Log2Star(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestIterExpE(t *testing.T) {
	if IterExpE(0) != 1 {
		t.Fatal("e↑↑0 must be 1")
	}
	if math.Abs(IterExpE(1)-math.E) > 1e-12 {
		t.Fatal("e↑↑1 must be e")
	}
	if math.Abs(IterExpE(2)-math.Exp(math.E)) > 1e-9 {
		t.Fatal("e↑↑2 must be e^e")
	}
	if !math.IsInf(IterExpE(5), 1) {
		t.Fatal("e↑↑5 must saturate to +Inf in float64")
	}
}

func TestMultiLayerLayerCount(t *testing.T) {
	// Paper: L = 1 if d <= 15 = ⌊e^e⌋, L = 2 for 16 <= d <= e^e^e.
	for _, d := range []int{2, 5, 10, 15} {
		if got := MultiLayer(d, true).Layers(); got != 1 {
			t.Fatalf("d=%d: L=%d, want 1", d, got)
		}
	}
	for _, d := range []int{16, 25, 59, 1000, 1000000} {
		if got := MultiLayer(d, true).Layers(); got != 2 {
			t.Fatalf("d=%d: L=%d, want 2", d, got)
		}
	}
}

func TestMultiLayerProbs(t *testing.T) {
	l := MultiLayer(25, true)
	if math.Abs(l.Probs[0]-1.0/25) > 1e-12 {
		t.Fatalf("p1 = %v, want 1/d", l.Probs[0])
	}
	if math.Abs(l.Probs[1]-math.E/25) > 1e-12 {
		t.Fatalf("p2 = %v, want e/d", l.Probs[1])
	}
}

func TestMultiLayerTau(t *testing.T) {
	// Revised tau (A.3) must exceed Algorithm 1's tau: more Baseline
	// packets, strictly fewer packets overall per the appendix.
	for _, d := range []int{5, 10, 25, 59} {
		orig := MultiLayer(d, false).Tau
		rev := MultiLayer(d, true).Tau
		if !(rev > orig) {
			t.Fatalf("d=%d: revised tau %v must exceed original %v", d, rev, orig)
		}
		if orig < 0 || rev > 1 {
			t.Fatalf("d=%d: tau out of range", d)
		}
	}
}

func TestHybridFootnote8(t *testing.T) {
	// d <= 15: log log d < 1, so the xor probability becomes 1/log d.
	l := Hybrid(10, 0.75)
	want := 1 / math.Log2(10)
	if math.Abs(l.Probs[0]-want) > 1e-12 {
		t.Fatalf("d=10: p = %v, want 1/log d = %v", l.Probs[0], want)
	}
	l = Hybrid(25, 0.75)
	want = math.Log2(math.Log2(25)) / math.Log2(25)
	if math.Abs(l.Probs[0]-want) > 1e-12 {
		t.Fatalf("d=25: p = %v, want loglogd/logd = %v", l.Probs[0], want)
	}
}

func TestLayeringValidate(t *testing.T) {
	if err := PureBaseline().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Layering{Tau: -0.1}).Validate(); err == nil {
		t.Fatal("negative tau must fail")
	}
	if err := (Layering{Tau: 0.5}).Validate(); err == nil {
		t.Fatal("tau<1 without XOR layers must fail")
	}
	if err := (Layering{Tau: 0.5, Probs: []float64{0}}).Validate(); err == nil {
		t.Fatal("zero layer probability must fail")
	}
	if err := MultiLayer(25, true).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := PureXOR(1.0 / 25).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectPartition(t *testing.T) {
	l := MultiLayer(25, true)
	// Layer frequencies must match: tau for 0, (1-tau)/L for each XOR layer.
	counts := map[int]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		u := float64(i) / n
		counts[l.Select(u)]++
	}
	if got := float64(counts[0]) / n; math.Abs(got-l.Tau) > 0.01 {
		t.Fatalf("baseline fraction %v, want %v", got, l.Tau)
	}
	per := (1 - l.Tau) / float64(l.Layers())
	for ell := 1; ell <= l.Layers(); ell++ {
		if got := float64(counts[ell]) / n; math.Abs(got-per) > 0.01 {
			t.Fatalf("layer %d fraction %v, want %v", ell, got, per)
		}
	}
}

func TestSelectPureBaseline(t *testing.T) {
	l := PureBaseline()
	for _, u := range []float64{0, 0.3, 0.999} {
		if l.Select(u) != 0 {
			t.Fatal("pure baseline must always select layer 0")
		}
	}
}

func TestSelectPureXOR(t *testing.T) {
	l := PureXOR(0.1)
	for _, u := range []float64{0, 0.3, 0.999} {
		if l.Select(u) != 1 {
			t.Fatal("pure XOR must always select layer 1")
		}
	}
}

func TestCouponCollectorMean(t *testing.T) {
	// k=25: k·H_25 ≈ 95.4 (the paper quotes a median of 89 for k=25).
	got := CouponCollectorMean(25)
	if math.Abs(got-95.4) > 0.5 {
		t.Fatalf("25·H_25 = %v, want ≈95.4", got)
	}
	if CouponCollectorMean(1) != 1 {
		t.Fatal("k=1 needs exactly 1 packet in expectation")
	}
}
