package coding

import (
	"math"
	"testing"

	"repro/internal/hash"
)

func TestLog2InvP(t *testing.T) {
	cases := []struct {
		p    float64
		want int
	}{
		{0.5, 1}, {0.25, 2}, {1.0 / 16, 4}, {0.1, 3}, {1, 1}, {2, 1}, {1e-30, 63},
	}
	for _, c := range cases {
		if got := log2InvP(c.p); got != c.want {
			t.Fatalf("log2InvP(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestFastVectorEncoderDecoderAgree(t *testing.T) {
	// The encoder's per-hop bit check and the decoder's whole-path vector
	// must be the same function — the coordination invariant.
	cfg := Config{Bits: 8, Mode: ModeHashed, FastVectors: true,
		Layering: PureXOR(1.0 / 8)}
	g := hash.NewGlobal(31)
	enc, err := NewEncoder(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(cfg, g, 20, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for pkt := uint64(0); pkt < 5000; pkt++ {
		mask := dec.actingSet(pkt, 1)
		for hop := 1; hop <= 20; hop++ {
			encActs := enc.acts(pkt, hop, 1)
			decActs := mask>>(uint(hop)-1)&1 == 1
			if encActs != decActs {
				t.Fatalf("pkt %d hop %d: encoder %v decoder %v", pkt, hop, encActs, decActs)
			}
		}
	}
}

func TestFastVectorDensity(t *testing.T) {
	// Rounded probability: p=1/8 -> exactly 2^-3 per hop.
	cfg := Config{Bits: 8, Mode: ModeHashed, FastVectors: true,
		Layering: PureXOR(1.0 / 8)}
	g := hash.NewGlobal(32)
	enc, _ := NewEncoder(cfg, g)
	hits, n := 0, 100000
	for pkt := uint64(0); pkt < uint64(n); pkt++ {
		if enc.acts(pkt, 5, 1) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.125) > 0.01 {
		t.Fatalf("act density %v, want 0.125", got)
	}
}

func TestFastVectorLayersIndependent(t *testing.T) {
	cfg := Config{Bits: 8, Mode: ModeHashed, FastVectors: true,
		Layering: Layering{Tau: 0.5, Probs: []float64{0.5, 0.5}}}
	g := hash.NewGlobal(33)
	dec, err := NewDecoder(cfg, g, 30, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for pkt := uint64(0); pkt < 2000; pkt++ {
		if dec.actingSet(pkt, 1) == dec.actingSet(pkt, 2) {
			same++
		}
	}
	// Two independent 30-bit masks at p=1/2 collide with probability 2^-30;
	// any meaningful overlap means the layer namespace is broken.
	if same > 2 {
		t.Fatalf("layers produced identical act sets %d times", same)
	}
}

func TestFastVectorDecodesCorrectly(t *testing.T) {
	for _, k := range []int{5, 25, 59} {
		cfg := Config{Bits: 8, Mode: ModeHashed, FastVectors: true,
			Layering: MultiLayer(k, true)}
		values := pathValues(k)
		universe := universeWith(values, 200)
		n, ok, err := Trial(cfg, hash.Seed(uint64(40+k)), values, universe,
			hash.NewRNG(uint64(k)), 200000)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("k=%d: fast-vector decode failed", k)
		}
		if n < k {
			t.Fatalf("k=%d: decoded with %d < k packets", k, n)
		}
	}
}

func TestFastVectorComparablePacketCount(t *testing.T) {
	// Rounding probabilities to powers of two is a √2-approximation; the
	// packet count must stay within a small constant of the exact variant.
	values := pathValues(25)
	universe := universeWith(values, 200)
	exact := Config{Bits: 8, Mode: ModeHashed, Layering: MultiLayer(25, true)}
	fast := exact
	fast.FastVectors = true
	se, err := RunTrials(exact, values, universe, 150, 51, 100000)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := RunTrials(fast, values, universe, 150, 52, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if sf.Mean > 2*se.Mean {
		t.Fatalf("fast variant mean %v vs exact %v: rounding cost too high",
			sf.Mean, se.Mean)
	}
}

func BenchmarkActSetExact(b *testing.B) {
	cfg := Config{Bits: 8, Mode: ModeHashed, Layering: PureXOR(1.0 / 16)}
	g := hash.NewGlobal(60)
	dec, _ := NewDecoder(cfg, g, 59, []uint64{1})
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= dec.actingSet(uint64(i), 1)
	}
	benchSink = acc
}

func BenchmarkActSetFastVectors(b *testing.B) {
	cfg := Config{Bits: 8, Mode: ModeHashed, FastVectors: true, Layering: PureXOR(1.0 / 16)}
	g := hash.NewGlobal(60)
	dec, _ := NewDecoder(cfg, g, 59, []uint64{1})
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= dec.actingSet(uint64(i), 1)
	}
	benchSink = acc
}

var benchSink uint64
