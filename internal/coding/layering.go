// Package coding implements PINT's distributed encoding schemes (§4.2):
// the message M₁…M_k is split across the k switches on a flow's path, each
// switch holding exactly one block, and the receiver must reconstruct all
// blocks from a stream of b-bit packet digests.
//
// Schemes provided:
//
//   - Baseline — each packet carries one uniformly-sampled block
//     (Reservoir Sampling over the path); decoding is the Coupon
//     Collector process, Θ(k ln k) packets.
//   - XOR — each switch xors its block in independently with probability
//     p = 1/d; decoding peels packets with a single unknown block.
//   - Hybrid — interleaves Baseline (probability τ) with one XOR layer,
//     the combination Fig 5 shows dominating both.
//   - Multi-layer — Algorithm 1: Baseline plus L XOR layers with
//     probabilities p_ℓ = e↑↑(ℓ−1)/d, achieving k·log log* k (1+o(1))
//     packets (Theorem 3).
//   - LNC — Linear Network Coding comparator [32]: every switch xors with
//     probability 1/2 and the receiver solves a GF(2) linear system,
//     ≈ k + log₂k packets but with O(k³) decoding and no sub-value-width
//     hashing support (§4.2, "Comparison with Linear Network Coding").
//
// Two digest modes are supported, mirroring §4.2's two bit-reduction
// techniques: raw blocks with *fragmentation* (values wider than the
// budget are split into ⌈q/b⌉ fragments, a per-packet hash picking which
// fragment travels), and *hashed values* (the digest is h(M_i, pkt),
// decodable against a known universe V of possible values, e.g. the set
// of switch IDs). Hashed mode also supports multiple independent hash
// instances ("2×(b=8)" in Fig 10).
package coding

import (
	"fmt"
	"math"
)

// Log2Star returns the base-2 iterated logarithm: the number of times log₂
// must be applied to x before the result is at most 1.
func Log2Star(x float64) int {
	n := 0
	for x > 1 {
		x = math.Log2(x)
		n++
	}
	return n
}

// IterExpE returns e↑↑n (Knuth's iterated exponentiation): e↑↑0 = 1,
// e↑↑n = e^(e↑↑(n−1)). Saturates at +Inf quickly; callers clamp.
func IterExpE(n int) float64 {
	v := 1.0
	for i := 0; i < n; i++ {
		v = math.Exp(v)
		if math.IsInf(v, 1) {
			return v
		}
	}
	return v
}

// Layering describes how packets are split between the Baseline layer
// (layer 0) and the XOR layers 1..L, and with what xor probability each
// XOR layer acts. It is shared verbatim by encoders and decoders — the
// whole point of global-hash coordination.
type Layering struct {
	// Tau is the probability a packet serves the Baseline layer.
	Tau float64
	// Probs[ℓ-1] is the xor probability of XOR layer ℓ. Empty means the
	// scheme is pure Baseline.
	Probs []float64
}

// PureBaseline is the coupon-collector scheme: every packet samples one
// uniform hop.
func PureBaseline() Layering { return Layering{Tau: 1} }

// PureXOR is the single-layer xor scheme with probability p (Fig 5's "XOR"
// curve uses p = 1/d).
func PureXOR(p float64) Layering { return Layering{Tau: 0, Probs: []float64{clampProb(p)}} }

// Hybrid interleaves Baseline with one XOR layer as in §4.2: packets run
// Baseline with probability tau (the paper sets 3/4) and otherwise xor with
// probability log log d / log d (footnote 8: 1/log d when d ≤ 15, where
// log log d would dip below... 1).
func Hybrid(d int, tau float64) Layering {
	if d < 2 {
		d = 2
	}
	logd := math.Log2(float64(d))
	var p float64
	if float64(d) <= 15 {
		p = 1 / logd
	} else {
		p = math.Log2(logd) / logd
	}
	return Layering{Tau: tau, Probs: []float64{clampProb(p)}}
}

// MultiLayer builds Algorithm 1's layering for assumed path length d:
// L = ⌈log* d̃⌉ XOR layers (one for d ≤ 15, two up to e^e^e) with
// p_ℓ = e↑↑(ℓ−1)/d, and Baseline probability τ. With revised=false,
// τ = log log* d / (1 + log log* d) (Algorithm 1); with revised=true,
// τ = (1 + log log* d) / (2 + log log* d) (Appendix A.3), which strictly
// reduces the expected packet count and is the default used by the core
// framework.
func MultiLayer(d int, revised bool) Layering {
	if d < 2 {
		d = 2
	}
	L := numLayers(d)
	llsd := math.Log2(float64(Log2Star(float64(d))))
	if llsd < 0 {
		llsd = 0
	}
	var tau float64
	if revised {
		tau = (1 + llsd) / (2 + llsd)
	} else {
		tau = llsd / (1 + llsd)
	}
	probs := make([]float64, L)
	for l := 1; l <= L; l++ {
		probs[l-1] = clampProb(IterExpE(l-1) / float64(d))
	}
	return Layering{Tau: tau, Probs: probs}
}

// numLayers realizes the paper's L(d): 1 for d ≤ 15 (⌊e^e⌋), 2 up to
// e^(e^e), and in general the least L with e↑↑(L+1) ≥ d.
func numLayers(d int) int {
	L := 1
	for IterExpE(L+1) < float64(d) {
		L++
		if L >= 4 { // e↑↑5 is astronomically larger than any path length
			break
		}
	}
	return L
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Layers returns the number of XOR layers.
func (l Layering) Layers() int { return len(l.Probs) }

// Validate checks the layering is usable.
func (l Layering) Validate() error {
	if l.Tau < 0 || l.Tau > 1 {
		return fmt.Errorf("coding: tau %v out of [0,1]", l.Tau)
	}
	if l.Tau < 1 && len(l.Probs) == 0 {
		return fmt.Errorf("coding: tau < 1 requires at least one XOR layer")
	}
	for i, p := range l.Probs {
		if p <= 0 || p > 1 {
			return fmt.Errorf("coding: layer %d probability %v out of (0,1]", i+1, p)
		}
	}
	return nil
}

// Select maps a packet's layer-point u in [0,1) to a layer: 0 for Baseline,
// 1..L for the XOR layers (chosen uniformly among them), exactly as
// Algorithm 1 line 6 does with ℓ = ⌈L·(H−τ)/(1−τ)⌉.
func (l Layering) Select(u float64) int {
	if u < l.Tau || len(l.Probs) == 0 {
		return 0
	}
	L := float64(len(l.Probs))
	ell := int(math.Ceil(L * (u - l.Tau) / (1 - l.Tau)))
	if ell < 1 {
		ell = 1
	}
	if ell > len(l.Probs) {
		ell = len(l.Probs)
	}
	return ell
}
