package coding

import (
	"testing"

	"repro/internal/hash"
)

func TestLNCConstruct(t *testing.T) {
	g := hash.NewGlobal(1)
	if _, err := NewLNC(g, 0); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	if _, err := NewLNC(g, 65); err == nil {
		t.Fatal("k=65 must be rejected")
	}
}

func TestLNCEncodeMatchesCoeffs(t *testing.T) {
	g := hash.NewGlobal(2)
	l, _ := NewLNC(g, 8)
	blocks := pathValues(8)
	for pkt := uint64(0); pkt < 1000; pkt++ {
		dig := l.Encode(pkt, blocks)
		var want uint64
		coeff := l.coeffVector(pkt)
		for hop := 1; hop <= 8; hop++ {
			if coeff&(1<<uint(hop-1)) != 0 {
				want ^= blocks[hop-1]
			}
		}
		if dig != want {
			t.Fatalf("pkt %d: encode/coeff mismatch", pkt)
		}
	}
}

func TestLNCDecodesAndSolves(t *testing.T) {
	for _, k := range []int{2, 5, 16, 25, 59} {
		g := hash.NewGlobal(hash.Seed(100 + k))
		l, _ := NewLNC(g, k)
		blocks := pathValues(k)
		rng := hash.NewRNG(uint64(k))
		n := 0
		for !l.Done() {
			pkt := rng.Uint64()
			l.Observe(pkt, l.Encode(pkt, blocks))
			n++
			if n > 10*k+200 {
				t.Fatalf("k=%d: LNC not decoded after %d packets", k, n)
			}
		}
		got, err := l.Solve()
		if err != nil {
			t.Fatal(err)
		}
		for i := range blocks {
			if got[i] != blocks[i] {
				t.Fatalf("k=%d block %d: got %d want %d", k, i, got[i], blocks[i])
			}
		}
		if l.Observed() != n || l.Rank() != k {
			t.Fatal("bookkeeping inconsistent")
		}
	}
}

func TestLNCNearOptimalPacketCount(t *testing.T) {
	// §4.2: LNC needs ≈ k + log₂k packets. Average over trials.
	const k, trials = 25, 200
	total := 0
	rng := hash.NewRNG(9)
	blocks := pathValues(k)
	for tr := 0; tr < trials; tr++ {
		l, _ := NewLNC(hash.NewGlobal(hash.Seed(rng.Uint64())), k)
		sub := rng.Split()
		n := 0
		for !l.Done() {
			pkt := sub.Uint64()
			l.Observe(pkt, l.Encode(pkt, blocks))
			n++
		}
		total += n
	}
	mean := float64(total) / trials
	if mean < float64(k) || mean > float64(k)+10 {
		t.Fatalf("LNC mean packets %v, want within [k, k+10] ≈ k+log₂k", mean)
	}
}

func TestLNCSolveBeforeDone(t *testing.T) {
	g := hash.NewGlobal(3)
	l, _ := NewLNC(g, 5)
	if _, err := l.Solve(); err == nil {
		t.Fatal("Solve before rank k must error")
	}
}

func TestLNCRedundantPacketsHarmless(t *testing.T) {
	g := hash.NewGlobal(4)
	l, _ := NewLNC(g, 5)
	blocks := pathValues(5)
	rng := hash.NewRNG(2)
	for !l.Done() {
		pkt := rng.Uint64()
		l.Observe(pkt, l.Encode(pkt, blocks))
	}
	// Extra packets after completion must not corrupt the solution.
	for i := 0; i < 100; i++ {
		pkt := rng.Uint64()
		l.Observe(pkt, l.Encode(pkt, blocks))
	}
	got, err := l.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for i := range blocks {
		if got[i] != blocks[i] {
			t.Fatal("solution corrupted by redundant packets")
		}
	}
}
