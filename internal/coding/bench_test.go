package coding

import (
	"testing"

	"repro/internal/hash"
)

func benchConfig(k int) (Config, []uint64, []uint64) {
	values := pathValues(k)
	universe := universeWith(values, 256)
	cfg := Config{Bits: 8, Mode: ModeHashed, Layering: MultiLayer(k, true)}
	return cfg, values, universe
}

func BenchmarkEncodePathK5(b *testing.B)  { benchEncode(b, 5) }
func BenchmarkEncodePathK25(b *testing.B) { benchEncode(b, 25) }
func BenchmarkEncodePathK59(b *testing.B) { benchEncode(b, 59) }

func benchEncode(b *testing.B, k int) {
	b.Helper()
	cfg, values, _ := benchConfig(k)
	g := hash.NewGlobal(1)
	enc, err := NewEncoder(cfg, g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var acc uint64
	for i := 0; i < b.N; i++ {
		d := enc.EncodePath(uint64(i), values)
		acc ^= d.Words[0]
	}
	benchSink = acc
}

// BenchmarkDecodeFullPathK25 measures one complete encode+decode episode
// (packets until the message decodes).
func BenchmarkDecodeFullPathK25(b *testing.B) {
	cfg, values, universe := benchConfig(25)
	rng := hash.NewRNG(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok, err := Trial(cfg, hash.Seed(rng.Uint64()), values, universe, rng.Split(), 100000)
		if err != nil || !ok {
			b.Fatal("decode failed")
		}
	}
}

func BenchmarkLNCObserve(b *testing.B) {
	g := hash.NewGlobal(2)
	blocks := pathValues(59)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, _ := NewLNC(g, 59)
		rng := hash.NewRNG(uint64(i))
		for !l.Done() {
			pkt := rng.Uint64()
			l.Observe(pkt, l.Encode(pkt, blocks))
		}
	}
}

func BenchmarkReservoirWinnerK59(b *testing.B) {
	g := hash.NewGlobal(3)
	var acc int
	for i := 0; i < b.N; i++ {
		acc += g.ReservoirWinner(uint64(i), 59)
	}
	benchSink = uint64(acc)
}

// BenchmarkDecoderObserve measures the steady-state cost of feeding one
// digest to a long-lived decoder (the collector's per-packet decode-side
// hot path), with allocation reporting: residuals come from the decoder's
// pooled arena, so packets explained on arrival allocate nothing and
// stored packets only bump a chunk cursor.
func BenchmarkDecoderObserve(b *testing.B) {
	for _, k := range []int{5, 25} {
		b.Run("k="+itoaCoding(k), func(b *testing.B) {
			cfg := Config{Bits: 8, Instances: 2, Mode: ModeHashed, Layering: MultiLayer(k, true)}
			values := pathValues(k)
			universe := universeWith(values, 256)
			g := hash.NewGlobal(3)
			enc, err := NewEncoder(cfg, g)
			if err != nil {
				b.Fatal(err)
			}
			// Pre-encode a packet stream so only Observe is timed. The
			// decoder is periodically replaced with a fresh one (decoding
			// completes after ~k log log* k packets), amortized outside
			// the interesting cost.
			const stream = 4096
			ids := make([]uint64, stream)
			digs := make([]Digest, stream)
			for i := range ids {
				ids[i] = hash.Mix64(uint64(i) + 1)
				digs[i] = enc.EncodePath(ids[i], values)
			}
			dec, err := NewDecoder(cfg, g, k, universe)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i % stream
				if j == 0 && i > 0 {
					b.StopTimer()
					dec, err = NewDecoder(cfg, g, k, universe)
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				dec.Observe(ids[j], digs[j])
			}
		})
	}
}

func itoaCoding(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
