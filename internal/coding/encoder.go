package coding

import (
	"fmt"
	"math"

	"repro/internal/hash"
)

// Mode selects how block values become digest bits.
type Mode int

const (
	// ModeRaw writes/xors the block bits directly; values wider than the
	// budget are fragmented (§4.2, fragmentation).
	ModeRaw Mode = iota
	// ModeHashed writes/xors h(value, pkt) truncated to the budget;
	// decoding infers values from a known universe (§4.2, hashing).
	ModeHashed
)

func (m Mode) String() string {
	switch m {
	case ModeRaw:
		return "raw"
	case ModeHashed:
		return "hashed"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config fully describes one static per-flow aggregation instance. The
// same Config must be shared by every encoder on the path and by the
// decoder — in a deployment it is distributed by the Query Engine.
type Config struct {
	// Bits is the per-packet digest budget b for one hash instance.
	Bits int
	// Mode selects raw (fragmented) or hashed encoding.
	Mode Mode
	// ValueBits is the width q of each block value (raw mode only); the
	// scheme fragments values into ⌈q/b⌉ pieces when q > Bits.
	ValueBits int
	// Layering distributes packets over Baseline/XOR layers.
	Layering Layering
	// Instances is the number of independent hash repetitions carried on
	// each packet (hashed mode; "2×(b=8)" in Fig 10 uses 2). Zero means 1.
	Instances int
	// FastVectors enables §4.2's near-linear decoding variant: XOR-layer
	// act decisions come from the bitwise AND of O(log 1/p) pseudo-random
	// 64-bit words instead of per-hop hash evaluations, with each layer
	// probability rounded to the nearest power of two (a √2-approximation,
	// footnote 9). The decoder recovers a whole path's decisions in
	// O(log k) word operations.
	FastVectors bool
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Bits < 1 || c.Bits > 64 {
		return fmt.Errorf("coding: digest bits %d out of [1,64]", c.Bits)
	}
	if err := c.Layering.Validate(); err != nil {
		return err
	}
	switch c.Mode {
	case ModeRaw:
		if c.ValueBits < 1 || c.ValueBits > 64 {
			return fmt.Errorf("coding: value bits %d out of [1,64]", c.ValueBits)
		}
	case ModeHashed:
		if c.Instances < 0 {
			return fmt.Errorf("coding: negative instance count")
		}
	default:
		return fmt.Errorf("coding: unknown mode %v", c.Mode)
	}
	return nil
}

func (c Config) instances() int {
	if c.Mode == ModeHashed && c.Instances > 1 {
		return c.Instances
	}
	return 1
}

// Fragments returns the number of fragments F = ⌈q/b⌉ (1 in hashed mode).
func (c Config) Fragments() int {
	if c.Mode != ModeRaw || c.ValueBits <= c.Bits {
		return 1
	}
	return (c.ValueBits + c.Bits - 1) / c.Bits
}

// TotalBits is the full per-packet overhead: Bits × instances.
func (c Config) TotalBits() int { return c.Bits * c.instances() }

// fragment extracts fragment f (0-based) of a raw value: bits
// [f·b, min((f+1)·b, q)).
func (c Config) fragment(value uint64, f int) uint64 {
	lo := uint(f * c.Bits)
	width := uint(c.Bits)
	if lo+width > uint(c.ValueBits) {
		width = uint(c.ValueBits) - lo
	}
	return (value >> lo) & ((1 << width) - 1)
}

// Digest is what one packet carries for this query: one word per hash
// instance, each Config.Bits wide. The zero Digest is the PINT Source's
// initial all-zeros bitstring.
type Digest struct {
	Words []uint64
}

// NewDigest returns the initial digest for a packet.
func (c Config) NewDigest() Digest {
	return Digest{Words: make([]uint64, c.instances())}
}

// Encoder is the switch-side Encoding Module for static per-flow
// aggregation. It is stateless (switches cannot keep per-flow state); every
// decision derives from the global hash family and the packet ID.
type Encoder struct {
	cfg Config
	g   hash.Global
	// insts are the value-hash families for the independent repetitions;
	// insts[0] is g itself.
	insts []hash.Global
	// layerThresh[i] is the precomputed act threshold of XOR layer i+1
	// (hash.Threshold of Layering.Probs[i]), hoisted out of acts.
	layerThresh []uint64
}

// NewEncoder builds an encoder from a validated config and the shared
// global hash family.
func NewEncoder(cfg Config, g hash.Global) (*Encoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Encoder{cfg: cfg, g: g}
	e.insts = make([]hash.Global, cfg.instances())
	for i := range e.insts {
		e.insts[i] = g.Instance(i)
	}
	e.layerThresh = make([]uint64, len(cfg.Layering.Probs))
	for i, p := range cfg.Layering.Probs {
		e.layerThresh[i] = hash.Threshold(p)
	}
	return e, nil
}

// Config returns the encoder's configuration.
func (e *Encoder) Config() Config { return e.cfg }

// layerOf returns the packet's layer (0 = Baseline) — identical at every
// hop and at the decoder.
func (e *Encoder) layerOf(pktID uint64) int {
	return e.cfg.Layering.Select(e.g.LayerPoint(pktID))
}

// acts reports whether hop (1-based) modifies packet pktID, and in which
// layer. Baseline hops "act" when they win the running reservoir so far —
// the final writer is the last acting hop.
func (e *Encoder) acts(pktID uint64, hop, layer int) bool {
	if layer == 0 {
		return e.g.ReservoirWritesP(pktID, hop)
	}
	if e.cfg.FastVectors {
		if hop > 64 {
			return false
		}
		vec := e.g.ActVector(fastPktID(pktID, layer), 64, log2InvP(e.cfg.Layering.Probs[layer-1]))
		return hash.ActFromVector(vec, hop)
	}
	return e.g.ActBelow(pktID, hop, e.layerThresh[layer-1])
}

// fastPktID namespaces the act-vector stream per XOR layer so layers stay
// independent.
func fastPktID(pktID uint64, layer int) uint64 {
	return pktID ^ uint64(layer)<<57
}

// log2InvP rounds a probability to the nearest power of two and returns
// the exponent j with p ≈ 2^-j (at least 1 so a fast XOR layer never acts
// deterministically).
func log2InvP(p float64) int {
	if p >= 1 {
		return 1
	}
	j := int(math.Round(-math.Log2(p)))
	if j < 1 {
		j = 1
	}
	if j > 63 {
		j = 63
	}
	return j
}

// payload computes what hop contributes to instance i of the digest.
func (e *Encoder) payload(pktID uint64, inst int, value uint64) uint64 {
	if e.cfg.Mode == ModeHashed {
		return e.insts[inst].ValueDigest(value, pktID, e.cfg.Bits)
	}
	f := e.g.Fragment(pktID, e.cfg.Fragments())
	return e.cfg.fragment(value, f)
}

// EncodeHop simulates hop number `hop` (1-based) processing the packet:
// given the digest as received, it returns the digest to forward. `value`
// is the hop's block M_hop (e.g. its switch ID). This is the function a
// P4 pipeline implements in four stages (§5).
func (e *Encoder) EncodeHop(pktID uint64, hop int, d Digest, value uint64) Digest {
	layer := e.layerOf(pktID)
	if !e.acts(pktID, hop, layer) {
		return d
	}
	out := Digest{Words: append([]uint64(nil), d.Words...)}
	for i := range out.Words {
		p := e.payload(pktID, i, value)
		if layer == 0 {
			out.Words[i] = p // overwrite: reservoir write
		} else {
			out.Words[i] ^= p // xor layer
		}
	}
	return out
}

// ActsOn reports whether hop (1-based) modifies packet pktID and in which
// layer, without touching any digest words — callers skip the unpack /
// apply / repack work for the common non-acting hops.
func (e *Encoder) ActsOn(pktID uint64, hop int) (layer int, act bool) {
	layer = e.layerOf(pktID)
	return layer, e.acts(pktID, hop, layer)
}

// LayerOf returns the packet's layer selection (0 = Baseline). It is a
// pure function of the packet ID, so batch pipelines cache it per packet
// instead of rehashing at every hop.
func (e *Encoder) LayerOf(pktID uint64) int { return e.layerOf(pktID) }

// ActsInLayer is ActsOn with a caller-cached LayerOf result.
func (e *Encoder) ActsInLayer(pktID uint64, hop, layer int) bool {
	return e.acts(pktID, hop, layer)
}

// ApplyWords folds hop's payload into words in place for a layer returned
// by ActsOn. It allocates nothing and does not retain the slice — the
// compiled batch pipeline's per-packet primitive.
func (e *Encoder) ApplyWords(pktID uint64, layer int, words []uint64, value uint64) {
	for i := range words {
		p := e.payload(pktID, i, value)
		if layer == 0 {
			words[i] = p // overwrite: reservoir write
		} else {
			words[i] ^= p // xor layer
		}
	}
}

// EncodePath runs the packet through the whole path values[0..k-1]
// (values[i] is hop i+1's block) and returns the final digest the sink
// extracts. Convenience for simulations that do not model queuing.
func (e *Encoder) EncodePath(pktID uint64, values []uint64) Digest {
	d := e.cfg.NewDigest()
	for i, v := range values {
		d = e.EncodeHop(pktID, i+1, d, v)
	}
	return d
}
