package coding

import (
	"bytes"
	"testing"

	"repro/internal/hash"
)

// TestDecoderStateRoundTrip is the hand-off contract: a decoder's
// serialized state restored into a fresh decoder must observe the rest
// of the stream exactly like the original — same solved hops, same
// counters, same re-serialization — so a flow moved mid-decode finishes
// decoding at its new home as if it never moved.
func TestDecoderStateRoundTrip(t *testing.T) {
	cfg := Config{Bits: 8, Mode: ModeHashed, Layering: MultiLayer(10, true)}
	g := hash.NewGlobal(77)
	path := pathValues(10)
	universe := universeWith(path, 120)

	enc, err := NewEncoder(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := NewDecoder(cfg, g, 10, universe)
	if err != nil {
		t.Fatal(err)
	}
	rng := hash.NewRNG(9)
	// Observe enough to be mid-decode (partial state), not done.
	for i := 0; i < 12; i++ {
		pkt := rng.Uint64()
		orig.Observe(pkt, enc.EncodePath(pkt, path))
	}
	if orig.Done() {
		t.Skip("decode finished before a partial state could be captured")
	}

	state := orig.AppendState(nil)
	if k, err := StateK(state); err != nil || k != 10 {
		t.Fatalf("StateK = %d, %v; want 10", k, err)
	}
	restored, err := NewDecoder(cfg, g, 10, universe)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	if orig.Observed() != restored.Observed() || orig.Inconsistent() != restored.Inconsistent() {
		t.Fatalf("counters diverge after restore: %d/%d vs %d/%d",
			orig.Observed(), orig.Inconsistent(), restored.Observed(), restored.Inconsistent())
	}
	if !bytes.Equal(state, restored.AppendState(nil)) {
		t.Fatal("restored decoder re-serializes differently")
	}

	// Drive both with the identical remaining stream.
	for i := 0; i < 5000 && !orig.Done(); i++ {
		pkt := rng.Uint64()
		d := enc.EncodePath(pkt, path)
		orig.Observe(pkt, d)
		restored.Observe(pkt, d)
	}
	if !orig.Done() || !restored.Done() {
		t.Fatalf("decode incomplete: orig=%v restored=%v", orig.Done(), restored.Done())
	}
	a, aKnown := orig.Path()
	b, bKnown := restored.Path()
	for i := range a {
		if a[i] != b[i] || aKnown[i] != bKnown[i] {
			t.Fatalf("hop %d: %d (known=%v) vs %d (known=%v)", i+1, a[i], aKnown[i], b[i], bKnown[i])
		}
	}
	if !bytes.Equal(orig.AppendState(nil), restored.AppendState(nil)) {
		t.Fatal("final states diverge after identical streams")
	}
}

// TestDecoderStateRejectsCorrupt: truncations and trailing bytes must
// error, never panic, and a state for the wrong k must be refused.
func TestDecoderStateRejectsCorrupt(t *testing.T) {
	cfg := Config{Bits: 8, Mode: ModeHashed, Layering: MultiLayer(5, true)}
	g := hash.NewGlobal(3)
	path := pathValues(5)
	universe := universeWith(path, 60)
	enc, _ := NewEncoder(cfg, g)
	d, err := NewDecoder(cfg, g, 5, universe)
	if err != nil {
		t.Fatal(err)
	}
	rng := hash.NewRNG(4)
	for i := 0; i < 6; i++ {
		pkt := rng.Uint64()
		d.Observe(pkt, enc.EncodePath(pkt, path))
	}
	state := d.AppendState(nil)
	for cut := 0; cut < len(state); cut++ {
		fresh, _ := NewDecoder(cfg, g, 5, universe)
		if err := fresh.RestoreState(state[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(state))
		}
	}
	fresh, _ := NewDecoder(cfg, g, 5, universe)
	if err := fresh.RestoreState(append(append([]byte(nil), state...), 7)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	wrongK, _ := NewDecoder(cfg, g, 6, universeWith(pathValues(6), 60))
	if err := wrongK.RestoreState(state); err == nil {
		t.Fatal("k=5 state restored into a k=6 decoder")
	}
}
