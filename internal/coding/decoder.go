package coding

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/hash"
)

// Decoder is the Recording/Inference-side reconstruction of a distributed
// message (§4.2). It consumes (packet ID, digest) pairs extracted by the
// PINT sink and incrementally recovers the k blocks via peeling:
//
//   - every packet's acting hop set is recomputed from the global hashes
//     (no hop IDs travel on the wire),
//   - contributions of already-decoded hops are stripped,
//   - a packet reduced to a single unknown hop yields either the block
//     itself (raw mode) or a constraint h(v, pkt) = residual that filters
//     the hop's candidate set against the universe (hashed mode),
//   - each newly decoded hop cascades into the stored packets that
//     reference it.
//
// The decoder needs the path length k (derived from the packet TTL in a
// deployment, §4.1) and, in hashed mode, the value universe V (e.g. the
// network's switch IDs).
type Decoder struct {
	cfg      Config
	g        hash.Global
	insts    []hash.Global
	k        int
	universe []uint64

	frags int
	// known[f][h] and vals[f][h]: fragment f of hop h+1 (raw mode); hashed
	// mode uses a single fragment row.
	known [][]bool
	vals  [][]uint64
	// cand[h]: remaining candidate values for hop h+1 (hashed mode only;
	// nil slice means "still the full universe", materialized lazily).
	cand [][]uint64

	pkts     []pktRec
	hopIndex [][][]int // [frag][hop] -> indices into pkts

	// scratch holds the residual words of the packet currently being
	// observed; arena owns the residuals of stored packets. Together they
	// keep Observe free of per-packet slice allocations: packets explained
	// on arrival never touch the heap, stored ones bump-allocate.
	scratch []uint64
	arena   wordArena

	observed     int
	inconsistent int // packets contradicting the decoded prefix (§7: path change signal)
	decodedHops  int
}

// wordArena bump-allocates small []uint64 residuals out of fixed-size
// chunks. Chunks are never reallocated, so handed-out slices stay valid;
// freed space is never reclaimed — the decoder's stored packets live until
// the decoder itself is dropped, exactly as the per-packet copies they
// replace did.
type wordArena struct {
	chunks [][]uint64
	free   []uint64
}

const arenaChunkWords = 1024

func (a *wordArena) alloc(n int) []uint64 {
	if n > len(a.free) {
		size := arenaChunkWords
		if n > size {
			size = n
		}
		c := make([]uint64, size)
		a.chunks = append(a.chunks, c)
		a.free = c
	}
	s := a.free[:n:n]
	a.free = a.free[n:]
	return s
}

type pktRec struct {
	id   uint64
	frag int
	mask uint64 // bitmask of still-unknown acting hops (bit i = hop i+1)
	res  []uint64
	dead bool
}

// NewDecoder builds a decoder for a k-hop path. In hashed mode universe
// must hold the distinct possible block values; in raw mode it is ignored.
func NewDecoder(cfg Config, g hash.Global, k int, universe []uint64) (*Decoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if k < 1 || k > 64 {
		return nil, fmt.Errorf("coding: path length %d out of [1,64]", k)
	}
	d := &Decoder{cfg: cfg, g: g, k: k, frags: cfg.Fragments()}
	d.insts = make([]hash.Global, cfg.instances())
	for i := range d.insts {
		d.insts[i] = g.Instance(i)
	}
	if cfg.Mode == ModeHashed {
		if len(universe) < 1 {
			return nil, fmt.Errorf("coding: hashed mode requires a value universe")
		}
		seen := make(map[uint64]bool, len(universe))
		for _, v := range universe {
			if seen[v] {
				return nil, fmt.Errorf("coding: universe value %d duplicated", v)
			}
			seen[v] = true
		}
		d.universe = universe
		d.cand = make([][]uint64, k)
	}
	d.known = make([][]bool, d.frags)
	d.vals = make([][]uint64, d.frags)
	d.hopIndex = make([][][]int, d.frags)
	for f := 0; f < d.frags; f++ {
		d.known[f] = make([]bool, k)
		d.vals[f] = make([]uint64, k)
		d.hopIndex[f] = make([][]int, k)
	}
	return d, nil
}

// K returns the path length being decoded.
func (d *Decoder) K() int { return d.k }

// Clone deep-copies the decoder's mutable state so a snapshot can keep
// answering (and even keep observing) independently of the original. The
// universe and candidate slices are shared: candidate sets are only ever
// replaced wholesale, never mutated in place.
func (d *Decoder) Clone() *Decoder {
	c := &Decoder{
		cfg:          d.cfg,
		g:            d.g,
		k:            d.k,
		universe:     d.universe,
		frags:        d.frags,
		observed:     d.observed,
		inconsistent: d.inconsistent,
		decodedHops:  d.decodedHops,
	}
	c.insts = append([]hash.Global(nil), d.insts...)
	if d.cand != nil {
		c.cand = append([][]uint64(nil), d.cand...)
	}
	c.known = make([][]bool, d.frags)
	c.vals = make([][]uint64, d.frags)
	c.hopIndex = make([][][]int, d.frags)
	for f := 0; f < d.frags; f++ {
		c.known[f] = append([]bool(nil), d.known[f]...)
		c.vals[f] = append([]uint64(nil), d.vals[f]...)
		c.hopIndex[f] = make([][]int, d.k)
		for h, idxs := range d.hopIndex[f] {
			if idxs != nil {
				c.hopIndex[f][h] = append([]int(nil), idxs...)
			}
		}
	}
	c.pkts = make([]pktRec, len(d.pkts))
	for i, rec := range d.pkts {
		rec.res = append([]uint64(nil), rec.res...)
		c.pkts[i] = rec
	}
	return c
}

// Observed returns the number of digests consumed so far.
func (d *Decoder) Observed() int { return d.observed }

// Inconsistent returns the number of packets whose digest contradicted the
// already-decoded blocks. A burst of these signals a route change (§7).
func (d *Decoder) Inconsistent() int { return d.inconsistent }

// actingSet recomputes which hops modified the packet, exactly as the
// encoders decided. With FastVectors the whole set materializes in
// O(log 1/p) word operations — the near-linear decoding of §4.2 — instead
// of k hash evaluations.
func (d *Decoder) actingSet(pktID uint64, layer int) uint64 {
	if layer == 0 {
		w := d.g.ReservoirWinner(pktID, d.k)
		return 1 << uint(w-1)
	}
	p := d.cfg.Layering.Probs[layer-1]
	if d.cfg.FastVectors {
		return d.g.ActVector(fastPktID(pktID, layer), d.k, log2InvP(p))
	}
	var mask uint64
	for hop := 1; hop <= d.k; hop++ {
		if d.g.Act(pktID, hop, p) {
			mask |= 1 << uint(hop-1)
		}
	}
	return mask
}

// payload mirrors Encoder.payload for a known value.
func (d *Decoder) payload(pktID uint64, inst, frag int, value uint64) uint64 {
	if d.cfg.Mode == ModeHashed {
		return d.insts[inst].ValueDigest(value, pktID, d.cfg.Bits)
	}
	_ = frag
	return 0 // raw mode strips stored fragment values directly (see strip)
}

// Observe consumes one extracted digest. It returns true when the whole
// message has just become fully decoded.
func (d *Decoder) Observe(pktID uint64, dig Digest) bool {
	d.observed++
	layer := d.cfg.Layering.Select(d.g.LayerPoint(pktID))
	mask := d.actingSet(pktID, layer)
	if mask == 0 {
		return d.Done() // no encoder touched this packet
	}
	frag := 0
	if d.cfg.Mode == ModeRaw {
		frag = d.g.Fragment(pktID, d.frags)
	}
	// Work on the reusable scratch first: most packets are explained (or
	// become a single constraint) on arrival and never need stored state.
	if cap(d.scratch) < len(dig.Words) {
		d.scratch = make([]uint64, len(dig.Words))
	}
	rec := pktRec{
		id:   pktID,
		frag: frag,
		mask: mask,
		res:  d.scratch[:len(dig.Words)],
	}
	copy(rec.res, dig.Words)
	// Strip hops whose block (fragment) is already decoded.
	d.strip(&rec, layer)
	if rec.mask == 0 {
		// Fully explained; in hashed/baseline mode verify consistency as a
		// route-change detector. Overwrite (layer 0) packets must match the
		// winner's payload exactly; xor packets must have zero residual.
		for i := range rec.res {
			if rec.res[i] != 0 {
				d.inconsistent++
				break
			}
		}
		return d.Done()
	}
	if bits.OnesCount64(rec.mask) == 1 {
		d.applyConstraint(&rec)
		return d.Done()
	}
	// The packet is stored for cascading: move its residual off the
	// scratch into arena-owned space.
	stored := d.arena.alloc(len(rec.res))
	copy(stored, rec.res)
	rec.res = stored
	idx := len(d.pkts)
	d.pkts = append(d.pkts, rec)
	for m := rec.mask; m != 0; m &= m - 1 {
		hop := bits.TrailingZeros64(m)
		d.hopIndex[frag][hop] = append(d.hopIndex[frag][hop], idx)
	}
	return d.Done()
}

// strip removes known contributions from a fresh packet record. For layer-0
// (overwrite) packets the mask is a singleton, so "stripping" it means the
// packet is already explained; we xor the expected payload so the residual
// check in Observe validates it.
func (d *Decoder) strip(rec *pktRec, layer int) {
	for m := rec.mask; m != 0; m &= m - 1 {
		hop := bits.TrailingZeros64(m)
		if !d.hopKnown(hop, rec.frag) {
			continue
		}
		d.stripHop(rec, hop)
	}
}

// hopKnown reports whether hop (0-based) is decoded for the record's
// purposes: in hashed mode full value known; raw mode the fragment known.
func (d *Decoder) hopKnown(hop, frag int) bool {
	if d.cfg.Mode == ModeHashed {
		return d.known[0][hop]
	}
	return d.known[frag][hop]
}

// stripHop xors hop's contribution out of a record and clears its mask bit.
func (d *Decoder) stripHop(rec *pktRec, hop int) {
	if d.cfg.Mode == ModeHashed {
		v := d.vals[0][hop]
		for i := range rec.res {
			rec.res[i] ^= d.insts[i].ValueDigest(v, rec.id, d.cfg.Bits)
		}
	} else {
		rec.res[0] ^= d.vals[rec.frag][hop]
	}
	rec.mask &^= 1 << uint(hop)
}

// applyConstraint consumes a record whose mask is a singleton.
func (d *Decoder) applyConstraint(rec *pktRec) {
	hop := bits.TrailingZeros64(rec.mask)
	rec.dead = true
	if d.cfg.Mode == ModeRaw {
		d.setFragment(hop, rec.frag, rec.res[0])
		return
	}
	// Hashed mode: filter the candidate set by all instances.
	cands := d.cand[hop]
	if cands == nil {
		cands = d.universe
	}
	var kept []uint64
	for _, v := range cands {
		ok := true
		for i := range rec.res {
			if d.insts[i].ValueDigest(v, rec.id, d.cfg.Bits) != rec.res[i] {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, v)
		}
	}
	switch len(kept) {
	case 0:
		// The true value always satisfies its own constraints, so an empty
		// set means the packet contradicts reality (route change, wrong k).
		d.inconsistent++
		return
	case 1:
		d.cand[hop] = kept
		d.setValue(hop, kept[0])
	default:
		d.cand[hop] = kept
	}
}

// setValue marks a hashed-mode hop as decoded and cascades.
func (d *Decoder) setValue(hop int, v uint64) {
	if d.known[0][hop] {
		return
	}
	d.known[0][hop] = true
	d.vals[0][hop] = v
	d.decodedHops++
	d.cascade(hop, 0)
}

// setFragment records fragment frag of hop (raw mode) and cascades within
// that fragment's packet population.
func (d *Decoder) setFragment(hop, frag int, bitsVal uint64) {
	if d.known[frag][hop] {
		if d.vals[frag][hop] != bitsVal {
			d.inconsistent++
		}
		return
	}
	d.known[frag][hop] = true
	d.vals[frag][hop] = bitsVal
	if d.cfg.Mode == ModeRaw {
		full := true
		for f := 0; f < d.frags; f++ {
			if !d.known[f][hop] {
				full = false
				break
			}
		}
		if full {
			d.decodedHops++
		}
	}
	d.cascade(hop, frag)
}

// cascade revisits stored packets referencing a newly decoded hop.
func (d *Decoder) cascade(hop, frag int) {
	fr := frag
	if d.cfg.Mode == ModeHashed {
		fr = 0
	}
	queue := d.hopIndex[fr][hop]
	d.hopIndex[fr][hop] = nil
	for _, idx := range queue {
		rec := &d.pkts[idx]
		if rec.dead || rec.mask&(1<<uint(hop)) == 0 {
			continue
		}
		d.stripHop(rec, hop)
		switch bits.OnesCount64(rec.mask) {
		case 0:
			rec.dead = true
			for i := range rec.res {
				if rec.res[i] != 0 {
					d.inconsistent++
					break
				}
			}
		case 1:
			d.applyConstraint(rec)
		}
	}
}

// MissingHops returns the number of hops not yet fully decoded — Fig 5's
// y-axis.
func (d *Decoder) MissingHops() int { return d.k - d.decodedHops }

// Done reports whether every hop is decoded.
func (d *Decoder) Done() bool { return d.decodedHops == d.k }

// Path returns the decoded block per hop (index 0 = first hop) and a
// parallel mask of which entries are trustworthy.
func (d *Decoder) Path() ([]uint64, []bool) {
	vals := make([]uint64, d.k)
	ok := make([]bool, d.k)
	for h := 0; h < d.k; h++ {
		if d.cfg.Mode == ModeHashed {
			ok[h] = d.known[0][h]
			vals[h] = d.vals[0][h]
			continue
		}
		full := true
		var v uint64
		for f := 0; f < d.frags; f++ {
			if !d.known[f][h] {
				full = false
				break
			}
			v |= d.vals[f][h] << uint(f*d.cfg.Bits)
		}
		ok[h] = full
		if full {
			vals[h] = v
		}
	}
	return vals, ok
}

// CandidateCount returns the number of values still possible for a hop
// (1-based); raw mode returns 1 when decoded and the full space otherwise.
func (d *Decoder) CandidateCount(hop int) int {
	h := hop - 1
	if d.cfg.Mode == ModeHashed {
		if d.cand[h] == nil {
			return len(d.universe)
		}
		return len(d.cand[h])
	}
	if d.known[0][h] {
		return 1
	}
	if d.cfg.ValueBits >= 62 {
		return math.MaxInt32
	}
	return 1 << uint(d.cfg.ValueBits)
}
