package coding

import (
	"fmt"

	"repro/internal/hash"
)

// LNC implements the Linear Network Coding comparator of §4.2 [32]: every
// hop xors its raw block onto the digest independently with probability
// 1/2 (selection via the global hash, so the receiver knows each packet's
// coefficient vector). Decoding is Gaussian elimination over GF(2): the
// message is recovered once the accumulated coefficient vectors reach rank
// k, which takes ≈ k + log₂k packets — near-optimal in packets, but cubic
// in decode time and incompatible with sub-value-width hashing, which is
// why PINT prefers the multi-layer XOR scheme.
type LNC struct {
	g hash.Global
	k int
	// rows are the reduced system: rows[i] has pivot bit i when present.
	rows   []lncRow
	pivots []int // pivots[i] = row index with pivot at bit i, or -1
	rank   int
	obs    int
}

type lncRow struct {
	coeff uint64 // GF(2) coefficient vector over the k blocks
	val   uint64 // running xor of the corresponding digests
}

// NewLNC builds an LNC encoder/decoder pair context for k blocks (k <= 64).
func NewLNC(g hash.Global, k int) (*LNC, error) {
	if k < 1 || k > 64 {
		return nil, fmt.Errorf("coding: LNC path length %d out of [1,64]", k)
	}
	l := &LNC{g: g, k: k, pivots: make([]int, k)}
	for i := range l.pivots {
		l.pivots[i] = -1
	}
	return l, nil
}

// coeffVector returns the packet's GF(2) coefficient vector: bit i set iff
// hop i+1 xors. Probability 1/2 per hop, decided by the global hash.
func (l *LNC) coeffVector(pktID uint64) uint64 {
	var m uint64
	for hop := 1; hop <= l.k; hop++ {
		if l.g.Act(pktID, hop, 0.5) {
			m |= 1 << uint(hop-1)
		}
	}
	return m
}

// Encode produces the digest hop-by-hop for a packet over the true blocks
// (the full-width xor ∑ M_i over the selected hops).
func (l *LNC) Encode(pktID uint64, blocks []uint64) uint64 {
	var dig uint64
	for i, b := range blocks {
		if l.g.Act(pktID, i+1, 0.5) {
			dig ^= b
		}
	}
	return dig
}

// Observe feeds one (packet, digest) pair into the elimination. It returns
// true once rank k is reached (message decodable).
func (l *LNC) Observe(pktID uint64, digest uint64) bool {
	l.obs++
	coeff := l.coeffVector(pktID)
	val := digest
	// Reduce against existing pivots.
	for coeff != 0 {
		low := trailingBit(coeff)
		r := l.pivots[low]
		if r < 0 {
			// New pivot.
			l.rows = append(l.rows, lncRow{coeff: coeff, val: val})
			l.pivots[low] = len(l.rows) - 1
			l.rank++
			return l.rank == l.k
		}
		coeff ^= l.rows[r].coeff
		val ^= l.rows[r].val
	}
	return l.rank == l.k
}

// Rank returns the current rank of the system.
func (l *LNC) Rank() int { return l.rank }

// Observed returns the number of digests consumed.
func (l *LNC) Observed() int { return l.obs }

// Done reports whether the message is decodable.
func (l *LNC) Done() bool { return l.rank == l.k }

// Solve performs back-substitution and returns the k blocks. It must only
// be called once Done() is true.
func (l *LNC) Solve() ([]uint64, error) {
	if !l.Done() {
		return nil, fmt.Errorf("coding: LNC rank %d < k=%d", l.rank, l.k)
	}
	// Copy rows, then eliminate upward so each row has exactly one bit.
	rows := append([]lncRow(nil), l.rows...)
	pivots := append([]int(nil), l.pivots...)
	for bit := 0; bit < l.k; bit++ {
		r := pivots[bit]
		row := rows[r]
		for other := range rows {
			if other == r {
				continue
			}
			if rows[other].coeff&(1<<uint(bit)) != 0 {
				rows[other].coeff ^= row.coeff
				rows[other].val ^= row.val
			}
		}
	}
	out := make([]uint64, l.k)
	for bit := 0; bit < l.k; bit++ {
		out[bit] = rows[pivots[bit]].val
	}
	return out, nil
}

func trailingBit(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}
