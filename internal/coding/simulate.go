package coding

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hash"
)

// This file provides the trial harness used by the Fig 5 / Fig 10
// experiments and by tests: it runs encode→decode end to end over a
// synthetic path and reports how many packets decoding needed.

// Trial runs one encode/decode episode: packets with IDs drawn from rng
// traverse a k-hop path holding `values`, and the decoder consumes digests
// until the message decodes or maxPackets is hit. It returns the number of
// packets consumed and whether decoding completed.
func Trial(cfg Config, master hash.Seed, values []uint64, universe []uint64, rng *hash.RNG, maxPackets int) (int, bool, error) {
	g := hash.NewGlobal(master)
	enc, err := NewEncoder(cfg, g)
	if err != nil {
		return 0, false, err
	}
	dec, err := NewDecoder(cfg, g, len(values), universe)
	if err != nil {
		return 0, false, err
	}
	for n := 1; n <= maxPackets; n++ {
		pktID := rng.Uint64()
		dig := enc.EncodePath(pktID, values)
		if dec.Observe(pktID, dig) {
			if err := verifyDecoded(dec, values); err != nil {
				return n, false, err
			}
			return n, true, nil
		}
	}
	return maxPackets, false, nil
}

func verifyDecoded(dec *Decoder, values []uint64) error {
	got, ok := dec.Path()
	for i := range values {
		if !ok[i] {
			return fmt.Errorf("coding: hop %d reported decoded but unknown", i+1)
		}
		want := values[i]
		if dec.cfg.Mode == ModeRaw && dec.cfg.ValueBits < 64 {
			want &= 1<<uint(dec.cfg.ValueBits) - 1
		}
		if got[i] != want {
			return fmt.Errorf("coding: hop %d decoded %d, want %d", i+1, got[i], want)
		}
	}
	return nil
}

// Progress runs one episode and records MissingHops after every packet, up
// to maxPackets — the raw material of Fig 5(a)/(b).
func Progress(cfg Config, master hash.Seed, values []uint64, universe []uint64, rng *hash.RNG, maxPackets int) ([]int, error) {
	g := hash.NewGlobal(master)
	enc, err := NewEncoder(cfg, g)
	if err != nil {
		return nil, err
	}
	dec, err := NewDecoder(cfg, g, len(values), universe)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, maxPackets)
	for n := 1; n <= maxPackets; n++ {
		pktID := rng.Uint64()
		dec.Observe(pktID, enc.EncodePath(pktID, values))
		out = append(out, dec.MissingHops())
	}
	return out, nil
}

// Stats summarizes packets-to-decode over many trials.
type Stats struct {
	Trials  int
	Decoded int     // trials that completed within the cap
	Mean    float64 // over decoded trials
	Median  float64
	P99     float64
	Max     int
}

// RunTrials repeats Trial with fresh packet-ID streams and a fresh hash
// seed per trial and aggregates the packet counts.
func RunTrials(cfg Config, values []uint64, universe []uint64, trials int, seed uint64, maxPackets int) (Stats, error) {
	rng := hash.NewRNG(seed)
	counts := make([]int, 0, trials)
	decoded := 0
	for t := 0; t < trials; t++ {
		n, ok, err := Trial(cfg, hash.Seed(rng.Uint64()), values, universe, rng.Split(), maxPackets)
		if err != nil {
			return Stats{}, err
		}
		if ok {
			decoded++
			counts = append(counts, n)
		}
	}
	s := Stats{Trials: trials, Decoded: decoded}
	if len(counts) == 0 {
		return s, nil
	}
	sort.Ints(counts)
	sum := 0
	for _, c := range counts {
		sum += c
	}
	s.Mean = float64(sum) / float64(len(counts))
	s.Median = float64(counts[len(counts)/2])
	s.P99 = float64(counts[int(math.Ceil(0.99*float64(len(counts))))-1])
	s.Max = counts[len(counts)-1]
	return s, nil
}

// CouponCollectorMean returns k·H_k, the expected Baseline packet count for
// k blocks when each packet carries a full block — the analytic yardstick
// the Baseline scheme is measured against (§4.2).
func CouponCollectorMean(k int) float64 {
	h := 0.0
	for i := 1; i <= k; i++ {
		h += 1 / float64(i)
	}
	return float64(k) * h
}

// TheoremThreeBound returns the k·(log log* k + c)·(1+o(1)) packet bound of
// Theorem 3 with the additive constant for d == k (Appendix A.3 gives
// k(log log* k + 2 + o(1)) for the revised algorithm).
func TheoremThreeBound(k int) float64 {
	lls := math.Log2(float64(Log2Star(float64(k))))
	if lls < 0 {
		lls = 0
	}
	return float64(k) * (lls + 2)
}
