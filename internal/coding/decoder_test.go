package coding

import (
	"testing"
	"testing/quick"

	"repro/internal/hash"
)

// pathValues builds k distinct synthetic switch IDs.
func pathValues(k int) []uint64 {
	vals := make([]uint64, k)
	for i := range vals {
		vals[i] = uint64(1000 + i*37)
	}
	return vals
}

// universeWith returns a value universe of size n containing the path.
func universeWith(path []uint64, n int) []uint64 {
	u := append([]uint64(nil), path...)
	next := uint64(500000)
	for len(u) < n {
		u = append(u, next)
		next++
	}
	return u
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Bits: 0, Mode: ModeHashed, Layering: PureBaseline()},
		{Bits: 65, Mode: ModeHashed, Layering: PureBaseline()},
		{Bits: 8, Mode: ModeRaw, ValueBits: 0, Layering: PureBaseline()},
		{Bits: 8, Mode: Mode(9), Layering: PureBaseline()},
		{Bits: 8, Mode: ModeHashed, Layering: Layering{Tau: 0.5}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: config %+v must fail validation", i, c)
		}
	}
	good := Config{Bits: 8, Mode: ModeHashed, Layering: MultiLayer(10, true)}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFragmentExtraction(t *testing.T) {
	c := Config{Bits: 8, Mode: ModeRaw, ValueBits: 32, Layering: PureBaseline()}
	if c.Fragments() != 4 {
		t.Fatalf("32-bit values on 8-bit budget: F=%d, want 4", c.Fragments())
	}
	v := uint64(0xDEADBEEF)
	want := []uint64{0xEF, 0xBE, 0xAD, 0xDE}
	for f, w := range want {
		if got := c.fragment(v, f); got != w {
			t.Fatalf("fragment %d = %#x, want %#x", f, got, w)
		}
	}
	// Non-divisible width: 20-bit values in 8-bit budget -> 3 fragments,
	// the last only 4 bits wide.
	c2 := Config{Bits: 8, Mode: ModeRaw, ValueBits: 20, Layering: PureBaseline()}
	if c2.Fragments() != 3 {
		t.Fatalf("F=%d, want 3", c2.Fragments())
	}
	if got := c2.fragment(0xFFFFF, 2); got != 0xF {
		t.Fatalf("tail fragment = %#x, want 0xF", got)
	}
}

func TestTotalBits(t *testing.T) {
	c := Config{Bits: 8, Mode: ModeHashed, Instances: 2, Layering: PureBaseline()}
	if c.TotalBits() != 16 {
		t.Fatalf("2x8 bits = %d, want 16", c.TotalBits())
	}
	c = Config{Bits: 8, Mode: ModeRaw, ValueBits: 32, Instances: 2, Layering: PureBaseline()}
	if c.TotalBits() != 8 {
		t.Fatal("raw mode ignores Instances")
	}
}

func TestEncoderBaselineWinnerSemantics(t *testing.T) {
	// Raw full-width baseline: the final digest must be the block of the
	// reservoir winner the decoder computes offline.
	cfg := Config{Bits: 32, Mode: ModeRaw, ValueBits: 32, Layering: PureBaseline()}
	g := hash.NewGlobal(1)
	enc, err := NewEncoder(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	values := pathValues(10)
	for pkt := uint64(0); pkt < 2000; pkt++ {
		d := enc.EncodePath(pkt, values)
		w := g.ReservoirWinner(pkt, 10)
		if d.Words[0] != values[w-1] {
			t.Fatalf("pkt %d: digest %d, want winner hop %d's value %d",
				pkt, d.Words[0], w, values[w-1])
		}
	}
}

func TestEncoderXORSemantics(t *testing.T) {
	cfg := Config{Bits: 32, Mode: ModeRaw, ValueBits: 32, Layering: PureXOR(0.3)}
	g := hash.NewGlobal(2)
	enc, _ := NewEncoder(cfg, g)
	values := pathValues(8)
	for pkt := uint64(0); pkt < 2000; pkt++ {
		d := enc.EncodePath(pkt, values)
		var want uint64
		for hop := 1; hop <= 8; hop++ {
			if g.Act(pkt, hop, 0.3) {
				want ^= values[hop-1]
			}
		}
		if d.Words[0] != want {
			t.Fatalf("pkt %d: digest %d, want %d", pkt, d.Words[0], want)
		}
	}
}

func TestEncodeHopDoesNotMutateInput(t *testing.T) {
	cfg := Config{Bits: 8, Mode: ModeHashed, Layering: PureXOR(1)}
	g := hash.NewGlobal(3)
	enc, _ := NewEncoder(cfg, g)
	d := cfg.NewDigest()
	before := d.Words[0]
	_ = enc.EncodeHop(7, 1, d, 42)
	if d.Words[0] != before {
		t.Fatal("EncodeHop mutated the input digest")
	}
}

func decodeOnce(t *testing.T, cfg Config, k int, universeSize, maxPackets int, seed uint64) int {
	t.Helper()
	values := pathValues(k)
	var universe []uint64
	if cfg.Mode == ModeHashed {
		universe = universeWith(values, universeSize)
	}
	n, ok, err := Trial(cfg, hash.Seed(seed), values, universe, hash.NewRNG(seed+1), maxPackets)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("failed to decode within %d packets (cfg=%+v k=%d)", maxPackets, cfg, k)
	}
	return n
}

func TestDecodeRawBaselineFullWidth(t *testing.T) {
	cfg := Config{Bits: 32, Mode: ModeRaw, ValueBits: 32, Layering: PureBaseline()}
	decodeOnce(t, cfg, 10, 0, 2000, 11)
}

func TestDecodeRawFragmented(t *testing.T) {
	// 32-bit switch IDs on an 8-bit budget: 4 fragments, decoding behaves
	// like a k·F-block message (§4.2).
	cfg := Config{Bits: 8, Mode: ModeRaw, ValueBits: 32, Layering: PureBaseline()}
	decodeOnce(t, cfg, 5, 0, 5000, 12)
}

func TestDecodeRawXORMultiLayer(t *testing.T) {
	cfg := Config{Bits: 32, Mode: ModeRaw, ValueBits: 32, Layering: MultiLayer(10, true)}
	decodeOnce(t, cfg, 10, 0, 3000, 13)
}

func TestDecodeHashed8Bit(t *testing.T) {
	cfg := Config{Bits: 8, Mode: ModeHashed, Layering: MultiLayer(10, true)}
	decodeOnce(t, cfg, 10, 200, 5000, 14)
}

func TestDecodeHashed1Bit(t *testing.T) {
	// The paper's headline: even a one-bit budget decodes the path.
	cfg := Config{Bits: 1, Mode: ModeHashed, Layering: MultiLayer(5, true)}
	decodeOnce(t, cfg, 5, 100, 20000, 15)
}

func TestDecodeHashedTwoInstances(t *testing.T) {
	cfg := Config{Bits: 8, Mode: ModeHashed, Instances: 2, Layering: MultiLayer(10, true)}
	n2 := decodeOnce(t, cfg, 10, 200, 5000, 16)
	cfg1 := Config{Bits: 8, Mode: ModeHashed, Layering: MultiLayer(10, true)}
	n1 := decodeOnce(t, cfg1, 10, 200, 5000, 16)
	_ = n1
	_ = n2 // both must decode; relative speed is covered by averaged tests
}

func TestDecodeLongPath(t *testing.T) {
	// Kentucky-Datalink-scale: 59 hops, 8-bit budget, hashed against a
	// 753-switch universe.
	cfg := Config{Bits: 8, Mode: ModeHashed, Layering: MultiLayer(59, true)}
	n := decodeOnce(t, cfg, 59, 753, 30000, 17)
	if n < 59 {
		t.Fatalf("decoded %d-hop path with %d < k packets: impossible", 59, n)
	}
}

func TestDecoderRejectsBadK(t *testing.T) {
	cfg := Config{Bits: 8, Mode: ModeHashed, Layering: PureBaseline()}
	g := hash.NewGlobal(1)
	if _, err := NewDecoder(cfg, g, 0, []uint64{1}); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	if _, err := NewDecoder(cfg, g, 65, []uint64{1}); err == nil {
		t.Fatal("k=65 must be rejected")
	}
}

func TestDecoderRejectsBadUniverse(t *testing.T) {
	cfg := Config{Bits: 8, Mode: ModeHashed, Layering: PureBaseline()}
	g := hash.NewGlobal(1)
	if _, err := NewDecoder(cfg, g, 5, nil); err == nil {
		t.Fatal("hashed mode without universe must be rejected")
	}
	if _, err := NewDecoder(cfg, g, 5, []uint64{7, 7}); err == nil {
		t.Fatal("duplicate universe values must be rejected")
	}
}

func TestDecoderInconsistencyDetection(t *testing.T) {
	// Encode against path A but decode assuming path B: the decoder must
	// flag inconsistencies rather than silently "decode" (§7, route-change
	// detection).
	cfg := Config{Bits: 8, Mode: ModeHashed, Layering: MultiLayer(10, true)}
	g := hash.NewGlobal(44)
	pathA := pathValues(10)
	pathB := append([]uint64(nil), pathA...)
	pathB[6] = 999999 // differs at hop 7
	universe := universeWith(append(pathA, 999999), 100)

	encA, _ := NewEncoder(cfg, g)
	dec, _ := NewDecoder(cfg, g, 10, universe)
	rng := hash.NewRNG(5)
	// First decode path A fully.
	for i := 0; i < 5000 && !dec.Done(); i++ {
		pkt := rng.Uint64()
		dec.Observe(pkt, encA.EncodePath(pkt, pathA))
	}
	if !dec.Done() {
		t.Fatal("setup: path A failed to decode")
	}
	base := dec.Inconsistent()
	// Now the route changes: subsequent packets follow path B.
	encB, _ := NewEncoder(cfg, g)
	flagged := 0
	for i := 0; i < 500; i++ {
		pkt := rng.Uint64()
		dec.Observe(pkt, encB.EncodePath(pkt, pathB))
		if dec.Inconsistent() > base {
			flagged++
		}
	}
	if flagged == 0 {
		t.Fatal("route change never flagged as inconsistent")
	}
}

func TestDecoderProgressMonotone(t *testing.T) {
	cfg := Config{Bits: 8, Mode: ModeHashed, Layering: MultiLayer(25, true)}
	values := pathValues(25)
	universe := universeWith(values, 300)
	prog, err := Progress(cfg, hash.Seed(3), values, universe, hash.NewRNG(4), 3000)
	if err != nil {
		t.Fatal(err)
	}
	if prog[0] > 25 {
		t.Fatal("cannot start with more than k missing")
	}
	for i := 1; i < len(prog); i++ {
		if prog[i] > prog[i-1] {
			t.Fatalf("missing hops increased at packet %d: %d -> %d",
				i+1, prog[i-1], prog[i])
		}
	}
	if prog[len(prog)-1] != 0 {
		t.Fatalf("25-hop path not decoded after 3000 packets (missing %d)",
			prog[len(prog)-1])
	}
}

func TestDecodeAlwaysCorrectProperty(t *testing.T) {
	// Whatever the path/universe/seed, a completed decode must equal the
	// truth (Trial verifies internally and errors otherwise).
	f := func(seed uint64, kRaw uint8) bool {
		k := 2 + int(kRaw%12)
		cfg := Config{Bits: 4, Mode: ModeHashed, Layering: MultiLayer(k, true)}
		values := pathValues(k)
		universe := universeWith(values, 64)
		_, ok, err := Trial(cfg, hash.Seed(seed), values, universe,
			hash.NewRNG(seed^0xabc), 50000)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTrialsStats(t *testing.T) {
	cfg := Config{Bits: 32, Mode: ModeRaw, ValueBits: 32, Layering: PureBaseline()}
	st, err := RunTrials(cfg, pathValues(25), nil, 200, 77, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Decoded != 200 {
		t.Fatalf("only %d/200 trials decoded", st.Decoded)
	}
	// Coupon collector: mean ≈ 25·H_25 ≈ 95.4, median ≈ 89 (paper §4.2).
	if st.Mean < 80 || st.Mean > 112 {
		t.Fatalf("baseline mean %v, want ≈95", st.Mean)
	}
	if st.Median < 75 || st.Median > 105 {
		t.Fatalf("baseline median %v, want ≈89", st.Median)
	}
	if st.P99 < st.Median || st.Max < int(st.P99) {
		t.Fatal("order statistics inconsistent")
	}
}

func TestHybridBeatsBaselineK25(t *testing.T) {
	// Fig 5's headline: interleaving decodes k=d=25 with a median of ~41
	// packets vs ~89 for Baseline.
	values := pathValues(25)
	base := Config{Bits: 32, Mode: ModeRaw, ValueBits: 32, Layering: PureBaseline()}
	hyb := Config{Bits: 32, Mode: ModeRaw, ValueBits: 32, Layering: Hybrid(25, 0.75)}
	sb, err := RunTrials(base, values, nil, 300, 5, 3000)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := RunTrials(hyb, values, nil, 300, 6, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Median >= sb.Median {
		t.Fatalf("hybrid median %v not better than baseline %v", sh.Median, sb.Median)
	}
	if sh.P99 >= sb.P99 {
		t.Fatalf("hybrid p99 %v not better than baseline %v", sh.P99, sb.P99)
	}
}

func TestMultiLayerNearTheorem3(t *testing.T) {
	// Theorem 3 (with A.3's constants, d=k): ~k(log log* k + 2 + o(1)).
	values := pathValues(25)
	cfg := Config{Bits: 32, Mode: ModeRaw, ValueBits: 32, Layering: MultiLayer(25, true)}
	st, err := RunTrials(cfg, values, nil, 300, 7, 3000)
	if err != nil {
		t.Fatal(err)
	}
	bound := TheoremThreeBound(25)
	if st.Mean > bound*1.5 {
		t.Fatalf("multi-layer mean %v far above Theorem 3 bound %v", st.Mean, bound)
	}
}
