package coding

import (
	"testing"

	"repro/internal/hash"
)

// TestActConstMatchesActs pins ActConst's threshold form to acts() across
// layerings, layers, and hops — the contract the op-major batch encoder
// builds its per-layer threshold tables on.
func TestActConstMatchesActs(t *testing.T) {
	layerings := map[string]Layering{
		"baseline":   PureBaseline(),
		"xor":        PureXOR(0.25),
		"hybrid":     Hybrid(10, 0.75),
		"multi5":     MultiLayer(5, true),
		"multi40":    MultiLayer(40, true),
		"full-layer": {Tau: 0.5, Probs: []float64{1}}, // p = 1: layer always acts
	}
	for name, lyr := range layerings {
		enc, err := NewEncoder(Config{Bits: 4, Mode: ModeHashed, Layering: lyr}, hash.NewGlobal(0xAC7))
		if err != nil {
			t.Fatalf("%s: NewEncoder: %v", name, err)
		}
		for layer := 0; layer <= lyr.Layers(); layer++ {
			var h [1]uint64
			for _, hop := range []int{1, 2, 3, 17, 64, 65, 200} {
				thr, always := enc.ActConst(hop, layer)
				for i := 0; i < 200; i++ {
					pkt := hash.Seed(99).Hash2(uint64(i), uint64(hop))
					enc.ActGlobal().ActHashColumn(h[:], []uint64{pkt}, uint64(hop))
					got := always || h[0] < thr
					want := enc.acts(pkt, hop, layer)
					if got != want {
						t.Fatalf("%s layer %d hop %d pkt %#x: ActConst says %v, acts says %v",
							name, layer, hop, pkt, got, want)
					}
				}
			}
		}
	}
}

// TestBatchAccessorsAliasEncoderState pins ActGlobal/InstanceGlobal to
// the families acts() and payload() actually consult.
func TestBatchAccessorsAliasEncoderState(t *testing.T) {
	enc, err := NewEncoder(Config{Bits: 8, Mode: ModeHashed, Instances: 2, Layering: MultiLayer(5, true)},
		hash.NewGlobal(0xAC8))
	if err != nil {
		t.Fatal(err)
	}
	if enc.ActGlobal() != &enc.g {
		t.Fatal("ActGlobal does not alias the encoder's act family")
	}
	pkt := uint64(12345)
	for inst := 0; inst < 2; inst++ {
		want := enc.payload(pkt, inst, 42)
		got := enc.InstanceGlobal(inst).ValueDigest(42, pkt, enc.cfg.Bits)
		if got != want {
			t.Fatalf("instance %d: InstanceGlobal digest %#x, payload %#x", inst, got, want)
		}
	}
}
