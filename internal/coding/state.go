package coding

import (
	"encoding/binary"
	"fmt"
)

// Exact decoder-state serialization for the fleet-resize hand-off path.
// A flow's decoder is incremental: the packets it has buffered, the
// blocks it has solved, and the candidate sets it has narrowed all feed
// future Observe calls. Moving the flow to another collector therefore
// ships this complete mutable state; the destination reconstructs a
// decoder whose every future Observe/Path/MissingHops answer is
// identical to the original's. Only observation state travels — the
// plan-derived configuration (Config, hash globals, universe) is rebuilt
// on the destination from its own compiled plan via PathQuery.NewDecoder,
// and the blob carries the geometry (k, fragments, universe size) so a
// mismatched plan is an error, not silent corruption.

const decoderStateVersion = 1

type stateReader struct {
	data []byte
	err  error
}

func (r *stateReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.err = fmt.Errorf("coding: truncated state varint")
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *stateReader) count(what string) int {
	n := r.uvarint()
	if r.err == nil && n > uint64(len(r.data))+1 { // every element is >= 1 byte
		r.err = fmt.Errorf("coding: state claims %d %s with %d bytes left", n, what, len(r.data))
	}
	return int(n)
}

func (r *stateReader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.data) != 0 {
		return fmt.Errorf("coding: %d trailing state bytes", len(r.data))
	}
	return nil
}

// StateK peeks the path length out of an AppendState blob, so a caller
// can construct the right decoder (PathQuery.NewDecoder(k)) before
// calling RestoreState.
func StateK(data []byte) (int, error) {
	r := &stateReader{data: data}
	if v := r.uvarint(); r.err == nil && v != decoderStateVersion {
		return 0, fmt.Errorf("coding: decoder state version %d (have %d)", v, decoderStateVersion)
	}
	k := int(r.uvarint())
	if r.err != nil {
		return 0, r.err
	}
	return k, nil
}

// AppendState appends the decoder's complete observation state to dst.
func (d *Decoder) AppendState(dst []byte) []byte {
	dst = append(dst, decoderStateVersion)
	dst = binary.AppendUvarint(dst, uint64(d.k))
	dst = binary.AppendUvarint(dst, uint64(d.frags))
	dst = binary.AppendUvarint(dst, uint64(len(d.universe)))
	dst = binary.AppendUvarint(dst, uint64(d.observed))
	dst = binary.AppendUvarint(dst, uint64(d.inconsistent))
	dst = binary.AppendUvarint(dst, uint64(d.decodedHops))
	for f := 0; f < d.frags; f++ {
		for h := 0; h < d.k; h++ {
			b := byte(0)
			if d.known[f][h] {
				b = 1
			}
			dst = append(dst, b)
			dst = binary.AppendUvarint(dst, d.vals[f][h])
		}
	}
	if d.cand == nil {
		dst = append(dst, 0)
	} else {
		dst = append(dst, 1)
		for h := 0; h < d.k; h++ {
			if d.cand[h] == nil {
				dst = append(dst, 0)
				continue
			}
			dst = append(dst, 1)
			dst = binary.AppendUvarint(dst, uint64(len(d.cand[h])))
			for _, v := range d.cand[h] {
				dst = binary.AppendUvarint(dst, v)
			}
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(d.pkts)))
	for i := range d.pkts {
		p := &d.pkts[i]
		dst = binary.AppendUvarint(dst, p.id)
		dst = binary.AppendUvarint(dst, uint64(p.frag))
		dst = binary.AppendUvarint(dst, p.mask)
		b := byte(0)
		if p.dead {
			b = 1
		}
		dst = append(dst, b)
		dst = binary.AppendUvarint(dst, uint64(len(p.res)))
		for _, w := range p.res {
			dst = binary.AppendUvarint(dst, w)
		}
	}
	for f := 0; f < d.frags; f++ {
		for h := 0; h < d.k; h++ {
			idxs := d.hopIndex[f][h]
			if idxs == nil {
				dst = append(dst, 0)
				continue
			}
			dst = append(dst, 1)
			dst = binary.AppendUvarint(dst, uint64(len(idxs)))
			for _, ix := range idxs {
				dst = binary.AppendUvarint(dst, uint64(ix))
			}
		}
	}
	return dst
}

// RestoreState loads an AppendState blob into a freshly constructed
// decoder (same query, same path length — the blob's geometry is
// checked). The decoder must not have observed anything yet.
func (d *Decoder) RestoreState(data []byte) error {
	if d.observed != 0 || len(d.pkts) != 0 {
		return fmt.Errorf("coding: RestoreState on a decoder that already observed packets")
	}
	r := &stateReader{data: data}
	if v := r.uvarint(); r.err == nil && v != decoderStateVersion {
		return fmt.Errorf("coding: decoder state version %d (have %d)", v, decoderStateVersion)
	}
	k := int(r.uvarint())
	frags := int(r.uvarint())
	uniLen := int(r.uvarint())
	observed := int(r.uvarint())
	inconsistent := int(r.uvarint())
	decodedHops := int(r.uvarint())
	if r.err != nil {
		return r.err
	}
	if k != d.k || frags != d.frags || uniLen != len(d.universe) {
		return fmt.Errorf("coding: decoder state geometry (k=%d frags=%d universe=%d) does not match decoder (k=%d frags=%d universe=%d)",
			k, frags, uniLen, d.k, d.frags, len(d.universe))
	}
	for f := 0; f < frags; f++ {
		for h := 0; h < k; h++ {
			kb := r.uvarint()
			d.vals[f][h] = r.uvarint()
			d.known[f][h] = kb != 0
		}
	}
	candFlag := r.uvarint()
	if r.err != nil {
		return r.err
	}
	if (candFlag != 0) != (d.cand != nil) {
		return fmt.Errorf("coding: decoder state mode does not match decoder (hashed=%v)", d.cand != nil)
	}
	if candFlag != 0 {
		for h := 0; h < k; h++ {
			present := r.uvarint()
			if r.err != nil {
				return r.err
			}
			if present == 0 {
				d.cand[h] = nil
				continue
			}
			n := r.count("candidates")
			if r.err != nil {
				return r.err
			}
			cs := make([]uint64, n)
			for i := range cs {
				cs[i] = r.uvarint()
			}
			d.cand[h] = cs
		}
	}
	nPkts := r.count("packets")
	if r.err != nil {
		return r.err
	}
	d.pkts = make([]pktRec, nPkts)
	for i := range d.pkts {
		p := &d.pkts[i]
		p.id = r.uvarint()
		p.frag = int(r.uvarint())
		p.mask = r.uvarint()
		p.dead = r.uvarint() != 0
		nRes := r.count("residual words")
		if r.err != nil {
			return r.err
		}
		if p.frag < 0 || p.frag >= frags {
			return fmt.Errorf("coding: packet %d fragment %d out of range", i, p.frag)
		}
		if nRes > 0 {
			res := d.arena.alloc(nRes)
			for w := range res {
				res[w] = r.uvarint()
			}
			p.res = res
		}
	}
	for f := 0; f < frags; f++ {
		for h := 0; h < k; h++ {
			present := r.uvarint()
			if r.err != nil {
				return r.err
			}
			if present == 0 {
				d.hopIndex[f][h] = nil
				continue
			}
			n := r.count("hop indices")
			if r.err != nil {
				return r.err
			}
			idxs := make([]int, n)
			for i := range idxs {
				ix := int(r.uvarint())
				if ix < 0 || ix >= nPkts {
					return fmt.Errorf("coding: hop index %d out of range [0,%d)", ix, nPkts)
				}
				idxs[i] = ix
			}
			d.hopIndex[f][h] = idxs
		}
	}
	if err := r.done(); err != nil {
		return err
	}
	d.observed = observed
	d.inconsistent = inconsistent
	d.decodedHops = decodedHops
	return nil
}
