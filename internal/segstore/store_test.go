package segstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/wire"
)

// testClock is the deterministic nanosecond clock every store test
// injects: timestamps are 10, 20, 30, … so windows are easy to reason
// about and goldens never depend on the wall clock.
func testClock() func() uint64 {
	var ts uint64
	return func() uint64 { ts += 10; return ts }
}

func openTest(t *testing.T, dir string, opts Options) (*Store, *RecoveryReport) {
	t.Helper()
	if opts.Now == nil {
		opts.Now = testClock()
	}
	opts.NoSync = true
	st, rep, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st, rep
}

// collectBlocks scans the whole store into memory (bodies copied).
func collectBlocks(t *testing.T, st *Store, since, until uint64) []Block {
	t.Helper()
	var out []Block
	if err := st.Scan(since, until, func(b Block) error {
		out = append(out, Block{Kind: b.Kind, TS: b.TS, Body: bytes.Clone(b.Body)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, rep := openTest(t, dir, Options{})
	if rep.Segments != 0 || rep.Packets != 0 {
		t.Fatalf("fresh dir recovered %+v", rep)
	}

	b1, b2, b3 := testDigests(3, 1), testDigests(2, 2), testDigests(4, 3)
	for _, b := range [][]core.PacketDigest{b1, b2} {
		if err := st.AppendDigests(b); err != nil {
			t.Fatal(err)
		}
	}
	ev := EvictRecord{Flow: 0x42, Reason: 1, LastSeen: 7, Answers: []byte(`{"a":1}`)}
	if err := st.AppendEvict(ev); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendCheckpoint(Checkpoint{Round: 1, Shard: 0, Shards: 1, Packets: 5, Flows: 2}); err != nil {
		t.Fatal(err)
	}
	if err := st.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendDigests(b3); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendCheckpoint(Checkpoint{Round: 2, Shard: 0, Shards: 1, Packets: 9, Flows: 3}); err != nil {
		t.Fatal(err)
	}
	want := collectBlocks(t, st, 0, ^uint64(0))
	if len(want) != 6 {
		t.Fatalf("live scan found %d blocks, want 6", len(want))
	}
	stats := st.Stats()
	if stats.Packets != 9 || stats.Segments != 1 || stats.ActiveBlocks != 2 {
		t.Fatalf("live stats %+v", stats)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything must come back, from sealed segments only.
	st2, rep2 := openTest(t, dir, Options{})
	defer st2.Close()
	if rep2.Segments != 2 || rep2.Packets != 9 || rep2.TornBytes != 0 {
		t.Fatalf("reopen recovered %+v", rep2)
	}
	if rep2.Blocks != 6 {
		t.Fatalf("reopen found %d blocks, want 6", rep2.Blocks)
	}
	got := collectBlocks(t, st2, 0, ^uint64(0))
	if len(got) != len(want) {
		t.Fatalf("reopen scan found %d blocks, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Kind != want[i].Kind || got[i].TS != want[i].TS || !bytes.Equal(got[i].Body, want[i].Body) {
			t.Fatalf("block %d changed across reopen: %+v vs %+v", i, got[i], want[i])
		}
	}

	// The evict record survives with its answers intact.
	evGot, err := DecodeEvict(got[2].Body)
	if err != nil {
		t.Fatal(err)
	}
	if evGot.Flow != ev.Flow || !bytes.Equal(evGot.Answers, ev.Answers) {
		t.Fatalf("evict record changed: %+v", evGot)
	}

	// Time-windowed scans honour block timestamps (10, 20, 30, …).
	windowed := collectBlocks(t, st2, want[1].TS, want[3].TS)
	if len(windowed) != 3 {
		t.Fatalf("window [%d,%d] returned %d blocks, want 3", want[1].TS, want[3].TS, len(windowed))
	}
}

// buildGoldenLog writes the deterministic two-segment log the torn-write
// matrix and corruption tests mutilate: seg A sealed by rotation, seg B
// sealed by Close, with a completed checkpoint round in each.
func buildGoldenLog(t *testing.T, dir string) {
	t.Helper()
	st, _ := openTest(t, dir, Options{})
	if err := st.AppendDigests(testDigests(3, 1)); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendCheckpoint(Checkpoint{Round: 1, Shard: 0, Shards: 1, Packets: 3, Flows: 1}); err != nil {
		t.Fatal(err)
	}
	if err := st.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendDigests(testDigests(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendDigests(testDigests(4, 3)); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendEvict(EvictRecord{Flow: 9, Reason: 0, LastSeen: 5}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendCheckpoint(Checkpoint{Round: 2, Shard: 0, Shards: 1, Packets: 9, Flows: 3}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// blockEnds maps a golden segment file to the byte offset where each
// data block ends and the digest packets it holds, stopping at the index
// block. It re-derives the layout straight from the bytes so the matrix
// below never trusts the store's own bookkeeping.
func blockEnds(t *testing.T, data []byte) (ends []int, pkts []uint64) {
	t.Helper()
	if string(data[:segHeaderLen]) != segMagic {
		t.Fatal("golden segment lacks magic")
	}
	off := segHeaderLen
	rest := data[segHeaderLen:]
	for len(rest) > 0 {
		blk, after, err := decodeBlock(rest)
		if err != nil {
			t.Fatalf("golden segment block at %d: %v", off, err)
		}
		if blk.Kind == kindIndex {
			break
		}
		var n uint64
		if blk.Kind == KindDigests {
			batch, err := DecodeDigests(nil, blk.Body)
			if err != nil {
				t.Fatal(err)
			}
			n = uint64(len(batch))
		}
		off += len(rest) - len(after)
		rest = after
		ends = append(ends, off)
		pkts = append(pkts, n)
	}
	return ends, pkts
}

// TestRecoveryTornMatrix is the torn-write torture: the last segment of
// a committed golden log is truncated at EVERY byte offset, and each
// prefix must recover — replaying cleanly to the last complete block,
// reporting the exact tail loss, never crashing, never double-counting.
func TestRecoveryTornMatrix(t *testing.T) {
	golden := t.TempDir()
	buildGoldenLog(t, golden)
	names, err := os.ReadDir(golden)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("golden log has %d segments, want 2", len(names))
	}
	segA, err := os.ReadFile(filepath.Join(golden, names[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	segB, err := os.ReadFile(filepath.Join(golden, names[1].Name()))
	if err != nil {
		t.Fatal(err)
	}
	endsA, pktsA := blockEnds(t, segA)
	var packetsA uint64
	for _, n := range pktsA {
		packetsA += n
	}
	if packetsA != 3 {
		t.Fatalf("golden segment A holds %d packets, want 3", packetsA)
	}
	ends, pkts := blockEnds(t, segB)
	_ = endsA

	for cut := 0; cut <= len(segB); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, names[0].Name()), segA, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, names[1].Name()), segB[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, rep, err := Open(dir, Options{NoSync: true, Now: testClock()})
		if err != nil {
			t.Fatalf("cut %d/%d: recovery failed: %v", cut, len(segB), err)
		}

		// Expected survivors: every block of segment B whose bytes fit
		// entirely inside the prefix.
		wantPkts := packetsA
		lastValid := segHeaderLen
		for i, end := range ends {
			if end <= cut {
				wantPkts += pkts[i]
				lastValid = end
			}
		}
		if rep.Packets != wantPkts {
			t.Fatalf("cut %d: recovered %d packets, want %d", cut, rep.Packets, wantPkts)
		}
		switch {
		case cut == len(segB):
			if rep.TornBytes != 0 {
				t.Fatalf("cut %d (intact): reported %d torn bytes", cut, rep.TornBytes)
			}
		case cut > lastValid && cut >= segHeaderLen:
			if rep.TornBytes != int64(cut-lastValid) {
				t.Fatalf("cut %d: reported %d torn bytes, want %d", cut, rep.TornBytes, cut-lastValid)
			}
		case cut < segHeaderLen:
			if rep.TornBytes != int64(cut) && cut > 0 {
				t.Fatalf("cut %d (mid-header): reported %d torn bytes", cut, rep.TornBytes)
			}
		}

		// The repaired log must append and reopen cleanly — and a second
		// recovery must find nothing torn (repair is idempotent).
		if err := st.AppendDigests(testDigests(1, 9)); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("cut %d: close after recovery: %v", cut, err)
		}
		st2, rep2, err := Open(dir, Options{NoSync: true, Now: testClock()})
		if err != nil {
			t.Fatalf("cut %d: second recovery: %v", cut, err)
		}
		if rep2.TornBytes != 0 {
			t.Fatalf("cut %d: second recovery still torn (%d bytes)", cut, rep2.TornBytes)
		}
		if rep2.Packets != wantPkts+1 {
			t.Fatalf("cut %d: second recovery holds %d packets, want %d", cut, rep2.Packets, wantPkts+1)
		}
		st2.Close()
	}
}

// TestRecoveryCorruption separates the two failure classes: a flipped
// bit is corruption and refuses to open (in both sealed and unsealed
// segments), while only truncation is repaired.
func TestRecoveryCorruption(t *testing.T) {
	golden := t.TempDir()
	buildGoldenLog(t, golden)
	names, _ := os.ReadDir(golden)
	for _, seg := range []string{names[0].Name(), names[1].Name()} {
		data, err := os.ReadFile(filepath.Join(golden, seg))
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		for _, n := range names {
			src, _ := os.ReadFile(filepath.Join(golden, n.Name()))
			if n.Name() == seg {
				src = bytes.Clone(src)
				src[len(src)/2] ^= 0x01
			}
			if err := os.WriteFile(filepath.Join(dir, n.Name()), src, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		_, _, err = Open(dir, Options{NoSync: true, Now: testClock()})
		if err == nil {
			t.Fatalf("%s: flipped bit recovered silently", seg)
		}
		if errors.Is(err, wire.ErrShortFrame) {
			t.Fatalf("%s: corruption misreported as truncation: %v", seg, err)
		}
		_ = data
	}

	// An unsealed segment that is not the newest means bytes vanished
	// after the fact — corruption, not a torn tail.
	dir := t.TempDir()
	buildGoldenLog(t, dir)
	names, _ = os.ReadDir(dir)
	first := filepath.Join(dir, names[0].Name())
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(first, data[:len(data)-trailerLen], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{NoSync: true, Now: testClock()}); err == nil ||
		!strings.Contains(err.Error(), "not the newest") {
		t.Fatalf("unsealed older segment: %v", err)
	}
}

// TestRecoveryDoubleCountDetected plants a checkpoint that claims fewer
// packets than the log holds — the signature of a double count on replay
// — and demands recovery refuse it.
func TestRecoveryDoubleCountDetected(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTest(t, dir, Options{})
	if err := st.AppendDigests(testDigests(5, 1)); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendCheckpoint(Checkpoint{Round: 1, Shard: 0, Shards: 1, Packets: 3}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{NoSync: true, Now: testClock()}); err == nil ||
		!strings.Contains(err.Error(), "double count or loss") {
		t.Fatalf("undercounting checkpoint recovered: %v", err)
	}
}

// TestRecoveryCrossIncarnationCheckpoint is the orphan-round stitch
// regression: rounds restart at 1 every process lifetime, so an orphan
// round-1 shard-0 record left by a crash mid-round followed by the next
// incarnation's completed round 1 must NOT merge into one bogus
// "complete" round (whose sum would fail the conservation check and
// brick a perfectly legal log).
func TestRecoveryCrossIncarnationCheckpoint(t *testing.T) {
	dir := t.TempDir()
	// Incarnation 1: 5 packets, then a crash between shard records —
	// shard 0 of 2 reported, shard 1 never did.
	st, _ := openTest(t, dir, Options{})
	if err := st.AppendDigests(testDigests(5, 1)); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendCheckpoint(Checkpoint{Round: 1, Shard: 0, Shards: 2, Packets: 3, Flows: 1}); err != nil {
		t.Fatal(err)
	}
	st.Abandon()

	// Incarnation 2: recovers (the orphan record alone is legal), ingests
	// 5 more, and completes ITS round 1 — numbering restarted — covering
	// all 10 packets the log now holds.
	st2, rep := openTest(t, dir, Options{})
	if rep.Packets != 5 {
		t.Fatalf("first recovery found %d packets, want 5", rep.Packets)
	}
	if err := st2.AppendDigests(testDigests(5, 2)); err != nil {
		t.Fatal(err)
	}
	if err := st2.AppendCheckpoint(Checkpoint{Round: 1, Shard: 0, Shards: 2, Packets: 6, Flows: 1}); err != nil {
		t.Fatal(err)
	}
	if err := st2.AppendCheckpoint(Checkpoint{Round: 1, Shard: 1, Shards: 2, Packets: 4, Flows: 1}); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	// Incarnation 3: the shard-0 repeat marks the incarnation boundary;
	// stitching the orphan onto the completed round would claim 3+6+4=13
	// packets... or, counting records only, complete at 3+6=9 < 10 and
	// refuse. Either way, only the fix opens this log.
	st3, rep3 := openTest(t, dir, Options{})
	defer st3.Close()
	if rep3.Packets != 10 {
		t.Fatalf("second recovery found %d packets, want 10", rep3.Packets)
	}
}

// TestRetentionConservation rotates under MaxSegments=1 and checks that
// deleted packets stay accounted: surviving digests plus the cumulative
// Retain counter always equal everything ever appended, live and across
// a reopen.
func TestRetentionConservation(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTest(t, dir, Options{MaxSegments: 1})
	var appended uint64
	for i := 0; i < 5; i++ {
		batch := testDigests(3+i, uint64(i))
		if err := st.AppendDigests(batch); err != nil {
			t.Fatal(err)
		}
		appended += uint64(len(batch))
		if err := st.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	if stats.DeletedSegments == 0 {
		t.Fatal("retention never deleted a segment")
	}
	var surviving uint64
	count := func(b Block) error {
		if b.Kind == KindDigests {
			batch, err := DecodeDigests(nil, b.Body)
			if err != nil {
				return err
			}
			surviving += uint64(len(batch))
		}
		return nil
	}
	if err := st.Scan(0, ^uint64(0), count); err != nil {
		t.Fatal(err)
	}
	if surviving+stats.DeletedPackets != appended {
		t.Fatalf("conservation broken: %d surviving + %d deleted != %d appended",
			surviving, stats.DeletedPackets, appended)
	}
	if st.HorizonTS() == 0 {
		t.Fatal("retention left no horizon")
	}
	// A full-coverage checkpoint round is still valid: the checker knows
	// about the deleted packets through the Retain marker.
	if err := st.AppendCheckpoint(Checkpoint{Round: 1, Shard: 0, Shards: 1, Packets: appended}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rep := openTest(t, dir, Options{MaxSegments: 1})
	defer st2.Close()
	if rep.DeletedPackets != stats.DeletedPackets || rep.DeletedSegments != stats.DeletedSegments {
		t.Fatalf("reopen lost retention counters: %+v vs %+v", rep, stats)
	}
	if rep.HorizonTS == 0 {
		t.Fatal("reopen lost the horizon")
	}
	surviving = 0
	if err := st2.Scan(0, ^uint64(0), count); err != nil {
		t.Fatal(err)
	}
	if surviving+rep.DeletedPackets != appended {
		t.Fatalf("conservation broken after reopen: %d + %d != %d", surviving, rep.DeletedPackets, appended)
	}
}

// TestCompact folds every sealed segment into one and demands the block
// stream survive byte-for-byte.
func TestCompact(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTest(t, dir, Options{})
	for i := 0; i < 4; i++ {
		if err := st.AppendDigests(testDigests(2+i, uint64(i))); err != nil {
			t.Fatal(err)
		}
		if err := st.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	want := collectBlocks(t, st, 0, ^uint64(0))
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	got := collectBlocks(t, st, 0, ^uint64(0))
	if len(got) != len(want) {
		t.Fatalf("compaction changed block count: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Kind != want[i].Kind || got[i].TS != want[i].TS || !bytes.Equal(got[i].Body, want[i].Body) {
			t.Fatalf("compaction changed block %d", i)
		}
	}
	if st.Stats().Segments != 1 {
		t.Fatalf("compaction left %d sealed segments, want 1", st.Stats().Segments)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, rep := openTest(t, dir, Options{})
	defer st2.Close()
	if rep.TornBytes != 0 || rep.Packets != 2+3+4+5 {
		t.Fatalf("compacted log reopened as %+v", rep)
	}
}

// TestCompactCrashRecovery drops a crash into every window of Compact's
// replacement protocol and demands recovery converge on a conserved log:
// an uncommitted (invalid) temp is discarded with the originals intact;
// a committed (sealed) temp is the authoritative copy and recovery
// finishes the replacement no matter how many originals the crash left.
func TestCompactCrashRecovery(t *testing.T) {
	golden := t.TempDir()
	st, _ := openTest(t, golden, Options{})
	for i := 0; i < 3; i++ {
		if err := st.AppendDigests(testDigests(2+i, uint64(i))); err != nil {
			t.Fatal(err)
		}
		if err := st.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := os.ReadDir(golden)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("golden log has %d segments, want 3", len(names))
	}
	const wantPkts = 2 + 3 + 4

	// Produce the committed temp's exact bytes by compacting a copy: the
	// single surviving segment IS what the temp held at the commit point.
	scratch := t.TempDir()
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(golden, n.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(scratch, n.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	sc, _ := openTest(t, scratch, Options{})
	if err := sc.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	newest := names[len(names)-1].Name()
	compacted, err := os.ReadFile(filepath.Join(scratch, newest))
	if err != nil {
		t.Fatal(err)
	}

	// Each case is one crash point: which originals survive, what state
	// the temp is in, and what recovery must find.
	cases := []struct {
		name     string
		keep     int    // originals kept (oldest-first), counting from the full set
		tmp      []byte // temp file contents (nil: no temp)
		wantSegs int
	}{
		{"before-commit", 3, compacted[:len(compacted)/2], 3}, // torn temp: discard, originals recover
		{"committed-no-removals", 3, compacted, 1},
		{"committed-mid-removals", 2, compacted, 1}, // first original already unlinked
		{"committed-last-removal", 1, compacted, 1}, // only the newest original left
	}
	for _, tc := range cases {
		dir := t.TempDir()
		skip := len(names) - tc.keep
		for i, n := range names {
			if i < skip && n.Name() != newest {
				continue
			}
			data, err := os.ReadFile(filepath.Join(golden, n.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, n.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if tc.tmp != nil {
			if err := os.WriteFile(filepath.Join(dir, newest+compactSuffix), tc.tmp, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		rst, rep := openTest(t, dir, Options{})
		if rep.Packets != wantPkts {
			t.Fatalf("%s: recovered %d packets, want %d", tc.name, rep.Packets, wantPkts)
		}
		if rep.Segments != tc.wantSegs {
			t.Fatalf("%s: recovered %d segments, want %d", tc.name, rep.Segments, tc.wantSegs)
		}
		if _, err := os.Stat(filepath.Join(dir, newest+compactSuffix)); !os.IsNotExist(err) {
			t.Fatalf("%s: compact temp survived recovery (err=%v)", tc.name, err)
		}
		rst.Close()
	}
}

// TestRecoveryTrailerCoincidence plants a torn, unsealed tail whose last
// four arbitrary bytes spell the trailer magic: the bogus footer must not
// be trusted — the newest segment falls back to the torn-tail scan and
// recovery truncates, rather than refusing an otherwise-legal log.
func TestRecoveryTrailerCoincidence(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTest(t, dir, Options{})
	if err := st.AppendDigests(testDigests(3, 1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendDigests(testDigests(2, 2)); err != nil {
		t.Fatal(err)
	}
	st.Abandon()
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := filepath.Join(dir, names[len(names)-1].Name())
	// A torn frame: a plausible length prefix (100-byte payload, mostly
	// missing) whose crc bytes push the would-be footer offset far outside
	// the file, and whose last four bytes happen to spell the magic.
	garbage := append([]byte{100, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF}, trailerMagic...)
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st2, rep := openTest(t, dir, Options{})
	defer st2.Close()
	if rep.Packets != 5 {
		t.Fatalf("recovered %d packets, want 5", rep.Packets)
	}
	if rep.TornBytes != int64(len(garbage)) {
		t.Fatalf("reported %d torn bytes, want %d", rep.TornBytes, len(garbage))
	}
}

// TestScanUnlocked pins the backpressure fix: Scan snapshots the segment
// set under the store lock but runs the walk — fn included — without it,
// so a long replay (the /snapshot?since= path) cannot stall appends. The
// callback exercising locking methods would self-deadlock otherwise.
func TestScanUnlocked(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTest(t, dir, Options{})
	defer st.Close()
	if err := st.AppendDigests(testDigests(3, 1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendDigests(testDigests(2, 2)); err != nil {
		t.Fatal(err)
	}
	blocks := 0
	err := st.Scan(0, ^uint64(0), func(b Block) error {
		blocks++
		// Lock-taking store methods from inside the callback: each of
		// these self-deadlocked when Scan held s.mu across the walk.
		if st.Stats().Packets < 5 || st.MaxTS() == 0 {
			t.Fatal("store accounting wrong under scan")
		}
		// Appending mid-scan is legal (the walk reads a snapshot) and must
		// not deadlock; the new blocks are invisible to this scan.
		return st.AppendDigests(testDigests(1, 9))
	})
	if err != nil {
		t.Fatal(err)
	}
	if blocks != 2 {
		t.Fatalf("scan visited %d blocks, want 2", blocks)
	}
	if st.Stats().Packets != 5+2 {
		t.Fatalf("mid-scan appends lost: %d packets", st.Stats().Packets)
	}
}

// TestAbandonThenRecover is the in-process SIGKILL: Abandon never seals,
// and recovery still serves everything that hit the file.
func TestAbandonThenRecover(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTest(t, dir, Options{})
	if err := st.AppendDigests(testDigests(6, 1)); err != nil {
		t.Fatal(err)
	}
	st.Abandon()
	st2, rep := openTest(t, dir, Options{})
	defer st2.Close()
	if rep.Packets != 6 || rep.TornBytes != 0 {
		t.Fatalf("abandoned store recovered as %+v", rep)
	}
}
