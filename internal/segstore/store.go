package segstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// Segment file naming and framing constants.
const (
	// segMagic opens every segment file.
	segMagic = "PSG1"
	// segHeaderLen is the fixed file header: just the magic.
	segHeaderLen = 4
	// trailerMagic closes every sealed segment, after the footer offset.
	trailerMagic = "PIDX"
	// trailerLen is footerOff uint64 LE + trailerMagic.
	trailerLen = 12
	// segSuffix is the segment file extension.
	segSuffix = ".pint"
	// compactSuffix marks Compact's temp file; listSegments ignores it,
	// and recovery either deletes it (unsealed: the crash hit mid-write)
	// or finishes the interrupted replacement (sealed: the fold committed).
	compactSuffix = ".compact"
)

// segName formats segment file names so lexical order is sequence order.
func segName(seq uint64) string { return fmt.Sprintf("seg-%016d%s", seq, segSuffix) }

// Options shapes a Store.
type Options struct {
	// SegmentBytes rotates the active segment once it grows past this
	// size (default 4 MiB). Rotation seals the segment: index footer,
	// trailer, fsync.
	SegmentBytes int64
	// MaxSegments, when > 0, caps the sealed segment count; rotation
	// deletes the oldest sealed segments beyond it and records the
	// deletion in a KindRetain block.
	MaxSegments int
	// NoSync skips fsync everywhere — only for tests and benchmarks where
	// the page cache is the durability domain anyway (a SIGKILLed process
	// loses no written bytes; only machine loss needs fsync).
	NoSync bool
	// Now is the block timestamp clock (default wall-clock nanoseconds).
	// The store clamps it monotone non-decreasing. Deterministic tests
	// inject a counter.
	Now func() uint64
}

// RecoveryReport says what Open found on disk.
type RecoveryReport struct {
	// Segments and Blocks count what survived (the active segment's
	// replayable blocks included).
	Segments int    `json:"segments"`
	Blocks   int    `json:"blocks"`
	Packets  uint64 `json:"packets"`
	// TornBytes were discarded from TornSegment's tail: a crash cut the
	// last write mid-block, and recovery truncated back to the last block
	// boundary. Zero means the log ended cleanly.
	TornBytes   int64  `json:"torn_bytes"`
	TornSegment string `json:"torn_segment,omitempty"`
	// DeletedSegments/DeletedPackets total what retention removed over
	// the store's lifetime (from the latest KindRetain record).
	DeletedSegments uint64 `json:"deleted_segments"`
	DeletedPackets  uint64 `json:"deleted_packets"`
	// HorizonTS is the newest timestamp retention has deleted; windows at
	// or before it can only be answered partially.
	HorizonTS uint64 `json:"horizon_ts"`
	// MinTS/MaxTS bound the surviving blocks (both zero when empty).
	MinTS uint64 `json:"min_ts"`
	MaxTS uint64 `json:"max_ts"`
}

// segMeta is one sealed segment's directory entry.
type segMeta struct {
	name    string
	seq     uint64
	size    int64
	minTS   uint64
	maxTS   uint64
	packets uint64
	blocks  int
}

// Store is the append-only segment log. Appends come from one writer
// goroutine (segstore.Writer); Scan and the stats methods are safe from
// any goroutine.
type Store struct {
	dir  string
	opts Options

	mu     sync.Mutex
	f      *os.File
	seq    uint64
	size   int64
	idx    []IndexEntry
	minTS  uint64
	maxTS  uint64
	pkts   uint64 // active segment's digest packets
	blocks int    // active segment's block count
	lastTS uint64 // monotone clamp for opts.Now

	sealed []segMeta

	// durablePkts counts digest packets across sealed + active segments;
	// delSegs/delPkts/horizon mirror the latest KindRetain record.
	durablePkts uint64
	delSegs     uint64
	delPkts     uint64
	horizon     uint64

	scratch []byte
	closed  bool
}

// Open opens (creating if needed) the segment log in dir, recovers it —
// truncating a torn tail back to the last valid block, refusing anything
// that looks like corruption rather than truncation — and returns the
// store positioned to append.
func Open(dir string, opts Options) (*Store, *RecoveryReport, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	// A rotation threshold below one metadata block would rotate forever;
	// 4 KiB is the floor (tests forcing rotation call Rotate directly).
	if opts.SegmentBytes < 4096 {
		opts.SegmentBytes = 4096
	}
	if opts.Now == nil {
		opts.Now = func() uint64 { return uint64(time.Now().UnixNano()) }
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("segstore: %w", err)
	}
	s := &Store{dir: dir, opts: opts}
	report, err := s.recoverLog()
	if err != nil {
		return nil, nil, err
	}
	return s, report, nil
}

// listSegments returns dir's segment files in sequence order.
func (s *Store) listSegments() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("segstore: %w", err)
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && len(name) == len(segName(0)) &&
			filepath.Ext(name) == segSuffix && name[:4] == "seg-" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// recoverLog scans every segment, validates or repairs the last one, and
// leaves the store appending to a fresh segment after the highest
// sequence seen (never into a repaired file: its sealed index would lie
// about blocks appended later). An unsealed survivor — the crash victim,
// already truncated back to its last complete block — is re-sealed here,
// so after Open every segment on disk carries a verified index.
func (s *Store) recoverLog() (*RecoveryReport, error) {
	if err := s.recoverCompaction(); err != nil {
		return nil, err
	}
	names, err := s.listSegments()
	if err != nil {
		return nil, err
	}
	report := &RecoveryReport{}
	ckpt := newCkptChecker()
	nextSeq := uint64(0)
	for i, name := range names {
		path := filepath.Join(s.dir, name)
		last := i == len(names)-1
		meta, entries, torn, wasSealed, err := s.scanSegment(path, last, ckpt)
		if err != nil {
			return nil, err
		}
		if torn > 0 {
			report.TornBytes = torn
			report.TornSegment = name
		}
		switch {
		case meta.blocks == 0:
			// Empty survivor (crash right after rotation); drop it rather
			// than carry a zero-block file forever.
			if err := os.Remove(path); err != nil {
				return nil, fmt.Errorf("segstore: %w", err)
			}
		default:
			if !wasSealed {
				sealedMeta, err := sealFile(path, meta, entries, s.opts.NoSync)
				if err != nil {
					return nil, err
				}
				meta = sealedMeta
			}
			s.sealed = append(s.sealed, meta)
			s.durablePkts += meta.packets
			report.Segments++
			report.Blocks += meta.blocks
			report.Packets += meta.packets
			if report.MinTS == 0 || meta.minTS < report.MinTS {
				report.MinTS = meta.minTS
			}
			if meta.maxTS > report.MaxTS {
				report.MaxTS = meta.maxTS
			}
		}
		if meta.seq >= nextSeq {
			nextSeq = meta.seq + 1
		}
		if meta.maxTS > s.lastTS {
			s.lastTS = meta.maxTS
		}
	}
	if err := ckpt.verify(); err != nil {
		return nil, err
	}
	report.DeletedSegments = s.delSegs
	report.DeletedPackets = s.delPkts
	report.HorizonTS = s.horizon
	if err := s.openSegment(nextSeq); err != nil {
		return nil, err
	}
	return report, nil
}

// recoverCompaction finishes (or discards) a Compact interrupted by a
// crash. A `.compact` temp that scans as a fully sealed segment passed
// Compact's commit point: it holds every block of every segment it
// folded, so the originals at or below its sequence — whichever of them
// still exist — are removed and the temp renamed into place, exactly
// what Compact would have done. A temp that does not validate never
// committed; it is deleted and the originals (all still present — the
// commit point precedes the first removal) recover normally.
func (s *Store) recoverCompaction() error {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("segstore: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || len(name) != len(segName(0))+len(compactSuffix) ||
			name[:4] != "seg-" || filepath.Ext(name) != compactSuffix {
			continue
		}
		path := filepath.Join(s.dir, name)
		var seq uint64
		if _, err := fmt.Sscanf(name, "seg-%016d"+segSuffix+compactSuffix, &seq); err != nil {
			return fmt.Errorf("segstore: compact temp %q: %w", name, err)
		}
		probe := &Store{}
		_, _, _, wasSealed, perr := probe.scanSegment(path, false, newCkptChecker())
		if perr != nil || !wasSealed {
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("segstore: dropping uncommitted compact temp: %w", err)
			}
			continue
		}
		names, err := s.listSegments()
		if err != nil {
			return err
		}
		for _, old := range names {
			var oldSeq uint64
			if _, err := fmt.Sscanf(old, "seg-%016d"+segSuffix, &oldSeq); err != nil {
				return fmt.Errorf("segstore: segment name %q: %w", old, err)
			}
			if oldSeq > seq {
				continue // the crashed incarnation's active segment: not folded
			}
			if err := os.Remove(filepath.Join(s.dir, old)); err != nil {
				return fmt.Errorf("segstore: resuming compaction: %w", err)
			}
		}
		if err := os.Rename(path, filepath.Join(s.dir, segName(seq))); err != nil {
			return fmt.Errorf("segstore: resuming compaction: %w", err)
		}
	}
	return nil
}

// sealFile appends an index footer and trailer to a recovered, unsealed
// segment so every surviving segment leaves recovery sealed.
func sealFile(path string, meta segMeta, entries []IndexEntry, noSync bool) (segMeta, error) {
	idx := Index{MinTS: meta.minTS, MaxTS: meta.maxTS, Packets: meta.packets, Entries: entries}
	buf, err := appendBlock(nil, kindIndex, meta.maxTS, appendIndexBody(nil, idx))
	if err != nil {
		return segMeta{}, err
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(meta.size))
	buf = append(buf, trailerMagic...)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return segMeta{}, fmt.Errorf("segstore: re-sealing: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return segMeta{}, fmt.Errorf("segstore: re-sealing: %w", err)
	}
	if !noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return segMeta{}, fmt.Errorf("segstore: re-sealing: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return segMeta{}, fmt.Errorf("segstore: re-sealing: %w", err)
	}
	meta.size += int64(len(buf))
	return meta, nil
}

// scanSegment walks one segment's blocks. Sealed segments must verify
// end to end (index directory included). The last, possibly-unsealed
// segment may end mid-block — wire.ErrShortFrame — in which case the
// file is truncated back to the last valid block and the cut tail is
// reported; a checksum mismatch anywhere is corruption and refuses to
// open. It returns the (possibly repaired) segment's metadata, its block
// directory, the torn byte count, and whether the segment was sealed.
func (s *Store) scanSegment(path string, last bool, ckpt *ckptChecker) (segMeta, []IndexEntry, int64, bool, error) {
	fail := func(err error) (segMeta, []IndexEntry, int64, bool, error) {
		return segMeta{}, nil, 0, false, err
	}
	name := filepath.Base(path)
	var seq uint64
	if _, err := fmt.Sscanf(name, "seg-%016d"+segSuffix, &seq); err != nil {
		return fail(fmt.Errorf("segstore: segment name %q: %w", name, err))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fail(fmt.Errorf("segstore: %w", err))
	}
	if len(data) < segHeaderLen || string(data[:segHeaderLen]) != segMagic {
		if last && len(data) < segHeaderLen && string(data) == segMagic[:len(data)] {
			// The crash hit mid-header: the newest file holds a strict
			// prefix of the magic and nothing else. Truncate it to empty;
			// the zero-block path removes it.
			if err := os.Truncate(path, 0); err != nil {
				return fail(fmt.Errorf("segstore: truncating torn header: %w", err))
			}
			return segMeta{name: name, seq: seq}, nil, int64(len(data)), false, nil
		}
		return fail(fmt.Errorf("segstore: %s: bad segment magic", name))
	}
	meta := segMeta{name: name, seq: seq, size: int64(len(data))}

	// A sealed segment ends with `footerOff | "PIDX"`; validate the
	// directory against the blocks we are about to scan. The newest
	// segment gets one extra grace: a torn, unsealed tail ends in four
	// arbitrary bytes, which can coincide with the trailer magic — so a
	// trailer that fails to validate there falls back to the unsealed
	// torn-tail scan instead of refusing the whole log.
	var sealedIdx *Index
	rest := data[segHeaderLen:]
	if n := len(data); n >= segHeaderLen+trailerLen && string(data[n-4:]) == trailerMagic {
		idx, footerOff, terr := decodeTrailer(data, name)
		switch {
		case terr == nil:
			sealedIdx = &idx
			rest = data[segHeaderLen:footerOff]
		case last:
			// Coincidental magic on the crash victim: scan it unsealed.
		default:
			return fail(terr)
		}
	} else if !last {
		// Only the newest segment may be unsealed (a crash mid-append);
		// an unsealed older segment means bytes went missing after the
		// fact — that is corruption, not truncation.
		return fail(fmt.Errorf("segstore: %s: unsealed segment is not the newest", name))
	}

	var torn int64
	offset := uint64(segHeaderLen)
	var entries []IndexEntry
	for len(rest) > 0 {
		blk, after, err := decodeBlock(rest)
		switch {
		case err == nil:
		case errors.Is(err, wire.ErrShortFrame) && sealedIdx == nil:
			// Torn tail: the crash cut this block mid-write. Truncate the
			// file back to the last complete block and report the loss.
			torn = int64(len(rest))
			if err := os.Truncate(path, int64(offset)); err != nil {
				return fail(fmt.Errorf("segstore: truncating torn tail: %w", err))
			}
			meta.size = int64(offset)
			rest = nil
			continue
		default:
			return fail(fmt.Errorf("segstore: %s: block at offset %d: %w", name, offset, err))
		}
		if blk.Kind == kindIndex && sealedIdx == nil {
			// An index block without its trailer: the crash hit between
			// the footer write and the trailer write. The directory is
			// metadata only — cut it and stay unsealed.
			torn = int64(len(rest))
			if err := os.Truncate(path, int64(offset)); err != nil {
				return fail(fmt.Errorf("segstore: truncating torn index: %w", err))
			}
			meta.size = int64(offset)
			rest = nil
			continue
		}
		pkts, err := s.absorbBlock(blk, ckpt, name, offset)
		if err != nil {
			return fail(err)
		}
		entries = append(entries, IndexEntry{Offset: offset, Kind: blk.Kind, TS: blk.TS, Packets: pkts})
		meta.blocks++
		meta.packets += pkts
		if meta.blocks == 1 || blk.TS < meta.minTS {
			meta.minTS = blk.TS
		}
		if blk.TS > meta.maxTS {
			meta.maxTS = blk.TS
		}
		offset += uint64(len(rest) - len(after))
		rest = after
	}
	if sealedIdx != nil {
		if err := checkIndex(*sealedIdx, entries, meta, name); err != nil {
			return fail(err)
		}
	}
	return meta, entries, torn, sealedIdx != nil, nil
}

// decodeTrailer validates a trailer-bearing segment image and decodes
// its index footer, returning the index and the footer block's offset
// (the data-block region ends there). The caller has already matched the
// trailing magic.
func decodeTrailer(data []byte, name string) (Index, uint64, error) {
	n := len(data)
	footerOff := binary.LittleEndian.Uint64(data[n-trailerLen:])
	if footerOff < segHeaderLen || footerOff >= uint64(n-trailerLen) {
		return Index{}, 0, fmt.Errorf("segstore: %s: index footer offset %d outside file", name, footerOff)
	}
	blk, after, err := decodeBlock(data[footerOff : n-trailerLen])
	if err != nil || blk.Kind != kindIndex || len(after) != 0 {
		return Index{}, 0, fmt.Errorf("segstore: %s: sealed trailer points at no index block", name)
	}
	idx, err := DecodeIndex(blk.Body)
	if err != nil {
		return Index{}, 0, fmt.Errorf("segstore: %s: %w", name, err)
	}
	return idx, footerOff, nil
}

// absorbBlock validates one scanned block's body and updates the store's
// retention/checkpoint recovery state. It returns the block's digest
// packet count.
func (s *Store) absorbBlock(blk Block, ckpt *ckptChecker, name string, offset uint64) (uint64, error) {
	switch blk.Kind {
	case KindDigests:
		batch, err := wire.AppendUnmarshal(nil, blk.Body)
		if err != nil {
			return 0, fmt.Errorf("segstore: %s: digest block at offset %d: %w", name, offset, err)
		}
		ckpt.digests(uint64(len(batch)))
		return uint64(len(batch)), nil
	case KindCheckpoint:
		cp, err := DecodeCheckpoint(blk.Body)
		if err != nil {
			return 0, fmt.Errorf("segstore: %s: checkpoint at offset %d: %w", name, offset, err)
		}
		if err := ckpt.checkpoint(cp); err != nil {
			return 0, fmt.Errorf("segstore: %s: checkpoint at offset %d: %w", name, offset, err)
		}
		return 0, nil
	case KindEvict:
		if _, err := DecodeEvict(blk.Body); err != nil {
			return 0, fmt.Errorf("segstore: %s: evict record at offset %d: %w", name, offset, err)
		}
		return 0, nil
	case KindRetain:
		r, err := DecodeRetain(blk.Body)
		if err != nil {
			return 0, fmt.Errorf("segstore: %s: retain record at offset %d: %w", name, offset, err)
		}
		if r.Segments < s.delSegs || r.Packets < s.delPkts {
			return 0, fmt.Errorf("segstore: %s: retain record at offset %d went backwards", name, offset)
		}
		s.delSegs, s.delPkts, s.horizon = r.Segments, r.Packets, r.HorizonTS
		ckpt.retain(r)
		return 0, nil
	default:
		return 0, fmt.Errorf("segstore: %s: unknown block kind %#02x at offset %d", name, blk.Kind, offset)
	}
}

// checkIndex verifies a sealed segment's directory against its scanned
// blocks — a directory that disagrees with the data is corruption.
func checkIndex(idx Index, entries []IndexEntry, meta segMeta, name string) error {
	if len(idx.Entries) != len(entries) {
		return fmt.Errorf("segstore: %s: index lists %d blocks, found %d", name, len(idx.Entries), len(entries))
	}
	for i, e := range entries {
		if idx.Entries[i] != e {
			return fmt.Errorf("segstore: %s: index entry %d is %+v, block is %+v", name, i, idx.Entries[i], e)
		}
	}
	if idx.Packets != meta.packets {
		return fmt.Errorf("segstore: %s: index packet total %d, blocks hold %d", name, idx.Packets, meta.packets)
	}
	return nil
}

// ckptChecker verifies the never-double-count invariant while scanning:
// every digest block precedes the checkpoint round that covers it (the
// writer's FIFO guarantees it at append time), so a completed round —
// all of its shards reported — claims exactly the digest packets logged
// before it. Retention complicates the bookkeeping: a Retain marker
// always lands later in the log than the checkpoints whose covered
// digests it deleted, so rounds are collected during the scan and
// validated once the final cumulative deletion count is known, against
// the bounds seen_at_round ≤ sum ≤ seen_at_round + deleted_final.
type ckptChecker struct {
	seen     uint64 // digest packets scanned so far
	deleted  uint64 // retention-deleted packets (cumulative, from Retain)
	round    uint64
	shards   int
	got      int
	sum      uint64
	reported []bool // per-shard: reported in the accumulating round?
	rounds   []completedRound
}

// completedRound is one fully-reported checkpoint round awaiting
// end-of-scan validation.
type completedRound struct {
	round uint64
	sum   uint64 // packets the round's shards claim recorded
	seen  uint64 // digest packets the log held when the round completed
}

func newCkptChecker() *ckptChecker { return &ckptChecker{} }

func (c *ckptChecker) digests(n uint64) { c.seen += n }
func (c *ckptChecker) retain(r Retain)  { c.deleted = r.Packets }

func (c *ckptChecker) checkpoint(cp Checkpoint) error {
	if c.got > 0 && (cp.Round != c.round || cp.Shards != c.shards || c.reported[cp.Shard]) {
		// A round abandoned mid-write (crash between shard records) is
		// legal; just start accumulating the new round. Round numbers
		// restart at 1 every process lifetime, so a matching round number
		// is not proof of the same round: a shard index reporting twice is
		// the tell that a new incarnation's round began, and its records
		// must never stitch onto the orphan's into a bogus "complete"
		// round.
		c.got, c.sum = 0, 0
	}
	if c.got == 0 {
		if cap(c.reported) < cp.Shards {
			c.reported = make([]bool, cp.Shards)
		} else {
			c.reported = c.reported[:cp.Shards]
			for i := range c.reported {
				c.reported[i] = false
			}
		}
	}
	c.round, c.shards = cp.Round, cp.Shards
	c.reported[cp.Shard] = true
	c.sum += cp.Packets
	c.got++
	if c.got == c.shards {
		// got == shards with no shard repeating (a repeat resets above)
		// means every index in [0, shards) reported exactly once.
		c.rounds = append(c.rounds, completedRound{round: c.round, sum: c.sum, seen: c.seen})
		c.got, c.sum = 0, 0
	}
	return nil
}

// verify runs once the whole log has been scanned. A round claiming less
// than the log held is a double count (replaying the log would answer
// with more packets than were recorded); claiming more than the log
// plus everything retention ever deleted is loss.
func (c *ckptChecker) verify() error {
	for _, r := range c.rounds {
		if r.sum < r.seen || r.sum > r.seen+c.deleted {
			return fmt.Errorf("segstore: round %d claims %d packets recorded, log held %d (+%d deleted) — double count or loss",
				r.round, r.sum, r.seen, c.deleted)
		}
	}
	return nil
}

// openSegment creates and headers the next active segment.
func (s *Store) openSegment(seq uint64) error {
	path := filepath.Join(s.dir, segName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("segstore: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("segstore: %w", err)
	}
	s.f, s.seq, s.size = f, seq, segHeaderLen
	s.idx, s.minTS, s.maxTS, s.pkts, s.blocks = s.idx[:0], 0, 0, 0, 0
	return nil
}

// now reads the clock, clamped monotone.
func (s *Store) now() uint64 {
	ts := s.opts.Now()
	if ts < s.lastTS {
		ts = s.lastTS
	}
	s.lastTS = ts
	return ts
}

// append writes one block to the active segment and rotates if the
// segment grew past the configured size.
func (s *Store) append(kind uint8, body []byte, packets uint64) error {
	if s.closed {
		return fmt.Errorf("segstore: append after Close")
	}
	ts := s.now()
	s.scratch = s.scratch[:0]
	var err error
	s.scratch, err = appendBlock(s.scratch, kind, ts, body)
	if err != nil {
		return err
	}
	if _, err := s.f.Write(s.scratch); err != nil {
		return fmt.Errorf("segstore: %w", err)
	}
	s.idx = append(s.idx, IndexEntry{Offset: uint64(s.size), Kind: kind, TS: ts, Packets: packets})
	if s.blocks == 0 {
		s.minTS = ts
	}
	s.maxTS = ts
	s.blocks++
	s.size += int64(len(s.scratch))
	s.pkts += packets
	s.durablePkts += packets
	if s.size >= s.opts.SegmentBytes {
		return s.rotateLocked()
	}
	return nil
}

// AppendDigests logs one ingested batch — the WAL record.
func (s *Store) AppendDigests(batch []core.PacketDigest) error {
	if len(batch) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	body, err := wire.AppendMarshal(nil, batch)
	if err != nil {
		return err
	}
	return s.append(KindDigests, body, uint64(len(batch)))
}

// AppendCheckpoint logs one shard's checkpoint record.
func (s *Store) AppendCheckpoint(cp Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.append(KindCheckpoint, appendCheckpointBody(nil, cp), 0)
}

// AppendEvict logs one evicted flow's finalized answers.
func (s *Store) AppendEvict(ev EvictRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.append(KindEvict, appendEvictBody(nil, ev), 0)
}

// Rotate seals the active segment (index footer, trailer, fsync) and
// opens the next one, then applies retention. A rotation of an empty
// segment is a no-op.
func (s *Store) Rotate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("segstore: Rotate after Close")
	}
	return s.rotateLocked()
}

func (s *Store) rotateLocked() error {
	if s.blocks == 0 {
		return nil
	}
	meta, err := s.sealLocked()
	if err != nil {
		return err
	}
	s.sealed = append(s.sealed, meta)
	if err := s.openSegment(s.seq + 1); err != nil {
		return err
	}
	return s.retainLocked()
}

// sealLocked writes the active segment's index footer and trailer,
// fsyncs, closes the file, and returns its metadata.
func (s *Store) sealLocked() (segMeta, error) {
	idx := Index{MinTS: s.minTS, MaxTS: s.maxTS, Packets: s.pkts, Entries: s.idx}
	footerOff := s.size
	s.scratch = s.scratch[:0]
	var err error
	s.scratch, err = appendBlock(s.scratch, kindIndex, s.maxTS, appendIndexBody(nil, idx))
	if err != nil {
		return segMeta{}, err
	}
	s.scratch = binary.LittleEndian.AppendUint64(s.scratch, uint64(footerOff))
	s.scratch = append(s.scratch, trailerMagic...)
	if _, err := s.f.Write(s.scratch); err != nil {
		return segMeta{}, fmt.Errorf("segstore: sealing: %w", err)
	}
	if !s.opts.NoSync {
		if err := s.f.Sync(); err != nil {
			return segMeta{}, fmt.Errorf("segstore: sealing: %w", err)
		}
	}
	if err := s.f.Close(); err != nil {
		return segMeta{}, fmt.Errorf("segstore: sealing: %w", err)
	}
	return segMeta{
		name:    segName(s.seq),
		seq:     s.seq,
		size:    s.size + int64(len(s.scratch)),
		minTS:   s.minTS,
		maxTS:   s.maxTS,
		packets: s.pkts,
		blocks:  s.blocks,
	}, nil
}

// retainLocked deletes the oldest sealed segments beyond MaxSegments and
// records the deletion so conservation checks and the query horizon
// survive it. The marker is logged and synced BEFORE the files are
// unlinked: a crash in between leaves segments the marker already counts
// as deleted — an overcounted horizon the next retention pass repairs —
// never digests that vanished without a durable trace.
func (s *Store) retainLocked() error {
	if s.opts.MaxSegments <= 0 || len(s.sealed) <= s.opts.MaxSegments {
		return nil
	}
	drop := s.sealed[:len(s.sealed)-s.opts.MaxSegments]
	for _, m := range drop {
		s.delSegs++
		s.delPkts += m.packets
		if m.maxTS > s.horizon {
			s.horizon = m.maxTS
		}
	}
	r := Retain{Segments: s.delSegs, Packets: s.delPkts, HorizonTS: s.horizon}
	if err := s.append(KindRetain, appendRetainBody(nil, r), 0); err != nil {
		return err
	}
	if !s.opts.NoSync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("segstore: retention: %w", err)
		}
	}
	for _, m := range drop {
		if err := os.Remove(filepath.Join(s.dir, m.name)); err != nil {
			return fmt.Errorf("segstore: retention: %w", err)
		}
		s.durablePkts -= m.packets
	}
	s.sealed = append(s.sealed[:0], s.sealed[len(drop):]...)
	return nil
}

// Sync fsyncs the active segment — the durability point a checkpoint
// interval ends with.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.opts.NoSync {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("segstore: %w", err)
	}
	return nil
}

// Close seals the active segment and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.blocks == 0 {
		// Nothing appended since the last rotation: delete the empty file
		// rather than sealing a blockless segment.
		name := s.f.Name()
		if err := s.f.Close(); err != nil {
			return fmt.Errorf("segstore: %w", err)
		}
		return os.Remove(name)
	}
	meta, err := s.sealLocked()
	if err != nil {
		return err
	}
	s.sealed = append(s.sealed, meta)
	return nil
}

// Abandon closes the store without sealing, syncing, or truncating —
// the simulated SIGKILL the torture tests use. Bytes already written are
// on disk (or in the page cache, which a process kill does not lose);
// everything else is gone, exactly like a real crash.
func (s *Store) Abandon() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.f.Close()
}

// Stats is the store's live accounting.
type Stats struct {
	// Segments counts sealed segments; the active segment rides in
	// ActiveBlocks/ActiveBytes.
	Segments        int    `json:"segments"`
	Packets         uint64 `json:"packets"`
	ActiveBlocks    int    `json:"active_blocks"`
	ActiveBytes     int64  `json:"active_bytes"`
	DeletedSegments uint64 `json:"deleted_segments"`
	DeletedPackets  uint64 `json:"deleted_packets"`
	HorizonTS       uint64 `json:"horizon_ts"`
}

// Stats reports the store's accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Segments:        len(s.sealed),
		Packets:         s.durablePkts,
		ActiveBlocks:    s.blocks,
		ActiveBytes:     s.size,
		DeletedSegments: s.delSegs,
		DeletedPackets:  s.delPkts,
		HorizonTS:       s.horizon,
	}
}

// HorizonTS returns the newest timestamp retention has deleted (0 when
// nothing was ever deleted): the oldest instant the log can still answer
// completely is just after it.
func (s *Store) HorizonTS() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.horizon
}

// MaxTS returns the newest block timestamp on disk.
func (s *Store) MaxTS() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.blocks > 0 {
		return s.maxTS
	}
	if n := len(s.sealed); n > 0 {
		return s.sealed[n-1].maxTS
	}
	return 0
}

// Scan walks every surviving block whose timestamp falls in
// [since, until], in log order, calling fn for each. Sealed segments
// wholly outside the window are skipped via their index bounds without
// reading a block. Blocks alias a per-segment read buffer valid only
// during the callback.
//
// The store lock is held only to snapshot the segment set: overlapping
// sealed segments are opened (an open fd survives a concurrent
// retention/compaction unlink) and the active segment's bytes copied,
// then the walk — file reads and fn callbacks included — runs unlocked,
// so a long replay never stalls the append path.
func (s *Store) Scan(since, until uint64, fn func(Block) error) error {
	s.mu.Lock()
	var files []*os.File
	closeAll := func() {
		for _, f := range files {
			f.Close()
		}
	}
	for _, m := range s.sealed {
		if m.maxTS < since || m.minTS > until {
			continue
		}
		f, err := os.Open(filepath.Join(s.dir, m.name))
		if err != nil {
			closeAll()
			s.mu.Unlock()
			return fmt.Errorf("segstore: %w", err)
		}
		files = append(files, f)
	}
	var active []byte
	if s.blocks > 0 && !s.closed && s.maxTS >= since && s.minTS <= until {
		var err error
		if active, err = s.readActiveLocked(); err != nil {
			closeAll()
			s.mu.Unlock()
			return err
		}
	}
	s.mu.Unlock()
	defer closeAll()
	for _, f := range files {
		data, err := io.ReadAll(f)
		if err != nil {
			return fmt.Errorf("segstore: %w", err)
		}
		body, err := sealedBody(data, filepath.Base(f.Name()))
		if err != nil {
			return err
		}
		if err := scanBlocks(body, since, until, fn); err != nil {
			return err
		}
	}
	if active == nil {
		return nil
	}
	return scanBlocks(active, since, until, fn)
}

// scanFile replays one sealed segment's data blocks through fn. Compact
// uses it under s.mu; Scan reads via fds snapshotted under the lock.
func (s *Store) scanFile(path string, since, until uint64, fn func(Block) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("segstore: %w", err)
	}
	body, err := sealedBody(data, filepath.Base(path))
	if err != nil {
		return err
	}
	return scanBlocks(body, since, until, fn)
}

// sealedBody validates a sealed segment image's framing and returns its
// data-block region (between the header and the index footer).
func sealedBody(data []byte, name string) ([]byte, error) {
	if len(data) < segHeaderLen || string(data[:segHeaderLen]) != segMagic {
		return nil, fmt.Errorf("segstore: %s: bad segment magic", name)
	}
	if len(data) < segHeaderLen+trailerLen || string(data[len(data)-4:]) != trailerMagic {
		return nil, fmt.Errorf("segstore: %s: sealed segment lost its trailer", name)
	}
	footerOff := binary.LittleEndian.Uint64(data[len(data)-trailerLen:])
	if footerOff < segHeaderLen || footerOff >= uint64(len(data)-trailerLen) {
		return nil, fmt.Errorf("segstore: %s: index footer offset %d outside file", name, footerOff)
	}
	return data[segHeaderLen:footerOff], nil
}

// readActiveLocked copies the active segment's block bytes by re-reading
// the file (the write handle is append-only).
func (s *Store) readActiveLocked() ([]byte, error) {
	data := make([]byte, s.size-segHeaderLen)
	rf, err := os.Open(s.f.Name())
	if err != nil {
		return nil, fmt.Errorf("segstore: %w", err)
	}
	defer rf.Close()
	if _, err := io.ReadFull(io.NewSectionReader(rf, segHeaderLen, int64(len(data))), data); err != nil {
		return nil, fmt.Errorf("segstore: reading active segment: %w", err)
	}
	return data, nil
}

func scanBlocks(data []byte, since, until uint64, fn func(Block) error) error {
	for len(data) > 0 {
		blk, rest, err := decodeBlock(data)
		if err != nil {
			return fmt.Errorf("segstore: scanning: %w", err)
		}
		data = rest
		if blk.Kind == kindIndex || blk.TS < since || blk.TS > until {
			continue
		}
		if err := fn(blk); err != nil {
			return err
		}
	}
	return nil
}

// Compact folds every sealed segment into one: blocks stream across in
// log order (Retain records included — the deletion history must
// survive), the combined segment seals with a fresh index, and the
// originals are removed. The fold preserves exactly the property
// Recording.Merge needs downstream: each flow's digests stay in arrival
// order, so replaying the compacted log yields the same Recordings.
//
// The replacement is crash-atomic. The commit point is the temp file
// sealing (fsync + close): before it, a crash leaves an invalid
// `.compact` file recovery deletes, the originals untouched; after it,
// the temp holds every sealed block, and recovery (recoverCompaction)
// finishes the replacement — removing the covered originals and renaming
// the temp into place — no matter where in that window the crash landed.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("segstore: Compact after Close")
	}
	if len(s.sealed) < 2 {
		return nil
	}
	seq := s.sealed[len(s.sealed)-1].seq
	tmp := filepath.Join(s.dir, segName(seq)+compactSuffix)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("segstore: compact: %w", err)
	}
	committed := false
	defer func() {
		// Pre-commit failures discard the temp (originals are intact);
		// post-commit it is the authoritative copy and must survive for
		// recovery to finish the replacement.
		if !committed {
			os.Remove(tmp)
		}
	}()
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("segstore: compact: %w", err)
	}
	out := segMeta{name: segName(seq), seq: seq}
	size := int64(segHeaderLen)
	var entries []IndexEntry
	var buf []byte
	for _, m := range s.sealed {
		err := s.scanFile(filepath.Join(s.dir, m.name), 0, ^uint64(0), func(blk Block) error {
			buf = buf[:0]
			var err error
			buf, err = appendBlock(buf, blk.Kind, blk.TS, blk.Body)
			if err != nil {
				return err
			}
			if _, err := f.Write(buf); err != nil {
				return fmt.Errorf("segstore: compact: %w", err)
			}
			var pkts uint64
			if blk.Kind == KindDigests {
				batch, err := wire.AppendUnmarshal(nil, blk.Body)
				if err != nil {
					return err
				}
				pkts = uint64(len(batch))
			}
			entries = append(entries, IndexEntry{Offset: uint64(size), Kind: blk.Kind, TS: blk.TS, Packets: pkts})
			if out.blocks == 0 {
				out.minTS = blk.TS
			}
			out.maxTS = blk.TS
			out.blocks++
			out.packets += pkts
			size += int64(len(buf))
			return nil
		})
		if err != nil {
			f.Close()
			return err
		}
	}
	idx := Index{MinTS: out.minTS, MaxTS: out.maxTS, Packets: out.packets, Entries: entries}
	buf = buf[:0]
	buf, err = appendBlock(buf, kindIndex, out.maxTS, appendIndexBody(nil, idx))
	if err != nil {
		f.Close()
		return err
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(size))
	buf = append(buf, trailerMagic...)
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("segstore: compact: %w", err)
	}
	if !s.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("segstore: compact: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("segstore: compact: %w", err)
	}
	committed = true
	out.size = size + int64(len(buf))
	// Replace: drop the older originals, then move the temp into place
	// (it takes the newest seq's name, atomically displacing the last
	// original). An error or crash from here on leaves the sealed temp
	// behind for recoverCompaction to finish from.
	for _, m := range s.sealed[:len(s.sealed)-1] {
		if err := os.Remove(filepath.Join(s.dir, m.name)); err != nil {
			return fmt.Errorf("segstore: compact: %w", err)
		}
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, out.name)); err != nil {
		return fmt.Errorf("segstore: compact: %w", err)
	}
	s.sealed = append(s.sealed[:0], out)
	return nil
}
