package segstore

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
)

func TestWriterPersistsInOrder(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTest(t, dir, Options{})
	w := NewWriter(st, WriterOptions{
		EncodeEvict: func(ev pipeline.Eviction, rec *core.Recording) []byte {
			return []byte(fmt.Sprintf(`{"flow":%d}`, ev.Flow))
		},
	})

	b1, b2 := testDigests(4, 1), testDigests(5, 2)
	w.PersistIngest(b1)
	w.PersistIngest(b2)
	w.PersistEvict(0, pipeline.Eviction{Flow: 7, Reason: pipeline.EvictCapacity, LastSeen: 3}, nil)
	w.PersistCheckpoint(pipeline.CheckpointStats{Round: 1, Shard: 0, Shards: 1, Packets: 9, Flows: 2})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	got := collectBlocks(t, st, 0, ^uint64(0))
	wantKinds := []uint8{KindDigests, KindDigests, KindEvict, KindCheckpoint}
	if len(got) != len(wantKinds) {
		t.Fatalf("store holds %d blocks, want %d", len(got), len(wantKinds))
	}
	for i, k := range wantKinds {
		if got[i].Kind != k {
			t.Fatalf("block %d has kind %d, want %d (FIFO violated)", i, got[i].Kind, k)
		}
	}
	ev, err := DecodeEvict(got[2].Body)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Flow != 7 || string(ev.Answers) != `{"flow":7}` {
		t.Fatalf("evict record %+v (answers %q)", ev, ev.Answers)
	}
	first, err := DecodeDigests(nil, got[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(b1) || first[0] != b1[0] {
		t.Fatalf("first batch changed: %d digests", len(first))
	}

	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWriterErrorSticksAndDrains forces an append failure and checks the
// writer reports it while never blocking producers.
func TestWriterErrorSticksAndDrains(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTest(t, dir, Options{})
	w := NewWriter(st, WriterOptions{QueueDepth: 2})
	st.Close() // every later append fails with "append after Close"

	for i := 0; i < 20; i++ { // far past the queue depth: must not deadlock
		w.PersistIngest(testDigests(1, uint64(i)))
	}
	if err := w.Flush(); err == nil || !strings.Contains(err.Error(), "after Close") {
		t.Fatalf("flush after store close: %v", err)
	}
	if w.Err() == nil {
		t.Fatal("writer error not sticky")
	}
	if err := w.Close(); err == nil {
		t.Fatal("close swallowed the error")
	}
}

func TestWriterAbandonUnblocks(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTest(t, dir, Options{})
	w := NewWriter(st, WriterOptions{QueueDepth: 1})
	w.PersistIngest(testDigests(2, 1))
	w.Abandon()
	// Post-abandon persists are dropped, not deadlocked.
	w.PersistIngest(testDigests(2, 2))
	if err := w.Flush(); err != nil {
		t.Fatalf("flush after abandon: %v", err)
	}
	// The store was abandoned with the writer; recovery replays whatever
	// reached the file before the abandon.
	if _, rep, err := Open(dir, Options{NoSync: true, Now: testClock()}); err != nil {
		t.Fatal(err)
	} else if rep.Packets > 2 {
		t.Fatalf("abandon leaked %d packets", rep.Packets)
	}
}
