package segstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/wire"
)

// TestRegenerateFuzzCorpus rewrites the committed seed corpora under
// testdata/fuzz/ from the same golden encoders the fuzzers seed with.
// It is a no-op unless PINT_REGEN_CORPUS=1 — run it after a deliberate
// format change, then commit the result; CI replays these files on every
// PR (go test -run='^Fuzz'), so a format drift that breaks old corpora
// fails loudly.
func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("PINT_REGEN_CORPUS") != "1" {
		t.Skip("set PINT_REGEN_CORPUS=1 to rewrite testdata/fuzz/")
	}
	write := func(fuzzName, seedName string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", fuzzName)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, seedName), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mustBlock := func(kind uint8, ts uint64, body []byte) []byte {
		buf, err := appendBlock(nil, kind, ts, body)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	digests, err := wire.AppendMarshal(nil, testDigests(4, 7))
	if err != nil {
		t.Fatal(err)
	}
	dblk := mustBlock(KindDigests, 100, digests)
	cblk := mustBlock(KindCheckpoint, 200, appendCheckpointBody(nil, Checkpoint{Round: 3, Shard: 1, Shards: 4, Packets: 77, Flows: 5}))
	eblk := mustBlock(KindEvict, 300, appendEvictBody(nil, EvictRecord{Flow: 9, Reason: 1, LastSeen: 50, Answers: []byte(`{"x":1}`)}))
	rblk := mustBlock(KindRetain, 400, appendRetainBody(nil, Retain{Segments: 2, Packets: 64, HorizonTS: 350}))
	iblk := mustBlock(kindIndex, 400, appendIndexBody(nil, Index{
		MinTS: 100, MaxTS: 400, Packets: 4,
		Entries: []IndexEntry{{Offset: 4, Kind: KindDigests, TS: 100, Packets: 4}, {Offset: 90, Kind: KindRetain, TS: 400}},
	}))
	write("FuzzSegmentDecode", "seed-digest-block", dblk)
	write("FuzzSegmentDecode", "seed-checkpoint-block", cblk)
	write("FuzzSegmentDecode", "seed-evict-block", eblk)
	write("FuzzSegmentDecode", "seed-retain-block", rblk)
	write("FuzzSegmentDecode", "seed-index-block", iblk)
	write("FuzzSegmentDecode", "seed-torn-tail", dblk[:len(dblk)-3])
	write("FuzzSegmentDecode", "seed-two-blocks", append(bytes.Clone(dblk), cblk...))
	flipped := bytes.Clone(eblk)
	flipped[len(flipped)-2] ^= 0x10
	write("FuzzSegmentDecode", "seed-bit-flip", flipped)

	full := appendIndexBody(nil, Index{MinTS: 10, MaxTS: 90, Packets: 12, Entries: []IndexEntry{
		{Offset: 4, Kind: KindDigests, TS: 10, Packets: 8},
		{Offset: 60, Kind: KindCheckpoint, TS: 40},
		{Offset: 100, Kind: KindDigests, TS: 90, Packets: 4},
	}})
	write("FuzzIndexFooter", "seed-three-entries", full)
	write("FuzzIndexFooter", "seed-empty-directory", appendIndexBody(nil, Index{}))
	write("FuzzIndexFooter", "seed-truncated", full[:len(full)/2])
	write("FuzzIndexFooter", "seed-trailing-byte", append(bytes.Clone(full), 0x01))
}

// FuzzSegmentDecode drives arbitrary bytes through the segment block
// decoder — the exact code recovery runs over a crashed collector's log.
// The contract:
//
//   - decodeBlock never panics,
//   - wire.ErrShortFrame is returned exactly for truncation (a prefix of
//     a longer valid block — the benign torn-tail class); every other
//     error is corruption and the two are never confused,
//   - on success, re-encoding the block reproduces the consumed bytes
//     (the format is canonical), and
//   - every typed body decoder (checkpoint/evict/retain/index) is strict:
//     what it accepts, it re-encodes byte-identically.
func FuzzSegmentDecode(f *testing.F) {
	addBlock := func(kind uint8, ts uint64, body []byte) {
		buf, err := appendBlock(nil, kind, ts, body)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		f.Add(buf[:len(buf)-1])
		f.Add(append(append([]byte(nil), buf...), buf...))
	}
	digests, err := wire.AppendMarshal(nil, testDigests(4, 7))
	if err != nil {
		f.Fatal(err)
	}
	addBlock(KindDigests, 100, digests)
	addBlock(KindCheckpoint, 200, appendCheckpointBody(nil, Checkpoint{Round: 3, Shard: 1, Shards: 4, Packets: 77, Flows: 5}))
	addBlock(KindEvict, 300, appendEvictBody(nil, EvictRecord{Flow: 9, Reason: 1, LastSeen: 50, Answers: []byte(`{"x":1}`)}))
	addBlock(KindRetain, 400, appendRetainBody(nil, Retain{Segments: 2, Packets: 64, HorizonTS: 350}))
	addBlock(kindIndex, 400, appendIndexBody(nil, Index{
		MinTS: 100, MaxTS: 400, Packets: 4,
		Entries: []IndexEntry{{Offset: 4, Kind: KindDigests, TS: 100, Packets: 4}, {Offset: 90, Kind: KindRetain, TS: 400}},
	}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for len(rest) > 0 {
			blk, after, err := decodeBlock(rest)
			if errors.Is(err, wire.ErrShortFrame) {
				return // truncation: recovery truncates and reports
			}
			if err != nil {
				return // corruption: recovery refuses, never repairs
			}
			consumed := rest[:len(rest)-len(after)]
			again, err := appendBlock(nil, blk.Kind, blk.TS, blk.Body)
			if err != nil {
				t.Fatalf("re-encoding a decoded block: %v", err)
			}
			if !bytes.Equal(again, consumed) {
				t.Fatalf("block re-encode differs from input:\n got %x\nwant %x", again, consumed)
			}
			switch blk.Kind {
			case KindDigests:
				batch, err := DecodeDigests(nil, blk.Body)
				if err == nil {
					body, err := wire.AppendMarshal(nil, batch)
					if err != nil {
						t.Fatalf("re-marshalling decoded digests: %v", err)
					}
					round, err := DecodeDigests(nil, body)
					if err != nil || len(round) != len(batch) {
						t.Fatalf("digest re-marshal round trip: %v (%d vs %d)", err, len(round), len(batch))
					}
				}
			case KindCheckpoint:
				if cp, err := DecodeCheckpoint(blk.Body); err == nil {
					if !bytes.Equal(appendCheckpointBody(nil, cp), blk.Body) {
						t.Fatalf("checkpoint body not canonical: %x", blk.Body)
					}
				}
			case KindEvict:
				if ev, err := DecodeEvict(blk.Body); err == nil {
					if !bytes.Equal(appendEvictBody(nil, ev), blk.Body) {
						t.Fatalf("evict body not canonical: %x", blk.Body)
					}
				}
			case KindRetain:
				if r, err := DecodeRetain(blk.Body); err == nil {
					if !bytes.Equal(appendRetainBody(nil, r), blk.Body) {
						t.Fatalf("retain body not canonical: %x", blk.Body)
					}
				}
			case kindIndex:
				if idx, err := DecodeIndex(blk.Body); err == nil {
					if !bytes.Equal(appendIndexBody(nil, idx), blk.Body) {
						t.Fatalf("index body not canonical: %x", blk.Body)
					}
				}
			}
			rest = after
		}
	})
}

// FuzzIndexFooter targets the per-segment index directory decoder: no
// panics on arbitrary bytes, and everything it accepts re-encodes to the
// identical bytes — the property recovery leans on when it trusts a
// sealed segment's directory instead of re-reading every block.
func FuzzIndexFooter(f *testing.F) {
	add := func(idx Index) {
		body := appendIndexBody(nil, idx)
		f.Add(body)
		f.Add(body[:len(body)/2])
		f.Add(append(append([]byte(nil), body...), 0x01))
	}
	add(Index{})
	add(Index{MinTS: 10, MaxTS: 10, Packets: 3,
		Entries: []IndexEntry{{Offset: 4, Kind: KindDigests, TS: 10, Packets: 3}}})
	add(Index{MinTS: 10, MaxTS: 90, Packets: 12, Entries: []IndexEntry{
		{Offset: 4, Kind: KindDigests, TS: 10, Packets: 8},
		{Offset: 60, Kind: KindCheckpoint, TS: 40},
		{Offset: 100, Kind: KindDigests, TS: 90, Packets: 4},
	}})
	f.Add([]byte{})
	f.Add([]byte{0x01})

	f.Fuzz(func(t *testing.T, body []byte) {
		idx, err := DecodeIndex(body)
		if err != nil {
			return
		}
		again := appendIndexBody(nil, idx)
		if !bytes.Equal(again, body) {
			t.Fatalf("index re-encode differs from input:\n got %x\nwant %x", again, body)
		}
		// Directory invariants the rest of recovery assumes hold for
		// anything the decoder lets through.
		if idx.MinTS > idx.MaxTS {
			t.Fatalf("decoded inverted bounds: %+v", idx)
		}
		var sum uint64
		for i, e := range idx.Entries {
			sum += e.Packets
			if e.TS < idx.MinTS || e.TS > idx.MaxTS {
				t.Fatalf("entry %d timestamp %d outside [%d,%d]", i, e.TS, idx.MinTS, idx.MaxTS)
			}
			if i > 0 && e.Offset <= idx.Entries[i-1].Offset {
				t.Fatalf("entry %d offset not increasing", i)
			}
		}
		if sum != idx.Packets {
			t.Fatalf("entry packets sum %d != total %d", sum, idx.Packets)
		}
	})
}
