package segstore

import (
	"encoding/binary"
	"fmt"
)

// IndexEntry locates one block inside its segment.
type IndexEntry struct {
	// Offset is the block frame's byte offset from the segment start.
	Offset uint64
	Kind   uint8
	TS     uint64
	// Packets is the block's digest count (0 for non-digest blocks).
	Packets uint64
}

// Index is a sealed segment's block directory.
type Index struct {
	// MinTS/MaxTS bound every indexed block's timestamp; a time-windowed
	// scan skips the whole segment when the window misses [MinTS, MaxTS].
	MinTS uint64
	MaxTS uint64
	// Packets sums the segment's digest packets.
	Packets uint64
	Entries []IndexEntry
}

// maxIndexEntries bounds a decoded directory: segments rotate at a few
// MiB and a block is never smaller than a frame header, so even a
// degenerate segment holds far fewer blocks than this.
const maxIndexEntries = 1 << 20

// appendIndexBody appends idx's canonical body encoding to dst: counts
// and bounds, then per-entry deltas (offsets strictly increase and
// timestamps never decrease within a segment, so deltas stay small).
func appendIndexBody(dst []byte, idx Index) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(idx.Entries)))
	dst = binary.AppendUvarint(dst, idx.MinTS)
	dst = binary.AppendUvarint(dst, idx.MaxTS)
	dst = binary.AppendUvarint(dst, idx.Packets)
	prevOff, prevTS := uint64(0), uint64(0)
	for _, e := range idx.Entries {
		dst = binary.AppendUvarint(dst, e.Offset-prevOff)
		dst = append(dst, e.Kind)
		dst = binary.AppendUvarint(dst, e.TS-prevTS)
		dst = binary.AppendUvarint(dst, e.Packets)
		prevOff, prevTS = e.Offset, e.TS
	}
	return dst
}

// DecodeIndex decodes an index body. The decoder is strict and canonical:
// trailing bytes, non-minimal varints, overflowing deltas, inverted
// timestamp bounds, and directories above the entry cap are all errors,
// so appendIndexBody(DecodeIndex(b)) == b for every accepted b.
func DecodeIndex(body []byte) (Index, error) {
	var idx Index
	take := func(what string) (uint64, error) {
		v, n, err := uvarint(body)
		if err != nil {
			return 0, fmt.Errorf("segstore: index %s: %w", what, err)
		}
		body = body[n:]
		return v, nil
	}
	count, err := take("entry count")
	if err != nil {
		return Index{}, err
	}
	if count > maxIndexEntries {
		return Index{}, fmt.Errorf("segstore: index claims %d entries, cap %d", count, maxIndexEntries)
	}
	if idx.MinTS, err = take("min ts"); err != nil {
		return Index{}, err
	}
	if idx.MaxTS, err = take("max ts"); err != nil {
		return Index{}, err
	}
	if idx.MinTS > idx.MaxTS {
		return Index{}, fmt.Errorf("segstore: index min ts %d above max ts %d", idx.MinTS, idx.MaxTS)
	}
	if idx.Packets, err = take("packet total"); err != nil {
		return Index{}, err
	}
	idx.Entries = make([]IndexEntry, 0, min(count, 1024))
	prevOff, prevTS := uint64(0), uint64(0)
	for i := uint64(0); i < count; i++ {
		var e IndexEntry
		dOff, err := take("offset delta")
		if err != nil {
			return Index{}, err
		}
		if e.Offset = prevOff + dOff; e.Offset < prevOff {
			return Index{}, fmt.Errorf("segstore: index entry %d offset overflows", i)
		}
		if i > 0 && dOff == 0 {
			return Index{}, fmt.Errorf("segstore: index entry %d repeats offset %d", i, e.Offset)
		}
		if len(body) < 1 {
			return Index{}, fmt.Errorf("segstore: index entry %d truncated before kind", i)
		}
		e.Kind = body[0]
		body = body[1:]
		dTS, err := take("ts delta")
		if err != nil {
			return Index{}, err
		}
		if e.TS = prevTS + dTS; e.TS < prevTS {
			return Index{}, fmt.Errorf("segstore: index entry %d timestamp overflows", i)
		}
		if e.Packets, err = take("packets"); err != nil {
			return Index{}, err
		}
		if e.TS < idx.MinTS || e.TS > idx.MaxTS {
			return Index{}, fmt.Errorf("segstore: index entry %d ts %d outside [%d, %d]",
				i, e.TS, idx.MinTS, idx.MaxTS)
		}
		idx.Entries = append(idx.Entries, e)
		prevOff, prevTS = e.Offset, e.TS
	}
	if len(body) != 0 {
		return Index{}, fmt.Errorf("segstore: %d trailing bytes after index", len(body))
	}
	if count > 0 {
		var pkts uint64
		for _, e := range idx.Entries {
			pkts += e.Packets
		}
		if pkts != idx.Packets {
			return Index{}, fmt.Errorf("segstore: index packet total %d, entries sum to %d", idx.Packets, pkts)
		}
		if idx.Entries[0].TS != idx.MinTS {
			return Index{}, fmt.Errorf("segstore: index min ts %d, first entry at %d", idx.MinTS, idx.Entries[0].TS)
		}
		if last := idx.Entries[len(idx.Entries)-1].TS; last != idx.MaxTS {
			return Index{}, fmt.Errorf("segstore: index max ts %d, last entry at %d", idx.MaxTS, last)
		}
	} else if idx.MinTS != 0 || idx.MaxTS != 0 || idx.Packets != 0 {
		return Index{}, fmt.Errorf("segstore: empty index with nonzero bounds")
	}
	return idx, nil
}
