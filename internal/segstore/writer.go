package segstore

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// WriterOptions shapes a Writer.
type WriterOptions struct {
	// QueueDepth bounds the pending-operation queue (default 64). A full
	// queue blocks PersistIngest — the ingester — which is the durability
	// tier's backpressure: TCP flow control then slows the exporters,
	// exactly like a slow sink worker would.
	QueueDepth int
	// EncodeEvict, when non-nil, renders an evicted flow's finalized
	// answers while the Recording still holds them (it runs synchronously
	// on the evicting worker); the bytes land in the KindEvict record.
	// Nil persists the eviction with an empty answer body.
	EncodeEvict func(ev pipeline.Eviction, rec *core.Recording) []byte
}

// Writer is the pipeline.Persister that feeds a Store: every event is
// copied into a bounded queue and applied by one background goroutine,
// keeping file I/O off the ingest hot path. Wiring it in:
//
//	store, report, _ := segstore.Open(dir, segstore.Options{})
//	// ... replay the log into the sink first (collector.ReplayInto) ...
//	w := segstore.NewWriter(store, segstore.WriterOptions{})
//	sink.SetPersister(w)
//
// and on the way down: Sink.Checkpoint → w.Sync → Sink.Close → w.Close →
// store.Close (the writer must outlive the sink, whose drain may still
// evict).
type Writer struct {
	store *Store
	enc   func(pipeline.Eviction, *core.Recording) []byte
	ops   chan wop
	free  chan []core.PacketDigest
	quit  chan struct{}
	done  chan struct{}
	err   atomic.Pointer[error]

	mu     sync.Mutex
	closed bool
}

// wop is one queued writer operation.
type wop struct {
	kind  uint8 // KindDigests / KindCheckpoint / KindEvict / opFlush / opSync
	batch []core.PacketDigest
	cp    Checkpoint
	ev    EvictRecord
	reply chan<- error
}

const (
	opFlush uint8 = 0xFE
	opSync  uint8 = 0xFF
)

// NewWriter starts a writer over store.
func NewWriter(store *Store, opts WriterOptions) *Writer {
	if opts.QueueDepth < 1 {
		opts.QueueDepth = 64
	}
	w := &Writer{
		store: store,
		enc:   opts.EncodeEvict,
		ops:   make(chan wop, opts.QueueDepth),
		free:  make(chan []core.PacketDigest, opts.QueueDepth+1),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go w.run()
	return w
}

func (w *Writer) run() {
	defer close(w.done)
	for {
		select {
		case <-w.quit:
			return
		case op := <-w.ops:
			w.apply(op)
		}
	}
}

func (w *Writer) apply(op wop) {
	var err error
	switch op.kind {
	case KindDigests:
		if w.Err() == nil {
			err = w.store.AppendDigests(op.batch)
		}
		select {
		case w.free <- op.batch[:0]:
		default:
		}
	case KindCheckpoint:
		if w.Err() == nil {
			err = w.store.AppendCheckpoint(op.cp)
		}
	case KindEvict:
		if w.Err() == nil {
			err = w.store.AppendEvict(op.ev)
		}
	case opFlush:
		op.reply <- w.Err()
		return
	case opSync:
		err = w.Err()
		if err == nil {
			err = w.store.Sync()
		}
		op.reply <- err
		return
	}
	if err != nil {
		w.fail(err)
	}
}

func (w *Writer) fail(err error) {
	if w.err.Load() == nil {
		w.err.Store(&err)
	}
}

// Err returns the writer's first persistence error, or nil. After an
// error the writer keeps draining its queue (so ingestion never
// deadlocks) but appends nothing further — the collector surfaces the
// error and the operator decides.
func (w *Writer) Err() error {
	if p := w.err.Load(); p != nil {
		return *p
	}
	return nil
}

// send enqueues an op, blocking when the queue is full (backpressure)
// but never blocking past Abandon.
func (w *Writer) send(op wop) {
	select {
	case w.ops <- op:
	case <-w.quit:
	}
}

// PersistIngest implements pipeline.Persister: it copies the batch into
// a recycled buffer and queues it, so steady state allocates nothing.
func (w *Writer) PersistIngest(batch []core.PacketDigest) {
	var buf []core.PacketDigest
	select {
	case buf = <-w.free:
	default:
	}
	buf = append(buf[:0], batch...)
	w.send(wop{kind: KindDigests, batch: buf})
}

// PersistEvict implements pipeline.Persister. The answer encoding runs
// here, synchronously on the evicting worker, because the flow's state
// is dropped the moment this returns.
func (w *Writer) PersistEvict(shard int, ev pipeline.Eviction, rec *core.Recording) {
	record := EvictRecord{Flow: ev.Flow, Reason: uint8(ev.Reason), LastSeen: ev.LastSeen}
	if w.enc != nil {
		record.Answers = w.enc(ev, rec)
	}
	w.send(wop{kind: KindEvict, ev: record})
}

// PersistCheckpoint implements pipeline.Persister.
func (w *Writer) PersistCheckpoint(cp pipeline.CheckpointStats) {
	w.send(wop{kind: KindCheckpoint, cp: Checkpoint{
		Round:   cp.Round,
		Shard:   cp.Shard,
		Shards:  cp.Shards,
		Packets: cp.Packets,
		Flows:   cp.Flows,
	}})
}

// Flush blocks until every event queued before the call has been applied
// to the store, and returns the writer's error state.
func (w *Writer) Flush() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return w.Err()
	}
	w.mu.Unlock()
	reply := make(chan error, 1)
	select {
	case w.ops <- wop{kind: opFlush, reply: reply}:
	case <-w.quit:
		return w.Err()
	}
	select {
	case err := <-reply:
		return err
	case <-w.quit:
		return w.Err()
	}
}

// Sync flushes and fsyncs the store — the durability point each
// checkpoint interval ends with.
func (w *Writer) Sync() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return w.Err()
	}
	w.mu.Unlock()
	reply := make(chan error, 1)
	select {
	case w.ops <- wop{kind: opSync, reply: reply}:
	case <-w.quit:
		return w.Err()
	}
	select {
	case err := <-reply:
		return err
	case <-w.quit:
		return w.Err()
	}
}

// Close drains the queue and stops the writer. The store stays open —
// the caller seals it with Store.Close.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return w.Err()
	}
	w.mu.Unlock()
	err := w.Flush()
	w.mu.Lock()
	if !w.closed {
		w.closed = true
		close(w.quit)
	}
	w.mu.Unlock()
	<-w.done
	return err
}

// Abandon stops the writer immediately, dropping everything still
// queued, and abandons the store — the simulated SIGKILL. Producers
// blocked on a full queue unblock (their events are lost, like any
// in-process buffer at a crash).
func (w *Writer) Abandon() {
	w.mu.Lock()
	if !w.closed {
		w.closed = true
		close(w.quit)
	}
	w.mu.Unlock()
	<-w.done
	w.store.Abandon()
}
