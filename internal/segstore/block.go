// Package segstore is the durable tier of the collector: an append-only
// segment log that persists the ingested digest stream, per-shard
// Recording checkpoints, and evicted flows' finalized answers, so a
// collector that crashes — SIGKILL, not a graceful drain — restarts into
// exactly the state an uncrashed collector would hold, modulo an
// explicitly-reported unflushed tail.
//
// # Why a digest WAL and not state snapshots
//
// core.Recording has no serialization, and inventing one would freeze
// every sketch's internals into a file format. It does not need one: a
// Recording is a pure function of its digest stream and its seed (the
// pipeline package's determinism argument), so logging the stream in
// global arrival order IS logging the state. Recovery replays the log
// through an identically-configured sink and lands on the same bits —
// including the same evictions, since those too are a function of the
// stream.
//
// # Segment layout
//
//	magic  [4]byte  'P' 'S' 'G' '1'
//	block*          wire frames (length u32 LE | crc32c u32 LE | payload)
//
// and, once sealed (rotation or clean close):
//
//	index block     kind 0xF0, the segment's block directory
//	trailer         footerOff uint64 LE | 'P' 'I' 'D' 'X'
//
// Every block payload is `kind uint8 | ts uint64 LE | body`. Reusing
// internal/wire's frame discipline means segments inherit the stream
// format's guarantees: strict bounded decode, CRC-32C over every payload,
// and wire.ErrShortFrame distinguishing a torn tail (benign: the write
// was cut by a crash) from a checksum mismatch (corruption: the bytes
// changed after they were written).
//
// The index footer lists every block's (offset, kind, ts, packets) so a
// time-windowed query seeks straight past segments outside its window.
// Its encoding is canonical — minimal uvarints, no trailing bytes — so
// decode∘encode is the identity, a property the fuzzers pin.
package segstore

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/wire"
)

// Block kinds. The high range (0xF0+) is reserved for segment metadata
// that replay skips.
const (
	// KindDigests carries one wire-marshaled core.PacketDigest batch — the
	// WAL record recovery replays.
	KindDigests uint8 = 1
	// KindCheckpoint carries one shard's checkpoint counters: proof of how
	// many packets the sink had recorded when the round closed. Recovery
	// cross-checks complete rounds against the digest stream.
	KindCheckpoint uint8 = 2
	// KindEvict carries one evicted flow's identity and its finalized
	// answers (an opaque encoder-provided body), persisted before the
	// flow's state was dropped.
	KindEvict uint8 = 3
	// KindRetain records that retention deleted sealed segments: the
	// cumulative deleted segment/packet totals and the deleted range's max
	// timestamp, so conservation checks and the query horizon survive the
	// deletion.
	KindRetain uint8 = 4
	// kindIndex is the sealed segment's index footer.
	kindIndex uint8 = 0xF0
)

// blockHeadLen is the payload prefix before the body: kind + timestamp.
const blockHeadLen = 9

// Block is one decoded segment block.
type Block struct {
	Kind uint8
	// TS is the store clock's value when the block was appended
	// (monotone non-decreasing within a store's lifetime).
	TS uint64
	// Body is the kind-specific encoding; it aliases the decode buffer.
	Body []byte
}

// appendBlock appends one framed block to dst.
func appendBlock(dst []byte, kind uint8, ts uint64, body []byte) ([]byte, error) {
	payload := make([]byte, 0, blockHeadLen+len(body))
	payload = append(payload, kind)
	payload = binary.LittleEndian.AppendUint64(payload, ts)
	payload = append(payload, body...)
	return wire.AppendFrame(dst, payload)
}

// decodeBlock decodes the first block of data, returning it and the bytes
// after its frame. wire.ErrShortFrame means data ends before the block
// does (a torn tail); any other error is corruption.
func decodeBlock(data []byte) (Block, []byte, error) {
	payload, rest, err := wire.DecodeFrame(data, wire.DefaultMaxFramePayload)
	if err != nil {
		return Block{}, data, err
	}
	if len(payload) < blockHeadLen {
		return Block{}, data, fmt.Errorf("segstore: block payload %d bytes below header %d", len(payload), blockHeadLen)
	}
	return Block{
		Kind: payload[0],
		TS:   binary.LittleEndian.Uint64(payload[1:]),
		Body: payload[blockHeadLen:],
	}, rest, nil
}

// uvarint is the strict, canonical decoder every segstore body shares:
// it rejects truncation, overflow, and non-minimal encodings, so every
// valid body has exactly one byte representation and re-encoding a
// decoded value reproduces the input (the fuzzers' identity property).
func uvarint(data []byte) (uint64, int, error) {
	v, n := binary.Uvarint(data)
	if n == 0 {
		return 0, 0, fmt.Errorf("segstore: truncated uvarint")
	}
	if n < 0 {
		return 0, 0, fmt.Errorf("segstore: uvarint overflows 64 bits")
	}
	if n > 1 && data[n-1] == 0 {
		return 0, 0, fmt.Errorf("segstore: non-minimal uvarint")
	}
	return v, n, nil
}

// Checkpoint is one shard's durable checkpoint record.
type Checkpoint struct {
	// Round numbers the checkpoint barrier this record belongs to; one
	// round emits Shards records sharing it.
	Round uint64
	// Shard / Shards locate the record within its round.
	Shard  int
	Shards int
	// Packets is the shard's dispatched-packet counter at the barrier —
	// after a barrier that equals everything the shard has recorded.
	Packets uint64
	// Flows is the shard's live flow count at the barrier.
	Flows int
}

// appendCheckpointBody appends cp's body encoding to dst.
func appendCheckpointBody(dst []byte, cp Checkpoint) []byte {
	dst = binary.AppendUvarint(dst, cp.Round)
	dst = binary.AppendUvarint(dst, uint64(cp.Shard))
	dst = binary.AppendUvarint(dst, uint64(cp.Shards))
	dst = binary.AppendUvarint(dst, cp.Packets)
	dst = binary.AppendUvarint(dst, uint64(cp.Flows))
	return dst
}

// DecodeCheckpoint decodes a KindCheckpoint body.
func DecodeCheckpoint(body []byte) (Checkpoint, error) {
	var cp Checkpoint
	fields := []*uint64{&cp.Round, nil, nil, &cp.Packets, nil}
	ints := []*int{nil, &cp.Shard, &cp.Shards, nil, &cp.Flows}
	for i := range fields {
		v, n, err := uvarint(body)
		if err != nil {
			return Checkpoint{}, fmt.Errorf("segstore: checkpoint field %d: %w", i, err)
		}
		if fields[i] != nil {
			*fields[i] = v
		} else {
			if v > 1<<31 {
				return Checkpoint{}, fmt.Errorf("segstore: checkpoint field %d value %d above int bound", i, v)
			}
			*ints[i] = int(v)
		}
		body = body[n:]
	}
	if len(body) != 0 {
		return Checkpoint{}, fmt.Errorf("segstore: %d trailing bytes after checkpoint", len(body))
	}
	if cp.Shards < 1 || cp.Shard >= cp.Shards {
		return Checkpoint{}, fmt.Errorf("segstore: checkpoint shard %d/%d out of range", cp.Shard, cp.Shards)
	}
	return cp, nil
}

// EvictRecord is one evicted flow's durable record.
type EvictRecord struct {
	Flow core.FlowKey
	// Reason mirrors pipeline.EvictReason.
	Reason uint8
	// LastSeen is the policy clock when the flow was last touched.
	LastSeen uint64
	// Answers is the encoder-provided finalized answer bytes (typically
	// the collector's FlowAnswers JSON); segstore treats it as opaque.
	Answers []byte
}

// appendEvictBody appends ev's body encoding to dst.
func appendEvictBody(dst []byte, ev EvictRecord) []byte {
	dst = binary.AppendUvarint(dst, uint64(ev.Flow))
	dst = append(dst, ev.Reason)
	dst = binary.AppendUvarint(dst, ev.LastSeen)
	return append(dst, ev.Answers...)
}

// DecodeEvict decodes a KindEvict body. The Answers field aliases body.
func DecodeEvict(body []byte) (EvictRecord, error) {
	var ev EvictRecord
	flow, n, err := uvarint(body)
	if err != nil {
		return EvictRecord{}, fmt.Errorf("segstore: evict flow: %w", err)
	}
	body = body[n:]
	if len(body) < 1 {
		return EvictRecord{}, fmt.Errorf("segstore: evict record missing reason")
	}
	ev.Flow = core.FlowKey(flow)
	ev.Reason = body[0]
	body = body[1:]
	last, n, err := uvarint(body)
	if err != nil {
		return EvictRecord{}, fmt.Errorf("segstore: evict last-seen: %w", err)
	}
	ev.LastSeen = last
	ev.Answers = body[n:]
	return ev, nil
}

// Retain is the cumulative retention-deletion record.
type Retain struct {
	// Segments / Packets count everything retention has deleted over the
	// store's lifetime (cumulative, so the latest record is the total).
	Segments uint64
	Packets  uint64
	// HorizonTS is the max block timestamp among deleted segments: queries
	// at or before it can only be answered partially.
	HorizonTS uint64
}

// appendRetainBody appends r's body encoding to dst.
func appendRetainBody(dst []byte, r Retain) []byte {
	dst = binary.AppendUvarint(dst, r.Segments)
	dst = binary.AppendUvarint(dst, r.Packets)
	dst = binary.AppendUvarint(dst, r.HorizonTS)
	return dst
}

// DecodeRetain decodes a KindRetain body.
func DecodeRetain(body []byte) (Retain, error) {
	var r Retain
	for i, f := range []*uint64{&r.Segments, &r.Packets, &r.HorizonTS} {
		v, n, err := uvarint(body)
		if err != nil {
			return Retain{}, fmt.Errorf("segstore: retain field %d: %w", i, err)
		}
		*f = v
		body = body[n:]
	}
	if len(body) != 0 {
		return Retain{}, fmt.Errorf("segstore: %d trailing bytes after retain record", len(body))
	}
	return r, nil
}

// DecodeDigests decodes a KindDigests body into dst (reused when large
// enough) — the same wire batch format exporters stream.
func DecodeDigests(dst []core.PacketDigest, body []byte) ([]core.PacketDigest, error) {
	return wire.AppendUnmarshal(dst[:0], body)
}

// Persister is re-exported so callers wiring a Writer into a sink can
// name the contract without importing pipeline.
type Persister = pipeline.Persister
