package segstore

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/wire"
)

// testDigests builds a small deterministic batch with valid path lengths.
func testDigests(n int, salt uint64) []core.PacketDigest {
	out := make([]core.PacketDigest, n)
	for i := range out {
		out[i] = core.PacketDigest{
			Flow:    core.FlowKey(salt<<8 | uint64(i%3)),
			PktID:   salt*1_000_003 + uint64(i),
			PathLen: 1 + i%5,
			Digest:  salt ^ uint64(i)*0x9E3779B97F4A7C15,
		}
	}
	return out
}

func TestBlockRoundTrip(t *testing.T) {
	body := []byte("payload bytes")
	buf, err := appendBlock(nil, KindEvict, 42, body)
	if err != nil {
		t.Fatal(err)
	}
	blk, rest, err := decodeBlock(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || blk.Kind != KindEvict || blk.TS != 42 || !bytes.Equal(blk.Body, body) {
		t.Fatalf("round trip mangled the block: %+v rest=%d", blk, len(rest))
	}

	// Every strict prefix must decode as a short frame — truncation, not
	// corruption.
	for i := 0; i < len(buf); i++ {
		if _, _, err := decodeBlock(buf[:i]); !errors.Is(err, wire.ErrShortFrame) {
			t.Fatalf("prefix %d/%d: want ErrShortFrame, got %v", i, len(buf), err)
		}
	}

	// A flipped payload bit must be a CRC error, never a short frame.
	for _, off := range []int{8, 9, len(buf) - 1} {
		bad := bytes.Clone(buf)
		bad[off] ^= 0x40
		_, _, err := decodeBlock(bad)
		if err == nil || errors.Is(err, wire.ErrShortFrame) {
			t.Fatalf("bit flip at %d: want a hard error, got %v", off, err)
		}
	}
}

func TestCheckpointBodyRoundTrip(t *testing.T) {
	cases := []Checkpoint{
		{Round: 1, Shard: 0, Shards: 1, Packets: 0, Flows: 0},
		{Round: 7, Shard: 3, Shards: 4, Packets: 123456, Flows: 99},
		{Round: 1<<64 - 1, Shard: 0, Shards: 1, Packets: 1<<64 - 1, Flows: 1<<31 - 1},
	}
	for _, cp := range cases {
		body := appendCheckpointBody(nil, cp)
		got, err := DecodeCheckpoint(body)
		if err != nil {
			t.Fatalf("%+v: %v", cp, err)
		}
		if got != cp {
			t.Fatalf("round trip: got %+v, want %+v", got, cp)
		}
		if again := appendCheckpointBody(nil, got); !bytes.Equal(again, body) {
			t.Fatalf("re-encode of %+v is not canonical", cp)
		}
	}
	if _, err := DecodeCheckpoint(appendCheckpointBody(nil, Checkpoint{Round: 1, Shard: 2, Shards: 2})); err == nil {
		t.Fatal("shard ≥ shards decoded")
	}
	if _, err := DecodeCheckpoint(append(appendCheckpointBody(nil, Checkpoint{Shards: 1}), 0)); err == nil {
		t.Fatal("trailing byte decoded")
	}
}

func TestEvictBodyRoundTrip(t *testing.T) {
	ev := EvictRecord{Flow: 0xDEAD_BEEF, Reason: 2, LastSeen: 777, Answers: []byte(`{"path":[1,2]}`)}
	body := appendEvictBody(nil, ev)
	got, err := DecodeEvict(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Flow != ev.Flow || got.Reason != ev.Reason || got.LastSeen != ev.LastSeen ||
		!bytes.Equal(got.Answers, ev.Answers) {
		t.Fatalf("round trip: got %+v, want %+v", got, ev)
	}
	if again := appendEvictBody(nil, got); !bytes.Equal(again, body) {
		t.Fatal("re-encode is not canonical")
	}
}

func TestRetainBodyRoundTrip(t *testing.T) {
	r := Retain{Segments: 3, Packets: 4096, HorizonTS: 1 << 40}
	body := appendRetainBody(nil, r)
	got, err := DecodeRetain(body)
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("round trip: got %+v, want %+v", got, r)
	}
	if _, err := DecodeRetain(append(body, 1)); err == nil {
		t.Fatal("trailing byte decoded")
	}
}

func TestStrictUvarint(t *testing.T) {
	bad := [][]byte{
		{},                             // empty
		{0x80},                         // truncated continuation
		{0x80, 0x00},                   // non-minimal zero
		{0xFF, 0x80, 0x00},             // non-minimal
		bytes.Repeat([]byte{0xFF}, 10), // overflow
	}
	for _, b := range bad {
		if _, _, err := uvarint(b); err == nil {
			t.Fatalf("uvarint(% x) decoded", b)
		}
	}
}

func TestIndexRoundTrip(t *testing.T) {
	idx := Index{
		MinTS: 100, MaxTS: 400, Packets: 42,
		Entries: []IndexEntry{
			{Offset: 4, Kind: KindDigests, TS: 100, Packets: 30},
			{Offset: 90, Kind: KindCheckpoint, TS: 250, Packets: 0},
			{Offset: 130, Kind: KindDigests, TS: 400, Packets: 12},
		},
	}
	body := appendIndexBody(nil, idx)
	got, err := DecodeIndex(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.MinTS != idx.MinTS || got.MaxTS != idx.MaxTS || got.Packets != idx.Packets ||
		len(got.Entries) != len(idx.Entries) {
		t.Fatalf("round trip: got %+v", got)
	}
	for i := range got.Entries {
		if got.Entries[i] != idx.Entries[i] {
			t.Fatalf("entry %d: got %+v, want %+v", i, got.Entries[i], idx.Entries[i])
		}
	}
	if again := appendIndexBody(nil, got); !bytes.Equal(again, body) {
		t.Fatal("re-encode is not canonical")
	}

	// Inconsistent directories must refuse to decode.
	broken := idx
	broken.Packets = 41
	if _, err := DecodeIndex(appendIndexBody(nil, broken)); err == nil {
		t.Fatal("wrong packet total decoded")
	}
	broken = idx
	broken.MinTS = 101
	if _, err := DecodeIndex(appendIndexBody(nil, broken)); err == nil {
		t.Fatal("first entry before MinTS decoded")
	}
}

func TestDigestBodyRoundTrip(t *testing.T) {
	batch := testDigests(9, 5)
	body, err := wire.AppendMarshal(nil, batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDigests(nil, body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batch) {
		t.Fatalf("decoded %d digests, want %d", len(got), len(batch))
	}
	for i := range got {
		if got[i].Flow != batch[i].Flow || got[i].PktID != batch[i].PktID ||
			got[i].PathLen != batch[i].PathLen || got[i].Digest != batch[i].Digest {
			t.Fatalf("digest %d: got %+v, want %+v", i, got[i], batch[i])
		}
	}
}
