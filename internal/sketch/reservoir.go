package sketch

import (
	"fmt"

	"repro/internal/hash"
)

// Reservoir is Vitter's algorithm R [82]: a uniform without-replacement
// sample of fixed size over a stream of unknown length. The Recording
// Module can keep such a reservoir per (flow, hop) instead of every digest
// when no sketch is configured.
type Reservoir struct {
	k     int
	items []float64
	n     uint64
	rng   *hash.RNG
}

// NewReservoir creates a reservoir holding at most k items.
func NewReservoir(k int, rng *hash.RNG) (*Reservoir, error) {
	if k < 1 {
		return nil, fmt.Errorf("sketch: reservoir k must be >= 1, got %d", k)
	}
	if rng == nil {
		return nil, fmt.Errorf("sketch: reservoir requires an RNG")
	}
	return &Reservoir{k: k, items: make([]float64, 0, k), rng: rng}, nil
}

// Add offers one stream item to the reservoir.
func (r *Reservoir) Add(v float64) {
	r.n++
	if len(r.items) < r.k {
		r.items = append(r.items, v)
		return
	}
	// Keep the newcomer with probability k/n, evicting a uniform victim.
	j := r.rng.Intn(int(r.n))
	if j < r.k {
		r.items[j] = v
	}
}

// Items returns the current sample (aliased; callers must not mutate).
func (r *Reservoir) Items() []float64 { return r.items }

// Count returns the stream length seen so far.
func (r *Reservoir) Count() uint64 { return r.n }

// Quantile estimates the phi-quantile from the sample.
func (r *Reservoir) Quantile(phi float64) float64 {
	return ExactQuantile(r.items, phi)
}

// SlidingKLL keeps latency quantiles over the most recent window of the
// stream using a ring of sub-sketches — the sliding-window option §4.1
// mentions so operators see recent behaviour, not all-time history.
//
// The window is divided into `buckets` equal spans of `span` insertions
// each. Queries merge the live buckets; retired buckets are dropped whole,
// so the effective window is between (buckets-1)·span and buckets·span
// items.
type SlidingKLL struct {
	buckets int
	span    uint64
	k       int
	ring    []*KLL
	cur     int
	inCur   uint64
	rng     *hash.RNG
}

// NewSlidingKLL creates a sliding-window quantile sketch.
func NewSlidingKLL(buckets int, span uint64, k int, rng *hash.RNG) (*SlidingKLL, error) {
	if buckets < 2 {
		return nil, fmt.Errorf("sketch: sliding window needs >= 2 buckets")
	}
	if span < 1 {
		return nil, fmt.Errorf("sketch: bucket span must be >= 1")
	}
	s := &SlidingKLL{buckets: buckets, span: span, k: k, rng: rng}
	s.ring = make([]*KLL, buckets)
	first, err := NewKLL(k, rng.Split())
	if err != nil {
		return nil, err
	}
	s.ring[0] = first
	return s, nil
}

// Add inserts a value, rotating the ring when the current bucket fills.
func (s *SlidingKLL) Add(v float64) error {
	if s.inCur >= s.span {
		s.cur = (s.cur + 1) % s.buckets
		fresh, err := NewKLL(s.k, s.rng.Split())
		if err != nil {
			return err
		}
		s.ring[s.cur] = fresh
		s.inCur = 0
	}
	s.ring[s.cur].Add(v)
	s.inCur++
	return nil
}

// Quantile estimates the phi-quantile over the live window.
func (s *SlidingKLL) Quantile(phi float64) (float64, error) {
	merged, err := NewKLL(s.k, s.rng.Split())
	if err != nil {
		return 0, err
	}
	for _, b := range s.ring {
		if b != nil {
			merged.Merge(b)
		}
	}
	return merged.Quantile(phi), nil
}

// Clone deep-copies the window, its sub-sketches, and its RNG state, so
// the copy rotates, answers, and evolves exactly as the original would.
func (s *SlidingKLL) Clone() *SlidingKLL {
	c := &SlidingKLL{buckets: s.buckets, span: s.span, k: s.k,
		cur: s.cur, inCur: s.inCur, rng: s.rng.Clone()}
	c.ring = make([]*KLL, len(s.ring))
	for i, b := range s.ring {
		if b != nil {
			c.ring[i] = b.Clone()
		}
	}
	return c
}

// WindowCount returns the number of items currently inside the window.
func (s *SlidingKLL) WindowCount() uint64 {
	var n uint64
	for _, b := range s.ring {
		if b != nil {
			n += b.Count()
		}
	}
	return n
}
