package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/hash"
)

// Exact state serialization for the fleet-resize hand-off path. Each
// sketch can append its complete internal state — including its RNG
// position — to a byte slice and be rebuilt from those bytes such that
// every future operation produces output identical to the original. The
// encodings are uvarint-based and length-checked: a decoder consumes the
// entire input or fails, so a truncated or padded blob is an error, never
// a silently different sketch.

const sketchCodecVersion = 1

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// stateReader walks an encoded state blob, latching the first error.
type stateReader struct {
	data []byte
	err  error
}

func (r *stateReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.err = fmt.Errorf("sketch: truncated state varint")
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *stateReader) bytes(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)) {
		r.err = fmt.Errorf("sketch: state wants %d bytes, %d left", n, len(r.data))
		return nil
	}
	b := r.data[:n]
	r.data = r.data[n:]
	return b
}

func (r *stateReader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.data) != 0 {
		return fmt.Errorf("sketch: %d trailing state bytes", len(r.data))
	}
	return nil
}

func appendRNG(dst []byte, rng *hash.RNG) []byte {
	s := rng.State()
	for _, w := range s {
		dst = appendUvarint(dst, w)
	}
	return dst
}

func (r *stateReader) rng() *hash.RNG {
	var s [4]uint64
	for i := range s {
		s[i] = r.uvarint()
	}
	if r.err != nil {
		return nil
	}
	return hash.RestoreRNG(s)
}

// AppendState appends the sketch's complete state (accuracy parameter,
// stream length, RNG position, every compactor level) to dst.
func (s *KLL) AppendState(dst []byte) []byte {
	dst = append(dst, sketchCodecVersion)
	dst = appendUvarint(dst, uint64(s.k))
	dst = appendUvarint(dst, s.n)
	dst = appendRNG(dst, s.rng)
	dst = appendUvarint(dst, uint64(len(s.compactors)))
	for _, level := range s.compactors {
		dst = appendUvarint(dst, uint64(len(level)))
		for _, v := range level {
			dst = appendUvarint(dst, math.Float64bits(v))
		}
	}
	return dst
}

// RestoreKLL rebuilds a sketch from AppendState bytes. The restored
// sketch's future Adds, compactions, and quantile answers are identical
// to the original's.
func RestoreKLL(data []byte) (*KLL, error) {
	r := &stateReader{data: data}
	s, err := restoreKLLFrom(r)
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return s, nil
}

func restoreKLLFrom(r *stateReader) (*KLL, error) {
	if v := r.uvarint(); r.err == nil && v != sketchCodecVersion {
		return nil, fmt.Errorf("sketch: KLL state version %d (have %d)", v, sketchCodecVersion)
	}
	k := int(r.uvarint())
	n := r.uvarint()
	rng := r.rng()
	levels := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if k < 8 {
		return nil, fmt.Errorf("sketch: KLL state k=%d too small", k)
	}
	if levels < 1 || levels > 64 {
		return nil, fmt.Errorf("sketch: KLL state has %d levels", levels)
	}
	s := &KLL{k: k, c: 2.0 / 3.0, n: n, rng: rng}
	s.compactors = make([][]float64, levels)
	for h := range s.compactors {
		cnt := r.uvarint()
		if r.err != nil {
			return nil, r.err
		}
		if cnt > uint64(len(r.data)) { // each item is >= 1 byte
			return nil, fmt.Errorf("sketch: KLL level %d claims %d items", h, cnt)
		}
		level := make([]float64, cnt)
		for i := range level {
			level[i] = math.Float64frombits(r.uvarint())
		}
		s.compactors[h] = level
	}
	if r.err != nil {
		return nil, r.err
	}
	return s, nil
}

// AppendState appends the summary's complete state. Counters are emitted
// in ascending value order so the encoding is deterministic.
func (s *SpaceSaving) AppendState(dst []byte) []byte {
	dst = append(dst, sketchCodecVersion)
	dst = appendUvarint(dst, uint64(s.m))
	dst = appendUvarint(dst, s.n)
	vals := make([]uint64, 0, len(s.cnt))
	for v := range s.cnt {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	dst = appendUvarint(dst, uint64(len(vals)))
	for _, v := range vals {
		dst = appendUvarint(dst, v)
		dst = appendUvarint(dst, s.cnt[v])
		dst = appendUvarint(dst, s.err[v])
	}
	return dst
}

// RestoreSpaceSaving rebuilds a summary from AppendState bytes.
func RestoreSpaceSaving(data []byte) (*SpaceSaving, error) {
	r := &stateReader{data: data}
	if v := r.uvarint(); r.err == nil && v != sketchCodecVersion {
		return nil, fmt.Errorf("sketch: SpaceSaving state version %d (have %d)", v, sketchCodecVersion)
	}
	m := int(r.uvarint())
	n := r.uvarint()
	entries := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if m < 1 {
		return nil, fmt.Errorf("sketch: SpaceSaving state m=%d", m)
	}
	if entries > uint64(m) {
		return nil, fmt.Errorf("sketch: SpaceSaving state has %d entries for m=%d", entries, m)
	}
	s := &SpaceSaving{
		m:   m,
		n:   n,
		cnt: make(map[uint64]uint64, m),
		err: make(map[uint64]uint64, m),
	}
	for i := uint64(0); i < entries; i++ {
		v := r.uvarint()
		c := r.uvarint()
		e := r.uvarint()
		if r.err != nil {
			return nil, r.err
		}
		if _, dup := s.cnt[v]; dup {
			return nil, fmt.Errorf("sketch: SpaceSaving state duplicates value %d", v)
		}
		s.cnt[v] = c
		s.err[v] = e
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return s, nil
}

// AppendState appends the window's complete state: geometry, rotation
// position, the window RNG, and every live ring bucket.
func (s *SlidingKLL) AppendState(dst []byte) []byte {
	dst = append(dst, sketchCodecVersion)
	dst = appendUvarint(dst, uint64(s.buckets))
	dst = appendUvarint(dst, s.span)
	dst = appendUvarint(dst, uint64(s.k))
	dst = appendUvarint(dst, uint64(s.cur))
	dst = appendUvarint(dst, s.inCur)
	dst = appendRNG(dst, s.rng)
	for _, b := range s.ring {
		if b == nil {
			dst = append(dst, 0)
			continue
		}
		dst = append(dst, 1)
		sub := b.AppendState(nil)
		dst = appendUvarint(dst, uint64(len(sub)))
		dst = append(dst, sub...)
	}
	return dst
}

// RestoreSlidingKLL rebuilds a window sketch from AppendState bytes.
func RestoreSlidingKLL(data []byte) (*SlidingKLL, error) {
	r := &stateReader{data: data}
	if v := r.uvarint(); r.err == nil && v != sketchCodecVersion {
		return nil, fmt.Errorf("sketch: SlidingKLL state version %d (have %d)", v, sketchCodecVersion)
	}
	buckets := int(r.uvarint())
	span := r.uvarint()
	k := int(r.uvarint())
	cur := int(r.uvarint())
	inCur := r.uvarint()
	rng := r.rng()
	if r.err != nil {
		return nil, r.err
	}
	if buckets < 2 || span < 1 || cur < 0 || cur >= buckets {
		return nil, fmt.Errorf("sketch: SlidingKLL state geometry buckets=%d span=%d cur=%d", buckets, span, cur)
	}
	s := &SlidingKLL{buckets: buckets, span: span, k: k, cur: cur, inCur: inCur, rng: rng}
	s.ring = make([]*KLL, buckets)
	for i := range s.ring {
		present := r.uvarint()
		if r.err != nil {
			return nil, r.err
		}
		if present == 0 {
			continue
		}
		sub := r.bytes(r.uvarint())
		if r.err != nil {
			return nil, r.err
		}
		b, err := RestoreKLL(sub)
		if err != nil {
			return nil, fmt.Errorf("sketch: SlidingKLL ring[%d]: %w", i, err)
		}
		s.ring[i] = b
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return s, nil
}
