package sketch

import (
	"bytes"
	"testing"

	"repro/internal/hash"
)

// codecEquivalent drives two sketches identically after a state
// hand-off and demands identical answers — the restored sketch must
// carry the original's exact RNG position, not just its data.
func TestKLLCodecRoundTrip(t *testing.T) {
	orig, err := NewKLL(64, hash.NewRNG(0xAB))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		orig.Add(float64(i%97) + 0.5)
	}
	state := orig.AppendState(nil)
	restored, err := RestoreKLL(state)
	if err != nil {
		t.Fatal(err)
	}
	// Same quantiles now...
	for _, phi := range []float64{0.1, 0.5, 0.9, 0.99} {
		if a, b := orig.Quantile(phi), restored.Quantile(phi); a != b {
			t.Fatalf("phi=%v: %v vs %v after restore", phi, a, b)
		}
	}
	// ...and same quantiles after both take the same future (the RNG
	// position shipped, so compaction coin flips stay aligned).
	for i := 0; i < 2000; i++ {
		v := float64((i * 31) % 113)
		orig.Add(v)
		restored.Add(v)
	}
	for _, phi := range []float64{0.25, 0.5, 0.75} {
		if a, b := orig.Quantile(phi), restored.Quantile(phi); a != b {
			t.Fatalf("post-restore divergence at phi=%v: %v vs %v", phi, a, b)
		}
	}
	// And the re-serialized state is byte-identical.
	if !bytes.Equal(orig.AppendState(nil), restored.AppendState(nil)) {
		t.Fatal("restored KLL re-serializes differently")
	}
}

func TestSpaceSavingCodecRoundTrip(t *testing.T) {
	orig, err := NewSpaceSaving(16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		orig.Add(uint64(i % 23))
	}
	restored, err := RestoreSpaceSaving(orig.AppendState(nil))
	if err != nil {
		t.Fatal(err)
	}
	if orig.Count() != restored.Count() {
		t.Fatalf("count %d vs %d", orig.Count(), restored.Count())
	}
	for v := uint64(0); v < 23; v++ {
		a, aok := orig.Estimate(v)
		b, bok := restored.Estimate(v)
		if a != b || aok != bok {
			t.Fatalf("estimate(%d): (%d,%v) vs (%d,%v)", v, a, aok, b, bok)
		}
	}
	if !bytes.Equal(orig.AppendState(nil), restored.AppendState(nil)) {
		t.Fatal("restored SpaceSaving re-serializes differently")
	}
}

func TestSlidingKLLCodecRoundTrip(t *testing.T) {
	orig, err := NewSlidingKLL(4, 100, 32, hash.NewRNG(0xCD))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 350; i++ {
		if err := orig.Add(float64(i % 41)); err != nil {
			t.Fatal(err)
		}
	}
	restored, err := RestoreSlidingKLL(orig.AppendState(nil))
	if err != nil {
		t.Fatal(err)
	}
	if orig.WindowCount() != restored.WindowCount() {
		t.Fatalf("window count %d vs %d", orig.WindowCount(), restored.WindowCount())
	}
	for i := 0; i < 500; i++ {
		v := float64((i * 7) % 59)
		if err := orig.Add(v); err != nil {
			t.Fatal(err)
		}
		if err := restored.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		a, aerr := orig.Quantile(phi)
		b, berr := restored.Quantile(phi)
		if (aerr == nil) != (berr == nil) || (aerr == nil && a != b) {
			t.Fatalf("post-restore divergence at phi=%v: %v/%v vs %v/%v", phi, a, aerr, b, berr)
		}
	}
	if !bytes.Equal(orig.AppendState(nil), restored.AppendState(nil)) {
		t.Fatal("restored SlidingKLL re-serializes differently")
	}
}

func TestCodecRejectsCorrupt(t *testing.T) {
	kll, _ := NewKLL(32, hash.NewRNG(1))
	kll.Add(3)
	ss, _ := NewSpaceSaving(4)
	ss.Add(9)
	sl, _ := NewSlidingKLL(2, 10, 16, hash.NewRNG(2))
	sl.Add(1)
	for name, state := range map[string][]byte{
		"kll":     kll.AppendState(nil),
		"ss":      ss.AppendState(nil),
		"sliding": sl.AppendState(nil),
	} {
		// Truncations at every prefix must error, never panic.
		for cut := 0; cut < len(state); cut++ {
			var err error
			switch name {
			case "kll":
				_, err = RestoreKLL(state[:cut])
			case "ss":
				_, err = RestoreSpaceSaving(state[:cut])
			case "sliding":
				_, err = RestoreSlidingKLL(state[:cut])
			}
			if err == nil {
				t.Fatalf("%s: truncation at %d/%d accepted", name, cut, len(state))
			}
		}
		// Trailing garbage is an error too.
		grown := append(append([]byte(nil), state...), 0xEE)
		var err error
		switch name {
		case "kll":
			_, err = RestoreKLL(grown)
		case "ss":
			_, err = RestoreSpaceSaving(grown)
		case "sliding":
			_, err = RestoreSlidingKLL(grown)
		}
		if err == nil {
			t.Fatalf("%s: trailing byte accepted", name)
		}
	}
}
