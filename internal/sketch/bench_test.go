package sketch

import (
	"testing"

	"repro/internal/hash"
)

func BenchmarkKLLAdd(b *testing.B) {
	s, _ := NewKLL(256, hash.NewRNG(1))
	rng := hash.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(rng.Float64())
	}
}

func BenchmarkKLLQuantile(b *testing.B) {
	s, _ := NewKLL(256, hash.NewRNG(1))
	rng := hash.NewRNG(2)
	for i := 0; i < 100000; i++ {
		s.Add(rng.Float64())
	}
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += s.Quantile(0.99)
	}
	benchSink = acc
}

func BenchmarkKLLMerge(b *testing.B) {
	// Pre-build a pool of sketches outside the timer; merging mutates the
	// receiver, so each iteration merges a fresh copy-by-reconstruction
	// pair drawn from the pool.
	mk := func(seed uint64) *KLL {
		s, _ := NewKLL(128, hash.NewRNG(seed))
		rng := hash.NewRNG(seed + 1)
		for i := 0; i < 2000; i++ {
			s.Add(rng.Float64())
		}
		return s
	}
	const pool = 64
	pairs := make([][2]*KLL, pool)
	for i := range pairs {
		pairs[i] = [2]*KLL{mk(uint64(i)), mk(uint64(i) + 1000)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%pool]
		p[0].Merge(p[1])
	}
}

func BenchmarkSpaceSavingAdd(b *testing.B) {
	s, _ := NewSpaceSaving(64)
	rng := hash.NewRNG(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(uint64(rng.Intn(10000)))
	}
}

func BenchmarkReservoirAdd(b *testing.B) {
	r, _ := NewReservoir(100, hash.NewRNG(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Add(float64(i))
	}
}

var benchSink float64
