package sketch

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hash"
)

func mustKLL(t *testing.T, k int, seed uint64) *KLL {
	t.Helper()
	s, err := NewKLL(k, hash.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestKLLConstruct(t *testing.T) {
	if _, err := NewKLL(4, hash.NewRNG(1)); err == nil {
		t.Fatal("k<8 must be rejected")
	}
	if _, err := NewKLL(64, nil); err == nil {
		t.Fatal("nil RNG must be rejected")
	}
}

func TestKLLEmpty(t *testing.T) {
	s := mustKLL(t, 64, 1)
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("empty sketch quantile must be NaN")
	}
	if s.CDF(10) != 0 {
		t.Fatal("empty sketch CDF must be 0")
	}
	if s.Count() != 0 {
		t.Fatal("empty sketch count must be 0")
	}
}

func TestKLLSingle(t *testing.T) {
	s := mustKLL(t, 64, 2)
	s.Add(42)
	for _, phi := range []float64{0, 0.5, 1} {
		if s.Quantile(phi) != 42 {
			t.Fatalf("phi=%v: got %v", phi, s.Quantile(phi))
		}
	}
}

func TestKLLQuantileErrorUniform(t *testing.T) {
	s := mustKLL(t, 256, 3)
	rng := hash.NewRNG(99)
	const n = 50000
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.Float64() * 1000
		s.Add(data[i])
	}
	for _, phi := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
		est := s.Quantile(phi)
		// Convert value error to rank error: exact rank of the estimate.
		rank := float64(ExactRank(data, est)) / n
		if math.Abs(rank-phi) > 0.02 {
			t.Fatalf("phi=%v: estimate has rank %v (rank error %v)",
				phi, rank, math.Abs(rank-phi))
		}
	}
}

func TestKLLQuantileErrorSkewed(t *testing.T) {
	// Heavy-tailed input (like hop latencies with rare spikes).
	s := mustKLL(t, 256, 4)
	rng := hash.NewRNG(100)
	const n = 50000
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Exp(rng.NormFloat64() * 2)
		s.Add(data[i])
	}
	for _, phi := range []float64{0.5, 0.9, 0.99} {
		est := s.Quantile(phi)
		rank := float64(ExactRank(data, est)) / n
		if math.Abs(rank-phi) > 0.025 {
			t.Fatalf("phi=%v: rank error %v", phi, math.Abs(rank-phi))
		}
	}
}

func TestKLLSpaceSublinear(t *testing.T) {
	s := mustKLL(t, 64, 5)
	for i := 0; i < 200000; i++ {
		s.Add(float64(i))
	}
	if s.StoredItems() > 64*8 {
		t.Fatalf("sketch stores %d items for k=64; not sublinear", s.StoredItems())
	}
	if s.Count() != 200000 {
		t.Fatalf("Count = %d", s.Count())
	}
}

func TestKLLSizeBytes(t *testing.T) {
	s := mustKLL(t, 64, 6)
	for i := 0; i < 1000; i++ {
		s.Add(float64(i))
	}
	if got, want := s.SizeBytes(8), s.StoredItems(); got != want {
		t.Fatalf("8-bit items: %d bytes, want %d", got, want)
	}
	if got, want := s.SizeBytes(4), (s.StoredItems()+1)/2; got != want {
		t.Fatalf("4-bit items: %d bytes, want %d", got, want)
	}
}

func TestKLLRankMonotone(t *testing.T) {
	s := mustKLL(t, 128, 7)
	rng := hash.NewRNG(8)
	for i := 0; i < 10000; i++ {
		s.Add(rng.Float64())
	}
	prev := uint64(0)
	for v := 0.0; v <= 1.0; v += 0.05 {
		r := s.Rank(v)
		if r < prev {
			t.Fatalf("rank not monotone at v=%v", v)
		}
		prev = r
	}
	if s.Rank(2) != s.Count() {
		t.Fatal("rank beyond max must equal count")
	}
}

func TestKLLQuantileWithinRange(t *testing.T) {
	f := func(seed uint64, raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		s, _ := NewKLL(16, hash.NewRNG(seed))
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			v := float64(r)
			lo, hi = math.Min(lo, v), math.Max(hi, v)
			s.Add(v)
		}
		for _, phi := range []float64{-0.5, 0, 0.3, 0.99, 1, 2} {
			q := s.Quantile(phi)
			if q < lo || q > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKLLMerge(t *testing.T) {
	a := mustKLL(t, 128, 9)
	b := mustKLL(t, 128, 10)
	rng := hash.NewRNG(11)
	var data []float64
	for i := 0; i < 20000; i++ {
		v := rng.Float64() * 100
		data = append(data, v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	if a.Count() != 20000 {
		t.Fatalf("merged count %d", a.Count())
	}
	est := a.Quantile(0.5)
	rank := float64(ExactRank(data, est)) / float64(len(data))
	if math.Abs(rank-0.5) > 0.03 {
		t.Fatalf("post-merge median rank error %v", math.Abs(rank-0.5))
	}
}

func TestExactQuantile(t *testing.T) {
	vs := []float64{5, 1, 3, 2, 4}
	if ExactQuantile(vs, 0.5) != 3 {
		t.Fatalf("median of 1..5 = %v", ExactQuantile(vs, 0.5))
	}
	if ExactQuantile(vs, 0) != 1 || ExactQuantile(vs, 1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if !math.IsNaN(ExactQuantile(nil, 0.5)) {
		t.Fatal("empty slice must give NaN")
	}
	// Input must not be mutated.
	if vs[0] != 5 {
		t.Fatal("ExactQuantile mutated its input")
	}
}

func TestExactRank(t *testing.T) {
	vs := []float64{1, 2, 2, 3}
	if ExactRank(vs, 2) != 3 {
		t.Fatalf("rank(2) = %d", ExactRank(vs, 2))
	}
	if ExactRank(vs, 0.5) != 0 || ExactRank(vs, 10) != 4 {
		t.Fatal("extreme ranks wrong")
	}
}
