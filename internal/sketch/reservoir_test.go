package sketch

import (
	"math"
	"testing"

	"repro/internal/hash"
)

func TestReservoirConstruct(t *testing.T) {
	if _, err := NewReservoir(0, hash.NewRNG(1)); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	if _, err := NewReservoir(5, nil); err == nil {
		t.Fatal("nil RNG must be rejected")
	}
}

func TestReservoirFillsThenCaps(t *testing.T) {
	r, _ := NewReservoir(10, hash.NewRNG(2))
	for i := 0; i < 5; i++ {
		r.Add(float64(i))
	}
	if len(r.Items()) != 5 {
		t.Fatalf("short stream: kept %d, want all 5", len(r.Items()))
	}
	for i := 5; i < 1000; i++ {
		r.Add(float64(i))
	}
	if len(r.Items()) != 10 {
		t.Fatalf("reservoir size %d, want 10", len(r.Items()))
	}
	if r.Count() != 1000 {
		t.Fatalf("count %d", r.Count())
	}
}

func TestReservoirUniformInclusion(t *testing.T) {
	// Every stream position must be retained with probability k/n.
	const k, n, trials = 5, 100, 20000
	inc := make([]int, n)
	rng := hash.NewRNG(3)
	for tr := 0; tr < trials; tr++ {
		r, _ := NewReservoir(k, rng.Split())
		for i := 0; i < n; i++ {
			r.Add(float64(i))
		}
		for _, v := range r.Items() {
			inc[int(v)]++
		}
	}
	want := float64(trials) * k / n
	for i, c := range inc {
		if math.Abs(float64(c)-want) > want*0.15 {
			t.Fatalf("position %d retained %d times, want %.0f +/- 15%%", i, c, want)
		}
	}
}

func TestReservoirQuantile(t *testing.T) {
	r, _ := NewReservoir(500, hash.NewRNG(4))
	rng := hash.NewRNG(5)
	for i := 0; i < 50000; i++ {
		r.Add(rng.Float64())
	}
	if med := r.Quantile(0.5); math.Abs(med-0.5) > 0.06 {
		t.Fatalf("sampled median %v, want ~0.5", med)
	}
}

func TestSlidingKLLConstruct(t *testing.T) {
	if _, err := NewSlidingKLL(1, 10, 64, hash.NewRNG(1)); err == nil {
		t.Fatal("buckets<2 must be rejected")
	}
	if _, err := NewSlidingKLL(4, 0, 64, hash.NewRNG(1)); err == nil {
		t.Fatal("span=0 must be rejected")
	}
}

func TestSlidingKLLForgetsOldData(t *testing.T) {
	// Feed 10k small values then 10k large ones with a window of ~4k:
	// the median must reflect only the recent (large) regime.
	s, err := NewSlidingKLL(4, 1000, 64, hash.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if err := s.Add(1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10000; i++ {
		if err := s.Add(1000); err != nil {
			t.Fatal(err)
		}
	}
	med, err := s.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if med != 1000 {
		t.Fatalf("median %v; window failed to expire the old regime", med)
	}
	if s.WindowCount() > 4000 {
		t.Fatalf("window holds %d items, want <= 4000", s.WindowCount())
	}
}

func TestSlidingKLLWindowCount(t *testing.T) {
	s, _ := NewSlidingKLL(3, 100, 64, hash.NewRNG(7))
	for i := 0; i < 50; i++ {
		_ = s.Add(float64(i))
	}
	if s.WindowCount() != 50 {
		t.Fatalf("window count %d, want 50", s.WindowCount())
	}
}
