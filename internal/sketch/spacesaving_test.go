package sketch

import (
	"testing"
	"testing/quick"

	"repro/internal/hash"
)

func TestSpaceSavingConstruct(t *testing.T) {
	if _, err := NewSpaceSaving(0); err == nil {
		t.Fatal("m=0 must be rejected")
	}
}

func TestSpaceSavingExactWhenFits(t *testing.T) {
	s, _ := NewSpaceSaving(10)
	for v := uint64(0); v < 5; v++ {
		for i := uint64(0); i <= v; i++ {
			s.Add(v)
		}
	}
	for v := uint64(0); v < 5; v++ {
		c, ok := s.Estimate(v)
		if !ok || c != v+1 {
			t.Fatalf("value %d: count %d ok=%v, want %d", v, c, ok, v+1)
		}
		if s.GuaranteedCount(v) != v+1 {
			t.Fatal("no error when all values fit")
		}
	}
}

func TestSpaceSavingNoFalseNegatives(t *testing.T) {
	// Any value with frequency > n/m must be tracked.
	s, _ := NewSpaceSaving(20)
	rng := hash.NewRNG(1)
	true_ := map[uint64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		var v uint64
		if rng.Bool(0.5) {
			v = uint64(rng.Intn(4)) // 4 heavy values, ~12.5% each
		} else {
			v = 100 + uint64(rng.Intn(5000)) // long tail
		}
		true_[v]++
		s.Add(v)
	}
	for v, c := range true_ {
		if c > n/20 {
			if _, ok := s.Estimate(v); !ok {
				t.Fatalf("heavy value %d (count %d > n/m) not tracked", v, c)
			}
		}
	}
}

func TestSpaceSavingOverestimateBound(t *testing.T) {
	s, _ := NewSpaceSaving(50)
	rng := hash.NewRNG(2)
	true_ := map[uint64]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		v := uint64(rng.Intn(500))
		true_[v]++
		s.Add(v)
	}
	for v := uint64(0); v < 500; v++ {
		est, ok := s.Estimate(v)
		if !ok {
			continue
		}
		if int(est) < true_[v] {
			t.Fatalf("value %d: estimate %d below true %d", v, est, true_[v])
		}
		if int(est)-true_[v] > n/50 {
			t.Fatalf("value %d: overestimate %d exceeds n/m", v, int(est)-true_[v])
		}
	}
}

func TestSpaceSavingGuaranteedLowerBound(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hash.NewRNG(seed)
		s, _ := NewSpaceSaving(8)
		true_ := map[uint64]int{}
		for i := 0; i < 2000; i++ {
			v := uint64(rng.Intn(40))
			true_[v]++
			s.Add(v)
		}
		for v := uint64(0); v < 40; v++ {
			if int(s.GuaranteedCount(v)) > true_[v] {
				return false // the floor must never exceed the truth
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceSavingHeavyHittersSorted(t *testing.T) {
	s, _ := NewSpaceSaving(10)
	for i := 0; i < 60; i++ {
		s.Add(1)
	}
	for i := 0; i < 30; i++ {
		s.Add(2)
	}
	for i := 0; i < 10; i++ {
		s.Add(3)
	}
	hh := s.HeavyHitters(0.2)
	if len(hh) != 2 {
		t.Fatalf("got %d heavy hitters, want 2 (values 1 and 2)", len(hh))
	}
	if hh[0].Value != 1 || hh[1].Value != 2 {
		t.Fatalf("heavy hitters %v not sorted by frequency", hh)
	}
	if s.HeavyHitters(1.01) != nil && len(s.HeavyHitters(1.01)) != 0 {
		t.Fatal("impossible threshold must return nothing")
	}
}

func TestSpaceSavingEmptyHeavyHitters(t *testing.T) {
	s, _ := NewSpaceSaving(4)
	if s.HeavyHitters(0.1) != nil {
		t.Fatal("empty stream must return nil")
	}
	if s.Count() != 0 || s.Counters() != 0 {
		t.Fatal("fresh summary not empty")
	}
}

func TestSpaceSavingCounterCap(t *testing.T) {
	s, _ := NewSpaceSaving(7)
	rng := hash.NewRNG(3)
	for i := 0; i < 10000; i++ {
		s.Add(uint64(rng.Intn(1000)))
	}
	if s.Counters() > 7 {
		t.Fatalf("counter count %d exceeds m=7", s.Counters())
	}
}
