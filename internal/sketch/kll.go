// Package sketch implements the streaming summaries PINT's Recording and
// Inference modules use to bound per-flow storage (§3.4, §4.1, §6.2):
//
//   - KLL, the optimal quantile sketch of Karnin, Lang and Liberty [39],
//     used to estimate median/tail latencies from the sampled sub-streams,
//   - SpaceSaving, the heavy-hitters summary of Metwally et al. [50], used
//     for the frequent-values aggregation of Theorem 2,
//   - Reservoir, Vitter's uniform sampler [82], the building block of both
//     the dynamic aggregation and the Baseline coding scheme,
//   - a sliding-window wrapper so the Recording Module can reflect only
//     recent measurements (§4.1),
//   - exact-quantile helpers used as ground truth by tests and experiments.
//
// Everything is deterministic given a seeded RNG and uses only the standard
// library.
package sketch

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hash"
)

// KLL is a quantile sketch: feed it a stream of float64 values and ask for
// any quantile with additive rank error O(1/k) using O(k) space.
//
// The structure is a hierarchy of "compactors". Level h stores items with
// weight 2^h. When a level overflows its capacity it sorts itself and
// promotes a random half (even- or odd-indexed items, one coin per
// compaction) to the level above — the survivors' doubled weight preserves
// ranks in expectation.
type KLL struct {
	k          int
	c          float64 // capacity decay between levels (2/3 per the paper)
	compactors [][]float64
	n          uint64 // total stream length
	rng        *hash.RNG
}

// NewKLL creates a sketch with accuracy parameter k (space O(k)); rank
// error is ~O(1/k). k must be at least 8.
func NewKLL(k int, rng *hash.RNG) (*KLL, error) {
	if k < 8 {
		return nil, fmt.Errorf("sketch: KLL k=%d too small (min 8)", k)
	}
	if rng == nil {
		return nil, fmt.Errorf("sketch: KLL requires an RNG")
	}
	s := &KLL{k: k, c: 2.0 / 3.0, rng: rng}
	s.grow()
	return s, nil
}

func (s *KLL) grow() {
	s.compactors = append(s.compactors, make([]float64, 0, s.capacity(len(s.compactors))))
}

// capacity returns the item budget of level h given the current height.
func (s *KLL) capacity(h int) int {
	height := len(s.compactors)
	depth := height - h - 1
	cap := int(math.Ceil(float64(s.k) * math.Pow(s.c, float64(depth))))
	if cap < 2 {
		cap = 2
	}
	return cap
}

// Add inserts one value.
func (s *KLL) Add(v float64) {
	s.compactors[0] = append(s.compactors[0], v)
	s.n++
	s.compress()
}

// compress compacts any overflowing level, cascading upward.
func (s *KLL) compress() {
	for h := 0; h < len(s.compactors); h++ {
		if len(s.compactors[h]) <= s.capacity(h) {
			continue
		}
		if h+1 >= len(s.compactors) {
			s.grow()
		}
		c := s.compactors[h]
		sort.Float64s(c)
		// Compact an even count of items so total weight is conserved
		// exactly (Rank(+inf) == n); an odd straggler stays behind.
		keep := len(c) % 2
		offset := keep
		if s.rng.Bool(0.5) {
			offset++
		}
		for i := offset; i < len(c); i += 2 {
			s.compactors[h+1] = append(s.compactors[h+1], c[i])
		}
		s.compactors[h] = s.compactors[h][:keep]
	}
}

// Count returns the number of values inserted.
func (s *KLL) Count() uint64 { return s.n }

// StoredItems returns the number of items currently retained — the sketch's
// space, used by Fig 9's bytes-vs-error trade-off.
func (s *KLL) StoredItems() int {
	total := 0
	for _, c := range s.compactors {
		total += len(c)
	}
	return total
}

// SizeBytes reports the sketch footprint assuming each stored item occupies
// bitsPerItem bits (PINT stores b-bit compressed codes, not raw float64s).
func (s *KLL) SizeBytes(bitsPerItem int) int {
	return (s.StoredItems()*bitsPerItem + 7) / 8
}

// weighted returns all (value, weight) pairs sorted by value.
func (s *KLL) weighted() ([]float64, []uint64) {
	type pair struct {
		v float64
		w uint64
	}
	var items []pair
	for h, c := range s.compactors {
		w := uint64(1) << uint(h)
		for _, v := range c {
			items = append(items, pair{v, w})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v < items[j].v })
	vs := make([]float64, len(items))
	ws := make([]uint64, len(items))
	for i, it := range items {
		vs[i], ws[i] = it.v, it.w
	}
	return vs, ws
}

// Quantile returns an estimate of the phi-quantile (phi in [0,1]).
// It returns NaN on an empty sketch.
func (s *KLL) Quantile(phi float64) float64 {
	vs, ws := s.weighted()
	if len(vs) == 0 {
		return math.NaN()
	}
	if phi < 0 {
		phi = 0
	}
	if phi > 1 {
		phi = 1
	}
	var totalW uint64
	for _, w := range ws {
		totalW += w
	}
	target := phi * float64(totalW)
	var cum float64
	for i, v := range vs {
		cum += float64(ws[i])
		if cum >= target {
			return v
		}
	}
	return vs[len(vs)-1]
}

// Rank estimates the number of stream items <= v.
func (s *KLL) Rank(v float64) uint64 {
	vs, ws := s.weighted()
	var r uint64
	for i, x := range vs {
		if x > v {
			break
		}
		r += ws[i]
	}
	return r
}

// CDF estimates P[X <= v].
func (s *KLL) CDF(v float64) float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.Rank(v)) / float64(s.n)
}

// Clone deep-copies the sketch, including its RNG state, so the copy
// answers queries and absorbs further insertions independently while
// staying bit-identical to what the original would have produced.
func (s *KLL) Clone() *KLL {
	c := &KLL{k: s.k, c: s.c, n: s.n, rng: s.rng.Clone()}
	c.compactors = make([][]float64, len(s.compactors))
	for h, comp := range s.compactors {
		c.compactors[h] = append(make([]float64, 0, cap(comp)), comp...)
	}
	return c
}

// Merge folds another sketch into this one. Both sketches remain valid
// rank-error-wise because compaction is oblivious to insertion order.
func (s *KLL) Merge(o *KLL) {
	for h, c := range o.compactors {
		for h >= len(s.compactors) {
			s.grow()
		}
		s.compactors[h] = append(s.compactors[h], c...)
	}
	s.n += o.n
	// Repeated compression until all levels fit.
	for {
		over := false
		for h := range s.compactors {
			if len(s.compactors[h]) > s.capacity(h) {
				over = true
			}
		}
		if !over {
			break
		}
		s.compress()
	}
}

// ExactQuantile computes the phi-quantile of a slice exactly (for ground
// truth in tests and experiment error reporting). It does not modify vs.
func ExactQuantile(vs []float64, phi float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), vs...)
	sort.Float64s(cp)
	if phi <= 0 {
		return cp[0]
	}
	if phi >= 1 {
		return cp[len(cp)-1]
	}
	idx := int(math.Ceil(phi*float64(len(cp)))) - 1
	if idx < 0 {
		idx = 0
	}
	return cp[idx]
}

// ExactRank returns the number of elements <= v.
func ExactRank(vs []float64, v float64) uint64 {
	var r uint64
	for _, x := range vs {
		if x <= v {
			r++
		}
	}
	return r
}
