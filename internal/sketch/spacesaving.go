package sketch

import (
	"fmt"
	"sort"
)

// SpaceSaving is the deterministic heavy-hitters summary of Metwally,
// Agrawal and El Abbadi [50]. With m counters it guarantees, for a stream
// of length n:
//
//   - every value occurring more than n/m times is tracked (no false
//     negatives above that threshold), and
//   - each reported count overestimates the true count by at most n/m.
//
// PINT applies it to the uniformly sub-sampled per-hop value stream to
// answer the frequent-values aggregation of Theorem 2.
type SpaceSaving struct {
	m   int
	cnt map[uint64]uint64 // value -> count
	err map[uint64]uint64 // value -> overestimation bound
	n   uint64
}

// NewSpaceSaving creates a summary with m counters.
func NewSpaceSaving(m int) (*SpaceSaving, error) {
	if m < 1 {
		return nil, fmt.Errorf("sketch: SpaceSaving needs m >= 1, got %d", m)
	}
	return &SpaceSaving{
		m:   m,
		cnt: make(map[uint64]uint64, m),
		err: make(map[uint64]uint64, m),
	}, nil
}

// Add records one occurrence of value v.
func (s *SpaceSaving) Add(v uint64) {
	s.n++
	if _, ok := s.cnt[v]; ok {
		s.cnt[v]++
		return
	}
	if len(s.cnt) < s.m {
		s.cnt[v] = 1
		s.err[v] = 0
		return
	}
	// Evict the minimum counter; the newcomer inherits its count (+1) and
	// carries that inherited amount as its error bound.
	var minV uint64
	minC := ^uint64(0)
	for val, c := range s.cnt {
		if c < minC || (c == minC && val < minV) {
			minC, minV = c, val
		}
	}
	delete(s.cnt, minV)
	delete(s.err, minV)
	s.cnt[v] = minC + 1
	s.err[v] = minC
}

// Count returns the stream length observed so far.
func (s *SpaceSaving) Count() uint64 { return s.n }

// Estimate returns the (over-)estimated count for v and whether v is
// currently tracked. For untracked values the estimate is 0 and the true
// count is at most n/m.
func (s *SpaceSaving) Estimate(v uint64) (uint64, bool) {
	c, ok := s.cnt[v]
	return c, ok
}

// GuaranteedCount returns a lower bound on v's true count (estimate minus
// the overestimation the counter may carry).
func (s *SpaceSaving) GuaranteedCount(v uint64) uint64 {
	c, ok := s.cnt[v]
	if !ok {
		return 0
	}
	return c - s.err[v]
}

// HeavyHitter is one reported frequent value.
type HeavyHitter struct {
	Value    uint64
	Estimate uint64 // upper bound on the count
	Floor    uint64 // guaranteed lower bound
}

// HeavyHitters returns every tracked value whose estimated frequency is at
// least theta (a fraction of the stream), most frequent first. With
// m >= 1/eps counters this realizes Theorem 2's (theta, theta−eps)
// separation on the sampled stream.
func (s *SpaceSaving) HeavyHitters(theta float64) []HeavyHitter {
	if s.n == 0 {
		return nil
	}
	thr := theta * float64(s.n)
	var out []HeavyHitter
	for v, c := range s.cnt {
		if float64(c) >= thr {
			out = append(out, HeavyHitter{Value: v, Estimate: c, Floor: c - s.err[v]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Estimate != out[j].Estimate {
			return out[i].Estimate > out[j].Estimate
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// Counters returns the number of counters in use.
func (s *SpaceSaving) Counters() int { return len(s.cnt) }

// Clone deep-copies the summary; the copy evolves independently.
func (s *SpaceSaving) Clone() *SpaceSaving {
	c := &SpaceSaving{m: s.m, n: s.n,
		cnt: make(map[uint64]uint64, len(s.cnt)),
		err: make(map[uint64]uint64, len(s.err))}
	for v, n := range s.cnt {
		c.cnt[v] = n
	}
	for v, e := range s.err {
		c.err[v] = e
	}
	return c
}
