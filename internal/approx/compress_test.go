package approx

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hash"
)

func TestMultCompressorConstruct(t *testing.T) {
	if _, err := NewMultCompressor(0, 8); err == nil {
		t.Fatal("eps=0 must be rejected")
	}
	if _, err := NewMultCompressor(1.5, 8); err == nil {
		t.Fatal("eps>=1 must be rejected")
	}
	if _, err := NewMultCompressor(0.1, 0); err == nil {
		t.Fatal("bits=0 must be rejected")
	}
	if _, err := NewMultCompressor(0.1, 33); err == nil {
		t.Fatal("bits>32 must be rejected")
	}
	c, err := NewMultCompressor(0.025, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Eps() != 0.025 || c.Bits() != 8 {
		t.Fatal("accessors broken")
	}
}

func TestMultRoundTripError(t *testing.T) {
	// Paper claim (§4.3): 16 bits with ε=0.0025 covers 32-bit values with
	// multiplicative error (1+ε)² of the half-step, i.e. decode/true within
	// (1+ε)^±1 after nearest-rounding of the exponent.
	c, _ := NewMultCompressor(0.0025, 16)
	for _, v := range []float64{1, 2, 10, 1e3, 1e6, 4e9} {
		dec := c.Decode(c.Encode(v))
		ratio := dec / v
		if ratio < 1/(1+0.0026) || ratio > 1+0.0026 {
			t.Fatalf("v=%v decoded %v, ratio %v outside (1±ε)", v, dec, ratio)
		}
	}
}

func TestMultRoundTripErrorProperty(t *testing.T) {
	c, _ := NewMultCompressor(0.025, 8)
	maxV := c.MaxValue()
	f := func(raw uint32) bool {
		v := 1 + math.Mod(float64(raw), maxV) // keep in representable range
		dec := c.Decode(c.Encode(v))
		ratio := dec / v
		return ratio >= 1/(1+0.026) && ratio <= 1.026
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMultSmallValuesClampToOne(t *testing.T) {
	c, _ := NewMultCompressor(0.025, 8)
	for _, v := range []float64{0, 0.3, 1} {
		if c.Encode(v) != 0 {
			t.Fatalf("v=%v must encode to 0", v)
		}
	}
	if c.Decode(0) != 1 {
		t.Fatal("code 0 must decode to 1")
	}
}

func TestMultSaturation(t *testing.T) {
	c, _ := NewMultCompressor(0.025, 4) // tiny code space
	huge := c.MaxValue() * 100
	code := c.Encode(huge)
	if code != 15 {
		t.Fatalf("huge value must saturate to max code, got %d", code)
	}
	if c.Decode(code) != c.MaxValue() {
		t.Fatal("decode of max code must equal MaxValue")
	}
	if c.Decode(999) != c.MaxValue() {
		t.Fatal("out-of-range code must clamp")
	}
}

func TestMultMonotone(t *testing.T) {
	c, _ := NewMultCompressor(0.025, 8)
	prev := uint64(0)
	for v := 1.0; v < c.MaxValue(); v *= 1.37 {
		code := c.Encode(v)
		if code < prev {
			t.Fatalf("encoding not monotone at v=%v", v)
		}
		prev = code
	}
}

func TestRandomizedRoundingUnbiasedInLog(t *testing.T) {
	// [·]_R must make E[a] equal the exact log — the debiasing HPCC-PINT
	// relies on so rate control sees the right utilization *on average*.
	c, _ := NewMultCompressor(0.025, 8)
	g := hash.NewGlobal(77)
	v := 1234.5
	exact := math.Log(v) / math.Log((1.025)*(1.025))
	var sum float64
	const n = 200000
	for pkt := uint64(0); pkt < n; pkt++ {
		sum += float64(c.EncodeRandomized(v, g, pkt))
	}
	mean := sum / n
	if math.Abs(mean-exact) > 0.01 {
		t.Fatalf("E[code] = %v, want %v", mean, exact)
	}
}

func TestRandomizedRoundingWithinOneStep(t *testing.T) {
	c, _ := NewMultCompressor(0.025, 8)
	g := hash.NewGlobal(78)
	det := c.Encode(500)
	for pkt := uint64(0); pkt < 1000; pkt++ {
		r := c.EncodeRandomized(500, g, pkt)
		if d := int64(r) - int64(det); d < -1 || d > 1 {
			t.Fatalf("randomized code %d too far from deterministic %d", r, det)
		}
	}
}

func TestAddCompressor(t *testing.T) {
	if _, err := NewAddCompressor(0, 8); err == nil {
		t.Fatal("delta=0 must be rejected")
	}
	if _, err := NewAddCompressor(1, 40); err == nil {
		t.Fatal("bits>32 must be rejected")
	}
	c, err := NewAddCompressor(50, 16) // ±50 unit error budget
	if err != nil {
		t.Fatal(err)
	}
	if c.Delta() != 50 {
		t.Fatal("Delta accessor broken")
	}
	for _, v := range []float64{0, 49, 100, 5000, 99999} {
		dec := c.Decode(c.Encode(v))
		if math.Abs(dec-v) > 50 {
			t.Fatalf("v=%v decoded %v, |err| > delta", v, dec)
		}
	}
}

func TestAddCompressorProperty(t *testing.T) {
	c, _ := NewAddCompressor(10, 16)
	f := func(raw uint16) bool {
		v := float64(raw) * 9 // stays in range: max 589815 < 2*10*65535
		dec := c.Decode(c.Encode(v))
		return math.Abs(dec-v) <= 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestAddCompressorNegativeClamps(t *testing.T) {
	c, _ := NewAddCompressor(5, 8)
	if c.Encode(-3) != 0 {
		t.Fatal("negative values must clamp to 0")
	}
}

func TestAddCompressorSaturates(t *testing.T) {
	c, _ := NewAddCompressor(1, 4)
	if c.Encode(1e9) != 15 {
		t.Fatal("overflow must saturate to max code")
	}
}

func TestMorrisEstimateAccuracy(t *testing.T) {
	g := hash.NewGlobal(5)
	const trials = 300
	const n = 2000
	var sum float64
	for tr := 0; tr < trials; tr++ {
		m := NewMorris(0.25, 16)
		for i := 0; i < n; i++ {
			m.Increment(g, uint64(tr*1_000_000+i), uint64(i))
		}
		sum += m.Estimate()
	}
	mean := sum / trials
	if math.Abs(mean-n)/n > 0.1 {
		t.Fatalf("Morris mean estimate %v for true count %d", mean, n)
	}
}

func TestMorrisCodeRoundTrip(t *testing.T) {
	m := NewMorris(0.2, 8)
	m.SetCode(17)
	if m.Code() != 17 {
		t.Fatal("code round trip failed")
	}
	m2 := NewMorris(0.2, 8)
	m2.SetCode(17)
	if m.Estimate() != m2.Estimate() {
		t.Fatal("same code must give same estimate")
	}
}

func TestMorrisSaturates(t *testing.T) {
	g := hash.NewGlobal(6)
	m := NewMorris(0.5, 2) // 2-bit counter: saturates at 3
	for i := 0; i < 100000; i++ {
		m.Increment(g, uint64(i), 0)
	}
	if m.Code() > 3 {
		t.Fatalf("2-bit counter exceeded max: %d", m.Code())
	}
}

func TestMorrisBitsGrowth(t *testing.T) {
	// O(log log n) growth: doubling n many times should barely move bits.
	b1 := MorrisBits(1e3, 0.1)
	b2 := MorrisBits(1e9, 0.1)
	if b2-b1 > 3 {
		t.Fatalf("bits grew too fast: %d -> %d", b1, b2)
	}
	if MorrisBits(1, 0.1) != 1 {
		t.Fatal("n=1 needs 1 bit")
	}
	if b := MorrisBits(1e6, 0.01); b < MorrisBits(1e6, 0.5) {
		t.Fatal("smaller eps must not need fewer bits")
	}
}
