// Package approx implements PINT's value-approximation toolbox (§4.3) and
// the data-plane arithmetic substitutes of Appendices B and C.
//
// Telemetry values (latencies, utilizations) are too wide for small bit
// budgets, so PINT compresses them:
//
//   - multiplicatively, storing [log_{(1+ε)²} v] so the decoded value is a
//     (1+ε)-approximation of the original,
//   - additively, storing [v / 2Δ] for a fixed absolute error Δ,
//   - with randomized rounding ([·]_R) so the *expected* decoded value is
//     exact — eliminating the systematic bias that plain rounding would
//     feed into a congestion-control loop,
//   - with a Morris counter when even the aggregate (a sum over a path)
//     does not fit the budget.
//
// It also provides fixed-point numbers and lookup-table log₂/exp₂, the
// constructions of Appendix C that let a match-action pipeline approximate
// multiplication and division it cannot execute natively.
package approx

import (
	"fmt"
	"math"

	"repro/internal/hash"
)

// MultCompressor encodes positive values as quantized logarithms:
// a(v) = [log_{(1+ε)²} v]. Decoding returns (1+ε)²^a, a multiplicative
// (1+ε)²-approximation bracketing the true value within (1±ε) after the
// half-step rounding (§4.3).
type MultCompressor struct {
	eps  float64
	base float64 // (1+ε)²
	lnB  float64 // ln base
	bits int     // digest width
}

// NewMultCompressor builds a compressor with relative error parameter eps
// writing digests of the given width. Widths of 8 bits support ε = 0.025
// for the utilization ranges HPCC needs (§4.3); 16 bits support ε = 0.0025
// for 32-bit values.
func NewMultCompressor(eps float64, bits int) (*MultCompressor, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("approx: eps %v out of (0,1)", eps)
	}
	if bits < 1 || bits > 32 {
		return nil, fmt.Errorf("approx: bits %d out of [1,32]", bits)
	}
	b := (1 + eps) * (1 + eps)
	return &MultCompressor{eps: eps, base: b, lnB: math.Log(b), bits: bits}, nil
}

// Eps returns the configured relative error parameter.
func (c *MultCompressor) Eps() float64 { return c.eps }

// Bits returns the digest width.
func (c *MultCompressor) Bits() int { return c.bits }

// maxCode is the largest representable exponent index.
func (c *MultCompressor) maxCode() uint64 { return 1<<uint(c.bits) - 1 }

// Encode quantizes v deterministically (nearest exponent). v must be >= 1;
// values below 1 (including 0) map to code 0, which decodes to 1 — callers
// measuring latencies in clock ticks or utilization in basis points satisfy
// this by construction.
func (c *MultCompressor) Encode(v float64) uint64 {
	if v <= 1 {
		return 0
	}
	a := math.Round(math.Log(v) / c.lnB)
	if a < 0 {
		return 0
	}
	if u := uint64(a); u < c.maxCode() {
		return u
	}
	return c.maxCode()
}

// EncodeRandomized quantizes v with randomized rounding [·]_R: floor or
// ceiling chosen with probabilities that make the expected *logarithm*
// exact, eliminating systematic bias (§4.3, "To further eliminate
// systematic error"). The coin is derived from the packet ID through the
// global hash family so switches need no RNG.
func (c *MultCompressor) EncodeRandomized(v float64, g hash.Global, pktID uint64) uint64 {
	if v <= 1 {
		return 0
	}
	exact := math.Log(v) / c.lnB
	if exact < 0 {
		exact = 0
	}
	lo := math.Floor(exact)
	frac := exact - lo
	a := lo
	if g.Act(pktID, 1<<20, frac) { // dedicated "hop" index namespaces the coin
		a = lo + 1
	}
	if u := uint64(a); u < c.maxCode() {
		return u
	}
	return c.maxCode()
}

// Decode returns the value represented by a code: base^a.
func (c *MultCompressor) Decode(code uint64) float64 {
	if code > c.maxCode() {
		code = c.maxCode()
	}
	return math.Pow(c.base, float64(code))
}

// MaxValue is the largest value representable without saturation.
func (c *MultCompressor) MaxValue() float64 { return c.Decode(c.maxCode()) }

// AddCompressor encodes values with a bounded absolute error Δ:
// a(v) = [v / 2Δ], decode = 2Δ·a (§4.3, additive approximation).
type AddCompressor struct {
	delta float64
	bits  int
}

// NewAddCompressor builds an additive compressor with error target delta
// and the given digest width.
func NewAddCompressor(delta float64, bits int) (*AddCompressor, error) {
	if delta <= 0 {
		return nil, fmt.Errorf("approx: delta %v must be positive", delta)
	}
	if bits < 1 || bits > 32 {
		return nil, fmt.Errorf("approx: bits %d out of [1,32]", bits)
	}
	return &AddCompressor{delta: delta, bits: bits}, nil
}

// Encode quantizes v; negative values clamp to 0.
func (c *AddCompressor) Encode(v float64) uint64 {
	if v <= 0 {
		return 0
	}
	a := math.Round(v / (2 * c.delta))
	max := uint64(1)<<uint(c.bits) - 1
	if u := uint64(a); u < max {
		return u
	}
	return max
}

// Decode returns 2Δ·a.
func (c *AddCompressor) Decode(code uint64) float64 {
	return 2 * c.delta * float64(code)
}

// Delta returns the configured absolute error bound.
func (c *AddCompressor) Delta() float64 { return c.delta }
