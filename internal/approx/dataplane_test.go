package approx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFixedPointRoundTrip(t *testing.T) {
	// Appendix C example: range [0,2], m=16, code 39131 represents ~1.19.
	f := FixedPoint{Raw: 39131, M: 16, Scale: 2}
	if v := f.Value(); math.Abs(v-1.194) > 0.001 {
		t.Fatalf("Value() = %v, want ~1.194", v)
	}
	g := NewFixedPoint(1.194, 16, 2)
	if math.Abs(g.Value()-1.194) > 2.0/(1<<16) {
		t.Fatalf("round trip error too large: %v", g.Value())
	}
}

func TestFixedPointQuantizationError(t *testing.T) {
	f := func(raw uint16) bool {
		v := float64(raw) / 65535 * 1.99
		fp := NewFixedPoint(v, 16, 2)
		return math.Abs(fp.Value()-v) <= 2.0/(1<<16)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedPointSaturation(t *testing.T) {
	fp := NewFixedPoint(100, 8, 2)
	if fp.Raw != 255 {
		t.Fatalf("overflow must saturate, got raw=%d", fp.Raw)
	}
	if NewFixedPoint(-1, 8, 2).Raw != 0 {
		t.Fatal("negative must clamp to 0")
	}
}

func TestFixedPointAdd(t *testing.T) {
	a := NewFixedPoint(0.5, 16, 2)
	b := NewFixedPoint(0.25, 16, 2)
	if s := a.Add(b).Value(); math.Abs(s-0.75) > 0.001 {
		t.Fatalf("0.5+0.25 = %v", s)
	}
	// Saturating add.
	c := NewFixedPoint(1.9, 16, 2)
	if s := c.Add(c).Value(); s > 2 {
		t.Fatalf("saturating add exceeded scale: %v", s)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched layouts must panic")
		}
	}()
	a.Add(NewFixedPoint(1, 8, 2))
}

func TestLogExpTableConstruct(t *testing.T) {
	if _, err := NewLogExpTable(1); err == nil {
		t.Fatal("q=1 must be rejected")
	}
	if _, err := NewLogExpTable(17); err == nil {
		t.Fatal("q=17 must be rejected")
	}
	tbl, err := NewLogExpTable(8)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Q() != 8 {
		t.Fatal("Q accessor broken")
	}
}

func TestLog2Accuracy(t *testing.T) {
	// Appendix C bound: error below ~1.44·2^-q on the log.
	tbl, _ := NewLogExpTable(8)
	bound := 1.45 * math.Pow(2, -8)
	for _, x := range []uint64{1, 2, 3, 100, 255, 256, 1000, 1 << 20, 1 << 40, 1<<63 + 12345} {
		got := tbl.Log2(x)
		want := math.Log2(float64(x))
		if math.Abs(got-want) > bound {
			t.Fatalf("Log2(%d) = %v, want %v (err %v > %v)",
				x, got, want, math.Abs(got-want), bound)
		}
	}
}

func TestLog2Property(t *testing.T) {
	tbl, _ := NewLogExpTable(10)
	bound := 1.45 * math.Pow(2, -10)
	f := func(x uint64) bool {
		if x == 0 {
			return tbl.Log2(0) == 0
		}
		return math.Abs(tbl.Log2(x)-math.Log2(float64(x))) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestExp2Accuracy(t *testing.T) {
	tbl, _ := NewLogExpTable(8)
	relBound := math.Pow(2, math.Pow(2, -8)) - 1 + 1e-9
	for _, y := range []float64{0, 0.5, 1, 3.3, 10.7, 20, 40.25} {
		got := tbl.Exp2(y)
		want := math.Exp2(y)
		if math.Abs(got-want)/want > relBound {
			t.Fatalf("Exp2(%v) = %v, want %v", y, got, want)
		}
	}
}

func TestMulDivAccuracy(t *testing.T) {
	// The compound error of mul/div through logs must stay within ~1%
	// for q=8 (the paper's "less than 1% error" example uses the same q).
	tbl, _ := NewLogExpTable(8)
	cases := [][2]uint64{{3, 7}, {100, 100}, {12345, 678}, {1 << 20, 3}, {999999, 999}}
	for _, c := range cases {
		x, y := c[0], c[1]
		if got, want := tbl.Mul(x, y), float64(x)*float64(y); math.Abs(got-want)/want > 0.012 {
			t.Fatalf("Mul(%d,%d) = %v, want %v", x, y, got, want)
		}
		if got, want := tbl.Div(x, y), float64(x)/float64(y); math.Abs(got-want)/want > 0.012 {
			t.Fatalf("Div(%d,%d) = %v, want %v", x, y, got, want)
		}
	}
	if tbl.Mul(0, 5) != 0 || tbl.Mul(5, 0) != 0 || tbl.Div(0, 5) != 0 {
		t.Fatal("zero operands must yield zero")
	}
}

func TestDivBelowOne(t *testing.T) {
	tbl, _ := NewLogExpTable(8)
	got := tbl.Div(1, 4)
	if math.Abs(got-0.25)/0.25 > 0.02 {
		t.Fatalf("Div(1,4) = %v, want 0.25", got)
	}
}

func TestExp2FromSigned(t *testing.T) {
	tbl, _ := NewLogExpTable(8)
	if got := tbl.Exp2FromSigned(-2); math.Abs(got-0.25) > 0.01 {
		t.Fatalf("2^-2 = %v", got)
	}
	if got := tbl.Exp2FromSigned(3); math.Abs(got-8) > 0.1 {
		t.Fatalf("2^3 = %v", got)
	}
}

func TestHPCCUtilizationConvergesToLoad(t *testing.T) {
	// Feed a steady 50%-utilized link: EWMA must converge near 0.5.
	tbl, _ := NewLogExpTable(10)
	const (
		rttNs = 13000           // 13 us base RTT as in §6.1
		bwBps = 100_000_000_000 // 100 Gbps
		pkt   = 1000            // bytes
	)
	h := NewHPCCUtilization(rttNs, bwBps, tbl)
	// At 50% load a 1000B packet occupies 80 ns on the wire but arrives
	// every 160 ns; queue stays empty.
	u := 0.0
	for i := 0; i < 4000; i++ {
		u = h.Update(u, 160, 0, pkt)
	}
	if math.Abs(u-0.5) > 0.05 {
		t.Fatalf("EWMA utilization %v, want ~0.5", u)
	}
}

func TestHPCCUtilizationQueueRaisesU(t *testing.T) {
	tbl, _ := NewLogExpTable(10)
	h := NewHPCCUtilization(13000, 100_000_000_000, tbl)
	uNoQ, uQ := 0.0, 0.0
	for i := 0; i < 3000; i++ {
		uNoQ = h.Update(uNoQ, 80, 0, 1000)
		uQ = h.Update(uQ, 80, 64000, 1000) // 64KB standing queue
	}
	if uQ <= uNoQ {
		t.Fatalf("queue must raise utilization: %v <= %v", uQ, uNoQ)
	}
	if uNoQ < 0.9 || uNoQ > 1.1 {
		t.Fatalf("full-rate no-queue utilization %v, want ~1", uNoQ)
	}
}

func TestHPCCUtilizationTauClamp(t *testing.T) {
	tbl, _ := NewLogExpTable(10)
	h := NewHPCCUtilization(1000, 100_000_000_000, tbl)
	// tau larger than T must not produce negative weights / NaN.
	u := h.Update(0.5, 5000, 1000, 1000)
	if math.IsNaN(u) || u < 0 {
		t.Fatalf("update with tau>T produced %v", u)
	}
}
