package approx

import (
	"fmt"
	"math"
	"math/bits"
)

// This file implements the data-plane arithmetic of Appendix C: hardware
// match-action pipelines cannot multiply or divide, so values are carried
// in fixed-point registers and products/quotients are computed as
// 2^(log₂x + log₂y) using a TCAM-style most-significant-bit search plus a
// small 2^q-entry lookup table. The HPCC-on-switch variant of PINT (§4.3,
// Appendix B) routes every utilization update through this machinery, and
// the simulator uses the same code path so the reproduction inherits the
// same quantization error the P4 program would have.

// FixedPoint represents real values in [0, Scale) as m-bit integers:
// r encodes Scale · r · 2^-m (Appendix C, "Fixed-point representation").
type FixedPoint struct {
	Raw   uint64  // integer register contents
	M     int     // register width in bits
	Scale float64 // value range upper bound (power of two by convention)
}

// NewFixedPoint quantizes a real value. Values outside [0, Scale) saturate.
func NewFixedPoint(v float64, m int, scale float64) FixedPoint {
	if v < 0 {
		v = 0
	}
	max := uint64(1)<<uint(m) - 1
	r := math.Round(v / scale * float64(uint64(1)<<uint(m)))
	if r > float64(max) {
		r = float64(max)
	}
	return FixedPoint{Raw: uint64(r), M: m, Scale: scale}
}

// Value returns the represented real number.
func (f FixedPoint) Value() float64 {
	return f.Scale * float64(f.Raw) / float64(uint64(1)<<uint(f.M))
}

// Add returns the saturating sum of two fixed-point values with identical
// layout. It panics if the layouts differ, which would be a programming
// error in the pipeline definition.
func (f FixedPoint) Add(o FixedPoint) FixedPoint {
	if f.M != o.M || f.Scale != o.Scale {
		panic("approx: mismatched fixed-point layouts")
	}
	s := f.Raw + o.Raw
	if max := uint64(1)<<uint(f.M) - 1; s > max {
		s = max
	}
	return FixedPoint{Raw: s, M: f.M, Scale: f.Scale}
}

// LogExpTable is the 2^q-entry lookup pair of Appendix C. Log2 finds the
// most significant set bit ℓ (the TCAM step), reads the next q bits x_q and
// returns (ℓ−q) + log₂(x_q) from the table — an approximation with relative
// error below 1.44·2^-q on the log. Exp2 inverts it with the analogous
// table.
type LogExpTable struct {
	q        int
	smallLog []float64 // smallLog[x] = log2(x) exactly, for x < 2^q
	fracLog  []float64 // fracLog[i] ≈ log2(1 + i/2^q), midpoint-centred
	expTable []float64 // expTable[i] = 2^(i/2^q) for i in [0, 2^q)
}

// NewLogExpTable builds tables with q index bits (e.g. q=8 gives 256-entry
// tables, the size the paper deems feasible on-switch). The fractional-log
// table stores the midpoint log2(1 + (i+0.5)/2^q) so the truncation of the
// dropped low bits is centred instead of downward-biased — a downward bias
// would systematically shrink the EWMA decay factor in Appendix B's
// utilization update and distort the steady state.
func NewLogExpTable(q int) (*LogExpTable, error) {
	if q < 2 || q > 16 {
		return nil, fmt.Errorf("approx: q=%d out of [2,16]", q)
	}
	t := &LogExpTable{q: q}
	n := 1 << uint(q)
	t.smallLog = make([]float64, n)
	for i := 1; i < n; i++ {
		t.smallLog[i] = math.Log2(float64(i))
	}
	t.fracLog = make([]float64, n)
	for i := range t.fracLog {
		t.fracLog[i] = math.Log2(1 + (float64(i)+0.5)/float64(n))
	}
	t.expTable = make([]float64, n)
	for i := range t.expTable {
		t.expTable[i] = math.Exp2(float64(i) / float64(n))
	}
	return t, nil
}

// Q returns the table index width.
func (t *LogExpTable) Q() int { return t.q }

// Log2 approximates log₂(x) for x >= 1 using only the operations a switch
// has: MSB search (TCAM), shift, and one table read. Per Appendix C, the q
// bits following the most significant set bit index the table; the error is
// below 1.44·2^-q (and centred, see NewLogExpTable).
func (t *LogExpTable) Log2(x uint64) float64 {
	if x == 0 {
		return 0 // undefined; pipeline treats log(0) as 0 by convention
	}
	l := 63 - bits.LeadingZeros64(x) // TCAM: index of MSB
	if l < t.q {
		return t.smallLog[x] // small values: exact lookup
	}
	// x = 2^l · (1 + frac/2^q + δ), δ < 2^-q: read the q bits after the MSB.
	frac := (x >> uint(l-t.q)) & (uint64(1)<<uint(t.q) - 1)
	return float64(l) + t.fracLog[frac]
}

// Exp2 approximates 2^y for y >= 0 via integer/fraction split and one table
// read. The relative error is at most 2^2^-q − 1 (< 0.28% for q = 8).
func (t *LogExpTable) Exp2(y float64) float64 {
	if y <= 0 {
		return 1
	}
	ip, fp := math.Floor(y), y-math.Floor(y)
	idx := int(math.Round(fp * float64(int(1)<<uint(t.q))))
	if idx >= len(t.expTable) {
		ip++
		idx = 0
	}
	if ip > 62 {
		ip = 62 // saturate rather than overflow
	}
	return float64(uint64(1)<<uint64(ip)) * t.expTable[idx]
}

// Mul approximates x·y as 2^(log₂x + log₂y) — the switch-feasible
// multiplication of Appendix C.
func (t *LogExpTable) Mul(x, y uint64) float64 {
	if x == 0 || y == 0 {
		return 0
	}
	return t.Exp2(t.Log2(x) + t.Log2(y))
}

// Div approximates x/y as 2^(log₂x − log₂y). y must be nonzero.
func (t *LogExpTable) Div(x, y uint64) float64 {
	if x == 0 {
		return 0
	}
	lx, ly := t.Log2(x), t.Log2(y)
	if lx <= ly {
		// Quotients below 1: extend with the fractional exponent. The
		// pipeline realizes this with the same table by scaling x first;
		// we mirror that by computing the negative exponent directly.
		return 1 / t.Exp2(ly-lx)
	}
	return t.Exp2(lx - ly)
}

// HPCCUtilization computes one EWMA update of the link utilization U the
// way Appendix B prescribes for the switch data plane:
//
//	U' = (T−τ)/T · U + qlen·τ/(B·T²) + byte/(B·T)
//
// with every product realized as exp(log+log) through the lookup tables.
// Arguments use integer "register" units: nanoseconds for T and tau, bytes
// for qlen and byte, bytes/ns for bandwidth scaled by 2^16 to stay integral.
type HPCCUtilization struct {
	T   uint64 // base RTT in ns
	B   uint64 // link bandwidth in bytes per second
	tbl *LogExpTable
}

// NewHPCCUtilization builds the per-link utilization updater.
func NewHPCCUtilization(baseRTTns, bandwidthBps uint64, tbl *LogExpTable) *HPCCUtilization {
	return &HPCCUtilization{T: baseRTTns, B: bandwidthBps / 8, tbl: tbl}
}

// Update performs one dequeue-time update (Appendix B):
// tau = packet serialization+gap time in ns, qlen and pktBytes in bytes.
// U is dimensionless utilization in [0, ~2].
func (h *HPCCUtilization) Update(u float64, tauNs, qlen, pktBytes uint64) float64 {
	if tauNs > h.T {
		tauNs = h.T
	}
	// Term 1: (T-τ)/T · U. Computed via logs when U > 0.
	var term1 float64
	if u > 0 {
		// Represent U in fixed point (16 fractional bits) so it can enter
		// the log table as an integer, as the P4 program would.
		uFix := uint64(u * (1 << 16))
		if uFix == 0 {
			uFix = 1
		}
		logU := h.tbl.Log2(uFix) - 16
		logScale := h.tbl.Log2(h.T-tauNs) - h.tbl.Log2(h.T)
		term1 = h.tbl.Exp2FromSigned(logU + logScale)
	}
	// Term 2: qlen·τ / (B·T²), B in bytes/ns fixed-point.
	var term2 float64
	if qlen > 0 && tauNs > 0 {
		logNum := h.tbl.Log2(qlen) + h.tbl.Log2(tauNs)
		logDen := h.logBperNs() + 2*h.tbl.Log2(h.T)
		term2 = h.tbl.Exp2FromSigned(logNum - logDen)
	}
	// Term 3: byte / (B·T).
	var term3 float64
	if pktBytes > 0 {
		logNum := h.tbl.Log2(pktBytes)
		logDen := h.logBperNs() + h.tbl.Log2(h.T)
		term3 = h.tbl.Exp2FromSigned(logNum - logDen)
	}
	return term1 + term2 + term3
}

// logBperNs returns log2 of the bandwidth in bytes per nanosecond, as the
// difference of two table lookups (B bytes/sec over 1e9 ns/sec).
func (h *HPCCUtilization) logBperNs() float64 {
	return h.tbl.Log2(h.B) - h.tbl.Log2(1_000_000_000)
}

// Exp2FromSigned extends Exp2 to negative exponents (quotients < 1), which
// the pipeline realizes by swapping numerator and denominator.
func (t *LogExpTable) Exp2FromSigned(y float64) float64 {
	if y >= 0 {
		return t.Exp2(y)
	}
	return 1 / t.Exp2(-y)
}
