package approx

import "math"

// Batch decompositions: the per-value constants the op-major encode path
// memoizes so each packet's probabilistic decision reduces to one integer
// compare against a precomputed hash column. Every branch here mirrors
// hash.Below exactly — including the float saturation near p = 1 — so
// batch and scalar encoders decide identically bit for bit.

// RandomizedParts decomposes EncodeRandomized for batch callers: for
// value v and coin hash h (the g(pktID, 1<<20) draw EncodeRandomized
// makes), the resulting code is
//
//	lo+1  if always or h < coinThr,
//	lo    otherwise,
//
// clamped to MaxCode(). Callers memoize the parts per distinct v and
// stream packets through a precomputed coin-hash column.
func (c *MultCompressor) RandomizedParts(v float64) (lo uint64, coinThr uint64, always bool) {
	if v <= 1 {
		return 0, 0, false
	}
	exact := math.Log(v) / c.lnB
	if exact < 0 {
		exact = 0
	}
	fl := math.Floor(exact)
	frac := exact - fl
	lo = uint64(fl)
	switch {
	case frac <= 0:
		return lo, 0, false
	case frac >= 1:
		return lo, 0, true
	}
	t := math.Floor(frac * (1 << 32) * (1 << 32))
	if t >= math.MaxUint64 {
		return lo, 0, true
	}
	return lo, uint64(t), false
}

// MaxCode exposes the saturation code batch callers clamp against when
// applying RandomizedParts.
func (c *MultCompressor) MaxCode() uint64 { return c.maxCode() }

// MorrisIncrementThreshold returns the integer coin constant for one
// probabilistic Morris increment from `code` with growth base a: the
// counter increments exactly when coinHash < thr, or unconditionally when
// always, where coinHash is the g.ValueDigest(salt, pktID, 64) draw
// MorrisNextCode makes. Width saturation is the caller's check — a code
// at the width's maximum never increments regardless of the coin.
func MorrisIncrementThreshold(a float64, code uint64) (thr uint64, always bool) {
	p := math.Pow(a, -float64(code))
	switch {
	case p <= 0:
		return 0, false
	case p >= 1:
		return 0, true
	}
	t := math.Floor(p * (1 << 32) * (1 << 32))
	if t >= math.MaxUint64 {
		return 0, true
	}
	return uint64(t), false
}
