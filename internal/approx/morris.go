package approx

import (
	"math"

	"repro/internal/hash"
)

// Morris is the randomized counter of Morris [55], used by PINT's
// randomized-counting technique (§4.3): when the aggregate over a path
// (e.g. the number of high-latency hops, or an end-to-end sum) needs more
// bits than the budget allows, the packet instead carries a tiny counter
// that is incremented *probabilistically* so its expectation tracks the
// true count.
//
// The counter stores c and represents n ≈ (a^c - 1)/(a - 1) where
// a = 1 + 2ε² controls the accuracy/width trade-off: estimates are within a
// (1+ε) factor with constant probability, using only O(log log n / ε) bits.
type Morris struct {
	a float64 // growth base > 1
	c uint64  // stored exponent
	b int     // counter width in bits
}

// NewMorris creates a counter with relative accuracy parameter eps and the
// given bit width. Smaller eps means larger (more accurate, wider) codes.
func NewMorris(eps float64, bits int) *Morris {
	return &Morris{a: MorrisBase(eps), b: bits}
}

// Increment advances the counter by one *logical* unit: the stored exponent
// increases with probability a^-c. Randomness comes from the global hash on
// (pktID, salt) so a simulated switch needs no RNG; callers that do not care
// pass any fresh salt per call.
func (m *Morris) Increment(g hash.Global, pktID, salt uint64) {
	m.c = MorrisNextCode(m.a, m.b, m.c, g, pktID, salt)
}

// MorrisNextCode returns the code after one probabilistic increment of a
// Morris counter with growth base a and width bits — the allocation-free
// form of (*Morris).Increment for compiled hot paths that cannot afford a
// heap counter per packet. The coin is the same global-hash draw.
func MorrisNextCode(a float64, bits int, code uint64, g hash.Global, pktID, salt uint64) uint64 {
	max := uint64(1)<<uint(bits) - 1
	if code >= max {
		return code // saturated
	}
	p := math.Pow(a, -float64(code))
	if hash.Below(g.ValueDigest(salt, pktID, 64), p) {
		return code + 1
	}
	return code
}

// MorrisBase returns the growth base a = 1 + 2ε² for an accuracy parameter,
// clamped above 1 (the precomputation MorrisNextCode callers hoist out of
// their per-packet loop).
func MorrisBase(eps float64) float64 {
	a := 1 + 2*eps*eps
	if a <= 1 {
		a = 1 + 1e-9
	}
	return a
}

// Code returns the stored exponent (what would travel on the packet).
func (m *Morris) Code() uint64 { return m.c }

// SetCode loads a received exponent (what the sink recovers).
func (m *Morris) SetCode(c uint64) { m.c = c }

// Estimate returns the unbiased count estimate (a^c - 1)/(a - 1).
func (m *Morris) Estimate() float64 {
	return (math.Pow(m.a, float64(m.c)) - 1) / (m.a - 1)
}

// MorrisBits returns the number of bits needed to count to n with accuracy
// eps — the O(log ε⁻¹ + log log(n)) cost quoted in §4.3.
func MorrisBits(n float64, eps float64) int {
	if n < 2 {
		return 1
	}
	a := 1 + 2*eps*eps
	// Largest exponent c with (a^c-1)/(a-1) <= n.
	c := math.Log(n*(a-1)+1) / math.Log(a)
	bits := int(math.Ceil(math.Log2(c + 1)))
	if bits < 1 {
		bits = 1
	}
	return bits
}
