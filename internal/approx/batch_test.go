package approx

import (
	"math"
	"testing"

	"repro/internal/hash"
)

// TestRandomizedPartsMatchEncodeRandomized pins the memoizable
// decomposition to the scalar encoder for every decision path: v <= 1,
// integer exponents (frac = 0), fractional exponents, and saturation.
func TestRandomizedPartsMatchEncodeRandomized(t *testing.T) {
	g := hash.NewGlobal(0xBA7C4)
	for _, cfg := range []struct {
		eps  float64
		bits int
	}{{0.025, 8}, {0.0025, 16}, {0.4, 3}} {
		c, err := NewMultCompressor(cfg.eps, cfg.bits)
		if err != nil {
			t.Fatal(err)
		}
		vals := []float64{0, 0.5, 1, 1.0000001, 2, 3.7, 1000, 1e6, 1e12, 1e300,
			c.base, c.base * c.base, math.Pow(c.base, 7)}
		var h [1]uint64
		for _, v := range vals {
			lo, coinThr, always := c.RandomizedParts(v)
			for pkt := uint64(0); pkt < 500; pkt++ {
				want := c.EncodeRandomized(v, g, pkt)
				code := lo
				// The coin hash EncodeRandomized draws via g.Act(pkt, 1<<20, frac).
				g.ActHashColumn(h[:], []uint64{pkt}, 1<<20)
				if always || h[0] < coinThr {
					code++
				}
				if code > c.MaxCode() {
					code = c.MaxCode()
				}
				if code != want {
					t.Fatalf("eps=%v bits=%d v=%v pkt=%d: parts give %d, scalar %d",
						cfg.eps, cfg.bits, v, pkt, code, want)
				}
			}
		}
	}
}

// TestMorrisIncrementThresholdMatchesNextCode pins the precomputable coin
// threshold to MorrisNextCode across codes and widths.
func TestMorrisIncrementThresholdMatchesNextCode(t *testing.T) {
	g := hash.NewGlobal(0xBA7C5)
	for _, eps := range []float64{0.05, 0.25, 0.9} {
		a := MorrisBase(eps)
		for _, bits := range []int{1, 4, 8, 12} {
			max := uint64(1)<<uint(bits) - 1
			for code := uint64(0); code <= max && code < 300; code++ {
				thr, always := MorrisIncrementThreshold(a, code)
				for pkt := uint64(0); pkt < 200; pkt++ {
					salt := pkt % 7
					want := MorrisNextCode(a, bits, code, g, pkt, salt)
					got := code
					if code < max {
						if h := g.ValueDigest(salt, pkt, 64); always || h < thr {
							got = code + 1
						}
					}
					if got != want {
						t.Fatalf("eps=%v bits=%d code=%d pkt=%d: threshold gives %d, scalar %d",
							eps, bits, code, pkt, got, want)
					}
				}
			}
		}
	}
}
