package approx

import (
	"testing"

	"repro/internal/hash"
)

func BenchmarkMultEncode(b *testing.B) {
	c, _ := NewMultCompressor(0.025, 8)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= c.Encode(float64(i%100000 + 1))
	}
	benchSink = acc
}

func BenchmarkMultEncodeRandomized(b *testing.B) {
	c, _ := NewMultCompressor(0.025, 8)
	g := hash.NewGlobal(1)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= c.EncodeRandomized(float64(i%100000+1), g, uint64(i))
	}
	benchSink = acc
}

func BenchmarkLog2Table(b *testing.B) {
	t, _ := NewLogExpTable(8)
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += t.Log2(uint64(i + 1))
	}
	benchSinkF = acc
}

func BenchmarkTableMul(b *testing.B) {
	t, _ := NewLogExpTable(8)
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += t.Mul(uint64(i%65536+1), 12345)
	}
	benchSinkF = acc
}

func BenchmarkHPCCUtilizationUpdate(b *testing.B) {
	t, _ := NewLogExpTable(12)
	h := NewHPCCUtilization(13000, 100_000_000_000, t)
	u := 0.0
	for i := 0; i < b.N; i++ {
		u = h.Update(u, 100, uint64(i%64000), 1000)
	}
	benchSinkF = u
}

func BenchmarkMorrisIncrement(b *testing.B) {
	g := hash.NewGlobal(2)
	m := NewMorris(0.1, 16)
	for i := 0; i < b.N; i++ {
		m.Increment(g, uint64(i), 1)
	}
	benchSink = m.Code()
}

var (
	benchSink  uint64
	benchSinkF float64
)
