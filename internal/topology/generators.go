package topology

import (
	"fmt"

	"repro/internal/hash"
)

// FatTree builds the canonical k-ary fat tree: (k/2)² core switches, k pods
// of k/2 aggregation plus k/2 edge switches each, and (k/2)² hosts per pod.
// k must be even. The switch-level diameter is 4 (edge-agg-core-agg-edge),
// so host-to-host paths traverse at most 5 switches — the K=8 instance is
// Fig 10(c)/(f)'s topology.
func FatTree(k int) (*Graph, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat tree arity %d must be even and >= 2", k)
	}
	g := NewGraph(fmt.Sprintf("fattree-k%d", k))
	half := k / 2
	// Core switches: half*half of them, organized in `half` groups.
	core := make([]int, half*half)
	for i := range core {
		core[i] = g.AddNode(Switch, fmt.Sprintf("core%d", i))
	}
	for pod := 0; pod < k; pod++ {
		aggs := make([]int, half)
		edges := make([]int, half)
		for i := 0; i < half; i++ {
			aggs[i] = g.AddNode(Switch, fmt.Sprintf("agg%d-%d", pod, i))
		}
		for i := 0; i < half; i++ {
			edges[i] = g.AddNode(Switch, fmt.Sprintf("edge%d-%d", pod, i))
		}
		// Full bipartite agg<->edge within the pod.
		for _, a := range aggs {
			for _, e := range edges {
				if err := g.AddEdge(a, e); err != nil {
					return nil, err
				}
			}
		}
		// Agg i connects to core group i (cores i*half .. i*half+half-1).
		for i, a := range aggs {
			for j := 0; j < half; j++ {
				if err := g.AddEdge(a, core[i*half+j]); err != nil {
					return nil, err
				}
			}
		}
		// Hosts: half per edge switch.
		for i, e := range edges {
			for h := 0; h < half; h++ {
				host := g.AddNode(Host, fmt.Sprintf("host%d-%d-%d", pod, i, h))
				if err := g.AddEdge(e, host); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// LeafSpineHPCC builds the evaluation topology of §6.1 at a given pod
// count. At scale 5 (the paper's size) it has 16 core switches, 20
// aggregation switches, 20 ToRs and 320 servers (16 per rack): 5 pods of
// 4 agg + 4 ToR each, every ToR connected to every agg in its pod, and agg
// i of each pod connected to core group i (4 cores). Smaller scales shrink
// only the pod count, preserving the 3-tier path-length distribution
// (ToR→agg→core→agg→ToR), so bench-sized runs see the same hop counts.
func LeafSpineHPCC(scale int) (*Graph, error) {
	if scale < 1 || scale > 5 {
		return nil, fmt.Errorf("topology: leaf-spine scale %d out of [1,5]", scale)
	}
	return LeafSpine(scale, 4, 4, 16, 4)
}

// LeafSpine builds a generalized 3-tier pod topology: `pods` pods of
// aggPerPod agg + torPerPod ToR switches, hostsPerTor servers per rack,
// and aggPerPod core groups of coresPerGroup switches. LeafSpineHPCC(5)
// equals LeafSpine(5, 4, 4, 16, 4); bench-sized runs shrink rack size and
// pod count while preserving the 5-switch cross-pod path structure.
func LeafSpine(pods, aggPerPod, torPerPod, hostsPerTor, coresPerGroup int) (*Graph, error) {
	if pods < 1 || aggPerPod < 1 || torPerPod < 1 || hostsPerTor < 1 || coresPerGroup < 1 {
		return nil, fmt.Errorf("topology: leaf-spine dimensions must be positive")
	}
	coreGroups := aggPerPod
	g := NewGraph(fmt.Sprintf("leafspine-p%d-a%d-t%d-h%d", pods, aggPerPod, torPerPod, hostsPerTor))

	core := make([][]int, coreGroups)
	for gi := 0; gi < coreGroups; gi++ {
		for ci := 0; ci < coresPerGroup; ci++ {
			core[gi] = append(core[gi], g.AddNode(Switch, fmt.Sprintf("core%d-%d", gi, ci)))
		}
	}
	for p := 0; p < pods; p++ {
		aggs := make([]int, aggPerPod)
		for i := range aggs {
			aggs[i] = g.AddNode(Switch, fmt.Sprintf("agg%d-%d", p, i))
		}
		tors := make([]int, torPerPod)
		for i := range tors {
			tors[i] = g.AddNode(Switch, fmt.Sprintf("tor%d-%d", p, i))
		}
		for _, a := range aggs {
			for _, tr := range tors {
				if err := g.AddEdge(a, tr); err != nil {
					return nil, err
				}
			}
		}
		for i, a := range aggs {
			for _, c := range core[i] {
				if err := g.AddEdge(a, c); err != nil {
					return nil, err
				}
			}
		}
		for ti, tr := range tors {
			for h := 0; h < hostsPerTor; h++ {
				host := g.AddNode(Host, fmt.Sprintf("host%d-%d-%d", p, ti, h))
				if err := g.AddEdge(tr, host); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// ISPLike generates a wide-area topology with exactly `switches` switch
// nodes and switch-level diameter `diameter`: a backbone path of
// diameter+1 nodes guarantees shortest paths of every length 1..diameter,
// and the remaining nodes attach as short random trees off backbone nodes
// (depth ≤ 2) so the backbone stays the unique diameter-realizing spine,
// mimicking the chain-of-rings shape of long-haul ISP maps like Kentucky
// Datalink. Deterministic for a given seed.
func ISPLike(name string, switches, diameter int, seed uint64) (*Graph, error) {
	if diameter < 1 || switches < diameter+1 {
		return nil, fmt.Errorf("topology: need >= diameter+1 switches (%d < %d)",
			switches, diameter+1)
	}
	g := NewGraph(name)
	rng := hash.NewRNG(seed)
	backbone := make([]int, diameter+1)
	for i := range backbone {
		backbone[i] = g.AddNode(Switch, fmt.Sprintf("bb%d", i))
		if i > 0 {
			if err := g.AddEdge(backbone[i-1], backbone[i]); err != nil {
				return nil, err
			}
		}
	}
	// Attach the remaining switches as depth-1 leaves on interior backbone
	// nodes only (never the two endpoints), so no attachment extends the
	// diameter: a leaf off interior node i has eccentricity
	// max(i, D−i)+1 ≤ D exactly when 1 ≤ i ≤ D−1. Every seventh leaf is
	// dual-homed to two adjacent backbone nodes, creating the equal-cost
	// alternatives real ISP maps exhibit without shortening any path.
	remaining := switches - len(backbone)
	for j := 0; remaining > 0; j++ {
		leaf := g.AddNode(Switch, fmt.Sprintf("leaf%d", g.NumNodes()))
		remaining--
		if diameter >= 3 && j%7 == 3 {
			i := 1 + rng.Intn(diameter-2)
			if err := g.AddEdge(backbone[i], leaf); err != nil {
				return nil, err
			}
			if err := g.AddEdge(backbone[i+1], leaf); err != nil {
				return nil, err
			}
			continue
		}
		anchorIdx := 1 + rng.Intn(diameter-1)
		if err := g.AddEdge(backbone[anchorIdx], leaf); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// KentuckyDatalinkLike approximates Topology Zoo's Kentucky Datalink:
// 753 switches, diameter 59.
func KentuckyDatalinkLike() (*Graph, error) {
	return ISPLike("kentucky-datalink-like", 753, 59, 0x4B454E)
}

// USCarrierLike approximates Topology Zoo's US Carrier: 157 switches,
// diameter 36.
func USCarrierLike() (*Graph, error) {
	return ISPLike("us-carrier-like", 157, 36, 0xCA11)
}
