// Package topology provides the network graphs the PINT evaluation runs
// over (§6): data-center fat trees, the HPCC leaf-spine instance, and
// ISP-like wide-area graphs standing in for the Topology Zoo's Kentucky
// Datalink (753 switches, diameter 59) and US Carrier (157 switches,
// diameter 36) — the Zoo files themselves are not redistributable here, so
// deterministic generators reproduce the property Fig 10 depends on: the
// existence of shortest paths of every length up to the diameter.
//
// The package also computes shortest-path routing tables (BFS) with ECMP
// tie-breaking by flow hash, which both the packet simulator and the
// path-tracing experiments consume.
package topology

import (
	"fmt"

	"repro/internal/hash"
)

// NodeKind distinguishes hosts (traffic endpoints) from switches
// (telemetry encoders).
type NodeKind int

const (
	// Switch nodes run PINT/INT encoders.
	Switch NodeKind = iota
	// Host nodes source and sink traffic.
	Host
)

// Node is one vertex.
type Node struct {
	ID   int
	Kind NodeKind
	// SwitchID is the telemetry identifier switches embed in digests
	// (32-bit in deployments; distinct per switch).
	SwitchID uint64
	// Label is a human-readable role tag ("core3", "tor7", "host12").
	Label string
}

// Graph is an undirected multigraph-free network topology.
type Graph struct {
	Name  string
	Nodes []Node
	adj   [][]int // adjacency: node -> neighbor node IDs (sorted by insertion)
}

// NewGraph creates an empty topology.
func NewGraph(name string) *Graph { return &Graph{Name: name} }

// AddNode appends a node and returns its ID.
func (g *Graph) AddNode(kind NodeKind, label string) int {
	id := len(g.Nodes)
	g.Nodes = append(g.Nodes, Node{
		ID:       id,
		Kind:     kind,
		SwitchID: uint64(0x5A000000) + uint64(id), // distinct, fits 32 bits
		Label:    label,
	})
	g.adj = append(g.adj, nil)
	return id
}

// AddEdge connects two nodes bidirectionally. Duplicate and self edges are
// rejected.
func (g *Graph) AddEdge(a, b int) error {
	if a == b {
		return fmt.Errorf("topology: self edge at %d", a)
	}
	if a < 0 || b < 0 || a >= len(g.Nodes) || b >= len(g.Nodes) {
		return fmt.Errorf("topology: edge (%d,%d) out of range", a, b)
	}
	for _, n := range g.adj[a] {
		if n == b {
			return fmt.Errorf("topology: duplicate edge (%d,%d)", a, b)
		}
	}
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
	return nil
}

// Neighbors returns a node's adjacency list (shared; do not mutate).
func (g *Graph) Neighbors(id int) []int { return g.adj[id] }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// Switches returns the IDs of all switch nodes.
func (g *Graph) Switches() []int {
	var out []int
	for _, n := range g.Nodes {
		if n.Kind == Switch {
			out = append(out, n.ID)
		}
	}
	return out
}

// Hosts returns the IDs of all host nodes.
func (g *Graph) Hosts() []int {
	var out []int
	for _, n := range g.Nodes {
		if n.Kind == Host {
			out = append(out, n.ID)
		}
	}
	return out
}

// SwitchIDUniverse returns every switch's telemetry identifier — the value
// universe V the hashed decoding mode of §4.2 filters against.
func (g *Graph) SwitchIDUniverse() []uint64 {
	var out []uint64
	for _, n := range g.Nodes {
		if n.Kind == Switch {
			out = append(out, n.SwitchID)
		}
	}
	return out
}

// BFSFrom computes hop distances and a parent-set DAG from src: parents[v]
// lists all neighbors of v on *some* shortest src→v path, enabling ECMP.
func (g *Graph) BFSFrom(src int) (dist []int, parents [][]int) {
	n := len(g.Nodes)
	dist = make([]int, n)
	parents = make([][]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				parents[v] = []int{u}
				queue = append(queue, v)
			} else if dist[v] == dist[u]+1 {
				parents[v] = append(parents[v], u)
			}
		}
	}
	return dist, parents
}

// Path returns one deterministic ECMP shortest path from src to dst
// (inclusive of both endpoints), tie-broken by the flow hash so different
// flows may take different equal-cost paths while one flow is stable.
// It returns nil if dst is unreachable.
func (g *Graph) Path(src, dst int, flowHash uint64) []int {
	dist, parents := g.BFSFrom(src)
	if dist[dst] < 0 {
		return nil
	}
	path := []int{dst}
	cur := dst
	for cur != src {
		ps := parents[cur]
		pick := ps[int(hash.Mix64(flowHash^uint64(cur))%uint64(len(ps)))]
		path = append(path, pick)
		cur = pick
	}
	// Reverse in place.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// SwitchPath returns the switch IDs (telemetry values) along the path from
// src to dst, excluding host endpoints — the message blocks a path-tracing
// query must recover.
func (g *Graph) SwitchPath(src, dst int, flowHash uint64) []uint64 {
	p := g.Path(src, dst, flowHash)
	var out []uint64
	for _, id := range p {
		if g.Nodes[id].Kind == Switch {
			out = append(out, g.Nodes[id].SwitchID)
		}
	}
	return out
}

// Diameter returns the maximum finite shortest-path length between switch
// nodes (hosts excluded, matching how the paper quotes topology diameters).
func (g *Graph) Diameter() int {
	d := 0
	for _, s := range g.Switches() {
		dist, _ := g.BFSFrom(s)
		for _, t := range g.Switches() {
			if dist[t] > d {
				d = dist[t]
			}
		}
	}
	return d
}

// SwitchPairsAtDistance returns up to max switch pairs whose shortest-path
// distance is exactly l — the per-path-length sample populations of Fig 10.
// Deterministic given the seed.
func (g *Graph) SwitchPairsAtDistance(l, max int, seed uint64) [][2]int {
	sw := g.Switches()
	rng := hash.NewRNG(seed)
	var out [][2]int
	// Iterate sources in a seeded random order so samples are not biased
	// toward low node IDs.
	for _, si := range rng.Perm(len(sw)) {
		s := sw[si]
		dist, _ := g.BFSFrom(s)
		for _, ti := range rng.Perm(len(sw)) {
			t := sw[ti]
			if t != s && dist[t] == l {
				out = append(out, [2]int{s, t})
				if len(out) >= max {
					return out
				}
			}
		}
	}
	return out
}
