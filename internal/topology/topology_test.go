package topology

import (
	"testing"
)

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph("t")
	a := g.AddNode(Switch, "a")
	b := g.AddNode(Switch, "b")
	if err := g.AddEdge(a, a); err == nil {
		t.Fatal("self edge must fail")
	}
	if err := g.AddEdge(a, 99); err == nil {
		t.Fatal("out-of-range edge must fail")
	}
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(a, b); err == nil {
		t.Fatal("duplicate edge must fail")
	}
	if err := g.AddEdge(b, a); err == nil {
		t.Fatal("reversed duplicate edge must fail")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
}

func TestSwitchIDsDistinct(t *testing.T) {
	g, err := FatTree(8)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, id := range g.SwitchIDUniverse() {
		if seen[id] {
			t.Fatal("duplicate switch ID")
		}
		if id >= 1<<32 {
			t.Fatal("switch ID must fit 32 bits")
		}
		seen[id] = true
	}
}

func TestFatTreeShape(t *testing.T) {
	if _, err := FatTree(3); err == nil {
		t.Fatal("odd arity must fail")
	}
	g, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	// k=4: 4 core + 4 pods × (2 agg + 2 edge) = 20 switches, 16 hosts.
	if got := len(g.Switches()); got != 20 {
		t.Fatalf("k=4 switches = %d, want 20", got)
	}
	if got := len(g.Hosts()); got != 16 {
		t.Fatalf("k=4 hosts = %d, want 16", got)
	}
	if d := g.Diameter(); d != 4 {
		t.Fatalf("fat tree switch diameter = %d, want 4", d)
	}
}

func TestFatTreeK8HostPathLength(t *testing.T) {
	g, err := FatTree(8)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	// Cross-pod host pair traverses exactly 5 switches (Fig 10c's D=5).
	p := g.SwitchPath(hosts[0], hosts[len(hosts)-1], 7)
	if len(p) != 5 {
		t.Fatalf("cross-pod switch path length %d, want 5", len(p))
	}
	// Same-edge pair traverses exactly 1 switch.
	p = g.SwitchPath(hosts[0], hosts[1], 7)
	if len(p) != 1 {
		t.Fatalf("same-rack switch path length %d, want 1", len(p))
	}
}

func TestLeafSpineHPCCShape(t *testing.T) {
	if _, err := LeafSpineHPCC(0); err == nil {
		t.Fatal("scale 0 must fail")
	}
	g, err := LeafSpineHPCC(5)
	if err != nil {
		t.Fatal(err)
	}
	// Paper numbers: 16 core + 20 agg + 20 tor = 56 switches, 320 hosts.
	if got := len(g.Switches()); got != 56 {
		t.Fatalf("switches = %d, want 56", got)
	}
	if got := len(g.Hosts()); got != 320 {
		t.Fatalf("hosts = %d, want 320", got)
	}
	// Max host-to-host: tor-agg-core-agg-tor = 5 switches.
	hosts := g.Hosts()
	p := g.SwitchPath(hosts[0], hosts[len(hosts)-1], 3)
	if len(p) != 5 {
		t.Fatalf("cross-pod path %d switches, want 5", len(p))
	}
}

func TestLeafSpineScaledKeepsPathLengths(t *testing.T) {
	g, err := LeafSpineHPCC(2)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	p := g.SwitchPath(hosts[0], hosts[len(hosts)-1], 3)
	if len(p) != 5 {
		t.Fatalf("scaled cross-pod path %d switches, want 5", len(p))
	}
}

func TestISPLikeDiameters(t *testing.T) {
	cases := []struct {
		make func() (*Graph, error)
		n    int
		d    int
	}{
		{KentuckyDatalinkLike, 753, 59},
		{USCarrierLike, 157, 36},
	}
	for _, c := range cases {
		g, err := c.make()
		if err != nil {
			t.Fatal(err)
		}
		if got := len(g.Switches()); got != c.n {
			t.Fatalf("%s: %d switches, want %d", g.Name, got, c.n)
		}
		if got := g.Diameter(); got != c.d {
			t.Fatalf("%s: diameter %d, want %d", g.Name, got, c.d)
		}
	}
}

func TestISPLikeValidation(t *testing.T) {
	if _, err := ISPLike("x", 5, 10, 1); err == nil {
		t.Fatal("too few switches must fail")
	}
	if _, err := ISPLike("x", 10, 0, 1); err == nil {
		t.Fatal("zero diameter must fail")
	}
}

func TestISPLikeDeterministic(t *testing.T) {
	a, _ := ISPLike("a", 100, 20, 42)
	b, _ := ISPLike("b", 100, 20, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must give same topology")
	}
}

func TestPathProperties(t *testing.T) {
	g, _ := USCarrierLike()
	sw := g.Switches()
	src, dst := sw[0], sw[len(sw)-1]
	p := g.Path(src, dst, 123)
	if p == nil || p[0] != src || p[len(p)-1] != dst {
		t.Fatal("path endpoints wrong")
	}
	// Consecutive nodes must be adjacent; path must be a shortest path.
	dist, _ := g.BFSFrom(src)
	if len(p)-1 != dist[dst] {
		t.Fatalf("path length %d != BFS distance %d", len(p)-1, dist[dst])
	}
	for i := 0; i+1 < len(p); i++ {
		adjacent := false
		for _, n := range g.Neighbors(p[i]) {
			if n == p[i+1] {
				adjacent = true
			}
		}
		if !adjacent {
			t.Fatalf("path step %d->%d not an edge", p[i], p[i+1])
		}
	}
}

func TestPathStablePerFlow(t *testing.T) {
	g, _ := FatTree(8)
	hosts := g.Hosts()
	p1 := g.Path(hosts[0], hosts[60], 999)
	p2 := g.Path(hosts[0], hosts[60], 999)
	if len(p1) != len(p2) {
		t.Fatal("same flow hash must give same path")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same flow hash must give same path")
		}
	}
}

func TestECMPSpreadsFlows(t *testing.T) {
	g, _ := FatTree(8)
	hosts := g.Hosts()
	distinct := map[string]bool{}
	for h := uint64(0); h < 64; h++ {
		p := g.Path(hosts[0], hosts[60], h)
		key := ""
		for _, n := range p {
			key += g.Nodes[n].Label + "/"
		}
		distinct[key] = true
	}
	if len(distinct) < 2 {
		t.Fatal("ECMP never picked an alternate equal-cost path across 64 flows")
	}
}

func TestPathUnreachable(t *testing.T) {
	g := NewGraph("disc")
	a := g.AddNode(Switch, "a")
	b := g.AddNode(Switch, "b")
	if g.Path(a, b, 1) != nil {
		t.Fatal("disconnected nodes must yield nil path")
	}
}

func TestSwitchPairsAtDistance(t *testing.T) {
	g, _ := USCarrierLike()
	for _, l := range []int{4, 12, 24, 36} {
		pairs := g.SwitchPairsAtDistance(l, 10, 5)
		if len(pairs) == 0 {
			t.Fatalf("no switch pairs at distance %d in a D=36 topology", l)
		}
		for _, pr := range pairs {
			dist, _ := g.BFSFrom(pr[0])
			if dist[pr[1]] != l {
				t.Fatalf("pair %v at distance %d, want %d", pr, dist[pr[1]], l)
			}
		}
	}
}
