package wire

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/hash"
)

// sampleBatch builds a stream shaped like a real sink tap: a few flows,
// monotone-ish packet IDs, constant path length, digests confined to a
// 16-bit budget.
func sampleBatch(n int) []core.PacketDigest {
	rng := hash.NewRNG(42)
	batch := make([]core.PacketDigest, n)
	for i := range batch {
		batch[i] = core.PacketDigest{
			Flow:    core.FlowKey(uint64(i%5)*2654435761 + 1),
			PktID:   uint64(i)*3 + rng.Uint64()%3,
			PathLen: 5 + i%3,
			Digest:  rng.Uint64() & 0xFFFF,
		}
	}
	return batch
}

func TestRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 256, 4096} {
		batch := sampleBatch(n)
		data, err := Marshal(batch)
		if err != nil {
			t.Fatalf("n=%d: marshal: %v", n, err)
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("n=%d: unmarshal: %v", n, err)
		}
		if len(got) != len(batch) {
			t.Fatalf("n=%d: got %d packets, want %d", n, len(got), len(batch))
		}
		for i := range batch {
			if got[i] != batch[i] {
				t.Fatalf("n=%d: packet %d = %+v, want %+v", n, i, got[i], batch[i])
			}
		}
	}
}

func TestRoundTripExtremes(t *testing.T) {
	batch := []core.PacketDigest{
		{Flow: 0, PktID: 0, PathLen: 1, Digest: 0},
		{Flow: ^core.FlowKey(0), PktID: ^uint64(0), PathLen: MaxPathLen, Digest: ^uint64(0)},
		{Flow: 1, PktID: 1, PathLen: 1, Digest: 1},
		{Flow: ^core.FlowKey(0) - 1, PktID: 2, PathLen: 64, Digest: 1<<63 + 7},
	}
	data, err := Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if got[i] != batch[i] {
			t.Fatalf("packet %d = %+v, want %+v", i, got[i], batch[i])
		}
	}
}

func TestCompactness(t *testing.T) {
	// 16-bit-budget digests for one flow should cost only a few bytes per
	// packet on the wire — far below the 8-byte raw digest alone.
	const n = 1024
	batch := make([]core.PacketDigest, n)
	for i := range batch {
		batch[i] = core.PacketDigest{Flow: 7, PktID: uint64(1000 + i), PathLen: 12,
			Digest: uint64(i) & 0xFFFF}
	}
	data, err := Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	perPkt := float64(len(data)) / n
	if perPkt > 8 {
		t.Fatalf("wire cost %.1f B/pkt, want <= 8 (raw struct is 32)", perPkt)
	}
}

func TestAppendFormsReuseBuffers(t *testing.T) {
	batch := sampleBatch(300)
	buf, err := AppendMarshal(make([]byte, 0, 4096), batch)
	if err != nil {
		t.Fatal(err)
	}
	pkts := make([]core.PacketDigest, 0, 512)
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = AppendMarshal(buf[:0], batch)
		if err != nil {
			t.Fatal(err)
		}
		pkts, err = AppendUnmarshal(pkts[:0], buf)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("append round trip allocates %.0f times per run, want 0", allocs)
	}
}

func TestMarshalRejectsBadPathLen(t *testing.T) {
	for _, k := range []int{0, -1, MaxPathLen + 1} {
		if _, err := Marshal([]core.PacketDigest{{PathLen: k}}); err == nil {
			t.Fatalf("marshal accepted path length %d", k)
		}
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	valid, err := Marshal(sampleBatch(9))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"short header":   valid[:3],
		"bad magic":      append([]byte{'X', 'D'}, valid[2:]...),
		"bad version":    append([]byte{'P', 'D', 99}, valid[3:]...),
		"huge count":     {'P', 'D', Version, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
		"trailing bytes": append(append([]byte(nil), valid...), 0),
		"zero path len":  {'P', 'D', Version, 1, 0, 0, 0, 0},
		"nonminimal":     {'P', 'D', Version, 1, 0x80, 0x00, 0, 0, 0},
	}
	for i := 1; i < len(valid); i++ {
		cases[fmt.Sprintf("truncated@%d", i)] = valid[:i]
	}
	for name, data := range cases {
		if bytes.Equal(data, valid) {
			continue
		}
		pkts, err := Unmarshal(data)
		if err == nil {
			t.Errorf("%s: unmarshal accepted %x", name, data)
		}
		if pkts != nil {
			t.Errorf("%s: unmarshal returned packets alongside an error", name)
		}
	}
}

func TestUnmarshalErrorLeavesDstUnextended(t *testing.T) {
	dst := make([]core.PacketDigest, 2, 8)
	out, err := AppendUnmarshal(dst, []byte{'P', 'D', Version, 3, 0, 0, 2, 0})
	if err == nil {
		t.Fatal("want error for truncated batch")
	}
	if len(out) != len(dst) {
		t.Fatalf("dst grew to %d on error, want %d", len(out), len(dst))
	}
}
