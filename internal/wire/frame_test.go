package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestFrameRoundtrip(t *testing.T) {
	payloads := [][]byte{
		{0x01},
		[]byte("hello frames"),
		bytes.Repeat([]byte{0xAB}, 4096),
	}
	var stream []byte
	for _, p := range payloads {
		var err error
		stream, err = AppendFrame(stream, p)
		if err != nil {
			t.Fatal(err)
		}
	}

	// Slice decoding walks the concatenated frames.
	rest := stream
	for i, want := range payloads {
		payload, r, err := DecodeFrame(rest, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(payload, want) {
			t.Fatalf("frame %d: payload %x, want %x", i, payload, want)
		}
		rest = r
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes after the last frame", len(rest))
	}

	// Stream decoding agrees.
	fr := NewFrameReader(bytes.NewReader(stream), 0)
	for i, want := range payloads {
		payload, err := fr.Next()
		if err != nil {
			t.Fatalf("stream frame %d: %v", i, err)
		}
		if !bytes.Equal(payload, want) {
			t.Fatalf("stream frame %d: payload mismatch", i)
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at the clean stream end, got %v", err)
	}
}

func TestFrameErrors(t *testing.T) {
	good, err := AppendFrame(nil, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}

	corrupt := append([]byte(nil), good...)
	corrupt[len(corrupt)-1] ^= 0xFF
	zero := binary.LittleEndian.AppendUint32(nil, 0)
	zero = binary.LittleEndian.AppendUint32(zero, 0)
	huge := binary.LittleEndian.AppendUint32(nil, 1<<30)
	huge = binary.LittleEndian.AppendUint32(huge, 0)

	cases := []struct {
		name  string
		data  []byte
		max   int
		want  string
		short bool
	}{
		{name: "short header", data: good[:FrameHeaderLen-1], short: true},
		{name: "short payload", data: good[:len(good)-1], short: true},
		{name: "checksum", data: corrupt, want: "checksum"},
		{name: "zero length", data: zero, want: "zero-length"},
		{name: "above cap", data: huge, want: "above cap"},
		{name: "tight cap", data: good, max: 3, want: "above cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := DecodeFrame(tc.data, tc.max)
			if tc.short {
				if err != ErrShortFrame {
					t.Fatalf("want ErrShortFrame, got %v", err)
				}
			} else if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want %q error, got %v", tc.want, err)
			}

			// The stream reader rejects the same inputs (truncation shows
			// up as unexpected-EOF wrapping).
			reader := NewFrameReader(bytes.NewReader(tc.data), tc.max)
			if _, err := reader.Next(); err == nil {
				t.Fatal("FrameReader accepted a bad frame")
			}
		})
	}
}

func TestAppendFrameRejectsBadPayloads(t *testing.T) {
	if _, err := AppendFrame(nil, nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := AppendFrame(nil, make([]byte, DefaultMaxFramePayload+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestFrameReaderReusesBuffer(t *testing.T) {
	var stream []byte
	for i := 0; i < 64; i++ {
		var err error
		stream, err = AppendFrame(stream, bytes.Repeat([]byte{byte(i)}, 512))
		if err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(bytes.NewReader(stream), 0)
	if _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(32, func() {
		if _, err := fr.Next(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state Next allocates %.1f times per frame, want 0", allocs)
	}
}

func TestHelloRoundtrip(t *testing.T) {
	cases := []Hello{
		{},
		{Exporter: 7, PlanHash: 0xDEADBEEF, Name: "tor-3-2"},
		{Exporter: 9, PlanHash: 0xDEADBEEF, Epoch: 42, Name: "fleet-member"},
		{Exporter: ^uint64(0), PlanHash: ^uint64(0), Epoch: ^uint64(0), Name: strings.Repeat("x", MaxExporterName)},
		{Exporter: 4, PlanHash: 0xBEEF, Name: "tor-1-1", Tenant: "team-a"},
		{Exporter: 5, Epoch: 7, Tenant: strings.Repeat("t", MaxTenantName)},
	}
	for _, h := range cases {
		data, err := AppendHello(nil, h)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := DecodeHello(append(data, 0xEE)) // trailing byte belongs to the next layer
		if err != nil {
			t.Fatal(err)
		}
		if n != len(data) {
			t.Fatalf("consumed %d bytes, want %d", n, len(data))
		}
		if got != h {
			t.Fatalf("decoded %+v, want %+v", got, h)
		}
		stream, err := ReadHello(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if stream != h {
			t.Fatalf("stream-decoded %+v, want %+v", stream, h)
		}
	}
}

// TestHelloVersioning pins the encoding's version split: a tenant-less
// Hello must stay byte-identical to the pre-tenancy version-2 format (an
// upgraded exporter fleet talking to an old collector, and vice versa),
// and a tenant Hello is version 3 with the label after the name.
func TestHelloVersioning(t *testing.T) {
	v2, err := AppendHello(nil, Hello{Exporter: 1, Name: "sw"})
	if err != nil {
		t.Fatal(err)
	}
	if v2[4] != 2 {
		t.Fatalf("tenant-less Hello encodes version %d, want 2", v2[4])
	}
	if len(v2) != helloFixedLen+2 {
		t.Fatalf("v2 Hello length %d, want %d", len(v2), helloFixedLen+2)
	}
	v3, err := AppendHello(nil, Hello{Exporter: 1, Name: "sw", Tenant: "team-a"})
	if err != nil {
		t.Fatal(err)
	}
	if v3[4] != HandshakeVersion {
		t.Fatalf("tenant Hello encodes version %d, want %d", v3[4], HandshakeVersion)
	}
	if !bytes.Equal(v3[5:helloFixedLen+2], v2[5:]) {
		t.Fatal("v3 Hello does not extend the v2 layout")
	}
	if got := string(v3[helloFixedLen+3:]); got != "team-a" {
		t.Fatalf("v3 tenant tail %q, want %q", got, "team-a")
	}
	// Every proper prefix of a v3 Hello is ErrShortFrame — the tenant
	// tail must look truncated, never silently default-tenant.
	for i := 0; i < len(v3); i++ {
		if _, _, err := DecodeHello(v3[:i]); err != ErrShortFrame {
			t.Fatalf("prefix %d/%d: want ErrShortFrame, got %v", i, len(v3), err)
		}
	}
	// A v3 Hello claiming an empty tenant is non-canonical (the empty
	// tenant's encoding is v2) and must be rejected, not decoded.
	empty := append(append([]byte(nil), v2...), 0)
	empty[4] = HandshakeVersion
	if _, _, err := DecodeHello(empty); err == nil || !strings.Contains(err.Error(), "empty tenant") {
		t.Fatalf("v3 empty tenant: want rejection, got %v", err)
	}
	if _, err := ReadHello(bytes.NewReader(empty)); err == nil {
		t.Fatal("ReadHello accepted a v3 Hello with an empty tenant")
	}
	badTenant := append(append([]byte(nil), v3...), 0)
	copy(badTenant[helloFixedLen+3:], "team\x07a")
	if _, _, err := DecodeHello(badTenant[:len(v3)]); err == nil || !strings.Contains(err.Error(), "printable") {
		t.Fatalf("unprintable tenant: want rejection, got %v", err)
	}
	if _, err := AppendHello(nil, Hello{Tenant: strings.Repeat("y", MaxTenantName+1)}); err == nil {
		t.Fatal("oversized tenant accepted on encode")
	}
	if _, err := AppendHello(nil, Hello{Tenant: "bad\ttenant"}); err == nil {
		t.Fatal("unprintable tenant accepted on encode")
	}
}

func TestHelloErrors(t *testing.T) {
	good, err := AppendHello(nil, Hello{Exporter: 1, Name: "sw"})
	if err != nil {
		t.Fatal(err)
	}
	badMagic := append([]byte(nil), good...)
	badMagic[0] = 'X'
	badVersion := append([]byte(nil), good...)
	badVersion[4] = 99
	longName := append([]byte(nil), good...)
	longName[helloFixedLen-1] = MaxExporterName + 1
	unprintable := append([]byte(nil), good...)
	unprintable[helloFixedLen] = 0x07

	for _, tc := range []struct {
		name string
		data []byte
		want string
	}{
		{"magic", badMagic, "magic"},
		{"version", badVersion, "version"},
		{"name cap", longName, "above cap"},
		{"unprintable name", unprintable, "printable"},
	} {
		if _, _, err := DecodeHello(tc.data); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: want %q error, got %v", tc.name, tc.want, err)
		}
	}
	if _, _, err := DecodeHello(good[:10]); err != ErrShortFrame {
		t.Fatalf("truncated hello: want ErrShortFrame, got %v", err)
	}
	if _, err := AppendHello(nil, Hello{Name: strings.Repeat("y", MaxExporterName+1)}); err == nil {
		t.Fatal("oversized name accepted on encode")
	}
	if err := AckError(AckOK); err != nil {
		t.Fatalf("AckOK maps to %v", err)
	}
	for _, code := range []byte{AckPlanMismatch, AckRejected, AckEpochMismatch, 77} {
		if err := AckError(code); err == nil {
			t.Fatalf("ack code %d maps to nil error", code)
		}
	}
}

// TestFramedBatchEndToEnd drives a digest batch through the full stream
// stack: Marshal → frame → FrameReader → Unmarshal.
func TestFramedBatchEndToEnd(t *testing.T) {
	batch := sampleBatch(300)
	payload, err := Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	framed, err := AppendFrame(nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(bytes.NewReader(framed), 0)
	got, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Unmarshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(batch) {
		t.Fatalf("decoded %d packets, want %d", len(decoded), len(batch))
	}
	for i := range batch {
		if decoded[i] != (core.PacketDigest{Flow: batch[i].Flow, PktID: batch[i].PktID,
			PathLen: batch[i].PathLen, Digest: batch[i].Digest}) {
			t.Fatalf("packet %d: %+v != %+v", i, decoded[i], batch[i])
		}
	}
}
