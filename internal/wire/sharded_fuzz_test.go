package wire

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hash"
)

// FuzzUnmarshalSharded pins the fused decode-and-shard pass to the unfused
// reference — AppendUnmarshal followed by a separate hash.ShardOf routing
// pass — over arbitrary inputs and shard counts. The contract:
//
//   - both decoders accept exactly the same byte strings,
//   - on rejection the error text is identical (the collector logs it when
//     it kills a connection, and the message must not depend on the path),
//   - on success every shard's staged sequence matches the reference,
//     in order, and the returned counts agree.
//
// The committed seed corpus under testdata/fuzz/FuzzUnmarshalSharded covers
// valid batches across shard counts, truncations, and every header error
// class; `go test -run='^Fuzz'` replays it in CI.
func FuzzUnmarshalSharded(f *testing.F) {
	seed := func(shards uint8, batch []core.PacketDigest) {
		data, err := Marshal(batch)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(shards, data)
		if len(data) > headerLen {
			f.Add(shards, data[:len(data)-1]) // truncated record
			f.Add(shards, append(append([]byte(nil), data...), 0x00))
		}
	}
	seed(1, nil)
	seed(4, []core.PacketDigest{{Flow: 7, PktID: 99, PathLen: 12, Digest: 0xABCD}})
	seed(16, sampleBatch(64))
	seed(3, []core.PacketDigest{
		{Flow: ^core.FlowKey(0), PktID: ^uint64(0), PathLen: MaxPathLen, Digest: ^uint64(0)},
		{Flow: 0, PktID: 0, PathLen: 1, Digest: 0},
	})
	f.Add(uint8(0), []byte{})
	f.Add(uint8(2), []byte{'P', 'D', Version, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add(uint8(2), []byte{'P', 'D', Version, 1, 0x80, 0x00, 0, 0, 0})
	f.Add(uint8(8), []byte{'X', 'D', Version, 0})

	f.Fuzz(func(t *testing.T, shards uint8, data []byte) {
		n := int(shards%32) + 1 // 1..32 destinations; zero is tested separately
		flat, refErr := AppendUnmarshal(nil, data)
		dsts := make([][]core.PacketDigest, n)
		count, gotErr := AppendUnmarshalSharded(dsts, data)
		if refErr != nil {
			if gotErr == nil {
				t.Fatalf("reference rejected (%v), fused accepted", refErr)
			}
			if refErr.Error() != gotErr.Error() {
				t.Fatalf("error text diverged:\n reference %q\n fused     %q", refErr, gotErr)
			}
			return
		}
		if gotErr != nil {
			t.Fatalf("reference accepted, fused rejected: %v", gotErr)
		}
		if count != len(flat) {
			t.Fatalf("fused count %d, reference decoded %d packets", count, len(flat))
		}
		want := make([][]core.PacketDigest, n)
		for i := range flat {
			sh := hash.ShardOf(uint64(flat[i].Flow), uint64(n))
			want[sh] = append(want[sh], flat[i])
		}
		for sh := range dsts {
			if len(dsts[sh]) != len(want[sh]) {
				t.Fatalf("shard %d/%d: fused staged %d packets, reference %d",
					sh, n, len(dsts[sh]), len(want[sh]))
			}
			for i := range dsts[sh] {
				if dsts[sh][i] != want[sh][i] {
					t.Fatalf("shard %d/%d packet %d: fused %+v, reference %+v",
						sh, n, i, dsts[sh][i], want[sh][i])
				}
			}
		}
	})
}
