package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
)

// Fleet-resize hand-off payloads. During a resize, the collector that is
// losing a flow drains the flow's complete recording state (decoder,
// sketches, series — see core.Recording.AppendFlowState) and ships it to
// the flow's new home inside ordinary CRC-framed messages (AppendFrame),
// on an ordinary handshaked session at the *new* epoch. A hand-off
// payload is distinguished from a digest payload by its magic — 'PH'
// instead of 'PD' — so a collector session sniffs the first two payload
// bytes and dispatches; everything else about framing, checksums, and
// strict canonical varints is shared with the digest path.
//
// Layout (after the frame header):
//
//	magic 'P','H' | version (1) | count uvarint |
//	  count × { flow uvarint | stateLen uvarint | state bytes }
//
// The state bytes are opaque to this layer (core owns that codec).

// HandoffVersion is the hand-off payload format version.
const HandoffVersion = 1

var handoffMagic = [2]byte{'P', 'H'}

// NudgeReroute is the single byte a collector writes back on a live
// exporter session when the cluster epoch moves past the session's. The
// server→exporter direction is otherwise unused after the handshake ack,
// so the byte is an unambiguous signal: "a newer fleet map exists — flush,
// close cleanly, fetch the map, and re-handshake at the new epoch."
// Receiving it is the recoverable form of AckEpochMismatch: the exporter
// keeps every unsent packet and re-routes it under the new partitioning.
const NudgeReroute byte = 0x52 // 'R'

// FlowState is one flow's serialized recording state in a hand-off
// payload.
type FlowState struct {
	Flow  core.FlowKey
	State []byte
}

// IsHandoffPayload reports whether a frame payload is a hand-off batch
// (magic 'PH') rather than a digest batch (magic 'PD').
func IsHandoffPayload(data []byte) bool {
	return len(data) >= 2 && data[0] == handoffMagic[0] && data[1] == handoffMagic[1]
}

// AppendMarshalHandoff appends the encoded hand-off payload for batch to
// dst and returns the extended slice.
func AppendMarshalHandoff(dst []byte, batch []FlowState) []byte {
	size := 3 + uvarintLen(uint64(len(batch)))
	for i := range batch {
		size += uvarintLen(uint64(batch[i].Flow))
		size += uvarintLen(uint64(len(batch[i].State)))
		size += len(batch[i].State)
	}
	if cap(dst)-len(dst) < size {
		grown := make([]byte, len(dst), len(dst)+size)
		copy(grown, dst)
		dst = grown
	}
	dst = append(dst, handoffMagic[0], handoffMagic[1], HandoffVersion)
	dst = binary.AppendUvarint(dst, uint64(len(batch)))
	for i := range batch {
		dst = binary.AppendUvarint(dst, uint64(batch[i].Flow))
		dst = binary.AppendUvarint(dst, uint64(len(batch[i].State)))
		dst = append(dst, batch[i].State...)
	}
	return dst
}

// AppendUnmarshalHandoff decodes a hand-off payload, appending the flow
// states to dst. The decode is strict: bad magic, wrong version,
// non-canonical varints, counts that exceed the bytes present, and
// trailing bytes are all errors. The returned State slices alias data.
func AppendUnmarshalHandoff(dst []FlowState, data []byte) ([]FlowState, error) {
	if len(data) < 3 {
		return dst, fmt.Errorf("wire: %d-byte hand-off shorter than the 3-byte header", len(data))
	}
	if data[0] != handoffMagic[0] || data[1] != handoffMagic[1] {
		return dst, fmt.Errorf("wire: bad hand-off magic %#02x%02x", data[0], data[1])
	}
	if data[2] != HandoffVersion {
		return dst, fmt.Errorf("wire: unsupported hand-off version %d (have %d)", data[2], HandoffVersion)
	}
	rest := data[3:]
	count, n, err := uvarint(rest)
	if err != nil {
		return dst, fmt.Errorf("wire: hand-off count: %w", err)
	}
	rest = rest[n:]
	// Each entry needs at least two varint bytes.
	if count > uint64(len(rest)/2)+1 {
		return dst, fmt.Errorf("wire: hand-off count %d exceeds the %d remaining bytes", count, len(rest))
	}
	for i := uint64(0); i < count; i++ {
		flow, n, err := uvarint(rest)
		if err != nil {
			return dst, fmt.Errorf("wire: hand-off flow %d: %w", i, err)
		}
		rest = rest[n:]
		stateLen, n, err := uvarint(rest)
		if err != nil {
			return dst, fmt.Errorf("wire: hand-off flow %d state length: %w", i, err)
		}
		rest = rest[n:]
		if stateLen > uint64(len(rest)) {
			return dst, fmt.Errorf("wire: hand-off flow %d claims %d state bytes, %d left", i, stateLen, len(rest))
		}
		dst = append(dst, FlowState{Flow: core.FlowKey(flow), State: rest[:stateLen]})
		rest = rest[stateLen:]
	}
	if len(rest) != 0 {
		return dst, fmt.Errorf("wire: %d trailing bytes after the last hand-off entry", len(rest))
	}
	return dst, nil
}
