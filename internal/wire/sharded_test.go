package wire

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hash"
)

// referenceShard is the unfused two-pass path the fused decoder replaces:
// a whole-batch AppendUnmarshal followed by a separate routing pass. The
// fused decoder must be indistinguishable from it.
func referenceShard(shards int, data []byte) ([][]core.PacketDigest, int, error) {
	flat, err := AppendUnmarshal(nil, data)
	if err != nil {
		return nil, 0, err
	}
	dsts := make([][]core.PacketDigest, shards)
	for i := range flat {
		sh := hash.ShardOf(uint64(flat[i].Flow), uint64(shards))
		dsts[sh] = append(dsts[sh], flat[i])
	}
	return dsts, len(flat), nil
}

func TestUnmarshalShardedParity(t *testing.T) {
	for _, n := range []int{0, 1, 7, 255, 4096} {
		batch := sampleBatch(n)
		data, err := Marshal(batch)
		if err != nil {
			t.Fatalf("n=%d: marshal: %v", n, err)
		}
		for _, shards := range []int{1, 2, 3, 4, 16} {
			want, wantN, err := referenceShard(shards, data)
			if err != nil {
				t.Fatalf("n=%d shards=%d: reference: %v", n, shards, err)
			}
			dsts := make([][]core.PacketDigest, shards)
			gotN, err := AppendUnmarshalSharded(dsts, data)
			if err != nil {
				t.Fatalf("n=%d shards=%d: fused: %v", n, shards, err)
			}
			if gotN != wantN {
				t.Fatalf("n=%d shards=%d: fused count %d, reference %d", n, shards, gotN, wantN)
			}
			for sh := range dsts {
				if len(dsts[sh]) != len(want[sh]) {
					t.Fatalf("n=%d shard %d/%d: fused staged %d packets, reference %d",
						n, sh, shards, len(dsts[sh]), len(want[sh]))
				}
				for i := range dsts[sh] {
					if dsts[sh][i] != want[sh][i] {
						t.Fatalf("n=%d shard %d/%d packet %d: fused %+v, reference %+v",
							n, sh, shards, i, dsts[sh][i], want[sh][i])
					}
				}
			}
		}
	}
}

// TestUnmarshalShardedAppends pins the append contract: staged packets
// already in dsts survive, and recycled capacity is reused (the
// steady-state zero-allocation property the per-connection decode path
// relies on).
func TestUnmarshalShardedAppends(t *testing.T) {
	batch := sampleBatch(64)
	data, err := Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	const shards = 4
	dsts := make([][]core.PacketDigest, shards)
	marker := core.PacketDigest{Flow: 12345, PktID: 1, PathLen: 3}
	dsts[2] = append(dsts[2], marker)
	if _, err := AppendUnmarshalSharded(dsts, data); err != nil {
		t.Fatal(err)
	}
	if dsts[2][0] != marker {
		t.Fatalf("pre-staged packet clobbered: %+v", dsts[2][0])
	}
	// Second decode into truncated-but-capacious buffers must not grow.
	for i := range dsts {
		dsts[i] = dsts[i][:0]
	}
	caps := make([]int, shards)
	for i := range dsts {
		caps[i] = cap(dsts[i])
	}
	if _, err := AppendUnmarshalSharded(dsts, data); err != nil {
		t.Fatal(err)
	}
	for i := range dsts {
		if cap(dsts[i]) != caps[i] {
			t.Fatalf("shard %d grew from cap %d to %d on a warm decode", i, caps[i], cap(dsts[i]))
		}
	}
}

// TestUnmarshalShardedErrorParity feeds every error class through both
// decoders and demands the identical error string — the collector logs
// and kills a connection on either path, and the messages must not
// depend on which decoder it ran.
func TestUnmarshalShardedErrorParity(t *testing.T) {
	good, err := Marshal(sampleBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		{},
		{'P', 'D'},
		{'X', 'D', Version, 0},
		{'P', 'D', 99, 0},
		{'P', 'D', Version, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
		{'P', 'D', Version, 1, 0x80, 0x00, 0, 0, 0},
		{'P', 'D', Version, 1, 0x80, 0x81},
		good[:len(good)-1],
		append(append([]byte(nil), good...), 0x00),
	}
	for ci, data := range cases {
		_, refErr := AppendUnmarshal(nil, data)
		dsts := make([][]core.PacketDigest, 3)
		_, gotErr := AppendUnmarshalSharded(dsts, data)
		switch {
		case refErr == nil && gotErr == nil:
		case refErr == nil || gotErr == nil:
			t.Fatalf("case %d: reference err %v, fused err %v", ci, refErr, gotErr)
		case refErr.Error() != gotErr.Error():
			t.Fatalf("case %d: error text diverged:\n reference %q\n fused     %q", ci, refErr, gotErr)
		}
	}
	if _, err := AppendUnmarshalSharded(nil, good); err == nil {
		t.Fatal("no destinations accepted")
	}
}
