package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/core"
)

// TestRegenerateShardedFuzzCorpus rewrites the committed seed corpus under
// testdata/fuzz/FuzzUnmarshalSharded from the same golden encoder the
// fuzzer seeds with. It is a no-op unless PINT_REGEN_CORPUS=1 — run it
// after a deliberate format change, then commit the result; CI replays
// these files on every PR (go test -run='^Fuzz'), so a format drift that
// breaks old corpora fails loudly.
func TestRegenerateShardedFuzzCorpus(t *testing.T) {
	if os.Getenv("PINT_REGEN_CORPUS") != "1" {
		t.Skip("set PINT_REGEN_CORPUS=1 to rewrite testdata/fuzz/")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzUnmarshalSharded")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(seedName string, shards uint8, data []byte) {
		content := fmt.Sprintf("go test fuzz v1\nbyte(%q)\n[]byte(%s)\n",
			rune(shards), strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, seedName), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mustMarshal := func(batch []core.PacketDigest) []byte {
		data, err := Marshal(batch)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	one := mustMarshal([]core.PacketDigest{{Flow: 7, PktID: 99, PathLen: 12, Digest: 0xABCD}})
	many := mustMarshal(sampleBatch(64))
	extreme := mustMarshal([]core.PacketDigest{
		{Flow: ^core.FlowKey(0), PktID: ^uint64(0), PathLen: MaxPathLen, Digest: ^uint64(0)},
		{Flow: 0, PktID: 0, PathLen: 1, Digest: 0},
	})
	write("seed-empty-batch", 1, mustMarshal(nil))
	write("seed-one-packet", 4, one)
	write("seed-many-packets", 16, many)
	write("seed-many-truncated", 16, many[:len(many)-1])
	write("seed-many-trailing", 16, append(append([]byte(nil), many...), 0x00))
	write("seed-extreme-values", 3, extreme)
	write("seed-empty-input", 0, nil)
	write("seed-hostile-count", 2, []byte{'P', 'D', Version, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	write("seed-nonminimal-varint", 2, []byte{'P', 'D', Version, 1, 0x80, 0x00, 0, 0, 0})
	write("seed-bad-magic", 8, []byte{'X', 'D', Version, 0})
}
