package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestRegenerateShardedFuzzCorpus rewrites the committed seed corpus under
// testdata/fuzz/FuzzUnmarshalSharded from the same golden encoder the
// fuzzer seeds with. It is a no-op unless PINT_REGEN_CORPUS=1 — run it
// after a deliberate format change, then commit the result; CI replays
// these files on every PR (go test -run='^Fuzz'), so a format drift that
// breaks old corpora fails loudly.
func TestRegenerateShardedFuzzCorpus(t *testing.T) {
	if os.Getenv("PINT_REGEN_CORPUS") != "1" {
		t.Skip("set PINT_REGEN_CORPUS=1 to rewrite testdata/fuzz/")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzUnmarshalSharded")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(seedName string, shards uint8, data []byte) {
		content := fmt.Sprintf("go test fuzz v1\nbyte(%q)\n[]byte(%s)\n",
			rune(shards), strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, seedName), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mustMarshal := func(batch []core.PacketDigest) []byte {
		data, err := Marshal(batch)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	one := mustMarshal([]core.PacketDigest{{Flow: 7, PktID: 99, PathLen: 12, Digest: 0xABCD}})
	many := mustMarshal(sampleBatch(64))
	extreme := mustMarshal([]core.PacketDigest{
		{Flow: ^core.FlowKey(0), PktID: ^uint64(0), PathLen: MaxPathLen, Digest: ^uint64(0)},
		{Flow: 0, PktID: 0, PathLen: 1, Digest: 0},
	})
	write("seed-empty-batch", 1, mustMarshal(nil))
	write("seed-one-packet", 4, one)
	write("seed-many-packets", 16, many)
	write("seed-many-truncated", 16, many[:len(many)-1])
	write("seed-many-trailing", 16, append(append([]byte(nil), many...), 0x00))
	write("seed-extreme-values", 3, extreme)
	write("seed-empty-input", 0, nil)
	write("seed-hostile-count", 2, []byte{'P', 'D', Version, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	write("seed-nonminimal-varint", 2, []byte{'P', 'D', Version, 1, 0x80, 0x00, 0, 0, 0})
	write("seed-bad-magic", 8, []byte{'X', 'D', Version, 0})
}

// TestRegenerateHandshakeFuzzCorpus rewrites the committed seed corpus
// under testdata/fuzz/FuzzHandshake from the handshake encoder — the
// version-2 and version-3 forms plus the hostile shapes the decoder must
// refuse. Same protocol as the sharded regenerator above: no-op unless
// PINT_REGEN_CORPUS=1; rerun after a deliberate handshake change and
// commit the result so CI replays both wire versions on every PR.
func TestRegenerateHandshakeFuzzCorpus(t *testing.T) {
	if os.Getenv("PINT_REGEN_CORPUS") != "1" {
		t.Skip("set PINT_REGEN_CORPUS=1 to rewrite testdata/fuzz/")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzHandshake")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(seedName string, data []byte) {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, seedName), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mustHello := func(h Hello) []byte {
		data, err := AppendHello(nil, h)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	v2 := mustHello(Hello{Exporter: 3, PlanHash: 0x1234_5678_9ABC_DEF0, Epoch: 42, Name: "spine-0"})
	v3 := mustHello(Hello{Exporter: 5, PlanHash: 0xFEED_FACE, Epoch: 7, Name: "tor-1-1", Tenant: "team-a"})
	longest := mustHello(Hello{Exporter: ^uint64(0), PlanHash: ^uint64(0), Epoch: ^uint64(0),
		Name: strings.Repeat("n", MaxExporterName), Tenant: strings.Repeat("t", MaxTenantName)})
	write("seed-v2", v2)
	write("seed-v2-noname", mustHello(Hello{Exporter: 1}))
	write("seed-v3", v3)
	write("seed-v3-max-labels", longest)
	write("seed-v3-truncated-tenant", v3[:len(v3)-2])
	write("seed-v3-missing-tenant-len", v3[:helloFixedLen+7])
	// A v3 header claiming an empty tenant: non-canonical, must be refused.
	emptyTenant := append(append([]byte(nil), v2...), 0)
	emptyTenant[4] = HandshakeVersion
	write("seed-v3-empty-tenant", emptyTenant)
	write("seed-v1-refused", []byte{'P', 'I', 'N', 'T', 1, 0, 0, 0, 0, 0, 0, 0, 0})
	write("seed-trailing-garbage", append(append([]byte(nil), v3...), 0xAA, 0xBB))
}
