package wire

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// FuzzUnmarshal drives arbitrary byte streams through the strict decoder.
// The contract under fuzzing:
//
//   - Unmarshal never panics and never allocates disproportionately to its
//     input (the count-vs-remaining-bytes guard),
//   - on error it returns a nil slice,
//   - on success the format is canonical: re-marshaling the decoded batch
//     reproduces the input byte-for-byte, and decoding that again yields
//     the same packets (the encode side of the round trip).
//
// The committed seed corpus under testdata/fuzz/FuzzUnmarshal covers valid
// single/multi-packet batches, every header error class, truncations, and
// hostile counts; `go test -run='^Fuzz'` replays it in CI.
func FuzzUnmarshal(f *testing.F) {
	seed := func(batch []core.PacketDigest) {
		data, err := Marshal(batch)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		if len(data) > headerLen {
			f.Add(data[:len(data)-1]) // truncated record
			f.Add(append(append([]byte(nil), data...), 0x00))
		}
	}
	seed(nil)
	seed([]core.PacketDigest{{Flow: 7, PktID: 99, PathLen: 12, Digest: 0xABCD}})
	seed(sampleBatch(64))
	seed([]core.PacketDigest{
		{Flow: ^core.FlowKey(0), PktID: ^uint64(0), PathLen: MaxPathLen, Digest: ^uint64(0)},
		{Flow: 0, PktID: 0, PathLen: 1, Digest: 0},
	})
	f.Add([]byte{})
	f.Add([]byte{'P', 'D', Version, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add([]byte{'P', 'D', Version, 1, 0x80, 0x00, 0, 0, 0})
	f.Add([]byte{'X', 'D', Version, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		pkts, err := Unmarshal(data)
		if err != nil {
			if pkts != nil {
				t.Fatalf("error %v with non-nil packets", err)
			}
			return
		}
		for i := range pkts {
			if pkts[i].PathLen < 1 || pkts[i].PathLen > MaxPathLen {
				t.Fatalf("packet %d decoded with path length %d", i, pkts[i].PathLen)
			}
		}
		again, err := Marshal(pkts)
		if err != nil {
			t.Fatalf("re-marshal of a decoded batch failed: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("encoding not canonical:\n in  %x\n out %x", data, again)
		}
		second, err := Unmarshal(again)
		if err != nil {
			t.Fatalf("second decode failed: %v", err)
		}
		if len(second) != len(pkts) {
			t.Fatalf("second decode has %d packets, want %d", len(second), len(pkts))
		}
		for i := range pkts {
			if second[i] != pkts[i] {
				t.Fatalf("packet %d unstable across round trips", i)
			}
		}
	})
}
