package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/core"
)

// This file is the stream layer of the wire format: how marshaled digest
// batches travel over a byte stream (a TCP connection from an exporting
// switch to the collector daemon) rather than sitting in one buffer.
//
// # Frame layout
//
// A frame wraps one payload (normally one Marshal()ed digest batch):
//
//	length uint32 LE  payload length in bytes, 1..maxPayload
//	crc    uint32 LE  CRC-32C (Castagnoli) of the payload
//	payload [length]byte
//
// The fixed-width header lets a reader issue exact-size reads, and the
// checksum turns any stream corruption into a connection-level error
// before a single corrupt digest reaches the sink. Decoding is strict and
// bounded: a length of zero, a length above the reader's payload cap, or
// a checksum mismatch is an error, and nothing larger than the cap is
// ever allocated, so a hostile header cannot balloon collector memory.
//
// # Session handshake
//
// A connection opens with one Hello record from the exporter:
//
//	magic    [4]byte  'P' 'I' 'N' 'T'
//	version  byte     2 (no tenant) or 3 (tenant label follows the name)
//	exporter uint64 LE  exporter (switch) ID
//	planHash uint64 LE  Engine.PlanHash() of the exporter's compiled plan
//	epoch    uint64 LE  cluster partitioning epoch (0 for standalone)
//	nameLen  byte     0..MaxExporterName
//	name     [nameLen]byte  printable ASCII label
//	(v3 only)
//	tenantLen byte    1..MaxTenantName
//	tenant   [tenantLen]byte  printable ASCII QoS tenant
//
// and the collector answers with a single ack byte (AckOK or a reject
// code). The plan hash is the implicit-coordination guard of §4.1 made
// explicit on the wire: digests are meaningless under a different
// execution plan, so a mismatched exporter is refused at session setup
// instead of silently polluting every query it touches. The epoch plays
// the same role for a federated fleet's flow partitioning: when the
// fleet membership changes, the operator bumps the epoch everywhere, and
// an exporter still routing flows under the old partitioning map is
// refused instead of splitting a flow's digests across two collectors.

// FrameHeaderLen is the fixed frame header size: length + crc.
const FrameHeaderLen = 8

// DefaultMaxFramePayload bounds frame payloads unless the reader/writer
// chooses its own cap. A digest record is ~4-6 bytes, so 1 MiB holds
// ~200k packets — far beyond any sane batch.
const DefaultMaxFramePayload = 1 << 20

// crcTable is the Castagnoli table shared by all frame writers/readers.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends one frame wrapping payload to dst and returns the
// extended slice. The payload must be non-empty and at most
// DefaultMaxFramePayload bytes (writers and readers share the default cap
// unless both ends agree on another).
func AppendFrame(dst, payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return dst, fmt.Errorf("wire: empty frame payload")
	}
	if len(payload) > DefaultMaxFramePayload {
		return dst, fmt.Errorf("wire: frame payload %d bytes above cap %d",
			len(payload), DefaultMaxFramePayload)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...), nil
}

// AppendMarshalFrame appends one frame whose payload is the marshaled
// batch — header, payload, and checksum built in dst in a single pass,
// with no intermediate payload buffer or copy (the allocation AppendFrame
// over a separate AppendMarshal buffer cannot avoid). It reserves the
// 8-byte header, marshals the batch in place after it, then backfills the
// length and the CRC-32C of the payload bytes where they already sit.
// On error dst is returned nil and unsent, like AppendMarshal.
func AppendMarshalFrame(dst []byte, batch []core.PacketDigest) ([]byte, error) {
	start := len(dst)
	var header [FrameHeaderLen]byte
	out, err := AppendMarshal(append(dst, header[:]...), batch)
	if err != nil {
		return nil, err
	}
	payload := out[start+FrameHeaderLen:]
	if len(payload) > DefaultMaxFramePayload {
		return nil, fmt.Errorf("wire: frame payload %d bytes above cap %d",
			len(payload), DefaultMaxFramePayload)
	}
	binary.LittleEndian.PutUint32(out[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[start+4:], crc32.Checksum(payload, crcTable))
	return out, nil
}

// DecodeFrame decodes the first frame of data, returning its payload
// (aliasing data) and the bytes after the frame. ErrShortFrame means data
// holds a valid prefix of a frame and more bytes are needed; any other
// error is fatal for the stream.
func DecodeFrame(data []byte, maxPayload int) (payload, rest []byte, err error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxFramePayload
	}
	if len(data) < FrameHeaderLen {
		return nil, data, ErrShortFrame
	}
	n := binary.LittleEndian.Uint32(data)
	sum := binary.LittleEndian.Uint32(data[4:])
	if n == 0 {
		return nil, data, fmt.Errorf("wire: zero-length frame")
	}
	if uint64(n) > uint64(maxPayload) {
		return nil, data, fmt.Errorf("wire: frame payload %d bytes above cap %d", n, maxPayload)
	}
	if uint64(len(data)-FrameHeaderLen) < uint64(n) {
		return nil, data, ErrShortFrame
	}
	payload = data[FrameHeaderLen : FrameHeaderLen+int(n)]
	if got := crc32.Checksum(payload, crcTable); got != sum {
		return nil, data, fmt.Errorf("wire: frame checksum %#08x, want %#08x", got, sum)
	}
	return payload, data[FrameHeaderLen+int(n):], nil
}

// ErrShortFrame reports that a buffer ends before the frame does: a
// stream reader should read more bytes, a bounded decoder should treat it
// as truncation.
var ErrShortFrame = fmt.Errorf("wire: truncated frame")

// FrameReader reads a stream of frames. The payload returned by Next is
// valid until the following Next call (the buffer is reused), which is
// exactly the lifetime the collector's decode-then-ingest loop needs.
type FrameReader struct {
	r      *bufio.Reader
	header [FrameHeaderLen]byte
	buf    []byte
	max    int
}

// NewFrameReader wraps r. maxPayload <= 0 means DefaultMaxFramePayload.
func NewFrameReader(r io.Reader, maxPayload int) *FrameReader {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxFramePayload
	}
	return &FrameReader{r: bufio.NewReader(r), max: maxPayload}
}

// Next reads one frame and returns its payload. io.EOF means the stream
// ended cleanly at a frame boundary; io.ErrUnexpectedEOF means it ended
// mid-frame; checksum and bound violations are their own errors. After
// any error the reader is spent.
func (fr *FrameReader) Next() ([]byte, error) {
	if _, err := io.ReadFull(fr.r, fr.header[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("wire: stream ended inside a frame header: %w", io.ErrUnexpectedEOF)
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(fr.header[:])
	sum := binary.LittleEndian.Uint32(fr.header[4:])
	if n == 0 {
		return nil, fmt.Errorf("wire: zero-length frame")
	}
	if uint64(n) > uint64(fr.max) {
		return nil, fmt.Errorf("wire: frame payload %d bytes above cap %d", n, fr.max)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	payload := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		// Keep the real cause (deadline, reset, …) unwrappable — the
		// collector's shutdown path distinguishes deadline unblocking
		// from genuine stream corruption. Only a bare EOF becomes
		// unexpected-EOF: the stream ended mid-frame.
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("wire: reading a %d-byte frame payload: %w", n, err)
	}
	if got := crc32.Checksum(payload, crcTable); got != sum {
		return nil, fmt.Errorf("wire: frame checksum %#08x, want %#08x", got, sum)
	}
	return payload, nil
}

// HandshakeVersion is the current session-handshake version byte.
// Version 2 added the cluster-epoch field; version 3 appends an optional
// tenant label after the name. Version-2 Hellos are still accepted (an
// absent tenant means the default tenant), so an existing exporter fleet
// keeps connecting across a collector upgrade; version-1 Hellos are
// refused (every exporter and collector in a deployment ship together).
const HandshakeVersion = 3

// handshakeVersionV2 is the tenant-less prior version, still accepted.
const handshakeVersionV2 = 2

// MaxExporterName bounds the Hello name field.
const MaxExporterName = 64

// MaxTenantName bounds the Hello tenant field.
const MaxTenantName = 64

// helloFixedLen is the byte length of a Hello before the variable name:
// magic (4) + version (1) + exporter (8) + planHash (8) + epoch (8) +
// nameLen (1).
const helloFixedLen = 30

var helloMagic = [4]byte{'P', 'I', 'N', 'T'}

// Hello is the session handshake an exporter sends when its connection
// opens.
type Hello struct {
	// Exporter identifies the sending switch/agent.
	Exporter uint64
	// PlanHash is core.Engine.PlanHash() of the exporter's compiled plan;
	// the collector refuses sessions whose hash differs from its own.
	PlanHash uint64
	// Epoch is the cluster partitioning epoch the exporter routes flows
	// under (0 for a standalone collector). A federated collector refuses
	// sessions whose epoch differs from its own, so an exporter holding a
	// stale fleet map cannot split a flow's digests across two homes.
	Epoch uint64
	// Name is an optional printable-ASCII label (metrics, logs).
	Name string
	// Tenant is the QoS tenant this session's digests are accounted and
	// admitted under. Empty means the default tenant, and — for wire
	// compatibility — selects the version-2 encoding, so a tenant-less
	// exporter is byte-identical to one shipped before tenancy existed.
	Tenant string
}

func validHelloLabel(field, name string, cap int) error {
	if len(name) > cap {
		return fmt.Errorf("wire: %s %d bytes above cap %d", field, len(name), cap)
	}
	for i := 0; i < len(name); i++ {
		if name[i] < 0x20 || name[i] > 0x7e {
			return fmt.Errorf("wire: %s byte %d (%#02x) outside printable ASCII", field, i, name[i])
		}
	}
	return nil
}

func validExporterName(name string) error {
	return validHelloLabel("exporter name", name, MaxExporterName)
}

func validTenantName(name string) error {
	return validHelloLabel("tenant name", name, MaxTenantName)
}

// AppendHello appends the handshake encoding of h to dst. The encoding
// is canonical: a Hello without a tenant is emitted as version 2 (the
// exact bytes a pre-tenancy exporter sends), and a tenant Hello as
// version 3 with the tenant label appended after the name. DecodeHello
// of either form re-encodes to the same bytes.
func AppendHello(dst []byte, h Hello) ([]byte, error) {
	if err := validExporterName(h.Name); err != nil {
		return dst, err
	}
	if err := validTenantName(h.Tenant); err != nil {
		return dst, err
	}
	version := byte(handshakeVersionV2)
	if h.Tenant != "" {
		version = HandshakeVersion
	}
	dst = append(dst, helloMagic[:]...)
	dst = append(dst, version)
	dst = binary.LittleEndian.AppendUint64(dst, h.Exporter)
	dst = binary.LittleEndian.AppendUint64(dst, h.PlanHash)
	dst = binary.LittleEndian.AppendUint64(dst, h.Epoch)
	dst = append(dst, byte(len(h.Name)))
	dst = append(dst, h.Name...)
	if version == HandshakeVersion {
		dst = append(dst, byte(len(h.Tenant)))
		dst = append(dst, h.Tenant...)
	}
	return dst, nil
}

// DecodeHello decodes a Hello from the front of data and returns the
// bytes consumed. Versions 2 (no tenant) and 3 (tenant label after the
// name) are accepted; a version-3 Hello must carry a non-empty tenant —
// the empty tenant's canonical encoding is version 2. ErrShortFrame
// means data is a valid prefix and more bytes are needed; other errors
// are fatal.
func DecodeHello(data []byte) (Hello, int, error) {
	var h Hello
	if len(data) < helloFixedLen {
		return h, 0, ErrShortFrame
	}
	if [4]byte(data[:4]) != helloMagic {
		return h, 0, fmt.Errorf("wire: bad handshake magic %q", data[:4])
	}
	version := data[4]
	if version != handshakeVersionV2 && version != HandshakeVersion {
		return h, 0, fmt.Errorf("wire: unsupported handshake version %d (have %d)", version, HandshakeVersion)
	}
	h.Exporter = binary.LittleEndian.Uint64(data[5:])
	h.PlanHash = binary.LittleEndian.Uint64(data[13:])
	h.Epoch = binary.LittleEndian.Uint64(data[21:])
	nameLen := int(data[29])
	if nameLen > MaxExporterName {
		return Hello{}, 0, fmt.Errorf("wire: exporter name %d bytes above cap %d", nameLen, MaxExporterName)
	}
	if len(data) < helloFixedLen+nameLen {
		return Hello{}, 0, ErrShortFrame
	}
	h.Name = string(data[helloFixedLen : helloFixedLen+nameLen])
	if err := validExporterName(h.Name); err != nil {
		return Hello{}, 0, err
	}
	n := helloFixedLen + nameLen
	if version == handshakeVersionV2 {
		return h, n, nil
	}
	if len(data) < n+1 {
		return Hello{}, 0, ErrShortFrame
	}
	tenantLen := int(data[n])
	if tenantLen == 0 {
		return Hello{}, 0, fmt.Errorf("wire: v3 handshake with empty tenant (canonical form is v2)")
	}
	if tenantLen > MaxTenantName {
		return Hello{}, 0, fmt.Errorf("wire: tenant name %d bytes above cap %d", tenantLen, MaxTenantName)
	}
	if len(data) < n+1+tenantLen {
		return Hello{}, 0, ErrShortFrame
	}
	h.Tenant = string(data[n+1 : n+1+tenantLen])
	if err := validTenantName(h.Tenant); err != nil {
		return Hello{}, 0, err
	}
	return h, n + 1 + tenantLen, nil
}

// ReadHello reads one Hello from a stream, either version.
func ReadHello(r io.Reader) (Hello, error) {
	var fixed [helloFixedLen]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return Hello{}, fmt.Errorf("wire: reading handshake: %w", err)
	}
	// Validate the fixed prefix before trusting its name length: garbage
	// (wrong magic, bad version, oversized name) must fail here rather
	// than stall the stream waiting for bytes a bogus length promises.
	if _, _, err := DecodeHello(fixed[:]); err != nil && err != ErrShortFrame {
		return Hello{}, err
	}
	nameLen := int(fixed[helloFixedLen-1])
	buf := make([]byte, helloFixedLen+nameLen, helloFixedLen+nameLen+1+MaxTenantName)
	copy(buf, fixed[:])
	if _, err := io.ReadFull(r, buf[helloFixedLen:]); err != nil {
		return Hello{}, fmt.Errorf("wire: reading handshake name: %w", err)
	}
	if fixed[4] == HandshakeVersion {
		// Version 3: one tenant-length byte, then the label. Bounds are
		// checked before the final read for the same stall-avoidance
		// reason as the name length above.
		buf = buf[:len(buf)+1]
		if _, err := io.ReadFull(r, buf[len(buf)-1:]); err != nil {
			return Hello{}, fmt.Errorf("wire: reading handshake tenant length: %w", err)
		}
		tenantLen := int(buf[len(buf)-1])
		if tenantLen == 0 || tenantLen > MaxTenantName {
			// Re-decode for the precise error message.
			_, _, err := DecodeHello(buf)
			if err == nil || err == ErrShortFrame {
				err = fmt.Errorf("wire: bad tenant length %d", tenantLen)
			}
			return Hello{}, err
		}
		tail := len(buf)
		buf = buf[:tail+tenantLen]
		if _, err := io.ReadFull(r, buf[tail:]); err != nil {
			return Hello{}, fmt.Errorf("wire: reading handshake tenant: %w", err)
		}
	}
	h, _, err := DecodeHello(buf)
	return h, err
}

// Session ack codes: the single byte the collector answers a Hello with.
const (
	// AckOK accepts the session; frames follow.
	AckOK byte = 0
	// AckPlanMismatch rejects a Hello whose plan hash differs from the
	// collector's engine.
	AckPlanMismatch byte = 2
	// AckRejected rejects a session for any other reason (shutdown in
	// progress, exporter limit).
	AckRejected byte = 3
	// AckEpochMismatch rejects a Hello whose cluster epoch differs from
	// the collector's — the exporter is partitioning flows under a stale
	// (or future) fleet map and must reload its configuration.
	AckEpochMismatch byte = 4
)

// ErrEpochMismatch is the sentinel inside an AckEpochMismatch refusal.
// It is a *recoverable* signal, not a fatal one: the fleet has moved to a
// new partitioning epoch, so the exporter should fetch the current fleet
// map, re-partition its in-flight buffers, and re-handshake at the new
// epoch (collector.Connect with a roster fetch does this automatically).
var ErrEpochMismatch = fmt.Errorf("wire: cluster-epoch mismatch")

// AckError maps a non-OK ack code to a descriptive error. An
// AckEpochMismatch error wraps ErrEpochMismatch so callers can
// errors.Is-detect the recoverable case.
func AckError(code byte) error {
	switch code {
	case AckOK:
		return nil
	case AckPlanMismatch:
		return fmt.Errorf("wire: collector rejected session: execution-plan hash mismatch")
	case AckRejected:
		return fmt.Errorf("wire: collector rejected session")
	case AckEpochMismatch:
		return fmt.Errorf("wire: collector rejected session: %w (stale fleet partitioning — fetch the new fleet map and re-handshake)", ErrEpochMismatch)
	default:
		return fmt.Errorf("wire: collector answered unknown ack code %d", code)
	}
}
