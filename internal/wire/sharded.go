package wire

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hash"
)

// This file is the fused decode-and-shard pass of the parallel collector
// ingest path: one unmarshal that lands every record directly in its
// flow's shard staging buffer, computing the flow→shard hash while the
// deltas are still in registers. Compared to AppendUnmarshal followed by
// a routing loop it eliminates the intermediate whole-batch slice and
// the second pass over the decoded packets — the two per-frame costs the
// single-ingester collector paid on every connection.

// AppendUnmarshalSharded decodes a marshaled batch, appending each packet
// to dsts[hash.ShardOf(flow, len(dsts))] — the same routing function
// pipeline.Sink uses — and returns the packet count. dsts must be
// non-empty; with a single destination the per-packet hash is skipped
// entirely (routing is the identity).
//
// The acceptance set and error text are exactly AppendUnmarshal's: both
// decoders share the header checks, the strict canonical-varint readers
// (with the same 1/2-byte fast paths), and the PathLen domain check, so a
// frame either decodes identically under both or fails identically under
// both (the property FuzzUnmarshalSharded pins). On error the contents of
// dsts are unspecified — packets decoded before the error may already be
// staged — so callers must discard the staged state (Stage.Reset, or a
// connection teardown) instead of ingesting it.
func AppendUnmarshalSharded(dsts [][]core.PacketDigest, data []byte) (int, error) {
	if len(dsts) == 0 {
		return 0, fmt.Errorf("wire: sharded unmarshal needs at least one destination")
	}
	if len(data) < headerLen {
		return 0, fmt.Errorf("wire: %d-byte input shorter than the %d-byte header", len(data), headerLen)
	}
	if data[0] != magic[0] || data[1] != magic[1] {
		return 0, fmt.Errorf("wire: bad magic %#02x%02x", data[0], data[1])
	}
	if data[2] != Version {
		return 0, fmt.Errorf("wire: unsupported version %d (have %d)", data[2], Version)
	}
	rest := data[3:]
	count, n, err := uvarint(rest)
	if err != nil {
		return 0, fmt.Errorf("wire: batch count: %w", err)
	}
	rest = rest[n:]
	// Bound the claimed count by the bytes present before staging
	// anything, so a hostile header cannot force large appends.
	if count > uint64(len(rest)/minRecordLen) {
		return 0, fmt.Errorf("wire: count %d exceeds the %d remaining bytes", count, len(rest))
	}
	mod := uint64(len(dsts))
	var prevFlow, prevID uint64
	var prevLen int64
	for i := uint64(0); i < count; i++ {
		dFlow, n, err := varintFast(rest)
		if err != nil {
			return 0, fmt.Errorf("wire: packet %d flow: %w", i, err)
		}
		rest = rest[n:]
		dID, n, err := varintFast(rest)
		if err != nil {
			return 0, fmt.Errorf("wire: packet %d id: %w", i, err)
		}
		rest = rest[n:]
		dLen, n, err := varintFast(rest)
		if err != nil {
			return 0, fmt.Errorf("wire: packet %d path length: %w", i, err)
		}
		rest = rest[n:]
		digest, n, err := uvarintFast(rest)
		if err != nil {
			return 0, fmt.Errorf("wire: packet %d digest: %w", i, err)
		}
		rest = rest[n:]
		prevFlow += uint64(dFlow)
		prevID += uint64(dID)
		prevLen += dLen
		if prevLen < 1 || prevLen > MaxPathLen {
			return 0, fmt.Errorf("wire: packet %d path length %d outside [1, %d]", i, prevLen, MaxPathLen)
		}
		shard := uint64(0)
		if mod > 1 {
			shard = hash.ShardOf(prevFlow, mod)
		}
		dsts[shard] = append(dsts[shard], core.PacketDigest{
			Flow:    core.FlowKey(prevFlow),
			PktID:   prevID,
			PathLen: int(prevLen),
			Digest:  digest,
		})
	}
	if len(rest) != 0 {
		return 0, fmt.Errorf("wire: %d trailing bytes after the last record", len(rest))
	}
	return int(count), nil
}
