package wire

import (
	"bytes"
	"testing"
)

func TestHandoffRoundTrip(t *testing.T) {
	batch := []FlowState{
		{Flow: 1, State: []byte{0xDE, 0xAD}},
		{Flow: 1<<40 | 7, State: nil},
		{Flow: 42, State: bytes.Repeat([]byte{0x5A}, 300)},
	}
	payload := AppendMarshalHandoff(nil, batch)
	if !IsHandoffPayload(payload) {
		t.Fatal("marshaled hand-off not recognized by the sniffer")
	}
	got, err := AppendUnmarshalHandoff(nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batch) {
		t.Fatalf("decoded %d states, want %d", len(got), len(batch))
	}
	for i := range batch {
		if got[i].Flow != batch[i].Flow {
			t.Fatalf("state %d: flow %d, want %d", i, got[i].Flow, batch[i].Flow)
		}
		if !bytes.Equal(got[i].State, batch[i].State) {
			t.Fatalf("state %d: bytes differ", i)
		}
	}
	// Empty batch round-trips too.
	empty := AppendMarshalHandoff(nil, nil)
	if got, err := AppendUnmarshalHandoff(nil, empty); err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v (%d states)", err, len(got))
	}
}

func TestHandoffRejectsCorrupt(t *testing.T) {
	good := AppendMarshalHandoff(nil, []FlowState{{Flow: 9, State: []byte{1, 2, 3}}})
	cases := map[string][]byte{
		"empty":            {},
		"short header":     good[:2],
		"bad magic":        append([]byte{'P', 'D'}, good[2:]...),
		"bad version":      append([]byte{'P', 'H', 9}, good[3:]...),
		"truncated state":  good[:len(good)-1],
		"trailing bytes":   append(append([]byte(nil), good...), 0),
		"count over bytes": {'P', 'H', HandoffVersion, 0xFF, 0xFF, 0x7F},
	}
	for name, data := range cases {
		if _, err := AppendUnmarshalHandoff(nil, data); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
	if IsHandoffPayload([]byte{'P', 'D', 1}) {
		t.Error("digest payload sniffed as hand-off")
	}
}

func TestHandoffStateAliasing(t *testing.T) {
	// The decode documents that State aliases the input — callers that
	// outlive the frame buffer must copy. Pin the aliasing so a future
	// copy-always change is deliberate.
	payload := AppendMarshalHandoff(nil, []FlowState{{Flow: 3, State: []byte{7, 8}}})
	got, err := AppendUnmarshalHandoff(nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	payload[len(payload)-1] = 99
	if got[0].State[1] != 99 {
		t.Fatal("decoded state no longer aliases the payload; update the doc contract")
	}
}
