package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/core"
)

// This file pins the bulk codec (two-pass sized marshal, fast-path
// unmarshal, single-buffer frame marshal) to byte-at-a-time reference
// implementations of the same format — the simplest possible encoders,
// kept here so the hot-path rewrite can never drift from the format
// definition without a test or the fuzzer noticing.

// referenceMarshal is the pre-bulk encoder: amortized appends via
// binary.AppendVarint, one field at a time.
func referenceMarshal(dst []byte, batch []core.PacketDigest) ([]byte, error) {
	dst = append(dst, magic[0], magic[1], Version)
	dst = binary.AppendUvarint(dst, uint64(len(batch)))
	var prevFlow, prevID uint64
	var prevLen int
	for i := range batch {
		p := &batch[i]
		if p.PathLen < 1 || p.PathLen > MaxPathLen {
			return nil, fmt.Errorf("wire: packet %d has path length %d outside [1, %d]",
				i, p.PathLen, MaxPathLen)
		}
		dst = binary.AppendVarint(dst, int64(uint64(p.Flow)-prevFlow))
		dst = binary.AppendVarint(dst, int64(p.PktID-prevID))
		dst = binary.AppendVarint(dst, int64(p.PathLen-prevLen))
		dst = binary.AppendUvarint(dst, p.Digest)
		prevFlow, prevID, prevLen = uint64(p.Flow), p.PktID, p.PathLen
	}
	return dst, nil
}

// referenceUnmarshal is the pre-bulk decoder: every varint through the
// strict generic reader, no inline fast path.
func referenceUnmarshal(data []byte) ([]core.PacketDigest, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("wire: %d-byte input shorter than the %d-byte header", len(data), headerLen)
	}
	if data[0] != magic[0] || data[1] != magic[1] {
		return nil, fmt.Errorf("wire: bad magic %#02x%02x", data[0], data[1])
	}
	if data[2] != Version {
		return nil, fmt.Errorf("wire: unsupported version %d (have %d)", data[2], Version)
	}
	rest := data[3:]
	count, n, err := uvarint(rest)
	if err != nil {
		return nil, fmt.Errorf("wire: batch count: %w", err)
	}
	rest = rest[n:]
	if count > uint64(len(rest)/minRecordLen) {
		return nil, fmt.Errorf("wire: count %d exceeds the %d remaining bytes", count, len(rest))
	}
	out := make([]core.PacketDigest, 0, count)
	var prevFlow, prevID uint64
	var prevLen int64
	for i := uint64(0); i < count; i++ {
		dFlow, n, err := varint(rest)
		if err != nil {
			return nil, fmt.Errorf("wire: packet %d flow: %w", i, err)
		}
		rest = rest[n:]
		dID, n, err := varint(rest)
		if err != nil {
			return nil, fmt.Errorf("wire: packet %d id: %w", i, err)
		}
		rest = rest[n:]
		dLen, n, err := varint(rest)
		if err != nil {
			return nil, fmt.Errorf("wire: packet %d path length: %w", i, err)
		}
		rest = rest[n:]
		digest, n, err := uvarint(rest)
		if err != nil {
			return nil, fmt.Errorf("wire: packet %d digest: %w", i, err)
		}
		rest = rest[n:]
		prevFlow += uint64(dFlow)
		prevID += uint64(dID)
		prevLen += dLen
		if prevLen < 1 || prevLen > MaxPathLen {
			return nil, fmt.Errorf("wire: packet %d path length %d outside [1, %d]", i, prevLen, MaxPathLen)
		}
		out = append(out, core.PacketDigest{
			Flow:    core.FlowKey(prevFlow),
			PktID:   prevID,
			PathLen: int(prevLen),
			Digest:  digest,
		})
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after the last record", len(rest))
	}
	return out, nil
}

// adversarialBatch exercises every varint width: maximal fields, sign
// flips between consecutive records (full-width negative deltas), and
// tiny values that hit the 1- and 2-byte fast paths.
func adversarialBatch() []core.PacketDigest {
	return []core.PacketDigest{
		{Flow: ^core.FlowKey(0), PktID: ^uint64(0), PathLen: MaxPathLen, Digest: ^uint64(0)},
		{Flow: 0, PktID: 0, PathLen: 1, Digest: 0},
		{Flow: 1 << 63, PktID: 1<<63 - 1, PathLen: 64, Digest: 1 << 62},
		{Flow: 127, PktID: 128, PathLen: 2, Digest: 16383},
		{Flow: 128, PktID: 16384, PathLen: 3, Digest: 16384},
		{Flow: ^core.FlowKey(0) - 5, PktID: 3, PathLen: 1, Digest: 0x5555555555555555},
	}
}

// TestBulkMarshalBitIdentical pins the two-pass encoder to the reference
// byte for byte, including sizes that cross the count-varint width and
// records needing every delta width.
func TestBulkMarshalBitIdentical(t *testing.T) {
	batches := map[string][]core.PacketDigest{
		"empty":       nil,
		"one":         sampleBatch(1),
		"small":       sampleBatch(7),
		"count2byte":  sampleBatch(300),
		"large":       sampleBatch(4096),
		"adversarial": adversarialBatch(),
	}
	for name, batch := range batches {
		got, err := Marshal(batch)
		if err != nil {
			t.Fatalf("%s: bulk marshal: %v", name, err)
		}
		want, err := referenceMarshal(nil, batch)
		if err != nil {
			t.Fatalf("%s: reference marshal: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: bulk encoding differs from reference:\nbulk %x\nref  %x", name, got, want)
		}
		back, err := Unmarshal(got)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		for i := range batch {
			if back[i] != batch[i] {
				t.Fatalf("%s: packet %d = %+v, want %+v", name, i, back[i], batch[i])
			}
		}
	}
}

// TestAppendMarshalRecycledBuffers pins the single-reservation grow logic
// on every buffer shape a recycling caller hands in: spare capacity (no
// grow, prefix kept), exact-fit capacity (no grow, fully used), and a
// short buffer (one grow, prefix kept).
func TestAppendMarshalRecycledBuffers(t *testing.T) {
	batch := sampleBatch(100)
	flat, err := Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("spare-capacity", func(t *testing.T) {
		dst := make([]byte, 0, len(flat)+512)
		dst = append(dst, 0xAA, 0xBB)
		out, err := AppendMarshal(dst, batch)
		if err != nil {
			t.Fatal(err)
		}
		if &out[0] != &dst[0] {
			t.Fatal("spare-capacity append reallocated")
		}
		if out[0] != 0xAA || out[1] != 0xBB {
			t.Fatal("prefix bytes clobbered")
		}
		if !bytes.Equal(out[2:], flat) {
			t.Fatal("payload after prefix differs from flat marshal")
		}
	})

	t.Run("exact-fit", func(t *testing.T) {
		dst := make([]byte, 0, len(flat))
		out, err := AppendMarshal(dst, batch)
		if err != nil {
			t.Fatal(err)
		}
		if &out[0] != &dst[:1][0] {
			t.Fatal("exact-fit append reallocated")
		}
		if len(out) != cap(dst) {
			t.Fatalf("exact-fit used %d of %d bytes", len(out), cap(dst))
		}
		if !bytes.Equal(out, flat) {
			t.Fatal("exact-fit payload differs from flat marshal")
		}
	})

	t.Run("short-grows-once", func(t *testing.T) {
		dst := append(make([]byte, 0, 4), 0xCC)
		out, err := AppendMarshal(dst, batch)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != 0xCC {
			t.Fatal("prefix byte lost across the grow")
		}
		if !bytes.Equal(out[1:], flat) {
			t.Fatal("grown payload differs from flat marshal")
		}
	})
}

// TestRoundtripAliasedDst decodes into the input batch's own backing
// array — Roundtrip(batch[:0], buf, batch) — which is legal because the
// marshal pass completes into buf before the decode pass writes a byte.
func TestRoundtripAliasedDst(t *testing.T) {
	batch := sampleBatch(64)
	want := append([]core.PacketDigest(nil), batch...)
	got, _, err := Roundtrip(batch[:0], nil, batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("aliased roundtrip returned %d packets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("aliased packet %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestAppendMarshalFrame pins the one-pass frame builder: its output must
// be exactly AppendFrame(AppendMarshal(...)), decodable by DecodeFrame,
// prefix-preserving, zero-alloc at steady state, and nil on marshal error.
func TestAppendMarshalFrame(t *testing.T) {
	batch := sampleBatch(256)
	payload, err := Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	want, err := AppendFrame(nil, payload)
	if err != nil {
		t.Fatal(err)
	}

	frame, err := AppendMarshalFrame(nil, batch)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, want) {
		t.Fatalf("frame differs from AppendFrame over AppendMarshal:\ngot  %x\nwant %x", frame, want)
	}
	gotPayload, rest, err := DecodeFrame(frame, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || !bytes.Equal(gotPayload, payload) {
		t.Fatal("frame payload does not round-trip through DecodeFrame")
	}

	withPrefix, err := AppendMarshalFrame([]byte{1, 2, 3}, batch)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(withPrefix[:3], []byte{1, 2, 3}) || !bytes.Equal(withPrefix[3:], want) {
		t.Fatal("prefix not preserved by AppendMarshalFrame")
	}

	buf := frame
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = AppendMarshalFrame(buf[:0], batch)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm AppendMarshalFrame allocates %.0f times per run, want 0", allocs)
	}

	if out, err := AppendMarshalFrame(nil, []core.PacketDigest{{PathLen: 0}}); err == nil || out != nil {
		t.Fatal("bad PathLen did not error with a nil slice")
	}
}

// fuzzBatch builds a marshal-direction batch from raw fuzz bytes: 25-byte
// chunks become (flow, pktID, digest, pathLen) with pathLen forced valid.
func fuzzBatch(data []byte) []core.PacketDigest {
	var batch []core.PacketDigest
	for i := 0; i+25 <= len(data) && len(batch) < 512; i += 25 {
		batch = append(batch, core.PacketDigest{
			Flow:    core.FlowKey(binary.LittleEndian.Uint64(data[i:])),
			PktID:   binary.LittleEndian.Uint64(data[i+8:]),
			Digest:  binary.LittleEndian.Uint64(data[i+16:]),
			PathLen: 1 + int(data[i+24]%MaxPathLen),
		})
	}
	return batch
}

// FuzzMarshalParity is the wire half of the differential-fuzz safety net:
// arbitrary bytes drive both decoders (bulk fast-path vs byte-at-a-time
// reference) which must agree on packets, error presence, and error text;
// on success both encoders re-marshal bit-identically, and the same bytes
// reinterpreted as packet fields must marshal bit-identically through
// both encoders and the one-pass frame builder.
func FuzzMarshalParity(f *testing.F) {
	addBatch := func(batch []core.PacketDigest) {
		data, err := Marshal(batch)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	addBatch(sampleBatch(40))
	addBatch(adversarialBatch())
	f.Add([]byte{'P', 'D', Version, 1, 0x80, 0x01, 0x80, 0x00, 2, 0})
	f.Add([]byte{'P', 'D', Version, 2, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0x91}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		fast, fastErr := Unmarshal(data)
		ref, refErr := referenceUnmarshal(data)
		if (fastErr == nil) != (refErr == nil) {
			t.Fatalf("decoder disagreement: fast err %v, reference err %v", fastErr, refErr)
		}
		if fastErr != nil {
			if fastErr.Error() != refErr.Error() {
				t.Fatalf("error text diverged:\nfast %q\nref  %q", fastErr, refErr)
			}
		} else {
			if len(fast) != len(ref) {
				t.Fatalf("fast decoded %d packets, reference %d", len(fast), len(ref))
			}
			for i := range ref {
				if fast[i] != ref[i] {
					t.Fatalf("packet %d: fast %+v, reference %+v", i, fast[i], ref[i])
				}
			}
			again, err := Marshal(fast)
			if err != nil {
				t.Fatalf("re-marshal of a decoded batch failed: %v", err)
			}
			refAgain, err := referenceMarshal(nil, ref)
			if err != nil {
				t.Fatalf("reference re-marshal failed: %v", err)
			}
			if !bytes.Equal(again, refAgain) || !bytes.Equal(again, data) {
				t.Fatalf("re-marshal not canonical:\nin   %x\nbulk %x\nref  %x", data, again, refAgain)
			}
		}

		batch := fuzzBatch(data)
		bulk, err := Marshal(batch)
		if err != nil {
			t.Fatalf("bulk marshal of a valid batch failed: %v", err)
		}
		refBytes, err := referenceMarshal(nil, batch)
		if err != nil {
			t.Fatalf("reference marshal of a valid batch failed: %v", err)
		}
		if !bytes.Equal(bulk, refBytes) {
			t.Fatalf("marshal diverged:\nbulk %x\nref  %x", bulk, refBytes)
		}
		frame, err := AppendMarshalFrame(nil, batch)
		if err != nil {
			t.Fatalf("frame marshal failed: %v", err)
		}
		if !bytes.Equal(frame[FrameHeaderLen:], bulk) {
			t.Fatal("frame payload differs from bulk marshal")
		}
	})
}
