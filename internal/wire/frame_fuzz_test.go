package wire

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// FuzzFrameDecode drives arbitrary byte streams through the frame
// decoder. The contract:
//
//   - DecodeFrame never panics and never allocates beyond the payload cap,
//   - ErrShortFrame is returned exactly when the input is a (possibly
//     empty) proper prefix of some longer valid frame,
//   - on success, re-framing the payload reproduces the consumed bytes
//     exactly (the format is canonical), and
//   - the streaming FrameReader accepts precisely the inputs DecodeFrame
//     accepts, yielding the same payload.
func FuzzFrameDecode(f *testing.F) {
	add := func(payload []byte) {
		framed, err := AppendFrame(nil, payload)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(framed)
		f.Add(framed[:len(framed)-1])
		f.Add(append(append([]byte(nil), framed...), framed...)) // two frames back to back
	}
	add([]byte{0x00})
	add([]byte("digest batch stand-in"))
	payload, err := Marshal(sampleBatch(32))
	if err != nil {
		f.Fatal(err)
	}
	add(payload)
	f.Add([]byte{})
	f.Add(binary.LittleEndian.AppendUint32(binary.LittleEndian.AppendUint32(nil, 0), 0))
	f.Add(binary.LittleEndian.AppendUint32(binary.LittleEndian.AppendUint32(nil, 1<<31), 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, rest, err := DecodeFrame(data, 0)
		fr := NewFrameReader(bytes.NewReader(data), 0)
		streamPayload, streamErr := fr.Next()
		if err != nil {
			if payload != nil {
				t.Fatalf("error %v with non-nil payload", err)
			}
			if streamErr == nil {
				t.Fatalf("FrameReader accepted what DecodeFrame rejected: %v", err)
			}
			return
		}
		if streamErr != nil {
			t.Fatalf("DecodeFrame accepted what FrameReader rejected: %v", streamErr)
		}
		if !bytes.Equal(payload, streamPayload) {
			t.Fatal("DecodeFrame and FrameReader payloads differ")
		}
		consumed := data[:len(data)-len(rest)]
		again, err := AppendFrame(nil, payload)
		if err != nil {
			t.Fatalf("re-framing a decoded payload: %v", err)
		}
		if !bytes.Equal(again, consumed) {
			t.Fatalf("re-framed bytes differ from input:\n got %x\nwant %x", again, consumed)
		}
	})
}

// FuzzHandshake drives arbitrary bytes through the session-handshake
// decoder: no panics, ErrShortFrame only for true prefixes, and on
// success re-encoding the Hello reproduces the consumed bytes.
func FuzzHandshake(f *testing.F) {
	add := func(h Hello) {
		data, err := AppendHello(nil, h)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)-1])
		f.Add(append(append([]byte(nil), data...), 0xAA))
	}
	add(Hello{})
	add(Hello{Exporter: 3, PlanHash: 0x1234_5678_9ABC_DEF0, Name: "spine-0"})
	add(Hello{Exporter: 11, PlanHash: 7, Epoch: 0xFEED_FACE, Name: "fleet-2"})
	add(Hello{Exporter: ^uint64(0), PlanHash: 1, Name: strings.Repeat("z", MaxExporterName)})
	add(Hello{Exporter: 5, PlanHash: 9, Name: "spine-1", Tenant: "team-a"})
	add(Hello{Exporter: 6, Epoch: 3, Tenant: strings.Repeat("t", MaxTenantName)})
	f.Add([]byte{})
	f.Add([]byte("PINT"))
	f.Add(append([]byte{'P', 'I', 'N', 'T', handshakeVersionV2}, make([]byte, helloFixedLen-5)...))
	f.Add(append([]byte{'P', 'I', 'N', 'T', HandshakeVersion}, make([]byte, helloFixedLen-5)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, n, err := DecodeHello(data)
		if err != nil {
			if h != (Hello{}) || n != 0 {
				t.Fatalf("error %v with non-zero Hello %+v / consumed %d", err, h, n)
			}
			return
		}
		if n < helloFixedLen || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		again, err := AppendHello(nil, h)
		if err != nil {
			t.Fatalf("re-encoding a decoded Hello: %v", err)
		}
		if !bytes.Equal(again, data[:n]) {
			t.Fatalf("re-encoded handshake differs from input:\n got %x\nwant %x", again, data[:n])
		}
		stream, err := ReadHello(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("ReadHello rejected what DecodeHello accepted: %v", err)
		}
		if stream != h {
			t.Fatalf("ReadHello %+v != DecodeHello %+v", stream, h)
		}
	})
}
