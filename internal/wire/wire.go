// Package wire is the switch→collector transport encoding of the batch
// pipeline: a compact, versioned binary format for core.PacketDigest
// batches, so digest streams can leave the switch (or a first-hop
// aggregator) and be replayed into a remote sharded sink bit-identically.
//
// # Format (version 1)
//
// A marshaled batch is
//
//	magic   [2]byte  'P' 'D'
//	version byte     0x01
//	count   uvarint  number of packets
//	packets count records, each
//	    flowΔ   zigzag varint  FlowKey minus the previous record's FlowKey
//	    pktIDΔ  zigzag varint  PktID minus the previous record's PktID
//	    lenΔ    zigzag varint  PathLen minus the previous record's PathLen
//	    digest  uvarint        the digest value itself
//
// Delta coding exploits the shape of real sink streams: consecutive
// packets of one flow differ by small flow/ID/length deltas, and PINT
// digests occupy only the plan's global bit budget (typically 8–32 of the
// 64 bits), so every field varint-compresses well. The first record's
// deltas are taken against zero.
//
// Unmarshal is strict: unknown magic/version, truncated input, non-minimal
// or overflowing varints are rejected with an error (never a panic), a
// batch whose count cannot fit in the remaining bytes is rejected before
// any allocation (so hostile headers cannot force large allocations), and
// trailing bytes after the last record are an error. PathLen is validated
// against the decoder's [1, 64] domain. The query-set and coding-layer
// caches a PacketDigest may carry are deliberately not transported: they
// are engine-specific memoizations of pure functions, and the receiving
// collector recomputes them.
package wire

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/core"
)

// Version is the current wire-format version byte.
const Version = 1

// MaxPathLen mirrors the Inference Module's path-length domain: the
// decoder peels hop sets held in one 64-bit mask.
const MaxPathLen = 64

const headerLen = 4 // magic (2) + version (1) + count (>= 1)

// minRecordLen is the smallest possible marshaled packet record: four
// varints of one byte each. Unmarshal uses it to bound the claimed count
// against the bytes actually present.
const minRecordLen = 4

var magic = [2]byte{'P', 'D'}

// Marshal encodes a batch. It errors if any packet's PathLen is outside
// [1, MaxPathLen] — such a packet could never have been produced by a
// sink and would be rejected by the receiving side.
func Marshal(batch []core.PacketDigest) ([]byte, error) {
	return AppendMarshal(nil, batch)
}

// AppendMarshal appends the encoding of batch to dst (which may be nil or
// a reused buffer's dst[:0]) and returns the extended slice. On error dst
// is not extended (nil is returned) and no bytes were written.
//
// The encoder is a two-pass bulk codec: pass one validates every PathLen
// and sums the exact varint lengths of all four delta columns, pass two
// makes a single capacity reservation and writes byte offsets directly.
// One grow per batch instead of amortized appends, and the common 1- and
// 2-byte varints take a branch-free-size fast path in putUvarint.
func AppendMarshal(dst []byte, batch []core.PacketDigest) ([]byte, error) {
	need := 3 + uvarintLen(uint64(len(batch)))
	var prevFlow, prevID uint64
	var prevLen int
	for i := range batch {
		p := &batch[i]
		if p.PathLen < 1 || p.PathLen > MaxPathLen {
			return nil, fmt.Errorf("wire: packet %d has path length %d outside [1, %d]",
				i, p.PathLen, MaxPathLen)
		}
		need += uvarintLen(zigzag(int64(uint64(p.Flow)-prevFlow))) +
			uvarintLen(zigzag(int64(p.PktID-prevID))) +
			uvarintLen(zigzag(int64(p.PathLen-prevLen))) +
			uvarintLen(p.Digest)
		prevFlow, prevID, prevLen = uint64(p.Flow), p.PktID, p.PathLen
	}
	w := len(dst)
	if cap(dst)-w < need {
		grown := make([]byte, w, w+need)
		copy(grown, dst)
		dst = grown
	}
	out := dst[:w+need]
	out[w], out[w+1], out[w+2] = magic[0], magic[1], Version
	w = putUvarint(out, w+3, uint64(len(batch)))
	prevFlow, prevID, prevLen = 0, 0, 0
	for i := range batch {
		p := &batch[i]
		w = putUvarint(out, w, zigzag(int64(uint64(p.Flow)-prevFlow)))
		w = putUvarint(out, w, zigzag(int64(p.PktID-prevID)))
		w = putUvarint(out, w, zigzag(int64(p.PathLen-prevLen)))
		w = putUvarint(out, w, p.Digest)
		prevFlow, prevID, prevLen = uint64(p.Flow), p.PktID, p.PathLen
	}
	return out, nil
}

// uvarintLen is the exact encoded size of x: one byte per started 7-bit
// group (x|1 makes zero cost one byte).
func uvarintLen(x uint64) int {
	return (bits.Len64(x|1) + 6) / 7
}

// zigzag maps a signed delta to binary.AppendVarint's unsigned form.
func zigzag(x int64) uint64 {
	return uint64(x)<<1 ^ uint64(x>>63)
}

// putUvarint writes x at out[i] and returns the next write offset. The
// caller has already reserved uvarintLen(x) bytes, so the 1- and 2-byte
// encodings that dominate delta-coded sink streams write without a loop.
func putUvarint(out []byte, i int, x uint64) int {
	if x < 0x80 {
		out[i] = byte(x)
		return i + 1
	}
	if x < 0x4000 {
		out[i] = byte(x) | 0x80
		out[i+1] = byte(x >> 7)
		return i + 2
	}
	for x >= 0x80 {
		out[i] = byte(x) | 0x80
		x >>= 7
		i++
	}
	out[i] = byte(x)
	return i + 1
}

// Unmarshal decodes a marshaled batch. On error the returned slice is nil.
func Unmarshal(data []byte) ([]core.PacketDigest, error) {
	return AppendUnmarshal(nil, data)
}

// Roundtrip encodes batch and decodes it straight back — the
// switch→collector transfer every recording hot path exercises per block.
// dst and buf may be nil or recycled buffers (they are truncated before
// use); the decoded batch and the grown scratch buffer are returned for
// reuse so steady-state round trips allocate nothing.
func Roundtrip(dst []core.PacketDigest, buf []byte, batch []core.PacketDigest) ([]core.PacketDigest, []byte, error) {
	buf, err := AppendMarshal(buf[:0], batch)
	if err != nil {
		return dst, buf, err
	}
	dst, err = AppendUnmarshal(dst[:0], buf)
	return dst, buf, err
}

// AppendUnmarshal appends the decoded packets to dst (pass a reused
// buffer's dst[:0] to avoid allocation on the replay hot path) and returns
// the extended slice. On error dst is returned unextended.
func AppendUnmarshal(dst []core.PacketDigest, data []byte) ([]core.PacketDigest, error) {
	if len(data) < headerLen {
		return dst, fmt.Errorf("wire: %d-byte input shorter than the %d-byte header", len(data), headerLen)
	}
	if data[0] != magic[0] || data[1] != magic[1] {
		return dst, fmt.Errorf("wire: bad magic %#02x%02x", data[0], data[1])
	}
	if data[2] != Version {
		return dst, fmt.Errorf("wire: unsupported version %d (have %d)", data[2], Version)
	}
	rest := data[3:]
	count, n, err := uvarint(rest)
	if err != nil {
		return dst, fmt.Errorf("wire: batch count: %w", err)
	}
	rest = rest[n:]
	// Bound the claimed count by the bytes present before allocating
	// anything, so a hostile header cannot force a huge allocation.
	if count > uint64(len(rest)/minRecordLen) {
		return dst, fmt.Errorf("wire: count %d exceeds the %d remaining bytes", count, len(rest))
	}
	out := dst
	if free := cap(out) - len(out); uint64(free) < count {
		grown := make([]core.PacketDigest, len(out), len(out)+int(count))
		copy(grown, out)
		out = grown
	}
	var prevFlow, prevID uint64
	var prevLen int64
	for i := uint64(0); i < count; i++ {
		dFlow, n, err := varintFast(rest)
		if err != nil {
			return dst, fmt.Errorf("wire: packet %d flow: %w", i, err)
		}
		rest = rest[n:]
		dID, n, err := varintFast(rest)
		if err != nil {
			return dst, fmt.Errorf("wire: packet %d id: %w", i, err)
		}
		rest = rest[n:]
		dLen, n, err := varintFast(rest)
		if err != nil {
			return dst, fmt.Errorf("wire: packet %d path length: %w", i, err)
		}
		rest = rest[n:]
		digest, n, err := uvarintFast(rest)
		if err != nil {
			return dst, fmt.Errorf("wire: packet %d digest: %w", i, err)
		}
		rest = rest[n:]
		prevFlow += uint64(dFlow)
		prevID += uint64(dID)
		prevLen += dLen
		if prevLen < 1 || prevLen > MaxPathLen {
			return dst, fmt.Errorf("wire: packet %d path length %d outside [1, %d]", i, prevLen, MaxPathLen)
		}
		out = append(out, core.PacketDigest{
			Flow:    core.FlowKey(prevFlow),
			PktID:   prevID,
			PathLen: int(prevLen),
			Digest:  digest,
		})
	}
	if len(rest) != 0 {
		return dst, fmt.Errorf("wire: %d trailing bytes after the last record", len(rest))
	}
	return out, nil
}

// uvarint reads one canonical unsigned varint. Unlike binary.Uvarint it
// rejects truncated input, 64-bit overflow, and non-minimal encodings
// (e.g. 0x80 0x00 for zero), so every valid byte stream has exactly one
// decoding — the property the fuzz harness's re-marshal check relies on.
func uvarint(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	switch {
	case n == 0:
		return 0, 0, fmt.Errorf("truncated varint")
	case n < 0:
		return 0, 0, fmt.Errorf("varint overflows 64 bits")
	case n > 1 && b[n-1] == 0:
		return 0, 0, fmt.Errorf("non-minimal varint")
	}
	return v, n, nil
}

// varint reads one canonical zigzag varint.
func varint(b []byte) (int64, int, error) {
	u, n, err := uvarint(b)
	if err != nil {
		return 0, 0, err
	}
	return int64(u>>1) ^ -int64(u&1), n, nil
}

// uvarintFast is uvarint with the decode-side fast path: 1- and 2-byte
// encodings — the bulk of a delta-coded stream — decode inline without
// touching binary.Uvarint's loop. Any longer, truncated, or non-minimal
// input falls through to the strict generic reader, so the error strings
// and acceptance set are exactly uvarint's.
func uvarintFast(b []byte) (uint64, int, error) {
	if len(b) >= 1 {
		if b0 := b[0]; b0 < 0x80 {
			return uint64(b0), 1, nil
		} else if len(b) >= 2 {
			// Second byte must terminate (< 0x80) and be nonzero (a zero
			// continuation would be a non-minimal encoding).
			if b1 := b[1]; b1-1 < 0x7f {
				return uint64(b0&0x7f) | uint64(b1)<<7, 2, nil
			}
		}
	}
	return uvarint(b)
}

// varintFast reads one canonical zigzag varint via uvarintFast.
func varintFast(b []byte) (int64, int, error) {
	u, n, err := uvarintFast(b)
	if err != nil {
		return 0, 0, err
	}
	return int64(u>>1) ^ -int64(u&1), n, nil
}
