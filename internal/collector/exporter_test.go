package collector

import (
	"testing"
	"time"

	"repro/internal/core"
)

// TestExporterCoalesce pins the write-coalescing contract: below the
// threshold frames stay in the exporter (the collector sees nothing),
// crossing it flushes everything in one write, and Flush/Close drain
// whatever remains — with the collector's decoded totals identical to
// the immediate-write path.
func TestExporterCoalesce(t *testing.T) {
	tb := mustTestbench(t, 23)
	_, srv := newServedSink(t, tb, 2)
	ex, err := Dial(srv.Addr().String(), HelloFor(tb.Engine, 1, "coalesce-test"))
	if err != nil {
		t.Fatal(err)
	}
	// A huge threshold: every Send stages, nothing hits the wire.
	ex.SetCoalesce(1 << 20)
	if err := ex.Send(tb.FlowBatch(1, 0, 50, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Send(tb.FlowBatch(1, 1, 50, nil, nil)); err != nil {
		t.Fatal(err)
	}
	// The frames are accounted but withheld; give the collector a moment
	// to prove it received none of them.
	time.Sleep(20 * time.Millisecond)
	if got := srv.Stats().Packets; got != 0 {
		t.Fatalf("collector saw %d packets before flush, want 0", got)
	}
	if ex.Packets() != 100 {
		t.Fatalf("exporter accounted %d packets, want 100", ex.Packets())
	}
	if err := ex.Flush(); err != nil {
		t.Fatal(err)
	}
	waitForPackets(t, srv, 100)

	// A tiny threshold: the first staged frame crosses it and flushes
	// immediately — coalescing degenerates to immediate writes.
	ex.SetCoalesce(1)
	if err := ex.Send(tb.FlowBatch(1, 2, 50, nil, nil)); err != nil {
		t.Fatal(err)
	}
	waitForPackets(t, srv, 150)

	// Close drains a partial coalescing buffer.
	ex.SetCoalesce(1 << 20)
	if err := ex.Send(tb.FlowBatch(1, 3, 25, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	waitForPackets(t, srv, 175)
	shutdownServer(t, srv)
}

// TestStreamSteadyState runs the pintload -duration engine for a short
// burst against a live collector: every connection must report at least
// one full sweep of its flows, the collector must have ingested exactly
// the aggregate the loads report, and no packet may be lost or invented
// on the way through the parallel ingest path.
func TestStreamSteadyState(t *testing.T) {
	tb := mustTestbench(t, 29)
	const (
		conns    = 3
		flowsPer = 2
		pktsPer  = 100
	)
	_, srv := newServedSink(t, tb, 4)
	route := func(core.FlowKey) int { return 0 }
	loads, err := tb.StreamSteadyState([]string{srv.Addr().String()}, route, 0,
		conns, flowsPer, pktsPer, 64, 4096, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != conns {
		t.Fatalf("got %d loads, want %d", len(loads), conns)
	}
	var total uint64
	for i, l := range loads {
		if l.Exporter != uint64(i)+1 {
			t.Fatalf("load %d has exporter %d", i, l.Exporter)
		}
		if l.Packets < flowsPer*pktsPer {
			t.Fatalf("conn %d sent %d packets, want at least one sweep (%d)",
				l.Exporter, l.Packets, flowsPer*pktsPer)
		}
		if l.Bytes == 0 || l.Elapsed <= 0 || l.Mpkts() <= 0 {
			t.Fatalf("conn %d load not populated: %+v", l.Exporter, l)
		}
		total += l.Packets
	}
	waitForPackets(t, srv, total)
	if got := srv.Stats().Packets; got != total {
		t.Fatalf("collector ingested %d packets, exporters sent %d", got, total)
	}
	shutdownServer(t, srv)
}
