package collector

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/wire"
)

// This file serves snapshot queries over HTTP/JSON. The answer encoding
// is factored into Answers so the loopback conformance path (the
// collector-scale scenario) can compute the identical structure against
// an in-process sink and demand bit-identical JSON.

// HopAnswer is one (flow, hop)'s dynamic per-flow summary.
type HopAnswer struct {
	Hop     int     `json:"hop"`
	Samples int     `json:"samples"`
	P50     float64 `json:"p50"`
	P99     float64 `json:"p99"`
}

// QueryAnswer is one query's answer for one flow. Which fields are
// populated depends on the query kind.
type QueryAnswer struct {
	Query string `json:"query"`
	Kind  string `json:"kind"`
	// Path queries: the decoded per-hop switch IDs, whether decoding
	// finished, and the route-change inconsistency counter.
	Path            []uint64 `json:"path,omitempty"`
	Done            bool     `json:"done,omitempty"`
	Inconsistencies int      `json:"inconsistencies,omitempty"`
	// Latency and frequent-value queries: per-hop summaries (hops with no
	// samples are omitted).
	Hops []HopAnswer `json:"hops,omitempty"`
	// Frequent-value queries: per-hop heavy-hitter values above θ=0.1,
	// sorted, aligned with Hops.
	Heavy [][]uint64 `json:"heavy,omitempty"`
	// Per-packet queries (util, count): the recovered series.
	Series []float64 `json:"series,omitempty"`
}

// FlowAnswers is every query's answer for one flow.
type FlowAnswers struct {
	Flow uint64 `json:"flow"`
	// Tracked reports whether the answering Recording holds live state
	// for the flow. A federated query frontend uses it to pick the home
	// collector's answer when an explicitly requested flow fans out to
	// every fleet member (non-home members answer with empty state).
	Tracked bool          `json:"tracked,omitempty"`
	Answers []QueryAnswer `json:"answers"`
}

// maxAnswerHops bounds the per-hop scan: paths in the decoder domain
// never exceed wire.MaxPathLen hops.
const maxAnswerHops = wire.MaxPathLen

// Answers evaluates every query for every listed flow against one
// quiescent Recording (a merged snapshot). Queries run in a fixed order
// — flows as given, queries as given, hops ascending — so two Recordings
// holding the same state produce byte-identical JSON (sketch queries
// advance RNG state, making answer order part of the contract).
func Answers(rec *core.Recording, queries []core.Query, flows []core.FlowKey) []FlowAnswers {
	out := make([]FlowAnswers, 0, len(flows))
	for _, flow := range flows {
		fa := FlowAnswers{Flow: uint64(flow), Tracked: rec.HasFlow(flow), Answers: []QueryAnswer{}}
		for _, q := range queries {
			a := QueryAnswer{Query: q.Name(), Kind: q.Agg().String()}
			switch q := q.(type) {
			case *core.PathQuery:
				a.Path, a.Done = rec.Path(q, flow)
				a.Inconsistencies = rec.PathInconsistencies(q, flow)
			case *core.LatencyQuery:
				for hop := 1; hop <= maxAnswerHops; hop++ {
					n := rec.LatencySamples(q, flow, hop)
					if n == 0 {
						continue
					}
					p50, err1 := rec.LatencyQuantile(q, flow, hop, 0.5)
					p99, err2 := rec.LatencyQuantile(q, flow, hop, 0.99)
					if err1 != nil || err2 != nil {
						continue
					}
					a.Hops = append(a.Hops, HopAnswer{Hop: hop, Samples: n, P50: p50, P99: p99})
				}
			case *core.FreqQuery:
				for hop := 1; hop <= maxAnswerHops; hop++ {
					n := rec.FreqSamples(q, flow, hop)
					if n == 0 {
						continue
					}
					a.Hops = append(a.Hops, HopAnswer{Hop: hop, Samples: n})
					var vals []uint64
					for _, hh := range rec.FrequentValues(q, flow, hop, 0.1) {
						vals = append(vals, hh.Value)
					}
					sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
					a.Heavy = append(a.Heavy, vals)
				}
			case *core.UtilQuery:
				a.Series = rec.UtilSeries(q, flow)
			case *core.CountQuery:
				a.Series = rec.CountSeries(q, flow)
			}
			fa.Answers = append(fa.Answers, a)
		}
		out = append(out, fa)
	}
	return out
}

// SnapshotAnswers folds a sink snapshot into one merged Recording and
// answers every query for every tracked flow (or just the listed flows).
func SnapshotAnswers(snap *pipeline.Snapshot, queries []core.Query, flows []core.FlowKey) ([]FlowAnswers, error) {
	merged, err := snap.Merged()
	if err != nil {
		return nil, err
	}
	if flows == nil {
		flows = merged.Flows()
	}
	return Answers(merged, queries, flows), nil
}

// Handler serves the collector's observability surface:
//
//	GET /healthz         {"ok":true,"plan_hash":"0x…"}
//	GET /stats           server counters + per-shard sink + per-connection ingest counters
//	GET /snapshot        all flows' query answers from a fresh snapshot
//	GET /snapshot?flow=N one flow (repeatable)
//
// Snapshots run concurrently with ingestion (the sink's copy-on-read
// contract), so querying a live collector never pauses exporters.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Every response carries the member's current cluster epoch in a
	// header (never the body — the body must stay byte-identical to the
	// single-collector encoding), so a query frontend can detect a member
	// that moved to a different partitioning mid-resize instead of
	// silently merging answers computed under two fleet maps.
	stamped := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set(EpochHeader, strconv.FormatUint(s.Epoch(), 10))
			h(w, r)
		}
	}
	mux.HandleFunc("GET /healthz", stamped(func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, map[string]any{
			"ok":        true,
			"plan_hash": fmt.Sprintf("0x%016x", s.planHash),
		})
	}))
	mux.HandleFunc("GET /stats", stamped(func(w http.ResponseWriter, r *http.Request) {
		// The versioned stats document (see stats.go): server counters,
		// sink totals and per-shard breakdown, per-connection ingest
		// counters, and the QoS/durable sections when configured.
		WriteJSON(w, s.StatsV1())
	}))
	// POST /fleetmap is how an out-of-process resize coordinator advances
	// a member's epoch (the in-process fleet calls SetEpoch directly): the
	// body is the new fleet map — only its epoch matters to the member,
	// which fences future handshakes and nudges stale live sessions.
	mux.HandleFunc("POST /fleetmap", stamped(func(w http.ResponseWriter, r *http.Request) {
		var fm struct {
			Epoch *uint64 `json:"epoch"`
		}
		if err := json.NewDecoder(r.Body).Decode(&fm); err != nil {
			http.Error(w, fmt.Sprintf("bad fleet map body: %v", err), http.StatusBadRequest)
			return
		}
		if fm.Epoch == nil {
			http.Error(w, "fleet map body has no epoch", http.StatusBadRequest)
			return
		}
		s.SetEpoch(*fm.Epoch)
		WriteJSON(w, map[string]any{"ok": true, "epoch": *fm.Epoch})
	}))
	mux.HandleFunc("GET /snapshot", stamped(func(w http.ResponseWriter, r *http.Request) {
		// A draining daemon answers 503 instead of racing its own sink
		// teardown (or hanging a caller on a server that is half gone);
		// the query frontend folds the refusal into its partial-result
		// answer and keeps serving the surviving fleet members.
		if s.isClosing() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "collector: draining", http.StatusServiceUnavailable)
			return
		}
		var flows []core.FlowKey
		for _, raw := range r.URL.Query()["flow"] {
			v, err := strconv.ParseUint(raw, 0, 64)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad flow %q: %v", raw, err), http.StatusBadRequest)
				return
			}
			flows = append(flows, core.FlowKey(v))
		}
		if r.URL.Query().Has("since") || r.URL.Query().Has("until") {
			s.serveWindow(w, r, flows)
			return
		}
		answers, err := SnapshotAnswers(s.cfg.Sink.Snapshot(), s.cfg.Queries, flows)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		WriteJSON(w, map[string]any{"flows": answers})
	}))
	return mux
}

// EpochHeader carries the answering member's cluster epoch on every
// collector-tier HTTP response. The federated query frontend compares it
// against its fleet map's epoch and reports a mismatched member in the
// response's error list ("epoch_stale") rather than merging answers that
// were computed under a different partitioning.
const EpochHeader = "X-Pint-Epoch"

// PartialHeader marks an answer that covers less than what was asked
// for; the value counts the failed parts. It is the same convention the
// federated query frontend uses for dead fleet members (the two packages
// cannot share the constant — federation imports collector).
const PartialHeader = "X-Pint-Partial"

// parseWindowBound parses one ?since=/?until= value: a non-negative
// integer is taken as a store-clock timestamp (unix nanoseconds under
// the default clock); anything else must parse as RFC 3339.
func parseWindowBound(raw string) (uint64, error) {
	if v, err := strconv.ParseUint(raw, 10, 64); err == nil {
		return v, nil
	}
	t, err := time.Parse(time.RFC3339, raw)
	if err != nil {
		return 0, fmt.Errorf("bad timestamp %q: want unix nanoseconds or RFC 3339", raw)
	}
	return uint64(t.UnixNano()), nil
}

// serveWindow answers /snapshot?since=S&until=U from the segment log:
// the live tail is checkpointed and flushed first (making the log the
// complete record — nothing is counted twice because nothing is read
// from the live shards), then the window replays through a fresh sink.
// A window reaching at or below the retention horizon answers partially
// (PartialHeader: 1) if it extends past the horizon, 400 if not.
func (s *Server) serveWindow(w http.ResponseWriter, r *http.Request, flows []core.FlowKey) {
	d := s.cfg.Durable
	if d == nil {
		http.Error(w, "collector: no durable store (-data-dir) — historical windows unavailable", http.StatusBadRequest)
		return
	}
	since, until := uint64(0), ^uint64(0)
	var err error
	if raw := r.URL.Query().Get("since"); raw != "" {
		if since, err = parseWindowBound(raw); err != nil {
			http.Error(w, "since: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	if raw := r.URL.Query().Get("until"); raw != "" {
		if until, err = parseWindowBound(raw); err != nil {
			http.Error(w, "until: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	if since > until {
		http.Error(w, fmt.Sprintf("inverted window: since %d > until %d", since, until), http.StatusBadRequest)
		return
	}
	horizon := d.Store.HorizonTS()
	if horizon > 0 && until <= horizon {
		http.Error(w, fmt.Sprintf("window ends at %d, before the retention horizon %d — those segments are deleted",
			until, horizon), http.StatusBadRequest)
		return
	}
	// Make the live tail durable so the log alone answers the window.
	// Write side of the gate: no hand-off may straddle the round.
	s.ingestGate.Lock()
	cerr := d.Checkpoint()
	s.ingestGate.Unlock()
	if cerr != nil {
		http.Error(w, cerr.Error(), http.StatusInternalServerError)
		return
	}
	answers, err := d.WindowAnswers(since, until, flows)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if horizon > 0 && since <= horizon {
		// The window's head predates retention: answer what survives and
		// say so, the same contract a degraded federated fleet serves.
		w.Header().Set(PartialHeader, "1")
	}
	WriteJSON(w, map[string]any{"flows": answers})
}

// WithProfiling layers net/http/pprof's endpoints under /debug/pprof/ on
// top of h; every other path falls through to h. It is opt-in (pintd
// -pprof) and off by default: the collector's HTTP port is an operational
// surface, and the profiling handlers expose memory contents and burn CPU
// on demand. With it mounted, `go tool pprof http://host/debug/pprof/profile`
// profiles a live collector under real exporter load — how the hot-path
// numbers in README.md are gathered.
func WithProfiling(h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", h)
	return mux
}

// MaxRequestBody bounds request bodies on the collector's (and the query
// frontend's) HTTP servers. Every endpoint is a GET; a megabyte is
// already generous for a body nobody reads.
const MaxRequestBody = 1 << 20

// HTTPServer wraps h (defaulting to s.Handler()) in an http.Server with
// the production guards a long-lived daemon needs: a header-read timeout
// so an idle half-open connect cannot pin a goroutine forever, an idle
// timeout to shed silent keep-alives, a header cap, and a request-body
// bound. cmd/pintd, cmd/pintgate, and the federation testbench all serve
// through it so the hardening is exercised everywhere.
func (s *Server) HTTPServer(h http.Handler) *http.Server {
	if h == nil {
		h = s.Handler()
	}
	return HardenedHTTPServer(h)
}

// HardenedHTTPServer applies the collector tier's HTTP guards to any
// handler (the query frontend shares them without owning a Server).
func HardenedHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           http.MaxBytesHandler(h, MaxRequestBody),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 16,
	}
}

// WriteJSON writes v as indented JSON — the one encoder shape every
// collector-tier endpoint shares, so a query frontend that re-emits a
// merged structure stays byte-identical to a single daemon emitting it.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
