package collector

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// LoopbackResult is one end-to-end run's outcome: the JSON-stable query
// answers for every flow, plus transfer accounting. Answers, Packets,
// and WireBytes are pure functions of the testbench shape; Elapsed is
// wall clock (reporting only — never part of a conformance comparison).
type LoopbackResult struct {
	Answers   []FlowAnswers
	Packets   uint64
	WireBytes uint64
	Elapsed   time.Duration
}

// BytesPerPacket returns the mean wire cost of one digest, frame headers
// included.
func (r *LoopbackResult) BytesPerPacket() float64 {
	if r.Packets == 0 {
		return 0
	}
	return float64(r.WireBytes) / float64(r.Packets)
}

// RunLoopback stands up a collector on an ephemeral loopback listener,
// streams a (nExporters × flowsPer × pktsPer) testbench deployment
// through real TCP sockets from nExporters concurrent exporter
// goroutines (each framing its flows in chunks of batch packets), drains
// the daemon, and evaluates every query for every flow. It is the
// networked twin of RunInProcess: identical inputs must yield
// byte-identical answers.
func (tb *Testbench) RunLoopback(shards, nExporters, flowsPer, pktsPer, batch int) (*LoopbackResult, error) {
	if err := ValidateShape(nExporters, flowsPer, pktsPer); err != nil {
		return nil, err
	}
	if batch < 1 || batch > pktsPer {
		batch = pktsPer
	}
	sink, err := pipeline.NewSink(tb.Engine, pipeline.Config{Shards: shards, Base: tb.Base})
	if err != nil {
		return nil, err
	}
	defer sink.Close()
	srv, err := New(tb.Engine, WithSink(sink), WithQueries(tb.Queries()...))
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	start := time.Now()
	packets, bytes, err := tb.StreamDeployment(addr, nExporters, flowsPer, pktsPer, batch)
	if err != nil {
		srv.Shutdown(context.Background())
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return nil, fmt.Errorf("collector: drain: %w", err)
	}
	if err := <-serveErr; err != nil {
		return nil, fmt.Errorf("collector: serve: %w", err)
	}
	if err := sink.Err(); err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	st := srv.Stats()
	if st.Packets != packets {
		return nil, fmt.Errorf("collector: drain lost packets: sent %d, collector ingested %d",
			packets, st.Packets)
	}
	answers, err := SnapshotAnswers(sink.Snapshot(), tb.Queries(), tb.Flows(nExporters, flowsPer))
	if err != nil {
		return nil, err
	}
	return &LoopbackResult{
		Answers:   answers,
		Packets:   st.Packets,
		WireBytes: bytes,
		Elapsed:   elapsed,
	}, nil
}

// StreamDeployment streams the full (nExporters × flowsPer × pktsPer)
// testbench deployment to a single collector at addr: one concurrent
// connection per exporter, digests framed in chunks of batch packets. It
// is the one-member special case of StreamFleetDeployment (see fleet.go)
// under epoch 0, and returns the packet and wire-byte totals once every
// exporter has sent everything and closed.
func (tb *Testbench) StreamDeployment(addr string, nExporters, flowsPer, pktsPer, batch int) (packets, bytes uint64, err error) {
	return tb.StreamFleetDeployment([]string{addr}, func(core.FlowKey) int { return 0 }, 0,
		nExporters, flowsPer, pktsPer, batch)
}

// RunInProcess runs the identical deployment without a socket in sight:
// the same flow batches ingest directly into a sharded sink, and the
// same queries run against its merged snapshot. The conformance contract
// of the collector daemon is Answers(RunLoopback) == Answers(RunInProcess),
// byte for byte, at every shard count.
func (tb *Testbench) RunInProcess(shards, nExporters, flowsPer, pktsPer int) (*LoopbackResult, error) {
	if err := ValidateShape(nExporters, flowsPer, pktsPer); err != nil {
		return nil, err
	}
	sink, err := pipeline.NewSink(tb.Engine, pipeline.Config{Shards: shards, Base: tb.Base})
	if err != nil {
		return nil, err
	}
	defer sink.Close()
	start := time.Now()
	var pkts []core.PacketDigest
	vals := make([]core.HopValues, pktsPer)
	var packets uint64
	for e := 0; e < nExporters; e++ {
		for f := 0; f < flowsPer; f++ {
			pkts = tb.FlowBatch(uint64(e)+1, f, pktsPer, pkts, vals)
			sink.Ingest(pkts)
			packets += uint64(len(pkts))
		}
	}
	sink.Barrier()
	if err := sink.Err(); err != nil {
		return nil, err
	}
	answers, err := SnapshotAnswers(sink.Snapshot(), tb.Queries(), tb.Flows(nExporters, flowsPer))
	if err != nil {
		return nil, err
	}
	return &LoopbackResult{
		Answers: answers,
		Packets: packets,
		Elapsed: time.Since(start),
	}, nil
}
