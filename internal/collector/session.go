package collector

import (
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// This file tracks per-connection ingest state. Each exporter session
// owns a pipeline.Stage and decodes frames straight into it (the fused
// decode-and-shard pass), so the only cross-connection coupling left is
// the sink's per-shard locks — and these counters, which let /stats show
// where each connection's time and bytes went.

// ConnStats is one exporter session's ingest counters, served under
// "conns" in /stats. Counters are cumulative over the session's life;
// the entry disappears when the session ends (its totals remain in the
// server-wide counters).
type ConnStats struct {
	Exporter uint64 `json:"exporter"`
	Name     string `json:"name"`
	// Tenant is the session's resolved QoS tenant (the Hello's tenant
	// label, or admit.DefaultTenant when the exporter sent none).
	Tenant string `json:"tenant"`
	Remote string `json:"remote"`
	// Frames counts checksummed frames decoded; Batches counts staged
	// hand-offs to the sink (one per frame that carried packets).
	Frames  uint64 `json:"frames"`
	Batches uint64 `json:"batches"`
	Packets uint64 `json:"packets"`
	Bytes   uint64 `json:"bytes"`
	// Shed counts packets the QoS layer sampled away from this session;
	// Packets-Shed is what reached the sink.
	Shed uint64 `json:"shed"`
	// StallNs is cumulative time spent inside IngestStage — handing
	// staged packets to shard workers, including any blocking on full
	// worker queues. A connection whose StallNs grows much faster than
	// its peers' is feeding the hot shard; TCP backpressure is reaching
	// its exporter.
	StallNs uint64 `json:"stall_ns"`
	// StagedDepth is the number of packets currently decoded but not yet
	// handed to the sink (a point-in-time read of the session's stage).
	StagedDepth int64 `json:"staged_depth"`
}

// session is the live counter block behind one ConnStats entry, written
// by the connection handler and read by /stats at any time.
type session struct {
	exporter uint64
	name     string
	tenant   string
	remote   string
	// conn and epoch support live re-routing on fleet resize: when the
	// server's epoch moves past the session's, SetEpoch writes a single
	// wire.NudgeReroute byte on conn (the server→exporter direction is
	// unused after the handshake ack) so the exporter flushes, closes
	// cleanly, and re-handshakes at the new epoch. nudged makes the write
	// one-shot.
	conn    net.Conn
	epoch   uint64
	nudged  atomic.Bool
	frames  atomic.Uint64
	batches atomic.Uint64
	packets atomic.Uint64
	bytes   atomic.Uint64
	shed    atomic.Uint64
	stallNs atomic.Uint64
	staged  atomic.Int64
}

func (c *session) stats() ConnStats {
	return ConnStats{
		Exporter:    c.exporter,
		Name:        c.name,
		Tenant:      c.tenant,
		Remote:      c.remote,
		Frames:      c.frames.Load(),
		Batches:     c.batches.Load(),
		Packets:     c.packets.Load(),
		Bytes:       c.bytes.Load(),
		Shed:        c.shed.Load(),
		StallNs:     c.stallNs.Load(),
		StagedDepth: c.staged.Load(),
	}
}

// sessionSet is the registry of live sessions.
type sessionSet struct {
	mu   sync.Mutex
	live map[*session]struct{}
}

func (ss *sessionSet) add(c *session) {
	ss.mu.Lock()
	if ss.live == nil {
		ss.live = map[*session]struct{}{}
	}
	ss.live[c] = struct{}{}
	ss.mu.Unlock()
}

func (ss *sessionSet) remove(c *session) {
	ss.mu.Lock()
	delete(ss.live, c)
	ss.mu.Unlock()
}

// nudgeStale writes the reroute nudge on every live session whose epoch
// differs from the new cluster epoch. Write errors are ignored: a session
// that is already tearing down will notice the epoch change when it next
// dials anyway.
func (ss *sessionSet) nudgeStale(epoch uint64) {
	ss.mu.Lock()
	var stale []*session
	for c := range ss.live {
		if c.epoch != epoch && c.conn != nil && c.nudged.CompareAndSwap(false, true) {
			stale = append(stale, c)
		}
	}
	ss.mu.Unlock()
	for _, c := range stale {
		c.conn.Write([]byte{wire.NudgeReroute})
	}
}

func (ss *sessionSet) snapshot() []ConnStats {
	ss.mu.Lock()
	out := make([]ConnStats, 0, len(ss.live))
	for c := range ss.live {
		out = append(out, c.stats())
	}
	ss.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Exporter != out[j].Exporter {
			return out[i].Exporter < out[j].Exporter
		}
		return out[i].Remote < out[j].Remote
	})
	return out
}

// ConnStats returns a point-in-time view of every live session's ingest
// counters, sorted by exporter ID (ties broken by remote address). Safe
// from any goroutine at any time.
func (s *Server) ConnStats() []ConnStats {
	return s.sess.snapshot()
}
