package collector

import (
	"context"
	"encoding/binary"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/wire"
)

// dialRaw opens a raw TCP connection and completes the handshake by
// hand, so tests can then write arbitrary (broken) bytes.
func dialRaw(t *testing.T, srv *Server, hello wire.Hello) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	buf, err := wire.AppendHello(nil, hello)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	var ack [1]byte
	if _, err := conn.Read(ack[:]); err != nil {
		t.Fatal(err)
	}
	if err := wire.AckError(ack[0]); err != nil {
		t.Fatal(err)
	}
	return conn
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// sendHealthyFlow proves the sink still ingests and answers after a
// failure: a fresh exporter streams one decodable flow and the merged
// snapshot must answer its path query.
func sendHealthyFlow(t *testing.T, tb *Testbench, srv *Server, exp uint64) {
	t.Helper()
	before := srv.Stats().Packets
	ex, err := Dial(srv.Addr().String(), HelloFor(tb.Engine, exp, "healthy"))
	if err != nil {
		t.Fatalf("healthy exporter refused after failure: %v", err)
	}
	batch := tb.FlowBatch(exp, 0, 600, nil, nil)
	if err := ex.Send(batch); err != nil {
		t.Fatal(err)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "healthy flow ingest", func() bool {
		return srv.Stats().Packets >= before+600
	})
	answers, err := SnapshotAnswers(srv.cfg.Sink.Snapshot(), tb.Queries(), []core.FlowKey{tb.FlowKeyFor(exp, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || !answers[0].Answers[0].Done {
		t.Fatalf("healthy flow did not decode after failure: %+v", answers)
	}
}

// TestCollectorFailureModes drives every connection-level failure and
// asserts the blast radius stays at that connection: the session dies,
// the sink ingests nothing from the bad bytes, and the next healthy
// exporter decodes normally.
func TestCollectorFailureModes(t *testing.T) {
	tb := mustTestbench(t, 17)
	goodBatch, err := wire.Marshal(tb.FlowBatch(9, 0, 32, nil, nil))
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		// send writes the hostile bytes over an accepted session.
		send func(t *testing.T, conn net.Conn)
		// wantConnErr says the server should count a connection error
		// (as opposed to a clean disconnect).
		wantConnErr bool
	}{
		{
			name: "mid-frame disconnect",
			send: func(t *testing.T, conn net.Conn) {
				framed, err := wire.AppendFrame(nil, goodBatch)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := conn.Write(framed[:len(framed)/2]); err != nil {
					t.Fatal(err)
				}
				conn.Close()
			},
			wantConnErr: true,
		},
		{
			name: "checksum corruption",
			send: func(t *testing.T, conn net.Conn) {
				framed, err := wire.AppendFrame(nil, goodBatch)
				if err != nil {
					t.Fatal(err)
				}
				framed[len(framed)-1] ^= 0x40
				if _, err := conn.Write(framed); err != nil {
					t.Fatal(err)
				}
			},
			wantConnErr: true,
		},
		{
			name: "oversized frame header",
			send: func(t *testing.T, conn net.Conn) {
				hdr := binary.LittleEndian.AppendUint32(nil, uint32(wire.DefaultMaxFramePayload+1))
				hdr = binary.LittleEndian.AppendUint32(hdr, 0)
				if _, err := conn.Write(hdr); err != nil {
					t.Fatal(err)
				}
			},
			wantConnErr: true,
		},
		{
			name: "valid frame, malformed batch",
			send: func(t *testing.T, conn net.Conn) {
				framed, err := wire.AppendFrame(nil, []byte{'X', 'D', 1, 0})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := conn.Write(framed); err != nil {
					t.Fatal(err)
				}
			},
			wantConnErr: true,
		},
		{
			name: "clean disconnect mid-stream",
			send: func(t *testing.T, conn net.Conn) {
				framed, err := wire.AppendFrame(nil, goodBatch)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := conn.Write(framed); err != nil {
					t.Fatal(err)
				}
				conn.Close()
			},
		},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, srv := newServedSink(t, tb, 3)
			conn := dialRaw(t, srv, HelloFor(tb.Engine, 100, "hostile"))
			before := srv.Stats()
			tc.send(t, conn)
			waitFor(t, "session teardown", func() bool { return srv.Stats().Active == 0 })
			st := srv.Stats()
			if tc.wantConnErr && st.ConnErrors != before.ConnErrors+1 {
				t.Fatalf("want 1 connection error, got %d", st.ConnErrors-before.ConnErrors)
			}
			if !tc.wantConnErr && st.ConnErrors != before.ConnErrors {
				t.Fatalf("clean close counted as error: %d", st.ConnErrors-before.ConnErrors)
			}
			// Whatever happened, the sink is not poisoned: a healthy
			// exporter decodes end to end.
			sendHealthyFlow(t, tb, srv, uint64(200+i))
		})
	}
}

// TestPlanHashMismatchRefused pins the handshake guard: an exporter
// compiled under a different plan is refused at session setup.
func TestPlanHashMismatchRefused(t *testing.T) {
	tb := mustTestbench(t, 19)
	_, srv := newServedSink(t, tb, 1)
	hello := HelloFor(tb.Engine, 1, "drifted")
	hello.PlanHash ^= 1
	if _, err := Dial(srv.Addr().String(), hello); err == nil ||
		!strings.Contains(err.Error(), "plan hash mismatch") {
		t.Fatalf("want plan-hash refusal, got %v", err)
	}
	if st := srv.Stats(); st.Rejected != 1 || st.Sessions != 0 {
		t.Fatalf("stats after refusal: %+v", st)
	}
	sendHealthyFlow(t, tb, srv, 42)
}

// TestHandshakeGarbageRejected feeds non-protocol bytes to a fresh
// connection.
func TestHandshakeGarbageRejected(t *testing.T) {
	tb := mustTestbench(t, 23)
	_, srv := newServedSink(t, tb, 1)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /snapshot HTTP/1.1\r\nHost: collector\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "garbage rejection", func() bool { return srv.Stats().Rejected == 1 })
	sendHealthyFlow(t, tb, srv, 43)
}

// slowPolicy throttles a shard worker so the bounded queues fill and
// backpressure reaches the ingesting connection handler.
type slowPolicy struct{ delay time.Duration }

func (p *slowPolicy) Touch(flow core.FlowKey, now uint64, vict []pipeline.Eviction) []pipeline.Eviction {
	time.Sleep(p.delay)
	return vict
}

func (p *slowPolicy) Flows() int { return 0 }

// TestSlowConsumerBackpressure wires a deliberately slow sink (tiny
// batches, queue depth 1, a policy that sleeps per packet) behind the
// collector and streams enough packets that dispatch must stall. The
// contract: the stall counter fires (OnStall + Stats agree), no packet
// is lost, and the stream still answers queries after drain.
func TestSlowConsumerBackpressure(t *testing.T) {
	tb := mustTestbench(t, 29)
	sink, err := pipeline.NewSink(tb.Engine, pipeline.Config{
		Shards:     1,
		BatchSize:  8,
		QueueDepth: 1,
		Base:       tb.Base,
		Policy:     func() pipeline.EvictionPolicy { return &slowPolicy{delay: 10 * time.Microsecond} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	srv, err := New(tb.Engine, WithSink(sink), WithQueries(tb.Queries()...))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	const total = 2000
	ex, err := Dial(ln.Addr().String(), HelloFor(tb.Engine, 5, "firehose"))
	if err != nil {
		t.Fatal(err)
	}
	var pkts []core.PacketDigest
	vals := make([]core.HopValues, 500)
	for f := 0; f < total/500; f++ {
		pkts = tb.FlowBatch(5, f, 500, pkts, vals)
		if err := ex.Send(pkts); err != nil {
			t.Fatal(err)
		}
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Packets; got != total {
		t.Fatalf("slow sink lost packets: %d of %d", got, total)
	}
	st, _ := sink.Stats()
	if st.Packets != total {
		t.Fatalf("sink dispatched %d packets, want %d", st.Packets, total)
	}
	if st.Stalls == 0 {
		t.Fatal("no dispatch stalls despite a throttled worker and queue depth 1")
	}
}

// TestShutdownForceClosesHungExporter: an exporter that never sends and
// never closes cannot hold the drain hostage past the grace period.
func TestShutdownForceClosesHungExporter(t *testing.T) {
	tb := mustTestbench(t, 31)
	sink, err := pipeline.NewSink(tb.Engine, pipeline.Config{Shards: 1, Base: tb.Base})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	srv, err := New(tb.Engine, WithSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	for srv.Addr() == nil {
		time.Sleep(100 * time.Microsecond)
	}

	ex, err := Dial(srv.Addr().String(), HelloFor(tb.Engine, 1, "hung"))
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	waitFor(t, "session open", func() bool { return srv.Stats().Active == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = srv.Shutdown(ctx)
	if err == nil {
		t.Fatal("shutdown reported a clean drain despite a hung session")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("shutdown hung for %v", elapsed)
	}
	if err := <-serveErr; err != nil {
		t.Fatal(err)
	}
}
