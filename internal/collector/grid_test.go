package collector

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
)

// TestIngestGridBitIdentical is the acceptance grid for parallel ingest:
// loopback TCP answers must be byte-identical to the in-process serial
// path for every query kind at conns {1,4,16} × shards {1,4,16} ×
// GOMAXPROCS {1,4}. The flow population grows with the connection count
// (each exporter owns its flows), so the in-process reference is
// recomputed per conns value; across shard counts and scheduler widths
// the answers must not move by a byte. Run under -race this is also the
// collector's concurrent-ingest race test.
func TestIngestGridBitIdentical(t *testing.T) {
	tb := mustTestbench(t, 11)
	const (
		flowsPer = 2
		pktsPer  = 200
		batch    = 64
	)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, conns := range []int{1, 4, 16} {
			local, err := tb.RunInProcess(1, conns, flowsPer, pktsPer)
			if err != nil {
				t.Fatalf("procs=%d conns=%d: in-process: %v", procs, conns, err)
			}
			ref := answersJSON(t, local.Answers)
			for _, shards := range []int{1, 4, 16} {
				t.Run(fmt.Sprintf("procs=%d/conns=%d/shards=%d", procs, conns, shards), func(t *testing.T) {
					remote, err := tb.RunLoopback(shards, conns, flowsPer, pktsPer, batch)
					if err != nil {
						t.Fatalf("loopback: %v", err)
					}
					if remote.Packets != uint64(conns*flowsPer*pktsPer) {
						t.Fatalf("collector saw %d packets, want %d",
							remote.Packets, conns*flowsPer*pktsPer)
					}
					if got := answersJSON(t, remote.Answers); !bytes.Equal(got, ref) {
						t.Fatalf("answers diverged from serial reference:\nremote: %s\nserial: %s", got, ref)
					}
				})
			}
		}
	}
}
