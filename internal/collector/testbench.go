package collector

import (
	"fmt"
	"math"
	"os"
	"sync"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/topology"
)

// Testbench is the canonical loopback deployment plan: the query set,
// compiled engine, and deterministic traffic model that cmd/pintd,
// cmd/pintload, and the collector-scale scenario share. Daemon and load
// generator each construct it independently from the same (seed, k) and
// arrive at the same engine — the handshake's PlanHash check then proves
// it on the wire, exactly how a switch fleet and its collector coordinate
// implicitly from shared configuration (§4.1).
type Testbench struct {
	// K is the hop count of every generated flow.
	K int
	// Seed is the master knob; everything derives from it.
	Seed uint64
	// PathQ and LatQ are the two queries of the plan: path tracing at
	// 2×4 bits and 8-bit latency, sharing a 16-bit budget.
	PathQ *core.PathQuery
	LatQ  *core.LatencyQuery
	// Engine is the compiled plan.
	Engine *core.Engine
	// Base seeds the sink's recordings (pipeline.Config.Base).
	Base hash.Seed
	// Tenant, when non-empty, labels every session the testbench's
	// streaming helpers open (pintload -tenant): the Hello carries it and
	// the collector accounts the traffic under that QoS tenant. Empty
	// keeps the v2 handshake bytes and the default tenant.
	Tenant string
	// Fetch, when non-nil, is the fleet-roster fetch the streaming
	// helpers pass to Connect (WithRosterFetch), so their sessions follow
	// a live fleet resize instead of ending at the epoch fence (pintload
	// -gate sets it to GET the frontend's /fleetmap).
	Fetch func() (FleetRoster, error)
	// universe is the fat-tree switch-ID space the flows walk.
	universe []uint64
}

// NewTestbench builds the testbench at a seed. k is the flow hop count
// (default 5 when < 1).
func NewTestbench(seed uint64, k int) (*Testbench, error) {
	if k < 1 {
		k = 5
	}
	g, err := topology.FatTree(8)
	if err != nil {
		return nil, err
	}
	master := hash.Seed(seed).Derive(0xC011EC7)
	cfg, err := core.DefaultPathConfig(4, 2, 5)
	if err != nil {
		return nil, err
	}
	pathQ, err := core.NewPathQuery("path", cfg, 1, master, g.SwitchIDUniverse())
	if err != nil {
		return nil, err
	}
	latQ, err := core.NewLatencyQuery("lat", 8, 0.04, 15.0/16, master)
	if err != nil {
		return nil, err
	}
	eng, err := core.Compile([]core.Query{pathQ, latQ}, 16, master.Derive(1))
	if err != nil {
		return nil, err
	}
	return &Testbench{
		K:        k,
		Seed:     seed,
		PathQ:    pathQ,
		LatQ:     latQ,
		Engine:   eng,
		Base:     master.Derive(2),
		universe: g.SwitchIDUniverse(),
	}, nil
}

// Queries returns the plan's queries in answer order.
func (tb *Testbench) Queries() []core.Query {
	return []core.Query{tb.PathQ, tb.LatQ}
}

// FlowKeyFor names exporter exp's flow f: the exporter ID rides in the
// high 32 bits, so every exporter owns a disjoint flow space.
func (tb *Testbench) FlowKeyFor(exp uint64, f int) core.FlowKey {
	return core.FlowKey(exp<<32 | (uint64(f) + 1))
}

// flowPath derives exporter exp flow f's k-switch path from the fat-tree
// universe — a pure function of the testbench seed.
func (tb *Testbench) flowPath(exp uint64, f int, path []uint64) []uint64 {
	rng := hash.NewRNG(uint64(hash.Seed(tb.Seed).Derive(0x9A7).Hash2(exp, uint64(f))))
	path = path[:0]
	for hop := 0; hop < tb.K; hop++ {
		path = append(path, tb.universe[rng.Intn(len(tb.universe))])
	}
	return path
}

// FlowBatch generates flow (exp, f)'s complete digest stream: n packets
// walked through every hop of the flow's path via the engine's batch
// encoder, with lognormal hop latencies. The result is a pure function
// of (testbench seed, exp, f, n), so a loopback exporter and an
// in-process reference produce bit-identical digests. pkts and vals are
// reusable scratch (pass nil to allocate).
func (tb *Testbench) FlowBatch(exp uint64, f, n int, pkts []core.PacketDigest, vals []core.HopValues) []core.PacketDigest {
	if cap(pkts) < n {
		pkts = make([]core.PacketDigest, n)
	}
	if cap(vals) < n {
		vals = make([]core.HopValues, n)
	}
	pkts, vals = pkts[:n], vals[:n]
	flow := tb.FlowKeyFor(exp, f)
	rng := hash.NewRNG(uint64(hash.Seed(tb.Seed).Derive(0x7AF).Hash2(exp, uint64(f))))
	for j := range pkts {
		pkts[j] = core.PacketDigest{Flow: flow, PktID: rng.Uint64(), PathLen: tb.K}
	}
	path := tb.flowPath(exp, f, nil)
	for hop := 1; hop <= tb.K; hop++ {
		sw := path[hop-1]
		for j := range vals {
			lat := math.Exp(math.Log(8000) + 0.25*rng.NormFloat64())
			vals[j] = core.HopValues{SwitchID: sw, LatencyNs: uint64(lat)}
		}
		tb.Engine.EncodeHopBatch(hop, pkts, vals)
	}
	return pkts
}

// Flows enumerates every flow key of a deployment of nExporters
// exporters with flowsPer flows each, in (exporter, flow) order — the
// order the conformance comparison queries them in.
func (tb *Testbench) Flows(nExporters, flowsPer int) []core.FlowKey {
	out := make([]core.FlowKey, 0, nExporters*flowsPer)
	for exp := 0; exp < nExporters; exp++ {
		for f := 0; f < flowsPer; f++ {
			out = append(out, tb.FlowKeyFor(uint64(exp)+1, f))
		}
	}
	return out
}

// ScratchDir creates a throwaway data directory for durable-daemon
// suites and returns it with an idempotent cleanup closure. The cleanup
// is bound at creation — t.TempDir-style — not in the daemon's own
// teardown: harnesses that removed the directory only when the daemon
// shut down cleanly leaked it whenever the daemon failed to start, and
// the kill-recover suites start (and kill) daemons constantly. Callers
// defer the cleanup immediately after the error check.
func (tb *Testbench) ScratchDir(prefix string) (string, func(), error) {
	dir, err := os.MkdirTemp("", prefix)
	if err != nil {
		return "", nil, fmt.Errorf("collector: scratch dir: %w", err)
	}
	var once sync.Once
	return dir, func() { once.Do(func() { os.RemoveAll(dir) }) }, nil
}

// Validate sanity-checks the deployment shape shared by pintload's flags
// and the scenario.
func ValidateShape(nExporters, flowsPer, pktsPer int) error {
	switch {
	case nExporters < 1 || nExporters > 1<<16:
		return fmt.Errorf("collector: exporter count %d out of [1,%d]", nExporters, 1<<16)
	case flowsPer < 1 || flowsPer > 1<<20:
		return fmt.Errorf("collector: flows/exporter %d out of [1,%d]", flowsPer, 1<<20)
	case pktsPer < 1 || pktsPer > 1<<24:
		return fmt.Errorf("collector: packets/flow %d out of [1,%d]", pktsPer, 1<<24)
	}
	return nil
}
