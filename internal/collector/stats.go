package collector

import (
	"repro/internal/admit"
	"repro/internal/pipeline"
	"repro/internal/segstore"
)

// This file defines the versioned /stats document. Three consumers used
// to parse three ad-hoc JSON shapes (the daemon's map, the federation
// frontend's anonymous structs, the scenarios' substring probes); all of
// them now share one declared type, stamped with a schema tag so a
// consumer can refuse a document it does not understand instead of
// silently misreading it.

// StatsSchemaV1 is the schema tag every v1 stats document carries.
const StatsSchemaV1 = "pint.stats.v1"

// StatsV1 is the collector's full /stats document: server counters, sink
// totals, per-shard and per-connection breakdowns, and — when the QoS or
// durable tiers are configured — their sections. The federation frontend
// parses this same type per fleet member and sums members with
// Accumulate, so a fleet-wide total is the same shape as one daemon.
type StatsV1 struct {
	// Schema identifies the document layout (StatsSchemaV1).
	Schema string `json:"schema"`
	// Server is the daemon's session/frame/packet counters.
	Server Stats `json:"server"`
	// Sink is the sharded sink's fleet-wide totals; SinkShards is the
	// per-shard breakdown (omitted from merged fleet totals).
	Sink       pipeline.ShardStats   `json:"sink"`
	SinkShards []pipeline.ShardStats `json:"sink_shard,omitempty"`
	// Conns lists every live exporter session's ingest counters.
	Conns []ConnStats `json:"conns"`
	// Tenants is the QoS layer's per-tenant accounting and error
	// envelopes (absent without a tenant policy).
	Tenants []admit.TenantStats `json:"tenants,omitempty"`
	// Capacity is the AIMD controller's telemetry (absent without a
	// capacity config).
	Capacity *admit.CapacityStats `json:"capacity,omitempty"`
	// Durable is the segment-log tier's section (absent without one).
	Durable *DurableStatsV1 `json:"durable,omitempty"`
}

// DurableStatsV1 is the durable tier's /stats section.
type DurableStatsV1 struct {
	Store    segstore.Stats          `json:"store"`
	Recovery segstore.RecoveryReport `json:"recovery"`
	Replayed uint64                  `json:"replayed"`
}

// Accumulate folds another collector's document into s — the federation
// frontend's rule for fleet-wide totals. Counter sections sum; tenant
// sections merge by tenant name (re-deriving each error envelope from
// the summed counters); point-in-time sections that make no sense summed
// (per-shard breakdowns, per-connection lists, capacity estimates,
// durable stores) are left to the per-member documents.
func (s *StatsV1) Accumulate(o StatsV1) {
	s.Server.Accumulate(o.Server)
	s.Sink.Accumulate(o.Sink)
	s.Tenants = admit.MergeTenantStats(s.Tenants, o.Tenants)
}

// StatsV1 assembles the daemon's current document.
func (s *Server) StatsV1() StatsV1 {
	total, perShard := s.cfg.Sink.Stats()
	doc := StatsV1{
		Schema:     StatsSchemaV1,
		Server:     s.Stats(),
		Sink:       total,
		SinkShards: perShard,
		Conns:      s.ConnStats(),
		Tenants:    s.admitter.Snapshot(),
	}
	if cap, ok := s.admitter.Capacity(); ok {
		doc.Capacity = &cap
	}
	if d := s.cfg.Durable; d != nil {
		doc.Durable = &DurableStatsV1{Store: d.Store.Stats(), Recovery: d.Recovery, Replayed: d.Replayed}
	}
	return doc
}
