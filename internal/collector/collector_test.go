package collector

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/pipeline"
)

// newServedSink builds a sink + served collector on an ephemeral
// loopback listener. The sink closes at test cleanup; the server is the
// test's to Shutdown.
func newServedSink(t *testing.T, tb *Testbench, shards int, opts ...Option) (*pipeline.Sink, *Server) {
	t.Helper()
	sink, err := pipeline.NewSink(tb.Engine, pipeline.Config{Shards: shards, Base: tb.Base})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sink.Close() })
	srv, err := New(tb.Engine, append([]Option{WithSink(sink), WithQueries(tb.Queries()...)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	for srv.Addr() == nil {
		time.Sleep(100 * time.Microsecond)
	}
	t.Cleanup(func() {
		srv.Shutdown(context.Background())
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return sink, srv
}

func mustTestbench(t *testing.T, seed uint64) *Testbench {
	t.Helper()
	tb, err := NewTestbench(seed, 5)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func answersJSON(t *testing.T, answers []FlowAnswers) []byte {
	t.Helper()
	b, err := json.Marshal(answers)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestLoopbackBitIdentical is the daemon's conformance contract: a
// deployment streamed over real loopback sockets from concurrent
// exporters answers every query byte-identically to the same digests
// ingested in-process, at several shard counts — and the answers carry
// real decoded state, not empty tables.
func TestLoopbackBitIdentical(t *testing.T) {
	tb := mustTestbench(t, 7)
	const (
		exporters = 4
		flowsPer  = 3
		pktsPer   = 400
	)
	var ref []byte
	for _, shards := range []int{1, 4, 16} {
		remote, err := tb.RunLoopback(shards, exporters, flowsPer, pktsPer, 64)
		if err != nil {
			t.Fatalf("shards=%d: loopback: %v", shards, err)
		}
		local, err := tb.RunInProcess(shards, exporters, flowsPer, pktsPer)
		if err != nil {
			t.Fatalf("shards=%d: in-process: %v", shards, err)
		}
		remoteJSON := answersJSON(t, remote.Answers)
		localJSON := answersJSON(t, local.Answers)
		if !bytes.Equal(remoteJSON, localJSON) {
			t.Fatalf("shards=%d: loopback and in-process answers differ:\nremote: %s\nlocal:  %s",
				shards, remoteJSON, localJSON)
		}
		if ref == nil {
			ref = remoteJSON
		} else if !bytes.Equal(ref, remoteJSON) {
			t.Fatalf("shards=%d: answers differ from shards=1", shards)
		}
		if remote.Packets != uint64(exporters*flowsPer*pktsPer) {
			t.Fatalf("shards=%d: collector saw %d packets, want %d",
				shards, remote.Packets, exporters*flowsPer*pktsPer)
		}
	}
	// The run produced real telemetry: at least one decoded path and one
	// latency estimate.
	var decoded, hops int
	var all []FlowAnswers
	if err := json.Unmarshal(ref, &all); err != nil {
		t.Fatal(err)
	}
	for _, fa := range all {
		for _, a := range fa.Answers {
			if a.Done {
				decoded++
			}
			hops += len(a.Hops)
		}
	}
	if decoded == 0 || hops == 0 {
		t.Fatalf("no real telemetry decoded: %d paths, %d latency hops", decoded, hops)
	}
}

// TestHTTPEndpoints exercises the daemon's observability surface over a
// live loopback deployment.
func TestHTTPEndpoints(t *testing.T) {
	tb := mustTestbench(t, 11)
	sink, srv := newServedSink(t, tb, 2)
	ex, err := Dial(srv.Addr().String(), HelloFor(tb.Engine, 1, "http-test"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Send(tb.FlowBatch(1, 0, 300, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	waitForPackets(t, srv, 300)
	// Barrier via a drainless route: snapshot visibility only needs the
	// dispatched batches, and ingest dispatches full buffers; flush the
	// remainder under the ingest gate like the shutdown drain would.
	srv.ingestGate.Lock()
	sink.Flush()
	sink.Barrier()
	srv.ingestGate.Unlock()

	h := srv.Handler()
	get := func(path string) string {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s: %d: %s", path, rec.Code, rec.Body)
		}
		return rec.Body.String()
	}
	if body := get("/healthz"); !strings.Contains(body, `"ok": true`) || !strings.Contains(body, "plan_hash") {
		t.Fatalf("healthz: %s", body)
	}
	if body := get("/stats"); !strings.Contains(body, `"packets": 300`) {
		t.Fatalf("stats lacks packet count: %s", body)
	}
	flow := uint64(tb.FlowKeyFor(1, 0))
	body := get("/snapshot")
	if !strings.Contains(body, `"query": "path"`) || !strings.Contains(body, `"query": "lat"`) {
		t.Fatalf("snapshot lacks query answers: %s", body)
	}
	one := get("/snapshot?flow=" + jsonNumber(flow))
	if !strings.Contains(one, `"flow": `+jsonNumber(flow)) {
		t.Fatalf("flow-filtered snapshot: %s", one)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/snapshot?flow=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("bad flow param: %d", rec.Code)
	}
	shutdownServer(t, srv)
}

// TestPerConnStats checks the /stats "conns" section against two live
// exporter sessions: each connection's counters are populated while it
// is connected, and the entries leave the registry when it closes (the
// totals stay in the server-wide counters).
func TestPerConnStats(t *testing.T) {
	tb := mustTestbench(t, 17)
	_, srv := newServedSink(t, tb, 2)
	exA, err := Dial(srv.Addr().String(), HelloFor(tb.Engine, 1, "conn-a"))
	if err != nil {
		t.Fatal(err)
	}
	exB, err := Dial(srv.Addr().String(), HelloFor(tb.Engine, 2, "conn-b"))
	if err != nil {
		t.Fatal(err)
	}
	if err := exA.Send(tb.FlowBatch(1, 0, 200, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if err := exB.Send(tb.FlowBatch(2, 0, 100, nil, nil)); err != nil {
		t.Fatal(err)
	}
	waitForPackets(t, srv, 300)

	conns := srv.ConnStats()
	if len(conns) != 2 {
		t.Fatalf("live sessions: got %d, want 2: %+v", len(conns), conns)
	}
	if conns[0].Exporter != 1 || conns[1].Exporter != 2 {
		t.Fatalf("conns not sorted by exporter: %+v", conns)
	}
	if conns[0].Name != "conn-a" || conns[1].Name != "conn-b" {
		t.Fatalf("session names: %+v", conns)
	}
	for i, c := range conns {
		want := uint64(200 - 100*i)
		if c.Packets != want {
			t.Fatalf("conn %d packets = %d, want %d", i, c.Packets, want)
		}
		if c.Frames == 0 || c.Batches == 0 || c.Bytes == 0 {
			t.Fatalf("conn %d counters not populated: %+v", i, c)
		}
		if c.Remote == "" {
			t.Fatalf("conn %d has no remote address", i)
		}
	}

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /stats: %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{`"conns"`, `"conn-a"`, `"conn-b"`, `"stall_ns"`, `"staged_depth"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/stats lacks %s: %s", want, body)
		}
	}

	if err := exA.Close(); err != nil {
		t.Fatal(err)
	}
	if err := exB.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(srv.ConnStats()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sessions lingered after close: %+v", srv.ConnStats())
		}
		time.Sleep(time.Millisecond)
	}
	if got := srv.Stats().Packets; got != 300 {
		t.Fatalf("server-wide packets after sessions ended = %d, want 300", got)
	}
	shutdownServer(t, srv)
}

func jsonNumber(v uint64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestShutdownIdempotent double-shuts the server and re-listens errors.
func TestShutdownIdempotent(t *testing.T) {
	tb := mustTestbench(t, 13)
	_, srv := newServedSink(t, tb, 1)
	shutdownServer(t, srv)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if err := srv.ListenAndServe("127.0.0.1:0"); err == nil {
		t.Fatal("Serve after shutdown accepted")
	}
}

func waitForPackets(t *testing.T, srv *Server, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().Packets < want {
		if time.Now().After(deadline) {
			t.Fatalf("collector ingested %d packets, want %d", srv.Stats().Packets, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func shutdownServer(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
