package collector

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/pipeline"
)

// newQuietServer builds a collector over a 1-shard sink with no listener
// — enough to exercise the HTTP surface.
func newQuietServer(t *testing.T) (*Server, *pipeline.Sink) {
	t.Helper()
	tb, err := NewTestbench(7, 5)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := pipeline.NewSink(tb.Engine, pipeline.Config{Shards: 1, Base: tb.Base})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sink.Close() })
	srv, err := New(tb.Engine, WithSink(sink), WithQueries(tb.Queries()...))
	if err != nil {
		t.Fatal(err)
	}
	return srv, sink
}

// TestHandlerErrorPaths pins the HTTP error contract: wrong method is
// 405, unknown route is 404, a malformed flow filter is 400 — and none of
// them hang or panic.
func TestHandlerErrorPaths(t *testing.T) {
	srv, _ := newQuietServer(t)
	h := srv.Handler()

	cases := []struct {
		name   string
		method string
		path   string
		status int
		body   string
	}{
		{"post snapshot", "POST", "/snapshot", http.StatusMethodNotAllowed, ""},
		{"put stats", "PUT", "/stats", http.StatusMethodNotAllowed, ""},
		{"delete healthz", "DELETE", "/healthz", http.StatusMethodNotAllowed, ""},
		{"unknown route", "GET", "/nope", http.StatusNotFound, ""},
		{"bad flow filter", "GET", "/snapshot?flow=banana", http.StatusBadRequest, "bad flow"},
		{"healthy snapshot", "GET", "/snapshot", http.StatusOK, `"flows"`},
		{"healthy stats", "GET", "/stats", http.StatusOK, `"sink"`},
		{"healthy healthz", "GET", "/healthz", http.StatusOK, `"ok": true`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.path, nil))
			if rec.Code != tc.status {
				t.Fatalf("%s %s: status %d, want %d (body %q)", tc.method, tc.path, rec.Code, tc.status, rec.Body.String())
			}
			if tc.body != "" && !strings.Contains(rec.Body.String(), tc.body) {
				t.Fatalf("%s %s: body lacks %q:\n%s", tc.method, tc.path, tc.body, rec.Body.String())
			}
		})
	}
}

// TestSnapshotDuringDrainReturns503 pins the drain contract: once
// Shutdown has begun, /snapshot answers 503 with a Retry-After instead of
// hanging or racing the teardown. /healthz and /stats stay readable (an
// operator watching a drain still needs them).
func TestSnapshotDuringDrainReturns503(t *testing.T) {
	srv, _ := newQuietServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/snapshot", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("snapshot during drain: status %d, want 503 (body %q)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 lacks a Retry-After header")
	}
	for _, path := range []string{"/healthz", "/stats"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s during drain: status %d, want 200", path, rec.Code)
		}
	}
}

// TestHTTPServerHardening pins the production guards on the daemon's HTTP
// server: header-read and idle timeouts, a header cap, and a bounded
// request body.
func TestHTTPServerHardening(t *testing.T) {
	srv, _ := newQuietServer(t)
	hs := srv.HTTPServer(nil)
	if hs.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: a half-open connect pins a goroutine forever")
	}
	if hs.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset: silent keep-alives are never shed")
	}
	if hs.MaxHeaderBytes <= 0 || hs.MaxHeaderBytes > 1<<20 {
		t.Errorf("MaxHeaderBytes %d out of a sane bound", hs.MaxHeaderBytes)
	}
	if hs.Handler == nil {
		t.Fatal("HTTPServer without a handler")
	}
	// The handler is wrapped in MaxBytesHandler: a body above the cap
	// must fail the read inside the handler rather than buffer forever.
	// Exercise it through a route that reads the body via the wrapper.
	probe := HardenedHTTPServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		buf := make([]byte, 4096)
		for {
			if _, err := r.Body.Read(buf); err != nil {
				if _, ok := err.(*http.MaxBytesError); ok {
					http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
					return
				}
				w.WriteHeader(http.StatusOK)
				return
			}
		}
	}))
	rec := httptest.NewRecorder()
	body := strings.NewReader(strings.Repeat("x", MaxRequestBody+1))
	probe.Handler.ServeHTTP(rec, httptest.NewRequest("POST", "/", body))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", rec.Code)
	}
}

// TestWithProfiling smoke-tests the opt-in pprof surface end to end: a
// real HTTP listener (the profile handler needs a flushable writer, not a
// recorder), a 1-second CPU profile that must come back 200 with a
// non-empty body, and the collector's own routes still served underneath.
// The plain Handler must NOT expose /debug/pprof/ — it is opt-in.
func TestWithProfiling(t *testing.T) {
	srv, _ := newQuietServer(t)
	ts := httptest.NewServer(WithProfiling(srv.Handler()))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 64)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof profile: status %d, want 200 (body %q)", resp.StatusCode, body[:n])
	}
	if n == 0 {
		t.Fatal("pprof profile: empty body")
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under WithProfiling: status %d, want 200", resp.StatusCode)
	}

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("plain Handler serves /debug/pprof/ (status %d): profiling must be opt-in", rec.Code)
	}
}

// TestEpochMismatchRefused pins the cluster-epoch gate: an exporter
// carrying a different epoch is refused at the handshake with a
// descriptive error, and nothing is ingested.
func TestEpochMismatchRefused(t *testing.T) {
	tb, err := NewTestbench(7, 5)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := pipeline.NewSink(tb.Engine, pipeline.Config{Shards: 1, Base: tb.Base})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	srv, err := New(tb.Engine, WithSink(sink), WithQueries(tb.Queries()...), WithEpoch(3))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())

	stale := HelloFor(tb.Engine, 1, "stale-map")
	stale.Epoch = 2
	if _, err := Dial(ln.Addr().String(), stale); err == nil || !strings.Contains(err.Error(), "epoch") {
		t.Fatalf("stale epoch dial: want an epoch-mismatch error, got %v", err)
	}

	fresh := HelloFor(tb.Engine, 1, "fresh-map")
	fresh.Epoch = 3
	ex, err := Dial(ln.Addr().String(), fresh)
	if err != nil {
		t.Fatalf("matching epoch refused: %v", err)
	}
	ex.Close()

	if st := srv.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected sessions %d, want 1", st.Rejected)
	}
}
