package collector

import (
	"fmt"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// Exporter is the switch side of a collector session: it dials the
// daemon, performs the wire.Hello handshake, and streams digest batches
// as checksummed frames. It is the transmit path cmd/pintload, the
// collector-scale scenario, and any embedded switch agent share.
//
// An Exporter is not safe for concurrent use; give each sending
// goroutine its own (each simulated switch owns one connection).
//
// By default the session runs with TCP_NODELAY set (every frame goes
// straight to the wire — lowest per-report latency, one syscall and
// often one small segment per frame). SetCoalesce trades that latency
// away for throughput by batching frames into fewer, larger writes.
type Exporter struct {
	conn    net.Conn
	scratch []byte // marshal + frame scratch, reused across Send calls
	packets uint64
	bytes   uint64
	// coalesce > 0 buffers marshaled frames in pending until at least
	// that many bytes accumulate; 0 writes every frame immediately.
	coalesce int
	pending  []byte
}

// HelloFor builds the session handshake for an exporter compiled under
// eng's execution plan.
func HelloFor(eng *core.Engine, exporterID uint64, name string) wire.Hello {
	return wire.Hello{Exporter: exporterID, PlanHash: eng.PlanHash(), Name: name}
}

// Dial connects to a collector at addr and performs the handshake.
func Dial(addr string, hello wire.Hello) (*Exporter, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	e, err := NewExporter(conn, hello)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return e, nil
}

// handshakeTimeout bounds the exporter-side handshake, mirroring the
// server's Config.HandshakeTimeout: dialing something that is not a
// collector (the HTTP port, say) must error, not hang waiting for an
// ack that will never come.
const handshakeTimeout = 10 * time.Second

// NewExporter performs the handshake over an existing connection and
// takes ownership of it (Close closes it).
func NewExporter(conn net.Conn, hello wire.Hello) (*Exporter, error) {
	// Go's net.TCPConn disables Nagle by default, but the exporter's
	// latency story depends on it, so set it explicitly rather than
	// inheriting a default that a custom dialer or future runtime could
	// change. Exporters want either immediate per-frame writes (NODELAY)
	// or application-level coalescing via SetCoalesce — never Nagle's
	// ack-gated middle ground, which would stall telemetry behind the
	// collector's read cadence.
	if tc, ok := conn.(*net.TCPConn); ok {
		if err := tc.SetNoDelay(true); err != nil {
			return nil, fmt.Errorf("collector: setting TCP_NODELAY: %w", err)
		}
	}
	buf, err := wire.AppendHello(nil, hello)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	if _, err := conn.Write(buf); err != nil {
		return nil, fmt.Errorf("collector: sending handshake: %w", err)
	}
	var ack [1]byte
	if _, err := conn.Read(ack[:]); err != nil {
		return nil, fmt.Errorf("collector: reading handshake ack: %w", err)
	}
	if err := wire.AckError(ack[0]); err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	return &Exporter{conn: conn, scratch: buf[:0]}, nil
}

// SetCoalesce sets the write-coalescing threshold in bytes. With n > 0,
// Send buffers marshaled frames until at least n bytes are pending, then
// writes them in one syscall; Flush (and Close) drain the remainder.
// With n <= 0 (the default) every frame is written immediately.
//
// The trade-off: coalescing cuts syscalls and small TCP segments —
// throughput for high-rate exporters feeding many small frames — but a
// buffered frame is invisible to the collector until the threshold
// fills or Flush runs, so per-report latency rises by up to one
// coalescing window. Pick immediate writes for interactive or sparse
// telemetry, coalescing for bulk replay and load generation. A few kB
// (wire MTU-to-64kB) is the useful range; the frame that crosses the
// threshold is never split.
func (e *Exporter) SetCoalesce(n int) {
	if n < 0 {
		n = 0
	}
	e.coalesce = n
}

// Send marshals one digest batch and writes it as a single frame — or,
// under SetCoalesce, stages it until the coalescing threshold fills.
// Empty batches are a no-op. When the collector's sink workers fall
// behind, the write blocks — TCP flow control carrying the sink's
// backpressure to the switch.
func (e *Exporter) Send(batch []core.PacketDigest) error {
	if len(batch) == 0 {
		return nil
	}
	// Header, payload, and CRC are built in the scratch buffer in one
	// pass — no separate marshal buffer, no header+payload re-copy.
	frame, err := wire.AppendMarshalFrame(e.scratch[:0], batch)
	if err != nil {
		return err
	}
	e.scratch = frame[:0]
	e.packets += uint64(len(batch))
	e.bytes += uint64(len(frame))
	if e.coalesce > 0 {
		e.pending = append(e.pending, frame...)
		if len(e.pending) < e.coalesce {
			return nil
		}
		return e.Flush()
	}
	if _, err := e.conn.Write(frame); err != nil {
		return fmt.Errorf("collector: sending frame: %w", err)
	}
	return nil
}

// Flush writes any frames staged by coalescing. A no-op when nothing is
// pending (so it is always safe to call, coalescing or not).
func (e *Exporter) Flush() error {
	if len(e.pending) == 0 {
		return nil
	}
	if _, err := e.conn.Write(e.pending); err != nil {
		return fmt.Errorf("collector: sending coalesced frames: %w", err)
	}
	e.pending = e.pending[:0]
	return nil
}

// Packets returns the packets sent so far.
func (e *Exporter) Packets() uint64 { return e.packets }

// Bytes returns the wire bytes sent so far (frame headers included).
func (e *Exporter) Bytes() uint64 { return e.bytes }

// Close drains any coalesced frames and ends the session; the collector
// sees a clean EOF at a frame boundary.
func (e *Exporter) Close() error {
	err := e.Flush()
	if cerr := e.conn.Close(); err == nil {
		err = cerr
	}
	return err
}
