package collector

import (
	"fmt"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// Exporter is the switch side of a collector session: it dials the
// daemon, performs the wire.Hello handshake, and streams digest batches
// as checksummed frames. It is the transmit path cmd/pintload, the
// collector-scale scenario, and any embedded switch agent share.
//
// An Exporter is not safe for concurrent use; give each sending
// goroutine its own (each simulated switch owns one connection).
type Exporter struct {
	conn    net.Conn
	scratch []byte // marshal + frame scratch, reused across Send calls
	packets uint64
	bytes   uint64
}

// HelloFor builds the session handshake for an exporter compiled under
// eng's execution plan.
func HelloFor(eng *core.Engine, exporterID uint64, name string) wire.Hello {
	return wire.Hello{Exporter: exporterID, PlanHash: eng.PlanHash(), Name: name}
}

// Dial connects to a collector at addr and performs the handshake.
func Dial(addr string, hello wire.Hello) (*Exporter, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	e, err := NewExporter(conn, hello)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return e, nil
}

// handshakeTimeout bounds the exporter-side handshake, mirroring the
// server's Config.HandshakeTimeout: dialing something that is not a
// collector (the HTTP port, say) must error, not hang waiting for an
// ack that will never come.
const handshakeTimeout = 10 * time.Second

// NewExporter performs the handshake over an existing connection and
// takes ownership of it (Close closes it).
func NewExporter(conn net.Conn, hello wire.Hello) (*Exporter, error) {
	buf, err := wire.AppendHello(nil, hello)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	if _, err := conn.Write(buf); err != nil {
		return nil, fmt.Errorf("collector: sending handshake: %w", err)
	}
	var ack [1]byte
	if _, err := conn.Read(ack[:]); err != nil {
		return nil, fmt.Errorf("collector: reading handshake ack: %w", err)
	}
	if err := wire.AckError(ack[0]); err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	return &Exporter{conn: conn, scratch: buf[:0]}, nil
}

// Send marshals one digest batch and writes it as a single frame. Empty
// batches are a no-op. When the collector's sink workers fall behind,
// the write blocks — TCP flow control carrying the sink's backpressure
// to the switch.
func (e *Exporter) Send(batch []core.PacketDigest) error {
	if len(batch) == 0 {
		return nil
	}
	// Header, payload, and CRC are built in the scratch buffer in one
	// pass — no separate marshal buffer, no header+payload re-copy.
	frame, err := wire.AppendMarshalFrame(e.scratch[:0], batch)
	if err != nil {
		return err
	}
	if _, err := e.conn.Write(frame); err != nil {
		return fmt.Errorf("collector: sending frame: %w", err)
	}
	e.scratch = frame[:0]
	e.packets += uint64(len(batch))
	e.bytes += uint64(len(frame))
	return nil
}

// Packets returns the packets sent so far.
func (e *Exporter) Packets() uint64 { return e.packets }

// Bytes returns the wire bytes sent so far (frame headers included).
func (e *Exporter) Bytes() uint64 { return e.bytes }

// Close ends the session; the collector sees a clean EOF at a frame
// boundary.
func (e *Exporter) Close() error { return e.conn.Close() }
