package collector

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/segstore"
)

// durableOpts is the deterministic store shape every durable test uses:
// injected counter clock, no fsync (tests hammer temp dirs).
func durableOpts(dir string) DurableOptions {
	var ts uint64
	return DurableOptions{
		DataDir: dir,
		NoSync:  true,
		Now:     func() uint64 { ts += 10; return ts },
	}
}

// ingestWaves streams nFlows testbench flows of pktsPer packets into the
// durable sink and returns the flat digest stream in arrival order.
func ingestWaves(t *testing.T, tb *Testbench, d *DurableSink, exp uint64, nFlows, pktsPer int) []core.PacketDigest {
	t.Helper()
	var all []core.PacketDigest
	for f := 0; f < nFlows; f++ {
		batch := tb.FlowBatch(exp, f, pktsPer, nil, nil)
		d.Sink.Ingest(batch)
		all = append(all, batch...)
	}
	return all
}

// TestDurableRoundTrip is the headline guarantee without the crash: a
// closed-and-reopened durable collector answers byte-identically to the
// live one it used to be, for shards {1, 4}.
func TestDurableRoundTrip(t *testing.T) {
	tb := mustTestbench(t, 7)
	for _, shards := range []int{1, 4} {
		dir := t.TempDir()
		pcfg := pipeline.Config{Shards: shards, BatchSize: 64, Base: tb.Base}
		d, err := OpenDurableSink(tb.Engine, tb.Queries(), pcfg, durableOpts(dir))
		if err != nil {
			t.Fatal(err)
		}
		stream := ingestWaves(t, tb, d, 1, 4, 300)
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := d.VerifyAgainstLive(); err != nil {
			t.Fatalf("shards=%d: live store diverges: %v", shards, err)
		}
		live, err := SnapshotAnswers(d.Sink.Snapshot(), tb.Queries(), nil)
		if err != nil {
			t.Fatal(err)
		}
		liveJSON := answersJSON(t, live)
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}

		re, err := OpenDurableSink(tb.Engine, tb.Queries(), pcfg, durableOpts(dir))
		if err != nil {
			t.Fatalf("shards=%d: reopen: %v", shards, err)
		}
		if re.Replayed != uint64(len(stream)) {
			t.Fatalf("shards=%d: replayed %d packets, want %d", shards, re.Replayed, len(stream))
		}
		if re.Recovery.TornBytes != 0 {
			t.Fatalf("shards=%d: clean close reported a torn tail: %+v", shards, re.Recovery)
		}
		recovered, err := SnapshotAnswers(re.Sink.Snapshot(), tb.Queries(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(answersJSON(t, recovered), liveJSON) {
			t.Fatalf("shards=%d: recovered answers differ from the uncrashed run", shards)
		}
		if err := re.VerifyAgainstLive(); err != nil {
			t.Fatalf("shards=%d: recovered store diverges: %v", shards, err)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDurableAbandonRecovers is the in-process SIGKILL: whatever reached
// the file is recovered bit-identically to an uncrashed collector fed
// the same durable prefix, and the loss is exactly the unflushed tail.
func TestDurableAbandonRecovers(t *testing.T) {
	tb := mustTestbench(t, 13)
	dir := t.TempDir()
	pcfg := pipeline.Config{Shards: 4, BatchSize: 64, Base: tb.Base}
	d, err := OpenDurableSink(tb.Engine, tb.Queries(), pcfg, durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	stream := ingestWaves(t, tb, d, 1, 3, 200)
	if err := d.Checkpoint(); err != nil { // first wave is durable
		t.Fatal(err)
	}
	stream = append(stream, ingestWaves(t, tb, d, 2, 3, 200)...) // second wave races the writer
	d.Abandon()

	re, err := OpenDurableSink(tb.Engine, tb.Queries(), pcfg, durableOpts(dir))
	if err != nil {
		t.Fatalf("recovery after abandon: %v", err)
	}
	defer re.Close()
	replayed := re.Replayed
	if replayed < 600 {
		t.Fatalf("checkpointed wave lost: only %d packets recovered", replayed)
	}
	if replayed > uint64(len(stream)) {
		t.Fatalf("recovered %d packets, only %d were ever ingested — double count", replayed, len(stream))
	}

	// Bit-for-bit identity with an uncrashed collector that ingested the
	// durable prefix: batches are logged whole and in arrival order, so
	// the recovered state must equal the first `replayed` packets of the
	// original stream. Conservation first, answers second.
	ref, err := pipeline.NewSink(tb.Engine, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.Ingest(stream[:replayed])
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	want, err := SnapshotAnswers(ref.Snapshot(), tb.Queries(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SnapshotAnswers(re.Sink.Snapshot(), tb.Queries(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(answersJSON(t, got), answersJSON(t, want)) {
		t.Fatalf("recovered answers differ from an uncrashed run over the durable prefix (%d pkts)", replayed)
	}
}

// newDurableServer builds a collector whose sink is durable, with the
// background checkpoint ticker disabled so tests control flush points.
func newDurableServer(t *testing.T, tb *Testbench, dir string, opts DurableOptions) (*Server, *DurableSink) {
	t.Helper()
	d, err := OpenDurableSink(tb.Engine, tb.Queries(), pipeline.Config{Shards: 2, Base: tb.Base}, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	srv, err := New(tb.Engine, WithSink(d.Sink), WithQueries(tb.Queries()...),
		WithDurable(d), WithCheckpointEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	return srv, d
}

// TestSnapshotWindowErrorPaths pins the /snapshot?since/until contract:
// bad timestamps and inverted windows are 400s, a window entirely behind
// the retention horizon is a 400, one straddling it answers with
// X-Pint-Partial: 1 — the same convention the federation frontend uses.
func TestSnapshotWindowErrorPaths(t *testing.T) {
	tb := mustTestbench(t, 11)
	dir := t.TempDir()
	opts := durableOpts(dir)
	opts.MaxSegments = 1 // retention on: rotations delete history
	srv, d := newDurableServer(t, tb, dir, opts)
	h := srv.Handler()

	// Build history behind the horizon: two waves with a forced rotation
	// between them, so wave 1's segment is deleted.
	for f := 0; f < 2; f++ {
		d.Sink.Ingest(tb.FlowBatch(1, f, 100, nil, nil))
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Store.Rotate(); err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 2; f++ {
		d.Sink.Ingest(tb.FlowBatch(2, f, 100, nil, nil))
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Store.Rotate(); err != nil { // seals wave 2, deletes wave 1
		t.Fatal(err)
	}
	horizon := d.Store.HorizonTS()
	if horizon == 0 {
		t.Fatal("retention never advanced the horizon")
	}

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}
	cases := []struct {
		name   string
		path   string
		status int
		body   string
	}{
		{"bad since", "/snapshot?since=banana", http.StatusBadRequest, "since: bad timestamp"},
		{"bad until", "/snapshot?since=1&until=2x", http.StatusBadRequest, "until: bad timestamp"},
		{"inverted window", "/snapshot?since=100&until=50", http.StatusBadRequest, "inverted"},
		{"behind horizon", "/snapshot?since=0&until=1", http.StatusBadRequest, "retention"},
		{"bad flow in window", "/snapshot?since=0&flow=zzz", http.StatusBadRequest, "bad flow"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := get(tc.path)
			if rec.Code != tc.status {
				t.Fatalf("%s: status %d, want %d (body %q)", tc.path, rec.Code, tc.status, rec.Body.String())
			}
			if !strings.Contains(rec.Body.String(), tc.body) {
				t.Fatalf("%s: body lacks %q:\n%s", tc.path, tc.body, rec.Body.String())
			}
		})
	}

	// A window straddling the horizon answers, flagged partial.
	rec := get("/snapshot?since=0")
	if rec.Code != http.StatusOK {
		t.Fatalf("straddling window: status %d (body %q)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get(PartialHeader) != "1" {
		t.Fatalf("straddling window not flagged %s", PartialHeader)
	}
	var out struct {
		Flows []FlowAnswers `json:"flows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("window body: %v", err)
	}
	if len(out.Flows) != 2 { // only wave 2 survives retention
		t.Fatalf("straddling window answered %d flows, want 2", len(out.Flows))
	}

	// A window entirely above the horizon is complete: no partial header.
	rec = get("/snapshot?since=" + strconv.FormatUint(horizon+1, 10))
	if rec.Code != http.StatusOK || rec.Header().Get(PartialHeader) != "" {
		t.Fatalf("clean window: status %d partial %q", rec.Code, rec.Header().Get(PartialHeader))
	}

	// Without a durable store the window surface is an explicit 400.
	rec = httptest.NewRecorder()
	srvPlain, err := New(tb.Engine, WithSink(mustPlainSink(t, tb)), WithQueries(tb.Queries()...))
	if err != nil {
		t.Fatal(err)
	}
	srvPlain.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/snapshot?since=0", nil))
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "data-dir") {
		t.Fatalf("windowed snapshot without a store: status %d body %q", rec.Code, rec.Body.String())
	}
}

func mustPlainSink(t *testing.T, tb *Testbench) *pipeline.Sink {
	t.Helper()
	sink, err := pipeline.NewSink(tb.Engine, pipeline.Config{Shards: 1, Base: tb.Base})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sink.Close() })
	return sink
}

// TestDurableCheckpointTicker: a Server with a positive CheckpointEvery
// runs the checkpoint cadence on its own once served — no explicit
// Checkpoint call — and Shutdown stops the ticker and lands the final
// checkpoint. The cadence must NOT start before Serve: a constructed-but
// -never-served Server would otherwise leak a ticker goroutine that keeps
// checkpointing a DurableSink its caller may already have closed.
func TestDurableCheckpointTicker(t *testing.T) {
	tb := mustTestbench(t, 5)
	dir := t.TempDir()
	d, err := OpenDurableSink(tb.Engine, tb.Queries(), pipeline.Config{Shards: 2, Base: tb.Base}, durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Ingest before the server exists: the ticker goroutine must be the
	// only checkpoint caller (single-ingester contract).
	stream := ingestWaves(t, tb, d, 1, 3, 100)
	srv, err := New(tb.Engine, WithSink(d.Sink), WithQueries(tb.Queries()...),
		WithDurable(d), WithCheckpointEvery(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	countCkpts := func() int {
		n := 0
		if err := d.Store.Scan(0, ^uint64(0), func(b segstore.Block) error {
			if b.Kind == segstore.KindCheckpoint {
				n++
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	// Construction alone starts nothing: many intervals later the log
	// still holds zero checkpoint records.
	time.Sleep(20 * time.Millisecond)
	if n := countCkpts(); n != 0 {
		t.Fatalf("cadence ran before Serve: %d checkpoint records", n)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	deadline := time.Now().Add(30 * time.Second)
	for countCkpts() == 0 || d.Store.Stats().Packets != uint64(len(stream)) {
		if time.Now().After(deadline) {
			t.Fatalf("background cadence flushed %d of %d packets, %d checkpoint records",
				d.Store.Stats().Packets, len(stream), countCkpts())
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if ts := d.Store.MaxTS(); ts == 0 {
		t.Fatal("flushed store reports MaxTS 0")
	}
}

// TestDurableEvictionRecords: a policy eviction lands in the log as a
// KindEvict block whose Answers body is the flow's finalized JSON — what
// the flow would have answered live, rendered by the snapshot encoder.
func TestDurableEvictionRecords(t *testing.T) {
	tb := mustTestbench(t, 9)
	dir := t.TempDir()
	pcfg := pipeline.Config{
		Shards: 1, Base: tb.Base,
		Policy: func() pipeline.EvictionPolicy { return pipeline.NewLRU(2) },
	}
	d, err := OpenDurableSink(tb.Engine, tb.Queries(), pcfg, durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	ingestWaves(t, tb, d, 1, 6, 50) // 6 flows through a 2-flow cap
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	var evicted []segstore.EvictRecord
	err = d.Store.Scan(0, ^uint64(0), func(b segstore.Block) error {
		if b.Kind != segstore.KindEvict {
			return nil
		}
		ev, err := segstore.DecodeEvict(b.Body)
		if err != nil {
			return err
		}
		evicted = append(evicted, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) == 0 {
		t.Fatal("LRU evictions never reached the log")
	}
	for _, ev := range evicted {
		var ans FlowAnswers
		if err := json.Unmarshal(ev.Answers, &ans); err != nil {
			t.Fatalf("evict record for flow %d: answers not JSON: %v\n%s", ev.Flow, err, ev.Answers)
		}
		if ans.Flow != uint64(ev.Flow) || len(ans.Answers) == 0 {
			t.Fatalf("evict record answers mismatch: record flow %d, body %s", ev.Flow, ev.Answers)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableStatsSurface: /stats exposes the store's accounting and the
// recovery report when the daemon is durable.
func TestDurableStatsSurface(t *testing.T) {
	tb := mustTestbench(t, 3)
	dir := t.TempDir()
	srv, d := newDurableServer(t, tb, dir, durableOpts(dir))
	d.Sink.Ingest(tb.FlowBatch(1, 0, 50, nil, nil))
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{`"durable"`, `"store"`, `"recovery"`, `"replayed"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("durable stats lack %s:\n%s", want, body)
		}
	}
}
