package collector

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// This file is the exporter side of a federated collector fleet: one
// logical switch session fanned out over N collector daemons, each digest
// routed to its flow's home collector so per-flow decode state never
// splits across nodes. The routing function is injected (the fleet
// partitioner lives in internal/federation, which builds on this
// package), keeping the dependency arrow pointing one way.

// FleetExporter streams digest batches to a fleet of collectors, routing
// every packet to its flow's home node. It owns one Exporter session per
// fleet member, all opened with the same Hello (exporter ID, plan hash,
// and — critically — cluster epoch; a member on a different epoch refuses
// the whole fleet session). Like Exporter it is single-goroutine.
type FleetExporter struct {
	exps  []*Exporter
	route func(core.FlowKey) int
	bufs  [][]core.PacketDigest
	batch int
	// hello is the template every member session handshakes with; its
	// Epoch field tracks the fleet epoch the sessions are currently at
	// (rehome advances it).
	hello    wire.Hello
	addrs    []string
	coalesce int
	// fetch, when non-nil, enables live re-routing across fleet resizes
	// (see Connect's WithRosterFetch). gen counts session generations
	// (dialAll bumps it); nudgedGen latches the generation a collector's
	// reroute signal arrived at. A nudge only triggers a rehome while its
	// generation is still live — each exporter holds one session per
	// member and the fence nudges all of them, so late duplicates from an
	// already-replaced generation must not re-route the new sessions.
	fetch     func() (FleetRoster, error)
	gen       atomic.Uint64
	nudgedGen atomic.Uint64
}

// rerouteRequested reports whether a nudge from the *current* session
// generation is pending.
func (f *FleetExporter) rerouteRequested() bool {
	g := f.gen.Load()
	return g != 0 && f.nudgedGen.Load() == g
}

// DialFleet opens one exporter session per fleet member address. route
// maps a flow key to an index into addrs (the fleet partitioner); batch
// is the per-member frame size in packets (values < 1 mean 256). Any
// member refusing the handshake fails the whole dial — a fleet where some
// members reject the epoch would silently drop those members' flows.
//
// DialFleet is the static compatibility path: the sessions are pinned to
// addrs and hello.Epoch for their whole life. Connect is the options
// entry point that subsumes it (and adds live re-routing).
func DialFleet(addrs []string, hello wire.Hello, route func(core.FlowKey) int, batch int) (*FleetExporter, error) {
	return dialFleet(addrs, hello, route, batch, 0, nil)
}

// Members returns the fleet size.
func (f *FleetExporter) Members() int { return len(f.exps) }

// SetCoalesce sets every member session's write-coalescing threshold
// (see Exporter.SetCoalesce for the latency/throughput trade-off).
// Fleet Flush and Close drain member coalescing buffers too.
func (f *FleetExporter) SetCoalesce(n int) {
	f.coalesce = n
	for _, ex := range f.exps {
		if ex != nil {
			ex.SetCoalesce(n)
		}
	}
}

// Send routes every packet of batch to its flow's home member, framing
// and transmitting each member's buffer whenever it fills. Packet order
// is preserved per flow (a flow has exactly one home and one TCP stream),
// which is all the recording tier's determinism needs.
func (f *FleetExporter) Send(batch []core.PacketDigest) error {
	if f.fetch != nil && f.rerouteRequested() {
		if err := f.rehome(); err != nil {
			return err
		}
	}
	for i := range batch {
		n := f.route(batch[i].Flow)
		if n < 0 || n >= len(f.exps) {
			return fmt.Errorf("collector: route sent flow %v to member %d of %d", batch[i].Flow, n, len(f.exps))
		}
		f.bufs[n] = append(f.bufs[n], batch[i])
		if len(f.bufs[n]) >= f.batch {
			if err := f.exps[n].Send(f.bufs[n]); err != nil {
				return err
			}
			f.bufs[n] = f.bufs[n][:0]
		}
	}
	return nil
}

// Flush transmits every member's partial routing buffer, then drains
// each session's coalescing buffer, so everything routed so far is on
// the wire when Flush returns.
func (f *FleetExporter) Flush() error {
	for n := range f.bufs {
		if f.exps[n] == nil {
			continue
		}
		if len(f.bufs[n]) > 0 {
			if err := f.exps[n].Send(f.bufs[n]); err != nil {
				return err
			}
			f.bufs[n] = f.bufs[n][:0]
		}
		if err := f.exps[n].Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Packets sums the packets sent across all member sessions.
func (f *FleetExporter) Packets() uint64 {
	var n uint64
	for _, ex := range f.exps {
		if ex != nil {
			n += ex.Packets()
		}
	}
	return n
}

// Bytes sums the wire bytes sent across all member sessions.
func (f *FleetExporter) Bytes() uint64 {
	var n uint64
	for _, ex := range f.exps {
		if ex != nil {
			n += ex.Bytes()
		}
	}
	return n
}

// Close flushes the buffers and ends every member session, returning the
// first error.
func (f *FleetExporter) Close() error {
	err := f.Flush()
	for _, ex := range f.exps {
		if ex == nil {
			continue
		}
		if cerr := ex.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ExporterLoad is one connection's contribution to a steady-state run:
// what it sent, and over how long, so callers can report per-connection
// and aggregate rates.
type ExporterLoad struct {
	Exporter uint64
	Packets  uint64
	Bytes    uint64
	Elapsed  time.Duration
}

// Mpkts returns the connection's packet rate in Mpkt/s.
func (l ExporterLoad) Mpkts() float64 {
	if l.Elapsed <= 0 {
		return 0
	}
	return float64(l.Packets) / l.Elapsed.Seconds() / 1e6
}

// StreamSteadyState drives nExporters connections at full rate for (at
// least) the given duration: each exporter pre-encodes its flows' digest
// batches once, then replays them over its fleet session until the
// deadline, so the timed loop measures the transmit + ingest path, not
// encoding. coalesce > 0 sets each session's write-coalescing threshold
// in bytes (see Exporter.SetCoalesce). Every exporter finishes its
// current sweep before stopping — the deadline is checked between
// frames — and flushes before its counters are read, so the returned
// loads are exact. Results are ordered by exporter ID.
func (tb *Testbench) StreamSteadyState(addrs []string, route func(core.FlowKey) int, epoch uint64,
	nExporters, flowsPer, pktsPer, batch, coalesce int, duration time.Duration) ([]ExporterLoad, error) {
	if err := ValidateShape(nExporters, flowsPer, pktsPer); err != nil {
		return nil, err
	}
	if batch < 1 || batch > pktsPer {
		batch = pktsPer
	}
	deadline := time.Now().Add(duration)
	loads := make([]ExporterLoad, nExporters)
	expErrs := make([]error, nExporters)
	var wg sync.WaitGroup
	for e := 0; e < nExporters; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			expErrs[e] = func() error {
				exp := uint64(e) + 1
				fe, err := Connect(tb.Engine, exp, fmt.Sprintf("load-%d", exp),
					WithAddrs(addrs...), WithRoute(route), WithSessionEpoch(epoch),
					WithTenant(tb.Tenant), WithFrameBatch(batch), WithCoalesce(coalesce),
					WithRosterFetch(tb.Fetch))
				if err != nil {
					return err
				}
				flows := make([][]core.PacketDigest, flowsPer)
				vals := make([]core.HopValues, pktsPer)
				for f := 0; f < flowsPer; f++ {
					flows[f] = tb.FlowBatch(exp, f, pktsPer, nil, vals)
				}
				start := time.Now()
				for ok := true; ok; ok = time.Now().Before(deadline) {
					for _, pkts := range flows {
						if err := fe.Send(pkts); err != nil {
							fe.Close()
							return err
						}
					}
				}
				if err := fe.Flush(); err != nil {
					fe.Close()
					return err
				}
				loads[e] = ExporterLoad{
					Exporter: exp,
					Packets:  fe.Packets(),
					Bytes:    fe.Bytes(),
					Elapsed:  time.Since(start),
				}
				return fe.Close()
			}()
		}(e)
	}
	wg.Wait()
	for e, err := range expErrs {
		if err != nil {
			return loads, fmt.Errorf("collector: exporter %d: %w", e+1, err)
		}
	}
	return loads, nil
}

// StreamFleetDeployment is the fleet mode of StreamDeployment: the same
// (nExporters × flowsPer × pktsPer) testbench deployment, but every
// simulated switch opens one session per fleet member and routes each
// flow to route(flow)'s collector under the given cluster epoch. With one
// address and a constant route it degenerates to StreamDeployment.
// cmd/pintload in -addr a,b,c form is this function plus flags.
func (tb *Testbench) StreamFleetDeployment(addrs []string, route func(core.FlowKey) int, epoch uint64,
	nExporters, flowsPer, pktsPer, batch int) (packets, bytes uint64, err error) {
	if err := ValidateShape(nExporters, flowsPer, pktsPer); err != nil {
		return 0, 0, err
	}
	if batch < 1 || batch > pktsPer {
		batch = pktsPer
	}
	var wg sync.WaitGroup
	expErrs := make([]error, nExporters)
	var statMu sync.Mutex
	for e := 0; e < nExporters; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			expErrs[e] = func() error {
				exp := uint64(e) + 1
				fe, err := Connect(tb.Engine, exp, fmt.Sprintf("load-%d", exp),
					WithAddrs(addrs...), WithRoute(route), WithSessionEpoch(epoch),
					WithTenant(tb.Tenant), WithFrameBatch(batch), WithRosterFetch(tb.Fetch))
				if err != nil {
					return err
				}
				var pkts []core.PacketDigest
				vals := make([]core.HopValues, pktsPer)
				for f := 0; f < flowsPer; f++ {
					pkts = tb.FlowBatch(exp, f, pktsPer, pkts, vals)
					if err := fe.Send(pkts); err != nil {
						fe.Close()
						return err
					}
				}
				// Flush before reading the counters so the tail buffers
				// are part of the reported totals.
				if err := fe.Flush(); err != nil {
					fe.Close()
					return err
				}
				statMu.Lock()
				packets += fe.Packets()
				bytes += fe.Bytes()
				statMu.Unlock()
				return fe.Close()
			}()
		}(e)
	}
	wg.Wait()
	for e, err := range expErrs {
		if err != nil {
			return packets, bytes, fmt.Errorf("collector: exporter %d: %w", e+1, err)
		}
	}
	return packets, bytes, nil
}
