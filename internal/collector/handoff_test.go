package collector

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// TestHandoffLoopback is the collector-level hand-off contract: stream
// half of every flow into collector A, drain two flows' states with
// ExportFlows, ship them to collector B with SendHandoff over real TCP,
// stream each flow's second half to its current home, and require the
// merged A+B answers byte-identical to the whole deployment ingested
// in-process — moved state carries its exact decode and sketch
// positions.
func TestHandoffLoopback(t *testing.T) {
	const (
		flowsPer = 4
		pktsPer  = 80
		pktsA    = pktsPer / 2
		shards   = 2
	)
	tb := mustTestbench(t, 41)
	sinkA, srvA := newServedSink(t, tb, shards)
	sinkB, srvB := newServedSink(t, tb, shards)

	exp := uint64(1)
	batches := make([][]core.PacketDigest, flowsPer)
	for f := 0; f < flowsPer; f++ {
		batches[f] = tb.FlowBatch(exp, f, pktsPer, nil, nil)
	}

	// Phase A: everything into A.
	exA, err := Dial(srvA.Addr().String(), HelloFor(tb.Engine, exp, "pre"))
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < flowsPer; f++ {
		if err := exA.Send(batches[f][:pktsA]); err != nil {
			t.Fatal(err)
		}
	}
	if err := exA.Close(); err != nil {
		t.Fatal(err)
	}
	waitPackets(t, srvA, uint64(flowsPer*pktsA))

	// Move flows 0 and 2 to B.
	moving := []core.FlowKey{tb.FlowKeyFor(exp, 0), tb.FlowKeyFor(exp, 2)}
	states, err := srvA.ExportFlows(moving)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != len(moving) {
		t.Fatalf("drained %d of %d flows", len(states), len(moving))
	}
	// A flow the source never tracked is skipped, not an error.
	if extra, err := srvA.ExportFlows([]core.FlowKey{99999}); err != nil || len(extra) != 0 {
		t.Fatalf("unknown flow: %d states, %v", len(extra), err)
	}
	sent, err := SendHandoff(srvB.Addr().String(), HelloFor(tb.Engine, 1<<40, "handoff"), states)
	if err != nil {
		t.Fatal(err)
	}
	if sent != len(moving) {
		t.Fatalf("shipped %d of %d flows", sent, len(moving))
	}
	waitHandoffFlows(t, srvB, uint64(len(moving)))

	// Phase B: second halves to each flow's current home.
	exA, err = Dial(srvA.Addr().String(), HelloFor(tb.Engine, exp, "post-a"))
	if err != nil {
		t.Fatal(err)
	}
	exB, err := Dial(srvB.Addr().String(), HelloFor(tb.Engine, exp, "post-b"))
	if err != nil {
		t.Fatal(err)
	}
	movedSet := map[core.FlowKey]bool{moving[0]: true, moving[1]: true}
	for f := 0; f < flowsPer; f++ {
		dst := exA
		if movedSet[tb.FlowKeyFor(exp, f)] {
			dst = exB
		}
		if err := dst.Send(batches[f][pktsA:]); err != nil {
			t.Fatal(err)
		}
	}
	if err := exA.Close(); err != nil {
		t.Fatal(err)
	}
	if err := exB.Close(); err != nil {
		t.Fatal(err)
	}
	waitPackets(t, srvA, uint64(flowsPer*pktsA+(flowsPer-len(moving))*(pktsPer-pktsA)))
	waitPackets(t, srvB, uint64(len(moving)*(pktsPer-pktsA)))

	// Merge A+B and compare against the in-process whole-deployment run.
	recA, err := sinkA.Snapshot().Merged()
	if err != nil {
		t.Fatal(err)
	}
	recB, err := sinkB.Snapshot().Merged()
	if err != nil {
		t.Fatal(err)
	}
	if err := recA.Merge(recB); err != nil {
		t.Fatal(err)
	}
	got := answersJSON(t, Answers(recA, tb.Queries(), recA.Flows()))

	ref, err := pipeline.NewSink(tb.Engine, pipeline.Config{Shards: shards, Base: tb.Base})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for f := 0; f < flowsPer; f++ {
		ref.Ingest(batches[f])
	}
	ref.Barrier()
	refRec, err := ref.Snapshot().Merged()
	if err != nil {
		t.Fatal(err)
	}
	want := answersJSON(t, Answers(refRec, tb.Queries(), refRec.Flows()))
	if !bytes.Equal(got, want) {
		t.Fatal("handed-off deployment diverges from the in-process reference")
	}
}

// TestHandoffDuplicateRefused: importing a flow the destination already
// tracks must be refused (Recording.Merge detects the split), not
// silently double-counted.
func TestHandoffDuplicateRefused(t *testing.T) {
	tb := mustTestbench(t, 43)
	_, srvA := newServedSink(t, tb, 1)
	_, srvB := newServedSink(t, tb, 1)

	exp := uint64(2)
	batch := tb.FlowBatch(exp, 0, 50, nil, nil)
	ex, err := Dial(srvA.Addr().String(), HelloFor(tb.Engine, exp, "dup"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Send(batch); err != nil {
		t.Fatal(err)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	waitPackets(t, srvA, 50)
	flow := tb.FlowKeyFor(exp, 0)
	states, err := srvA.ExportFlows([]core.FlowKey{flow})
	if err != nil || len(states) != 1 {
		t.Fatalf("export: %d states, %v", len(states), err)
	}
	if _, err := SendHandoff(srvB.Addr().String(), HelloFor(tb.Engine, 1<<40, "dup-1"), states); err != nil {
		t.Fatal(err)
	}
	waitHandoffFlows(t, srvB, 1)

	// Ship the same flow again: the import must not count a second time.
	if _, err := SendHandoff(srvB.Addr().String(), HelloFor(tb.Engine, 1<<40, "dup-2"), states); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if got := srvB.HandoffFlows(); got != 1 {
		t.Fatalf("duplicate import counted: HandoffFlows = %d, want 1", got)
	}
}

// TestExportFlowsRequiresQueries: a server built without its query list
// cannot serialize flow state and must say so.
func TestExportFlowsRequiresQueries(t *testing.T) {
	tb := mustTestbench(t, 44)
	sink, err := pipeline.NewSink(tb.Engine, pipeline.Config{Shards: 1, Base: tb.Base})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	srv, err := New(tb.Engine, WithSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ExportFlows([]core.FlowKey{1}); err == nil {
		t.Fatal("ExportFlows without WithQueries succeeded")
	}
}

// waitHandoffFlows polls the import counter — hand-off sessions close
// without waiting for the destination's read loop to drain.
func waitHandoffFlows(t *testing.T, s *Server, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.HandoffFlows() < want {
		if !time.Now().Before(deadline) {
			t.Fatalf("imported %d of %d handed-off flows at deadline", s.HandoffFlows(), want)
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.HandoffFlows(); got != want {
		t.Fatalf("imported %d flows, want %d", got, want)
	}
}

// waitPackets polls the server's ingest counter up to a deadline.
func waitPackets(t *testing.T, s *Server, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Stats()
		if st.Packets == want && st.Active == 0 {
			return
		}
		if st.Packets > want {
			t.Fatalf("ingested %d packets, want %d", st.Packets, want)
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("ingested %d of %d packets at deadline", st.Packets, want)
		}
		time.Sleep(time.Millisecond)
	}
}
