package collector

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/admit"
	"repro/internal/pipeline"
)

// TestTenantOverloadLoopback is the end-to-end QoS contract over real
// TCP sessions: a hog tenant far over its quota is shed (visibly, in
// both the server counters and its /stats tenant entry) while a victim
// session on the roomy default tenant — speaking the v2 handshake, so
// also proving v2 exporters land in the default tenant — loses nothing
// and answers byte-identically to the same stream against a collector
// with no quota policy at all.
func TestTenantOverloadLoopback(t *testing.T) {
	tb := mustTestbench(t, 23)
	policy, err := admit.ParsePolicy("hog=100/100,*=1e9")
	if err != nil {
		t.Fatal(err)
	}
	policy.Seed = tb.Seed
	// AIMD headroom far above the offered load: the controller runs (so
	// /stats grows a capacity section) without granting < 1.
	policy.Capacity.Initial = 1e8
	sink, srv := newServedSink(t, tb, 2, WithTenantPolicy(policy))
	refSink, ref := newServedSink(t, tb, 2)

	const (
		hogFlows = 4
		hogPkts  = 2000
		vicFlows = 3
		vicPkts  = 400
	)
	hogHello := HelloFor(tb.Engine, 1, "hog-1")
	hogHello.Tenant = "hog"
	exH, err := Dial(srv.Addr().String(), hogHello)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < hogFlows; f++ {
		if err := exH.Send(tb.FlowBatch(1, f, hogPkts, nil, nil)); err != nil {
			t.Fatal(err)
		}
	}
	if err := exH.Close(); err != nil {
		t.Fatal(err)
	}
	// The victim speaks the v2 handshake (no tenant field on the wire)
	// to both the quota'd server and the policy-free reference.
	for _, s := range []*Server{srv, ref} {
		exV, err := Dial(s.Addr().String(), HelloFor(tb.Engine, 2, "victim"))
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < vicFlows; f++ {
			if err := exV.Send(tb.FlowBatch(2, f, vicPkts, nil, nil)); err != nil {
				t.Fatal(err)
			}
		}
		if err := exV.Close(); err != nil {
			t.Fatal(err)
		}
	}
	waitForPackets(t, srv, hogFlows*hogPkts+vicFlows*vicPkts)
	waitForPackets(t, ref, vicFlows*vicPkts)
	for _, p := range []struct {
		srv  *Server
		sink *pipeline.Sink
	}{{srv, sink}, {ref, refSink}} {
		p.srv.ingestGate.Lock()
		p.sink.Flush()
		p.sink.Barrier()
		p.srv.ingestGate.Unlock()
	}

	// The hog was shed hard: its quota admits ~100 burst + 100/s, and it
	// offered 8000 packets in a few seconds at most.
	stats := srv.StatsV1()
	if stats.Schema != StatsSchemaV1 {
		t.Fatalf("stats schema = %q, want %q", stats.Schema, StatsSchemaV1)
	}
	byName := map[string]admit.TenantStats{}
	for _, ts := range stats.Tenants {
		byName[ts.Tenant] = ts
	}
	hog, ok := byName["hog"]
	if !ok {
		t.Fatalf("no hog tenant in stats: %+v", stats.Tenants)
	}
	if hog.Offered != hogFlows*hogPkts {
		t.Fatalf("hog offered = %d, want %d", hog.Offered, hogFlows*hogPkts)
	}
	if hog.Shed == 0 || hog.Admitted+hog.Shed != hog.Offered {
		t.Fatalf("hog shed %d of %d (admitted %d): want shed > 0 and shed+admitted == offered",
			hog.Shed, hog.Offered, hog.Admitted)
	}
	if hog.CountScale <= 1 {
		t.Fatalf("hog count scale = %v, want > 1", hog.CountScale)
	}
	if got := srv.Stats().Shed; got != hog.Shed {
		t.Fatalf("server shed = %d, tenant shed = %d", got, hog.Shed)
	}
	// The v2 victim session landed in the default tenant and lost nothing.
	vic, ok := byName[admit.DefaultTenant]
	if !ok {
		t.Fatalf("no %q tenant in stats: %+v", admit.DefaultTenant, stats.Tenants)
	}
	if vic.Offered != vicFlows*vicPkts || vic.Shed != 0 {
		t.Fatalf("victim offered %d shed %d, want %d shed 0", vic.Offered, vic.Shed, vicFlows*vicPkts)
	}

	// The raw /stats JSON is the versioned shape with a tenants section.
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /stats: %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{`"schema": "pint.stats.v1"`, `"tenants"`, `"tenant": "hog"`, `"capacity"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/stats lacks %s: %s", want, body)
		}
	}

	// Victim conservation, end to end: every victim flow answers
	// byte-identically on the quota'd server and the policy-free one.
	for f := 0; f < vicFlows; f++ {
		flow := uint64(tb.FlowKeyFor(2, f))
		var got [2][]byte
		for i, s := range []*Server{srv, ref} {
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/snapshot?flow="+jsonNumber(flow), nil))
			if rec.Code != 200 {
				t.Fatalf("GET /snapshot flow %d: %d", flow, rec.Code)
			}
			got[i] = rec.Body.Bytes()
		}
		if !bytes.Equal(got[0], got[1]) {
			t.Fatalf("victim flow %d answers differ under quota policy:\nquota: %s\nref:   %s",
				flow, got[0], got[1])
		}
	}

	// The JSON wire form of the tenant entries round-trips through the
	// accumulator the federation frontend uses.
	var reparsed StatsV1
	if err := json.Unmarshal([]byte(body), &reparsed); err != nil {
		t.Fatal(err)
	}
	total := StatsV1{Schema: StatsSchemaV1}
	total.Accumulate(reparsed)
	total.Accumulate(reparsed)
	for _, ts := range total.Tenants {
		if ts.Tenant == "hog" && ts.Offered != 2*hog.Offered {
			t.Fatalf("accumulated hog offered = %d, want %d", ts.Offered, 2*hog.Offered)
		}
	}

	shutdownServer(t, srv)
	shutdownServer(t, ref)
}
