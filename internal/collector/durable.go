package collector

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/segstore"
)

// This file wires the durable tier (internal/segstore) into the
// collector: open-with-recovery, replay-before-serve, the background
// checkpoint cadence, and the historical /snapshot window path.

// DurableOptions shapes a collector's durable tier.
type DurableOptions struct {
	// DataDir is the segment-log directory (created if missing).
	DataDir string
	// SegmentBytes / MaxSegments / NoSync / Now pass through to
	// segstore.Options.
	SegmentBytes int64
	MaxSegments  int
	NoSync       bool
	Now          func() uint64
	// WriterQueue bounds the persistence queue (segstore.WriterOptions).
	WriterQueue int
}

// DurableSink is a sharded sink joined to its segment log: the sink
// answers live queries, the log makes every ingested packet durable, and
// recovery rebuilds the sink from the log. Build with OpenDurableSink.
type DurableSink struct {
	Sink   *pipeline.Sink
	Store  *segstore.Store
	Writer *segstore.Writer
	// Recovery reports what Open found: surviving packets, and the torn
	// tail (if any) a crash left behind.
	Recovery segstore.RecoveryReport
	// Replayed counts the packets fed back into the sink at startup.
	Replayed uint64

	engine  *core.Engine
	queries []core.Query
	pcfg    pipeline.Config
}

// OpenDurableSink opens (recovering if needed) the segment log, builds
// the sink, replays the log into it — so the collector starts holding
// every packet the previous incarnation made durable — and only then
// attaches the persistence writer, so replayed packets are not re-logged.
// Evicted flows persist with their finalized answers rendered by the
// same fixed-order encoder the HTTP surface uses.
func OpenDurableSink(engine *core.Engine, queries []core.Query, pcfg pipeline.Config, opts DurableOptions) (*DurableSink, error) {
	store, report, err := segstore.Open(opts.DataDir, segstore.Options{
		SegmentBytes: opts.SegmentBytes,
		MaxSegments:  opts.MaxSegments,
		NoSync:       opts.NoSync,
		Now:          opts.Now,
	})
	if err != nil {
		return nil, err
	}
	sink, err := pipeline.NewSink(engine, pcfg)
	if err != nil {
		store.Close()
		return nil, err
	}
	d := &DurableSink{
		Sink:     sink,
		Store:    store,
		Recovery: *report,
		engine:   engine,
		queries:  queries,
		pcfg:     pcfg,
	}
	if d.Replayed, err = ReplayInto(store, sink); err != nil {
		sink.Close()
		store.Close()
		return nil, err
	}
	d.Writer = segstore.NewWriter(store, segstore.WriterOptions{
		QueueDepth:  opts.WriterQueue,
		EncodeEvict: evictEncoder(queries),
	})
	sink.SetPersister(d.Writer)
	return d, nil
}

// evictEncoder renders one evicted flow's finalized answers with the
// same fixed-order encoder /snapshot uses, so a durable eviction record
// holds exactly the JSON the flow would have answered live.
func evictEncoder(queries []core.Query) func(ev pipeline.Eviction, rec *core.Recording) []byte {
	return func(ev pipeline.Eviction, rec *core.Recording) []byte {
		answers := Answers(rec, queries, []core.FlowKey{ev.Flow})
		buf, err := json.Marshal(answers[0])
		if err != nil {
			// Answers marshals plain structs; an error here is a
			// programming bug, but a durable record with an empty body
			// beats losing the eviction entirely.
			return nil
		}
		return buf
	}
}

// ReplayInto feeds every digest block in the store, in log order, into
// the sink and barriers it, returning the packet count. The sink must
// not have a persister attached yet (the replay would re-log itself) and
// the caller must hold the single-ingester role.
func ReplayInto(store *segstore.Store, sink *pipeline.Sink) (uint64, error) {
	var scratch []core.PacketDigest
	var packets uint64
	err := store.Scan(0, ^uint64(0), func(b segstore.Block) error {
		if b.Kind != segstore.KindDigests {
			return nil
		}
		var err error
		scratch, err = segstore.DecodeDigests(scratch, b.Body)
		if err != nil {
			return err
		}
		sink.Ingest(scratch)
		packets += uint64(len(scratch))
		return nil
	})
	if err != nil {
		return 0, err
	}
	sink.Barrier()
	return packets, sink.Err()
}

// Checkpoint runs one full durability interval: a sink checkpoint
// barrier (every shard drains and reports), then a writer flush+fsync.
// It requires a quiescent ingest surface — the Server runs it under the
// write side of its ingest gate, so no connection's stage hand-off can
// straddle the round and the per-round conservation law stays exact.
func (d *DurableSink) Checkpoint() error {
	d.Sink.Checkpoint()
	return d.Writer.Sync()
}

// Close shuts the durable sink down in dependency order: a final
// checkpoint (so the log ends with a verifiable round), sink close
// (whose drain may still evict through the writer), then writer and
// store. The caller must hold the single-ingester role.
func (d *DurableSink) Close() error {
	d.Sink.Checkpoint()
	err := d.Writer.Sync()
	if cerr := d.Sink.Close(); err == nil {
		err = cerr
	}
	if cerr := d.Writer.Close(); err == nil {
		err = cerr
	}
	if cerr := d.Store.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abandon simulates a SIGKILL for the torture suites: the persistence
// queue is dropped, the store closes without sealing or syncing, and the
// sink tears down with no final flush. Whatever had not reached the file
// is the unflushed tail recovery explicitly reports lost.
func (d *DurableSink) Abandon() {
	d.Sink.SetPersister(nil)
	d.Writer.Abandon()
	d.Sink.Close()
}

// WindowAnswers answers every query for the [since, until] time window
// from the log alone: digest blocks in the window replay into a fresh
// single-shard sink (shard count never changes answers — the pipeline
// determinism contract), and the standard fixed-order encoder runs over
// the result. flows nil means every flow seen in the window.
func (d *DurableSink) WindowAnswers(since, until uint64, flows []core.FlowKey) ([]FlowAnswers, error) {
	cfg := pipeline.Config{
		Shards:        1,
		BatchSize:     d.pcfg.BatchSize,
		Base:          d.pcfg.Base,
		SketchItems:   d.pcfg.SketchItems,
		WindowBuckets: d.pcfg.WindowBuckets,
		WindowSpan:    d.pcfg.WindowSpan,
		FreqCounters:  d.pcfg.FreqCounters,
	}
	sink, err := pipeline.NewSink(d.engine, cfg)
	if err != nil {
		return nil, err
	}
	var scratch []core.PacketDigest
	scanErr := d.Store.Scan(since, until, func(b segstore.Block) error {
		if b.Kind != segstore.KindDigests {
			return nil
		}
		var err error
		scratch, err = segstore.DecodeDigests(scratch, b.Body)
		if err != nil {
			return err
		}
		sink.Ingest(scratch)
		return nil
	})
	if err := sink.Close(); err != nil {
		return nil, err
	}
	if scanErr != nil {
		return nil, scanErr
	}
	return SnapshotAnswers(sink.Snapshot(), d.queries, flows)
}

// VerifyAgainstLive proves the headline guarantee on a quiescent durable
// sink: the log-only answer for the full window must be byte-identical
// to the live sink's snapshot answer. It is the self-check the
// kill-recover suites run after every recovery.
func (d *DurableSink) VerifyAgainstLive() error {
	live, err := SnapshotAnswers(d.Sink.Snapshot(), d.queries, nil)
	if err != nil {
		return err
	}
	replayed, err := d.WindowAnswers(0, ^uint64(0), nil)
	if err != nil {
		return err
	}
	a, err := json.Marshal(live)
	if err != nil {
		return err
	}
	b, err := json.Marshal(replayed)
	if err != nil {
		return err
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("collector: durable replay diverges from live state (%d vs %d bytes)", len(b), len(a))
	}
	return nil
}

// runCheckpoints is the Server's background durability cadence.
func (s *Server) runCheckpoints(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stopCkpt:
			return
		case <-t.C:
			s.ingestGate.Lock()
			err := s.cfg.Durable.Checkpoint()
			s.ingestGate.Unlock()
			if err != nil {
				s.logf("collector: checkpoint: %v", err)
			}
		}
	}
}
