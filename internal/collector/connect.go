package collector

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// Connect is the one options-based entry point for exporter-session
// construction: single-node and fleet exporters share it, mirroring the
// server side's collector.New(engine, WithSink(...)) pattern. The older
// constructors (Dial, NewExporter, DialFleet) remain as thin
// compatibility paths delegating to the same internals — new code should
// use Connect:
//
//	fe, err := collector.Connect(tb.Engine, 7, "tor-7",
//	        collector.WithFleetMap(fm),          // addrs + routing + epoch from the map
//	        collector.WithRosterFetch(fetch),    // live re-routing across resizes
//	        collector.WithTenant("team-a"),
//	        collector.WithCoalesce(16<<10))
//
// With WithRosterFetch set, the session survives fleet resizes: a
// collector that moves to a new epoch nudges the session
// (wire.NudgeReroute) or refuses the next dial (wire.ErrEpochMismatch —
// the recoverable ack); either way the exporter flushes what it sent,
// closes cleanly (so nothing in flight is lost), polls the fetch until a
// newer fleet map appears, re-partitions its unsent routing buffers
// under the new map, and re-handshakes at the new epoch.

// FleetRoster is the collector-tier view of a fleet configuration: an
// epoch, the members' ingest addresses, and the flow→member routing.
// internal/federation's FleetMap implements it; the indirection keeps the
// dependency arrow pointing federation→collector.
type FleetRoster interface {
	// FleetEpoch is the partitioning epoch every session handshake must
	// carry.
	FleetEpoch() uint64
	// IngestAddrs lists the members' exporter-session TCP addresses, in
	// routing order.
	IngestAddrs() []string
	// FlowHome maps a flow to its home member (an index into
	// IngestAddrs).
	FlowHome(core.FlowKey) int
}

// dialConfig is the resolved form of Connect's options.
type dialConfig struct {
	addrs    []string
	route    func(core.FlowKey) int
	epoch    uint64
	epochSet bool
	tenant   string
	coalesce int
	batch    int
	roster   FleetRoster
	fetch    func() (FleetRoster, error)
}

// DialOption configures Connect.
type DialOption func(*dialConfig)

// WithAddrs sets the collector addresses explicitly (one address = a
// standalone collector; several require WithRoute or WithFleetMap for
// the flow routing).
func WithAddrs(addrs ...string) DialOption {
	return func(c *dialConfig) { c.addrs = append([]string(nil), addrs...) }
}

// WithRoute sets the flow→member routing function explicitly.
func WithRoute(route func(core.FlowKey) int) DialOption {
	return func(c *dialConfig) { c.route = route }
}

// WithSessionEpoch sets the cluster epoch the session handshake carries
// (wire.Hello.Epoch); it overrides the roster's epoch when both are
// given. The server side's counterpart is collector.WithEpoch.
func WithSessionEpoch(epoch uint64) DialOption {
	return func(c *dialConfig) { c.epoch, c.epochSet = epoch, true }
}

// WithTenant labels the session with a QoS tenant (wire.Hello.Tenant).
func WithTenant(tenant string) DialOption {
	return func(c *dialConfig) { c.tenant = tenant }
}

// WithCoalesce sets the per-session write-coalescing threshold in bytes
// (see Exporter.SetCoalesce for the latency/throughput trade-off).
func WithCoalesce(bytes int) DialOption {
	return func(c *dialConfig) { c.coalesce = bytes }
}

// WithFrameBatch sets the per-member frame size in packets (default
// 256).
func WithFrameBatch(n int) DialOption {
	return func(c *dialConfig) { c.batch = n }
}

// WithFleetMap derives addresses, routing, and epoch from a fleet map
// (federation.FleetMap implements FleetRoster). Explicit WithAddrs /
// WithRoute / WithSessionEpoch options override individual pieces.
func WithFleetMap(roster FleetRoster) DialOption {
	return func(c *dialConfig) { c.roster = roster }
}

// WithRosterFetch enables live re-routing: fetch is polled for the
// current fleet map whenever the session learns its epoch went stale
// (reroute nudge on a live session, or wire.ErrEpochMismatch on a dial).
// Typically the fetch GETs the pintgate frontend's /fleetmap endpoint.
func WithRosterFetch(fetch func() (FleetRoster, error)) DialOption {
	return func(c *dialConfig) { c.fetch = fetch }
}

// Connect opens exporter sessions to a collector fleet (or a single
// collector) and returns the routing exporter. See the file comment for
// the option surface; engine supplies the plan hash the handshake pins.
func Connect(engine *core.Engine, exporterID uint64, name string, opts ...DialOption) (*FleetExporter, error) {
	if engine == nil {
		return nil, fmt.Errorf("collector: nil engine")
	}
	cfg := dialConfig{batch: 256}
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	if cfg.roster != nil {
		if cfg.addrs == nil {
			cfg.addrs = cfg.roster.IngestAddrs()
		}
		if cfg.route == nil {
			cfg.route = cfg.roster.FlowHome
		}
		if !cfg.epochSet {
			cfg.epoch = cfg.roster.FleetEpoch()
		}
	}
	if len(cfg.addrs) == 0 {
		return nil, fmt.Errorf("collector: Connect needs collector addresses (WithAddrs or WithFleetMap)")
	}
	if cfg.route == nil {
		if len(cfg.addrs) != 1 {
			return nil, fmt.Errorf("collector: %d-member fleet needs routing (WithFleetMap or WithRoute)", len(cfg.addrs))
		}
		cfg.route = func(core.FlowKey) int { return 0 }
	}
	hello := HelloFor(engine, exporterID, name)
	hello.Epoch = cfg.epoch
	hello.Tenant = cfg.tenant
	return dialFleet(cfg.addrs, hello, cfg.route, cfg.batch, cfg.coalesce, cfg.fetch)
}

// rerouteDeadline bounds how long a rerouting exporter polls the roster
// fetch for a newer fleet map before giving up. Resizes publish the new
// map only after state migration completes, so the poll spans the whole
// hand-off.
const rerouteDeadline = 60 * time.Second

// dialFleet is the shared constructor behind Connect and the DialFleet
// compatibility path. With a non-nil fetch an initial epoch refusal is
// recovered by fetching a newer map and retrying.
func dialFleet(addrs []string, hello wire.Hello, route func(core.FlowKey) int, batch, coalesce int,
	fetch func() (FleetRoster, error)) (*FleetExporter, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("collector: empty fleet address list")
	}
	if route == nil {
		return nil, fmt.Errorf("collector: nil fleet route function")
	}
	if batch < 1 {
		batch = 256
	}
	f := &FleetExporter{
		route:    route,
		batch:    batch,
		hello:    hello,
		addrs:    append([]string(nil), addrs...),
		coalesce: coalesce,
		fetch:    fetch,
	}
	deadline := time.Now().Add(rerouteDeadline)
	for {
		err := f.dialAll()
		if err == nil {
			return f, nil
		}
		if f.fetch == nil || !errors.Is(err, wire.ErrEpochMismatch) || !time.Now().Before(deadline) {
			return nil, err
		}
		// Stale epoch on first contact: the fleet resized between the
		// caller obtaining its map and this dial. Recover exactly like a
		// live session would.
		if perr := f.pollRoster(deadline); perr != nil {
			return nil, fmt.Errorf("%w (and fetching a newer fleet map failed: %v)", err, perr)
		}
	}
}

// dialAll opens one session per member address under the exporter's
// current hello/epoch, replacing f.exps. Any refusal closes what was
// opened and fails the dial.
func (f *FleetExporter) dialAll() error {
	f.exps = make([]*Exporter, len(f.addrs))
	if len(f.bufs) != len(f.addrs) {
		f.bufs = make([][]core.PacketDigest, len(f.addrs))
		for i := range f.bufs {
			f.bufs[i] = make([]core.PacketDigest, 0, f.batch)
		}
	}
	gen := f.gen.Add(1)
	for i, addr := range f.addrs {
		ex, err := Dial(addr, f.hello)
		if err != nil {
			f.closeSessions()
			return fmt.Errorf("collector: fleet member %d (%s): %w", i, addr, err)
		}
		f.exps[i] = ex
		if f.coalesce > 0 {
			ex.SetCoalesce(f.coalesce)
		}
		if f.fetch != nil {
			go f.watch(ex, gen)
		}
	}
	return nil
}

// watch blocks reading the member session for the reroute nudge. The
// server→exporter direction carries nothing after the handshake ack, so
// any byte is a signal (and only wire.NudgeReroute is defined); a read
// error just means the session ended. The nudge records the generation
// the session belongs to — never moving it backwards — so a late nudge
// from a session rehome already replaced is inert.
func (f *FleetExporter) watch(ex *Exporter, gen uint64) {
	buf := make([]byte, 1)
	for {
		n, err := ex.conn.Read(buf)
		if n > 0 {
			if buf[0] == wire.NudgeReroute {
				for {
					cur := f.nudgedGen.Load()
					if gen <= cur || f.nudgedGen.CompareAndSwap(cur, gen) {
						break
					}
				}
			}
			return
		}
		if err != nil {
			return
		}
	}
}

// RerouteRequested reports whether a collector has signalled that the
// exporter's epoch went stale (the next Send, or an explicit Poke, will
// re-route).
func (f *FleetExporter) RerouteRequested() bool { return f.rerouteRequested() }

// Epoch returns the cluster epoch the live sessions were handshaked at.
func (f *FleetExporter) Epoch() uint64 { return f.hello.Epoch }

// Poke services a pending reroute without sending anything: if a nudge
// arrived, the exporter flushes, closes, fetches the new fleet map, and
// re-handshakes — exactly what the next Send would do. Harnesses that
// pause between sends call this so a mid-stream resize can finish while
// they wait (the resize coordinator waits for stale sessions to close).
func (f *FleetExporter) Poke() error {
	if f.fetch != nil && f.rerouteRequested() {
		return f.rehome()
	}
	return nil
}

// rehome is the live re-routing path: flush and cleanly close every
// session (a clean close means the collector ingested every byte sent —
// zero loss), poll the roster fetch until a map with a *newer* epoch
// appears (the coordinator publishes it only after state hand-off
// completes), re-partition the unsent routing buffers under the new map,
// and re-handshake everywhere at the new epoch.
func (f *FleetExporter) rehome() error {
	// The pending nudge is consumed implicitly: dialAll below bumps the
	// session generation, which invalidates every nudge recorded against
	// the sessions being closed here.
	// Unsent routed packets move to the new partitioning; drain them out
	// of the per-member buffers first.
	var pending []core.PacketDigest
	for n := range f.bufs {
		pending = append(pending, f.bufs[n]...)
		f.bufs[n] = f.bufs[n][:0]
	}
	// Close cleanly: each session's coalescing buffer is flushed before
	// the FIN, so everything already handed to a session is ingested.
	if err := f.closeSessions(); err != nil {
		return fmt.Errorf("collector: reroute: closing stale sessions: %w", err)
	}
	deadline := time.Now().Add(rerouteDeadline)
	if err := f.pollRoster(deadline); err != nil {
		return err
	}
	for {
		err := f.dialAll()
		if err == nil {
			break
		}
		if !errors.Is(err, wire.ErrEpochMismatch) || !time.Now().Before(deadline) {
			return err
		}
		// Raced with yet another resize — fetch again.
		if perr := f.pollRoster(deadline); perr != nil {
			return fmt.Errorf("%w (and fetching a newer fleet map failed: %v)", err, perr)
		}
	}
	// Re-partition: conservation, not loss — every unsent packet is
	// re-routed to its (possibly new) home under the new map.
	for i := range pending {
		n := f.route(pending[i].Flow)
		if n < 0 || n >= len(f.exps) {
			return fmt.Errorf("collector: reroute sent flow %v to member %d of %d", pending[i].Flow, n, len(f.exps))
		}
		f.bufs[n] = append(f.bufs[n], pending[i])
	}
	return nil
}

// pollRoster fetches the fleet map until its epoch moves past the
// sessions' current epoch, then installs the new addresses, routing, and
// epoch on the exporter.
func (f *FleetExporter) pollRoster(deadline time.Time) error {
	for {
		roster, err := f.fetch()
		if err == nil && roster != nil && roster.FleetEpoch() != f.hello.Epoch {
			addrs := roster.IngestAddrs()
			if len(addrs) == 0 {
				return fmt.Errorf("collector: fetched fleet map (epoch %d) has no members", roster.FleetEpoch())
			}
			f.addrs = append(f.addrs[:0], addrs...)
			f.route = roster.FlowHome
			f.hello.Epoch = roster.FleetEpoch()
			// Member count may have changed; dialAll rebuilds the buffers.
			f.bufs = nil
			return nil
		}
		if !time.Now().Before(deadline) {
			if err != nil {
				return fmt.Errorf("collector: reroute: fleet map fetch: %w", err)
			}
			return fmt.Errorf("collector: reroute: no newer fleet map appeared within %v", rerouteDeadline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// closeSessions ends every member session (flushing their coalescing
// buffers) without touching the routing buffers.
func (f *FleetExporter) closeSessions() error {
	var err error
	for i, ex := range f.exps {
		if ex == nil {
			continue
		}
		if cerr := ex.Close(); err == nil {
			err = cerr
		}
		f.exps[i] = nil
	}
	return err
}
