// Package collector is the networked face of the reproduction's
// Recording Module: a TCP daemon that accepts many concurrent exporter
// connections — simulated switches, or cmd/pintload — each streaming
// length-prefixed, checksummed frames of internal/wire digest batches
// into one pipeline.ShardedSink.
//
// The deployment model follows the paper (§2, §5): switches emit tiny
// per-packet digests; a central collector ingests every stream and
// answers queries. This package adds the parts the in-process pipeline
// could not express:
//
//   - a session handshake (wire.Hello) carrying the exporter's ID and its
//     engine's PlanHash, so a switch compiled under a different execution
//     plan is refused at connect time instead of silently corrupting
//     every flow it touches;
//   - per-connection decode isolation: a corrupt or oversized frame
//     (checksum mismatch, bound violation, malformed batch) tears down
//     only that connection, after ingesting nothing from the bad frame —
//     the sink never sees a byte that did not checksum;
//   - parallel ingest: every session decodes frames straight into a
//     private pipeline.Stage (wire's fused decode-and-shard pass) and
//     lands them under the sink's per-shard locks, so connections ingest
//     concurrently — the only serialization is between connections
//     feeding the same shard at the same instant;
//   - backpressure: the sink's bounded worker queues block a session's
//     stage hand-off when its shard's worker falls behind; that reader
//     stops draining its socket and TCP flow control pushes the pressure
//     back to exactly the exporters feeding the hot shard;
//   - graceful drain: Shutdown stops accepting, gives in-flight sessions
//     a grace period to finish, then flushes and barriers the sink so
//     every ingested packet is queryable before the process exits.
//
// Snapshot queries are served over HTTP by Handler (see http.go): the
// same Sink.Snapshot()/Merged path the in-process harness uses, so a
// loopback deployment answers bit-identically to a direct sink.
package collector

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/wire"
)

// Config is the Server's resolved configuration — the form the
// functional options (see options.go) populate and New validates.
// Construct servers with New(engine, opts...); Config stays exported as
// the documented resolved shape.
type Config struct {
	// Engine is the compiled execution plan the collector expects every
	// exporter to share; its PlanHash gates the session handshake.
	Engine *core.Engine
	// Sink receives every decoded digest batch. Each connection ingests
	// concurrently through its own pipeline.Stage; Shutdown flushes and
	// barriers the sink; the caller still owns Close.
	Sink *pipeline.Sink
	// Queries lists the engine's queries for the HTTP snapshot endpoints.
	Queries []core.Query
	// Epoch is the cluster partitioning epoch this collector belongs to
	// (0 for a standalone daemon). Sessions whose Hello carries a
	// different epoch are refused with wire.AckEpochMismatch: an exporter
	// routing flows under a stale fleet map must not ingest here, or a
	// repartitioned flow's digests would split across two homes.
	Epoch uint64
	// MaxFramePayload caps a frame's payload bytes (default
	// wire.DefaultMaxFramePayload). Larger frames kill the connection.
	MaxFramePayload int
	// Durable, when non-nil, attaches the collector's durable tier (built
	// with OpenDurableSink). Sink may be left nil — it defaults to
	// Durable.Sink — and /snapshot gains the ?since=/?until= historical
	// window parameters. The server owns the checkpoint cadence; the
	// caller still owns DurableSink.Close after Shutdown.
	Durable *DurableSink
	// CheckpointEvery is the background checkpoint+fsync interval when
	// Durable is set (default 1s; < 0 disables the background cadence —
	// checkpoints then happen only at Shutdown or by explicit call).
	CheckpointEvery time.Duration
	// HandshakeTimeout bounds how long a new connection may take to
	// present its Hello (default 10s), shedding dead or non-protocol
	// connections.
	HandshakeTimeout time.Duration
	// Logf, when non-nil, receives one line per session event (open,
	// close, error). Nil means silent.
	Logf func(format string, args ...any)
	// TenantPolicy configures the multi-tenant QoS layer (see
	// WithTenantPolicy). The zero policy disables it.
	TenantPolicy admit.Policy
}

// Stats is a point-in-time view of the server's counters. Packets
// counts every decoded (offered) packet; Shed counts those the QoS
// layer sampled away, so Packets-Shed is what reached the sink.
type Stats struct {
	Sessions   uint64 `json:"sessions"`
	Active     int64  `json:"active"`
	Rejected   uint64 `json:"rejected"`
	Frames     uint64 `json:"frames"`
	Packets    uint64 `json:"packets"`
	Bytes      uint64 `json:"bytes"`
	Shed       uint64 `json:"shed"`
	ConnErrors uint64 `json:"conn_errors"`
}

// Accumulate folds another server's counters into s — the query
// frontend's rule for presenting fleet-wide totals.
func (s *Stats) Accumulate(o Stats) {
	s.Sessions += o.Sessions
	s.Active += o.Active
	s.Rejected += o.Rejected
	s.Frames += o.Frames
	s.Packets += o.Packets
	s.Bytes += o.Bytes
	s.Shed += o.Shed
	s.ConnErrors += o.ConnErrors
}

// Server is the collector daemon. Create with New, run with Serve (or
// ListenAndServe), stop with Shutdown.
type Server struct {
	cfg      Config
	planHash uint64
	// admitter is the QoS front (nil when no tenant policy is
	// configured — the admit-everything fast path).
	admitter *admit.Admitter

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]struct{}
	closing bool
	wg      sync.WaitGroup
	// drained closes once the first Shutdown caller has flushed and
	// barriered the sink; later callers wait on it so every Shutdown
	// return means "the sink is queryable".
	drained chan struct{}
	// stopCkpt stops the background checkpoint goroutine (nil when the
	// collector has no durable tier).
	stopCkpt     chan struct{}
	stopCkptOnce sync.Once

	// ingestGate orders concurrent ingest against whole-sink operations.
	// Connection handlers hold the read side per frame (their stage
	// hand-offs already serialize per shard inside the sink); Checkpoint,
	// the historical-window endpoint, and Shutdown's final drain take the
	// write side, so every in-flight hand-off completes before the
	// barrier runs — which is what keeps the durable tier's per-round
	// conservation law exact under concurrent ingest.
	ingestGate sync.RWMutex
	// sess tracks live sessions for the /stats per-connection section.
	sess sessionSet

	// epoch is the live cluster partitioning epoch. It starts at
	// cfg.Epoch and moves via SetEpoch during a fleet resize; the
	// handshake checks it, so sessions dialed after a resize must carry
	// the new epoch while live sessions get the reroute nudge instead.
	epoch atomic.Uint64

	sessions   atomic.Uint64
	active     atomic.Int64
	rejected   atomic.Uint64
	frames     atomic.Uint64
	packets    atomic.Uint64
	bytes      atomic.Uint64
	shed       atomic.Uint64
	connErrors atomic.Uint64
	// handoffFlows counts flows imported over the hand-off path during a
	// fleet resize (exposed via HandoffFlows, not /stats — the stats
	// schema is versioned).
	handoffFlows atomic.Uint64
}

// newServer builds a Server over a resolved Config; New (options.go) is
// the public constructor.
func newServer(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("collector: nil engine")
	}
	if cfg.Durable != nil {
		if cfg.Sink == nil {
			cfg.Sink = cfg.Durable.Sink
		} else if cfg.Sink != cfg.Durable.Sink {
			return nil, fmt.Errorf("collector: Sink differs from Durable.Sink")
		}
		if cfg.CheckpointEvery == 0 {
			cfg.CheckpointEvery = time.Second
		}
	}
	if cfg.Sink == nil {
		return nil, fmt.Errorf("collector: nil sink")
	}
	if cfg.MaxFramePayload <= 0 {
		cfg.MaxFramePayload = wire.DefaultMaxFramePayload
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	admitter, err := admit.NewAdmitter(cfg.TenantPolicy)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		planHash: cfg.Engine.PlanHash(),
		admitter: admitter,
		conns:    map[net.Conn]struct{}{},
		drained:  make(chan struct{}),
	}
	if cfg.Durable != nil && cfg.CheckpointEvery > 0 {
		// The cadence goroutine itself starts lazily in Serve: a Server
		// that is constructed but never served must not leak a ticker
		// that keeps checkpointing a DurableSink the caller closed.
		s.stopCkpt = make(chan struct{})
	}
	s.epoch.Store(cfg.Epoch)
	return s, nil
}

// Epoch returns the live cluster partitioning epoch.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// SetEpoch moves the collector to a new cluster epoch, as the first step
// of a fleet resize. New handshakes must carry the new epoch
// (AckEpochMismatch otherwise — the recoverable "fetch the new fleet map
// and re-dial" signal); every live session still on an older epoch gets
// a single wire.NudgeReroute byte so its exporter flushes, closes
// cleanly, and re-routes. Safe from any goroutine.
func (s *Server) SetEpoch(epoch uint64) {
	if s.epoch.Swap(epoch) != epoch {
		s.sess.nudgeStale(epoch)
	}
}

// PlanHash returns the hash the server demands in every Hello.
func (s *Server) PlanHash() uint64 { return s.planHash }

// Stats returns the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Sessions:   s.sessions.Load(),
		Active:     s.active.Load(),
		Rejected:   s.rejected.Load(),
		Frames:     s.frames.Load(),
		Packets:    s.packets.Load(),
		Bytes:      s.bytes.Load(),
		Shed:       s.shed.Load(),
		ConnErrors: s.connErrors.Load(),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ListenAndServe listens on addr ("host:port") and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts exporter sessions on ln until Shutdown (which returns
// nil here) or a listener error. One Serve per Server.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("collector: server already shut down")
	}
	if s.ln != nil {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("collector: Serve called twice")
	}
	s.ln = ln
	if s.stopCkpt != nil {
		// First (and only — Serve-twice errors above) Serve owns starting
		// the background checkpoint cadence; Shutdown stops it.
		go s.runCheckpoints(s.cfg.CheckpointEvery)
	}
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosing() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// Addr returns the listener address (for port-0 listeners), or nil
// before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) isClosing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closing
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
	s.wg.Done()
}

// handleConn runs one exporter session: handshake, ack, then a frame →
// decode → ingest loop until EOF, error, or shutdown.
func (s *Server) handleConn(conn net.Conn) {
	defer s.dropConn(conn)

	conn.SetReadDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	hello, err := wire.ReadHello(conn)
	if err != nil {
		s.rejected.Add(1)
		s.logf("collector: %s: handshake: %v", conn.RemoteAddr(), err)
		return
	}
	ack := wire.AckOK
	switch {
	case s.isClosing():
		ack = wire.AckRejected
	case hello.PlanHash != s.planHash:
		ack = wire.AckPlanMismatch
	case hello.Epoch != s.epoch.Load():
		ack = wire.AckEpochMismatch
	}
	if _, err := conn.Write([]byte{ack}); err != nil {
		// The session was not refused — the transport died under the
		// ack write. Count it as a connection error, not a rejection.
		s.connErrors.Add(1)
		s.logf("collector: %s: exporter %d (%s): writing ack: %v",
			conn.RemoteAddr(), hello.Exporter, hello.Name, err)
		return
	}
	if ack != wire.AckOK {
		s.rejected.Add(1)
		s.logf("collector: %s: exporter %d (%s) refused: ack=%d",
			conn.RemoteAddr(), hello.Exporter, hello.Name, ack)
		return
	}
	conn.SetReadDeadline(time.Time{})
	s.sessions.Add(1)
	s.active.Add(1)
	defer s.active.Add(-1)
	// Flush the sink when the session ends (LIFO: before active is
	// decremented), so a reader that observes zero active sessions and a
	// stable ingest count knows every ingested packet has been dispatched
	// to the workers — which is exactly what Snapshot then includes. This
	// is what lets a query frontend poll /stats and then trust /snapshot
	// to be complete without draining the daemon.
	defer func() {
		s.ingestGate.RLock()
		s.cfg.Sink.Flush()
		s.ingestGate.RUnlock()
	}()
	s.logf("collector: %s: exporter %d (%s) session open", conn.RemoteAddr(), hello.Exporter, hello.Name)

	// Resolve the session's tenant meter (nil without a tenant policy —
	// the admit-everything fast path). Meters outlive sessions, so the
	// tenant's accounting survives reconnects.
	tenant := s.admitter.Tenant(hello.Tenant)
	tenant.AddSession(1)
	defer tenant.AddSession(-1)
	tenantName := hello.Tenant
	if tenantName == "" {
		tenantName = admit.DefaultTenant
	}

	sess := &session{exporter: hello.Exporter, name: hello.Name,
		tenant: tenantName, remote: conn.RemoteAddr().String(),
		conn: conn, epoch: hello.Epoch}
	s.sess.add(sess)
	defer s.sess.remove(sess)

	// The per-connection pipeline: this goroutine decodes each frame
	// straight into its private stage (computing flow→shard routing
	// during unmarshal) and lands the staged chunks under the sink's
	// per-shard locks. No cross-connection mutex — sessions feeding
	// disjoint shards never contend at all.
	fr := wire.NewFrameReader(conn, s.cfg.MaxFramePayload)
	st := s.cfg.Sink.NewStage()
	bufs := st.Buffers()
	for {
		payload, err := fr.Next()
		if err != nil {
			switch {
			case err == io.EOF:
				s.logf("collector: exporter %d (%s) closed cleanly", hello.Exporter, hello.Name)
			case s.isClosing() && isDeadlineErr(err):
				s.logf("collector: exporter %d (%s) drained at shutdown", hello.Exporter, hello.Name)
			default:
				s.connErrors.Add(1)
				s.logf("collector: exporter %d (%s) dropped: %v", hello.Exporter, hello.Name, err)
			}
			return
		}
		// Hand-off frames (fleet resize: a departing home shipping a
		// flow's drained state) share the framing but not the decode
		// path — they fold whole recording states into the sink instead
		// of staging digests.
		if wire.IsHandoffPayload(payload) {
			imported, err := s.ingestHandoffFrame(payload)
			if err != nil {
				s.connErrors.Add(1)
				s.logf("collector: exporter %d (%s) hand-off refused: %v", hello.Exporter, hello.Name, err)
				return
			}
			s.frames.Add(1)
			s.bytes.Add(uint64(wire.FrameHeaderLen + len(payload)))
			sess.frames.Add(1)
			sess.bytes.Add(uint64(wire.FrameHeaderLen + len(payload)))
			s.handoffFlows.Add(uint64(imported))
			continue
		}
		// Decode before touching the sink: a malformed batch inside a
		// valid frame still poisons nothing — a failed fused decode may
		// leave a prefix staged, and Reset discards it before teardown.
		n, err := wire.AppendUnmarshalSharded(bufs, payload)
		if err != nil {
			st.Reset()
			s.connErrors.Add(1)
			s.logf("collector: exporter %d (%s) dropped: %v", hello.Exporter, hello.Name, err)
			return
		}
		s.frames.Add(1)
		s.bytes.Add(uint64(wire.FrameHeaderLen + len(payload)))
		s.packets.Add(uint64(n))
		sess.frames.Add(1)
		sess.bytes.Add(uint64(wire.FrameHeaderLen + len(payload)))
		sess.packets.Add(uint64(n))
		if n == 0 {
			continue
		}
		// QoS admission: one decision per frame, applied packet-by-packet
		// to the staged buffers in place. The decision is a pure function
		// of (policy, tenant, clock), and Keep of (seed, flow, pktID) —
		// identical runs shed identical packets.
		kept := n
		if tenant != nil {
			if d := tenant.Decide(n); !d.Admit() {
				kept = shedStaged(bufs, tenant, d)
				dropped := uint64(n - kept)
				sess.shed.Add(dropped)
				s.shed.Add(dropped)
			}
			tenant.Account(kept, n)
			if kept == 0 {
				// Everything shed: the buffers are already empty, skip the
				// sink hand-off entirely.
				sess.batches.Add(1)
				continue
			}
		}
		sess.staged.Store(int64(kept))
		s.ingestGate.RLock()
		start := time.Now()
		s.cfg.Sink.IngestStage(st)
		dur := time.Since(start)
		sess.stallNs.Add(uint64(dur))
		s.ingestGate.RUnlock()
		sess.staged.Store(0)
		sess.batches.Add(1)
		if s.admitter != nil {
			// Feed the hand-off latency back to the capacity controller: a
			// slow hand-off means the shard worker's queue blocked us —
			// the sink is behind and admission should back off.
			s.admitter.ReportStall(dur >= stallThreshold)
		}
	}
}

// stallThreshold is the sink hand-off latency above which a frame's
// ingest counts as a stall for the AIMD capacity controller. A healthy
// hand-off is a few microseconds of per-shard lock work; a millisecond
// means the shard worker's bounded queue blocked the session.
const stallThreshold = time.Millisecond

// shedStaged filters every staged per-shard buffer in place through the
// tenant's seeded per-packet test, returning how many packets survived.
// Stage.Buffers returns the stage's own slices, so the filtered buffers
// are exactly what the subsequent IngestStage lands.
func shedStaged(bufs [][]core.PacketDigest, t *admit.Tenant, d admit.Decision) int {
	kept := 0
	for i := range bufs {
		buf := bufs[i][:0]
		for _, pd := range bufs[i] {
			if t.Keep(d, uint64(pd.Flow), pd.PktID) {
				buf = append(buf, pd)
			}
		}
		bufs[i] = buf
		kept += len(buf)
	}
	return kept
}

func isDeadlineErr(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout() || errors.Is(err, os.ErrDeadlineExceeded) ||
		errors.Is(err, net.ErrClosed)
}

// Shutdown drains the server: it stops accepting sessions, waits for the
// open ones to finish (exporters closing their connections) until ctx
// expires, force-closes whatever remains, and finally flushes and
// barriers the sink so every ingested packet is queryable. The sink is
// left open — the caller queries it and owns its Close. Shutdown is
// idempotent; concurrent calls share the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.stopCkpt != nil {
		s.stopCkptOnce.Do(func() { close(s.stopCkpt) })
	}
	s.mu.Lock()
	already := s.closing
	s.closing = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Grace expired: unblock every reader. Sessions mid-frame lose
		// that frame; everything already decoded is in the sink.
		for _, c := range conns {
			c.SetReadDeadline(time.Now())
		}
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			for _, c := range conns {
				c.Close()
			}
			<-done
		}
		err = ctx.Err()
	}
	if already {
		// Another caller owns the final flush; wait for it (or our own
		// deadline) so returning still means the sink is queryable.
		select {
		case <-s.drained:
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
		}
		return err
	}
	// All handlers are gone; the write side of the gate still fences any
	// straggling hand-off and the background checkpoint cadence.
	s.ingestGate.Lock()
	s.cfg.Sink.Flush()
	s.cfg.Sink.Barrier()
	if s.cfg.Durable != nil {
		// End the log with a verifiable round covering everything the
		// drain ingested, fsynced — a SIGKILL arriving after Shutdown
		// loses nothing.
		if cerr := s.cfg.Durable.Checkpoint(); cerr != nil && err == nil {
			err = cerr
		}
	}
	s.ingestGate.Unlock()
	close(s.drained)
	return err
}
